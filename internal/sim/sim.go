// Package sim provides a deterministic discrete-event simulation engine.
//
// All ERASMUS experiments run on virtual time: devices, timers, networks and
// adversaries are processes that schedule events on a shared Engine. Time is
// measured in Ticks (one tick = one nanosecond of virtual time), which maps
// cleanly onto both the 8 MHz MCU model (125 ns/cycle) and the 1 GHz
// application-processor model (1 ns/cycle).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Ticks is a point in (or duration of) virtual time, in nanoseconds.
type Ticks int64

// Common durations, in Ticks.
const (
	Nanosecond  Ticks = 1
	Microsecond       = 1000 * Nanosecond
	Millisecond       = 1000 * Microsecond
	Second            = 1000 * Millisecond
	Minute            = 60 * Second
	Hour              = 60 * Minute
)

// MaxTicks is the largest representable virtual time.
const MaxTicks Ticks = math.MaxInt64

// Seconds returns the duration as floating-point seconds.
func (t Ticks) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the duration as floating-point milliseconds.
func (t Ticks) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders the time with an adaptive unit.
func (t Ticks) String() string {
	switch {
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// FromSeconds converts floating-point seconds to Ticks.
func FromSeconds(s float64) Ticks { return Ticks(s * float64(Second)) }

// Event is a scheduled callback.
type Event struct {
	when Ticks
	seq  uint64 // tie-breaker: FIFO among equal-time events
	fn   func()

	index     int // heap index, -1 when popped or cancelled
	cancelled bool
}

// When returns the virtual time at which the event fires.
func (e *Event) When() Ticks { return e.when }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. The zero value is
// ready to use at virtual time 0.
type Engine struct {
	now   Ticks
	seq   uint64
	queue eventQueue
	fired uint64
}

// NewEngine returns an engine at virtual time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Ticks { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn at absolute virtual time when. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(when Ticks, fn func()) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", when, e.now))
	}
	ev := &Event{when: when, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn delay ticks from now.
func (e *Engine) After(delay Ticks, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// Step executes the single next event. It reports false if the queue is
// empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.when
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled exactly at the deadline do fire.
func (e *Engine) RunUntil(deadline Ticks) {
	if deadline < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", deadline, e.now))
	}
	for len(e.queue) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.when > deadline {
			break
		}
		e.Step()
	}
	e.now = deadline
}

// peek returns the next non-cancelled event without popping it, discarding
// cancelled heads along the way.
func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		head := e.queue[0]
		if !head.cancelled {
			return head
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// Ticker fires fn every interval starting at start (absolute). It returns a
// stop function. Interval must be positive.
func (e *Engine) Ticker(start, interval Ticks, fn func()) (stop func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker interval %v", interval))
	}
	stopped := false
	var schedule func(at Ticks)
	schedule = func(at Ticks) {
		e.At(at, func() {
			if stopped {
				return
			}
			fn()
			if !stopped {
				schedule(e.now + interval)
			}
		})
	}
	if start < e.now {
		start = e.now
	}
	schedule(start)
	return func() { stopped = true }
}
