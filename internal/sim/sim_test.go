package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", e.Now())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestAfterRelativeScheduling(t *testing.T) {
	e := NewEngine()
	var at Ticks = -1
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("nested After fired at %v, want 150", at)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	later := e.At(20, func() { fired = true })
	e.At(10, func() { later.Cancel() })
	e.Run()
	if fired {
		t.Fatal("event fired despite being cancelled by an earlier event")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("At(past) did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("After(-1) did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Ticks
	for _, at := range []Ticks{5, 10, 15, 20} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(15)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 5,10,15", fired)
	}
	if e.Now() != 15 {
		t.Fatalf("Now() = %v, want 15", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v, want 4 events", fired)
	}
	if e.Now() != 100 {
		t.Fatalf("Now() = %v, want 100 after RunUntil(100)", e.Now())
	}
}

func TestRunUntilPastPanics(t *testing.T) {
	e := NewEngine()
	e.RunUntil(50)
	defer func() {
		if recover() == nil {
			t.Error("RunUntil(past) did not panic")
		}
	}()
	e.RunUntil(10)
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var times []Ticks
	stop := e.Ticker(10, 5, func() { times = append(times, e.Now()) })
	e.At(26, func() { stop() })
	e.Run()
	want := []Ticks{10, 15, 20, 25}
	if len(times) != len(want) {
		t.Fatalf("ticker fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticker fired at %v, want %v", times, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var stop func()
	stop = e.Ticker(0, 1, func() {
		count++
		if count == 3 {
			stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("ticker fired %d times, want 3", count)
	}
}

func TestTickerNonPositiveIntervalPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("Ticker(interval=0) did not panic")
		}
	}()
	e.Ticker(0, 0, func() {})
}

func TestTickerStartInPastClampsToNow(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	var first Ticks = -1
	stop := e.Ticker(0, 10, func() {
		if first < 0 {
			first = e.Now()
		}
	})
	e.RunUntil(130)
	stop()
	if first != 100 {
		t.Fatalf("first tick at %v, want clamp to 100", first)
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(Ticks(i), func() {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

func TestTicksString(t *testing.T) {
	cases := []struct {
		t    Ticks
		want string
	}{
		{2 * Second, "2.000s"},
		{3 * Millisecond, "3.000ms"},
		{7 * Microsecond, "7.000µs"},
		{42, "42ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", got)
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Fatalf("Seconds() = %v, want 2.5", got)
	}
}

// Property: for any set of non-negative offsets, events fire in sorted order
// and the engine clock is monotone.
func TestPropertyMonotoneExecution(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		last := Ticks(-1)
		monotone := true
		for _, off := range offsets {
			e.At(Ticks(off), func() {
				if e.Now() < last {
					monotone = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return monotone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Fired equals the number of scheduled, non-cancelled events.
func TestPropertyFiredCount(t *testing.T) {
	f := func(offsets []uint16, cancelMask []bool) bool {
		e := NewEngine()
		want := 0
		for i, off := range offsets {
			ev := e.At(Ticks(off), func() {})
			if i < len(cancelMask) && cancelMask[i] {
				ev.Cancel()
			} else {
				want++
			}
		}
		e.Run()
		return e.Fired() == uint64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
