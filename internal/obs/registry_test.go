package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers every instrument kind from many
// goroutines while a scraper renders the exposition — the -race gate for
// the lock-free observation paths.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("obs_test_ops_total", "ops")
	g := r.Gauge("obs_test_depth", "depth")
	h := r.Histogram("obs_test_latency_seconds", "latency", LatencyBuckets)

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%100) * 1e-6)
				if i%500 == 0 {
					// Concurrent scrape while observations land.
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
				}
				// Concurrent re-registration must return the same series.
				if r.Counter("obs_test_ops_total", "ops") != c {
					t.Error("re-registration returned a different counter")
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

// TestNilSafety proves the disabled-observability path: every operation
// on nil registry/instruments is a no-op, never a panic.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", LatencyBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}

	var tr *Tracer
	tr.Record(Span{Device: "d"})
	if tr.Spans() != nil || tr.Total() != 0 {
		t.Fatal("nil tracer must be inert")
	}
	var l *EventLog
	l.Emit(Event{Kind: "k"})
	if l.Events() != nil || l.Total() != 0 {
		t.Fatal("nil event log must be inert")
	}
}

// TestExpositionGolden pins the Prometheus text format byte-for-byte: the
// scrape contract a collector depends on.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("erasmus_collections_total", "Collections launched.",
		Label{"outcome", "ok"})
	c2 := r.Counter("erasmus_collections_total", "Collections launched.",
		Label{"outcome", "failed"})
	g := r.Gauge("erasmus_queue_depth", "Verification queue depth.")
	h := r.Histogram("erasmus_verify_seconds", "Verify latency.",
		[]float64{0.001, 0.01, 0.1})

	c.Add(3)
	c2.Inc()
	g.Set(7)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP erasmus_collections_total Collections launched.
# TYPE erasmus_collections_total counter
erasmus_collections_total{outcome="failed"} 1
erasmus_collections_total{outcome="ok"} 3
# HELP erasmus_queue_depth Verification queue depth.
# TYPE erasmus_queue_depth gauge
erasmus_queue_depth 7
# HELP erasmus_verify_seconds Verify latency.
# TYPE erasmus_verify_seconds histogram
erasmus_verify_seconds_bucket{le="0.001"} 1
erasmus_verify_seconds_bucket{le="0.01"} 1
erasmus_verify_seconds_bucket{le="0.1"} 2
erasmus_verify_seconds_bucket{le="+Inf"} 3
erasmus_verify_seconds_sum 5.0505
erasmus_verify_seconds_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramBuckets checks bucket edge semantics (le is inclusive).
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // le="1"
	h.Observe(1.5)
	h.Observe(2) // le="2"
	h.Observe(3) // +Inf
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("bucket le=1 = %d, want 1", got)
	}
	if got := h.counts[1].Load(); got != 2 {
		t.Fatalf("bucket le=2 = %d, want 2", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Fatalf("bucket +Inf = %d, want 1", got)
	}
	if h.Sum() != 7.5 {
		t.Fatalf("sum = %v, want 7.5", h.Sum())
	}
}
