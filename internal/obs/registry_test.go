package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers every instrument kind from many
// goroutines while a scraper renders the exposition — the -race gate for
// the lock-free observation paths.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("obs_test_ops_total", "ops")
	g := r.Gauge("obs_test_depth", "depth")
	h := r.Histogram("obs_test_latency_seconds", "latency", LatencyBuckets)

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%100) * 1e-6)
				if i%500 == 0 {
					// Concurrent scrape while observations land.
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
				}
				// Concurrent re-registration must return the same series.
				if r.Counter("obs_test_ops_total", "ops") != c {
					t.Error("re-registration returned a different counter")
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

// TestNilSafety proves the disabled-observability path: every operation
// on nil registry/instruments is a no-op, never a panic.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", LatencyBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}

	var tr *Tracer
	tr.Record(Span{Device: "d"})
	if tr.Spans() != nil || tr.Total() != 0 {
		t.Fatal("nil tracer must be inert")
	}
	var l *EventLog
	l.Emit(Event{Kind: "k"})
	if l.Events() != nil || l.Total() != 0 {
		t.Fatal("nil event log must be inert")
	}
}

// TestExpositionGolden pins the Prometheus text format byte-for-byte: the
// scrape contract a collector depends on.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("erasmus_collections_total", "Collections launched.",
		Label{"outcome", "ok"})
	c2 := r.Counter("erasmus_collections_total", "Collections launched.",
		Label{"outcome", "failed"})
	g := r.Gauge("erasmus_queue_depth", "Verification queue depth.")
	h := r.Histogram("erasmus_verify_seconds", "Verify latency.",
		[]float64{0.001, 0.01, 0.1})

	c.Add(3)
	c2.Inc()
	g.Set(7)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP erasmus_collections_total Collections launched.
# TYPE erasmus_collections_total counter
erasmus_collections_total{outcome="failed"} 1
erasmus_collections_total{outcome="ok"} 3
# HELP erasmus_queue_depth Verification queue depth.
# TYPE erasmus_queue_depth gauge
erasmus_queue_depth 7
# HELP erasmus_verify_seconds Verify latency.
# TYPE erasmus_verify_seconds histogram
erasmus_verify_seconds_bucket{le="0.001"} 1
erasmus_verify_seconds_bucket{le="0.01"} 1
erasmus_verify_seconds_bucket{le="0.1"} 2
erasmus_verify_seconds_bucket{le="+Inf"} 3
erasmus_verify_seconds_sum 5.0505
erasmus_verify_seconds_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionStableUnderConcurrentRegistration races first-touch
// creation of labeled histogram series against observation and scraping:
// every scrape must render families in sorted-name order with each
// histogram's buckets ascending and cumulative counts monotone, and the
// final exposition must be identical no matter which goroutine won each
// registration race. (Before families were sorted, first-registration
// order made the family sequence a race outcome.)
func TestExpositionStableUnderConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	names := []string{
		"obs_race_verify_seconds", "obs_race_apply_seconds",
		"obs_race_collect_seconds", "obs_race_journal_seconds",
	}
	const workers, iters = 8, 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// First touch of each (family, label) series races across
				// all workers.
				name := names[(w+i)%len(names)]
				h := r.Histogram(name, "raced family.",
					[]float64{0.001, 0.01, 0.1},
					Label{"shard", string(rune('0' + (w+i)%3))})
				h.Observe(float64(i%50) * 1e-4)
				if i%100 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
					checkExpositionOrder(t, b.String())
				}
			}
		}(w)
	}
	wg.Wait()

	var b1, b2 strings.Builder
	if err := r.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("two scrapes of quiescent state rendered different bytes")
	}
	checkExpositionOrder(t, b1.String())
	// All four families, three shards each, must be present.
	for _, name := range names {
		for _, shard := range []string{"0", "1", "2"} {
			series := name + `_count{shard="` + shard + `"}`
			if !strings.Contains(b1.String(), series) {
				t.Fatalf("missing series %s", series)
			}
		}
	}
}

// checkExpositionOrder asserts the rendering invariants a scrape relies
// on: TYPE lines in sorted family order, bucket le values ascending with
// monotone cumulative counts within each series.
func checkExpositionOrder(t *testing.T, text string) {
	t.Helper()
	lastFamily := ""
	lastLe, lastCum := -1.0, uint64(0)
	curSeries := ""
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			name := strings.Fields(line)[2]
			if name <= lastFamily {
				t.Fatalf("family %q rendered after %q (not sorted)", name, lastFamily)
			}
			lastFamily = name
			continue
		}
		i := strings.Index(line, "_bucket{")
		if i < 0 {
			continue
		}
		series := line[:strings.LastIndex(line, `le=`)]
		if series != curSeries {
			curSeries, lastLe, lastCum = series, -1.0, 0
		}
		var le float64
		var cum uint64
		rest := line[strings.Index(line, `le="`)+4:]
		leStr := rest[:strings.Index(rest, `"`)]
		if leStr == "+Inf" {
			le = 1e308
		} else {
			if _, err := fmt.Sscanf(leStr, "%g", &le); err != nil {
				t.Fatalf("unparseable le in %q: %v", line, err)
			}
		}
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &cum); err != nil {
			t.Fatalf("unparseable count in %q: %v", line, err)
		}
		if le <= lastLe {
			t.Fatalf("bucket order regressed in %q (le %v after %v)", line, le, lastLe)
		}
		if cum < lastCum {
			t.Fatalf("cumulative count regressed in %q (%d after %d)", line, cum, lastCum)
		}
		lastLe, lastCum = le, cum
	}
}

// TestHistogramBuckets checks bucket edge semantics (le is inclusive).
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // le="1"
	h.Observe(1.5)
	h.Observe(2) // le="2"
	h.Observe(3) // +Inf
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("bucket le=1 = %d, want 1", got)
	}
	if got := h.counts[1].Load(); got != 2 {
		t.Fatalf("bucket le=2 = %d, want 2", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Fatalf("bucket +Inf = %d, want 1", got)
	}
	if h.Sum() != 7.5 {
		t.Fatalf("sum = %v, want 7.5", h.Sum())
	}
}
