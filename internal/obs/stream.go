package obs

import "sync"

// Broker is a bounded fan-out hub for a stream of sequenced items: one
// publisher (the fleet manager's verdict-apply path), any number of
// subscribers, each with its own bounded buffer. Publish never blocks —
// a slow consumer loses its *oldest* buffered item and has its gap flag
// latched, so the channel keeps flowing and the consumer learns it must
// heal by re-reading the backlog from its cursor (every item carries a
// seq; the store/manager retain the authoritative history). This is the
// slow-consumer contract of the streaming API: drop-with-gap-marker,
// never publisher backpressure into the verification pipeline.
//
// All exported methods are nil-safe, matching the rest of the package: a
// nil broker accepts publishes and hands out nil subscriptions whose
// channel is nil (receives block forever; callers select on Done too).
type Broker[T any] struct {
	mu     sync.Mutex
	subs   map[*Subscription[T]]struct{}
	closed bool
}

// Subscription is one consumer's handle on a Broker.
type Subscription[T any] struct {
	b      *Broker[T]
	ch     chan T
	gapped bool
	drops  uint64
}

// NewBroker builds an empty broker.
func NewBroker[T any]() *Broker[T] {
	return &Broker[T]{subs: make(map[*Subscription[T]]struct{})}
}

// Subscribe registers a consumer with a buffer of buf items (minimum 1:
// the overflow protocol needs one slot it can always free). Returns nil
// on a nil or closed broker.
func (b *Broker[T]) Subscribe(buf int) *Subscription[T] {
	if b == nil {
		return nil
	}
	if buf < 1 {
		buf = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	s := &Subscription[T]{b: b, ch: make(chan T, buf)}
	b.subs[s] = struct{}{}
	return s
}

// Publish fans v out to every subscriber. A full subscriber drops its
// oldest buffered item (latching the gap flag) to make room — the new
// item always lands, so a consumer draining an overflowing stream still
// sees the freshest tail plus a gap signal, never a stalled channel.
func (b *Broker[T]) Publish(v T) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for s := range b.subs { //erasmus:allow(maporder) fan-out is order-free: each subscriber owns an independent channel and every one receives the same item
		select {
		case s.ch <- v:
			continue
		default:
		}
		// Buffer full. Only Publish ever sends (under b.mu), so freeing
		// one slot guarantees the retry below succeeds; a concurrent
		// consumer receive only makes more room.
		select {
		case <-s.ch:
			s.gapped = true
			s.drops++
		default: // consumer drained it between the two selects
		}
		select {
		case s.ch <- v:
		default:
		}
	}
}

// Close shuts the broker: every subscriber's channel is closed (a
// receive loop terminates) and future Subscribe/Publish are no-ops.
func (b *Broker[T]) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		close(s.ch)
		delete(b.subs, s)
	}
}

// Subscribers returns the current subscriber count.
func (b *Broker[T]) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Ch is the subscription's receive channel. It is closed when the
// subscription is cancelled or the broker closes; nil on a nil
// subscription (receives block, so pair it with a context/done select).
func (s *Subscription[T]) Ch() <-chan T {
	if s == nil {
		return nil
	}
	return s.ch
}

// TakeGap reports whether the subscription dropped items since the last
// call, clearing the flag. A true return means the consumer's next read
// of its authoritative backlog (AlertsSince/EventsSince from its cursor)
// is required for losslessness; buffered duplicates are then skipped by
// seq.
func (s *Subscription[T]) TakeGap() bool {
	if s == nil {
		return false
	}
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	g := s.gapped
	s.gapped = false
	return g
}

// Drops returns the total items this subscription has dropped.
func (s *Subscription[T]) Drops() uint64 {
	if s == nil {
		return 0
	}
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	return s.drops
}

// Cancel removes the subscription from its broker and closes its
// channel. Safe to call more than once and concurrently with Publish.
func (s *Subscription[T]) Cancel() {
	if s == nil {
		return
	}
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	if _, ok := s.b.subs[s]; !ok {
		return
	}
	delete(s.b.subs, s)
	close(s.ch)
}
