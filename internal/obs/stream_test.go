package obs

import (
	"sync"
	"testing"
)

// A subscriber that keeps up sees every published item in order, with no
// gap flag.
func TestBrokerDelivery(t *testing.T) {
	b := NewBroker[int]()
	s := b.Subscribe(8)
	for i := 1; i <= 8; i++ {
		b.Publish(i)
	}
	for i := 1; i <= 8; i++ {
		if got := <-s.Ch(); got != i {
			t.Fatalf("received %d, want %d", got, i)
		}
	}
	if s.TakeGap() {
		t.Fatal("in-budget delivery latched a gap")
	}
	if d := s.Drops(); d != 0 {
		t.Fatalf("drops = %d, want 0", d)
	}
}

// A slow subscriber loses the OLDEST buffered items — the freshest tail
// always survives — and its gap flag latches until taken.
func TestBrokerSlowConsumerDropsOldest(t *testing.T) {
	b := NewBroker[int]()
	s := b.Subscribe(3)
	for i := 1; i <= 10; i++ {
		b.Publish(i)
	}
	// Buffer of 3 after 10 publishes: items 8, 9, 10.
	for want := 8; want <= 10; want++ {
		if got := <-s.Ch(); got != want {
			t.Fatalf("received %d, want %d (drop-oldest violated)", got, want)
		}
	}
	if !s.TakeGap() {
		t.Fatal("overflow did not latch the gap flag")
	}
	if s.TakeGap() {
		t.Fatal("TakeGap did not clear the flag")
	}
	if d := s.Drops(); d != 7 {
		t.Fatalf("drops = %d, want 7", d)
	}
}

// Publish must never block, even with a dead subscriber, and Cancel mid
// -publish must be safe.
func TestBrokerPublishNeverBlocks(t *testing.T) {
	b := NewBroker[int]()
	dead := b.Subscribe(1)
	live := b.Subscribe(1024)
	for i := 0; i < 1000; i++ {
		b.Publish(i)
	}
	dead.Cancel()
	dead.Cancel() // idempotent
	b.Publish(1000)
	n := 0
	for range live.Ch() {
		n++
		if n == 1001 {
			break
		}
	}
	if b.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1 after cancel", b.Subscribers())
	}
	b.Close()
	if _, ok := <-live.Ch(); ok {
		t.Fatal("channel still open after broker Close")
	}
	if b.Subscribe(4) != nil {
		t.Fatal("Subscribe on a closed broker returned a live subscription")
	}
}

// Nil broker and nil subscription are inert, like the rest of the
// package.
func TestBrokerNilSafety(t *testing.T) {
	var b *Broker[int]
	b.Publish(1)
	b.Close()
	if b.Subscribers() != 0 {
		t.Fatal("nil broker has subscribers")
	}
	s := b.Subscribe(4)
	if s != nil {
		t.Fatal("nil broker handed out a subscription")
	}
	s.Cancel()
	if s.TakeGap() || s.Drops() != 0 || s.Ch() != nil {
		t.Fatal("nil subscription not inert")
	}
}

// Concurrent publishers, subscribers and cancels under -race: the broker
// must stay consistent and every subscriber channel must eventually
// close.
func TestBrokerConcurrency(t *testing.T) {
	b := NewBroker[int]()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b.Publish(base + i)
			}
		}(w * 10000)
	}
	var consumers sync.WaitGroup
	for c := 0; c < 8; c++ {
		s := b.Subscribe(16)
		consumers.Add(1)
		go func(s *Subscription[int], cancelEarly bool) {
			defer consumers.Done()
			n := 0
			for range s.Ch() {
				n++
				if cancelEarly && n == 50 {
					s.Cancel()
					return
				}
				s.TakeGap()
			}
		}(s, c%2 == 0)
	}
	wg.Wait()
	b.Close()
	consumers.Wait()
}

// The event log's cursor contract mirrors the store's: seqs assigned in
// emission order, EventsSince resumes without gap inside the retained
// ring and reports an explicit gap beyond it, and Watch delivers live
// events in seq order.
func TestEventLogSeqAndWatch(t *testing.T) {
	l := NewEventLog(4)
	sub := l.Watch(16)
	for i := 0; i < 6; i++ {
		l.Emit(Event{Subsystem: "test", Kind: "k"})
	}
	// Ring of 4 after 6 emits retains seqs 3..6.
	evs, gap := l.EventsSince(0)
	if !gap || len(evs) != 4 || evs[0].Seq != 3 || evs[3].Seq != 6 {
		t.Fatalf("EventsSince(0) = %+v gap=%v, want gap + seqs 3..6", evs, gap)
	}
	evs, gap = l.EventsSince(4)
	if gap || len(evs) != 2 || evs[0].Seq != 5 {
		t.Fatalf("EventsSince(4) = %+v gap=%v, want seqs 5,6 without gap", evs, gap)
	}
	if evs, gap = l.EventsSince(6); gap || len(evs) != 0 {
		t.Fatalf("EventsSince(head) = %+v gap=%v, want empty", evs, gap)
	}
	for want := uint64(1); want <= 6; want++ {
		ev := <-sub.Ch()
		if ev.Seq != want {
			t.Fatalf("watched seq %d, want %d", ev.Seq, want)
		}
	}
	sub.Cancel()

	var nilLog *EventLog
	if evs, gap := nilLog.EventsSince(0); evs != nil || gap {
		t.Fatal("nil event log not inert")
	}
	if nilLog.Watch(4) != nil {
		t.Fatal("nil event log handed out a subscription")
	}
}
