package obs

import (
	"encoding/json"
	"net"
	"net/http"
)

// MetricsHandler serves the registry in Prometheus text format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// JSONHandler serves fn's result as indented JSON, re-evaluated per
// request.
func JSONHandler(fn func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(fn())
	})
}

// HealthHandler serves fn's detail as JSON with status 200 when healthy
// and 503 otherwise — the liveness/readiness contract load balancers and
// scrapers expect.
func HealthHandler(fn func() (ok bool, detail any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		ok, detail := fn()
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(detail)
	})
}

// TraceHandler serves the tracer's retained spans as JSON, optionally
// filtered with ?device=addr.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if dev := req.URL.Query().Get("device"); dev != "" {
			spans := t.SpansFor(dev)
			if spans == nil {
				spans = []Span{}
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(spans)
			return
		}
		t.WriteJSON(w)
	})
}

// EventsHandler serves the event log's retained events as JSON.
func EventsHandler(l *EventLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		l.WriteJSON(w)
	})
}

// ServeMetrics starts a background HTTP server exposing the registry at
// /metrics on addr (e.g. "127.0.0.1:0"). It returns the bound address and
// a shutdown function — the one-call exposition path for a process that
// wants metrics without assembling its own mux (erasmus-serve builds a
// fuller surface by hand).
func ServeMetrics(addr string, r *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r))
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
