// Package obs is the verifier's zero-dependency observability layer:
// a concurrency-safe registry of counters, gauges and fixed-bucket
// histograms with Prometheus text-format exposition, a ring-buffer
// collection tracer for per-device post-mortems, and a structured event
// log replacing ad-hoc stderr notes.
//
// ERASMUS argues that attestation quality is a runtime property — QoA and
// freshness only mean something while the fleet is live — so the verifier
// must be measurable in operation, not just summarized at exit. Every
// instrument here is built for the hot paths it observes: metrics are
// lock-free atomics after registration, and every type is nil-safe, so a
// subsystem built without a registry pays one nil-check per observation
// and is bit-identical in behavior to an instrumented one (enforced by
// the fleet equivalence tests).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name="value" pair attached to a metric at
// registration (e.g. the verify shard or collection mode). Series of the
// same name with different labels form one exposition family.
type Label struct {
	Name, Value string
}

// metricKind selects the Prometheus TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered series.
type metric struct {
	name   string
	help   string
	kind   metricKind
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds registered metrics. Registration takes a lock; the
// returned instruments are pure atomics. All methods are nil-safe: a nil
// registry hands out nil instruments whose operations are no-ops, so
// instrumented code needs no "is observability on?" branches.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	index   map[string]int
}

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// seriesKey identifies one (name, labels) series for dedup.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('{')
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String()
}

// register installs a series, returning the existing one when (name,
// labels) was already registered — re-registration hands back the same
// instrument rather than splitting a series in the exposition.
func (r *Registry) register(m metric) metric {
	key := seriesKey(m.name, m.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.index[key]; ok {
		return r.metrics[i]
	}
	r.index[key] = len(r.metrics)
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or retrieves) a monotonically increasing counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.register(metric{
		name: name, help: help, kind: kindCounter, labels: labels, c: &Counter{},
	}).c
}

// Gauge registers (or retrieves) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(metric{
		name: name, help: help, kind: kindGauge, labels: labels, g: &Gauge{},
	}).g
}

// Histogram registers (or retrieves) a fixed-bucket histogram. buckets
// must be sorted ascending; the implicit +Inf bucket is added. An
// existing series keeps its original buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	h := newHistogram(buckets)
	return r.register(metric{
		name: name, help: help, kind: kindHistogram, labels: labels, h: h,
	}).h
}

// Counter is a lock-free monotonic counter. Nil-safe.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters are monotonic).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a lock-free signed gauge. Nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with atomic bucket counters and a
// CAS-accumulated sum: observations from any number of goroutines never
// take a lock. Nil-safe.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists here are ≲ 20 entries, and the scan is
	// branch-predictable — cheaper than sort.SearchFloat64s' call overhead
	// on the verify hot path.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// LatencyBuckets is the default histogram layout for operation latencies
// in seconds: 1 µs to 10 s, roughly logarithmic — WAL appends live at the
// bottom, full-history batch verifications and snapshots at the top.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// SizeBuckets is the default layout for counts (batch sizes, record
// counts): powers of two from 1 to 4096.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// formatLabels renders {a="b",c="d"} or "".
func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Name, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	if v == math.Inf(1) {
		return "+Inf"
	}
	return strconv(v)
}

// strconv formats a float the way Prometheus expects (no exponent for
// integers, shortest round-trip otherwise).
func strconv(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, grouped by family in sorted name order with series
// sorted inside each family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := append([]metric(nil), r.metrics...)
	r.mu.Unlock()

	// Group series into families by name. Families render in sorted name
	// order, NOT first-registration order: with labeled series created on
	// first touch from concurrent goroutines, registration order is a race
	// outcome, and two scrapes of identical state must render identical
	// bytes (modulo values) for diffing and content-hash dedup to work.
	order := make([]string, 0, len(metrics))
	families := make(map[string][]metric)
	for _, m := range metrics {
		if _, ok := families[m.name]; !ok {
			order = append(order, m.name)
		}
		families[m.name] = append(families[m.name], m)
	}
	sort.Strings(order)
	var b strings.Builder
	for _, name := range order {
		fam := families[name]
		sort.Slice(fam, func(i, j int) bool {
			return seriesKey(fam[i].name, fam[i].labels) < seriesKey(fam[j].name, fam[j].labels)
		})
		typ := "counter"
		switch fam[0].kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if fam[0].help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, fam[0].help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
		for _, m := range fam {
			switch m.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", name, formatLabels(m.labels), m.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", name, formatLabels(m.labels), m.g.Value())
			case kindHistogram:
				// _count is the +Inf cumulative bucket, not the separate
				// count atomic: under concurrent observation the two can
				// transiently differ, and a scrape must stay internally
				// consistent.
				cum := uint64(0)
				for i := range m.h.counts {
					cum += m.h.counts[i].Load()
					le := "+Inf"
					if i < len(m.h.bounds) {
						le = formatFloat(m.h.bounds[i])
					}
					fmt.Fprintf(&b, "%s_bucket%s %d\n",
						name, formatLabels(m.labels, Label{"le", le}), cum)
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", name, formatLabels(m.labels), strconv(m.h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", name, formatLabels(m.labels), cum)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
