package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestTracerRing exercises wrap-around ordering: the ring keeps the most
// recent capacity spans, oldest first.
func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Span{Device: fmt.Sprintf("dev-%d", i), LaunchTick: int64(i)})
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := int64(6 + i); sp.LaunchTick != want {
			t.Fatalf("span %d tick = %d, want %d", i, sp.LaunchTick, want)
		}
	}
	if got := tr.SpansFor("dev-8"); len(got) != 1 || got[0].LaunchTick != 8 {
		t.Fatalf("SpansFor(dev-8) = %+v", got)
	}
	if got := tr.SpansFor("dev-0"); got != nil {
		t.Fatalf("evicted span still returned: %+v", got)
	}
}

// TestTracerJSON checks the dump is a valid, complete JSON document.
func TestTracerJSON(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Span{Device: "dev-1", LaunchTick: 42, Records: 5, Outcome: "ok", Delta: true})
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Total uint64 `json:"total_spans"`
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, b.String())
	}
	if doc.Total != 1 || len(doc.Spans) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	sp := doc.Spans[0]
	if sp.Device != "dev-1" || sp.LaunchTick != 42 || sp.Records != 5 || !sp.Delta || sp.Outcome != "ok" {
		t.Fatalf("span round-trip mismatch: %+v", sp)
	}
}

// TestTracerConcurrency is the -race gate for concurrent producers and a
// concurrent reader.
func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(64)
	l := NewEventLog(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record(Span{Device: "d", LaunchTick: int64(i)})
				l.Emit(Event{Subsystem: "test", Kind: "tick", Tick: int64(i)})
				if i%250 == 0 {
					tr.Spans()
					l.Events()
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Total() != 4000 || l.Total() != 4000 {
		t.Fatalf("totals = %d/%d, want 4000/4000", tr.Total(), l.Total())
	}
}

// TestEventLogRing mirrors the tracer ring semantics for events.
func TestEventLogRing(t *testing.T) {
	l := NewEventLog(2)
	l.Emit(Event{Kind: "a"})
	l.Emit(Event{Kind: "b"})
	l.Emit(Event{Kind: "c"})
	evs := l.Events()
	if len(evs) != 2 || evs[0].Kind != "b" || evs[1].Kind != "c" {
		t.Fatalf("events = %+v", evs)
	}
	var b strings.Builder
	if err := l.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(b.String())) {
		t.Fatalf("dump is not valid JSON: %s", b.String())
	}
}
