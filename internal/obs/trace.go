package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Span is one collection's life through the verifier: launched at the
// device's scheduled tick, resolved by the transport, verified, and its
// verdict applied to fleet state. LaunchTick is virtual time (the same
// tick the alert stream stamps); the wall-clock fields are process
// nanoseconds (time.Now().UnixNano()), usable to measure real pipeline
// lag even when the engine's virtual clock outruns the wall clock.
type Span struct {
	Device string `json:"device"`
	// LaunchTick is the virtual time the collection was launched.
	LaunchTick int64 `json:"launch_tick"`
	// SubmitWall/ApplyWall bracket the verification pipeline: transport
	// callback (history in hand) to verdict folded into device state.
	SubmitWall int64 `json:"submit_wall_ns"`
	ApplyWall  int64 `json:"apply_wall_ns"`
	// VerifyNanos is this collection's share of its verification batch's
	// wall time (batch time / batch size — per-job attribution inside the
	// worker pool lives in the per-shard latency histograms instead).
	VerifyNanos int64 `json:"verify_ns"`
	// Delta marks an incremental (since-watermark) round.
	Delta bool `json:"delta"`
	// Records is the number of records the device shipped.
	Records int `json:"records"`
	// Outcome classifies the applied verdict: ok, infection, tamper, or
	// failed (transport error, no history collected).
	Outcome string `json:"outcome"`
	// Err carries the transport error for failed collections.
	Err string `json:"err,omitempty"`
}

// Tracer is a bounded ring buffer of collection spans: the most recent
// capacity spans survive, older ones are overwritten. One mutex-guarded
// append per applied collection — collections are scheduled at TC
// granularity, so contention is negligible next to verification cost.
// All methods are nil-safe.
type Tracer struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	total uint64
}

// NewTracer builds a tracer retaining the last capacity spans
// (default 4096 when capacity ≤ 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{buf: make([]Span, 0, capacity)}
}

// Record appends one completed span, overwriting the oldest at capacity.
func (t *Tracer) Record(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, sp)
	} else {
		t.buf[t.next] = sp
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.total++
	t.mu.Unlock()
}

// Total returns the number of spans ever recorded (retained or not).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// SpansFor filters the retained spans by device, oldest first.
func (t *Tracer) SpansFor(device string) []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, sp := range t.Spans() {
		if sp.Device == device {
			out = append(out, sp)
		}
	}
	return out
}

// WriteJSON dumps the retained spans as one JSON document — the
// post-mortem artifact for any fleet run.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		t = &Tracer{} // a nil tracer writes the empty document
	}
	doc := struct {
		Total uint64 `json:"total_spans"`
		Spans []Span `json:"spans"`
	}{Total: t.Total(), Spans: t.Spans()}
	if doc.Spans == nil {
		doc.Spans = []Span{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Event is one structured operational event — the replacement for ad-hoc
// stderr notes: machine-readable, bounded, and visible over /eventz while
// the process is alive.
type Event struct {
	// Seq is the log-assigned monotone sequence number (1, 2, 3, … in
	// emission order): the resumable cursor for /watch/events. Emit
	// assigns it; caller-set values are overwritten.
	Seq uint64 `json:"seq"`
	// Tick is the virtual time of the event (0 when outside engine time).
	Tick int64 `json:"tick"`
	// Subsystem names the emitter (fleet, popsim, store, serve).
	Subsystem string `json:"subsystem"`
	// Device is the affected device address, when the event has one.
	Device string `json:"device,omitempty"`
	// Kind is a stable machine-matchable event type.
	Kind string `json:"kind"`
	// Detail is the human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

// EventLog is a bounded ring of structured events; nil-safe like Tracer.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
	brk   *Broker[Event] // lazily created on first Watch
}

// NewEventLog builds an event log retaining the last capacity events
// (default 1024 when capacity ≤ 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 1024
	}
	return &EventLog{buf: make([]Event, 0, capacity)}
}

// Emit appends one event, overwriting the oldest at capacity, assigns
// its sequence number (total emissions, 1-based), and fans it out to
// watchers.
func (l *EventLog) Emit(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.total++
	ev.Seq = l.total
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, ev)
	} else {
		l.buf[l.next] = ev
		l.next = (l.next + 1) % cap(l.buf)
	}
	// Published under l.mu so watchers receive in seq order (the broker
	// never blocks, so this costs one try-send per subscriber).
	l.brk.Publish(ev)
	l.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// Total returns the number of events ever emitted.
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// EventsSince returns the retained events with Seq > since, oldest
// first. gap reports whether events in (since, first-retained) have been
// overwritten by the ring: the consumer missed history it cannot read
// back and should be told explicitly. A since at or beyond the newest
// seq returns (nil, false).
func (l *EventLog) EventsSince(since uint64) (events []Event, gap bool) {
	if l == nil {
		return nil, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	oldest := l.total - uint64(len(l.buf)) // seq of last overwritten event
	if since < oldest {
		gap = true
		since = oldest
	}
	if since >= l.total {
		return nil, gap
	}
	ordered := make([]Event, 0, len(l.buf))
	ordered = append(ordered, l.buf[l.next:]...)
	ordered = append(ordered, l.buf[:l.next]...)
	return append([]Event(nil), ordered[since-oldest:]...), gap
}

// Watch subscribes to live events with a buffer of buf items; cancel via
// Subscription.Cancel. Returns nil on a nil log.
func (l *EventLog) Watch(buf int) *Subscription[Event] {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	if l.brk == nil {
		l.brk = NewBroker[Event]()
	}
	brk := l.brk
	l.mu.Unlock()
	return brk.Subscribe(buf)
}

// WriteJSON dumps the retained events as one JSON document.
func (l *EventLog) WriteJSON(w io.Writer) error {
	if l == nil {
		l = &EventLog{} // a nil log writes the empty document
	}
	doc := struct {
		Total  uint64  `json:"total_events"`
		Events []Event `json:"events"`
	}{Total: l.Total(), Events: l.Events()}
	if doc.Events == nil {
		doc.Events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
