package swarm

import (
	"math"
	"testing"

	"erasmus/internal/sim"
)

func staticSwarm(t *testing.T, e *sim.Engine, n int) *Swarm {
	t.Helper()
	s, err := New(Config{
		N: n, Area: 100, Radius: 200, // everyone in range of everyone
		Speed: 0, Seed: 42, Engine: e,
		MemorySize: 4 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine()
	bad := []Config{
		{N: 5, Area: 10, Radius: 5},                       // no engine
		{N: 1, Area: 10, Radius: 5, Engine: e},            // too few
		{N: 5, Area: 0, Radius: 5, Engine: e},             // no area
		{N: 5, Area: 10, Radius: 0, Engine: e},            // no radius
		{N: 5, Area: 10, Radius: 5, Speed: -1, Engine: e}, // bad speed
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestStaticPositionsStable(t *testing.T) {
	e := sim.NewEngine()
	s := staticSwarm(t, e, 5)
	x0, y0 := s.Position(2, 0)
	x1, y1 := s.Position(2, sim.Hour)
	if x0 != x1 || y0 != y1 {
		t.Fatal("static node moved")
	}
}

func TestMobilityMovesNodes(t *testing.T) {
	e := sim.NewEngine()
	s, err := New(Config{
		N: 4, Area: 1000, Radius: 50, Speed: 10, Seed: 7, Engine: e,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	x0, y0 := s.Position(1, 0)
	x1, y1 := s.Position(1, sim.Minute)
	moved := math.Hypot(x1-x0, y1-y0)
	if moved == 0 {
		t.Fatal("mobile node did not move")
	}
	// Speed bound: cannot exceed Speed × t.
	if moved > 10*60+1 {
		t.Fatalf("node moved %.1fm in 60s at 10m/s", moved)
	}
}

func TestPositionsStayInArea(t *testing.T) {
	e := sim.NewEngine()
	s, err := New(Config{N: 3, Area: 200, Radius: 50, Speed: 25, Seed: 3, Engine: e})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	for i := 0; i < 3; i++ {
		for tt := sim.Ticks(0); tt < 10*sim.Minute; tt += 13 * sim.Second {
			x, y := s.Position(i, tt)
			if x < -1e-9 || y < -1e-9 || x > 200+1e-9 || y > 200+1e-9 {
				t.Fatalf("node %d at (%.1f,%.1f) outside area", i, x, y)
			}
		}
	}
}

func TestSnapshotTreeFullyConnected(t *testing.T) {
	e := sim.NewEngine()
	s := staticSwarm(t, e, 6)
	tree := s.SnapshotTree(0, 0)
	for i := 0; i < 6; i++ {
		if !tree.Reachable(i) {
			t.Fatalf("node %d unreachable in a clique", i)
		}
	}
	if tree.Depth[0] != 0 || tree.Parent[0] != -1 {
		t.Fatal("root malformed")
	}
}

func TestSnapshotTreePartition(t *testing.T) {
	e := sim.NewEngine()
	s, err := New(Config{N: 2, Area: 1000, Radius: 1, Speed: 0, Seed: 9, Engine: e})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	tree := s.SnapshotTree(0, 0)
	if tree.Reachable(1) {
		t.Fatal("distant node reachable with 1m radius")
	}
}

// Static swarm: both protocols achieve full coverage.
func TestStaticSwarmBothProtocolsSucceed(t *testing.T) {
	e := sim.NewEngine()
	s := staticSwarm(t, e, 8)
	e.RunUntil(30 * sim.Minute) // several TM=10min windows pass

	od := s.RunOnDemand(0)
	if od.Completed != 8 || od.Verified != 8 {
		t.Fatalf("on-demand static: completed=%d verified=%d", od.Completed, od.Verified)
	}
	er := s.RunErasmusCollection(0, 2)
	if er.Completed != 8 || er.Verified != 8 {
		t.Fatalf("erasmus static: completed=%d verified=%d", er.Completed, er.Verified)
	}
	if er.Duration >= od.Duration {
		t.Fatalf("erasmus instance (%v) not faster than on-demand (%v)", er.Duration, od.Duration)
	}
	if er.BusyTime*100 > od.BusyTime {
		t.Fatalf("erasmus busy time %v not ≪ on-demand %v", er.BusyTime, od.BusyTime)
	}
}

// §6's claim: under high mobility, on-demand collective attestation
// collapses while ERASMUS collection keeps working.
func TestMobilityBreaksOnDemandNotErasmus(t *testing.T) {
	e := sim.NewEngine()
	s, err := New(Config{
		N: 16, Area: 150, Radius: 60,
		Speed: 12, // link lifetime ~5s vs ~4.5s measurements
		Seed:  11, Engine: e,
		MemorySize: 10 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	e.RunUntil(25 * sim.Minute)

	var odTotal, erTotal, reachedOD, reachedER int
	for trial := 0; trial < 6; trial++ {
		e.RunUntil(e.Now() + sim.Minute)
		od := s.RunOnDemand(0)
		odTotal += od.Completed
		reachedOD += od.Reached
		e.RunUntil(e.Now() + sim.Minute)
		er := s.RunErasmusCollection(0, 2)
		erTotal += er.Completed
		reachedER += er.Reached
	}
	if reachedOD == 0 || reachedER == 0 {
		t.Fatal("swarm never connected; tune the test topology")
	}
	odRate := float64(odTotal) / float64(reachedOD)
	erRate := float64(erTotal) / float64(reachedER)
	if erRate <= odRate {
		t.Fatalf("erasmus completion %.2f not above on-demand %.2f under mobility", erRate, odRate)
	}
	if erRate < 0.8 {
		t.Fatalf("erasmus completion %.2f too low — relay should survive mobility", erRate)
	}
}

// §6: staggered schedules bound the number of simultaneously-busy nodes.
func TestStaggerBoundsConcurrentMeasurement(t *testing.T) {
	aligned := func(stagger bool) int {
		e := sim.NewEngine()
		s, err := New(Config{
			N: 10, Area: 100, Radius: 200, Speed: 0, Seed: 5, Engine: e,
			MemorySize: 10 * 1024, Stagger: stagger,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Stop()
		e.RunUntil(35 * sim.Minute)
		return s.MaxConcurrentMeasuring(0, 35*sim.Minute)
	}
	all := aligned(false)
	few := aligned(true)
	if all != 10 {
		t.Fatalf("aligned schedules: peak = %d, want all 10 measuring together", all)
	}
	if few > 2 {
		t.Fatalf("staggered schedules: peak = %d, want ≤ 2", few)
	}
}

func TestCoverageMath(t *testing.T) {
	r := InstanceResult{Completed: 3}
	if r.Coverage(4) != 0.75 {
		t.Fatalf("coverage = %v", r.Coverage(4))
	}
	if r.Coverage(0) != 0 {
		t.Fatal("division by zero")
	}
}
