// Package swarm reproduces §6: collective attestation of a group of
// interconnected devices, comparing on-demand swarm RA (SEDA/LISA-style,
// which needs the topology to stay essentially static for the whole
// instance) against ERASMUS self-measurement with a LISA-α-style relay
// collection (which only needs links to live for a millisecond-scale
// relay).
//
// Nodes are full prover devices (MSP430-class models running real ERASMUS
// provers) placed on a plane with a random-waypoint mobility model; two
// nodes can exchange packets while within communication radius. An
// attestation instance floods a request down a BFS tree snapshotted at the
// start and relays responses back up; every hop requires the link to be
// alive at the moment the packet crosses it, so long-running instances
// break under mobility.
package swarm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"erasmus/internal/core"
	"erasmus/internal/costmodel"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/hw/mcu"
	"erasmus/internal/sim"
)

// Config parameterizes a swarm.
type Config struct {
	// N is the number of devices (≥ 2).
	N int
	// Area is the side of the square deployment region, in meters.
	Area float64
	// Radius is the communication range, in meters.
	Radius float64
	// Speed is the node speed for random-waypoint mobility, in m/s
	// (0 = static).
	Speed float64
	// Seed drives placement and mobility deterministically.
	Seed int64
	// Engine is the shared simulation. Required.
	Engine *sim.Engine
	// Alg is the measurement MAC (default keyed BLAKE2s).
	Alg mac.Algorithm
	// TM is the self-measurement period (default 10 min).
	TM sim.Ticks
	// MemorySize is each device's attested memory (default 10 KB: ≈4.5 s
	// measurements at 8 MHz with BLAKE2s, the §6 pain point).
	MemorySize int
	// Slots is the per-node buffer size (default 16).
	Slots int
	// HopLatency is the one-hop packet latency (default 2 ms).
	HopLatency sim.Ticks
	// Stagger offsets each node's schedule by i×TM/N so only a bounded
	// fraction of the swarm measures concurrently (§6's availability
	// argument).
	Stagger bool
}

// Node is one swarm member.
type Node struct {
	ID     int
	Dev    *mcu.Device
	Prover *core.Prover
	Key    []byte

	golden   []byte    // clean-state memory digest for QoSA verdicts
	segments []segment // mobility trail, generated lazily
	rng      *rand.Rand
}

// segment is one straight random-waypoint leg.
type segment struct {
	t0, t1         sim.Ticks
	x0, y0, x1, y1 float64
}

// Swarm is the full group.
type Swarm struct {
	cfg   Config
	Nodes []*Node
}

// New builds the swarm: places nodes uniformly, provisions per-device
// keys, starts every prover's self-measurement loop (staggered if asked).
func New(cfg Config) (*Swarm, error) {
	if cfg.Engine == nil {
		return nil, errors.New("swarm: Engine required")
	}
	if cfg.N < 2 {
		return nil, fmt.Errorf("swarm: need ≥2 nodes, got %d", cfg.N)
	}
	if cfg.Area <= 0 || cfg.Radius <= 0 {
		return nil, fmt.Errorf("swarm: Area and Radius must be positive")
	}
	if cfg.Speed < 0 {
		return nil, fmt.Errorf("swarm: negative speed")
	}
	if !cfg.Alg.Valid() {
		cfg.Alg = mac.KeyedBLAKE2s
	}
	if cfg.TM <= 0 {
		cfg.TM = 10 * sim.Minute
	}
	if cfg.MemorySize <= 0 {
		cfg.MemorySize = 10 * 1024
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 16
	}
	if cfg.HopLatency <= 0 {
		cfg.HopLatency = 2 * sim.Millisecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	master := rand.New(rand.NewSource(seed))

	s := &Swarm{cfg: cfg}
	for i := 0; i < cfg.N; i++ {
		key := make([]byte, 32)
		master.Read(key)
		dev, err := mcu.New(mcu.Config{
			Engine:     cfg.Engine,
			MemorySize: cfg.MemorySize,
			StoreSize:  cfg.Slots * core.RecordSize(cfg.Alg),
			Key:        key,
		})
		if err != nil {
			return nil, err
		}
		// Staggering assigns node i the schedule phase i×TM/N, so at most
		// ⌈N×measurement/TM⌉ nodes measure concurrently (§6).
		phase := sim.Ticks(0)
		if cfg.Stagger {
			phase = staggerWindow(cfg.TM, i, cfg.N)
		}
		sched, err := core.NewRegularWithPhase(cfg.TM, phase)
		if err != nil {
			return nil, err
		}
		prv, err := core.NewProver(dev, core.ProverConfig{Alg: cfg.Alg, Schedule: sched, Slots: cfg.Slots})
		if err != nil {
			return nil, err
		}
		n := &Node{
			ID:     i,
			Dev:    dev,
			Prover: prv,
			Key:    key,
			rng:    rand.New(rand.NewSource(seed + int64(i)*7919)),
		}
		// Initial placement and first mobility leg.
		x, y := n.rng.Float64()*cfg.Area, n.rng.Float64()*cfg.Area
		n.segments = []segment{{t0: 0, t1: 0, x0: x, y0: y, x1: x, y1: y}}
		s.Nodes = append(s.Nodes, n)
		prv.Start()
	}
	s.captureGolden()
	return s, nil
}

// Stop halts every prover.
func (s *Swarm) Stop() {
	for _, n := range s.Nodes {
		n.Prover.Stop()
	}
}

// extendTrail generates mobility legs until the trail covers t.
func (s *Swarm) extendTrail(n *Node, t sim.Ticks) {
	last := n.segments[len(n.segments)-1]
	for last.t1 < t {
		// Pick the next waypoint; travel at cfg.Speed.
		nx, ny := n.rng.Float64()*s.cfg.Area, n.rng.Float64()*s.cfg.Area
		dist := math.Hypot(nx-last.x1, ny-last.y1)
		var dur sim.Ticks
		if s.cfg.Speed > 0 {
			dur = sim.Ticks(dist / s.cfg.Speed * float64(sim.Second))
		} else {
			// Static swarm: one segment parked forever.
			dur = sim.MaxTicks - last.t1
			nx, ny = last.x1, last.y1
		}
		if dur <= 0 {
			dur = sim.Millisecond
		}
		next := segment{t0: last.t1, t1: last.t1 + dur, x0: last.x1, y0: last.y1, x1: nx, y1: ny}
		n.segments = append(n.segments, next)
		last = next
	}
}

// Position returns node i's coordinates at time t.
func (s *Swarm) Position(i int, t sim.Ticks) (x, y float64) {
	n := s.Nodes[i]
	s.extendTrail(n, t)
	// Find the covering segment (trails are short; linear scan from the
	// end is fine because queries are mostly recent).
	for j := len(n.segments) - 1; j >= 0; j-- {
		seg := n.segments[j]
		if t >= seg.t0 {
			if seg.t1 == seg.t0 {
				return seg.x1, seg.y1
			}
			frac := float64(t-seg.t0) / float64(seg.t1-seg.t0)
			if frac > 1 {
				frac = 1
			}
			return seg.x0 + (seg.x1-seg.x0)*frac, seg.y0 + (seg.y1-seg.y0)*frac
		}
	}
	first := n.segments[0]
	return first.x0, first.y0
}

// Connected reports whether nodes a and b are within radio range at t.
func (s *Swarm) Connected(a, b int, t sim.Ticks) bool {
	ax, ay := s.Position(a, t)
	bx, by := s.Position(b, t)
	return math.Hypot(ax-bx, ay-by) <= s.cfg.Radius
}

// Tree is a BFS spanning forest snapshot rooted at Root.
type Tree struct {
	Root   int
	Parent []int // -1 for root and unreachable nodes
	Depth  []int // -1 for unreachable nodes
}

// Reachable reports whether node i was in the root's component.
func (t Tree) Reachable(i int) bool { return t.Depth[i] >= 0 }

// SnapshotTree builds the BFS tree over the topology as it stands at time
// t — the tree both protocols flood along.
func (s *Swarm) SnapshotTree(root int, t sim.Ticks) Tree {
	n := len(s.Nodes)
	tree := Tree{Root: root, Parent: make([]int, n), Depth: make([]int, n)}
	for i := range tree.Parent {
		tree.Parent[i] = -1
		tree.Depth[i] = -1
	}
	tree.Depth[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			if v == u || tree.Depth[v] >= 0 {
				continue
			}
			if s.Connected(u, v, t) {
				tree.Parent[v] = u
				tree.Depth[v] = tree.Depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return tree
}

// InstanceResult reports one collective attestation instance.
type InstanceResult struct {
	// Reached counts nodes in the root's component at the snapshot.
	Reached int
	// Completed counts nodes whose response made it back to the root with
	// every hop's link alive at crossing time.
	Completed int
	// Verified counts completed nodes whose evidence passed verification.
	Verified int
	// Duration is the span from request injection to the last response.
	Duration sim.Ticks
	// BusyTime sums prover-side CPU time consumed by the instance.
	BusyTime sim.Ticks
}

// Coverage is Completed / swarm size.
func (r InstanceResult) Coverage(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(r.Completed) / float64(n)
}

// linkAliveOnPath checks that each hop from node up to the root is alive
// at the successive instants a packet would cross it.
func (s *Swarm) relayUp(tree Tree, node int, start sim.Ticks) (sim.Ticks, bool) {
	t := start
	for u := node; tree.Parent[u] >= 0; u = tree.Parent[u] {
		t += s.cfg.HopLatency
		if !s.Connected(u, tree.Parent[u], t) {
			return t, false
		}
	}
	return t, true
}

// RunOnDemand executes one SEDA-style collective on-demand instance at the
// current engine time: flood the authenticated request down the snapshot
// tree, every node computes a real-time measurement, responses relay up.
// Each node's measurement takes the full calibrated measurement time, so
// under mobility the topology has often changed before responses travel.
func (s *Swarm) RunOnDemand(root int) InstanceResult {
	e := s.cfg.Engine
	t0 := e.Now()
	tree := s.SnapshotTree(root, t0)
	res := InstanceResult{}
	measureDur := costmodel.MeasurementTime(costmodel.MSP430, s.cfg.Alg, s.cfg.MemorySize)

	for i, n := range s.Nodes {
		if !tree.Reachable(i) {
			continue
		}
		res.Reached++
		// Request arrives after depth hops; every downstream link must be
		// alive as the request crosses it.
		reqAt := t0
		ok := true
		path := pathToRoot(tree, i)
		for j := len(path) - 1; j >= 1; j-- {
			reqAt += s.cfg.HopLatency
			if !s.Connected(path[j], path[j-1], reqAt) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// The node authenticates and measures: full real-time cost.
		treq := n.Dev.RROC() + uint64(i) + 1
		rec, timing, err := n.Prover.HandleOnDemand(treq,
			core.NewODRequestMAC(s.cfg.Alg, n.Key, treq, 0))
		if err != nil {
			continue
		}
		res.BusyTime += timing.Total()
		doneAt := reqAt + measureDur
		// The response relays back up; the topology has moved on by then.
		endAt, alive := s.relayUp(tree, i, doneAt)
		if !alive {
			continue
		}
		res.Completed++
		if rec.VerifyMAC(s.cfg.Alg, n.Key) {
			res.Verified++
		}
		if endAt-t0 > res.Duration {
			res.Duration = endAt - t0
		}
	}
	return res
}

// RunErasmusCollection executes one ERASMUS + LISA-α-style collection at
// the current engine time: the request floods down, nodes answer from
// their buffers with no computation, responses relay straight back.
func (s *Swarm) RunErasmusCollection(root int, k int) InstanceResult {
	e := s.cfg.Engine
	t0 := e.Now()
	tree := s.SnapshotTree(root, t0)
	res := InstanceResult{}

	for i, n := range s.Nodes {
		if !tree.Reachable(i) {
			continue
		}
		res.Reached++
		reqAt := t0
		ok := true
		path := pathToRoot(tree, i)
		for j := len(path) - 1; j >= 1; j-- {
			reqAt += s.cfg.HopLatency
			if !s.Connected(path[j], path[j-1], reqAt) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		recs, timing := n.Prover.HandleCollect(k)
		res.BusyTime += timing.Total()
		doneAt := reqAt + timing.Total()
		endAt, alive := s.relayUp(tree, i, doneAt)
		if !alive {
			continue
		}
		res.Completed++
		verified := len(recs) > 0
		for _, r := range recs {
			if !r.VerifyMAC(s.cfg.Alg, n.Key) {
				verified = false
			}
		}
		if verified {
			res.Verified++
		}
		if endAt-t0 > res.Duration {
			res.Duration = endAt - t0
		}
	}
	return res
}

func pathToRoot(tree Tree, node int) []int {
	path := []int{node}
	for u := node; tree.Parent[u] >= 0; u = tree.Parent[u] {
		path = append(path, tree.Parent[u])
	}
	return path
}

// MaxConcurrentMeasuring samples the horizon and returns the peak number
// of nodes measuring simultaneously — the §6 availability metric that
// staggered scheduling bounds.
func (s *Swarm) MaxConcurrentMeasuring(from, to, step sim.Ticks) int {
	peak := 0
	for t := from; t <= to; t += step {
		busy := 0
		for _, n := range s.Nodes {
			for _, occ := range n.Dev.CPU().Log() {
				if occ.Kind == "measurement" && occ.Start <= t && t < occ.End {
					busy++
					break
				}
			}
		}
		if busy > peak {
			peak = busy
		}
	}
	return peak
}
