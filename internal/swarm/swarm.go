// Package swarm reproduces §6: collective attestation of a group of
// interconnected devices, comparing on-demand swarm RA (SEDA/LISA-style,
// which needs the topology to stay essentially static for the whole
// instance) against ERASMUS self-measurement with a LISA-α-style relay
// collection (which only needs links to live for a millisecond-scale
// relay).
//
// Nodes are full prover devices (MSP430-class models running real ERASMUS
// provers) placed on a plane with a random-waypoint mobility model; two
// nodes can exchange packets while within communication radius. An
// attestation instance floods a request down a BFS tree snapshotted at the
// start and relays responses back up; every hop requires the link to be
// alive at the moment the packet crosses it, so long-running instances
// break under mobility.
//
// Evidence brought back by an instance is validated with the same
// core.Verifier semantics the fleet pipeline uses — golden-hash
// whitelists, hash-chain ordering/spacing, and a freshness bound of
// MaxGap + clock skew — batched across the swarm through a
// core.BatchVerifier. Topology snapshots run on a spatial hash grid
// (grid.go), so collective instances scale to tens of thousands of
// mobile nodes.
package swarm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"erasmus/internal/core"
	"erasmus/internal/costmodel"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/hw/cpu"
	"erasmus/internal/hw/mcu"
	"erasmus/internal/sim"
)

// Config parameterizes a swarm.
type Config struct {
	// N is the number of devices (≥ 2).
	N int
	// Area is the side of the square deployment region, in meters.
	Area float64
	// Radius is the communication range, in meters.
	Radius float64
	// Speed is the node speed for random-waypoint mobility, in m/s
	// (0 = static).
	Speed float64
	// Seed drives placement and mobility deterministically.
	Seed int64
	// Engine is the shared simulation. Required.
	Engine *sim.Engine
	// Alg is the measurement MAC (default keyed BLAKE2s).
	Alg mac.Algorithm
	// TM is the self-measurement period (default 10 min).
	TM sim.Ticks
	// MemorySize is each device's attested memory (default 10 KB: ≈4.5 s
	// measurements at 8 MHz with BLAKE2s, the §6 pain point).
	MemorySize int
	// Slots is the per-node buffer size (default 16).
	Slots int
	// HopLatency is the one-hop packet latency (default 2 ms).
	HopLatency sim.Ticks
	// Stagger offsets each node's schedule by i×TM/N so only a bounded
	// fraction of the swarm measures concurrently (§6's availability
	// argument).
	Stagger bool
	// VerifyWorkers sizes the batch-verification worker pool used by the
	// collective instance evaluators (≤ 0 selects GOMAXPROCS).
	VerifyWorkers int
	// GridCell overrides the spatial-grid cell size in meters (0 = Radius).
	// Any positive value yields the identical topology; smaller cells trade
	// bucket density for a wider scan ring.
	GridCell float64
}

// Node is one swarm member.
type Node struct {
	ID     int
	Dev    *mcu.Device
	Prover *core.Prover
	Key    []byte

	golden   []byte // clean-state memory digest for QoSA verdicts
	verifier *core.Verifier
	segments []segment // mobility trail, generated lazily, pruned by instances
	rng      *rand.Rand
}

// segment is one straight random-waypoint leg.
type segment struct {
	t0, t1         sim.Ticks
	x0, y0, x1, y1 float64
}

// Swarm is the full group.
type Swarm struct {
	cfg   Config
	Nodes []*Node

	batch *core.BatchVerifier
	// Verifier-side schedule expectations shared by every node's verifier.
	minGap, maxGap, skew sim.Ticks

	// On-demand request issuance: a per-swarm monotonic treq floor (two
	// instances at the same engine instant must not reuse a timestamp) and
	// a seeded nonce stream, one fresh nonce per instance.
	odTreq uint64
	odRng  *rand.Rand

	// Per-instance scratch: position snapshot cache, BFS candidate buffer,
	// root-path buffer. The engine is single-threaded, so instance
	// evaluators may share them.
	pos     positionCache
	candBuf []int32
	pathBuf []int
}

type positionCache struct {
	t      sim.Ticks
	valid  bool
	xs, ys []float64
}

// New builds the swarm: places nodes uniformly, provisions per-device
// keys and verifiers, starts every prover's self-measurement loop
// (staggered if asked).
func New(cfg Config) (*Swarm, error) {
	if cfg.Engine == nil {
		return nil, errors.New("swarm: Engine required")
	}
	if cfg.N < 2 {
		return nil, fmt.Errorf("swarm: need ≥2 nodes, got %d", cfg.N)
	}
	if cfg.Area <= 0 || cfg.Radius <= 0 {
		return nil, fmt.Errorf("swarm: Area and Radius must be positive")
	}
	if cfg.Speed < 0 {
		return nil, fmt.Errorf("swarm: negative speed")
	}
	if cfg.GridCell < 0 {
		return nil, fmt.Errorf("swarm: negative grid cell size")
	}
	if !cfg.Alg.Valid() {
		cfg.Alg = mac.KeyedBLAKE2s
	}
	if cfg.TM <= 0 {
		cfg.TM = 10 * sim.Minute
	}
	if cfg.MemorySize <= 0 {
		cfg.MemorySize = 10 * 1024
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 16
	}
	if cfg.HopLatency <= 0 {
		cfg.HopLatency = 2 * sim.Millisecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	master := rand.New(rand.NewSource(seed))

	s := &Swarm{
		cfg:   cfg,
		batch: core.NewBatchVerifier(cfg.VerifyWorkers),
		odRng: rand.New(rand.NewSource(seed ^ 0x6f6e6365)), // "nonce" stream
	}
	// The verifier-side schedule window mirrors the fleet pipeline: one
	// second of commit jitter below TM, half a period of slack above it,
	// and a TM/10 skew tolerance between the prover RROC and the
	// collector's clock.
	s.minGap = cfg.TM - sim.Second
	if s.minGap < 0 {
		s.minGap = 0
	}
	s.maxGap = cfg.TM + cfg.TM/2
	s.skew = cfg.TM / 10
	s.Nodes = make([]*Node, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		key := make([]byte, 32)
		master.Read(key)
		dev, err := mcu.New(mcu.Config{
			Engine:     cfg.Engine,
			MemorySize: cfg.MemorySize,
			StoreSize:  cfg.Slots * core.RecordSize(cfg.Alg),
			Key:        key,
		})
		if err != nil {
			return nil, err
		}
		// Staggering assigns node i the schedule phase i×TM/N, so at most
		// ⌈N×measurement/TM⌉ nodes measure concurrently (§6).
		phase := sim.Ticks(0)
		if cfg.Stagger {
			phase = staggerWindow(cfg.TM, i, cfg.N)
		}
		sched, err := core.NewRegularWithPhase(cfg.TM, phase)
		if err != nil {
			return nil, err
		}
		prv, err := core.NewProver(dev, core.ProverConfig{Alg: cfg.Alg, Schedule: sched, Slots: cfg.Slots})
		if err != nil {
			return nil, err
		}
		n := &Node{
			ID:     i,
			Dev:    dev,
			Prover: prv,
			Key:    key,
			rng:    rand.New(rand.NewSource(seed + int64(i)*7919)),
		}
		// Initial placement and first mobility leg.
		x, y := n.rng.Float64()*cfg.Area, n.rng.Float64()*cfg.Area
		n.segments = []segment{{t0: 0, t1: 0, x0: x, y0: y, x1: x, y1: y}}
		s.Nodes = append(s.Nodes, n)
		prv.Start()
	}
	s.captureGolden()
	if err := s.buildVerifiers(); err != nil {
		return nil, err
	}
	return s, nil
}

// buildVerifiers provisions one core.Verifier per node: the node's key,
// its clean-state digest as the golden whitelist, the schedule's gap
// bounds, and a freshness bound of MaxGap + skew so evidence older than
// the schedule can possibly explain grades as withheld measurements
// instead of passing on stale-but-authentic records.
func (s *Swarm) buildVerifiers() error {
	for _, n := range s.Nodes {
		v, err := core.NewVerifier(core.VerifierConfig{
			Alg:            s.cfg.Alg,
			Key:            n.Key,
			GoldenHashes:   [][]byte{n.golden},
			MinGap:         s.minGap,
			MaxGap:         s.maxGap,
			FreshnessBound: s.maxGap + s.skew,
			ClockSkew:      s.skew,
		})
		if err != nil {
			return err
		}
		n.verifier = v
	}
	return nil
}

// Verifier returns node i's provisioned verifier (tests and experiment
// harnesses verify out-of-band evidence with it).
func (s *Swarm) Verifier(i int) *core.Verifier { return s.Nodes[i].verifier }

// Stop halts every prover.
func (s *Swarm) Stop() {
	for _, n := range s.Nodes {
		n.Prover.Stop()
	}
}

// extendTrail generates mobility legs until the trail covers t.
func (s *Swarm) extendTrail(n *Node, t sim.Ticks) {
	last := n.segments[len(n.segments)-1]
	for last.t1 < t {
		// Pick the next waypoint; travel at cfg.Speed.
		nx, ny := n.rng.Float64()*s.cfg.Area, n.rng.Float64()*s.cfg.Area
		dist := math.Hypot(nx-last.x1, ny-last.y1)
		var dur sim.Ticks
		if s.cfg.Speed > 0 {
			dur = sim.Ticks(dist / s.cfg.Speed * float64(sim.Second))
		} else {
			// Static swarm: one segment parked forever.
			dur = sim.MaxTicks - last.t1
			nx, ny = last.x1, last.y1
		}
		if dur <= 0 {
			dur = sim.Millisecond
		}
		next := segment{t0: last.t1, t1: last.t1 + dur, x0: last.x1, y0: last.y1, x1: nx, y1: ny}
		n.segments = append(n.segments, next)
		last = next
	}
}

// PruneTrails drops mobility segments that ended before cutoff, keeping at
// least the newest one per node. Instance evaluators prune at their
// snapshot time: engine time is monotonic and every link check within an
// instance happens at or after it, so long-horizon runs hold O(segments
// per instance window) memory instead of the whole mobility history.
// Position queries older than the earliest retained segment return that
// segment's start point.
func (s *Swarm) PruneTrails(cutoff sim.Ticks) {
	for _, n := range s.Nodes {
		segs := n.segments
		j := sort.Search(len(segs), func(k int) bool { return segs[k].t1 >= cutoff })
		if j >= len(segs) {
			j = len(segs) - 1
		}
		if j <= 0 {
			continue
		}
		copy(segs, segs[j:])
		n.segments = segs[:len(segs)-j]
	}
	s.pos.valid = false
}

// Position returns node i's coordinates at time t.
func (s *Swarm) Position(i int, t sim.Ticks) (x, y float64) {
	n := s.Nodes[i]
	s.extendTrail(n, t)
	// Binary search for the covering segment: the last one starting at or
	// before t (trails are pruned, so this stays O(log instance-window)).
	segs := n.segments
	j := sort.Search(len(segs), func(k int) bool { return segs[k].t0 > t }) - 1
	if j < 0 {
		first := segs[0]
		return first.x0, first.y0
	}
	seg := segs[j]
	if seg.t1 == seg.t0 {
		return seg.x1, seg.y1
	}
	frac := float64(t-seg.t0) / float64(seg.t1-seg.t0)
	if frac > 1 {
		frac = 1
	}
	return seg.x0 + (seg.x1-seg.x0)*frac, seg.y0 + (seg.y1-seg.y0)*frac
}

// Connected reports whether nodes a and b are within radio range at t.
func (s *Swarm) Connected(a, b int, t sim.Ticks) bool {
	ax, ay := s.Position(a, t)
	bx, by := s.Position(b, t)
	return withinRadius(ax, ay, bx, by, s.cfg.Radius)
}

// Tree is a BFS spanning forest snapshot rooted at Root.
type Tree struct {
	Root   int
	Parent []int // -1 for root and unreachable nodes
	Depth  []int // -1 for unreachable nodes
}

// Reachable reports whether node i was in the root's component.
func (t Tree) Reachable(i int) bool { return t.Depth[i] >= 0 }

// SnapshotTree builds the BFS tree over the topology as it stands at time
// t — the tree both protocols flood along. Positions are snapshotted once
// and neighbors come from the spatial hash grid, so the scan is
// O(N × density) rather than all-pairs; the result is bit-identical to
// the brute-force scan (same visit order, same parent tie-breaking).
func (s *Swarm) SnapshotTree(root int, t sim.Ticks) Tree {
	n := len(s.Nodes)
	xs, ys := s.positionsAt(t)
	g := buildGrid(s.cfg.Area, s.cfg.GridCell, s.cfg.Radius, xs, ys)

	tree := Tree{Root: root, Parent: make([]int, n), Depth: make([]int, n)}
	for i := range tree.Parent {
		tree.Parent[i] = -1
		tree.Depth[i] = -1
	}
	tree.Depth[root] = 0
	queue := make([]int, 0, 64)
	queue = append(queue, root)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		s.candBuf = g.candidates(u, s.candBuf[:0])
		for _, v32 := range s.candBuf {
			v := int(v32)
			if v == u || tree.Depth[v] >= 0 {
				continue
			}
			if withinRadius(xs[u], ys[u], xs[v], ys[v], s.cfg.Radius) {
				tree.Parent[v] = u
				tree.Depth[v] = tree.Depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return tree
}

// InstanceResult reports one collective attestation instance.
type InstanceResult struct {
	// Reached counts nodes in the root's component at the snapshot.
	Reached int
	// Completed counts nodes whose response made it back to the root with
	// every hop's link alive at crossing time.
	Completed int
	// Verified counts completed nodes whose evidence passed full verifier
	// validation: authentic, whitelisted state, schedule-consistent and
	// fresh within MaxGap + skew.
	Verified int
	// Duration is the span from request injection to the last response.
	Duration sim.Ticks
	// BusyTime sums prover-side CPU time consumed by the instance.
	BusyTime sim.Ticks
}

// Coverage is Completed / swarm size.
func (r InstanceResult) Coverage(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(r.Completed) / float64(n)
}

// relayUp checks that each hop from node up to the root is alive at the
// successive instants a packet would cross it.
func (s *Swarm) relayUp(tree Tree, node int, start sim.Ticks) (sim.Ticks, bool) {
	t := start
	for u := node; tree.Parent[u] >= 0; u = tree.Parent[u] {
		t += s.cfg.HopLatency
		if !s.Connected(u, tree.Parent[u], t) {
			return t, false
		}
	}
	return t, true
}

// deliverRequest walks the request flood from the root down to node along
// the snapshot tree, checking every link at the instant the packet crosses
// it. It returns the arrival time and whether all links held.
func (s *Swarm) deliverRequest(tree Tree, node int, t0 sim.Ticks) (sim.Ticks, bool) {
	path := s.pathToRoot(tree, node)
	reqAt := t0
	for j := len(path) - 1; j >= 1; j-- {
		reqAt += s.cfg.HopLatency
		if !s.Connected(path[j], path[j-1], reqAt) {
			return reqAt, false
		}
	}
	return reqAt, true
}

// nextODRequest issues the verifier-side parameters of one on-demand
// instance: a treq strictly above every previously-issued one (so two
// instances at the same engine instant cannot collide with the provers'
// anti-replay floor) and a fresh nonce bound into every request MAC of the
// instance.
func (s *Swarm) nextODRequest() (treq uint64, nonce uint32) {
	treq = s.Nodes[0].Dev.RROC() + 1
	if treq <= s.odTreq {
		treq = s.odTreq + 1
	}
	s.odTreq = treq
	return treq, s.odRng.Uint32()
}

// RunOnDemand executes one SEDA-style collective on-demand instance at the
// current engine time: flood the authenticated request down the snapshot
// tree, every node computes a real-time measurement, responses relay up.
// Each node's measurement takes the full calibrated measurement time, so
// under mobility the topology has often changed before responses travel.
func (s *Swarm) RunOnDemand(root int) InstanceResult {
	e := s.cfg.Engine
	t0 := e.Now()
	s.PruneTrails(t0)
	tree := s.SnapshotTree(root, t0)
	res := InstanceResult{}
	measureDur := costmodel.MeasurementTime(costmodel.MSP430, s.cfg.Alg, s.cfg.MemorySize)
	treq, nonce := s.nextODRequest()

	for i, n := range s.Nodes {
		if !tree.Reachable(i) {
			continue
		}
		res.Reached++
		// Request arrives after depth hops; every downstream link must be
		// alive as the request crosses it.
		reqAt, ok := s.deliverRequest(tree, i, t0)
		if !ok {
			continue
		}
		// The node authenticates and measures: full real-time cost.
		rec, timing, err := n.Prover.HandleOnDemandNonce(treq, nonce,
			core.NewODRequestMAC(s.cfg.Alg, n.Key, treq, int(nonce)))
		if err != nil {
			continue
		}
		res.BusyTime += timing.Total()
		doneAt := reqAt + measureDur
		// The response relays back up; the topology has moved on by then.
		endAt, alive := s.relayUp(tree, i, doneAt)
		if !alive {
			continue
		}
		res.Completed++
		rep := n.verifier.VerifyHistory([]core.Record{rec}, n.Dev.RROC(), 0)
		if rep.Healthy() {
			res.Verified++
		}
		if endAt-t0 > res.Duration {
			res.Duration = endAt - t0
		}
	}
	return res
}

// RunErasmusCollection executes one ERASMUS + LISA-α-style collection at
// the current engine time: the request floods down, nodes answer from
// their buffers with no computation, responses relay straight back.
// Returned histories are validated through the batch verifier under each
// node's own key and golden state.
func (s *Swarm) RunErasmusCollection(root int, k int) InstanceResult {
	e := s.cfg.Engine
	t0 := e.Now()
	s.PruneTrails(t0)
	tree := s.SnapshotTree(root, t0)
	res := InstanceResult{}

	jobs := make([]core.VerifyJob, 0, len(s.Nodes))
	for i, n := range s.Nodes {
		if !tree.Reachable(i) {
			continue
		}
		res.Reached++
		reqAt, ok := s.deliverRequest(tree, i, t0)
		if !ok {
			continue
		}
		recs, timing := n.Prover.HandleCollect(k)
		res.BusyTime += timing.Total()
		doneAt := reqAt + timing.Total()
		endAt, alive := s.relayUp(tree, i, doneAt)
		if !alive {
			continue
		}
		res.Completed++
		jobs = append(jobs, core.VerifyJob{Verifier: n.verifier, Records: recs, Now: n.Dev.RROC(), Tag: i})
		if endAt-t0 > res.Duration {
			res.Duration = endAt - t0
		}
	}
	for jx, rep := range s.batch.Verify(jobs) {
		if len(jobs[jx].Records) > 0 && rep.Healthy() {
			res.Verified++
		}
	}
	return res
}

// pathToRoot returns the tree path node → … → root into a reused buffer.
func (s *Swarm) pathToRoot(tree Tree, node int) []int {
	path := append(s.pathBuf[:0], node)
	for u := node; tree.Parent[u] >= 0; u = tree.Parent[u] {
		path = append(path, tree.Parent[u])
	}
	s.pathBuf = path
	return path
}

// MaxConcurrentMeasuring returns the peak number of nodes measuring
// simultaneously within [from, to] — the §6 availability metric that
// staggered scheduling bounds. The peak is computed with one event sweep
// over every measurement interval (O(events log events)) instead of
// re-scanning each device's full CPU log per sample point, and is exact
// rather than sampled.
func (s *Swarm) MaxConcurrentMeasuring(from, to sim.Ticks) int {
	type edge struct {
		t sim.Ticks
		d int
	}
	var edges []edge
	for _, n := range s.Nodes {
		for _, occ := range n.Dev.CPU().Log() {
			if occ.Kind != cpu.KindMeasurement || occ.End <= from || occ.Start > to {
				continue
			}
			edges = append(edges, edge{occ.Start, +1}, edge{occ.End, -1})
		}
	}
	// Half-open intervals: at equal times the −1 edge sorts first.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].d < edges[j].d
	})
	peak, cur := 0, 0
	for _, ed := range edges {
		cur += ed.d
		if cur > peak {
			peak = cur
		}
	}
	return peak
}
