package swarm

import (
	"testing"

	"erasmus/internal/sim"
)

func qosaSwarm(t *testing.T, e *sim.Engine) *Swarm {
	t.Helper()
	s, err := New(Config{
		N: 6, Area: 100, Radius: 200, Speed: 0, Seed: 21, Engine: e,
		MemorySize: 2048, TM: 10 * sim.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	// Warm up: every node holds a few records.
	e.RunUntil(35 * sim.Minute)
	return s
}

func TestQoSALevelString(t *testing.T) {
	if QoSABinary.String() != "binary" || QoSAList.String() != "list" ||
		QoSAFull.String() != "full" || QoSALevel(9).String() == "" {
		t.Error("level strings wrong")
	}
}

func TestCollectiveHealthyAtAllLevels(t *testing.T) {
	e := sim.NewEngine()
	s := qosaSwarm(t, e)
	for _, level := range []QoSALevel{QoSABinary, QoSAList, QoSAFull} {
		rep := s.CollectiveAttest(0, 2, level)
		if !rep.Healthy {
			t.Fatalf("%v: clean swarm unhealthy", level)
		}
		switch level {
		case QoSABinary:
			if rep.Devices != nil || rep.Topology != nil {
				t.Error("binary report leaks device detail")
			}
			if rep.Bytes != 1 {
				t.Errorf("binary report = %d bytes", rep.Bytes)
			}
		case QoSAList:
			if len(rep.Devices) != 6 || rep.Topology != nil {
				t.Error("list report shape wrong")
			}
		case QoSAFull:
			if len(rep.Devices) != 6 || rep.Topology == nil {
				t.Error("full report shape wrong")
			}
		}
	}
}

func TestCollectiveDetectsInfectedNode(t *testing.T) {
	e := sim.NewEngine()
	s := qosaSwarm(t, e)
	if err := s.Infect(3, []byte("swarm implant")); err != nil {
		t.Fatal(err)
	}
	// The infection must be *measured* before a collection can see it.
	e.RunUntil(e.Now() + 12*sim.Minute)

	binary := s.CollectiveAttest(0, 1, QoSABinary)
	if binary.Healthy {
		t.Fatal("binary report healthy despite infected node")
	}
	if len(binary.UnhealthyDevices()) != 0 {
		t.Fatal("binary report identifies devices — too much information")
	}

	list := s.CollectiveAttest(0, 1, QoSAList)
	bad := list.UnhealthyDevices()
	if len(bad) != 1 || bad[0] != 3 {
		t.Fatalf("list report blames %v, want [3]", bad)
	}

	full := s.CollectiveAttest(0, 1, QoSAFull)
	if full.Topology == nil || !full.Topology.Reachable(3) {
		t.Fatal("full report missing topology")
	}
	if full.Bytes <= list.Bytes || list.Bytes <= binary.Bytes {
		t.Fatalf("report sizes not ordered: %d/%d/%d", binary.Bytes, list.Bytes, full.Bytes)
	}
}

func TestCollectiveHistoryCatchesPastInfection(t *testing.T) {
	// The QoA benefit composed with QoSA: the malware leaves before the
	// collection, but its measured window is still in the history.
	e := sim.NewEngine()
	s := qosaSwarm(t, e)
	s.Infect(2, []byte("transient"))
	e.RunUntil(e.Now() + 12*sim.Minute) // one measurement window passes
	s.Disinfect(2, len("transient"))
	e.RunUntil(e.Now() + 2*sim.Minute)

	rep := s.CollectiveAttest(0, 3, QoSAList)
	bad := rep.UnhealthyDevices()
	if len(bad) != 1 || bad[0] != 2 {
		t.Fatalf("departed malware not caught in history: %v", bad)
	}
}

func TestCollectiveUnreachableNodeNotBlamed(t *testing.T) {
	e := sim.NewEngine()
	s, err := New(Config{
		N: 3, Area: 10000, Radius: 10, Speed: 0, Seed: 33, Engine: e,
		MemorySize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	e.RunUntil(25 * sim.Minute)
	rep := s.CollectiveAttest(0, 1, QoSAList)
	// Far-apart nodes are unreached; unreached ≠ unhealthy for the
	// binary verdict (the collector knows only about its component).
	for id, v := range rep.Devices {
		if id != 0 && v.Reached {
			t.Fatalf("node %d unexpectedly reachable", id)
		}
	}
	if !rep.Healthy {
		t.Fatal("unreached nodes flipped the healthy bit")
	}
}

func TestGoldenAccessors(t *testing.T) {
	e := sim.NewEngine()
	s := qosaSwarm(t, e)
	g := s.Golden(0)
	if len(g) == 0 {
		t.Fatal("no golden digest")
	}
	g[0] ^= 1
	if s.Golden(0)[0] == g[0] {
		t.Fatal("Golden exposed internal slice")
	}
}
