package swarm

import (
	"fmt"
	"sort"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/qoa"
	"erasmus/internal/sim"
)

// QoSA — Quality of Swarm Attestation — is the information dimension of
// collective attestation introduced by LISA and discussed in §6: the same
// collection can be reported at different granularities, from a single
// healthy/unhealthy bit to per-device state plus topology. QoA (temporal)
// and QoSA (informational) compose: this file implements the QoSA axis on
// top of the ERASMUS relay collection, with each device's evidence
// validated by its provisioned core.Verifier (golden-hash whitelist,
// hash-chain ordering/spacing, freshness bound) through the swarm's batch
// verifier, and graded on the temporal QoA axis (qoa.TemporalGrade).

// QoSALevel selects how much information the collective report carries.
type QoSALevel int

const (
	// QoSABinary answers only "is the whole swarm healthy?".
	QoSABinary QoSALevel = iota
	// QoSAList reports per-device health bits.
	QoSAList
	// QoSAFull reports per-device health, evidence counts and the
	// collection-time topology snapshot.
	QoSAFull
)

func (l QoSALevel) String() string {
	switch l {
	case QoSABinary:
		return "binary"
	case QoSAList:
		return "list"
	case QoSAFull:
		return "full"
	default:
		return fmt.Sprintf("QoSALevel(%d)", int(l))
	}
}

// DeviceVerdict is one node's outcome within a collective report.
type DeviceVerdict struct {
	// Reached: the node was in the collector's component.
	Reached bool
	// Responded: its records made it back through the relay.
	Responded bool
	// Healthy: the returned history passed full verifier validation —
	// authentic, whitelisted memory states, schedule-consistent spacing,
	// and evidence fresh within MaxGap + skew.
	Healthy bool
	// Records is how many records were returned.
	Records int
	// Freshness is the age of the newest returned record at collection
	// time (§3.1's f); zero when nothing was returned.
	Freshness sim.Ticks
	// Grade is the temporal QoA classification of the evidence; a device
	// whose records merely authenticate but are older than MaxGap + skew
	// grades TemporalWithheld and is not healthy. Devices whose evidence
	// never reached the verifier (unreached, or relay broke) stay
	// TemporalUngraded — there is nothing to grade.
	Grade qoa.TemporalGrade
	// Issues carries the verifier's findings for unhealthy devices.
	Issues []string
}

// CollectiveReport is the outcome of one QoSA-graded swarm collection.
type CollectiveReport struct {
	Level QoSALevel
	// Healthy is the binary answer: every reached node responded with a
	// healthy history. Present at every level.
	Healthy bool
	// Temporal aggregates the QoA grades of every responding device; the
	// collective temporal verdict is Temporal.Worst(). Present at every
	// level (it is one counter triple, not per-device data).
	Temporal qoa.CollectiveTemporal
	// Devices holds per-node verdicts (QoSAList and QoSAFull).
	Devices map[int]DeviceVerdict
	// Topology is the BFS snapshot at collection time (QoSAFull only).
	Topology *Tree
	// Bytes estimates the report size on the verifier link — the cost
	// axis that makes lower QoSA levels attractive.
	Bytes int
}

// CollectiveAttest runs one ERASMUS relay collection rooted at root and
// grades the result at the requested QoSA level. Every responding node's
// evidence is validated through the swarm's batch verifier against the
// node's own key and clean-state whitelist, including the schedule and
// freshness checks the fleet pipeline applies — so a device serving
// authentic but stale records (infected then silenced) is flagged instead
// of passing forever.
func (s *Swarm) CollectiveAttest(root, k int, level QoSALevel) CollectiveReport {
	e := s.cfg.Engine
	t0 := e.Now()
	s.PruneTrails(t0)
	tree := s.SnapshotTree(root, t0)

	verdicts := make([]DeviceVerdict, len(s.Nodes))
	jobs := make([]core.VerifyJob, 0, len(s.Nodes))
	for i, n := range s.Nodes {
		if !tree.Reachable(i) {
			continue
		}
		verdicts[i].Reached = true
		reqAt, ok := s.deliverRequest(tree, i, t0)
		if !ok {
			continue
		}
		recs, timing := n.Prover.HandleCollect(k)
		if _, alive := s.relayUp(tree, i, reqAt+timing.Total()); !alive {
			continue
		}
		verdicts[i].Responded = true
		verdicts[i].Records = len(recs)
		jobs = append(jobs, core.VerifyJob{Verifier: n.verifier, Records: recs, Now: n.Dev.RROC(), Tag: i})
	}

	rep := CollectiveReport{Level: level, Healthy: true}
	for jx, r := range s.batch.Verify(jobs) {
		v := &verdicts[jobs[jx].Tag.(int)]
		v.Healthy = v.Records > 0 && r.Healthy()
		v.Freshness = r.Freshness
		if v.Records > 0 {
			v.Grade = qoa.GradeTemporal(r.Freshness, s.cfg.TM, s.maxGap, s.skew)
		} else {
			// No evidence at all: the device never measured (or dropped its
			// buffer) — temporally equivalent to withholding.
			v.Grade = qoa.TemporalWithheld
		}
		if !v.Healthy {
			v.Issues = r.Issues
		}
		rep.Temporal.Add(v.Grade)
	}
	for i := range verdicts {
		v := verdicts[i]
		if v.Reached && (!v.Responded || !v.Healthy) {
			rep.Healthy = false
		}
	}

	// Report contents (and wire size) by level. Binary: one bit rounded
	// to a byte. List: one byte per device. Full: verdict byte plus a
	// parent pointer sized for the actual swarm (a fixed 2-byte pointer
	// silently truncates past 65 535 nodes).
	switch level {
	case QoSABinary:
		rep.Bytes = 1
	case QoSAList:
		rep.Devices = verdictMap(verdicts)
		rep.Bytes = len(s.Nodes)
	case QoSAFull:
		rep.Devices = verdictMap(verdicts)
		rep.Topology = &tree
		rep.Bytes = len(s.Nodes) * (1 + parentPointerBytes(len(s.Nodes)))
	}
	return rep
}

func verdictMap(verdicts []DeviceVerdict) map[int]DeviceVerdict {
	m := make(map[int]DeviceVerdict, len(verdicts))
	for i, v := range verdicts {
		m[i] = v
	}
	return m
}

// parentPointerBytes returns the bytes needed to encode a parent pointer
// for an n-node topology (node ids 0..n−1 plus the −1 root sentinel).
func parentPointerBytes(n int) int {
	b := 1
	for limit := 1 << 8; n+1 > limit && b < 8; b++ {
		limit <<= 8
	}
	return b
}

// Golden returns node i's known-good memory digest (captured clean at
// construction) — what a deployment would provision into the verifier.
func (s *Swarm) Golden(i int) []byte { return append([]byte(nil), s.Nodes[i].golden...) }

// Infect writes an implant into node i's attested memory (test and
// experiment hook, standing in for real malware).
func (s *Swarm) Infect(i int, implant []byte) error {
	return s.Nodes[i].Dev.WriteMemory(0, implant)
}

// Disinfect restores node i's clean image prefix.
func (s *Swarm) Disinfect(i int, length int) error {
	return s.Nodes[i].Dev.WriteMemory(0, make([]byte, length))
}

// UnhealthyDevices lists node IDs that a report marks unhealthy; empty for
// binary reports (that is the point of the level).
func (r CollectiveReport) UnhealthyDevices() []int {
	var out []int
	for id, v := range r.Devices {
		if v.Reached && (!v.Responded || !v.Healthy) {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// captureGolden records each node's clean-state digest; called by New.
func (s *Swarm) captureGolden() {
	for _, n := range s.Nodes {
		n.golden = mac.HashSum(s.cfg.Alg, n.Dev.Memory())
	}
}

// staggerWindow returns the per-node phase used by staggered schedules;
// exported for tests via MaxConcurrentMeasuring rather than directly.
func staggerWindow(tm sim.Ticks, i, n int) sim.Ticks {
	return sim.Ticks(int64(tm) * int64(i) / int64(n))
}
