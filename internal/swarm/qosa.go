package swarm

import (
	"bytes"
	"fmt"

	"erasmus/internal/crypto/mac"
	"erasmus/internal/sim"
)

// QoSA — Quality of Swarm Attestation — is the information dimension of
// collective attestation introduced by LISA and discussed in §6: the same
// collection can be reported at different granularities, from a single
// healthy/unhealthy bit to per-device state plus topology. QoA (temporal)
// and QoSA (informational) compose: this file implements the QoSA axis on
// top of the ERASMUS relay collection.

// QoSALevel selects how much information the collective report carries.
type QoSALevel int

const (
	// QoSABinary answers only "is the whole swarm healthy?".
	QoSABinary QoSALevel = iota
	// QoSAList reports per-device health bits.
	QoSAList
	// QoSAFull reports per-device health, evidence counts and the
	// collection-time topology snapshot.
	QoSAFull
)

func (l QoSALevel) String() string {
	switch l {
	case QoSABinary:
		return "binary"
	case QoSAList:
		return "list"
	case QoSAFull:
		return "full"
	default:
		return fmt.Sprintf("QoSALevel(%d)", int(l))
	}
}

// DeviceVerdict is one node's outcome within a collective report.
type DeviceVerdict struct {
	// Reached: the node was in the collector's component.
	Reached bool
	// Responded: its records made it back through the relay.
	Responded bool
	// Healthy: every returned record authenticated and digested the
	// node's known-good state.
	Healthy bool
	// Records is how many records were returned.
	Records int
}

// CollectiveReport is the outcome of one QoSA-graded swarm collection.
type CollectiveReport struct {
	Level QoSALevel
	// Healthy is the binary answer: every reached node responded with a
	// healthy history. Present at every level.
	Healthy bool
	// Devices holds per-node verdicts (QoSAList and QoSAFull).
	Devices map[int]DeviceVerdict
	// Topology is the BFS snapshot at collection time (QoSAFull only).
	Topology *Tree
	// Bytes estimates the report size on the verifier link — the cost
	// axis that makes lower QoSA levels attractive.
	Bytes int
}

// CollectiveAttest runs one ERASMUS relay collection rooted at root and
// grades the result at the requested QoSA level, verifying each node's
// evidence against the clean state captured at swarm construction.
func (s *Swarm) CollectiveAttest(root, k int, level QoSALevel) CollectiveReport {
	e := s.cfg.Engine
	t0 := e.Now()
	tree := s.SnapshotTree(root, t0)

	rep := CollectiveReport{Level: level, Healthy: true}
	verdicts := make(map[int]DeviceVerdict, len(s.Nodes))

	for i, n := range s.Nodes {
		v := DeviceVerdict{}
		if tree.Reachable(i) {
			v.Reached = true
			reqAt := t0
			ok := true
			path := pathToRoot(tree, i)
			for j := len(path) - 1; j >= 1; j-- {
				reqAt += s.cfg.HopLatency
				if !s.Connected(path[j], path[j-1], reqAt) {
					ok = false
					break
				}
			}
			if ok {
				recs, timing := n.Prover.HandleCollect(k)
				if _, alive := s.relayUp(tree, i, reqAt+timing.Total()); alive {
					v.Responded = true
					v.Records = len(recs)
					v.Healthy = len(recs) > 0
					for _, r := range recs {
						if !r.VerifyMAC(s.cfg.Alg, n.Key) || !bytes.Equal(r.Hash, n.golden) {
							v.Healthy = false
						}
					}
				}
			}
		}
		if v.Reached && (!v.Responded || !v.Healthy) {
			rep.Healthy = false
		}
		verdicts[i] = v
	}

	// Report contents (and wire size) by level. Binary: one bit rounded
	// to a byte. List: one byte per device. Full: verdict bytes plus
	// parent pointers for the topology.
	switch level {
	case QoSABinary:
		rep.Bytes = 1
	case QoSAList:
		rep.Devices = verdicts
		rep.Bytes = len(s.Nodes)
	case QoSAFull:
		rep.Devices = verdicts
		rep.Topology = &tree
		rep.Bytes = len(s.Nodes) * 3 // verdict + 2-byte parent per node
	}
	return rep
}

// Golden returns node i's known-good memory digest (captured clean at
// construction) — what a deployment would provision into the verifier.
func (s *Swarm) Golden(i int) []byte { return append([]byte(nil), s.Nodes[i].golden...) }

// Infect writes an implant into node i's attested memory (test and
// experiment hook, standing in for real malware).
func (s *Swarm) Infect(i int, implant []byte) error {
	return s.Nodes[i].Dev.WriteMemory(0, implant)
}

// Disinfect restores node i's clean image prefix.
func (s *Swarm) Disinfect(i int, length int) error {
	return s.Nodes[i].Dev.WriteMemory(0, make([]byte, length))
}

// UnhealthyDevices lists node IDs that a report marks unhealthy; empty for
// binary reports (that is the point of the level).
func (r CollectiveReport) UnhealthyDevices() []int {
	var out []int
	for id, v := range r.Devices {
		if v.Reached && (!v.Responded || !v.Healthy) {
			out = append(out, id)
		}
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// captureGolden records each node's clean-state digest; called by New.
func (s *Swarm) captureGolden() {
	for _, n := range s.Nodes {
		n.golden = mac.HashSum(s.cfg.Alg, n.Dev.Memory())
	}
}

// staggerWindow returns the per-node phase used by staggered schedules;
// exported for tests via MaxConcurrentMeasuring rather than directly.
func staggerWindow(tm sim.Ticks, i, n int) sim.Ticks {
	return sim.Ticks(int64(tm) * int64(i) / int64(n))
}
