package swarm

import (
	"bytes"
	"errors"
	"testing"

	"erasmus/internal/core"
	"erasmus/internal/qoa"
	"erasmus/internal/sim"
)

// oldPathHealthy reproduces the pre-verifier verdict rule — every returned
// record authenticates and digests the golden state — exactly as
// CollectiveAttest computed it before evidence was routed through
// core.Verifier.
func oldPathHealthy(s *Swarm, i, k int) bool {
	n := s.Nodes[i]
	recs, _ := n.Prover.HandleCollect(k)
	healthy := len(recs) > 0
	for _, r := range recs {
		if !r.VerifyMAC(s.cfg.Alg, n.Key) || !bytes.Equal(r.Hash, n.golden) {
			healthy = false
		}
	}
	return healthy
}

// The verifier-grade path must be verdict-identical to the raw MAC+golden
// loop on clean histories (and on measured infections, which both paths
// catch) — the new checks only diverge on the blind spots the old path
// structurally missed.
func TestVerificationEquivalenceCleanSwarm(t *testing.T) {
	e := sim.NewEngine()
	s, err := New(Config{
		N: 10, Area: 120, Radius: 200, Speed: 0, Seed: 23, Engine: e,
		MemorySize: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	e.RunUntil(35 * sim.Minute)
	// One measured infection: both paths must flag it the same way.
	if err := s.Infect(4, []byte("equivalence implant")); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(e.Now() + 12*sim.Minute)

	const k = 2
	rep := s.CollectiveAttest(0, k, QoSAList)
	for i := range s.Nodes {
		v := rep.Devices[i]
		if !v.Responded {
			t.Fatalf("node %d did not respond in a static clique", i)
		}
		if old := oldPathHealthy(s, i, k); v.Healthy != old {
			t.Fatalf("node %d: verifier-grade verdict %v != legacy verdict %v", i, v.Healthy, old)
		}
	}
	if rep.Devices[4].Healthy {
		t.Fatal("measured infection not flagged")
	}
	if w := rep.Temporal.Worst(); w != qoa.TemporalFresh {
		t.Fatalf("running provers graded %v, want fresh", w)
	}

	// Same equivalence for the instance evaluator's Verified count.
	res := s.RunErasmusCollection(0, k)
	oldVerified := 0
	for i := range s.Nodes {
		if oldPathHealthy(s, i, k) {
			oldVerified++
		}
	}
	if res.Verified != oldVerified {
		t.Fatalf("RunErasmusCollection verified %d, legacy rule %d", res.Verified, oldVerified)
	}
}

// Regression for the stale-evidence blind spot: a device infected and then
// silenced (its measurement loop killed before the implant was ever
// measured) keeps serving authentic, golden-state records forever. The raw
// MAC+golden rule passes it for eternity; the verifier-grade path flags it
// as withheld once the evidence ages past MaxGap + skew.
func TestStaleEvidenceBlindSpot(t *testing.T) {
	e := sim.NewEngine()
	s, err := New(Config{
		N: 6, Area: 100, Radius: 200, Speed: 0, Seed: 21, Engine: e,
		MemorySize: 2048, TM: 10 * sim.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	e.RunUntil(35 * sim.Minute)

	// Malware lands on node 3 and immediately kills the measurement loop:
	// no infected record is ever committed.
	if err := s.Infect(3, []byte("silent implant")); err != nil {
		t.Fatal(err)
	}
	s.Nodes[3].Prover.Stop()

	// Advance past MaxGap + skew (15 min + 1 min for TM = 10 min).
	e.RunUntil(e.Now() + 20*sim.Minute)

	rep := s.CollectiveAttest(0, 2, QoSAList)
	v := rep.Devices[3]
	if !v.Responded {
		t.Fatal("silenced node should still answer collections from its buffer")
	}
	if v.Healthy {
		t.Fatal("stale-evidence blind spot: silenced node still graded healthy")
	}
	if v.Grade != qoa.TemporalWithheld {
		t.Fatalf("silenced node graded %v, want withheld", v.Grade)
	}
	if rep.Healthy || rep.Temporal.Withheld == 0 {
		t.Fatalf("collective report did not surface the withheld device: %+v", rep.Temporal)
	}
	// Document the blind spot: the legacy rule would still pass it —
	// every record authenticates and digests the clean state.
	if !oldPathHealthy(s, 3, 2) {
		t.Fatal("test premise broken: legacy rule should accept the stale records")
	}
	// Everyone else stayed fresh and healthy.
	for i := range s.Nodes {
		if i == 3 {
			continue
		}
		if v := rep.Devices[i]; !v.Healthy || v.Grade != qoa.TemporalFresh {
			t.Fatalf("node %d: healthy=%v grade=%v, want healthy+fresh", i, v.Healthy, v.Grade)
		}
	}
}

// Regression for the on-demand replay fix: back-to-back instances at the
// same engine instant must both complete (the old fixed nonce-0 treq
// derivation made the second instance's requests collide with the provers'
// anti-replay floor), and a captured request must not replay.
func TestOnDemandNonceAndReplay(t *testing.T) {
	e := sim.NewEngine()
	s, err := New(Config{
		N: 5, Area: 100, Radius: 200, Speed: 0, Seed: 31, Engine: e,
		MemorySize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	e.RunUntil(25 * sim.Minute)

	r1 := s.RunOnDemand(0)
	r2 := s.RunOnDemand(0) // same engine instant
	if r1.Verified != 5 || r2.Verified != 5 {
		t.Fatalf("back-to-back instances verified %d/%d, want 5/5", r1.Verified, r2.Verified)
	}

	// A captured request replayed verbatim is rejected by the prover.
	n := s.Nodes[2]
	treq := n.Dev.RROC() + 5
	const nonce = 77
	mac := core.NewODRequestMAC(s.cfg.Alg, n.Key, treq, nonce)
	if _, _, err := n.Prover.HandleOnDemandNonce(treq, nonce, mac); err != nil {
		t.Fatalf("fresh request rejected: %v", err)
	}
	if _, _, err := n.Prover.HandleOnDemandNonce(treq, nonce, mac); !errors.Is(err, core.ErrReplay) {
		t.Fatalf("replayed request not rejected as replay: %v", err)
	}
	// A forged request reusing the MAC under a different nonce fails
	// authentication.
	if _, _, err := n.Prover.HandleOnDemandNonce(treq+1, nonce+1, mac); !errors.Is(err, core.ErrBadRequest) {
		t.Fatalf("nonce-spliced request not rejected: %v", err)
	}
}

// Regression for unbounded mobility-trail growth: long-horizon runs with
// periodic instances must hold O(one instance gap) segments per node, not
// the whole mobility history.
func TestTrailMemoryBounded(t *testing.T) {
	e := sim.NewEngine()
	s, err := New(Config{
		N: 4, Area: 200, Radius: 80, Speed: 25, Seed: 9, Engine: e,
		MemorySize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	const rounds = 18
	gap := 10 * sim.Minute
	maxSegs := 0
	for r := 0; r < rounds; r++ {
		e.RunUntil(e.Now() + gap)
		s.RunErasmusCollection(0, 1)
		for _, n := range s.Nodes {
			if len(n.segments) > maxSegs {
				maxSegs = len(n.segments)
			}
		}
	}
	// At 25 m/s over a 200 m area a leg lasts a few seconds, so one
	// 10-minute gap spans ~150 legs; 18 unpruned rounds would exceed 2500.
	if maxSegs > 500 {
		t.Fatalf("trail grew to %d segments — pruning is not bounding memory", maxSegs)
	}
}

// Regression for QoSAFull report sizing: parent pointers must be sized for
// the actual swarm (the fixed 2-byte pointer silently truncated ids past
// 65 535) and the report must scale with len(Nodes).
func TestFullReportSizing(t *testing.T) {
	cases := []struct{ n, want int }{
		{6, 1}, {255, 1}, {256, 2}, {65535, 2}, {65536, 3}, {100000, 3}, {1 << 24, 4},
	}
	for _, c := range cases {
		if got := parentPointerBytes(c.n); got != c.want {
			t.Errorf("parentPointerBytes(%d) = %d, want %d", c.n, got, c.want)
		}
	}

	e := sim.NewEngine()
	s, err := New(Config{N: 6, Area: 100, Radius: 200, Speed: 0, Seed: 21, Engine: e, MemorySize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	e.RunUntil(25 * sim.Minute)
	full := s.CollectiveAttest(0, 1, QoSAFull)
	if want := 6 * (1 + parentPointerBytes(6)); full.Bytes != want {
		t.Fatalf("full report %d bytes, want %d", full.Bytes, want)
	}
	list := s.CollectiveAttest(0, 1, QoSAList)
	binary := s.CollectiveAttest(0, 1, QoSABinary)
	if !(binary.Bytes < list.Bytes && list.Bytes < full.Bytes) {
		t.Fatalf("report sizes not ordered: %d/%d/%d", binary.Bytes, list.Bytes, full.Bytes)
	}
}
