package swarm

import (
	"math"
	"sort"

	"erasmus/internal/sim"
)

// Spatial hash grid over the deployment square. SnapshotTree used to test
// all N² node pairs per BFS level; the grid buckets nodes by cell and
// restricts each radio-range query to the cells that can possibly contain
// a neighbor, making topology snapshots O(N × density) instead of O(N²).
// With the default cell size (the radio radius) only the 3×3 cell
// neighborhood is scanned.
//
// The grid is a flat CSR layout (per-cell offsets into one id array):
// node ids are appended in ascending order, so each cell's bucket is
// already sorted, and candidate lists only need one small sort to merge
// the neighborhood buckets — which keeps grid BFS *identical* to the
// all-pairs scan, including parent tie-breaking (lowest id wins).
type posGrid struct {
	cell   float64
	cols   int
	rows   int
	reach  int     // Chebyshev cell distance that can contain a neighbor
	start  []int32 // CSR offsets, len cols*rows+1
	ids    []int32 // node ids grouped by cell, ascending within each
	cellOf []int32 // node id -> flattened cell index
}

// buildGrid buckets nodes at positions (xs, ys) into square cells of the
// given size; radius is the radio range the reach ring must cover. Cell
// size is a tuning knob: any positive value yields the same topology
// (enforced by TestGridCellSizeInvariance), the default Radius gives the
// 3×3 neighborhood.
func buildGrid(area, cell, radius float64, xs, ys []float64) *posGrid {
	if cell <= 0 {
		cell = radius
	}
	cols := int(area/cell) + 1
	if cols < 1 {
		cols = 1
	}
	g := &posGrid{
		cell:   cell,
		cols:   cols,
		rows:   cols,
		reach:  int(math.Ceil(radius / cell)),
		start:  make([]int32, cols*cols+1),
		ids:    make([]int32, len(xs)),
		cellOf: make([]int32, len(xs)),
	}
	// Counting pass, prefix sums, then a fill in ascending node order so
	// every bucket comes out sorted.
	for i := range xs {
		c := g.flatCell(xs[i], ys[i])
		g.cellOf[i] = c
		g.start[c+1]++
	}
	for c := 0; c < len(g.start)-1; c++ {
		g.start[c+1] += g.start[c]
	}
	cursor := make([]int32, cols*cols)
	copy(cursor, g.start[:len(cursor)])
	for i := range xs {
		c := g.cellOf[i]
		g.ids[cursor[c]] = int32(i)
		cursor[c]++
	}
	return g
}

// flatCell maps a position to its flattened cell index, clamping to the
// grid (mobility keeps nodes inside the area, but waypoint endpoints can
// sit exactly on the boundary).
func (g *posGrid) flatCell(x, y float64) int32 {
	ci := int(x / g.cell)
	cj := int(y / g.cell)
	if ci < 0 {
		ci = 0
	} else if ci >= g.cols {
		ci = g.cols - 1
	}
	if cj < 0 {
		cj = 0
	} else if cj >= g.rows {
		cj = g.rows - 1
	}
	return int32(cj*g.cols + ci)
}

// candidates appends to buf every node id in the cells within reach of
// node u's cell — a superset of u's radio neighbors — sorted ascending,
// and returns the extended slice. u itself is included; callers skip it.
func (g *posGrid) candidates(u int, buf []int32) []int32 {
	c := int(g.cellOf[u])
	ci, cj := c%g.cols, c/g.cols
	lo, hi := ci-g.reach, ci+g.reach
	if lo < 0 {
		lo = 0
	}
	if hi >= g.cols {
		hi = g.cols - 1
	}
	jlo, jhi := cj-g.reach, cj+g.reach
	if jlo < 0 {
		jlo = 0
	}
	if jhi >= g.rows {
		jhi = g.rows - 1
	}
	for j := jlo; j <= jhi; j++ {
		rowBase := j * g.cols
		for i := lo; i <= hi; i++ {
			cc := rowBase + i
			buf = append(buf, g.ids[g.start[cc]:g.start[cc+1]]...)
		}
	}
	sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
	return buf
}

// withinRadius is the single link predicate shared by Connected and the
// grid BFS, so the two topology paths can never disagree at the boundary.
func withinRadius(ax, ay, bx, by, radius float64) bool {
	return math.Hypot(ax-bx, ay-by) <= radius
}

// positionsAt returns every node's coordinates at time t, cached per
// (swarm, t): one snapshot instance queries the same instant for the BFS
// over all N nodes, and repeated Position calls would each pay the trail
// search.
func (s *Swarm) positionsAt(t sim.Ticks) (xs, ys []float64) {
	if s.pos.valid && s.pos.t == t && len(s.pos.xs) == len(s.Nodes) {
		return s.pos.xs, s.pos.ys
	}
	if cap(s.pos.xs) < len(s.Nodes) {
		s.pos.xs = make([]float64, len(s.Nodes))
		s.pos.ys = make([]float64, len(s.Nodes))
	}
	s.pos.xs = s.pos.xs[:len(s.Nodes)]
	s.pos.ys = s.pos.ys[:len(s.Nodes)]
	for i := range s.Nodes {
		s.pos.xs[i], s.pos.ys[i] = s.Position(i, t)
	}
	s.pos.t, s.pos.valid = t, true
	return s.pos.xs, s.pos.ys
}
