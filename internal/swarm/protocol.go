package swarm

import (
	"erasmus/internal/core"
	"erasmus/internal/costmodel"
	"erasmus/internal/sim"
)

// Message-level collective attestation. RunOnDemand/RunErasmusCollection
// evaluate an instance analytically against the mobility trail; the
// implementations here execute the same protocols as discrete events —
// per-hop request flooding, per-node computation, per-hop report relay —
// with every link checked at the instant a packet actually crosses it.
// They exist to validate the analytic shortcut and to expose protocol
// internals (flood order, per-node latencies) to experiments.

// NodeOutcome traces one node through a message-level instance.
type NodeOutcome struct {
	// Reached: the request flood arrived at the node.
	Reached bool
	// ReachedAt is the request arrival time.
	ReachedAt sim.Ticks
	// Reported: the node's response made it back to the root.
	Reported bool
	// ReportedAt is when the root received it.
	ReportedAt sim.Ticks
}

// ProtocolResult is the outcome of a message-level instance.
type ProtocolResult struct {
	Reached   int
	Completed int
	Duration  sim.Ticks
	PerNode   []NodeOutcome
}

// protoInstance tracks one in-flight flood.
type protoInstance struct {
	s        *Swarm
	root     int
	t0       sim.Ticks
	visited  []bool
	outcome  []NodeOutcome
	inflight int
	done     func(ProtocolResult)
}

func (s *Swarm) newInstance(root int, done func(ProtocolResult)) *protoInstance {
	inst := &protoInstance{
		s: s, root: root, t0: s.cfg.Engine.Now(),
		visited: make([]bool, len(s.Nodes)),
		outcome: make([]NodeOutcome, len(s.Nodes)),
		done:    done,
	}
	return inst
}

// track wraps event scheduling with completion accounting: when the last
// scheduled event resolves, the instance finalizes.
func (inst *protoInstance) track(delay sim.Ticks, fn func()) {
	inst.inflight++
	inst.s.cfg.Engine.After(delay, func() {
		fn()
		inst.inflight--
		if inst.inflight == 0 {
			inst.finalize()
		}
	})
}

func (inst *protoInstance) finalize() {
	res := ProtocolResult{PerNode: inst.outcome}
	for _, o := range inst.outcome {
		if o.Reached {
			res.Reached++
		}
		if o.Reported {
			res.Completed++
			if d := o.ReportedAt - inst.t0; d > res.Duration {
				res.Duration = d
			}
		}
	}
	if inst.done != nil {
		inst.done(res)
	}
}

// relayReport forwards a node's response toward the root along the flood's
// reverse path, one hop at a time, checking each link as the packet
// crosses it. parentOf must reflect the flood tree (set during flooding).
func (inst *protoInstance) relayReport(u int, parentOf []int) {
	cur := u
	var hop func()
	hop = func() {
		p := parentOf[cur]
		if p < 0 {
			inst.outcome[u].Reported = true
			inst.outcome[u].ReportedAt = inst.s.cfg.Engine.Now()
			return
		}
		from := cur
		inst.track(inst.s.cfg.HopLatency, func() {
			if !inst.s.Connected(from, p, inst.s.cfg.Engine.Now()) {
				return // link died mid-relay; report lost
			}
			cur = p
			hop()
		})
	}
	hop()
}

// RunOnDemandProtocol executes one SEDA-style instance as discrete events
// starting now, invoking done with the result when the last packet
// resolves. Each reached node authenticates the request and computes a
// full real-time measurement before reporting.
func (s *Swarm) RunOnDemandProtocol(root int, done func(ProtocolResult)) {
	inst := s.newInstance(root, done)
	s.PruneTrails(inst.t0)
	parentOf := make([]int, len(s.Nodes))
	for i := range parentOf {
		parentOf[i] = -1
	}
	measureDur := costmodel.MeasurementTime(costmodel.MSP430, s.cfg.Alg, s.cfg.MemorySize) +
		costmodel.AuthTime(costmodel.MSP430)
	treq, nonce := s.nextODRequest()

	onReceive := func(u int, at sim.Ticks) {
		n := s.Nodes[u]
		// Authenticate + measure on the real prover (charges its CPU); the
		// request MAC binds this instance's fresh nonce alongside treq.
		_, _, err := n.Prover.HandleOnDemandNonce(treq, nonce,
			core.NewODRequestMAC(s.cfg.Alg, n.Key, treq, int(nonce)))
		if err != nil {
			return
		}
		inst.track(measureDur, func() {
			inst.relayReport(u, parentOf)
		})
	}
	floodWithParents(inst, root, parentOf, onReceive)
}

// RunErasmusProtocol executes one ERASMUS + relay collection instance as
// discrete events: reached nodes answer from their buffers within the
// modeled (sub-millisecond) collection time.
func (s *Swarm) RunErasmusProtocol(root, k int, done func(ProtocolResult)) {
	inst := s.newInstance(root, done)
	s.PruneTrails(inst.t0)
	parentOf := make([]int, len(s.Nodes))
	for i := range parentOf {
		parentOf[i] = -1
	}
	onReceive := func(u int, at sim.Ticks) {
		n := s.Nodes[u]
		recs, timing := n.Prover.HandleCollect(k)
		ok := true
		for _, r := range recs {
			if !r.VerifyMAC(s.cfg.Alg, n.Key) {
				ok = false
			}
		}
		if !ok {
			return
		}
		inst.track(timing.Total(), func() {
			inst.relayReport(u, parentOf)
		})
	}
	floodWithParents(inst, root, parentOf, onReceive)
}

// floodWithParents is inst.flood with parent recording: each node's parent
// is the flooding node whose rebroadcast reached it first.
func floodWithParents(inst *protoInstance, root int, parentOf []int, onReceive func(int, sim.Ticks)) {
	var visit func(u int)
	visit = func(u int) {
		inst.visited[u] = true
		at := inst.s.cfg.Engine.Now()
		inst.outcome[u].Reached = true
		inst.outcome[u].ReachedAt = at
		onReceive(u, at)
		for v := range inst.s.Nodes {
			if v == u || inst.visited[v] {
				continue
			}
			if !inst.s.Connected(u, v, at) {
				continue
			}
			v := v
			from := u
			inst.track(inst.s.cfg.HopLatency, func() {
				if inst.visited[v] {
					return
				}
				if !inst.s.Connected(from, v, inst.s.cfg.Engine.Now()) {
					return
				}
				parentOf[v] = from
				visit(v)
			})
		}
	}
	// Root has no parent; kick off with one tracked no-op so a fully
	// isolated root still finalizes.
	inst.track(0, func() { visit(root) })
}
