package swarm

import (
	"reflect"
	"testing"

	"erasmus/internal/sim"
)

// allPairsTree is the pre-grid reference implementation: BFS with an O(N²)
// neighbor scan per level, link-checked through the public Connected
// predicate. Grid snapshots must reproduce it bit-for-bit.
func allPairsTree(s *Swarm, root int, t sim.Ticks) Tree {
	n := len(s.Nodes)
	tree := Tree{Root: root, Parent: make([]int, n), Depth: make([]int, n)}
	for i := range tree.Parent {
		tree.Parent[i] = -1
		tree.Depth[i] = -1
	}
	tree.Depth[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			if v == u || tree.Depth[v] >= 0 {
				continue
			}
			if s.Connected(u, v, t) {
				tree.Parent[v] = u
				tree.Depth[v] = tree.Depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return tree
}

func gridSwarm(t *testing.T, cell float64) *Swarm {
	t.Helper()
	e := sim.NewEngine()
	s, err := New(Config{
		N: 48, Area: 300, Radius: 60, Speed: 8, Seed: 17, Engine: e,
		MemorySize: 1024, GridCell: cell,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

// The grid snapshot must equal the all-pairs scan: same reachability, same
// parents, same depths — at several times and roots of a mobile topology
// with both connected and partitioned regions.
func TestGridMatchesAllPairs(t *testing.T) {
	s := gridSwarm(t, 0) // default cell = radius
	for _, at := range []sim.Ticks{0, 3 * sim.Minute, 11 * sim.Minute} {
		for _, root := range []int{0, 7, 41} {
			got := s.SnapshotTree(root, at)
			want := allPairsTree(s, root, at)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("root %d at %v: grid tree diverges from all-pairs\n grid: %+v\n ref:  %+v",
					root, at, got, want)
			}
		}
	}
}

// Any positive cell size must yield the identical topology: the cell is a
// bucketing choice, never a semantic one.
func TestGridCellSizeInvariance(t *testing.T) {
	for _, cell := range []float64{15, 60, 150, 1000} {
		s := gridSwarm(t, cell)
		for _, at := range []sim.Ticks{0, 5 * sim.Minute} {
			got := s.SnapshotTree(3, at)
			want := allPairsTree(s, 3, at)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cell=%gm at %v: grid tree diverges from all-pairs", cell, at)
			}
		}
	}
}

// Positions on the grid path (cached snapshot) and the direct Position
// path must agree exactly.
func TestPositionCacheConsistent(t *testing.T) {
	s := gridSwarm(t, 0)
	at := 7 * sim.Minute
	xs, ys := s.positionsAt(at)
	for i := range s.Nodes {
		x, y := s.Position(i, at)
		if x != xs[i] || y != ys[i] {
			t.Fatalf("node %d: cached (%g,%g) != direct (%g,%g)", i, xs[i], ys[i], x, y)
		}
	}
	// Cache hit path returns the same slices.
	xs2, _ := s.positionsAt(at)
	if &xs2[0] != &xs[0] {
		t.Fatal("second positionsAt at the same instant rebuilt the snapshot")
	}
}
