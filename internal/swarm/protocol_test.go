package swarm

import (
	"testing"

	"erasmus/internal/sim"
)

func TestProtocolStaticFullCoverage(t *testing.T) {
	e := sim.NewEngine()
	s := staticSwarm(t, e, 8)
	e.RunUntil(30 * sim.Minute)

	var od, er ProtocolResult
	odDone, erDone := false, false
	s.RunOnDemandProtocol(0, func(r ProtocolResult) { od, odDone = r, true })
	e.RunUntil(e.Now() + sim.Hour)
	if !odDone {
		t.Fatal("on-demand protocol never finalized")
	}
	s.RunErasmusProtocol(0, 2, func(r ProtocolResult) { er, erDone = r, true })
	e.RunUntil(e.Now() + sim.Hour)
	if !erDone {
		t.Fatal("erasmus protocol never finalized")
	}

	if od.Reached != 8 || od.Completed != 8 {
		t.Fatalf("on-demand static: %+v", od)
	}
	if er.Reached != 8 || er.Completed != 8 {
		t.Fatalf("erasmus static: %+v", er)
	}
	// Instance duration: on-demand is dominated by the measurement
	// (seconds); erasmus by hops (milliseconds).
	if er.Duration >= od.Duration {
		t.Fatalf("erasmus %v not faster than on-demand %v", er.Duration, od.Duration)
	}
	if er.Duration > 100*sim.Millisecond {
		t.Fatalf("erasmus instance took %v, want milliseconds", er.Duration)
	}
}

func TestProtocolIsolatedRootFinalizes(t *testing.T) {
	e := sim.NewEngine()
	s, err := New(Config{N: 3, Area: 10000, Radius: 1, Speed: 0, Seed: 4, Engine: e, MemorySize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	e.RunUntil(25 * sim.Minute)
	done := false
	var res ProtocolResult
	s.RunErasmusProtocol(0, 1, func(r ProtocolResult) { res, done = r, true })
	e.RunUntil(e.Now() + sim.Minute)
	if !done {
		t.Fatal("isolated-root instance never finalized")
	}
	if res.Reached != 1 || res.Completed != 1 {
		t.Fatalf("isolated root: %+v", res)
	}
}

// The message-level protocols agree qualitatively with the analytic
// evaluators: ERASMUS completes more nodes than on-demand under mobility.
func TestProtocolMobilityOrdering(t *testing.T) {
	e := sim.NewEngine()
	s, err := New(Config{
		N: 16, Area: 150, Radius: 60, Speed: 12, Seed: 11,
		Engine: e, MemorySize: 10 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	e.RunUntil(25 * sim.Minute)

	var odC, odR, erC, erR int
	for trial := 0; trial < 5; trial++ {
		e.RunUntil(e.Now() + sim.Minute)
		doneOD := false
		s.RunOnDemandProtocol(0, func(r ProtocolResult) {
			odC += r.Completed
			odR += r.Reached
			doneOD = true
		})
		e.RunUntil(e.Now() + 5*sim.Minute)
		if !doneOD {
			t.Fatal("on-demand instance stuck")
		}
		doneER := false
		s.RunErasmusProtocol(0, 2, func(r ProtocolResult) {
			erC += r.Completed
			erR += r.Reached
			doneER = true
		})
		e.RunUntil(e.Now() + 5*sim.Minute)
		if !doneER {
			t.Fatal("erasmus instance stuck")
		}
	}
	if odR == 0 || erR == 0 {
		t.Fatal("no nodes reached in any instance")
	}
	odRate := float64(odC) / float64(odR)
	erRate := float64(erC) / float64(erR)
	if erRate <= odRate {
		t.Fatalf("message-level: erasmus %.2f ≤ on-demand %.2f under mobility", erRate, odRate)
	}
	if erRate < 0.75 {
		t.Fatalf("message-level erasmus completion %.2f too low", erRate)
	}
}

func TestProtocolPerNodeTrace(t *testing.T) {
	e := sim.NewEngine()
	s := staticSwarm(t, e, 5)
	e.RunUntil(25 * sim.Minute)
	var res ProtocolResult
	s.RunErasmusProtocol(0, 1, func(r ProtocolResult) { res = r })
	e.RunUntil(e.Now() + sim.Minute)

	if len(res.PerNode) != 5 {
		t.Fatalf("per-node trace has %d entries", len(res.PerNode))
	}
	for i, o := range res.PerNode {
		if !o.Reached || !o.Reported {
			t.Fatalf("node %d not traced: %+v", i, o)
		}
		if o.ReportedAt < o.ReachedAt {
			t.Fatalf("node %d reported before reached", i)
		}
	}
	// Non-root nodes are reached strictly later than the root (≥ one hop).
	for i := 1; i < 5; i++ {
		if res.PerNode[i].ReachedAt <= res.PerNode[0].ReachedAt {
			t.Fatalf("node %d reached no later than the root", i)
		}
	}
}
