package qoa

import (
	"testing"
)

// §3.4: every store manipulation is detected at the next collection.
func TestAllTamperKindsDetected(t *testing.T) {
	for _, kind := range TamperKinds() {
		out, err := RunTamper(kind, 6)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !out.Detected {
			t.Errorf("%v tampering went undetected; report: %+v", kind, out.Report.Issues)
		}
	}
}

func TestTamperBaselineHealthy(t *testing.T) {
	// Sanity: without tampering the same pipeline reports healthy. Use
	// the modify path but verify the pre-tamper report by running the
	// scenario harness instead.
	res, err := RunScenario(ScenarioConfig{
		TM: 3600 * 1e9, TC: 4 * 3600 * 1e9, Duration: 20 * 3600 * 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range res.Reports {
		if rep.InfectionDetected || rep.TamperDetected {
			t.Fatalf("clean run flagged at collection %d: %v", i, rep.Issues)
		}
	}
}

func TestTamperValidation(t *testing.T) {
	if _, err := RunTamper(TamperModify, 2); err == nil {
		t.Error("windows=2 accepted")
	}
	if _, err := RunTamper(TamperKind("wat"), 5); err == nil {
		t.Error("unknown kind accepted")
	}
}

// §3.4's RROC argument: with a read-only clock the erase-and-rewind attack
// cannot be mounted and the deletion is detected; with a (hypothetically)
// writable clock the attack succeeds and the verifier sees a healthy
// history.
func TestClockResetAttack(t *testing.T) {
	secure, err := RunClockAttack(false)
	if err != nil {
		t.Fatal(err)
	}
	if secure.AttackMounted {
		t.Error("clock write succeeded on read-only RROC")
	}
	if !secure.Detected {
		t.Error("evidence deletion went undetected with read-only RROC")
	}

	flawed, err := RunClockAttack(true)
	if err != nil {
		t.Fatal(err)
	}
	if !flawed.AttackMounted {
		t.Error("ablation clock write failed")
	}
	if flawed.Detected {
		t.Errorf("attack detected despite writable clock — ablation should demonstrate the bypass; issues: %v",
			flawed.Report.Issues)
	}
}
