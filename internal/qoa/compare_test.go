package qoa

import (
	"math"
	"testing"
	"testing/quick"

	"erasmus/internal/sim"
)

func TestCompareDetectionValidation(t *testing.T) {
	if _, err := CompareDetection(0, sim.Hour, nil, 10, 1); err == nil {
		t.Error("TM=0 accepted")
	}
	if _, err := CompareDetection(sim.Hour, sim.Minute, nil, 10, 1); err == nil {
		t.Error("TC < TM accepted")
	}
	if _, err := CompareDetection(sim.Hour, sim.Hour, nil, 0, 1); err == nil {
		t.Error("trials=0 accepted")
	}
	if _, err := CompareDetection(sim.Hour, sim.Hour, []sim.Ticks{-1}, 10, 1); err == nil {
		t.Error("negative dwell accepted")
	}
}

// Simulated probabilities must track the analytic values min(1, d/TC) and
// min(1, d/TM).
func TestCompareDetectionMatchesAnalytic(t *testing.T) {
	tm := 10 * sim.Minute
	tc := 4 * sim.Hour
	dwells := []sim.Ticks{sim.Minute, 10 * sim.Minute, sim.Hour, 4 * sim.Hour}
	pts, err := CompareDetection(tm, tc, dwells, 50000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if math.Abs(p.OnDemand-p.OnDemandAnalytic) > 0.01 {
			t.Errorf("dwell %v: on-demand %.3f vs analytic %.3f", p.Dwell, p.OnDemand, p.OnDemandAnalytic)
		}
		if math.Abs(p.Erasmus-p.ErasmusAnalytic) > 0.01 {
			t.Errorf("dwell %v: erasmus %.3f vs analytic %.3f", p.Dwell, p.Erasmus, p.ErasmusAnalytic)
		}
	}
}

// The headline claim: for any dwell below TC, ERASMUS detection dominates
// on-demand when TM < TC.
func TestErasmusDominatesOnDemand(t *testing.T) {
	pts, err := CompareDetection(10*sim.Minute, 4*sim.Hour,
		[]sim.Ticks{5 * sim.Minute, 30 * sim.Minute, 2 * sim.Hour}, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Erasmus < p.OnDemand {
			t.Errorf("dwell %v: erasmus %.3f < on-demand %.3f", p.Dwell, p.Erasmus, p.OnDemand)
		}
	}
	// A 30-minute visit: ERASMUS certain, on-demand ~12.5%.
	if pts[1].Erasmus < 0.99 {
		t.Errorf("30m dwell at TM=10m should be near-certain, got %.3f", pts[1].Erasmus)
	}
	if pts[1].OnDemand > 0.2 {
		t.Errorf("30m dwell at TC=4h should be rare for on-demand, got %.3f", pts[1].OnDemand)
	}
}

// Property: probabilities are monotone in dwell and within [0,1].
func TestPropertyDetectionMonotone(t *testing.T) {
	f := func(d1, d2 uint16) bool {
		a, b := sim.Ticks(d1)*sim.Second, sim.Ticks(d2)*sim.Second
		if a > b {
			a, b = b, a
		}
		pts, err := CompareDetection(sim.Minute, sim.Hour, []sim.Ticks{a, b}, 4000, 11)
		if err != nil {
			return false
		}
		for _, p := range pts {
			if p.OnDemand < 0 || p.OnDemand > 1 || p.Erasmus < 0 || p.Erasmus > 1 {
				return false
			}
		}
		// Allow Monte-Carlo noise of a few percent.
		return pts[1].Erasmus >= pts[0].Erasmus-0.05 && pts[1].OnDemand >= pts[0].OnDemand-0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
