package qoa

import (
	"fmt"

	"erasmus/internal/sim"
)

// Temporal grading — the QoA axis composed into QoSA-graded collective
// reports (§3.1 × §6). A collective attestation instance answers two
// orthogonal questions per device: *how much* information the report
// carries (QoSA: binary / list / full) and *how recent* the evidence is
// (QoA: the freshness of the newest verified record against the device's
// measurement schedule). This file implements the temporal axis; the
// swarm package composes it into every DeviceVerdict.
//
// The grade is what turns "all records MAC-verify" into an actual health
// statement: a device that was infected and then silenced keeps serving
// authentic-but-old records forever, and only the temporal dimension can
// flag it.

// TemporalGrade classifies the age of a device's newest verified evidence
// relative to its measurement schedule.
type TemporalGrade int

const (
	// TemporalUngraded is the zero value: no evidence ever reached the
	// verifier (device unreached, or its relay path broke), so there is
	// nothing to grade. Distinct from TemporalWithheld, where the device
	// responded but its newest record is older than the schedule allows.
	TemporalUngraded TemporalGrade = iota
	// TemporalFresh: the newest record is at most one nominal measurement
	// period (plus clock skew) old — the device is measuring on schedule.
	TemporalFresh
	// TemporalAging: older than one period but still within the
	// schedule's tolerated maximum gap plus skew — a measurement was
	// missed or delayed, not yet conclusive.
	TemporalAging
	// TemporalWithheld: no evidence newer than MaxGap + skew — the device
	// stopped (or suppressed) self-measurement. Per the §3.4 argument this
	// is indistinguishable from tamper and must not grade as healthy, no
	// matter how well the stale records authenticate.
	TemporalWithheld
)

func (g TemporalGrade) String() string {
	switch g {
	case TemporalUngraded:
		return "ungraded"
	case TemporalFresh:
		return "fresh"
	case TemporalAging:
		return "aging"
	case TemporalWithheld:
		return "withheld"
	default:
		return fmt.Sprintf("TemporalGrade(%d)", int(g))
	}
}

// GradeTemporal classifies freshness f (age of the newest verified record
// at collection time) against a schedule with nominal period tm, maximum
// tolerated gap maxGap and clock-skew tolerance skew.
func GradeTemporal(f, tm, maxGap, skew sim.Ticks) TemporalGrade {
	switch {
	case f <= tm+skew:
		return TemporalFresh
	case f <= maxGap+skew:
		return TemporalAging
	default:
		return TemporalWithheld
	}
}

// CollectiveTemporal aggregates temporal grades across the responding
// devices of one collective attestation instance.
type CollectiveTemporal struct {
	Fresh    int
	Aging    int
	Withheld int
}

// Add folds one device's grade into the aggregate; TemporalUngraded is
// ignored (the aggregate covers devices whose evidence was graded).
func (c *CollectiveTemporal) Add(g TemporalGrade) {
	switch g {
	case TemporalFresh:
		c.Fresh++
	case TemporalAging:
		c.Aging++
	case TemporalWithheld:
		c.Withheld++
	}
}

// Graded returns how many devices were graded.
func (c CollectiveTemporal) Graded() int { return c.Fresh + c.Aging + c.Withheld }

// Worst returns the worst grade present (Fresh when nothing was graded):
// the collective QoA verdict is only as good as its stalest member.
func (c CollectiveTemporal) Worst() TemporalGrade {
	switch {
	case c.Withheld > 0:
		return TemporalWithheld
	case c.Aging > 0:
		return TemporalAging
	default:
		return TemporalFresh
	}
}
