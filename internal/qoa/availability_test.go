package qoa

import (
	"math"
	"testing"

	"erasmus/internal/sim"
)

// §5 quotes ~7 s for a 10 KB measurement at 8 MHz.
func TestMeasurementDurationAnchor(t *testing.T) {
	got := MeasurementDuration(10 * 1024).Seconds()
	if math.Abs(got-7.0) > 0.1 {
		t.Fatalf("10KB measurement = %.2fs, want ≈7", got)
	}
}

func TestAvailabilityValidation(t *testing.T) {
	if _, err := RunAvailability(AvailabilityConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func availabilityBase() AvailabilityConfig {
	return AvailabilityConfig{
		TM:           10 * sim.Minute,
		MemorySize:   10 * 1024,             // ≈7 s measurements
		TaskPeriod:   2 * sim.Second,        // task every 2 s...
		TaskDuration: 500 * sim.Millisecond, // ...needing 0.5 s
		Duration:     2 * sim.Hour,
	}
}

// Under strict scheduling, every measurement makes several consecutive
// tasks miss their deadlines (a 7 s CPU hog vs a 2 s period).
func TestStrictPolicyMissesDeadlines(t *testing.T) {
	cfg := availabilityBase()
	cfg.Policy = PolicyStrict
	res, err := RunAvailability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses == 0 {
		t.Fatal("strict policy missed no deadlines despite 7s measurements")
	}
	if res.MissedWindows != 0 {
		t.Fatalf("strict policy lost %d measurement windows", res.MissedWindows)
	}
	if res.Measurements < 10 {
		t.Fatalf("measurements = %d, want ~12 in 2h at TM=10m", res.Measurements)
	}
}

// Aborting without a retry window protects every deadline but sacrifices
// the attestation windows.
func TestAbortPolicyTradesAttestation(t *testing.T) {
	cfg := availabilityBase()
	cfg.Policy = PolicyAbort
	res, err := RunAvailability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("abort policy still missed %d deadlines", res.DeadlineMisses)
	}
	if res.Aborts == 0 {
		t.Fatal("no aborts recorded")
	}
	if res.Measurements != 0 {
		t.Fatalf("every window should be lost at this task rate; committed %d", res.Measurements)
	}
}

// The lenient window recovers measurement windows that abort-only loses.
// An 11 s task period against 7.17 s measurements at TM = 10 min makes the
// collision phase sweep across windows (600 mod 11 = 6), so some initial
// attempts are aborted while their end-of-window retries land in task gaps.
func TestLenientPolicyRecoversMeasurements(t *testing.T) {
	cfg := availabilityBase()
	cfg.TaskPeriod = 11 * sim.Second
	cfg.TaskDuration = sim.Second
	cfg.Policy = PolicyLenient
	cfg.Window = 2.0
	lenient, err := RunAvailability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lenient.DeadlineMisses != 0 {
		t.Fatalf("lenient policy missed %d deadlines", lenient.DeadlineMisses)
	}
	if lenient.Aborts == 0 {
		t.Fatal("no collisions occurred; the experiment exercises nothing")
	}

	cfg.Policy = PolicyAbort
	abortOnly, err := RunAvailability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if abortOnly.DeadlineMisses != 0 {
		t.Fatalf("abort policy missed %d deadlines", abortOnly.DeadlineMisses)
	}
	if lenient.Measurements <= abortOnly.Measurements {
		t.Fatalf("lenient committed %d ≤ abort-only %d; retry window had no effect",
			lenient.Measurements, abortOnly.Measurements)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyStrict.String() != "strict" || PolicyAbort.String() != "abort" ||
		PolicyLenient.String() != "lenient" || AvailabilityPolicy(9).String() != "unknown" {
		t.Error("policy strings wrong")
	}
}

func TestMissRate(t *testing.T) {
	r := AvailabilityResult{TasksReleased: 10, DeadlineMisses: 3}
	if r.MissRate() != 0.3 {
		t.Fatalf("MissRate = %v", r.MissRate())
	}
	if (AvailabilityResult{}).MissRate() != 0 {
		t.Fatal("empty MissRate not 0")
	}
}
