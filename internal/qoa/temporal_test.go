package qoa

import (
	"testing"

	"erasmus/internal/sim"
)

func TestGradeTemporalBoundaries(t *testing.T) {
	tm := 10 * sim.Minute
	maxGap := tm + tm/2
	skew := tm / 10
	cases := []struct {
		f    sim.Ticks
		want TemporalGrade
	}{
		{0, TemporalFresh},
		{tm, TemporalFresh},
		{tm + skew, TemporalFresh},
		{tm + skew + 1, TemporalAging},
		{maxGap, TemporalAging},
		{maxGap + skew, TemporalAging},
		{maxGap + skew + 1, TemporalWithheld},
		{24 * sim.Hour, TemporalWithheld},
	}
	for _, c := range cases {
		if got := GradeTemporal(c.f, tm, maxGap, skew); got != c.want {
			t.Errorf("GradeTemporal(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestCollectiveTemporalAggregate(t *testing.T) {
	var c CollectiveTemporal
	if c.Worst() != TemporalFresh || c.Graded() != 0 {
		t.Fatal("empty aggregate should be fresh with zero graded")
	}
	c.Add(TemporalFresh)
	c.Add(TemporalFresh)
	if c.Worst() != TemporalFresh {
		t.Fatal("all-fresh aggregate not fresh")
	}
	c.Add(TemporalAging)
	if c.Worst() != TemporalAging {
		t.Fatal("aging member did not degrade the collective grade")
	}
	c.Add(TemporalWithheld)
	if c.Worst() != TemporalWithheld {
		t.Fatal("withheld member did not dominate the collective grade")
	}
	if c.Graded() != 4 || c.Fresh != 2 || c.Aging != 1 || c.Withheld != 1 {
		t.Fatalf("aggregate counts wrong: %+v", c)
	}
}

func TestTemporalGradeString(t *testing.T) {
	if TemporalFresh.String() != "fresh" || TemporalAging.String() != "aging" ||
		TemporalWithheld.String() != "withheld" || TemporalGrade(9).String() == "" {
		t.Error("grade strings wrong")
	}
}
