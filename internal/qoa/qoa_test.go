package qoa

import (
	"math"
	"testing"

	"erasmus/internal/sim"
)

func TestInfectionActive(t *testing.T) {
	persistent := Infection{Enter: 100}
	if persistent.Leaves() {
		t.Error("persistent malware claims to leave")
	}
	if persistent.Active(99) || !persistent.Active(100) || !persistent.Active(1e9) {
		t.Error("persistent activity window wrong")
	}
	transient := Infection{Enter: 100, Dwell: 50}
	if !transient.Leaves() {
		t.Error("transient malware claims persistence")
	}
	if transient.Active(99) || !transient.Active(100) || !transient.Active(149) || transient.Active(150) {
		t.Error("transient activity window wrong")
	}
}

func TestScenarioConfigValidation(t *testing.T) {
	bad := []ScenarioConfig{
		{TC: sim.Hour, Duration: sim.Hour},                               // no TM
		{TM: sim.Hour, Duration: sim.Hour},                               // no TC
		{TM: sim.Hour, TC: sim.Hour},                                     // no duration
		{IrregularL: 5, IrregularU: 3, TC: sim.Hour, Duration: sim.Hour}, // bad bounds
	}
	for i, cfg := range bad {
		if _, err := RunScenario(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// Fig. 1 reproduced: infection 1 (mobile, leaves before any measurement)
// goes undetected; infection 2 (persistent) is detected after the next
// measurement + collection.
func TestFigure1Scenario(t *testing.T) {
	tm := sim.Hour
	tc := 4 * sim.Hour
	res, err := RunScenario(ScenarioConfig{
		TM: tm, TC: tc, Duration: 24 * sim.Hour,
		Infections: []Infection{
			// Enters just after a measurement, leaves well before the
			// next: measurements fire at 32m07s past each hour (the RROC
			// epoch is not hour-aligned), so [h+35m, h+55m] is safe.
			{Enter: 3*sim.Hour + 35*sim.Minute, Dwell: 20 * sim.Minute},
			// Persistent from 9h30 on.
			{Enter: 9*sim.Hour + 30*sim.Minute},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[0].Detected {
		t.Error("infection 1 (mobile, between measurements) should be undetected")
	}
	if !res.Outcomes[1].Detected {
		t.Error("infection 2 (persistent) should be detected")
	}
	// Detection latency is bounded by TM + TC (§3.1).
	if res.Outcomes[1].Detected {
		delay := res.Outcomes[1].DetectedAt - res.Outcomes[1].Infection.Enter
		if delay <= 0 || delay > tm+tc {
			t.Errorf("detection delay %v outside (0, TM+TC]", delay)
		}
	}
}

// Shrinking TM catches the same mobile malware that a long TM misses.
func TestSmallerTMCatchesMobileMalware(t *testing.T) {
	inf := []Infection{{Enter: 3*sim.Hour + 35*sim.Minute, Dwell: 20 * sim.Minute}}
	long, err := RunScenario(ScenarioConfig{TM: sim.Hour, TC: 4 * sim.Hour, Duration: 12 * sim.Hour, Infections: inf})
	if err != nil {
		t.Fatal(err)
	}
	short, err := RunScenario(ScenarioConfig{TM: 5 * sim.Minute, TC: 4 * sim.Hour, Duration: 12 * sim.Hour, Infections: inf})
	if err != nil {
		t.Fatal(err)
	}
	if long.DetectedCount() != 0 {
		t.Error("TM=1h unexpectedly caught the 20-minute visit")
	}
	if short.DetectedCount() != 1 {
		t.Error("TM=5m missed the 20-minute visit")
	}
}

func TestMeanFreshnessNearHalfTM(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{
		TM: sim.Hour, TC: 3 * sim.Hour, Duration: 80 * sim.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Freshness) < 10 {
		t.Fatalf("only %d freshness samples", len(res.Freshness))
	}
	// Collections land at fixed phase vs the measurement grid here, so
	// freshness is deterministic; just check it lies in [0, TM].
	mean := res.MeanFreshness()
	if mean < 0 || mean > sim.Hour {
		t.Fatalf("mean freshness %v outside [0, TM]", mean)
	}
}

func TestScenarioProverRan(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{TM: sim.Hour, TC: 2 * sim.Hour, Duration: 10 * sim.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProverStat.Measurements < 9 {
		t.Fatalf("measurements = %d", res.ProverStat.Measurements)
	}
	if len(res.Reports) != 5 {
		t.Fatalf("collections = %d, want 5 (at 2,4,6,8,10h — the horizon tick fires)", len(res.Reports))
	}
}

func TestDetectionProbabilityAnalytic(t *testing.T) {
	tm := sim.Hour
	cases := []struct {
		dwell sim.Ticks
		want  float64
	}{
		{0, 0}, {30 * sim.Minute, 0.5}, {sim.Hour, 1.0}, {2 * sim.Hour, 1.0},
	}
	for _, c := range cases {
		got := DetectionProbability(tm, c.dwell, 20000, 1)
		if math.Abs(got-c.want) > 0.02 {
			t.Errorf("P(detect | dwell=%v) = %.3f, want %.3f", c.dwell, got, c.want)
		}
	}
	if DetectionProbability(0, 1, 10, 1) != 0 || DetectionProbability(1, 1, 0, 1) != 0 {
		t.Error("degenerate inputs not zero")
	}
}

// §3.5's core claim: schedule-aware malware always evades a regular
// schedule (dwell < TM) but gets caught under an irregular one whenever
// the drawn interval undercuts its dwell.
func TestIrregularDefeatsScheduleAwareMalware(t *testing.T) {
	dwell := 25 * sim.Minute
	regular, err := EvasionProbability(ScenarioConfig{
		TM: sim.Hour, TC: 4 * sim.Hour, Duration: sim.Hour,
	}, dwell, 12)
	if err != nil {
		t.Fatal(err)
	}
	if regular.Evasion < 0.99 {
		t.Fatalf("regular-schedule evasion = %.2f, want ~1 (dwell < TM)", regular.Evasion)
	}
	irregular, err := EvasionProbability(ScenarioConfig{
		IrregularL: 10 * sim.Minute, IrregularU: 70 * sim.Minute,
		TC: 4 * sim.Hour, Duration: sim.Hour,
	}, dwell, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Expected catch rate ≈ (dwell−L)/(U−L) = 15/60 = 25%; require the
	// qualitative gap.
	if irregular.Evasion > 0.95 {
		t.Fatalf("irregular-schedule evasion = %.2f, want < regular", irregular.Evasion)
	}
	if irregular.Trials == 0 || regular.Trials == 0 {
		t.Fatal("no malware visits simulated")
	}
}

func TestEvasionValidation(t *testing.T) {
	if _, err := EvasionProbability(ScenarioConfig{TM: sim.Hour, TC: sim.Hour, Duration: sim.Hour}, 1, 0); err == nil {
		t.Error("visits=0 accepted")
	}
}
