package qoa

import (
	"fmt"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/hw/mcu"
	"erasmus/internal/sim"
)

// Tamper reproduces §3.4's argument: measurements live in unprotected
// storage, so malware can modify, reorder or delete them — but cannot forge
// them, so every manipulation is detected at the next collection.

// TamperKind selects the adversary's store manipulation.
type TamperKind string

// The §3.4 tampering classes.
const (
	TamperModify  TamperKind = "modify"  // flip bits inside a stored record
	TamperReorder TamperKind = "reorder" // swap two stored records
	TamperDelete  TamperKind = "delete"  // zero a stored record
	TamperForge   TamperKind = "forge"   // overwrite with a fabricated record
)

// TamperKinds lists all modeled manipulations.
func TamperKinds() []TamperKind {
	return []TamperKind{TamperModify, TamperReorder, TamperDelete, TamperForge}
}

// TamperOutcome reports one tamper experiment.
type TamperOutcome struct {
	Kind     TamperKind
	Detected bool
	Report   core.Report
}

// RunTamper builds a healthy history of `windows` measurements, applies the
// manipulation to the prover's store (as resident malware would), collects,
// and verifies. The returned outcome says whether the verifier noticed.
func RunTamper(kind TamperKind, windows int) (TamperOutcome, error) {
	if windows < 3 {
		return TamperOutcome{}, fmt.Errorf("qoa: tamper experiment needs ≥3 windows, got %d", windows)
	}
	const alg = mac.KeyedBLAKE2s
	tm := sim.Hour
	e := sim.NewEngine()
	key := []byte("qoa-tamper-device-key")
	slots := windows + 2
	dev, err := mcu.New(mcu.Config{
		Engine: e, MemorySize: 1024,
		StoreSize: slots * core.RecordSize(alg),
		Key:       key,
	})
	if err != nil {
		return TamperOutcome{}, err
	}
	sched, _ := core.NewRegular(tm)
	prv, err := core.NewProver(dev, core.ProverConfig{Alg: alg, Schedule: sched, Slots: slots})
	if err != nil {
		return TamperOutcome{}, err
	}
	golden := mac.HashSum(alg, dev.Memory())
	vrf, err := core.NewVerifier(core.VerifierConfig{
		Alg: alg, Key: key,
		GoldenHashes: [][]byte{golden},
		MinGap:       tm - sim.Minute, MaxGap: tm + sim.Minute,
	})
	if err != nil {
		return TamperOutcome{}, err
	}

	prv.Start()
	e.RunUntil(sim.Ticks(windows+1) * tm)
	prv.Stop()

	// The adversary manipulates the raw store. Slot addressing is
	// time-based; find two adjacent written slots via the buffer.
	buf := prv.Buffer()
	written := []int{}
	for s := 0; s < slots; s++ {
		if r, err := buf.Get(s); err == nil && !r.IsZero() {
			written = append(written, s)
		}
	}
	if len(written) < 3 {
		return TamperOutcome{}, fmt.Errorf("qoa: only %d records written", len(written))
	}
	switch kind {
	case TamperModify:
		store := dev.Store()
		store[written[1]*core.RecordSize(alg)+9] ^= 0x40 // a hash byte
	case TamperReorder:
		a, b := written[0], written[1]
		ra, _ := buf.Get(a)
		rb, _ := buf.Get(b)
		buf.Put(a, rb)
		buf.Put(b, ra)
	case TamperDelete:
		buf.Erase(written[1])
	case TamperForge:
		// Malware fabricates a "clean" record without knowing K.
		forged := core.Record{
			T:    mcu.DefaultEpoch + uint64(sim.Ticks(windows)*tm),
			Hash: golden,
			MAC:  make([]byte, alg.Size()),
		}
		buf.Put(written[1], forged)
	default:
		return TamperOutcome{}, fmt.Errorf("qoa: unknown tamper kind %q", kind)
	}

	recs, _ := prv.HandleCollect(windows)
	rep := vrf.VerifyHistory(recs, dev.RROC(), windows)
	return TamperOutcome{Kind: kind, Detected: !rep.Healthy(), Report: rep}, nil
}

// ClockAttackOutcome reports the §3.4 RROC-reset experiment.
type ClockAttackOutcome struct {
	// WritableClock is the ablation switch: true models hypothetically
	// flawed hardware whose clock malware can rewind.
	WritableClock bool
	// AttackMounted: the malware's clock write succeeded.
	AttackMounted bool
	// Detected: the verifier noticed anything wrong.
	Detected bool
	Report   core.Report
}

// RunClockAttack demonstrates why the RROC must be read-only (§3.4).
// Malware enters, is caught by one measurement, and then tries to erase
// the evidence: it deletes the incriminating record and rewinds the clock
// so the prover re-measures the same window while clean, refilling the
// slot with a plausible record.
//
// With writable=true the attack succeeds and the verifier sees a healthy
// history (the paper's hypothetical). With writable=false the clock write
// is blocked, the deletion leaves a hole, and the verifier detects it.
func RunClockAttack(writable bool) (ClockAttackOutcome, error) {
	const alg = mac.KeyedBLAKE2s
	tm := sim.Hour
	const windows = 6
	e := sim.NewEngine()
	key := []byte("qoa-clock-attack-key")
	slots := windows + 4
	dev, err := mcu.New(mcu.Config{
		Engine: e, MemorySize: 1024,
		StoreSize:     slots * core.RecordSize(alg),
		Key:           key,
		WritableClock: writable,
	})
	if err != nil {
		return ClockAttackOutcome{}, err
	}
	sched, _ := core.NewRegular(tm)
	prv, err := core.NewProver(dev, core.ProverConfig{Alg: alg, Schedule: sched, Slots: slots})
	if err != nil {
		return ClockAttackOutcome{}, err
	}
	golden := mac.HashSum(alg, dev.Memory())
	vrf, err := core.NewVerifier(core.VerifierConfig{
		Alg: alg, Key: key,
		GoldenHashes: [][]byte{golden},
		MinGap:       tm - sim.Minute, MaxGap: tm + sim.Minute,
	})
	if err != nil {
		return ClockAttackOutcome{}, err
	}

	out := ClockAttackOutcome{WritableClock: writable}

	// Timeline: the first measurement fires at `first`, then every TM.
	first := sim.Ticks(uint64(tm) - mcu.DefaultEpoch%uint64(tm))
	infectAt := first + 2*tm - 10*sim.Minute // resident across measurement #3

	e.At(infectAt, func() {
		dev.WriteMemory(0, implant)
	})
	// After measurement #3 catches it, the malware cleans up and attacks
	// the evidence.
	cleanupAt := first + 2*tm + 10*sim.Minute
	e.At(cleanupAt, func() {
		dev.WriteMemory(0, make([]byte, len(implant)))
		// Locate and erase the infected record.
		buf := prv.Buffer()
		for s := 0; s < slots; s++ {
			r, err := buf.Get(s)
			if err != nil || r.IsZero() {
				continue
			}
			if r.VerifyMAC(alg, key) && !bytesEqual(r.Hash, golden) {
				buf.Erase(s)
			}
		}
		// Rewind the clock to just before the incriminating window so the
		// prover re-measures it while clean.
		if err := dev.WriteRROC(dev.RROC() - uint64(tm)); err == nil {
			out.AttackMounted = true
		}
	})

	prv.Start()
	e.RunUntil(first + sim.Ticks(windows)*tm + 30*sim.Minute)
	prv.Stop()

	recs, _ := prv.HandleCollect(windows)
	rep := vrf.VerifyHistory(recs, dev.RROC(), windows)
	out.Report = rep
	out.Detected = !rep.Healthy()
	return out, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
