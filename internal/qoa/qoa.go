// Package qoa provides the Quality-of-Attestation experiment harness: the
// malware and adversary models, and the measurement/collection scenarios
// that reproduce the paper's security arguments (Fig. 1, §3.4, §3.5, §5).
//
// A scenario wires a simulated device, an ERASMUS prover, a verifier and a
// set of infections into one discrete-event run, then reports per-infection
// detection, per-collection verdicts and freshness samples.
package qoa

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"erasmus/internal/core"
	"erasmus/internal/crypto/drbg"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/hw/mcu"
	"erasmus/internal/sim"
)

// Device extends the core prover surface with the normal-world write
// access malware has. Both hardware models satisfy it.
type Device interface {
	core.Device
	WriteMemory(off int, b []byte) error
}

// Infection is one malware visit to the prover.
type Infection struct {
	// Enter is when malware lands (simulation time).
	Enter sim.Ticks
	// Dwell is how long it stays before leaving and covering its tracks.
	// Zero means persistent: it never leaves.
	Dwell sim.Ticks
}

// Leaves reports whether the malware is transient.
func (inf Infection) Leaves() bool { return inf.Dwell > 0 }

// Active reports whether the malware is resident at simulation time t.
func (inf Infection) Active(t sim.Ticks) bool {
	if t < inf.Enter {
		return false
	}
	return !inf.Leaves() || t < inf.Enter+inf.Dwell
}

// implant is the byte pattern malware writes into attested memory; any
// change to the image flips H(mem), which is all detection needs.
var implant = []byte("\xde\xad\xbe\xef malware implant \xde\xad\xbe\xef")

// ScheduleKind selects the prover's measurement schedule.
type ScheduleKind int

const (
	// ScheduleRegular measures every TM (the paper's default).
	ScheduleRegular ScheduleKind = iota
	// ScheduleIrregular draws intervals from CSPRNG_K in [L, U) (§3.5).
	ScheduleIrregular
)

// ScenarioConfig parameterizes one end-to-end run.
type ScenarioConfig struct {
	// Alg is the measurement MAC (default keyed BLAKE2s).
	Alg mac.Algorithm
	// TM is the measurement period (regular schedules). Required unless
	// irregular bounds are set.
	TM sim.Ticks
	// IrregularL/IrregularU bound irregular intervals; both set selects
	// ScheduleIrregular.
	IrregularL, IrregularU sim.Ticks
	// TC is the collection period. Required.
	TC sim.Ticks
	// Slots is the buffer size n (default: minimum satisfying TC ≤ n·TM).
	Slots int
	// K is the records-per-collection (default ⌈TC/TM⌉).
	K int
	// Duration is the simulated horizon. Required.
	Duration sim.Ticks
	// MemorySize is the attested image size (default 1 KiB).
	MemorySize int
	// Infections lists the malware visits.
	Infections []Infection
	// OnEvent, if set, receives the prover's runtime event stream.
	OnEvent func(core.Event)
}

func (c *ScenarioConfig) fillDefaults() error {
	if !c.Alg.Valid() {
		c.Alg = mac.KeyedBLAKE2s
	}
	irregular := c.IrregularL > 0 || c.IrregularU > 0
	if irregular && (c.IrregularL <= 0 || c.IrregularU <= c.IrregularL) {
		return fmt.Errorf("qoa: irregular bounds [%v,%v) invalid", c.IrregularL, c.IrregularU)
	}
	if !irregular && c.TM <= 0 {
		return errors.New("qoa: TM required for a regular schedule")
	}
	if irregular && c.TM <= 0 {
		c.TM = (c.IrregularL + c.IrregularU) / 2
	}
	if c.TC <= 0 {
		return errors.New("qoa: TC required")
	}
	if c.Duration <= 0 {
		return errors.New("qoa: Duration required")
	}
	if c.MemorySize <= 0 {
		c.MemorySize = 1024
	}
	q := core.QoA{TM: c.TM, TC: c.TC}
	if c.K <= 0 {
		c.K = q.RecordsPerCollection()
	}
	if c.Slots <= 0 {
		c.Slots = q.MinBufferSlots() + 2 // slack for queueing jitter
	}
	return nil
}

// InfectionOutcome records how one infection fared.
type InfectionOutcome struct {
	Infection Infection
	// Measured: at least one self-measurement ran while malware was
	// resident (an infected record exists).
	Measured bool
	// Detected: a collection surfaced an infected record to the verifier.
	Detected bool
	// DetectedAt is the simulation time of the detecting collection.
	DetectedAt sim.Ticks
}

// ScenarioResult aggregates one run.
type ScenarioResult struct {
	Config     ScenarioConfig
	Outcomes   []InfectionOutcome
	Reports    []core.Report
	Freshness  []sim.Ticks
	ProverStat core.ProverStats
}

// DetectedCount returns how many infections were detected.
func (r *ScenarioResult) DetectedCount() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Detected {
			n++
		}
	}
	return n
}

// MeanFreshness averages the per-collection freshness samples (§3.1
// predicts TM/2 on average).
func (r *ScenarioResult) MeanFreshness() sim.Ticks {
	if len(r.Freshness) == 0 {
		return 0
	}
	var sum sim.Ticks
	for _, f := range r.Freshness {
		sum += f
	}
	return sum / sim.Ticks(len(r.Freshness))
}

// RunScenario executes a full measure→infect→collect→verify simulation on
// an MSP430-class device and returns the outcome.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	e := sim.NewEngine()
	key := []byte("qoa-scenario-device-key")
	dev, err := mcu.New(mcu.Config{
		Engine:     e,
		MemorySize: cfg.MemorySize,
		StoreSize:  cfg.Slots * core.RecordSize(cfg.Alg),
		Key:        key,
	})
	if err != nil {
		return nil, err
	}

	var sched core.Schedule
	if cfg.IrregularL > 0 {
		s, err := core.NewIrregular(drbg.New(key, []byte("sched")), cfg.IrregularL, cfg.IrregularU)
		if err != nil {
			return nil, err
		}
		sched = s
	} else {
		s, err := core.NewRegular(cfg.TM)
		if err != nil {
			return nil, err
		}
		sched = s
	}

	prv, err := core.NewProver(dev, core.ProverConfig{
		Alg: cfg.Alg, Schedule: sched, Slots: cfg.Slots, OnEvent: cfg.OnEvent,
	})
	if err != nil {
		return nil, err
	}
	cleanHash := mac.HashSum(cfg.Alg, dev.Memory())
	maxGap := sim.Ticks(0)
	minGap := sim.Ticks(0)
	if cfg.IrregularL > 0 {
		minGap, maxGap = cfg.IrregularL-sim.Second, cfg.IrregularU+cfg.TM
	} else {
		minGap, maxGap = cfg.TM-sim.Second, cfg.TM+cfg.TM/2
	}
	vrf, err := core.NewVerifier(core.VerifierConfig{
		Alg: cfg.Alg, Key: key,
		GoldenHashes: [][]byte{cleanHash},
		MinGap:       minGap, MaxGap: maxGap,
	})
	if err != nil {
		return nil, err
	}

	res := &ScenarioResult{Config: cfg}
	res.Outcomes = make([]InfectionOutcome, len(cfg.Infections))
	for i := range cfg.Infections {
		res.Outcomes[i].Infection = cfg.Infections[i]
	}

	// Schedule infections: write the implant on entry; restore the clean
	// image on exit (mobile malware covers its tracks, Fig. 1).
	for i, inf := range cfg.Infections {
		inf := inf
		i := i
		e.At(inf.Enter, func() {
			if err := dev.WriteMemory(0, implant); err != nil {
				panic(err)
			}
		})
		if inf.Leaves() {
			e.At(inf.Enter+inf.Dwell, func() {
				clean := make([]byte, len(implant))
				if err := dev.WriteMemory(0, clean); err != nil {
					panic(err)
				}
			})
		}
		_ = i
	}

	// Collections every TC.
	e.Ticker(cfg.TC, cfg.TC, func() {
		recs, _ := prv.HandleCollect(cfg.K)
		rep := vrf.VerifyHistory(recs, dev.RROC(), 0)
		res.Reports = append(res.Reports, rep)
		if len(recs) > 0 {
			res.Freshness = append(res.Freshness, rep.Freshness)
		}
		if !rep.InfectionDetected {
			return
		}
		// Attribute each infected record to the infection resident at
		// its measurement time.
		for _, vr := range rep.Records {
			if vr.Verdict != core.VerdictInfected {
				continue
			}
			mt := sim.Ticks(vr.Record.T - mcu.DefaultEpoch)
			for i := range res.Outcomes {
				if res.Outcomes[i].Infection.Active(mt) {
					res.Outcomes[i].Measured = true
					if !res.Outcomes[i].Detected {
						res.Outcomes[i].Detected = true
						res.Outcomes[i].DetectedAt = e.Now()
					}
				}
			}
		}
	})

	prv.Start()
	e.RunUntil(cfg.Duration)
	prv.Stop()
	res.ProverStat = prv.Stats()
	return res, nil
}

// DetectionProbability estimates, by Monte-Carlo over random infection
// phases, the probability that transient malware with the given dwell time
// is caught by a measurement. For a regular schedule the analytic value is
// min(1, dwell/TM); the §3.5 experiments compare regular and irregular
// schedules against schedule-aware malware via EvasionProbability instead.
func DetectionProbability(tm, dwell sim.Ticks, trials int, seed int64) float64 {
	if trials <= 0 || tm <= 0 || dwell < 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	hits := 0
	for i := 0; i < trials; i++ {
		// Malware enters at a uniform phase within a window; it is caught
		// iff its residency covers the next measurement instant.
		phase := sim.Ticks(rng.Int63n(int64(tm)))
		if phase+dwell >= tm {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// EvasionResult summarizes the §3.5 schedule-aware malware experiment.
type EvasionResult struct {
	Trials  int
	Caught  int
	Evasion float64 // fraction of visits that escaped detection
}

// EvasionProbability simulates schedule-aware mobile malware: it watches
// for a measurement to complete, enters immediately after, dwells, and
// leaves. Under a regular schedule it knows the full TM window and always
// escapes when dwell < TM; under an irregular schedule the next
// measurement arrives after an unpredictable interval in [L, U), so it is
// caught whenever that interval undercuts its dwell.
func EvasionProbability(cfg ScenarioConfig, dwell sim.Ticks, visits int) (EvasionResult, error) {
	if err := cfg.fillDefaults(); err != nil {
		return EvasionResult{}, err
	}
	if visits <= 0 {
		return EvasionResult{}, errors.New("qoa: visits must be positive")
	}
	// Horizon: enough windows for the requested visits plus slack.
	horizon := sim.Ticks(visits+4) * (cfg.TM + dwell + sim.Second)
	shortest := cfg.TM
	if cfg.IrregularU > 0 {
		horizon = sim.Ticks(visits+4) * (cfg.IrregularU + dwell + sim.Second)
		shortest = cfg.IrregularL
	}
	// One record per window; keep every window of the horizon so no
	// infected record is overwritten before the final sweep below.
	if want := int(horizon/shortest) + 16; cfg.Slots < want {
		cfg.Slots = want
	}

	e := sim.NewEngine()
	key := []byte("qoa-evasion-device-key")
	dev, err := mcu.New(mcu.Config{
		Engine:     e,
		MemorySize: cfg.MemorySize,
		StoreSize:  cfg.Slots * core.RecordSize(cfg.Alg),
		Key:        key,
	})
	if err != nil {
		return EvasionResult{}, err
	}
	var sched core.Schedule
	if cfg.IrregularL > 0 {
		s, err := core.NewIrregular(drbg.New(key, []byte("sched")), cfg.IrregularL, cfg.IrregularU)
		if err != nil {
			return EvasionResult{}, err
		}
		sched = s
	} else {
		s, _ := core.NewRegular(cfg.TM)
		sched = s
	}
	prv, err := core.NewProver(dev, core.ProverConfig{Alg: cfg.Alg, Schedule: sched, Slots: cfg.Slots})
	if err != nil {
		return EvasionResult{}, err
	}
	clean := mac.HashSum(cfg.Alg, dev.Memory())

	// The malware process: poll for measurement completions (it can watch
	// CPU activity), then enter right after one and dwell.
	res := EvasionResult{}
	resident := false
	visitsDone := 0
	lastSeen := uint64(0)
	var poll func()
	poll = func() {
		if visitsDone >= visits {
			return
		}
		if lt := prv.LastMeasurementTime(); lt > lastSeen && !resident {
			lastSeen = lt
			resident = true
			visitsDone++
			dev.WriteMemory(0, implant)
			e.After(dwell, func() {
				dev.WriteMemory(0, make([]byte, len(implant)))
				resident = false
			})
		}
		e.After(sim.Second, poll)
	}
	e.After(sim.Second, poll)

	prv.Start()
	e.RunUntil(horizon)
	prv.Stop()

	// Count infected records across the whole buffer.
	recs, _ := prv.HandleCollect(cfg.Slots)
	caughtTimes := map[uint64]bool{}
	for _, r := range recs {
		if r.VerifyMAC(cfg.Alg, key) && !bytes.Equal(r.Hash, clean) {
			caughtTimes[r.T] = true
		}
	}
	res.Trials = visitsDone
	res.Caught = len(caughtTimes)
	if res.Caught > res.Trials {
		res.Caught = res.Trials
	}
	if res.Trials > 0 {
		res.Evasion = 1 - float64(res.Caught)/float64(res.Trials)
	}
	return res, nil
}
