package qoa

import (
	"errors"

	"erasmus/internal/core"
	"erasmus/internal/costmodel"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/hw/cpu"
	"erasmus/internal/hw/mcu"
	"erasmus/internal/sim"
)

// Availability reproduces §5: on a device running a time-sensitive
// application, self-measurements (≈7 s on an 8 MHz MCU with 10 KB memory)
// monopolize the CPU and make critical tasks miss deadlines. The lenient
// variant lets the application abort a measurement and have it retried at
// the end of a w×TM window.

// AvailabilityPolicy selects how measurement/task conflicts are handled.
type AvailabilityPolicy int

const (
	// PolicyStrict: measurements are never aborted; tasks queue behind
	// them (the pure on-demand / strict-ERASMUS situation of §5).
	PolicyStrict AvailabilityPolicy = iota
	// PolicyAbort: tasks abort in-flight measurements; without a lenient
	// window the aborted measurement is lost.
	PolicyAbort
	// PolicyLenient: tasks abort in-flight measurements and the prover
	// retries before the w×TM window closes (§5's proposal).
	PolicyLenient
)

func (p AvailabilityPolicy) String() string {
	switch p {
	case PolicyStrict:
		return "strict"
	case PolicyAbort:
		return "abort"
	case PolicyLenient:
		return "lenient"
	default:
		return "unknown"
	}
}

// AvailabilityConfig parameterizes the experiment.
type AvailabilityConfig struct {
	// TM is the measurement period.
	TM sim.Ticks
	// MemorySize sets the measurement cost (10 KB ≈ 7 s at 8 MHz).
	MemorySize int
	// TaskPeriod and TaskDuration describe the periodic critical task;
	// its deadline is one period (it must finish before the next release).
	TaskPeriod, TaskDuration sim.Ticks
	// Policy selects conflict handling.
	Policy AvailabilityPolicy
	// Window is w for PolicyLenient (e.g. 2.0).
	Window float64
	// Duration is the simulated horizon.
	Duration sim.Ticks
}

// AvailabilityResult reports task- and attestation-side outcomes, the §5
// trade-off.
type AvailabilityResult struct {
	TasksReleased   int
	DeadlineMisses  int
	Measurements    int // committed
	MissedWindows   int // measurement windows lost
	Aborts          int
	MeanTaskLatency sim.Ticks // release-to-completion average
}

// MissRate returns the fraction of task releases that missed the deadline.
func (r AvailabilityResult) MissRate() float64 {
	if r.TasksReleased == 0 {
		return 0
	}
	return float64(r.DeadlineMisses) / float64(r.TasksReleased)
}

// RunAvailability executes the experiment on an MSP430-class device.
func RunAvailability(cfg AvailabilityConfig) (AvailabilityResult, error) {
	if cfg.TM <= 0 || cfg.TaskPeriod <= 0 || cfg.TaskDuration <= 0 || cfg.Duration <= 0 {
		return AvailabilityResult{}, errors.New("qoa: availability config requires positive periods")
	}
	if cfg.MemorySize <= 0 {
		cfg.MemorySize = 10 * 1024
	}
	const alg = mac.HMACSHA256
	e := sim.NewEngine()
	key := []byte("qoa-availability-key")
	slots := int(cfg.Duration/cfg.TM) + 4
	dev, err := mcu.New(mcu.Config{
		Engine: e, MemorySize: cfg.MemorySize,
		StoreSize: slots * core.RecordSize(alg),
		Key:       key,
	})
	if err != nil {
		return AvailabilityResult{}, err
	}
	sched, err := core.NewRegular(cfg.TM)
	if err != nil {
		return AvailabilityResult{}, err
	}
	pcfg := core.ProverConfig{Alg: alg, Schedule: sched, Slots: slots}
	if cfg.Policy == PolicyLenient {
		if cfg.Window <= 1 {
			cfg.Window = 2.0
		}
		pcfg.LenientWindow = cfg.Window
	}
	prv, err := core.NewProver(dev, pcfg)
	if err != nil {
		return AvailabilityResult{}, err
	}

	var res AvailabilityResult
	var totalLatency sim.Ticks
	e.Ticker(cfg.TaskPeriod, cfg.TaskPeriod, func() {
		res.TasksReleased++
		release := e.Now()
		if cfg.Policy != PolicyStrict && dev.CPU().ActiveKind() == cpu.KindMeasurement {
			if prv.AbortMeasurement() {
				res.Aborts++
			}
		}
		occ := dev.CPU().Occupy(cpu.KindTask, cfg.TaskDuration)
		latency := occ.End - release
		totalLatency += latency
		if latency > cfg.TaskPeriod {
			res.DeadlineMisses++
		}
	})

	prv.Start()
	e.RunUntil(cfg.Duration)
	prv.Stop()

	st := prv.Stats()
	res.Measurements = st.Measurements
	res.MissedWindows = st.Missed
	if res.TasksReleased > 0 {
		res.MeanTaskLatency = totalLatency / sim.Ticks(res.TasksReleased)
	}
	return res, nil
}

// MeasurementDuration exposes the modeled cost driving the experiment
// (≈7 s for 10 KB HMAC-SHA256 at 8 MHz, the number §5 quotes).
func MeasurementDuration(memBytes int) sim.Ticks {
	return costmodel.MeasurementTime(costmodel.MSP430, mac.HMACSHA256, memBytes)
}
