package qoa

import (
	"errors"
	"math/rand"

	"erasmus/internal/sim"
)

// Compare quantifies the paper's headline claim (§1, §3): on-demand
// attestation only observes the prover's state at collection instants, so
// mobile malware that leaves between two verifier contacts is invisible to
// it; ERASMUS observes every measurement window.
//
// For a transient infection with dwell d arriving at a uniformly random
// phase:
//
//   - on-demand at period TC detects it iff a collection instant falls
//     inside the residency: P = min(1, d/TC);
//   - ERASMUS with measurement period TM detects it iff a measurement
//     falls inside the residency — P = min(1, d/TM) — regardless of how
//     rarely collections happen.
//
// Since TM ⋘ TC is the economical operating point (measurements are local,
// collections cost communication), ERASMUS detection dominates.

// ComparisonPoint is one dwell-time sample of the detection comparison.
type ComparisonPoint struct {
	Dwell sim.Ticks
	// OnDemand is the simulated detection probability for on-demand RA
	// polling every TC.
	OnDemand float64
	// Erasmus is the simulated detection probability for ERASMUS with
	// measurement period TM (collections arbitrary, TC ≥ TM).
	Erasmus float64
	// OnDemandAnalytic and ErasmusAnalytic are min(1, d/TC), min(1, d/TM).
	OnDemandAnalytic, ErasmusAnalytic float64
}

// CompareDetection Monte-Carlo-samples transient infections with uniform
// random phase and reports detection probabilities of both designs for
// each dwell value.
func CompareDetection(tm, tc sim.Ticks, dwells []sim.Ticks, trials int, seed int64) ([]ComparisonPoint, error) {
	if tm <= 0 || tc < tm {
		return nil, errors.New("qoa: need 0 < TM ≤ TC")
	}
	if trials <= 0 {
		return nil, errors.New("qoa: trials must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]ComparisonPoint, 0, len(dwells))
	for _, d := range dwells {
		if d < 0 {
			return nil, errors.New("qoa: negative dwell")
		}
		var odHits, erHits int
		for i := 0; i < trials; i++ {
			// Infection arrives at a uniform offset within a TC period;
			// on-demand checks at multiples of TC, ERASMUS measures at
			// multiples of TM (phases coincide at 0 WLOG).
			enter := sim.Ticks(rng.Int63n(int64(tc)))
			leave := enter + d
			// On-demand: a collection at TC lands inside [enter, leave)?
			if leave > tc {
				odHits++
			}
			// ERASMUS: any multiple of TM inside [enter, leave)?
			next := ((enter + tm - 1) / tm) * tm
			if next == enter {
				next = enter // measurement at the entry instant counts
			}
			if next < leave {
				erHits++
			}
		}
		p := ComparisonPoint{
			Dwell:            d,
			OnDemand:         float64(odHits) / float64(trials),
			Erasmus:          float64(erHits) / float64(trials),
			OnDemandAnalytic: clamp01(float64(d) / float64(tc)),
			ErasmusAnalytic:  clamp01(float64(d) / float64(tm)),
		}
		out = append(out, p)
	}
	return out, nil
}

func clamp01(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < 0 {
		return 0
	}
	return x
}
