// Package costmodel provides the calibrated performance and code-size models
// that stand in for the paper's hardware measurements.
//
// The authors measured ERASMUS on two real platforms:
//
//   - SMART+ on an OpenMSP430 core @ 8 MHz (FPGA), Figure 6 and Table 1;
//   - HYDRA on an i.MX6 Sabre Lite @ 1 GHz running seL4, Figure 8 and
//     Tables 1–2.
//
// Neither platform is available here, so run-times are produced by a
// cycle-cost model (cycles = fixed + bytes × cyclesPerByte) with constants
// fitted to the paper's reported numbers, and executable sizes by a
// per-component model fitted to Table 1. The *shape* of every result
// (linearity in memory size, ERASMUS ≈ on-demand measurement cost,
// collection ⋘ measurement, ERASMUS ROM ≤ on-demand ROM on SMART+,
// ERASMUS ≈ +1% on HYDRA) is structural, not fitted. See DESIGN.md §5.
package costmodel

import (
	"fmt"

	"erasmus/internal/crypto/mac"
	"erasmus/internal/sim"
)

// Arch identifies a target platform.
type Arch int

const (
	// MSP430 is the low-end SMART+ platform: OpenMSP430 @ 8 MHz.
	MSP430 Arch = iota
	// IMX6 is the medium-end HYDRA platform: i.MX6 Sabre Lite @ 1 GHz.
	IMX6
)

// Archs lists the supported platforms.
func Archs() []Arch { return []Arch{MSP430, IMX6} }

// String returns the platform's display name.
func (a Arch) String() string {
	switch a {
	case MSP430:
		return "MSP430 @ 8MHz (SMART+)"
	case IMX6:
		return "i.MX6 Sabre Lite @ 1GHz (HYDRA)"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// ClockHz returns the platform clock frequency.
func (a Arch) ClockHz() float64 {
	switch a {
	case MSP430:
		return 8e6
	case IMX6:
		return 1e9
	default:
		panic(fmt.Sprintf("costmodel: unknown arch %d", int(a)))
	}
}

// timing holds per-(arch, MAC) cycle costs.
type timing struct {
	cyclesPerByte float64 // memory digest + MAC streaming cost
	fixedCycles   float64 // per-measurement overhead (finalize, MAC of <t,h>)
}

// timings is calibrated so that:
//
//	MSP430 / HMAC-SHA256 @ 10 KB  ≈ 7.0 s   (Fig. 6 top curve; §5 quotes
//	                                          "7 seconds on an 8-MHz device
//	                                          with 10KB RAM")
//	MSP430 / BLAKE2s     @ 10 KB  ≈ 4.5 s   (Fig. 6 lower curve)
//	IMX6   / BLAKE2s     @ 10 MB  = 285.6 ms (Table 2 "Compute Measurement")
//	IMX6   / HMAC-SHA256 @ 10 MB  ≈ 0.5 s   (Fig. 8 top curve)
var timings = map[Arch]map[mac.Algorithm]timing{
	MSP430: {
		mac.HMACSHA1:     {cyclesPerByte: 4687.5, fixedCycles: 12000},
		mac.HMACSHA256:   {cyclesPerByte: 5468.75, fixedCycles: 14000},
		mac.KeyedBLAKE2s: {cyclesPerByte: 3515.6, fixedCycles: 9000},
	},
	IMX6: {
		mac.HMACSHA1:     {cyclesPerByte: 38.1, fixedCycles: 2600},
		mac.HMACSHA256:   {cyclesPerByte: 47.68, fixedCycles: 3200},
		mac.KeyedBLAKE2s: {cyclesPerByte: 27.237, fixedCycles: 2000},
	},
}

// CyclesPerByte returns the streaming MAC cost for one byte of prover memory.
func CyclesPerByte(a Arch, alg mac.Algorithm) float64 {
	return lookup(a, alg).cyclesPerByte
}

// MeasurementCycles returns the modeled cycle count of one self-measurement
// over memBytes bytes of prover memory: digest the memory, then MAC <t, h>.
func MeasurementCycles(a Arch, alg mac.Algorithm, memBytes int) float64 {
	t := lookup(a, alg)
	return t.fixedCycles + float64(memBytes)*t.cyclesPerByte
}

// MeasurementTime converts MeasurementCycles to virtual time.
func MeasurementTime(a Arch, alg mac.Algorithm, memBytes int) sim.Ticks {
	return cyclesToTicks(a, MeasurementCycles(a, alg, memBytes))
}

// Request-handling and network costs, calibrated to Table 2 (i.MX6, ms):
//
//	Verify Request        0.005   (ERASMUS+OD only)
//	Construct UDP Packet  0.003
//	Send UDP Packet       0.012
//
// MSP430 costs are scaled by the clock ratio and a small factor for the
// 16-bit datapath; they do not appear in any paper table but keep the
// low-end simulation self-consistent.
const (
	imx6AuthCycles         = 5000  // 0.005 ms @ 1 GHz
	imx6ConstructUDPCycles = 3000  // 0.003 ms @ 1 GHz
	imx6SendUDPCycles      = 12000 // 0.012 ms @ 1 GHz

	msp430AuthCycles         = 24000 // MAC over a 16-byte request + clock check
	msp430ConstructPktCycles = 1200
	msp430SendPktCycles      = 4000
)

// AuthCycles is the prover cost of authenticating a verifier request
// (freshness check + MAC verification), required by on-demand attestation
// and ERASMUS+OD but *not* by plain ERASMUS collection.
func AuthCycles(a Arch) float64 {
	switch a {
	case MSP430:
		return msp430AuthCycles
	case IMX6:
		return imx6AuthCycles
	default:
		panic(fmt.Sprintf("costmodel: unknown arch %d", int(a)))
	}
}

// AuthTime converts AuthCycles to virtual time.
func AuthTime(a Arch) sim.Ticks { return cyclesToTicks(a, AuthCycles(a)) }

// ConstructPacketTime is the prover cost of building one response packet.
func ConstructPacketTime(a Arch) sim.Ticks {
	switch a {
	case MSP430:
		return cyclesToTicks(a, msp430ConstructPktCycles)
	case IMX6:
		return cyclesToTicks(a, imx6ConstructUDPCycles)
	default:
		panic(fmt.Sprintf("costmodel: unknown arch %d", int(a)))
	}
}

// SendPacketTime is the prover cost of handing one packet to the NIC.
func SendPacketTime(a Arch) sim.Ticks {
	switch a {
	case MSP430:
		return cyclesToTicks(a, msp430SendPktCycles)
	case IMX6:
		return cyclesToTicks(a, imx6SendUDPCycles)
	default:
		panic(fmt.Sprintf("costmodel: unknown arch %d", int(a)))
	}
}

// BufferReadTime is the prover cost of reading k stored measurements from
// the rolling buffer (no cryptography; a handful of cycles per record).
func BufferReadTime(a Arch, k int) sim.Ticks {
	const cyclesPerRecord = 120
	return cyclesToTicks(a, float64(k*cyclesPerRecord))
}

func lookup(a Arch, alg mac.Algorithm) timing {
	byAlg, ok := timings[a]
	if !ok {
		panic(fmt.Sprintf("costmodel: unknown arch %d", int(a)))
	}
	t, ok := byAlg[alg]
	if !ok {
		panic(fmt.Sprintf("costmodel: no timing for %v on %v", alg, a))
	}
	return t
}

func cyclesToTicks(a Arch, cycles float64) sim.Ticks {
	return sim.Ticks(cycles / a.ClockHz() * float64(sim.Second))
}

// ---------------------------------------------------------------------------
// Executable-size model (Table 1)
// ---------------------------------------------------------------------------

// Design selects between the two RA designs whose executables Table 1 sizes.
type Design int

const (
	// OnDemand is classic request-driven attestation (SMART+/HYDRA).
	OnDemand Design = iota
	// Erasmus is self-measurement attestation.
	Erasmus
)

func (d Design) String() string {
	switch d {
	case OnDemand:
		return "On-Demand"
	case Erasmus:
		return "ERASMUS"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// CodeSizeKB is an executable size in kilobytes (as printed in Table 1).
type CodeSizeKB float64

// SizeBreakdown itemizes an attestation executable.
//
// On SMART+ (sizes from msp430-gcc ROM images):
//
//	base       control flow, memory walk, I/O glue
//	hashCore   the hash/MAC primitive implementation
//	hmacWrap   HMAC construction around a plain hash (zero for keyed BLAKE2s)
//	authReq    verifier-request authentication (on-demand only)
//	scheduler  timer-interrupt measurement scheduler (ERASMUS only)
//
// On HYDRA the base includes the seL4 userland libraries (seL4utils, vka,
// vspace, bench) and the util_libs Ethernet/timer network stack, which is
// why HYDRA executables are two orders of magnitude larger; ERASMUS adds a
// dedicated timer driver (~1.88 KB, the "about 1%" of §4.2) and keeps the
// request parser.
type SizeBreakdown struct {
	Base      CodeSizeKB
	HashCore  CodeSizeKB
	HMACWrap  CodeSizeKB
	AuthReq   CodeSizeKB
	Scheduler CodeSizeKB
}

// Total sums the components.
func (s SizeBreakdown) Total() CodeSizeKB {
	return s.Base + s.HashCore + s.HMACWrap + s.AuthReq + s.Scheduler
}

// SMART+ component sizes (KB), fitted to the six SMART+ cells of Table 1.
const (
	smartBase      CodeSizeKB = 1.0
	smartHMACWrap  CodeSizeKB = 0.5
	smartAuthReq   CodeSizeKB = 0.4
	smartScheduler CodeSizeKB = 0.2

	smartSHA1Core    CodeSizeKB = 3.0
	smartSHA256Core  CodeSizeKB = 3.2
	smartBLAKE2sCore CodeSizeKB = 27.5 // unrolled reference implementation
)

// HYDRA component sizes (KB), fitted to the four HYDRA cells of Table 1.
// HMAC-SHA1 is not reported for HYDRA in the paper ("-"); we model it anyway
// for completeness using the SHA-core delta observed on SMART+.
const (
	hydraBase        CodeSizeKB = 228.26 // seL4 libs + net stack + control
	hydraHMACWrap    CodeSizeKB = 0.5
	hydraAuthReq     CodeSizeKB = 0.0 // request parsing stays in both designs
	hydraTimerDriver CodeSizeKB = 1.88

	hydraSHA1Core    CodeSizeKB = 3.0
	hydraSHA256Core  CodeSizeKB = 3.2
	hydraBLAKE2sCore CodeSizeKB = 11.03
)

// ExecutableBreakdown returns the component model for one Table 1 cell.
func ExecutableBreakdown(a Arch, alg mac.Algorithm, d Design) SizeBreakdown {
	switch a {
	case MSP430:
		s := SizeBreakdown{Base: smartBase}
		switch alg {
		case mac.HMACSHA1:
			s.HashCore, s.HMACWrap = smartSHA1Core, smartHMACWrap
		case mac.HMACSHA256:
			s.HashCore, s.HMACWrap = smartSHA256Core, smartHMACWrap
		case mac.KeyedBLAKE2s:
			s.HashCore, s.HMACWrap = smartBLAKE2sCore, 0
		default:
			panic(fmt.Sprintf("costmodel: unknown algorithm %v", alg))
		}
		// SMART+ on-demand must authenticate requests (anti-DoS); ERASMUS
		// drops that and adds the small timer-interrupt scheduler, which is
		// why every ERASMUS cell is 0.2 KB smaller (Table 1).
		if d == OnDemand {
			s.AuthReq = smartAuthReq
		} else {
			s.Scheduler = smartScheduler
		}
		return s
	case IMX6:
		s := SizeBreakdown{Base: hydraBase, AuthReq: hydraAuthReq}
		switch alg {
		case mac.HMACSHA1:
			s.HashCore, s.HMACWrap = hydraSHA1Core, hydraHMACWrap
		case mac.HMACSHA256:
			s.HashCore, s.HMACWrap = hydraSHA256Core, hydraHMACWrap
		case mac.KeyedBLAKE2s:
			s.HashCore, s.HMACWrap = hydraBLAKE2sCore, 0
		default:
			panic(fmt.Sprintf("costmodel: unknown algorithm %v", alg))
		}
		// HYDRA's ERASMUS variant needs an extra timer (EPIT) driver to
		// schedule self-measurements: the "about 1%" growth of §4.2.
		if d == Erasmus {
			s.Scheduler = hydraTimerDriver
		}
		return s
	default:
		panic(fmt.Sprintf("costmodel: unknown arch %d", int(a)))
	}
}

// ExecutableSizeKB returns the modeled size of one Table 1 cell.
func ExecutableSizeKB(a Arch, alg mac.Algorithm, d Design) CodeSizeKB {
	return ExecutableBreakdown(a, alg, d).Total()
}

// Reported returns the value printed in Table 1 of the paper for
// comparison, and whether the paper reports that cell at all.
func Reported(a Arch, alg mac.Algorithm, d Design) (CodeSizeKB, bool) {
	type key struct {
		a   Arch
		alg mac.Algorithm
		d   Design
	}
	table := map[key]CodeSizeKB{
		{MSP430, mac.HMACSHA1, OnDemand}:     4.9,
		{MSP430, mac.HMACSHA1, Erasmus}:      4.7,
		{MSP430, mac.HMACSHA256, OnDemand}:   5.1,
		{MSP430, mac.HMACSHA256, Erasmus}:    4.9,
		{MSP430, mac.KeyedBLAKE2s, OnDemand}: 28.9,
		{MSP430, mac.KeyedBLAKE2s, Erasmus}:  28.7,
		{IMX6, mac.HMACSHA256, OnDemand}:     231.96,
		{IMX6, mac.HMACSHA256, Erasmus}:      233.84,
		{IMX6, mac.KeyedBLAKE2s, OnDemand}:   239.29,
		{IMX6, mac.KeyedBLAKE2s, Erasmus}:    241.17,
	}
	v, ok := table[key{a, alg, d}]
	return v, ok
}
