package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"erasmus/internal/crypto/mac"
	"erasmus/internal/sim"
)

func TestClockHz(t *testing.T) {
	if MSP430.ClockHz() != 8e6 {
		t.Errorf("MSP430 clock = %v", MSP430.ClockHz())
	}
	if IMX6.ClockHz() != 1e9 {
		t.Errorf("IMX6 clock = %v", IMX6.ClockHz())
	}
}

func TestArchString(t *testing.T) {
	if MSP430.String() == "" || IMX6.String() == "" || Arch(9).String() == "" {
		t.Error("empty Arch string")
	}
}

// Calibration anchor: Table 2 reports "Compute Measurement" = 285.6 ms for
// 10 MB with keyed BLAKE2s on the i.MX6.
func TestIMX6BLAKE2sCalibration(t *testing.T) {
	got := MeasurementTime(IMX6, mac.KeyedBLAKE2s, 10<<20).Milliseconds()
	if math.Abs(got-285.6) > 1.0 {
		t.Fatalf("10MB BLAKE2s on i.MX6 = %.2f ms, want ≈285.6", got)
	}
}

// Calibration anchor: §5 quotes ~7 s for a 10 KB measurement on the 8 MHz
// device (Fig. 6's slowest curve, HMAC-SHA256).
func TestMSP430SHA256Calibration(t *testing.T) {
	got := MeasurementTime(MSP430, mac.HMACSHA256, 10*1024).Seconds()
	if math.Abs(got-7.0) > 0.1 {
		t.Fatalf("10KB HMAC-SHA256 on MSP430 = %.2f s, want ≈7.0", got)
	}
}

// Fig. 6 / Fig. 8 shape: run-time is linear in memory size.
func TestLinearityInMemorySize(t *testing.T) {
	for _, a := range Archs() {
		for _, alg := range mac.Algorithms() {
			c1 := MeasurementCycles(a, alg, 1000)
			c2 := MeasurementCycles(a, alg, 2000)
			c3 := MeasurementCycles(a, alg, 3000)
			// Equal spacing => equal increments (affine in size).
			if math.Abs((c3-c2)-(c2-c1)) > 1e-6 {
				t.Errorf("%v/%v: non-linear cycle model", a, alg)
			}
			if c2 <= c1 {
				t.Errorf("%v/%v: cycles not increasing with memory", a, alg)
			}
		}
	}
}

// Fig. 6/8 ordering: BLAKE2s is the fastest MAC, HMAC-SHA256 the slowest,
// on both platforms (matches both figures).
func TestAlgorithmOrdering(t *testing.T) {
	for _, a := range Archs() {
		b := CyclesPerByte(a, mac.KeyedBLAKE2s)
		s1 := CyclesPerByte(a, mac.HMACSHA1)
		s256 := CyclesPerByte(a, mac.HMACSHA256)
		if !(b < s1 && s1 < s256) {
			t.Errorf("%v: cycle ordering blake2s(%v) < sha1(%v) < sha256(%v) violated", a, b, s1, s256)
		}
	}
}

// Table 2 shape: ERASMUS collection (no crypto) is ≥3000× cheaper than a
// measurement over 10 MB.
func TestCollectionMeasurementGap(t *testing.T) {
	measure := MeasurementTime(IMX6, mac.KeyedBLAKE2s, 10<<20)
	collect := BufferReadTime(IMX6, 8) + ConstructPacketTime(IMX6) + SendPacketTime(IMX6)
	if ratio := float64(measure) / float64(collect); ratio < 3000 {
		t.Fatalf("measurement/collection ratio = %.0f, want ≥ 3000", ratio)
	}
}

func TestTable2Components(t *testing.T) {
	if ms := AuthTime(IMX6).Milliseconds(); math.Abs(ms-0.005) > 0.001 {
		t.Errorf("verify request = %.4f ms, want 0.005", ms)
	}
	if ms := ConstructPacketTime(IMX6).Milliseconds(); math.Abs(ms-0.003) > 0.001 {
		t.Errorf("construct UDP = %.4f ms, want 0.003", ms)
	}
	if ms := SendPacketTime(IMX6).Milliseconds(); math.Abs(ms-0.012) > 0.002 {
		t.Errorf("send UDP = %.4f ms, want 0.012", ms)
	}
}

// Table 1: the component model must reproduce every reported cell to within
// rounding (±0.01 KB).
func TestTable1Reproduction(t *testing.T) {
	for _, a := range Archs() {
		for _, alg := range mac.Algorithms() {
			for _, d := range []Design{OnDemand, Erasmus} {
				want, ok := Reported(a, alg, d)
				if !ok {
					continue // the paper's "-" cells
				}
				got := ExecutableSizeKB(a, alg, d)
				if math.Abs(float64(got-want)) > 0.011 {
					t.Errorf("Table1 %v/%v/%v: model %.2f KB, paper %.2f KB", a, alg, d, got, want)
				}
			}
		}
	}
}

// Table 1 structure: on SMART+, ERASMUS is strictly smaller than on-demand
// (request auth removed); on HYDRA it is slightly larger (timer driver),
// by about 1%.
func TestTable1Structure(t *testing.T) {
	for _, alg := range mac.Algorithms() {
		od := ExecutableSizeKB(MSP430, alg, OnDemand)
		er := ExecutableSizeKB(MSP430, alg, Erasmus)
		if er >= od {
			t.Errorf("SMART+/%v: ERASMUS %.2f ≥ on-demand %.2f", alg, er, od)
		}
	}
	for _, alg := range mac.Algorithms() {
		od := ExecutableSizeKB(IMX6, alg, OnDemand)
		er := ExecutableSizeKB(IMX6, alg, Erasmus)
		growth := float64(er-od) / float64(od)
		if growth <= 0 || growth > 0.02 {
			t.Errorf("HYDRA/%v: ERASMUS growth = %.3f%%, want ~1%%", alg, growth*100)
		}
	}
}

func TestReportedMissingCells(t *testing.T) {
	if _, ok := Reported(IMX6, mac.HMACSHA1, OnDemand); ok {
		t.Error("paper does not report HYDRA HMAC-SHA1, but Reported returned a value")
	}
}

func TestBreakdownTotals(t *testing.T) {
	s := SizeBreakdown{Base: 1, HashCore: 2, HMACWrap: 3, AuthReq: 4, Scheduler: 5}
	if s.Total() != 15 {
		t.Fatalf("Total() = %v, want 15", s.Total())
	}
}

func TestDesignString(t *testing.T) {
	if OnDemand.String() != "On-Demand" || Erasmus.String() != "ERASMUS" {
		t.Error("Design string mismatch")
	}
	if Design(7).String() == "" {
		t.Error("unknown Design string empty")
	}
}

func TestUnknownArchPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Arch(9).ClockHz() },
		func() { AuthCycles(Arch(9)) },
		func() { ConstructPacketTime(Arch(9)) },
		func() { SendPacketTime(Arch(9)) },
		func() { ExecutableBreakdown(Arch(9), mac.HMACSHA256, Erasmus) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unknown arch did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: measurement time is monotone in memory size and non-negative.
func TestPropertyMonotoneTime(t *testing.T) {
	f := func(m1, m2 uint16) bool {
		a, b := int(m1), int(m2)
		if a > b {
			a, b = b, a
		}
		for _, arch := range Archs() {
			for _, alg := range mac.Algorithms() {
				ta := MeasurementTime(arch, alg, a)
				tb := MeasurementTime(arch, alg, b)
				if ta < 0 || tb < ta {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The same measurement is ~125× faster on the 1 GHz part than the 8 MHz
// part at equal byte counts (clock ratio dominates, within 100×–300×
// because cycles/byte also differ).
func TestCrossArchSanity(t *testing.T) {
	lo := MeasurementTime(MSP430, mac.KeyedBLAKE2s, 4096)
	hi := MeasurementTime(IMX6, mac.KeyedBLAKE2s, 4096)
	ratio := float64(lo) / float64(hi)
	if ratio < 1000 {
		t.Fatalf("MSP430/IMX6 time ratio = %.0f, want ≥ 1000 (slow MCU, slow cpb)", ratio)
	}
	_ = sim.Ticks(0)
}
