package analysis

import (
	"go/ast"
	"go/types"
)

// stderrPrintRule forbids ad-hoc stderr output from internal library
// packages: fmt.Fprint/Fprintf/Fprintln to os.Stderr and the println/
// print builtins.
//
// PR 6 replaced scattered stderr notes with the structured obs.EventLog
// (bounded, machine-readable, visible over /eventz); this rule keeps
// them from creeping back. Binaries under cmd/ and examples/ own their
// stderr and are out of scope.
var stderrPrintRule = &Rule{
	Name:      "stderrprint",
	Doc:       "no fmt.Fprint*(os.Stderr, ...) or println in internal packages; use obs.EventLog",
	AppliesTo: isInternalPath,
	Run:       runStderrPrint,
}

var fprintFuncs = map[string]bool{"Fprint": true, "Fprintf": true, "Fprintln": true}

func runStderrPrint(pass *Pass) {
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				if b, ok := pass.Pkg.TypesInfo.Uses[fun].(*types.Builtin); ok &&
					(b.Name() == "println" || b.Name() == "print") {
					pass.Reportf(call.Pos(),
						"builtin %s writes to stderr from a library package; emit a "+
							"structured event through obs.EventLog instead", b.Name())
				}
			case *ast.SelectorExpr:
				if fprintFuncs[fun.Sel.Name] && pass.importedPath(fun.X) == "fmt" &&
					len(call.Args) > 0 && isOSStderr(pass, call.Args[0]) {
					pass.Reportf(call.Pos(),
						"fmt.%s to os.Stderr from a library package; emit a structured "+
							"event through obs.EventLog instead", fun.Sel.Name)
				}
			}
			return true
		})
	}
}

func isOSStderr(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Stderr" && pass.importedPath(sel.X) == "os"
}
