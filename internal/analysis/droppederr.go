package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// droppedErrRule forbids discarding the error results of durability
// calls: anything declared in internal/store (Store, WAL, snapshot
// writer) and the core.StateSink journaling interface.
//
// The durable-state discipline (PR 5/6) is that store errors are sticky
// and *surfaced* — SinkErr, /healthz, the sticky-error gauges. That
// chain starts at the call site: an error silently dropped never reaches
// the latch, and TestKillAndResumeSim's zero-re-alert recovery guarantee
// silently degrades to "whatever happened to hit disk". Flagged forms:
// a bare call statement, go/defer calls, and assigning the error
// position to the blank identifier.
var droppedErrRule = &Rule{
	Name:      "droppederr",
	Doc:       "error results of internal/store and core.StateSink calls must not be discarded",
	AppliesTo: func(string) bool { return true },
	Run:       runDroppedErr,
}

func runDroppedErr(pass *Pass) {
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					reportDropped(pass, call, "the result of a bare call statement")
				}
			case *ast.GoStmt:
				reportDropped(pass, s.Call, "a go statement's result")
			case *ast.DeferStmt:
				reportDropped(pass, s.Call, "a deferred call's result")
			case *ast.AssignStmt:
				droppedInAssign(pass, s)
			}
			return true
		})
	}
}

// droppedInAssign flags durability calls whose error position lands on
// the blank identifier.
func droppedInAssign(pass *Pass, s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// x, _ := call() — the error is the last result.
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBlank(s.Lhs[len(s.Lhs)-1]) {
			reportDropped(pass, call, "the blank identifier")
		}
		return
	}
	for i, rhs := range s.Rhs {
		if i >= len(s.Lhs) {
			break
		}
		if call, ok := rhs.(*ast.CallExpr); ok && isBlank(s.Lhs[i]) {
			reportDropped(pass, call, "the blank identifier")
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// reportDropped reports call when it is a durability call returning an
// error that the surrounding form discards.
func reportDropped(pass *Pass, call *ast.CallExpr, sink string) {
	fn := pass.calleeFunc(call)
	if fn == nil || !isDurabilityFunc(fn) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return
	}
	pass.Reportf(call.Pos(),
		"%s discards the error from %s; durability errors must reach the sticky-error "+
			"latch — handle it or explain with //erasmus:allow(droppederr) <reason>",
		sink, fn.FullName())
}

// isDurabilityFunc reports whether fn is declared in internal/store or
// is a method of the core.StateSink journaling interface.
func isDurabilityFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if strings.HasSuffix(pkg.Path(), "/internal/store") {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named, ok := sig.Recv().Type().(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "StateSink" &&
		named.Obj().Pkg() != nil &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "/internal/core")
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}
