package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// cgFixture loads the callgraph fixture package and builds its graph.
func cgFixture(t *testing.T) *CallGraph {
	t.Helper()
	l := fixtureLoader(t)
	dir := filepath.Join(l.ModuleRoot, "internal", "analysis", "testdata", "callgraph")
	pkg, err := l.LoadDir(dir, "cgfixture/internal/callgraph")
	if err != nil {
		t.Fatal(err)
	}
	return BuildCallGraph([]*Package{pkg})
}

// cgNode finds the node whose function has the given name; fullNameHint
// disambiguates methods (matched against Fn.FullName()).
func cgNode(t *testing.T, g *CallGraph, name, fullNameHint string) *CGNode {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Fn.Name() == name && strings.Contains(n.Fn.FullName(), fullNameHint) {
			return n
		}
	}
	t.Fatalf("no call-graph node named %s (hint %q)", name, fullNameHint)
	return nil
}

func TestCallGraphDirectEdge(t *testing.T) {
	g := cgFixture(t)
	outer := cgNode(t, g, "outer", "")
	wt := cgNode(t, g, "writeThrough", "")
	if len(outer.Out) != 1 {
		t.Fatalf("outer has %d out edges, want 1", len(outer.Out))
	}
	cs := outer.Out[0]
	if cs.Callee != wt || cs.Devirtualized || cs.Go {
		t.Errorf("outer's edge = callee %s devirt=%v go=%v, want direct inline edge to writeThrough",
			cs.Callee.Fn.Name(), cs.Devirtualized, cs.Go)
	}
}

func TestCallGraphDevirtualization(t *testing.T) {
	g := cgFixture(t)
	wt := cgNode(t, g, "writeThrough", "")
	diskPut := cgNode(t, g, "Put", "Disk")
	nullPut := cgNode(t, g, "Put", "Null")

	callees := make(map[*CGNode]bool)
	for _, cs := range wt.Out {
		if !cs.Devirtualized {
			t.Errorf("edge to %s not marked Devirtualized", cs.Callee.Fn.FullName())
		}
		callees[cs.Callee] = true
	}
	if !callees[diskPut] || !callees[nullPut] || len(callees) != 2 {
		t.Errorf("interface call devirtualized to %d callees, want exactly {(*Disk).Put, Null.Put}", len(callees))
	}
	// And the inverse edges land in the implementations' In lists.
	found := false
	for _, cs := range diskPut.In {
		if cs.Caller == wt {
			found = true
		}
	}
	if !found {
		t.Error("(*Disk).Put has no In edge from writeThrough")
	}
}

// TestCallGraphWrapperChain pins the property errflow and lockflow
// summaries rely on: a durability method is transitively reachable from
// the top of an in-module wrapper chain.
func TestCallGraphWrapperChain(t *testing.T) {
	g := cgFixture(t)
	outer := cgNode(t, g, "outer", "")
	diskPut := cgNode(t, g, "Put", "Disk")

	seen := map[*CGNode]bool{outer: true}
	stack := []*CGNode{outer}
	reached := false
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, cs := range n.Out {
			if cs.Callee == diskPut {
				reached = true
			}
			if !seen[cs.Callee] {
				seen[cs.Callee] = true
				stack = append(stack, cs.Callee)
			}
		}
	}
	if !reached {
		t.Error("outer -> writeThrough -> (*Disk).Put chain not reachable in the graph")
	}
}

func TestCallGraphGoFlag(t *testing.T) {
	g := cgFixture(t)
	spawner := cgNode(t, g, "spawner", "")
	drain := cgNode(t, g, "drain", "")
	if len(spawner.Out) != 1 {
		t.Fatalf("spawner has %d out edges, want 1", len(spawner.Out))
	}
	cs := spawner.Out[0]
	if cs.Callee != drain || !cs.Go {
		t.Errorf("spawner's edge = callee %s go=%v, want a Go-flagged edge to drain",
			cs.Callee.Fn.Name(), cs.Go)
	}
}
