package analysis

import (
	"go/ast"
)

// wallClockRule forbids reading the wall clock in internal packages
// unless the enclosing declaration is annotated //erasmus:wallpaced.
//
// Everything determinism-sensitive — sim and popsim engines, swarm
// topology, core verification — runs on virtual time (sim.Ticks), and
// the equivalence suites (TestShardCountInvariance,
// TestDeltaEquivalenceSim/UDP, TestKillAndResumeSim) only hold because
// no verdict- or stream-shaping path consults time.Now. Legitimate wall
// reads exist (store fsync timing, udptransport socket deadlines, fleet
// wall-pacing, wall-time measurement in results) and each is annotated,
// so the complete allowlist is visible in the source.
var wallClockRule = &Rule{
	Name:      "wallclock",
	Doc:       "no time.Now/Since/Until in internal packages unless the declaration is //erasmus:wallpaced",
	AppliesTo: isInternalPath,
	Run:       runWallClock,
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallClock(pass *Pass) {
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			if declWallPaced(decl) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !wallClockFuncs[sel.Sel.Name] {
					return true
				}
				if pass.importedPath(sel.X) != "time" {
					return true
				}
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock in a determinism-sensitive package; "+
						"virtual-time paths must use the engine clock — annotate the declaration "+
						"//erasmus:wallpaced <reason> if this path is genuinely wall-paced",
					sel.Sel.Name)
				return true
			})
		}
	}
}
