package clean

// Sum is deterministic, seeded, and quiet — the full rule suite reports
// nothing here.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
