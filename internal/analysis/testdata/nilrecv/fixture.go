package obs

// Gauge is a nil-safe instrument fixture.
type Gauge struct {
	v int64
}

// Add lacks the nil guard — flagged.
func (g *Gauge) Add(n int64) {
	g.v += n
}

// Value begins with the guard — clean.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Reset cannot guard through an unnamed receiver — flagged.
func (*Gauge) Reset() {}

// Snapshot guards with a compound condition — clean.
func (g *Gauge) Snapshot(into *int64) {
	if g == nil || into == nil {
		return
	}
	*into = g.v
}

// bump is unexported — out of scope.
func (g *Gauge) bump() { g.v++ }

// Swap is flagged but suppressed.
//
//erasmus:allow(nilrecv) fixture: caller guarantees non-nil
func (g *Gauge) Swap(n int64) int64 {
	old := g.v
	g.v = n
	return old
}
