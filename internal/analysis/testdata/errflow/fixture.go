// Package errflow exercises the interprocedural error-flow rule: a
// function whose returned error wraps a durability failure (StateSink
// methods, internal/store) is "propagating", and discarding its error
// anywhere up the wrapper chain severs the path to the sticky-error
// latch. The fixture's import path ends in /internal/core so its
// StateSink counts as the durability interface, mirroring the real one.
package errflow

// StateSink mirrors core.StateSink — its methods are durability calls.
type StateSink interface {
	SetWatermark(device string, state []byte) error
}

// journal is one wrapper hop: it forwards the durability error.
func journal(s StateSink, device string, state []byte) error {
	return s.SetWatermark(device, state)
}

// journalBoth is a second hop over the first.
func journalBoth(s StateSink, device string, state []byte) error {
	if err := journal(s, device, state); err != nil {
		return err
	}
	return journal(s, device+"/mirror", state)
}

// Bad discards the wrapper's error with a bare call statement.
func Bad(s StateSink, state []byte) {
	journal(s, "dev0", state)
}

// BadDeep discards two hops up the chain, via the blank identifier.
func BadDeep(s StateSink, state []byte) {
	_ = journalBoth(s, "dev0", state)
}

// Allowed is the suppression path: the same discard, explained.
func Allowed(s StateSink, state []byte) {
	journal(s, "dev0", state) //erasmus:allow(errflow) fixture: best-effort journal on the shutdown path; the store replays on restart
}

// Clean forwards the error to its caller.
func Clean(s StateSink, state []byte) error {
	return journalBoth(s, "dev0", state)
}

// CleanHandled consumes the error locally.
func CleanHandled(s StateSink, state []byte) {
	if err := journal(s, "dev0", state); err != nil {
		lastErr = err
	}
}

var lastErr error

// CleanDirect is droppederr's territory: the discarded call is itself
// the durability call, so errflow stays quiet about it (each finding has
// exactly one rule to suppress).
func CleanDirect(s StateSink, state []byte) {
	s.SetWatermark("dev0", state)
}
