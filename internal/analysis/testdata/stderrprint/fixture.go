package stderrprint

import (
	"fmt"
	"os"
)

// Warn writes ad-hoc stderr output from a library package — three
// flagged forms and one clean stdout write.
func Warn(err error) {
	fmt.Fprintf(os.Stderr, "warn: %v\n", err)
	fmt.Fprintln(os.Stderr, "warn")
	println("debug")
	fmt.Fprintf(os.Stdout, "ok\n")
}

// Quiet is flagged but suppressed with a reason.
func Quiet() {
	//erasmus:allow(stderrprint) fixture: crash-path note precedes abort
	fmt.Fprint(os.Stderr, "giving up\n")
}
