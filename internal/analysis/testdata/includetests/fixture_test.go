package includetests

import (
	"bytes"
	"time"
)

// verifySloppy is a ctcompare violation inside an in-package test file:
// only visible when the loader includes tests.
func verifySloppy(t Token, supplied []byte) bool {
	return bytes.Equal(t.MAC, supplied)
}

// stampInTest is a wallclock-shaped call in a test file: wallclock has
// no Tests opt-in, so it must NOT be reported even under -tests.
func stampInTest() int64 {
	return time.Now().UnixNano()
}
