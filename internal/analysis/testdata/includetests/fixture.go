// Package includetests exercises the loader's IncludeTests mode and the
// per-rule Tests opt-in gate. The non-test file carries a wallclock
// violation; the test files carry ctcompare violations. Under -tests,
// ctcompare (Tests: true) must see the test files while wallclock
// (no opt-in) must keep ignoring them.
package includetests

import "time"

// Token's MAC field is authenticator material for ctcompare.
type Token struct {
	MAC []byte
}

// Stamp uses the wall clock in an internal package: a wallclock finding
// in a non-test file.
func Stamp() int64 {
	return time.Now().UnixNano()
}
