package includetests_test

import "bytes"

// xToken lives in the external test package (includetests_test), which
// the loader type-checks as its own "<path> [tests]" package.
type xToken struct {
	MAC []byte
}

// xVerify is a ctcompare violation in the external test package.
func xVerify(t xToken, supplied []byte) bool {
	return bytes.Equal(t.MAC, supplied)
}
