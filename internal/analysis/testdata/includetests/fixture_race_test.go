//go:build race

package includetests

// verifySloppy redeclares the in-package test helper: if the loader
// ignored build constraints this file would join the compile and the
// package would fail to type-check with a redeclaration error — the
// regression that motivated buildIncluded.
func verifySloppy(t Token, supplied []byte) bool {
	return false
}
