package wallclock

import "time"

// Elapsed reads the wall clock inside an internal package — both the
// Since and the Until calls are flagged.
func Elapsed(start time.Time) time.Duration {
	if time.Since(start) > time.Second {
		return time.Until(start.Add(time.Minute))
	}
	return 0
}

// SyncTimed is declared wall-paced: every clock read in it is exempt.
//
//erasmus:wallpaced fixture: fsync timing measures real disk writes
func SyncTimed() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// Stamp suppresses a single read with a line-above allow.
func Stamp() int64 {
	//erasmus:allow(wallclock) fixture: wall stamp is display-only
	return time.Now().UnixNano()
}
