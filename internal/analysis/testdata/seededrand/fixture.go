package seededrand

import "math/rand"

// Roll draws from the process-global source — flagged.
func Roll() int {
	return rand.Intn(6)
}

// Seeded builds an explicit stream: the constructors and the methods on
// the resulting *rand.Rand are clean.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Shuffle is flagged but carries a trailing suppression.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { //erasmus:allow(seededrand) fixture: trailing suppression form
		xs[i], xs[j] = xs[j], xs[i]
	})
}
