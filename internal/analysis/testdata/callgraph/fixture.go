// Package callgraph exercises static call-edge resolution: direct
// calls, interface-method devirtualization over the named-type universe,
// and go-spawned edges.
package callgraph

// Sink is the interface whose Put call devirtualizes to both
// implementations below.
type Sink interface {
	Put(b []byte) error
}

type Disk struct{ n int }

func (d *Disk) Put(b []byte) error { d.n++; return nil }

type Null struct{}

func (Null) Put(b []byte) error { return nil }

// writeThrough calls through the interface.
func writeThrough(s Sink, b []byte) error { return s.Put(b) }

// outer is the top of the wrapper chain.
func outer(s Sink, b []byte) error { return writeThrough(s, b) }

// spawner starts drain on another goroutine: a Go-flagged edge.
func spawner(s Sink, b []byte) {
	go drain(s, b)
}

func drain(s Sink, b []byte) { _ = writeThrough(s, b) }
