// Package lockflow exercises the flow-sensitive lock-safety rule: locks
// leaking out of a function on one path, double acquisition, and
// blocking operations inside a critical section — directly, through a
// known-blocking stdlib call, and transitively through a module function
// whose call-graph summary says it blocks.
package lockflow

import (
	"sync"
	"time"
)

type shard struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
	ch chan int
}

// Leak holds the mutex on the early-return path.
func (s *shard) Leak(cond bool) {
	s.mu.Lock()
	if cond {
		return
	}
	s.mu.Unlock()
}

// PanicLeak holds the mutex on the panic path: no deferred release.
func (s *shard) PanicLeak(cond bool) {
	s.mu.Lock()
	if cond {
		panic("invariant broken")
	}
	s.mu.Unlock()
}

// Double re-acquires a lock the current path already holds.
func (s *shard) Double() {
	s.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Unlock()
}

// SendLocked performs a channel send inside the critical section.
func (s *shard) SendLocked(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v
}

// SleepLocked calls a known-blocking stdlib function under the lock.
func (s *shard) SleepLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// recvInner blocks on a channel receive; the call-graph summary marks it.
func (s *shard) recvInner() int { return <-s.ch }

// WrappedLocked blocks transitively, through recvInner's summary.
func (s *shard) WrappedLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recvInner()
}

// SendAllowed is the suppression path: the same violation, explained.
func (s *shard) SendAllowed(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v //erasmus:allow(lockflow) fixture: the reader side never blocks in this harness
}

// CleanDefer releases on every exit, panic included, via defer.
func (s *shard) CleanDefer(cond bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cond {
		panic("still released")
	}
	return s.n
}

// CleanBranch releases manually on both paths.
func (s *shard) CleanBranch(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return
	}
	s.n++
	s.mu.Unlock()
}

// CleanRead pairs the read lock with a deferred read unlock.
func (s *shard) CleanRead() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

// CleanSpawn is fine: the go-spawned receive blocks another goroutine,
// not the lock holder.
func (s *shard) CleanSpawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { <-s.ch }()
}

// tryPush never blocks: when the buffer is full the default arm fires.
func (s *shard) tryPush(v int) bool {
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

// CleanTryComms performs only non-blocking comms under the lock: every
// send and receive is the comm statement of a select with a default, so
// neither the inline ops nor tryPush's summary can block the holder.
func (s *shard) CleanTryComms(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tryPush(v) {
		return
	}
	select {
	case old := <-s.ch:
		s.n = old
	default:
	}
	select {
	case s.ch <- v:
	default:
	}
}
