// Package ctcompare exercises the constant-time-comparison taint rule:
// authenticator bytes (MAC fields, watermark material, keyed mac-package
// results) reaching bytes.Equal or ==, directly, through assignments,
// and interprocedurally through a helper's parameter.
package ctcompare

import (
	"bytes"

	"erasmus/internal/crypto/mac"
)

// Report mirrors the shape of core's attested records: MAC carries
// authenticator bytes, Hash is a content address.
type Report struct {
	Device string
	Hash   []byte
	MAC    []byte
}

// Watermark mirrors core.Watermark: both fields are trusted-anchor
// material a prover could try to forge.
type Watermark struct {
	Hash []byte
	MAC  []byte
}

// BadDirect compares an authenticator field with bytes.Equal.
func BadDirect(r Report, supplied []byte) bool {
	return bytes.Equal(r.MAC, supplied)
}

// BadFlow reaches the sink through an intermediate assignment.
func BadFlow(r Report, supplied []byte) bool {
	want := r.MAC
	return bytes.Equal(want, supplied)
}

// BadSum compares a keyed mac-package result.
func BadSum(key, msg, supplied []byte) bool {
	tag := mac.Sum(mac.HMACSHA256, key, msg)
	return bytes.Equal(tag, supplied)
}

// compareTags receives tainted bytes through its parameter: the
// interprocedural fixpoint carries the taint from BadInterproc's call
// site into tag.
func compareTags(tag, supplied []byte) bool {
	return bytes.Equal(tag, supplied)
}

// BadInterproc passes watermark material to a helper that compares it.
func BadInterproc(w Watermark, supplied []byte) bool {
	return compareTags(w.Hash, supplied)
}

// BadString reaches == through a string conversion.
func BadString(r Report, supplied string) bool {
	return string(r.MAC) == supplied
}

// Allowed is the suppression path: the same sink, explained.
func Allowed(r Report, golden []byte) bool {
	//erasmus:allow(ctcompare) fixture: both operands are operator-owned; no prover-supplied bytes
	return bytes.Equal(r.MAC, golden)
}

// CleanConstantTime uses the trusted comparator.
func CleanConstantTime(r Report, supplied []byte) bool {
	return mac.ConstantTimeEqual(r.MAC, supplied)
}

// CleanHash compares a content address: Report.Hash is not a source.
func CleanHash(r Report, golden []byte) bool {
	return bytes.Equal(r.Hash, golden)
}

// CleanKill compares a variable whose taint was overwritten.
func CleanKill(r Report, supplied []byte) bool {
	b := r.MAC
	b = []byte("fixture")
	return bytes.Equal(b, supplied)
}

// CleanNil is a nil check, not a comparison of contents.
func CleanNil(r Report) bool {
	return r.MAC == nil
}
