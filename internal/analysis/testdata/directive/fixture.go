package directive

import "time"

// Typo names an unknown rule: the directive is flagged and the wallclock
// finding stays live.
func Typo() int64 {
	//erasmus:allow(wallcluck) fixture: misspelled rule
	return time.Now().UnixNano()
}

// NoReason suppresses without saying why: the empty reason is flagged
// and the suppression does not apply.
func NoReason() int64 {
	//erasmus:allow(wallclock)
	return time.Now().UnixNano()
}

// Malformed misses the closing parenthesis.
func Malformed() int64 {
	//erasmus:allow(wallclock fixture: missing close paren
	return time.Now().UnixNano()
}

// Unknown uses a directive kind that does not exist.
func Unknown() int64 {
	//erasmus:nowarn fixture: unknown kind
	return time.Now().UnixNano()
}
