package core

// Watermark stands in for the journaled verdict state.
type Watermark struct {
	T uint64
}

// StateSink mirrors the journaling interface; the rule matches methods
// on a type of this name under internal/core.
type StateSink interface {
	SetWatermark(device string, wm Watermark) error
}

// Journal drops the sink's error — flagged.
func Journal(sink StateSink) {
	sink.SetWatermark("dev-000", Watermark{T: 1})
}

// JournalChecked propagates it — clean.
func JournalChecked(sink StateSink) error {
	return sink.SetWatermark("dev-000", Watermark{T: 1})
}
