package store

// Store mimics the durable state store's error-returning surface; the
// fixture's import path places it under internal/store, so its methods
// are durability calls.
type Store struct {
	n int
}

// Sync returns a durability error.
func (s *Store) Sync() error { return nil }

// Close returns a durability error.
func (s *Store) Close() error { return nil }

// Get returns a value and an error.
func (s *Store) Get() (int, error) { return s.n, nil }

// Count has no error result and is never flagged.
func (s *Store) Count() int { return s.n }

// Flush discards durability errors in every flagged form: bare call, go
// statement, deferred call, blank assignment, and blank error position.
func Flush(s *Store) {
	s.Sync()
	go s.Sync()
	defer s.Close()
	_ = s.Sync()
	v, _ := s.Get()
	_ = v
	s.Count()
}

// Careful handles the errors or knowingly suppresses — one finding, with
// a reason.
func Careful(s *Store) error {
	s.Sync() //erasmus:allow(droppederr) fixture: sticky latch surfaces it below
	if err := s.Sync(); err != nil {
		return err
	}
	return s.Close()
}
