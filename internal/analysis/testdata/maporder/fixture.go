package maporder

import "sort"

type counter struct {
	n int
}

// Keys appends in iteration order with no later sort — flagged.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys re-imposes order after the loop — waived.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Clone writes into a fresh map — the order-free copy idiom, clean.
func Clone(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// First returns from an arbitrary element — flagged.
func First(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// Fill writes through a slice index in iteration order — flagged.
func Fill(m map[string]int, dst []int) {
	i := 0
	for _, v := range m {
		dst[i] = v
		i++
	}
}

// Tally is order-free in effect (summation commutes) and suppressed.
func Tally(m map[string]int, c *counter) {
	//erasmus:allow(maporder) fixture: summation is commutative
	for _, v := range m {
		c.n += v
	}
}
