package analysis

import (
	"go/ast"
	"strings"
)

// nilRecvRule enforces internal/obs's documented contract: every
// exported method on a pointer-receiver type begins with a nil-receiver
// guard.
//
// Instrumented code holds possibly-nil instruments ("a nil registry
// costs one nil-check per touch point"), and the on/off equivalence
// tests (TestObservabilityEquivalence) rely on nil instruments being
// total no-ops. A single unguarded method turns "observability off"
// into a panic on a hot path.
var nilRecvRule = &Rule{
	Name: "nilrecv",
	Doc:  "exported pointer-receiver methods in internal/obs must begin with a nil-receiver guard",
	AppliesTo: func(path string) bool {
		return strings.HasSuffix(path, "/internal/obs") || strings.Contains(path, "/internal/obs/")
	},
	Run: runNilRecv,
}

func runNilRecv(pass *Pass) {
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			if !fd.Name.IsExported() {
				continue
			}
			recv := fd.Recv.List[0]
			if _, ptr := recv.Type.(*ast.StarExpr); !ptr {
				continue // value receivers cannot be nil
			}
			if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
				pass.Reportf(fd.Pos(),
					"exported method %s has an unnamed pointer receiver and so cannot "+
						"guard against nil; name the receiver and guard it", fd.Name.Name)
				continue
			}
			if !beginsWithNilGuard(fd.Body, recv.Names[0].Name) {
				pass.Reportf(fd.Pos(),
					"exported method (%s).%s does not begin with a nil-receiver guard; "+
						"the obs contract is that nil instruments are no-ops",
					recvTypeName(recv.Type), fd.Name.Name)
			}
		}
	}
}

// beginsWithNilGuard reports whether the body's first statement is an if
// whose condition's leading term compares the receiver against nil
// (either polarity: `if r == nil { return }` or `if r != nil { ... }`).
func beginsWithNilGuard(body *ast.BlockStmt, recvName string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	return leadingNilCompare(ifs.Cond, recvName)
}

func leadingNilCompare(cond ast.Expr, recvName string) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "==", "!=":
			return isIdent(e.X, recvName) && isNil(e.Y) ||
				isNil(e.X) && isIdent(e.Y, recvName)
		case "||", "&&":
			return leadingNilCompare(e.X, recvName)
		}
	}
	return false
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

func isNil(e ast.Expr) bool { return isIdent(e, "nil") }

func recvTypeName(t ast.Expr) string {
	if star, ok := t.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return "*" + id.Name
		}
	}
	return "*?"
}
