package analysis

import (
	"go/ast"
	"go/types"
)

// errflowRule is the interprocedural upgrade of droppederr. droppederr
// flags a discarded error only when the discarded call is *directly* a
// durability call (internal/store, core.StateSink). But the repo wraps
// those calls: journalStatus wraps sink.SetWatermark wraps Store.Put,
// and the error travels up the wrapper chain as an ordinary return
// value. Discarding the *wrapper's* error severs the same chain to the
// sticky-error latch — just one hop removed, where droppederr cannot see
// it.
//
// errflow computes, over the module call graph, the set of "propagating"
// functions — those whose returned error may originate from a durability
// call, directly or through other propagating functions (devirtualized
// interface calls included, so a helper taking a core.StateSink counts).
// It then flags the droppederr discard forms (bare call statement,
// go/defer call, blank-identifier assignment) applied to a propagating
// function. Direct durability calls are left to droppederr so each
// finding has exactly one rule to suppress.
var errflowRule = &Rule{
	Name:      "errflow",
	Doc:       "errors wrapping internal/store or core.StateSink failures must not be discarded anywhere along the call chain",
	AppliesTo: func(string) bool { return true },
	RunModule: runErrflow,
}

func runErrflow(mp *ModulePass) {
	propagating := propagatingFuncs(mp)
	for _, pkg := range mp.Pkgs {
		if !mp.InScope(pkg) {
			continue
		}
		for _, f := range mp.FilesOf(pkg) {
			ast.Inspect(f, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.ExprStmt:
					if call, ok := s.X.(*ast.CallExpr); ok {
						reportErrflow(mp, pkg, propagating, call, "the result of a bare call statement")
					}
				case *ast.GoStmt:
					reportErrflow(mp, pkg, propagating, s.Call, "a go statement's result")
				case *ast.DeferStmt:
					reportErrflow(mp, pkg, propagating, s.Call, "a deferred call's result")
				case *ast.AssignStmt:
					errflowInAssign(mp, pkg, propagating, s)
				}
				return true
			})
		}
	}
}

func errflowInAssign(mp *ModulePass, pkg *Package, propagating map[*types.Func]string, s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBlank(s.Lhs[len(s.Lhs)-1]) {
			reportErrflow(mp, pkg, propagating, call, "the blank identifier")
		}
		return
	}
	for i, rhs := range s.Rhs {
		if i >= len(s.Lhs) {
			break
		}
		if call, ok := rhs.(*ast.CallExpr); ok && isBlank(s.Lhs[i]) {
			reportErrflow(mp, pkg, propagating, call, "the blank identifier")
		}
	}
}

// reportErrflow flags call when its discarded error comes from a
// propagating wrapper. Direct durability callees belong to droppederr.
func reportErrflow(mp *ModulePass, pkg *Package, propagating map[*types.Func]string, call *ast.CallExpr, sink string) {
	fn := calleeOf(pkg, call)
	if fn == nil || isDurabilityFunc(fn) {
		return
	}
	chain, ok := propagating[fn]
	if !ok {
		return
	}
	sig, okSig := fn.Type().(*types.Signature)
	if !okSig || !lastResultIsError(sig) {
		return
	}
	mp.Reportf(call.Pos(),
		"%s discards the error from %s, which propagates durability failures (%s); "+
			"handle it or explain with //erasmus:allow(errflow) <reason>",
		sink, fn.Name(), chain)
}

// propagatingFuncs computes the propagating set to a fixpoint over the
// call graph: a function propagates when its last result is an error and
// its body calls a durability function or another propagating function
// without discarding that call's error locally.
func propagatingFuncs(mp *ModulePass) map[*types.Func]string {
	g := mp.CallGraph()
	out := make(map[*types.Func]string)

	// Seed: functions returning an error that make a direct durability
	// call whose error is used (assigned or returned, not discarded).
	var work []*CGNode
	for _, node := range g.Nodes() {
		if !returnsError(node.Fn) {
			continue
		}
		if name, ok := directDurabilityUse(node); ok {
			out[node.Fn] = "reaches " + name
			work = append(work, node)
		}
	}
	// Propagate up the wrapper chains. A go-spawned call's error cannot
	// reach the spawner's return value.
	for len(work) > 0 {
		node := work[0]
		work = work[1:]
		chain := out[node.Fn]
		for _, cs := range node.In {
			if cs.Go {
				continue
			}
			caller := cs.Caller
			if _, seen := out[caller.Fn]; seen || !returnsError(caller.Fn) {
				continue
			}
			if callErrorDiscarded(cs.Call, caller) {
				continue
			}
			out[caller.Fn] = "via " + node.Fn.Name() + ", " + chain
			work = append(work, caller)
		}
	}
	return out
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && lastResultIsError(sig)
}

// directDurabilityUse reports whether node's body makes a durability
// call returning an error that is not locally discarded, naming the
// callee.
func directDurabilityUse(node *CGNode) (string, bool) {
	discarded := discardedCalls(node)
	var name string
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || discarded[call] {
			return true
		}
		fn := calleeOf(node.Pkg, call)
		if fn == nil || !isDurabilityFunc(fn) || !returnsError(fn) {
			return true
		}
		name = fn.FullName()
		return true
	})
	return name, name != ""
}

// callErrorDiscarded reports whether this specific call site throws the
// callee's error away (droppederr's discard forms) — such a caller does
// not forward the failure, so the chain stops there.
func callErrorDiscarded(call *ast.CallExpr, caller *CGNode) bool {
	return discardedCalls(caller)[call]
}

// discardedCalls collects the call expressions in node's body whose
// results are structurally discarded.
func discardedCalls(node *CGNode) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				out[call] = true
			}
		case *ast.GoStmt:
			out[s.Call] = true
		case *ast.DeferStmt:
			out[s.Call] = true
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBlank(s.Lhs[len(s.Lhs)-1]) {
					out[call] = true
				}
				break
			}
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) {
					break
				}
				if call, ok := rhs.(*ast.CallExpr); ok && isBlank(s.Lhs[i]) {
					out[call] = true
				}
			}
		}
		return true
	})
	return out
}
