package analysis

import (
	"path/filepath"
	"sort"
)

// Result is one lint run: the unsuppressed findings that should fail a
// build, plus the suppressed ones retained for audit.
type Result struct {
	ModulePath  string       `json:"module"`
	Packages    int          `json:"packages"`
	Diagnostics []Diagnostic `json:"diagnostics"`
	Suppressed  []Diagnostic `json:"suppressed"`
}

// Clean reports whether the run found nothing actionable.
func (r *Result) Clean() bool { return len(r.Diagnostics) == 0 }

// Run loads the given patterns of the module containing dir and applies
// the full rule suite — the programmatic equivalent of
// `erasmus-lint patterns...`.
func Run(dir string, patterns ...string) (*Result, error) {
	return RunWithTests(dir, false, patterns...)
}

// RunWithTests is Run with the loader's IncludeTests mode selectable —
// the programmatic equivalent of `erasmus-lint -tests patterns...`.
func RunWithTests(dir string, includeTests bool, patterns ...string) (*Result, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = includeTests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	return RunRules(loader, pkgs, Rules())
}

// RunRules applies rules to the loaded packages, resolves suppressions,
// and emits directive meta-diagnostics. The golden-file harness calls it
// with a single rule; suppression-comment validity is always checked
// against the full rule catalog so a fixture suppressing rule X is not
// misreported as unknown when only rule Y runs.
func RunRules(loader *Loader, pkgs []*Package, rules []*Rule) (*Result, error) {
	known := make(map[string]bool)
	for _, r := range Rules() {
		known[r.Name] = true
	}
	for _, r := range rules {
		known[r.Name] = true
	}

	res := &Result{ModulePath: loader.ModulePath, Packages: len(pkgs)}
	var diags []Diagnostic
	var directives []Directive
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			directives = append(directives, fileDirectives(pkg.Fset, f, &diags)...)
		}
		for _, rule := range rules {
			if rule.Run == nil {
				continue
			}
			if rule.AppliesTo != nil && !rule.AppliesTo(pkg.ImportPath) {
				continue
			}
			rule.Run(&Pass{Pkg: pkg, rule: rule, diags: &diags})
		}
	}

	// Module rules fire once with every package in view; the call graph
	// is built lazily and shared between them.
	var graph *CallGraph
	for _, rule := range rules {
		if rule.RunModule == nil || len(pkgs) == 0 {
			continue
		}
		rule.RunModule(&ModulePass{
			Pkgs:       pkgs,
			ModulePath: loader.ModulePath,
			rule:       rule,
			diags:      &diags,
			graph:      &graph,
		})
	}

	// Directive hygiene: every allow must name a real rule and carry a
	// reason; wallpaced must carry a reason too. The allowlist is only
	// reviewable if each entry says why it exists.
	suppressions := make(map[string][]*Directive) // file -> allow directives
	for i := range directives {
		d := &directives[i]
		switch {
		case d.Kind == directiveAllow && !known[d.Rule]:
			diags = append(diags, Diagnostic{
				Rule: MetaRule, File: d.File, Line: d.Line, Col: d.Col,
				Message: "suppression names unknown rule " + quote(d.Rule) + "; known rules: " + ruleNameList(),
			})
		case d.Reason == "":
			diags = append(diags, Diagnostic{
				Rule: MetaRule, File: d.File, Line: d.Line, Col: d.Col,
				Message: "erasmus:" + d.Kind + " directive has no reason; intentional exceptions must say why",
			})
		case d.Kind == directiveAllow:
			suppressions[d.File] = append(suppressions[d.File], d)
		}
	}

	// A suppression covers its own line (trailing comment) and the line
	// directly below (comment on its own line above the violation).
	for _, d := range diags {
		if d.Rule != MetaRule {
			for _, s := range suppressions[d.File] {
				if s.Rule == d.Rule && (s.Line == d.Line || s.Line == d.Line-1) {
					d.Suppressed, d.Reason = true, s.Reason
					break
				}
			}
		}
		d.File = relativeTo(loader.ModuleRoot, d.File)
		if d.Suppressed {
			res.Suppressed = append(res.Suppressed, d)
		} else {
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	sortDiagnostics(res.Diagnostics)
	sortDiagnostics(res.Suppressed)
	if res.Diagnostics == nil {
		res.Diagnostics = []Diagnostic{}
	}
	if res.Suppressed == nil {
		res.Suppressed = []Diagnostic{}
	}
	return res, nil
}

func relativeTo(root, file string) string {
	rel, err := filepath.Rel(root, file)
	if err != nil {
		return file
	}
	return filepath.ToSlash(rel)
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		switch {
		case a.File != b.File:
			return a.File < b.File
		case a.Line != b.Line:
			return a.Line < b.Line
		case a.Col != b.Col:
			return a.Col < b.Col
		case a.Rule != b.Rule:
			return a.Rule < b.Rule
		default:
			return a.Message < b.Message
		}
	})
}

func quote(s string) string { return `"` + s + `"` }

func ruleNameList() string {
	names := ""
	for i, r := range Rules() {
		if i > 0 {
			names += ", "
		}
		names += r.Name
	}
	return names
}
