package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mapOrderRule flags map iteration whose body's effects depend on Go's
// randomized iteration order, in result-producing packages (internal/*
// and the facade).
//
// Alert streams and reports are compared field-for-field across shard
// counts, transports, and crash-recovery (TestShardCountInvariance,
// TestTransportEquivalence, TestKillAndResumeSim); a map-ordered append
// or field write produces output that differs run to run. Flagged
// bodies: appends, channel sends, writes through a field or a non-map
// index (writing into a fresh map is the canonical order-free copy
// idiom), and loops that exit after an arbitrary first element. A
// sort/slices call after the loop in the same function waives the
// finding (order is re-imposed); genuinely order-free effects are
// suppressed with a reason.
var mapOrderRule = &Rule{
	Name: "maporder",
	Doc:  "no order-dependent effects inside map iteration in result-producing packages",
	AppliesTo: func(path string) bool {
		return isInternalPath(path) || !strings.Contains(path, "/")
	},
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			sortsAt := sortCallPositions(pass, decl)
			ast.Inspect(decl, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !rangesOverMap(pass, rs) {
					return true
				}
				effect := orderDependentEffect(pass, rs)
				if effect == "" || anyAfter(sortsAt, rs.End()) {
					return true
				}
				pass.Reportf(rs.Pos(),
					"map iteration %s — Go randomizes map order, so the result differs "+
						"run to run; sort afterwards or make the effect order-free", effect)
				return true
			})
		}
	}
}

func rangesOverMap(pass *Pass, rs *ast.RangeStmt) bool {
	t := pass.Pkg.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// orderDependentEffect describes the first iteration-order-sensitive
// effect in the loop body, or "".
func orderDependentEffect(pass *Pass, rs *ast.RangeStmt) string {
	// An unconditional break or return as a direct child selects an
	// arbitrary element ("pick any one" reads differently every run).
	for _, s := range rs.Body.List {
		switch b := s.(type) {
		case *ast.BranchStmt:
			if b.Tok.String() == "break" && b.Label == nil {
				return "exits after an arbitrary first element"
			}
		case *ast.ReturnStmt:
			return "returns from an arbitrary first element"
		}
	}
	effect := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "append" {
				effect = "appends in iteration order"
				return false
			}
		case *ast.SendStmt:
			effect = "sends on a channel in iteration order"
			return false
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				switch target := lhs.(type) {
				case *ast.SelectorExpr:
					effect = "writes a field in iteration order"
					return false
				case *ast.IndexExpr:
					// A keyed write into a map is order-free (the classic
					// map-copy idiom); writes into slices/arrays keep
					// registration-order effects visible.
					if t := pass.Pkg.TypesInfo.TypeOf(target.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							continue
						}
					}
					effect = "writes through a non-map index in iteration order"
					return false
				}
			}
		}
		return true
	})
	return effect
}

// sortCallPositions records where decl references the sort or slices
// packages; a reference after a map loop is the conventional "iterate,
// then re-impose order" shape and waives the finding.
func sortCallPositions(pass *Pass, decl ast.Decl) []token.Pos {
	var out []token.Pos
	ast.Inspect(decl, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if p := pass.importedPath(sel.X); p == "sort" || p == "slices" {
				out = append(out, sel.Pos())
			}
		}
		return true
	})
	return out
}

func anyAfter(positions []token.Pos, after token.Pos) bool {
	for _, p := range positions {
		if p > after {
			return true
		}
	}
	return false
}
