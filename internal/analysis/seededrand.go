package analysis

import (
	"go/ast"
	"go/types"
)

// seededRandRule forbids the process-global math/rand functions
// everywhere in the module (tests are never loaded).
//
// Every random stream in this repo is an explicitly seeded *rand.Rand
// (or the popsim splitmix64 per-device streams), which is what makes
// populations replayable and shard-count-invariant
// (TestShardCountInvariance, TestManagedPopulationDeltaEquivalence): the
// global source is shared process state whose consumption order depends
// on goroutine scheduling, so one stray rand.Intn makes a run
// unreproducible.
var seededRandRule = &Rule{
	Name:      "seededrand",
	Doc:       "no global math/rand functions; randomness flows through explicitly seeded *rand.Rand streams",
	AppliesTo: func(string) bool { return true },
	Run:       runSeededRand,
}

// seededRandConstructors are the math/rand{,/v2} functions that build an
// explicit stream rather than touching the global source.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runSeededRand(pass *Pass) {
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path := pass.importedPath(sel.X)
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if _, isFunc := pass.Pkg.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
				return true // rand.Rand, rand.Source, ... — types are fine
			}
			if seededRandConstructors[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"rand.%s draws from the process-global source; use an explicitly "+
					"seeded *rand.Rand so runs replay bit-identically", sel.Sel.Name)
			return true
		})
	}
}
