package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata expected.txt goldens")

// fixturePkg maps a testdata directory to the synthetic import path that
// places it inside the rule's AppliesTo scope.
type fixturePkg struct {
	dir        string // relative to internal/analysis/testdata
	importPath string
}

type goldenCase struct {
	name  string   // testdata/<name>/expected.txt
	rules []string // rule names to run; nil means the full suite
	pkgs  []fixturePkg
}

var goldenCases = []goldenCase{
	{name: "wallclock", rules: []string{"wallclock"},
		pkgs: []fixturePkg{{"wallclock", "lintfixture/internal/wallclock"}}},
	{name: "seededrand", rules: []string{"seededrand"},
		pkgs: []fixturePkg{{"seededrand", "lintfixture/seededrand"}}},
	{name: "maporder", rules: []string{"maporder"},
		pkgs: []fixturePkg{{"maporder", "lintfixture/internal/maporder"}}},
	{name: "nilrecv", rules: []string{"nilrecv"},
		pkgs: []fixturePkg{{"nilrecv", "lintfixture/internal/obs"}}},
	{name: "droppederr", rules: []string{"droppederr"},
		pkgs: []fixturePkg{
			{"droppederr/core", "lintfixture/internal/core"},
			{"droppederr/store", "lintfixture/internal/store"},
		}},
	{name: "stderrprint", rules: []string{"stderrprint"},
		pkgs: []fixturePkg{{"stderrprint", "lintfixture/internal/stderrprint"}}},
	{name: "lockflow", rules: []string{"lockflow"},
		pkgs: []fixturePkg{{"lockflow", "lintfixture/internal/lockflow"}}},
	{name: "ctcompare", rules: []string{"ctcompare"},
		pkgs: []fixturePkg{{"ctcompare", "lintfixture/internal/ctcompare"}}},
	// The errflow fixture's synthetic path ends in /internal/core so its
	// StateSink interface counts as the durability seed.
	{name: "errflow", rules: []string{"errflow"},
		pkgs: []fixturePkg{{"errflow", "errfixture/internal/core"}}},
	// The directive case runs a real rule so the interplay is visible:
	// unknown rule names and empty reasons are flagged AND fail to
	// suppress the underlying finding.
	{name: "directive", rules: []string{"wallclock"},
		pkgs: []fixturePkg{{"directive", "lintfixture/internal/directive"}}},
	{name: "clean", rules: nil,
		pkgs: []fixturePkg{{"clean", "lintfixture/internal/clean"}}},
}

// One loader is shared across every golden case: the source importer
// type-checks each stdlib package (time, math/rand, fmt, os, sort) once.
var (
	loaderOnce   sync.Once
	sharedLoader *Loader
	loaderErr    error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		sharedLoader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return sharedLoader
}

func ruleByName(t *testing.T, name string) *Rule {
	t.Helper()
	for _, r := range Rules() {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no rule named %q", name)
	return nil
}

func runGoldenCase(t *testing.T, tc goldenCase) *Result {
	t.Helper()
	l := fixtureLoader(t)
	var pkgs []*Package
	for _, fp := range tc.pkgs {
		dir := filepath.Join(l.ModuleRoot, "internal", "analysis", "testdata", fp.dir)
		pkg, err := l.LoadDir(dir, fp.importPath)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	rules := Rules()
	if tc.rules != nil {
		rules = nil
		for _, name := range tc.rules {
			rules = append(rules, ruleByName(t, name))
		}
	}
	res, err := RunRules(l, pkgs, rules)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// renderResult is the golden-file shape: unsuppressed findings first,
// then the suppressed audit trail, both in the sorted Result order.
func renderResult(res *Result) string {
	var b strings.Builder
	for _, d := range res.Diagnostics {
		fmt.Fprintln(&b, d.String())
	}
	for _, d := range res.Suppressed {
		fmt.Fprintf(&b, "suppressed: %s [allowed: %s]\n", d.String(), d.Reason)
	}
	if b.Len() == 0 {
		return "clean\n"
	}
	return b.String()
}

// TestGolden runs each rule over its fixture package(s) and compares the
// rendered diagnostics against testdata/<case>/expected.txt. Every
// positive golden expects at least one finding, so disabling a rule (or
// breaking its detection) fails its case. Regenerate with -update.
func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			res := runGoldenCase(t, tc)
			if tc.name != "clean" && len(res.Diagnostics)+len(res.Suppressed) == 0 {
				t.Fatalf("fixture produced no findings at all; the %s rule appears disabled", tc.name)
			}
			got := renderResult(res)
			goldenPath := filepath.Join("testdata", tc.name, "expected.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("diagnostics diverge from %s:\n--- got ---\n%s--- want ---\n%s",
					goldenPath, got, string(want))
			}
		})
	}
}

// TestUnknownRuleSuppression pins the meta-rule contract directly: a
// suppression naming a rule that does not exist is itself a diagnostic,
// and the finding it failed to suppress stays live.
func TestUnknownRuleSuppression(t *testing.T) {
	res := runGoldenCase(t, goldenCase{
		name:  "directive",
		rules: []string{"wallclock"},
		pkgs:  []fixturePkg{{"directive", "lintfixture/internal/directive"}},
	})
	var unknown, emptyReason, live int
	for _, d := range res.Diagnostics {
		switch {
		case d.Rule == MetaRule && strings.Contains(d.Message, "unknown rule"):
			unknown++
		case d.Rule == MetaRule && strings.Contains(d.Message, "no reason"):
			emptyReason++
		case d.Rule == "wallclock":
			live++
		}
	}
	if unknown == 0 {
		t.Errorf("no %q diagnostic for the unknown rule name; got %+v", MetaRule, res.Diagnostics)
	}
	if emptyReason == 0 {
		t.Errorf("no %q diagnostic for the empty reason; got %+v", MetaRule, res.Diagnostics)
	}
	if live < 4 {
		t.Errorf("expected all 4 wallclock findings to stay unsuppressed, got %d", live)
	}
	if len(res.Suppressed) != 0 {
		t.Errorf("broken directives must not suppress anything; got %+v", res.Suppressed)
	}
}

// TestResultJSONRoundTrip pins the -json contract: a Result survives
// marshal/unmarshal bit-identically, including the suppressed audit
// trail and the empty-slice (never null) encoding.
func TestResultJSONRoundTrip(t *testing.T) {
	res := runGoldenCase(t, goldenCase{
		name:  "wallclock",
		rules: []string{"wallclock"},
		pkgs:  []fixturePkg{{"wallclock", "lintfixture/internal/wallclock"}},
	})
	if len(res.Diagnostics) == 0 || len(res.Suppressed) == 0 {
		t.Fatalf("fixture must yield both live and suppressed findings, got %d/%d",
			len(res.Diagnostics), len(res.Suppressed))
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res, back) {
		t.Errorf("round trip diverged:\nbefore: %+v\nafter:  %+v", *res, back)
	}

	clean := &Result{ModulePath: "m", Diagnostics: []Diagnostic{}, Suppressed: []Diagnostic{}}
	data, err = json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "null") {
		t.Errorf("clean result encodes a null slice: %s", data)
	}
}
