package analysis

import (
	"go/ast"
	"go/token"
)

// Control-flow graphs — the substrate the flow-sensitive rules (lockflow,
// ctcompare, errflow) run on. PR 7's rules were per-statement matchers;
// a statement matcher cannot see that a manually released mutex misses
// one early-return path, or that a tainted byte slice reaches a compare
// three assignments later. The CFG makes "path" a first-class object:
// basic blocks of straight-line nodes connected by branch, loop, switch,
// select, goto, and panic edges, with a single synthetic exit block that
// every return, panic, and fall-off reaches. Deferred calls are left in
// their blocks as *ast.DeferStmt nodes — defers are path-sensitive facts
// (a defer registered on one branch does not run on another), so the
// dataflow clients track them as facts rather than the graph edging
// them.
//
// Blocks contain leaf statements plus, for compound statements, only the
// parts evaluated at that point: an if/for condition as a bare
// expression, a switch tag, a select clause's comm statement, and a
// *RangeHead wrapper for a range statement's operand and per-iteration
// key/value bind. Compound bodies never appear inside a block's node
// list, so transfer functions may ast.Inspect block nodes freely —
// except *RangeHead, whose Body must be skipped (its statements live in
// successor blocks).

// Block is one basic block: a maximal straight-line node sequence with
// explicit successors.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable, build order).
	Index int
	// Nodes are the statements and condition expressions evaluated in
	// this block, in order.
	Nodes []ast.Node
	// Succs are the blocks control may reach next. The exit block has
	// none.
	Succs []*Block
}

// RangeHead marks the point where a range statement evaluates its
// operand and binds Key/Value for one iteration, without implying its
// body (which lives in successor blocks). It satisfies ast.Node by
// delegation so block nodes stay uniformly positioned; clients that
// ast.Inspect block nodes must skip a RangeHead's Body.
type RangeHead struct{ *ast.RangeStmt }

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is where execution starts; Exit is the single synthetic block
	// every return, panic, and fall-off edges to.
	Entry, Exit *Block
	Blocks      []*Block
}

// BuildCFG constructs the control-flow graph of a function body. The
// construction is purely syntactic (no type information): panics are
// recognized by the builtin's name, and unstructured control flow
// (goto, labeled break/continue, fallthrough) is resolved through the
// label scope of the body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	// Fall off the end of the body: implicit return.
	b.edgeTo(b.cfg.Exit)
	b.resolveGotos()
	return b.cfg
}

// ReachableFrom returns the blocks reachable from the entry, in a
// deterministic order (ascending Index). Unreachable blocks exist when
// code follows a terminator; the dataflow driver never visits them.
func (g *CFG) ReachableFrom() []*Block {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	seen[g.Entry.Index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	var out []*Block
	for _, blk := range g.Blocks {
		if seen[blk.Index] {
			out = append(out, blk)
		}
	}
	return out
}

// loopFrame tracks the jump targets of one enclosing breakable/continuable
// statement.
type loopFrame struct {
	label         string // enclosing label, "" if none
	brk, cont     *Block // cont nil for switch/select frames
	isLoop        bool
	fallthroughTo *Block // next case clause, switch frames only
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	frames []loopFrame
	labels map[string]*Block
	gotos  []pendingGoto
	// label to attach to the next breakable statement processed.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edgeTo links the current block to next (no-op when the current block
// already terminated).
func (b *cfgBuilder) edgeTo(next *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, next)
	}
}

// terminate ends the current path: following statements are unreachable
// until a new join block starts.
func (b *cfgBuilder) terminate() { b.cur = nil }

// startBlock makes next current, linking from the current block when the
// path is live.
func (b *cfgBuilder) startBlock(next *Block) {
	b.edgeTo(next)
	b.cur = next
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		// Unreachable code after a terminator: give it a block anyway so
		// every node lives somewhere, but with no predecessors.
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.ReturnStmt:
		b.add(s)
		b.edgeTo(b.cfg.Exit)
		b.terminate()
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.edgeTo(b.cfg.Exit)
			b.terminate()
		}
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		var tag ast.Node
		if s.Tag != nil {
			tag = s.Tag
		}
		b.switchStmt(s.Init, tag, s.Body)
	case *ast.TypeSwitchStmt:
		// The x := y.(type) assign rides in the head block so transfer
		// functions see the bind once, before any clause.
		b.switchStmt(s.Init, s.Assign, s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	default:
		// Leaf statements: assign, incdec, send, defer, go, decl, empty.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	condBlk := b.cur
	after := b.newBlock()

	thenBlk := b.newBlock()
	b.cur = condBlk
	b.edgeTo(thenBlk)
	b.cur = thenBlk
	b.stmtList(s.Body.List)
	b.edgeTo(after)

	if s.Else != nil {
		elseBlk := b.newBlock()
		b.cur = condBlk
		b.edgeTo(elseBlk)
		b.cur = elseBlk
		b.stmt(s.Else)
		b.edgeTo(after)
	} else {
		b.cur = condBlk
		b.edgeTo(after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	b.startBlock(head)
	if s.Cond != nil {
		b.add(s.Cond)
	}
	after := b.newBlock()
	post := head
	if s.Post != nil {
		post = b.newBlock()
	}
	body := b.newBlock()
	b.edgeTo(body)
	if s.Cond != nil {
		// Condition false: past the loop. A cond-less for only exits via
		// break/return.
		b.edgeTo(after)
	}

	b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: post, isLoop: true})
	b.cur = body
	b.stmtList(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]

	if s.Post != nil {
		b.edgeTo(post)
		b.cur = post
		b.stmt(s.Post)
		b.edgeTo(head)
	} else {
		b.edgeTo(head)
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	b.startBlock(head)
	b.add(&RangeHead{s})
	after := b.newBlock()
	body := b.newBlock()
	b.edgeTo(body)
	b.edgeTo(after) // empty or exhausted iteration

	b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: head, isLoop: true})
	b.cur = body
	b.stmtList(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]

	b.edgeTo(head)
	b.cur = after
}

// switchStmt builds expression and type switches: head evaluates Init
// and the tag, every clause is a successor of the head, fallthrough
// chains to the following clause, and a missing default adds a head →
// after edge.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Node, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	hasDefault := false
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = head
		b.edgeTo(blocks[i])
		next := after
		if i+1 < len(blocks) {
			next = blocks[i+1]
		}
		b.frames = append(b.frames, loopFrame{label: label, brk: after, fallthroughTo: next})
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edgeTo(after)
	}
	if !hasDefault {
		b.cur = head
		b.edgeTo(after)
	}
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	hasDefault := false
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
		}
		clause := b.newBlock()
		b.cur = head
		b.edgeTo(clause)
		b.cur = clause
		if cc.Comm != nil {
			// The winning communication (send or receive) happens first in
			// the clause's block.
			b.stmt(cc.Comm)
		}
		b.frames = append(b.frames, loopFrame{label: label, brk: after})
		b.stmtList(cc.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edgeTo(after)
	}
	_ = hasDefault // select blocks until a case fires; default is just another clause
	b.cur = after
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	target := b.newBlock()
	b.startBlock(target)
	if b.labels == nil {
		b.labels = make(map[string]*Block)
	}
	b.labels[s.Label.Name] = target
	b.pendingLabel = s.Label.Name
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}

// takeLabel consumes the label attached to the statement being built, so
// `outer: for { ... break outer ... }` resolves through the frame stack.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				b.edgeTo(f.brk)
				break
			}
		}
		b.terminate()
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if !f.isLoop {
				continue
			}
			if label == "" || f.label == label {
				b.edgeTo(f.cont)
				break
			}
		}
		b.terminate()
	case token.GOTO:
		if target, ok := b.labels[label]; ok {
			b.edgeTo(target)
		} else {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
		}
		b.terminate()
	case token.FALLTHROUGH:
		for i := len(b.frames) - 1; i >= 0; i-- {
			if b.frames[i].fallthroughTo != nil {
				b.edgeTo(b.frames[i].fallthroughTo)
				break
			}
		}
		b.terminate()
	}
}

// resolveGotos patches forward gotos (label defined after the jump).
func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok && g.from != nil {
			g.from.Succs = append(g.from.Succs, target)
		}
		// An undefined label is a compile error; the type-checked source
		// the rules run on cannot contain one.
	}
}

// isPanicCall reports whether e is a call to the panic builtin. Purely
// syntactic: shadowing `panic` would hide the edge, and shadowing the
// builtin is its own code smell.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
