package analysis

import "encoding/json"

// SARIF 2.1.0 serialization of a lint result — the minimal subset code
// scanners ingest: one run, the rule catalog on the tool driver, one
// result per diagnostic. Suppressed findings are emitted with an
// inSource suppression carrying the //erasmus:allow reason, so the
// allowlist stays auditable in scanner UIs instead of disappearing.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIF renders the result as an indented SARIF 2.1.0 document.
// Unsuppressed diagnostics are level error; suppressed ones are level
// note with their in-source justification attached.
func SARIF(res *Result) ([]byte, error) {
	driver := sarifDriver{
		Name:           "erasmus-lint",
		InformationURI: "https://" + res.ModulePath,
		Rules:          []sarifRule{{ID: MetaRule, ShortDescription: sarifMessage{Text: "problems with erasmus directives themselves"}}},
	}
	for _, r := range Rules() {
		driver.Rules = append(driver.Rules, sarifRule{ID: r.Name, ShortDescription: sarifMessage{Text: r.Doc}})
	}

	results := make([]sarifResult, 0, len(res.Diagnostics)+len(res.Suppressed))
	add := func(d Diagnostic, level string) {
		r := sarifResult{
			RuleID:  d.Rule,
			Level:   level,
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: d.File},
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
			}}},
		}
		if d.Suppressed {
			r.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: d.Reason}}
		}
		results = append(results, r)
	}
	for _, d := range res.Diagnostics {
		add(d, "error")
	}
	for _, d := range res.Suppressed {
		add(d, "note")
	}

	return json.MarshalIndent(sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}, "", "  ")
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}
