package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockflowRule is the flow-sensitive lock-safety rule. It runs the
// forward dataflow over every function's CFG with the held-lock set as
// the fact, and reports three violation shapes:
//
//   - a sync lock acquired on some path but not released on every exit
//     path, panic exits included (deferred unlocks count as released);
//   - re-acquiring a lock the current path already holds (self-deadlock
//     with sync.Mutex);
//   - doing something that can block or touch durable state while any
//     lock is held: channel operations, selects without a default, and
//     calls whose call-graph summary says they reach network I/O, file
//     sync, store journaling, or a sleep.
//
// The single-writer shard discipline (service.go, fleet.go) makes lock
// regions the serialization points the equivalence tests rely on; a
// blocked shard stalls the whole virtual-time schedule, and a lock leak
// turns the next collection into a deadlock the simulator only hits on
// one specific interleaving. Per-path held-set tracking is what the
// per-statement rules of PR 7 could not see.
//
// Approximations, by design: lock identity is the receiver expression's
// source text (so "m.mu" in two functions is two locks — correct, since
// the rule is intra-procedural about held sets); read locks are tracked
// as a separate "key:r" token without a hold count; and function
// literals are analyzed as their own functions, so a closure inherits no
// held set from its creator.
var lockflowRule = &Rule{
	Name:      "lockflow",
	Doc:       "every acquired sync lock is released on all exit paths, and nothing blocking runs while one is held",
	AppliesTo: func(string) bool { return true },
	RunModule: runLockflow,
}

func runLockflow(mp *ModulePass) {
	blocking := blockingSummaries(mp)
	for _, pkg := range mp.Pkgs {
		if !mp.InScope(pkg) {
			continue
		}
		// The store IS the durability layer: its commit mutex exists to
		// serialize journaling, so "journaling while its own lock is
		// held" is its design, not a violation. Channel ops, network
		// I/O, and lock-balance violations are still checked there.
		inStore := strings.HasSuffix(pkg.ImportPath, "/internal/store")
		for _, f := range mp.FilesOf(pkg) {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkLockflowFunc(mp, pkg, blocking, fd.Name.Name, fd.Body, inStore)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						checkLockflowFunc(mp, pkg, blocking, fd.Name.Name+" literal", lit.Body, inStore)
					}
					return true
				})
			}
		}
	}
}

// lockFact is the dataflow fact: the set of lock keys that may be held
// (may-analysis: union at joins), and the set with a deferred release
// registered on every path so far (must-analysis: intersection at
// joins). Maps are treated as immutable; transfer copies on write.
type lockFact struct {
	held     map[string]bool
	deferred map[string]bool
}

func (f lockFact) clone() lockFact {
	c := lockFact{held: make(map[string]bool, len(f.held)), deferred: make(map[string]bool, len(f.deferred))}
	for k := range f.held {
		c.held[k] = true
	}
	for k := range f.deferred {
		c.deferred[k] = true
	}
	return c
}

func equalKeySets(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// lockOp is one sync lock/unlock call found in a node.
type lockOp struct {
	key     string // receiver source text, ":r"-suffixed for read ops
	acquire bool
	pos     token.Pos
}

// lockAnalysis instantiates the dataflow framework for one function.
type lockAnalysis struct {
	pkg *Package
}

func (a *lockAnalysis) flow() FlowAnalysis {
	return FlowAnalysis{
		Entry: func() Fact { return lockFact{} },
		Transfer: func(n ast.Node, in Fact) Fact {
			f := in.(lockFact)
			out := f
			copied := false
			mutate := func() {
				if !copied {
					out = f.clone()
					copied = true
				}
			}
			if d, ok := n.(*ast.DeferStmt); ok {
				// A deferred release runs on every exit from here on,
				// panic included. Look inside deferred closures too.
				ast.Inspect(d.Call, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if op, ok := a.lockOpOf(call); ok && !op.acquire {
							mutate()
							out.deferred[op.key] = true
						}
					}
					return true
				})
				return out
			}
			for _, op := range a.lockOps(n) {
				mutate()
				if op.acquire {
					out.held[op.key] = true
				} else {
					delete(out.held, op.key)
				}
			}
			return out
		},
		Join: func(x, y Fact) Fact {
			a, b := x.(lockFact), y.(lockFact)
			j := lockFact{held: make(map[string]bool), deferred: make(map[string]bool)}
			for k := range a.held {
				j.held[k] = true
			}
			for k := range b.held {
				j.held[k] = true
			}
			for k := range a.deferred {
				if b.deferred[k] {
					j.deferred[k] = true
				}
			}
			return j
		},
		Equal: func(x, y Fact) bool {
			a, b := x.(lockFact), y.(lockFact)
			return equalKeySets(a.held, b.held) && equalKeySets(a.deferred, b.deferred)
		},
	}
}

// lockOps collects the lock/unlock calls a node performs inline, in
// source order — not those inside nested function literals (their body
// runs elsewhere) or go statements (another goroutine).
func (a *lockAnalysis) lockOps(n ast.Node) []lockOp {
	var ops []lockOp
	inlineInspect(n, func(m ast.Node) {
		if call, ok := m.(*ast.CallExpr); ok {
			if op, ok := a.lockOpOf(call); ok {
				ops = append(ops, op)
			}
		}
	})
	return ops
}

// lockOpOf classifies call as a sync lock or unlock. TryLock is ignored:
// its acquisition is conditional, and flow-splitting on its result is
// beyond this rule's lattice.
func (a *lockAnalysis) lockOpOf(call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, ok := a.pkg.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock":
		return lockOp{key: key, acquire: true, pos: call.Pos()}, true
	case "Unlock":
		return lockOp{key: key, pos: call.Pos()}, true
	case "RLock":
		return lockOp{key: key + ":r", acquire: true, pos: call.Pos()}, true
	case "RUnlock":
		return lockOp{key: key + ":r", pos: call.Pos()}, true
	}
	return lockOp{}, false
}

// inlineInspect walks n visiting only code that executes inline on the
// current goroutine: function-literal bodies, go-statement operands, and
// the loop body hidden behind a *RangeHead are skipped.
func inlineInspect(n ast.Node, visit func(ast.Node)) {
	if rh, ok := n.(*RangeHead); ok {
		// Only the range operand and iteration-variable binds are part
		// of this node; the loop body has its own blocks.
		if rh.X != nil {
			inlineInspect(rh.X, visit)
		}
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		if m != nil {
			visit(m)
		}
		return true
	})
}

// checkLockflowFunc runs the lock dataflow over one function body and
// reports violations. skipJournal waives the durability-journaling
// blocking kind (for the durability layer itself).
func checkLockflowFunc(mp *ModulePass, pkg *Package, blocking map[*types.Func]blockReason, name string, body *ast.BlockStmt, skipJournal bool) {
	an := &lockAnalysis{pkg: pkg}
	flow := an.flow()
	g := BuildCFG(body)
	facts := Forward(g, flow)
	nonBlocking := nonBlockingComms(body)

	// Per-node checks: double acquisition and blocking-while-held.
	for _, blk := range g.Blocks {
		bf, reachable := facts[blk]
		if !reachable {
			continue
		}
		EachNodeFact(blk, bf, flow, func(n ast.Node, before Fact) {
			f := before.(lockFact).clone()
			inlineInspect(n, func(m ast.Node) {
				switch s := m.(type) {
				case *ast.CallExpr:
					if op, ok := an.lockOpOf(s); ok {
						if op.acquire && f.held[op.key] {
							mp.Reportf(op.pos,
								"lock %q is acquired while already held on this path (self-deadlock)",
								strings.TrimSuffix(op.key, ":r"))
						}
						if op.acquire {
							f.held[op.key] = true
						} else {
							delete(f.held, op.key)
						}
						return
					}
					if len(f.held) == 0 {
						return
					}
					if fn := calleeOf(pkg, s); fn != nil {
						if r, ok := blocking[fn]; ok && !(skipJournal && r.kind == "durability journaling") {
							mp.Reportf(s.Pos(),
								"call to %s %s while lock %q is held; move it outside the critical section or explain with //erasmus:allow(lockflow) <reason>",
								fn.Name(), r.describe(), heldList(f.held))
						} else if kind, is := externalBlockKind(fn); !ok && is && !(skipJournal && kind == "durability journaling") {
							mp.Reportf(s.Pos(),
								"call to %s (%s) while lock %q is held; move it outside the critical section or explain with //erasmus:allow(lockflow) <reason>",
								fn.Name(), kind, heldList(f.held))
						}
					}
				case *ast.SendStmt:
					if len(f.held) > 0 && !nonBlocking[s] {
						mp.Reportf(s.Pos(), "channel send while lock %q is held", heldList(f.held))
					}
				case *ast.UnaryExpr:
					if s.Op == token.ARROW && len(f.held) > 0 && !nonBlocking[s] {
						mp.Reportf(s.Pos(), "channel receive while lock %q is held", heldList(f.held))
					}
				case *ast.SelectStmt:
					if len(f.held) > 0 && !selectHasDefault(s) {
						mp.Reportf(s.Pos(), "blocking select while lock %q is held", heldList(f.held))
					}
				}
			})
		})
	}

	// Exit check: a lock still in the may-held set at an exit edge, with
	// no deferred release, escapes the function locked on that path.
	reported := make(map[string]bool)
	for _, blk := range g.Blocks {
		bf, reachable := facts[blk]
		if !reachable {
			continue
		}
		exits := false
		for _, s := range blk.Succs {
			if s == g.Exit {
				exits = true
			}
		}
		if !exits {
			continue
		}
		out := bf.Out.(lockFact)
		var leaked []string
		for k := range out.held {
			if !out.deferred[k] && !reported[k] {
				leaked = append(leaked, k)
			}
		}
		sort.Strings(leaked)
		for _, k := range leaked {
			reported[k] = true
			pos := body.End()
			if len(blk.Nodes) > 0 {
				pos = blk.Nodes[len(blk.Nodes)-1].Pos()
			}
			mp.Reportf(pos,
				"lock %q may still be held when %s exits on this path (no unlock or deferred unlock reaches it)",
				strings.TrimSuffix(k, ":r"), name)
		}
	}
}

// heldList renders the held set for messages, smallest key first.
func heldList(held map[string]bool) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, strings.TrimSuffix(k, ":r"))
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// nonBlockingComms collects the communication operations that are the
// comm statement of a select clause whose select has a default arm.
// Those sends and receives never block — the default fires instead —
// but the CFG lowers them into the clause's block as bare SendStmt /
// receive nodes, so without this set the per-node check would flag them
// as blocking. Clause bodies run after a case has already won and are
// not exempted.
func nonBlockingComms(root ast.Node) map[ast.Node]bool {
	set := make(map[ast.Node]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		s, ok := n.(*ast.SelectStmt)
		if !ok || !selectHasDefault(s) {
			return true
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			// The spec restricts a comm statement to one send or one
			// receive (possibly inside an assignment), so every channel
			// op found under it is the clause's own comm op.
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch op := m.(type) {
				case *ast.SendStmt:
					set[op] = true
				case *ast.UnaryExpr:
					if op.Op == token.ARROW {
						set[op] = true
					}
				}
				return true
			})
		}
		return true
	})
	return set
}

func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = pkg.TypesInfo.Uses[fun.Sel]
	case *ast.Ident:
		obj = pkg.TypesInfo.Uses[fun]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// blockReason says why a function counts as blocking: the root cause and
// the first step of the call chain that reaches it.
type blockReason struct {
	kind string
	via  string
}

func (r blockReason) describe() string {
	if r.via == "" {
		return "(" + r.kind + ")"
	}
	return "(" + r.kind + " via " + r.via + ")"
}

// blockingSummaries computes, over the module call graph, which declared
// functions may block or touch durable state when called: directly
// through channel operations, selects, network I/O, file sync, sleeps,
// or durability journaling — or transitively by calling such a function
// (go-spawned calls excepted: they move the blocking to another
// goroutine).
func blockingSummaries(mp *ModulePass) map[*types.Func]blockReason {
	g := mp.CallGraph()
	out := make(map[*types.Func]blockReason)

	// Externally declared blockers get summaries too, so call sites can
	// look them up uniformly: durability interface methods and the few
	// stdlib calls with known blocking behavior are classified at the
	// call sites below instead (they have no CGNode).
	var work []*CGNode
	for _, node := range g.Nodes() {
		if r, ok := directBlockReason(node); ok {
			out[node.Fn] = r
			work = append(work, node)
		}
	}
	for len(work) > 0 {
		node := work[0]
		work = work[1:]
		r := out[node.Fn]
		for _, cs := range node.In {
			if cs.Go {
				continue
			}
			if _, seen := out[cs.Caller.Fn]; seen {
				continue
			}
			out[cs.Caller.Fn] = blockReason{kind: r.kind, via: node.Fn.Name()}
			work = append(work, cs.Caller)
		}
	}
	return out
}

// directBlockReason reports whether node's body itself blocks — not
// counting code inside go statements or nested function literals that
// are only spawned.
func directBlockReason(node *CGNode) (blockReason, bool) {
	var found blockReason
	var ok bool
	set := func(kind string) {
		if !ok {
			found, ok = blockReason{kind: kind}, true
		}
	}
	nonBlocking := nonBlockingComms(node.Decl.Body)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if ok {
				return false
			}
			switch s := m.(type) {
			case *ast.GoStmt:
				return false
			case *ast.SendStmt:
				if !nonBlocking[s] {
					set("channel send")
				}
			case *ast.UnaryExpr:
				if s.Op == token.ARROW && !nonBlocking[s] {
					set("channel receive")
				}
			case *ast.SelectStmt:
				if !selectHasDefault(s) {
					set("blocking select")
				}
			case *ast.CallExpr:
				if fn := calleeOf(node.Pkg, s); fn != nil {
					if kind, is := externalBlockKind(fn); is {
						set(kind)
					}
				}
			}
			return true
		})
	}
	walk(node.Decl.Body)
	return found, ok
}

// externalBlockKind classifies callees declared outside the module whose
// blocking or durability behavior is known a priori.
func externalBlockKind(fn *types.Func) (string, bool) {
	if isDurabilityFunc(fn) {
		return "durability journaling", true
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	switch {
	case pkg.Path() == "net" || strings.HasPrefix(pkg.Path(), "net/"):
		return "network I/O", true
	case pkg.Path() == "os" && fn.Name() == "Sync":
		return "file sync", true
	case pkg.Path() == "time" && fn.Name() == "Sleep":
		return "sleep", true
	}
	return "", false
}
