package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package. By default test files
// are not loaded — the rules police library and binary code — but a
// loader with IncludeTests set merges in-package _test.go files into the
// package and type-checks external test packages (package foo_test) as
// separate packages under "<importPath> [tests]".
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info

	testFiles map[*ast.File]bool
}

// IsTestFile reports whether f came from a _test.go file.
func (p *Package) IsTestFile(f *ast.File) bool { return p.testFiles[f] }

// Loader parses and type-checks packages of one module without any
// dependency beyond the standard library: module-internal imports are
// resolved from source in-memory, standard-library imports through the
// go/importer source importer.
type Loader struct {
	ModuleRoot string
	ModulePath string
	Fset       *token.FileSet

	// IncludeTests loads _test.go files too. Set it before the first
	// Load call: packages are cached, and a package loaded without its
	// tests stays that way for the loader's lifetime.
	IncludeTests bool

	pkgs    map[string]*Package
	xtests  map[string]*Package
	stdlib  types.Importer
	loading map[string]bool
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// NewLoader builds a loader rooted at the module directory containing
// go.mod, reading the module path from it.
func NewLoader(moduleRoot string) (*Loader, error) {
	root, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		Fset:       fset,
		pkgs:       make(map[string]*Package),
		xtests:     make(map[string]*Package),
		stdlib:     importer.ForCompiler(fset, "source", nil),
		loading:    make(map[string]bool),
	}, nil
}

// Load resolves patterns ("./...", "./dir/...", "./dir", "dir") relative
// to the module root into packages, parsed and type-checked, in
// deterministic (sorted import path) order. Directories named testdata
// or vendor and hidden directories are skipped, as are directories with
// no non-test Go files.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !dirSet[dir] {
			dirSet[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "." || base == "" {
			base = l.ModuleRoot
		} else {
			base = filepath.Join(l.ModuleRoot, strings.TrimPrefix(base, "./"))
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		names, err := goFileNames(dir)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			continue
		}
		pkg, err := l.LoadDir(dir, l.importPathFor(dir))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
		if xt := l.xtests[pkg.ImportPath]; xt != nil {
			out = append(out, xt)
		}
	}
	return out, nil
}

// importPathFor maps a directory under the module root to its import
// path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// goFileNames lists dir's non-test Go files, sorted.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// buildIncluded evaluates f's //go:build constraint (if any) for the
// default build configuration: host GOOS/GOARCH, gc, and no extra tags
// — so e.g. race-detector-gated files stay out of the one-package-one
// compile the loader does.
func buildIncluded(f *ast.File) bool {
	for _, group := range f.Comments {
		if group.Pos() >= f.Package {
			break
		}
		for _, c := range group.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			return expr.Eval(func(tag string) bool {
				switch tag {
				case runtime.GOOS, runtime.GOARCH, "gc":
					return true
				case "unix":
					return runtime.GOOS == "linux" || runtime.GOOS == "darwin"
				}
				return false
			})
		}
	}
	return true
}

// testGoFileNames lists dir's _test.go files, sorted.
func testGoFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadDir parses and type-checks the package in dir under the given
// import path. Used directly by the golden-file test harness, which
// assigns fixture packages import paths that place them in each rule's
// scope. Results are cached by import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkgName := files[0].Name.Name

	// With IncludeTests, in-package test files join the package's own
	// compile; external test packages (package foo_test) are set aside
	// and type-checked as their own package once this one is cached.
	testFiles := make(map[*ast.File]bool)
	var external []*ast.File
	if l.IncludeTests {
		testNames, err := testGoFileNames(dir)
		if err != nil {
			return nil, err
		}
		for _, name := range testNames {
			f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			if !buildIncluded(f) {
				continue
			}
			testFiles[f] = true
			if f.Name.Name == pkgName {
				files = append(files, f)
			} else {
				external = append(external, f)
			}
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: moduleImporter{l}}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
		testFiles:  testFiles,
	}
	l.pkgs[importPath] = pkg

	if len(external) > 0 {
		xinfo := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		xpath := importPath + " [tests]"
		xpkg, err := conf.Check(xpath, l.Fset, external, xinfo)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", xpath, err)
		}
		l.xtests[importPath] = &Package{
			ImportPath: xpath,
			Dir:        dir,
			Fset:       l.Fset,
			Files:      external,
			Types:      xpkg,
			TypesInfo:  xinfo,
			testFiles:  testFiles,
		}
	}
	return pkg, nil
}

// moduleImporter resolves module-internal imports from source through
// the loader and everything else through the standard-library importer.
type moduleImporter struct{ l *Loader }

func (m moduleImporter) Import(path string) (*types.Package, error) {
	l := m.l
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := filepath.Join(l.ModuleRoot,
			filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")))
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.stdlib.Import(path)
}
