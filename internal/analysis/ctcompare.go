package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ctcompareRule is the constant-time-comparison taint rule. Byte strings
// that carry authenticator material — MAC tags, chain states, watermark
// fields, anything produced by the mac package — must never reach a
// variable-time comparison (bytes.Equal, bytes.Compare, or an ==/!= that
// got there through a string conversion) against attacker-influenced
// input. ERASMUS's verifier compares prover-supplied bytes against
// recomputed secrets; an early-exit comparison leaks, byte by byte, how
// much of a forged tag is right (the classic MAC timing oracle). The
// repo's trusted comparator is mac.ConstantTimeEqual.
//
// Taint is tracked flow-sensitively per function with the dataflow
// engine (assignments propagate it, reassignment kills it), and
// interprocedurally: an argument tainted at any call site taints the
// callee's parameter, to a fixpoint over the call graph — so a helper
// that receives a chain state still may not bytes.Equal it.
//
// Sources, deliberately narrow: []byte fields named MAC, Chain, State,
// AggMAC, or AggState on module types; the Hash and MAC fields of a type
// named Watermark; and []byte results of the module's mac package.
// Record.Hash is NOT a source — golden-hash membership checks are
// content addressing, not authentication, and stay on bytes.Equal.
var ctcompareRule = &Rule{
	Name:      "ctcompare",
	Doc:       "MAC, chain-state, and watermark bytes must be compared with mac.ConstantTimeEqual, never bytes.Equal or ==",
	AppliesTo: func(string) bool { return true },
	Tests:     true,
	RunModule: runCtcompare,
}

// taintedFieldNames are the field names that carry authenticator bytes
// on module types.
var taintedFieldNames = map[string]bool{
	"MAC": true, "Chain": true, "State": true, "AggMAC": true, "AggState": true,
}

// taintFact maps a tainted variable to a human-readable origin ("rec.MAC",
// "mac.Sum result"). Treated as immutable; transfer copies on write.
type taintFact map[*types.Var]string

func runCtcompare(mp *ModulePass) {
	ct := &ctAnalysis{mp: mp, paramTaint: make(map[*types.Var]string)}

	// Interprocedural fixpoint: run every function's taint flow, record
	// which parameters receive tainted arguments, repeat until no new
	// parameter taints appear. The module is small enough that the
	// whole-module re-run converges in two or three rounds.
	for {
		ct.changed = false
		ct.eachFunc(func(pkg *Package, name string, body *ast.BlockStmt) {
			ct.runFunc(pkg, body, nil)
		})
		if !ct.changed {
			break
		}
	}

	// Reporting pass, scoped by AppliesTo and the Tests opt-in.
	ct.eachFunc(func(pkg *Package, name string, body *ast.BlockStmt) {
		if !mp.InScope(pkg) {
			return
		}
		ct.runFunc(pkg, body, func(pos token.Pos, operand, origin string) {
			mp.Reportf(pos,
				"variable-time comparison of authenticator bytes %s (tainted by %s); use mac.ConstantTimeEqual",
				operand, origin)
		})
	})
}

type ctAnalysis struct {
	mp         *ModulePass
	paramTaint map[*types.Var]string
	changed    bool
}

// eachFunc visits every declared function body and every function
// literal (analyzed standalone) in the loaded packages.
func (ct *ctAnalysis) eachFunc(visit func(pkg *Package, name string, body *ast.BlockStmt)) {
	for _, pkg := range ct.mp.Pkgs {
		for _, f := range ct.mp.FilesOf(pkg) {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				visit(pkg, fd.Name.Name, fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						visit(pkg, fd.Name.Name+" literal", lit.Body)
					}
					return true
				})
			}
		}
	}
}

// runFunc runs the taint dataflow over one function body. With report
// set it flags tainted operands reaching comparison sinks; it always
// records parameter taint at module-internal call sites.
func (ct *ctAnalysis) runFunc(pkg *Package, body *ast.BlockStmt, report func(pos token.Pos, operand, origin string)) {
	flow := ct.flow(pkg)
	g := BuildCFG(body)
	facts := Forward(g, flow)
	for _, blk := range g.Blocks {
		bf, reachable := facts[blk]
		if !reachable {
			continue
		}
		EachNodeFact(blk, bf, flow, func(n ast.Node, before Fact) {
			f := before.(taintFact)
			inlineInspect(n, func(m ast.Node) {
				switch s := m.(type) {
				case *ast.CallExpr:
					ct.recordCallTaint(pkg, s, f)
					if report != nil {
						ct.checkCallSink(pkg, s, f, report)
					}
				case *ast.BinaryExpr:
					if report != nil {
						ct.checkCompareSink(pkg, s, f, report)
					}
				}
			})
		})
	}
}

// flow builds the per-function taint analysis: entry taints parameters
// the interprocedural fixpoint has marked, assignments propagate or kill.
func (ct *ctAnalysis) flow(pkg *Package) FlowAnalysis {
	return FlowAnalysis{
		Entry: func() Fact {
			// Parameter taint is looked up lazily at identifier use, so
			// entry starts empty; see exprTaint's paramTaint fallback.
			return taintFact{}
		},
		Transfer: func(n ast.Node, in Fact) Fact {
			f := in.(taintFact)
			switch s := n.(type) {
			case *ast.AssignStmt:
				return ct.transferAssign(pkg, s, f)
			case *ast.DeclStmt:
				if gd, ok := s.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							f = ct.transferSpec(pkg, vs, f)
						}
					}
				}
			}
			return f
		},
		Join: func(a, b Fact) Fact {
			x, y := a.(taintFact), b.(taintFact)
			j := make(taintFact, len(x)+len(y))
			for v, o := range x {
				j[v] = o
			}
			for v, o := range y {
				if prev, ok := j[v]; !ok || o < prev {
					j[v] = o
				}
			}
			return j
		},
		Equal: func(a, b Fact) bool {
			x, y := a.(taintFact), b.(taintFact)
			if len(x) != len(y) {
				return false
			}
			for v, o := range x {
				if yo, ok := y[v]; !ok || yo != o {
					return false
				}
			}
			return true
		},
	}
}

func (ct *ctAnalysis) transferAssign(pkg *Package, s *ast.AssignStmt, f taintFact) taintFact {
	out := f
	copied := false
	set := func(e ast.Expr, origin string, tainted bool) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		v := objVar(pkg, id)
		if v == nil {
			return
		}
		if !copied {
			out = cloneTaint(f)
			copied = true
		}
		if tainted {
			out[v] = origin
		} else {
			delete(out, v)
		}
	}
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Multi-return call: taint every byte-ish result if the call is
		// itself a source (mac.Sum-style); otherwise kill all targets.
		origin, tainted := ct.exprTaint(pkg, s.Rhs[0], f)
		for _, lhs := range s.Lhs {
			set(lhs, origin, tainted)
		}
		return out
	}
	for i, rhs := range s.Rhs {
		if i >= len(s.Lhs) {
			break
		}
		origin, tainted := ct.exprTaint(pkg, rhs, f)
		set(s.Lhs[i], origin, tainted)
	}
	return out
}

func (ct *ctAnalysis) transferSpec(pkg *Package, vs *ast.ValueSpec, f taintFact) taintFact {
	out := f
	copied := false
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		origin, tainted := ct.exprTaint(pkg, vs.Values[i], f)
		if !tainted {
			continue
		}
		v := objVar(pkg, name)
		if v == nil {
			continue
		}
		if !copied {
			out = cloneTaint(f)
			copied = true
		}
		out[v] = origin
	}
	return out
}

func cloneTaint(f taintFact) taintFact {
	c := make(taintFact, len(f))
	for v, o := range f {
		c[v] = o
	}
	return c
}

func objVar(pkg *Package, id *ast.Ident) *types.Var {
	if obj := pkg.TypesInfo.Defs[id]; obj != nil {
		v, _ := obj.(*types.Var)
		return v
	}
	v, _ := pkg.TypesInfo.Uses[id].(*types.Var)
	return v
}

// exprTaint reports whether e carries authenticator bytes, and a short
// origin description for the diagnostic.
func (ct *ctAnalysis) exprTaint(pkg *Package, e ast.Expr, f taintFact) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v := objVar(pkg, x); v != nil {
			if o, ok := f[v]; ok {
				return o, true
			}
			if o, ok := ct.paramTaint[v]; ok {
				return o, true
			}
		}
	case *ast.SelectorExpr:
		if ct.isTaintedField(pkg, x) {
			return types.ExprString(x), true
		}
	case *ast.CallExpr:
		// Conversions (string(x), []byte(x)) pass taint through.
		if tv, ok := pkg.TypesInfo.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return ct.exprTaint(pkg, x.Args[0], f)
		}
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && pkg.TypesInfo.Uses[id] == types.Universe.Lookup("append") {
			for _, arg := range x.Args {
				if o, ok := ct.exprTaint(pkg, arg, f); ok {
					return o, true
				}
			}
			return "", false
		}
		if fn := calleeOf(pkg, x); fn != nil && ct.isMACSource(fn) {
			return "mac." + fn.Name() + " result", true
		}
	case *ast.SliceExpr:
		return ct.exprTaint(pkg, x.X, f)
	case *ast.BinaryExpr:
		if x.Op == token.ADD { // string concatenation
			if o, ok := ct.exprTaint(pkg, x.X, f); ok {
				return o, true
			}
			return ct.exprTaint(pkg, x.Y, f)
		}
	}
	return "", false
}

// isTaintedField reports whether sel selects an authenticator field of
// an in-analysis type: MAC/Chain/State/AggMAC/AggState []byte fields, or
// Hash/MAC on a type named Watermark.
func (ct *ctAnalysis) isTaintedField(pkg *Package, sel *ast.SelectorExpr) bool {
	obj, ok := pkg.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() || obj.Pkg() == nil || !ct.mp.InModule(obj.Pkg().Path()) {
		return false
	}
	if !isByteSlice(obj.Type()) {
		return false
	}
	if taintedFieldNames[obj.Name()] {
		return true
	}
	if obj.Name() != "Hash" {
		return false
	}
	// Hash is a source only on Watermark: a watermark's hash is part of
	// the trusted anchor a prover tries to forge. Record.Hash stays
	// comparable — golden-image membership is content addressing.
	tv, ok := pkg.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Watermark"
}

// isMACSource reports whether fn is a module mac-package function whose
// result carries key-derived bytes. Unkeyed digest helpers (Hash*) are
// not sources: an attacker can compute those themselves, so comparing
// them early-exit leaks nothing — they are content addresses, and the
// golden-image membership checks depend on comparing them freely.
func (ct *ctAnalysis) isMACSource(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || !strings.HasSuffix(pkg.Path(), "/internal/crypto/mac") || !ct.mp.InModule(pkg.Path()) {
		return false
	}
	if strings.HasPrefix(fn.Name(), "Hash") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return isByteSlice(sig.Results().At(0).Type())
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// recordCallTaint marks callee parameters fed by tainted arguments — the
// interprocedural half of the analysis.
func (ct *ctAnalysis) recordCallTaint(pkg *Package, call *ast.CallExpr, f taintFact) {
	fn := calleeOf(pkg, call)
	if fn == nil || ct.mp.CallGraph().Node(fn) == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		origin, tainted := ct.exprTaint(pkg, arg, f)
		if !tainted {
			continue
		}
		pi := i
		if pi >= params.Len() {
			if !sig.Variadic() {
				continue
			}
			pi = params.Len() - 1
		}
		p := params.At(pi)
		if prev, seen := ct.paramTaint[p]; !seen || origin < prev {
			if !seen || origin != prev {
				ct.changed = true
			}
			ct.paramTaint[p] = origin
		}
	}
}

// checkCallSink flags bytes.Equal / bytes.Compare with a tainted operand.
func (ct *ctAnalysis) checkCallSink(pkg *Package, call *ast.CallExpr, f taintFact, report func(token.Pos, string, string)) {
	fn := calleeOf(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "bytes" {
		return
	}
	if fn.Name() != "Equal" && fn.Name() != "Compare" {
		return
	}
	for _, arg := range call.Args {
		if origin, tainted := ct.exprTaint(pkg, arg, f); tainted {
			report(call.Pos(), "in bytes."+fn.Name(), origin)
			return
		}
	}
}

// checkCompareSink flags ==/!= with a tainted operand (reached through a
// string conversion or a string-typed variable; nil checks are fine).
func (ct *ctAnalysis) checkCompareSink(pkg *Package, bin *ast.BinaryExpr, f taintFact, report func(token.Pos, string, string)) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	if isNilExpr(pkg, bin.X) || isNilExpr(pkg, bin.Y) {
		return
	}
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if origin, tainted := ct.exprTaint(pkg, side, f); tainted {
			report(bin.Pos(), "with "+bin.Op.String(), origin)
			return
		}
	}
}

func isNilExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.TypesInfo.Types[e]
	return ok && tv.IsNil()
}
