package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// The CFG tests are marker-based: fixture bodies call mark("name") and
// assertions are phrased as reachability between the blocks holding the
// markers. That keeps them independent of block granularity (how the
// builder splits straight-line code) while pinning the edges that matter
// — branch joins, loop back edges, break/continue targets, fallthrough
// chains, panic-to-exit, and goto resolution.

// buildTestCFG parses body as the body of a function and builds its CFG.
// Parse-only: the CFG builder is purely syntactic.
func buildTestCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_input.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return BuildCFG(f.Decls[0].(*ast.FuncDecl).Body)
}

// nodeHasLit reports whether the block node contains the string literal
// `"name"`. RangeHead is not an ast.Walk-able node; only its operand is
// part of the block.
func nodeHasLit(n ast.Node, name string) bool {
	if rh, ok := n.(*RangeHead); ok {
		n = rh.X
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.BasicLit); ok && lit.Value == `"`+name+`"` {
			found = true
		}
		return true
	})
	return found
}

// findMark returns the reachable block containing mark("name") (or any
// other occurrence of the literal), nil if none.
func findMark(g *CFG, name string) *Block {
	for _, blk := range g.ReachableFrom() {
		for _, n := range blk.Nodes {
			if nodeHasLit(n, name) {
				return blk
			}
		}
	}
	return nil
}

func blockOfMark(t *testing.T, g *CFG, name string) *Block {
	t.Helper()
	blk := findMark(g, name)
	if blk == nil {
		t.Fatalf("no reachable block contains %q", name)
	}
	return blk
}

// reaches reports whether to is reachable from from via one or more
// edges (so a block reaches itself only around a cycle).
func reaches(from, to *Block) bool {
	seen := make(map[*Block]bool)
	stack := []*Block{from}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if s == to {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

func exitReachable(g *CFG) bool {
	for _, blk := range g.ReachableFrom() {
		if blk == g.Exit {
			return true
		}
	}
	return false
}

func TestCFGIfElse(t *testing.T) {
	g := buildTestCFG(t, `
		if cond() {
			mark("then")
		} else {
			mark("else")
		}
		mark("after")`)
	then, els, after := blockOfMark(t, g, "then"), blockOfMark(t, g, "else"), blockOfMark(t, g, "after")
	if !reaches(g.Entry, then) || !reaches(g.Entry, els) {
		t.Error("both branches must be reachable from entry")
	}
	if reaches(then, els) || reaches(els, then) {
		t.Error("the two branches must be exclusive")
	}
	if !reaches(then, after) || !reaches(els, after) {
		t.Error("both branches must rejoin at the statement after the if")
	}
	if !reaches(after, g.Exit) {
		t.Error("fall-off must edge to the exit block")
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	g := buildTestCFG(t, `
		if cond() {
			mark("then")
		}
		mark("after")`)
	then, after := blockOfMark(t, g, "then"), blockOfMark(t, g, "after")
	if !reaches(then, after) {
		t.Error("then branch must rejoin after the if")
	}
	// The false edge: after must be reachable without passing through then.
	stripped := *g.Entry
	stripped.Succs = nil
	for _, s := range g.Entry.Succs {
		if s != then {
			stripped.Succs = append(stripped.Succs, s)
		}
	}
	if !reaches(&stripped, after) {
		t.Error("a missing else must still edge the condition past the body")
	}
}

func TestCFGForLoop(t *testing.T) {
	g := buildTestCFG(t, `
		for i := 0; cond(); i++ {
			mark("body")
		}
		mark("after")`)
	body, after := blockOfMark(t, g, "body"), blockOfMark(t, g, "after")
	if !reaches(body, body) {
		t.Error("loop body must reach itself around the back edge")
	}
	if !reaches(body, after) {
		t.Error("loop body must reach the code after the loop")
	}
	if reaches(after, body) {
		t.Error("code after the loop must not flow back in")
	}
}

func TestCFGForeverLoop(t *testing.T) {
	g := buildTestCFG(t, `
		for {
			mark("body")
		}`)
	body := blockOfMark(t, g, "body")
	if !reaches(body, body) {
		t.Error("loop body must cycle")
	}
	if exitReachable(g) {
		t.Error("a cond-less for without break must make the exit unreachable")
	}
}

func TestCFGBreakAndContinue(t *testing.T) {
	g := buildTestCFG(t, `
		for cond() {
			if cond2() {
				mark("brk")
				break
			}
			mark("cont")
			continue
		}
		mark("after")`)
	brk, cont, after := blockOfMark(t, g, "brk"), blockOfMark(t, g, "cont"), blockOfMark(t, g, "after")
	if !reaches(brk, after) {
		t.Error("break must reach the code after the loop")
	}
	if reaches(brk, cont) {
		t.Error("break must leave the loop, not continue it")
	}
	if !reaches(cont, brk) {
		t.Error("continue must re-enter the loop (reaching the break branch again)")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := buildTestCFG(t, `
	outer:
		for cond() {
			for cond2() {
				mark("inner")
				break outer
			}
		}
		mark("after")`)
	inner, after := blockOfMark(t, g, "inner"), blockOfMark(t, g, "after")
	if !reaches(inner, after) {
		t.Error("break outer must reach the code after the outer loop")
	}
	if reaches(inner, inner) {
		t.Error("break outer must leave both loops; an unlabeled break would re-reach the inner body via the outer loop")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildTestCFG(t, `
		switch tag() {
		case 1:
			mark("one")
			fallthrough
		case 2:
			mark("two")
		default:
			mark("def")
		}
		mark("after")`)
	one, two, def, after := blockOfMark(t, g, "one"), blockOfMark(t, g, "two"),
		blockOfMark(t, g, "def"), blockOfMark(t, g, "after")
	if !reaches(one, two) {
		t.Error("fallthrough must chain case 1 into case 2")
	}
	if reaches(two, one) || reaches(two, def) || reaches(def, two) {
		t.Error("cases other than a fallthrough pair must be exclusive")
	}
	for name, blk := range map[string]*Block{"one": one, "two": two, "def": def} {
		if !reaches(blk, after) {
			t.Errorf("case %s must reach the code after the switch", name)
		}
	}
}

func TestCFGTypeSwitchHead(t *testing.T) {
	g := buildTestCFG(t, `
		switch v := mark("head").(type) {
		case int:
			use(v)
			mark("int")
		default:
			mark("def")
		}`)
	head, intCase, def := blockOfMark(t, g, "head"), blockOfMark(t, g, "int"), blockOfMark(t, g, "def")
	if !reaches(head, intCase) || !reaches(head, def) {
		t.Error("the type-switch assign must ride in the head block, before every clause")
	}
	if reaches(intCase, def) || reaches(def, intCase) {
		t.Error("type-switch clauses must be exclusive")
	}
}

func TestCFGSelect(t *testing.T) {
	g := buildTestCFG(t, `
		select {
		case v := <-ch:
			use(v)
			mark("recv")
		case ch2 <- 1:
			mark("send")
		}
		mark("after")`)
	recv, send, after := blockOfMark(t, g, "recv"), blockOfMark(t, g, "send"), blockOfMark(t, g, "after")
	if reaches(recv, send) || reaches(send, recv) {
		t.Error("select clauses must be exclusive")
	}
	if !reaches(recv, after) || !reaches(send, after) {
		t.Error("both clauses must rejoin after the select")
	}
}

func TestCFGPanicEdges(t *testing.T) {
	g := buildTestCFG(t, `
		if cond() {
			panic("boom")
		}
		mark("after")`)
	panicBlk, after := blockOfMark(t, g, "boom"), blockOfMark(t, g, "after")
	exitSucc := false
	for _, s := range panicBlk.Succs {
		if s == g.Exit {
			exitSucc = true
		}
	}
	if !exitSucc {
		t.Error("a panic call must edge directly to the exit block")
	}
	if reaches(panicBlk, after) {
		t.Error("control must not continue past a panic")
	}
}

func TestCFGUnreachableAfterPanic(t *testing.T) {
	g := buildTestCFG(t, `
		mark("pre")
		panic("boom")
		mark("post")`)
	if findMark(g, "post") != nil {
		t.Error("code after an unconditional panic must be unreachable")
	}
	if !exitReachable(g) {
		t.Error("the panic itself must reach the exit")
	}
}

func TestCFGRange(t *testing.T) {
	g := buildTestCFG(t, `
		for _, v := range mark("range") {
			use(v)
			mark("body")
		}
		mark("after")`)
	head, body, after := blockOfMark(t, g, "range"), blockOfMark(t, g, "body"), blockOfMark(t, g, "after")
	var isHead *RangeHead
	for _, n := range head.Nodes {
		if rh, ok := n.(*RangeHead); ok {
			isHead = rh
		}
	}
	if isHead == nil {
		t.Fatal("the range operand must be wrapped in a *RangeHead block node")
	}
	if !reaches(body, body) {
		t.Error("range body must cycle through the head")
	}
	if !reaches(head, after) {
		t.Error("the head must edge past the loop for the exhausted iteration")
	}
}

func TestCFGGoto(t *testing.T) {
	g := buildTestCFG(t, `
		if cond() {
			goto done
		}
		mark("mid")
	done:
		mark("end")`)
	mid, end := blockOfMark(t, g, "mid"), blockOfMark(t, g, "end")
	var gotoBlk *Block
	for _, blk := range g.ReachableFrom() {
		for _, n := range blk.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.GOTO {
				gotoBlk = blk
			}
		}
	}
	if gotoBlk == nil {
		t.Fatal("no reachable block holds the goto")
	}
	if !reaches(gotoBlk, end) {
		t.Error("a forward goto must resolve to its label's block")
	}
	if reaches(gotoBlk, mid) {
		t.Error("goto must skip the statements between it and the label")
	}
	if !reaches(mid, end) {
		t.Error("the fall-through path must also reach the label")
	}
}

func TestCFGDeferStaysInBlock(t *testing.T) {
	g := buildTestCFG(t, `
		defer mark("cleanup")
		mark("body")`)
	body := blockOfMark(t, g, "body")
	var deferred *ast.DeferStmt
	for _, n := range body.Nodes {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred = d
		}
	}
	if deferred == nil {
		t.Error("a defer must stay a block node (a path-sensitive fact), not become an edge")
	}
}
