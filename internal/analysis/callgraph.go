package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// The module call graph — what lets a rule reason past one function
// body. Edges are static: direct calls resolve through go/types to the
// exact *types.Func; calls through an interface method are devirtualized
// class-hierarchy style, to every module type that implements the
// interface (so a call through core.StateSink reaches store.Store's
// methods). Calls through function-typed variables and fields stay
// unresolved — the rules that consume the graph treat "unresolved" as
// "no claim", never as "safe".

// CallSite is one resolved call edge.
type CallSite struct {
	// Call is the call expression in the caller's body.
	Call *ast.CallExpr
	// Caller and Callee are the graph nodes; calls inside function
	// literals are attributed to the enclosing declared function.
	Caller, Callee *CGNode
	// Devirtualized marks an edge recovered from an interface-method
	// call: the callee is one of possibly several implementations.
	Devirtualized bool
	// Go marks a call that is the operand of a go statement: it starts
	// the callee on another goroutine rather than running it inline, so
	// blocking behavior does not propagate to the caller through it.
	Go bool
}

// CGNode is one declared function or method of the loaded packages.
type CGNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Out are the calls this function makes; In the calls that reach it.
	Out, In []*CallSite
}

// CallGraph maps every declared function of the loaded packages to its
// node.
type CallGraph struct {
	nodes map[*types.Func]*CGNode
	// namedTypes are the named (non-interface) types of the loaded
	// packages — the devirtualization universe.
	namedTypes []*types.Named
}

// Node returns fn's graph node, or nil for functions with no declaration
// in the loaded packages (stdlib, unresolved).
func (g *CallGraph) Node(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn]
}

// Nodes returns every node in a deterministic (package, position) order.
func (g *CallGraph) Nodes() []*CGNode {
	out := make([]*CGNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg.ImportPath != out[j].Pkg.ImportPath {
			return out[i].Pkg.ImportPath < out[j].Pkg.ImportPath
		}
		return out[i].Decl.Pos() < out[j].Decl.Pos()
	})
	return out
}

// BuildCallGraph resolves the static call edges of the loaded packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*CGNode)}

	// Pass 1: one node per declared function; collect the named-type
	// universe for devirtualization.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn] = &CGNode{Fn: fn, Decl: fd, Pkg: pkg}
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			g.namedTypes = append(g.namedTypes, named)
		}
	}

	// Pass 2: edges.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller := g.nodes[pkg.TypesInfo.Defs[fd.Name].(*types.Func)]
				if caller == nil {
					continue
				}
				spawned := make(map[*ast.CallExpr]bool)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch s := n.(type) {
					case *ast.GoStmt:
						spawned[s.Call] = true
					case *ast.CallExpr:
						g.addEdges(pkg, caller, s, spawned[s])
					}
					return true
				})
			}
		}
	}
	return g
}

// addEdges resolves one call expression to zero or more edges.
func (g *CallGraph) addEdges(pkg *Package, caller *CGNode, call *ast.CallExpr, spawned bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = pkg.TypesInfo.Uses[fun.Sel]
	case *ast.Ident:
		obj = pkg.TypesInfo.Uses[fun]
	default:
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	if callee := g.nodes[fn]; callee != nil {
		g.link(&CallSite{Call: call, Caller: caller, Callee: callee, Go: spawned})
		return
	}
	// No declaration for fn in the loaded packages: either external
	// (stdlib — no node, no edge) or an interface method, which
	// devirtualizes to the module implementations.
	for _, impl := range g.Implementations(fn) {
		if callee := g.nodes[impl]; callee != nil {
			g.link(&CallSite{Call: call, Caller: caller, Callee: callee, Devirtualized: true, Go: spawned})
		}
	}
}

func (g *CallGraph) link(cs *CallSite) {
	cs.Caller.Out = append(cs.Caller.Out, cs)
	cs.Callee.In = append(cs.Callee.In, cs)
}

// Implementations returns the concrete module methods an interface
// method call may dispatch to: for every named module type implementing
// the method's interface (by value or pointer receiver), the method of
// the same name. Non-interface methods return nil.
func (g *CallGraph) Implementations(fn *types.Func) []*types.Func {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, named := range g.namedTypes {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), fn.Name())
		if m, ok := obj.(*types.Func); ok {
			out = append(out, m)
		}
	}
	return out
}
