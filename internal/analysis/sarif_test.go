package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSARIFGolden pins the exact SARIF 2.1.0 document produced for the
// wallclock fixture (live findings + one suppressed) byte-for-byte.
// Regenerate with -update.
func TestSARIFGolden(t *testing.T) {
	res := runGoldenCase(t, goldenCase{
		name:  "wallclock",
		rules: []string{"wallclock"},
		pkgs:  []fixturePkg{{"wallclock", "lintfixture/internal/wallclock"}},
	})
	data, err := SARIF(res)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	goldenPath := filepath.Join("testdata", "sarif", "expected.json")
	if *update {
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(want) {
		t.Errorf("SARIF output diverges from %s:\n--- got ---\n%s--- want ---\n%s",
			goldenPath, data, want)
	}
}

// TestSARIFShape checks the structural contract independently of the
// golden bytes: schema/version, full rule catalog on the driver, level
// and suppression partitioning between live and suppressed findings.
func TestSARIFShape(t *testing.T) {
	res := runGoldenCase(t, goldenCase{
		name:  "wallclock",
		rules: []string{"wallclock"},
		pkgs:  []fixturePkg{{"wallclock", "lintfixture/internal/wallclock"}},
	})
	if len(res.Diagnostics) == 0 || len(res.Suppressed) == 0 {
		t.Fatalf("fixture must yield both live and suppressed findings, got %d/%d",
			len(res.Diagnostics), len(res.Suppressed))
	}
	data, err := SARIF(res)
	if err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output does not parse back: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]

	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	if !ruleIDs[MetaRule] {
		t.Errorf("driver rules missing the %q meta rule", MetaRule)
	}
	for _, r := range Rules() {
		if !ruleIDs[r.Name] {
			t.Errorf("driver rules missing %q", r.Name)
		}
	}

	if len(run.Results) != len(res.Diagnostics)+len(res.Suppressed) {
		t.Fatalf("results = %d, want %d live + %d suppressed",
			len(run.Results), len(res.Diagnostics), len(res.Suppressed))
	}
	for _, r := range run.Results {
		switch {
		case len(r.Suppressions) == 0:
			if r.Level != "error" {
				t.Errorf("live finding has level %q, want error", r.Level)
			}
		default:
			if r.Level != "note" {
				t.Errorf("suppressed finding has level %q, want note", r.Level)
			}
			s := r.Suppressions[0]
			if s.Kind != "inSource" || s.Justification == "" {
				t.Errorf("suppression = %+v, want kind inSource with a justification", s)
			}
		}
		if len(r.Locations) != 1 {
			t.Errorf("result has %d locations, want 1", len(r.Locations))
			continue
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || loc.Region.StartLine == 0 {
			t.Errorf("result location incomplete: %+v", loc)
		}
	}
}
