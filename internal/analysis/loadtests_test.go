package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// The include-tests fixture: fixture.go has a wallclock violation,
// fixture_test.go (in-package) and fixture_ext_test.go (external
// package) each have a ctcompare violation, and fixture_race_test.go is
// //go:build race-gated and redeclares a helper — it must stay out of
// the compile or type-checking fails.

const includeTestsPath = "lintfixture/internal/includetests"

func loadIncludeTests(t *testing.T, includeTests bool) (*Loader, *Package) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.IncludeTests = includeTests
	dir := filepath.Join(root, "internal", "analysis", "testdata", "includetests")
	pkg, err := l.LoadDir(dir, includeTestsPath)
	if err != nil {
		t.Fatal(err)
	}
	return l, pkg
}

func TestLoaderExcludesTestsByDefault(t *testing.T) {
	_, pkg := loadIncludeTests(t, false)
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files without IncludeTests, want 1 (fixture.go only)", len(pkg.Files))
	}
	if pkg.IsTestFile(pkg.Files[0]) {
		t.Error("the only default-mode file must not be a test file")
	}
}

func TestLoaderIncludeTests(t *testing.T) {
	l, pkg := loadIncludeTests(t, true)

	// fixture_test.go merges into the package compile;
	// fixture_race_test.go must be excluded by its build constraint
	// (it redeclares verifySloppy — inclusion fails type-checking).
	var testFiles int
	for _, f := range pkg.Files {
		if pkg.IsTestFile(f) {
			testFiles++
		}
	}
	if len(pkg.Files) != 2 || testFiles != 1 {
		t.Fatalf("loaded %d files (%d test) with IncludeTests, want 2 files with 1 in-package test file",
			len(pkg.Files), testFiles)
	}

	// The external test package is type-checked separately.
	xt := l.xtests[includeTestsPath]
	if xt == nil {
		t.Fatal("external test package (includetests_test) was not loaded")
	}
	if !strings.HasSuffix(xt.ImportPath, " [tests]") {
		t.Errorf("external test package import path = %q, want a %q suffix", xt.ImportPath, " [tests]")
	}

	// Rule gating over the loaded set: ctcompare opted in to tests and
	// must see both test files' violations; wallclock did not and must
	// flag only the non-test file's wall read.
	res, err := RunRules(l, []*Package{pkg, xt}, []*Rule{
		ruleByName(t, "ctcompare"),
		ruleByName(t, "wallclock"),
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	inTestFiles := 0
	for _, d := range res.Diagnostics {
		counts[d.Rule]++
		if strings.Contains(d.File, "_test.go") {
			inTestFiles++
		}
	}
	if counts["ctcompare"] != 2 {
		t.Errorf("ctcompare found %d violations, want 2 (in-package + external test file); got %+v",
			counts["ctcompare"], res.Diagnostics)
	}
	if counts["wallclock"] != 1 {
		t.Errorf("wallclock found %d violations, want 1 — the Tests opt-in gate must keep it out of test files; got %+v",
			counts["wallclock"], res.Diagnostics)
	}
	if inTestFiles != 2 {
		t.Errorf("%d findings in test files, want exactly the 2 ctcompare ones", inTestFiles)
	}
}
