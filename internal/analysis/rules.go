package analysis

// Rules returns the full analyzer suite in stable order. Each rule
// mechanizes one convention the repo's equivalence tests otherwise only
// enforce dynamically (the rule Docs name the guarded invariant).
func Rules() []*Rule {
	return []*Rule{
		ctcompareRule,
		droppedErrRule,
		errflowRule,
		lockflowRule,
		mapOrderRule,
		nilRecvRule,
		seededRandRule,
		stderrPrintRule,
		wallClockRule,
	}
}
