package analysis

import "go/ast"

// A small forward-dataflow framework over the CFG: lattice join at block
// boundaries, worklist iteration to a fixpoint. The flow rules instantiate
// it with set-valued facts (held locks, tainted variables); the framework
// owns only the iteration order and convergence bookkeeping, so a rule is
// just its transfer function plus its join.

// Fact is one dataflow fact — a point in the rule's lattice. Facts are
// treated as immutable by the framework: Transfer and Join must return
// fresh values (or unmodified inputs) rather than mutating arguments.
type Fact any

// FlowAnalysis defines one forward analysis.
type FlowAnalysis struct {
	// Entry produces the fact holding at function entry.
	Entry func() Fact
	// Transfer computes the fact after one block node, given the fact
	// before it. Nodes are the leaf statements and condition expressions
	// BuildCFG placed in blocks (see the cfg.go comment for the
	// compound-statement decomposition, including *RangeHead).
	Transfer func(n ast.Node, in Fact) Fact
	// Join merges the facts of two predecessors at a block boundary. It
	// must be commutative, associative, and monotone for the worklist to
	// converge.
	Join func(a, b Fact) Fact
	// Equal reports whether two facts are the same lattice point —
	// fixpoint detection.
	Equal func(a, b Fact) bool
}

// BlockFacts carries the converged facts of one reachable block.
type BlockFacts struct {
	// In holds at block entry, Out after the last node.
	In, Out Fact
}

// Forward runs the analysis to fixpoint and returns the facts of every
// reachable block. Unreachable blocks are absent from the result (their
// facts are the lattice's bottom: nothing is known to hold, and nothing
// in them executes).
func Forward(g *CFG, an FlowAnalysis) map[*Block]BlockFacts {
	in := make(map[*Block]Fact)
	out := make(map[*Block]Fact)
	in[g.Entry] = an.Entry()

	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		f := in[blk]
		for _, n := range blk.Nodes {
			f = an.Transfer(n, f)
		}
		if prev, ok := out[blk]; ok && an.Equal(prev, f) {
			continue
		}
		out[blk] = f
		for _, s := range blk.Succs {
			next, ok := in[s]
			if !ok {
				next = f
			} else {
				next = an.Join(next, f)
			}
			if prev, seen := in[s]; !seen || !an.Equal(prev, next) {
				in[s] = next
				if !queued[s] {
					queued[s] = true
					work = append(work, s)
				}
			}
		}
	}

	res := make(map[*Block]BlockFacts, len(in))
	for blk, f := range in {
		res[blk] = BlockFacts{In: f, Out: out[blk]}
	}
	return res
}

// EachNodeFact re-walks one block from its in-fact, calling visit with
// the fact in effect immediately *before* each node — the granularity
// reporting passes need ("was the lock held when this call ran?").
func EachNodeFact(blk *Block, facts BlockFacts, an FlowAnalysis, visit func(n ast.Node, before Fact)) {
	f := facts.In
	for _, n := range blk.Nodes {
		visit(n, f)
		f = an.Transfer(n, f)
	}
}
