// Package analysis is erasmus's project-specific static-analysis layer:
// a stdlib-only (go/parser, go/ast, go/types) analyzer framework plus the
// rule suite that mechanizes the source-level conventions every
// equivalence test in this repo depends on dynamically.
//
// The reproduction's headline invariants — alert streams and verdict
// sequences bit-identical across shard counts, transports, delta vs
// full collection, crash-and-resume, and instrumentation on/off — hold
// only because the code follows conventions the type system cannot see:
// seeded per-device RNG streams, no wall clock in virtual-time paths, no
// map-iteration order in result paths, nil-receiver-safe observability,
// and never-dropped durability errors. Each rule here turns one of those
// conventions into a diagnostic at the line that breaks it, so the
// violation is caught at lint time instead of whenever the matching
// equivalence test happens to get unlucky.
//
// Intentional exceptions are never silent: a violating line must carry
//
//	//erasmus:allow(rule) reason
//
// on the same line or the line directly above, and wall-clock use that
// is legitimate for a whole declaration (fsync timing, socket deadlines,
// wall-paced engines) is annotated on the declaration's doc comment:
//
//	//erasmus:wallpaced reason
//
// A suppression without a reason, or naming a rule that does not exist,
// is itself a diagnostic — the allowlist stays reviewable in the diff.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one analyzer finding, positioned by module-root-relative
// file path. Suppressed findings are retained (with the suppression
// reason) so the full audit stays visible in -json output.
type Diagnostic struct {
	Rule       string `json:"rule"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// String renders the conventional file:line:col: rule: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Rule is one invariant-enforcing analyzer. AppliesTo filters by import
// path (determinism-sensitive rules only make claims about the packages
// whose conventions they encode); Run inspects one type-checked package.
// Flow rules that need cross-package context (a call graph) implement
// RunModule instead, which fires once per lint run with every loaded
// package in view.
type Rule struct {
	// Name is the identifier used in diagnostics and //erasmus:allow().
	Name string
	// Doc is the one-line invariant statement shown by the driver.
	Doc string
	// AppliesTo reports whether the rule inspects the given import path.
	// Module rules see every package but report only in applicable ones.
	AppliesTo func(importPath string) bool
	// Tests opts the rule in to _test.go files when the loader included
	// them. Rules without it keep seeing only library and binary code
	// even under -tests.
	Tests bool
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	// Exactly one of Run and RunModule is set.
	Run func(pass *Pass)
	// RunModule inspects the whole loaded module at once — for rules
	// whose claims span function and package boundaries.
	RunModule func(mp *ModulePass)
}

// Pass is one (rule, package) analysis run.
type Pass struct {
	Pkg   *Package
	rule  *Rule
	diags *[]Diagnostic
}

// Files returns the package files this rule may inspect: every file,
// minus _test.go files unless the rule opted in with Tests.
func (p *Pass) Files() []*ast.File {
	return filterFiles(p.Pkg, p.rule.Tests)
}

func filterFiles(pkg *Package, tests bool) []*ast.File {
	if tests {
		return pkg.Files
	}
	var out []*ast.File
	for _, f := range pkg.Files {
		if !pkg.IsTestFile(f) {
			out = append(out, f)
		}
	}
	return out
}

// ModulePass is one (module rule, loaded module) analysis run. The call
// graph is built on first use and shared between the module rules of the
// same lint run.
type ModulePass struct {
	// Pkgs are all loaded packages, in load order; use InScope to honor
	// the rule's AppliesTo filter when reporting.
	Pkgs []*Package
	// ModulePath is the module being linted; fixture packages loaded by
	// the golden harness under synthetic paths count as in-module too.
	ModulePath string

	rule  *Rule
	diags *[]Diagnostic
	graph **CallGraph // shared across the run's module rules
}

// Reportf records a finding at pos.
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := mp.Pkgs[0].Fset.Position(pos)
	*mp.diags = append(*mp.diags, Diagnostic{
		Rule:    mp.rule.Name,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// CallGraph returns the module call graph, building it on first use.
// It always spans every loaded package — including test files when
// loaded — so summaries see the whole module even for scoped rules.
func (mp *ModulePass) CallGraph() *CallGraph {
	if *mp.graph == nil {
		*mp.graph = BuildCallGraph(mp.Pkgs)
	}
	return *mp.graph
}

// InScope reports whether the rule makes claims about pkg.
func (mp *ModulePass) InScope(pkg *Package) bool {
	return mp.rule.AppliesTo == nil || mp.rule.AppliesTo(pkg.ImportPath)
}

// FilesOf returns pkg's files filtered by the rule's Tests opt-in.
func (mp *ModulePass) FilesOf(pkg *Package) []*ast.File {
	return filterFiles(pkg, mp.rule.Tests)
}

// InModule reports whether importPath belongs to the linted module (or
// to a fixture package loaded directly by the test harness).
func (mp *ModulePass) InModule(importPath string) bool {
	if importPath == mp.ModulePath || strings.HasPrefix(importPath, mp.ModulePath+"/") {
		return true
	}
	for _, pkg := range mp.Pkgs {
		if pkg.ImportPath == importPath {
			return true
		}
	}
	return false
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.rule.Name,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// importedPath resolves e to the import path it qualifies, when e is a
// package-qualifier identifier ("time" in time.Now), or "".
func (p *Pass) importedPath(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Pkg.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// calleeFunc resolves the function or method object a call invokes, or
// nil for conversions, builtins, and indirect calls through variables.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = p.Pkg.TypesInfo.Uses[fun.Sel]
	case *ast.Ident:
		obj = p.Pkg.TypesInfo.Uses[fun]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isInternalPath reports whether importPath lies under an internal/
// directory of the module — the packages whose determinism and
// observability conventions the rules encode.
func isInternalPath(importPath string) bool {
	return strings.Contains("/"+importPath+"/", "/internal/")
}

// Directive kinds.
const (
	directiveAllow     = "allow"
	directiveWallPaced = "wallpaced"
)

// Directive is one parsed //erasmus:... comment.
type Directive struct {
	Kind   string // directiveAllow or directiveWallPaced
	Rule   string // allow only: the rule being suppressed
	Reason string
	File   string
	Line   int
	Col    int
}

const directivePrefix = "erasmus:"

// parseDirective parses one comment's text (with the // still attached),
// returning (nil, "") for comments that are not erasmus directives and a
// non-empty problem string for malformed ones.
func parseDirective(text string) (*Directive, string) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return nil, "" // /* */ groups never carry directives
	}
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, directivePrefix) {
		return nil, ""
	}
	body = strings.TrimPrefix(body, directivePrefix)
	switch {
	case strings.HasPrefix(body, directiveAllow+"("):
		rest := strings.TrimPrefix(body, directiveAllow+"(")
		rule, reason, ok := strings.Cut(rest, ")")
		if !ok || strings.TrimSpace(rule) == "" {
			return nil, "malformed suppression; want //erasmus:allow(rule) reason"
		}
		return &Directive{
			Kind:   directiveAllow,
			Rule:   strings.TrimSpace(rule),
			Reason: strings.TrimSpace(reason),
		}, ""
	case body == directiveWallPaced || strings.HasPrefix(body, directiveWallPaced+" "):
		return &Directive{
			Kind:   directiveWallPaced,
			Reason: strings.TrimSpace(strings.TrimPrefix(body, directiveWallPaced)),
		}, ""
	default:
		kind, _, _ := strings.Cut(body, " ")
		return nil, fmt.Sprintf("unknown erasmus directive %q; want allow(rule) or wallpaced", kind)
	}
}

// fileDirectives extracts every erasmus directive in f, appending a
// "directive" meta-diagnostic for each malformed comment.
func fileDirectives(fset *token.FileSet, f *ast.File, diags *[]Diagnostic) []Directive {
	var out []Directive
	for _, group := range f.Comments {
		for _, c := range group.List {
			d, problem := parseDirective(c.Text)
			pos := fset.Position(c.Pos())
			if problem != "" {
				*diags = append(*diags, Diagnostic{
					Rule: MetaRule, File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message: problem,
				})
				continue
			}
			if d == nil {
				continue
			}
			d.File, d.Line, d.Col = pos.Filename, pos.Line, pos.Column
			out = append(out, *d)
		}
	}
	return out
}

// MetaRule names the pseudo-rule that reports problems with the
// directives themselves (unknown rule names, missing reasons, malformed
// comments). Meta-diagnostics cannot be suppressed.
const MetaRule = "directive"

// declWallPaced reports whether decl's doc comment carries an
// //erasmus:wallpaced annotation, marking the whole declaration as
// deliberately wall-clock-paced.
func declWallPaced(decl ast.Decl) bool {
	var doc *ast.CommentGroup
	switch d := decl.(type) {
	case *ast.FuncDecl:
		doc = d.Doc
	case *ast.GenDecl:
		doc = d.Doc
	}
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if d, _ := parseDirective(c.Text); d != nil && d.Kind == directiveWallPaced {
			return true
		}
	}
	return false
}

// eachStmtList calls fn for every statement list under root (block
// bodies, switch cases, select clauses) — the granularity at which
// "followed by a sort" waivers are resolved.
func eachStmtList(root ast.Node, fn func(list []ast.Stmt)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			fn(s.List)
		case *ast.CaseClause:
			fn(s.Body)
		case *ast.CommClause:
			fn(s.Body)
		}
		return true
	})
}
