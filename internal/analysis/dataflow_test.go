package analysis

import (
	"go/ast"
	"testing"
)

// The dataflow tests drive Forward directly over hand-built graphs with
// a reaching-labels analysis: each block node is an *ast.Ident whose
// name joins the fact set. Union join + set equality makes expected
// fixpoints easy to state exactly.

func labelAnalysis() FlowAnalysis {
	return FlowAnalysis{
		Entry: func() Fact { return map[string]bool{} },
		Transfer: func(n ast.Node, in Fact) Fact {
			id, ok := n.(*ast.Ident)
			if !ok {
				return in
			}
			f := in.(map[string]bool)
			out := make(map[string]bool, len(f)+1)
			for k := range f {
				out[k] = true
			}
			out[id.Name] = true
			return out
		},
		Join: func(a, b Fact) Fact {
			x, y := a.(map[string]bool), b.(map[string]bool)
			j := make(map[string]bool, len(x)+len(y))
			for k := range x {
				j[k] = true
			}
			for k := range y {
				j[k] = true
			}
			return j
		},
		Equal: func(a, b Fact) bool {
			return equalKeySets(a.(map[string]bool), b.(map[string]bool))
		},
	}
}

func labeled(name string) ast.Node { return &ast.Ident{Name: name} }

func wantSet(t *testing.T, got Fact, want ...string) {
	t.Helper()
	g := got.(map[string]bool)
	w := make(map[string]bool, len(want))
	for _, k := range want {
		w[k] = true
	}
	if !equalKeySets(g, w) {
		t.Errorf("fact = %v, want %v", g, w)
	}
}

// TestForwardDiamond: a diamond's merge block joins the facts of both
// arms, and each arm sees only the entry's fact.
func TestForwardDiamond(t *testing.T) {
	entry := &Block{Index: 0, Nodes: []ast.Node{labeled("e")}}
	left := &Block{Index: 1, Nodes: []ast.Node{labeled("l")}}
	right := &Block{Index: 2, Nodes: []ast.Node{labeled("r")}}
	merge := &Block{Index: 3}
	entry.Succs = []*Block{left, right}
	left.Succs = []*Block{merge}
	right.Succs = []*Block{merge}
	g := &CFG{Entry: entry, Exit: merge, Blocks: []*Block{entry, left, right, merge}}

	facts := Forward(g, labelAnalysis())
	wantSet(t, facts[left].In, "e")
	wantSet(t, facts[right].In, "e")
	wantSet(t, facts[left].Out, "e", "l")
	wantSet(t, facts[merge].In, "e", "l", "r")
}

// TestForwardLoopFixpoint: a fact generated inside a loop body flows
// around the back edge into the loop head's in-fact, and the iteration
// terminates.
func TestForwardLoopFixpoint(t *testing.T) {
	entry := &Block{Index: 0, Nodes: []ast.Node{labeled("e")}}
	head := &Block{Index: 1}
	body := &Block{Index: 2, Nodes: []ast.Node{labeled("b")}}
	after := &Block{Index: 3}
	entry.Succs = []*Block{head}
	head.Succs = []*Block{body, after}
	body.Succs = []*Block{head}
	g := &CFG{Entry: entry, Exit: after, Blocks: []*Block{entry, head, body, after}}

	facts := Forward(g, labelAnalysis())
	wantSet(t, facts[head].In, "e", "b")
	wantSet(t, facts[after].In, "e", "b")
}

// TestForwardUnreachable: blocks with no path from the entry are absent
// from the result, and contribute nothing at joins.
func TestForwardUnreachable(t *testing.T) {
	entry := &Block{Index: 0, Nodes: []ast.Node{labeled("e")}}
	exit := &Block{Index: 1}
	orphan := &Block{Index: 2, Nodes: []ast.Node{labeled("dead")}}
	entry.Succs = []*Block{exit}
	orphan.Succs = []*Block{exit}
	g := &CFG{Entry: entry, Exit: exit, Blocks: []*Block{entry, exit, orphan}}

	facts := Forward(g, labelAnalysis())
	if _, ok := facts[orphan]; ok {
		t.Error("unreachable block must be absent from the result")
	}
	wantSet(t, facts[exit].In, "e")
}

// TestEachNodeFact: the reporting walk hands each node the fact holding
// immediately before it, in node order.
func TestEachNodeFact(t *testing.T) {
	blk := &Block{Index: 0, Nodes: []ast.Node{labeled("a"), labeled("b")}}
	g := &CFG{Entry: blk, Exit: blk, Blocks: []*Block{blk}}
	an := labelAnalysis()
	facts := Forward(g, an)

	var seen []map[string]bool
	EachNodeFact(blk, facts[blk], an, func(n ast.Node, before Fact) {
		seen = append(seen, before.(map[string]bool))
	})
	if len(seen) != 2 {
		t.Fatalf("visited %d nodes, want 2", len(seen))
	}
	wantSet(t, Fact(seen[0]))
	wantSet(t, Fact(seen[1]), "a")
}
