package netsim

import (
	"testing"

	"erasmus/internal/sim"
)

func TestDelivery(t *testing.T) {
	e := sim.NewEngine()
	n, err := New(e, Config{Latency: 5 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var got Packet
	var at sim.Ticks
	n.Attach("vrf", func(p Packet) { got = p; at = e.Now() })
	n.Send(Packet{From: "prv", To: "vrf", Kind: "resp", Payload: []byte("hi")})
	e.Run()
	if string(got.Payload) != "hi" || got.From != "prv" || got.Kind != "resp" {
		t.Fatalf("got %+v", got)
	}
	if at != 5*sim.Millisecond {
		t.Fatalf("delivered at %v, want 5ms", at)
	}
}

func TestPayloadCopied(t *testing.T) {
	e := sim.NewEngine()
	n, _ := New(e, Config{})
	var got []byte
	n.Attach("dst", func(p Packet) { got = p.Payload })
	buf := []byte{1, 2, 3}
	n.Send(Packet{To: "dst", Payload: buf})
	buf[0] = 99 // sender reuses its buffer before delivery
	e.Run()
	if got[0] != 1 {
		t.Fatal("payload aliased sender buffer")
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	e := sim.NewEngine()
	n, _ := New(e, Config{})
	n.Send(Packet{To: "nobody", Payload: []byte("x")})
	e.Run()
	s := n.Stats()
	if s.Sent != 1 || s.Dropped != 1 || s.Delivered != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLossRate(t *testing.T) {
	e := sim.NewEngine()
	n, _ := New(e, Config{LossRate: 0.5, Seed: 42})
	received := 0
	n.Attach("dst", func(Packet) { received++ })
	const total = 1000
	for i := 0; i < total; i++ {
		n.Send(Packet{To: "dst", Payload: []byte{byte(i)}})
	}
	e.Run()
	s := n.Stats()
	if s.Sent != total || s.Delivered != received || s.Delivered+s.Dropped != total {
		t.Fatalf("stats inconsistent: %+v received=%d", s, received)
	}
	if received < 400 || received > 600 {
		t.Fatalf("received %d of %d at 50%% loss", received, total)
	}
}

func TestDeterministicLoss(t *testing.T) {
	run := func() int {
		e := sim.NewEngine()
		n, _ := New(e, Config{LossRate: 0.3, Seed: 7})
		received := 0
		n.Attach("dst", func(Packet) { received++ })
		for i := 0; i < 200; i++ {
			n.Send(Packet{To: "dst"})
		}
		e.Run()
		return received
	}
	if run() != run() {
		t.Fatal("same seed produced different loss patterns")
	}
}

func TestJitterBounds(t *testing.T) {
	e := sim.NewEngine()
	n, _ := New(e, Config{Latency: 10, Jitter: 5, Seed: 3})
	var times []sim.Ticks
	n.Attach("dst", func(Packet) { times = append(times, e.Now()) })
	for i := 0; i < 50; i++ {
		at := e.Now()
		n.Send(Packet{To: "dst"})
		e.RunUntil(at + 100)
	}
	for _, tt := range times {
		d := tt % 100
		if d < 10 || d >= 15 {
			t.Fatalf("delivery offset %v outside [10,15)", d)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine()
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(e, Config{LossRate: -0.1}); err == nil {
		t.Error("negative loss accepted")
	}
	if _, err := New(e, Config{LossRate: 1.1}); err == nil {
		t.Error("loss > 1 accepted")
	}
	if _, err := New(e, Config{Latency: -1}); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestDetachHandler(t *testing.T) {
	e := sim.NewEngine()
	n, _ := New(e, Config{})
	called := false
	n.Attach("dst", func(Packet) { called = true })
	n.Attach("dst", nil) // detach
	n.Send(Packet{To: "dst"})
	e.Run()
	if called {
		t.Fatal("detached handler called")
	}
	if n.Stats().Dropped != 1 {
		t.Fatal("packet to detached endpoint not counted as dropped")
	}
}
