// Package netsim provides a deterministic simulated datagram network for
// verifier–prover and swarm experiments.
//
// The model is UDP-like, matching the paper's collection transport: framed
// datagrams, configurable one-way latency and loss, no delivery guarantee,
// no ordering guarantee beyond the latency model. Loss is driven by a
// seeded PRNG so every experiment is reproducible.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"

	"erasmus/internal/sim"
)

// Packet is one datagram in flight.
type Packet struct {
	From, To string
	Kind     string // protocol discriminator, e.g. "collect-req"
	Payload  []byte
}

// Handler consumes packets delivered to an endpoint.
type Handler func(Packet)

// Config parameterizes a network.
type Config struct {
	// Latency is the one-way delivery delay. Default 0.
	Latency sim.Ticks
	// Jitter adds a uniform random extra delay in [0, Jitter). Default 0.
	Jitter sim.Ticks
	// LossRate is the probability in [0,1] that a packet is dropped.
	LossRate float64
	// Seed makes loss and jitter deterministic. Default 1.
	Seed int64
}

// Stats counts network activity.
type Stats struct {
	Sent, Delivered, Dropped int
	BytesSent                int
}

// Network is a broadcast-free datagram fabric.
type Network struct {
	engine   *sim.Engine
	cfg      Config
	rng      *rand.Rand
	handlers map[string]Handler
	stats    Stats
}

// New creates a network bound to the engine.
func New(e *sim.Engine, cfg Config) (*Network, error) {
	if e == nil {
		return nil, errors.New("netsim: nil engine")
	}
	if cfg.LossRate < 0 || cfg.LossRate > 1 {
		return nil, fmt.Errorf("netsim: loss rate %v outside [0,1]", cfg.LossRate)
	}
	if cfg.Latency < 0 || cfg.Jitter < 0 {
		return nil, fmt.Errorf("netsim: negative latency/jitter")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Network{
		engine:   e,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(seed)),
		handlers: make(map[string]Handler),
	}, nil
}

// Attach registers (or replaces) the handler for an address.
func (n *Network) Attach(addr string, h Handler) {
	if h == nil {
		delete(n.handlers, addr)
		return
	}
	n.handlers[addr] = h
}

// Send queues a datagram. Unknown destinations and lossy drops are silent,
// exactly like UDP. The payload is copied so sender-side reuse is safe.
func (n *Network) Send(p Packet) {
	n.stats.Sent++
	n.stats.BytesSent += len(p.Payload)
	if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		n.stats.Dropped++
		return
	}
	delay := n.cfg.Latency
	if n.cfg.Jitter > 0 {
		delay += sim.Ticks(n.rng.Int63n(int64(n.cfg.Jitter)))
	}
	payload := append([]byte(nil), p.Payload...)
	n.engine.After(delay, func() {
		h, ok := n.handlers[p.To]
		if !ok {
			n.stats.Dropped++
			return
		}
		n.stats.Delivered++
		h(Packet{From: p.From, To: p.To, Kind: p.Kind, Payload: payload})
	})
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats { return n.stats }
