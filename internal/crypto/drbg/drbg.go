// Package drbg implements an HMAC-DRBG (deterministic random bit generator)
// in the style of NIST SP 800-90A, using HMAC-SHA256.
//
// ERASMUS §3.5 uses a CSPRNG seeded with the shared secret K to derive
// irregular measurement intervals:
//
//	TM_next = map(CSPRNG_K(t_i)), map: x ↦ x mod (U−L) + L
//
// Because both prover and verifier know K, the verifier can recompute the
// expected measurement times while schedule-aware malware (which cannot read
// K) cannot predict them. This package provides the deterministic generator
// plus the interval mapper.
package drbg

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

const outLen = sha256.Size

// DRBG is a deterministic HMAC-SHA256 bit generator. It is NOT safe for
// concurrent use; each prover owns one instance inside its protected
// attestation code.
type DRBG struct {
	k [outLen]byte
	v [outLen]byte
}

// New instantiates the generator from seed material (the device secret K,
// optionally with a personalization string such as the device ID).
func New(seed, personalization []byte) *DRBG {
	d := &DRBG{}
	for i := range d.v {
		d.v[i] = 0x01
	}
	// d.k is zero-initialized per SP 800-90A.
	d.update(seed, personalization)
	return d
}

// update is the HMAC-DRBG Update function with up to two provided-data parts.
func (d *DRBG) update(parts ...[]byte) {
	provided := false
	for _, p := range parts {
		if len(p) > 0 {
			provided = true
		}
	}
	mac := hmac.New(sha256.New, d.k[:])
	mac.Write(d.v[:])
	mac.Write([]byte{0x00})
	for _, p := range parts {
		mac.Write(p)
	}
	copy(d.k[:], mac.Sum(nil))

	mac = hmac.New(sha256.New, d.k[:])
	mac.Write(d.v[:])
	copy(d.v[:], mac.Sum(nil))

	if !provided {
		return
	}
	mac = hmac.New(sha256.New, d.k[:])
	mac.Write(d.v[:])
	mac.Write([]byte{0x01})
	for _, p := range parts {
		mac.Write(p)
	}
	copy(d.k[:], mac.Sum(nil))

	mac = hmac.New(sha256.New, d.k[:])
	mac.Write(d.v[:])
	copy(d.v[:], mac.Sum(nil))
}

// Read fills p with pseudo-random bytes. It never fails.
func (d *DRBG) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		mac := hmac.New(sha256.New, d.k[:])
		mac.Write(d.v[:])
		copy(d.v[:], mac.Sum(nil))
		c := copy(p, d.v[:])
		p = p[c:]
	}
	d.update(nil)
	return n, nil
}

// Uint64 returns the next 64 pseudo-random bits.
func (d *DRBG) Uint64() uint64 {
	var b [8]byte
	d.Read(b[:])
	return binary.BigEndian.Uint64(b[:])
}

// Reseed mixes additional entropy/state into the generator.
func (d *DRBG) Reseed(material []byte) { d.update(material) }

// IntervalMapper maps CSPRNG output x to a measurement interval in
// [L, U): map(x) = x mod (U−L) + L, exactly as in ERASMUS §3.5.
type IntervalMapper struct {
	// L and U are the lower (inclusive) and upper (exclusive) bounds of
	// the generated interval, in the caller's time unit.
	L, U uint64
}

// NewIntervalMapper validates the bounds. U must exceed L and L must be
// positive (a zero interval would schedule back-to-back measurements).
func NewIntervalMapper(l, u uint64) (IntervalMapper, error) {
	if l == 0 {
		return IntervalMapper{}, fmt.Errorf("drbg: lower bound must be positive, got 0")
	}
	if u <= l {
		return IntervalMapper{}, fmt.Errorf("drbg: upper bound %d must exceed lower bound %d", u, l)
	}
	return IntervalMapper{L: l, U: u}, nil
}

// Map applies map: x ↦ x mod (U−L) + L.
func (m IntervalMapper) Map(x uint64) uint64 { return x%(m.U-m.L) + m.L }

// Next draws the next interval from the generator. The paper keys the
// CSPRNG on K and feeds it the current measurement time t_i; we mix t into
// the stream for the same effect (verifier reproducibility given K and t_i).
func (m IntervalMapper) Next(d *DRBG, t uint64) uint64 {
	var tb [8]byte
	binary.BigEndian.PutUint64(tb[:], t)
	d.Reseed(tb[:])
	return m.Map(d.Uint64())
}
