package drbg

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a := New([]byte("seed"), []byte("dev-1"))
	b := New([]byte("seed"), []byte("dev-1"))
	ba := make([]byte, 128)
	bb := make([]byte, 128)
	a.Read(ba)
	b.Read(bb)
	if !bytes.Equal(ba, bb) {
		t.Fatal("same seed produced different streams")
	}
}

func TestSeedSeparation(t *testing.T) {
	a := New([]byte("seed-a"), nil)
	b := New([]byte("seed-b"), nil)
	ba := make([]byte, 64)
	bb := make([]byte, 64)
	a.Read(ba)
	b.Read(bb)
	if bytes.Equal(ba, bb) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestPersonalizationSeparation(t *testing.T) {
	a := New([]byte("seed"), []byte("dev-1"))
	b := New([]byte("seed"), []byte("dev-2"))
	if a.Uint64() == b.Uint64() {
		t.Fatal("different personalization produced identical output")
	}
}

func TestStreamAdvances(t *testing.T) {
	d := New([]byte("seed"), nil)
	x := d.Uint64()
	y := d.Uint64()
	if x == y {
		t.Fatal("consecutive Uint64 outputs identical")
	}
}

func TestReadChunkingEquivalence(t *testing.T) {
	// Reading 64 bytes at once differs from two 32-byte reads in HMAC-DRBG
	// only via the post-read update; within one Read call, chunking of the
	// output buffer is internal. Verify a single large read is internally
	// consistent (deterministic) and nonzero.
	d := New([]byte("seed"), nil)
	buf := make([]byte, 100)
	n, err := d.Read(buf)
	if n != 100 || err != nil {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if bytes.Equal(buf, make([]byte, 100)) {
		t.Fatal("DRBG produced all-zero output")
	}
}

func TestReseedChangesStream(t *testing.T) {
	a := New([]byte("seed"), nil)
	b := New([]byte("seed"), nil)
	a.Reseed([]byte("extra"))
	if a.Uint64() == b.Uint64() {
		t.Fatal("reseed had no effect")
	}
}

func TestNewIntervalMapperValidation(t *testing.T) {
	if _, err := NewIntervalMapper(0, 10); err == nil {
		t.Error("L=0 accepted")
	}
	if _, err := NewIntervalMapper(10, 10); err == nil {
		t.Error("U==L accepted")
	}
	if _, err := NewIntervalMapper(10, 5); err == nil {
		t.Error("U<L accepted")
	}
	if _, err := NewIntervalMapper(5, 10); err != nil {
		t.Errorf("valid bounds rejected: %v", err)
	}
}

func TestMapBounds(t *testing.T) {
	m, _ := NewIntervalMapper(100, 200)
	for _, x := range []uint64{0, 1, 99, 100, 101, 1 << 63, ^uint64(0)} {
		got := m.Map(x)
		if got < 100 || got >= 200 {
			t.Errorf("Map(%d) = %d outside [100,200)", x, got)
		}
	}
}

// Property: Map output always lies in [L, U).
func TestPropertyMapInRange(t *testing.T) {
	f := func(l, span uint32, x uint64) bool {
		lo := uint64(l%1000) + 1
		hi := lo + uint64(span%1000) + 1
		m, err := NewIntervalMapper(lo, hi)
		if err != nil {
			return false
		}
		got := m.Map(x)
		return got >= lo && got < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: prover and verifier derive identical interval sequences from
// the same K and measurement times (the §3.5 reproducibility requirement).
func TestPropertyVerifierReproducibility(t *testing.T) {
	f := func(seed []byte, times []uint32) bool {
		m, _ := NewIntervalMapper(10, 1000)
		prv := New(seed, []byte("dev"))
		vrf := New(seed, []byte("dev"))
		for _, tt := range times {
			if m.Next(prv, uint64(tt)) != m.Next(vrf, uint64(tt)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalDispersion(t *testing.T) {
	// Irregular intervals must actually vary; a constant sequence would be
	// predictable by schedule-aware malware.
	m, _ := NewIntervalMapper(1, 1_000_000)
	d := New([]byte("K"), nil)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[m.Next(d, uint64(i))] = true
	}
	if len(seen) < 32 {
		t.Fatalf("only %d distinct intervals in 64 draws", len(seen))
	}
}
