package mac

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func TestStringNames(t *testing.T) {
	cases := map[Algorithm]string{
		HMACSHA1:     "HMAC-SHA1",
		HMACSHA256:   "HMAC-SHA256",
		KeyedBLAKE2s: "Keyed BLAKE2S",
		Algorithm(9): "Algorithm(9)",
	}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(a), got, want)
		}
	}
}

func TestSizes(t *testing.T) {
	if HMACSHA1.Size() != 20 {
		t.Errorf("HMACSHA1.Size() = %d, want 20", HMACSHA1.Size())
	}
	if HMACSHA256.Size() != 32 {
		t.Errorf("HMACSHA256.Size() = %d", HMACSHA256.Size())
	}
	if KeyedBLAKE2s.Size() != 32 {
		t.Errorf("KeyedBLAKE2s.Size() = %d", KeyedBLAKE2s.Size())
	}
	if HMACSHA1.HashSize() != 20 || HMACSHA256.HashSize() != 32 || KeyedBLAKE2s.HashSize() != 32 {
		t.Error("HashSize mismatch")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	aliases := map[string]Algorithm{
		"sha1": HMACSHA1, "sha256": HMACSHA256, "blake2s": KeyedBLAKE2s,
		"hmac-sha1": HMACSHA1, "hmac-sha256": HMACSHA256, "keyed-blake2s": KeyedBLAKE2s,
	}
	for name, want := range aliases {
		got, err := ParseAlgorithm(name)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseAlgorithm("md5"); err == nil {
		t.Error("ParseAlgorithm(md5) succeeded; want error")
	}
}

func TestValid(t *testing.T) {
	for _, a := range Algorithms() {
		if !a.Valid() {
			t.Errorf("%v.Valid() = false", a)
		}
	}
	if Algorithm(42).Valid() {
		t.Error("Algorithm(42).Valid() = true")
	}
	if Algorithm(0).Valid() {
		t.Error("zero Algorithm must be invalid so configs can default it")
	}
}

// HMAC-SHA256 RFC 4231 test case 2.
func TestHMACSHA256RFC4231(t *testing.T) {
	key := []byte("Jefe")
	msg := []byte("what do ya want for nothing?")
	want, _ := hex.DecodeString("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")
	//erasmus:allow(ctcompare) golden-vector assertion; operands are public test vectors, no timing oracle
	if got := Sum(HMACSHA256, key, msg); !bytes.Equal(got, want) {
		t.Fatalf("HMAC-SHA256 = %x, want %x", got, want)
	}
}

// HMAC-SHA1 RFC 2202 test case 2.
func TestHMACSHA1RFC2202(t *testing.T) {
	key := []byte("Jefe")
	msg := []byte("what do ya want for nothing?")
	want, _ := hex.DecodeString("effcdf6ae5eb2fa2d27416d5f184df9c259a7c79")
	//erasmus:allow(ctcompare) golden-vector assertion; operands are public test vectors, no timing oracle
	if got := Sum(HMACSHA1, key, msg); !bytes.Equal(got, want) {
		t.Fatalf("HMAC-SHA1 = %x, want %x", got, want)
	}
}

func TestSumMatchesNew(t *testing.T) {
	key := []byte("0123456789abcdef")
	msg := []byte("prover memory contents")
	for _, a := range Algorithms() {
		h := New(a, key)
		h.Write(msg)
		//erasmus:allow(ctcompare) determinism assertion on test-generated MACs; no prover-supplied operand, no timing oracle
		if !bytes.Equal(h.Sum(nil), Sum(a, key, msg)) {
			t.Errorf("%v: New+Write+Sum != Sum", a)
		}
	}
}

func TestVerify(t *testing.T) {
	key := []byte("k")
	msg := []byte("m")
	for _, a := range Algorithms() {
		tag := Sum(a, key, msg)
		if !Verify(a, key, msg, tag) {
			t.Errorf("%v: Verify rejected valid tag", a)
		}
		bad := append([]byte(nil), tag...)
		bad[0] ^= 1
		if Verify(a, key, msg, bad) {
			t.Errorf("%v: Verify accepted corrupted tag", a)
		}
		if Verify(a, key, msg, tag[:len(tag)-1]) {
			t.Errorf("%v: Verify accepted truncated tag", a)
		}
		if Verify(a, []byte("other"), msg, tag) {
			t.Errorf("%v: Verify accepted tag under wrong key", a)
		}
	}
}

func TestBLAKE2sLongKeyFolding(t *testing.T) {
	long := bytes.Repeat([]byte{7}, 48) // > 32 bytes
	msg := []byte("m")
	tag := Sum(KeyedBLAKE2s, long, msg)
	if !Verify(KeyedBLAKE2s, long, msg, tag) {
		t.Fatal("long-key BLAKE2s round trip failed")
	}
	// Folding must not equal the truncated-key MAC.
	//erasmus:allow(ctcompare) algorithm-separation assertion on test-generated MACs; no prover-supplied operand, no timing oracle
	if bytes.Equal(tag, Sum(KeyedBLAKE2s, long[:32], msg)) {
		t.Fatal("long key was silently truncated")
	}
}

func TestHashSum(t *testing.T) {
	data := []byte("memory page")
	want := sha256.Sum256(data)
	if got := HashSum(HMACSHA256, data); !bytes.Equal(got, want[:]) {
		t.Fatalf("HashSum(SHA256) = %x, want %x", got, want)
	}
	for _, a := range Algorithms() {
		if len(HashSum(a, data)) != a.HashSize() {
			t.Errorf("%v: HashSum length mismatch", a)
		}
	}
}

func TestUnknownAlgorithmPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(Algorithm(42), nil) },
		func() { Hash(Algorithm(42)) },
		func() { Algorithm(42).Size() },
		func() { Algorithm(42).HashSize() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unknown algorithm did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: Verify(Sum) holds and any bit flip in the message is rejected.
func TestPropertyVerifyRoundTrip(t *testing.T) {
	f := func(key, msg []byte, flip uint16) bool {
		for _, a := range Algorithms() {
			tag := Sum(a, key, msg)
			if !Verify(a, key, msg, tag) {
				return false
			}
			if len(msg) > 0 {
				i := int(flip) % (len(msg) * 8)
				mut := append([]byte(nil), msg...)
				mut[i/8] ^= 1 << (i % 8)
				if Verify(a, key, mut, tag) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Cross-check our registry against direct stdlib construction.
func TestPropertyHMACSHA256MatchesStdlib(t *testing.T) {
	f := func(key, msg []byte) bool {
		h := hmac.New(sha256.New, key)
		h.Write(msg)
		//erasmus:allow(ctcompare) truncation assertion on test-generated MACs; no prover-supplied operand, no timing oracle
		return bytes.Equal(h.Sum(nil), Sum(HMACSHA256, key, msg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
