// Package mac provides the message-authentication-code algorithms used by
// ERASMUS measurements: HMAC-SHA1, HMAC-SHA256 and keyed BLAKE2s.
//
// The paper evaluates all three (Table 1, Figures 6 and 8) but excludes
// HMAC-SHA1 from deployments due to the SHA-1 collision attack; it is kept
// here for the same comparison purposes. Each algorithm also carries the
// per-architecture cost metadata (cycles per byte, code size) used by the
// calibrated run-time models — see internal/costmodel.
package mac

import (
	"crypto/hmac"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"hash"
	"sort"

	"erasmus/internal/crypto/blake2s"
)

// Algorithm identifies a MAC function. The zero value is deliberately
// invalid so that configuration structs can default it.
type Algorithm int

const (
	// HMACSHA1 is HMAC with SHA-1 (comparison only; excluded from
	// deployment in the paper due to the SHAttered collision).
	HMACSHA1 Algorithm = iota + 1
	// HMACSHA256 is HMAC with SHA-256.
	HMACSHA256
	// KeyedBLAKE2s is BLAKE2s in its native keyed mode.
	KeyedBLAKE2s
)

// Algorithms lists all supported algorithms in display order.
func Algorithms() []Algorithm {
	return []Algorithm{HMACSHA1, HMACSHA256, KeyedBLAKE2s}
}

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case HMACSHA1:
		return "HMAC-SHA1"
	case HMACSHA256:
		return "HMAC-SHA256"
	case KeyedBLAKE2s:
		return "Keyed BLAKE2S"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Size returns the MAC output length in bytes.
func (a Algorithm) Size() int {
	switch a {
	case HMACSHA1:
		return sha1.Size
	case HMACSHA256:
		return sha256.Size
	case KeyedBLAKE2s:
		return blake2s.Size
	default:
		panic(fmt.Sprintf("mac: unknown algorithm %d", int(a)))
	}
}

// Valid reports whether a names a supported algorithm.
func (a Algorithm) Valid() bool {
	return a == HMACSHA1 || a == HMACSHA256 || a == KeyedBLAKE2s
}

// ParseAlgorithm resolves a case-sensitive algorithm name as printed by
// String (plus compact aliases used on command lines).
func ParseAlgorithm(name string) (Algorithm, error) {
	switch name {
	case "HMAC-SHA1", "hmac-sha1", "sha1":
		return HMACSHA1, nil
	case "HMAC-SHA256", "hmac-sha256", "sha256":
		return HMACSHA256, nil
	case "Keyed BLAKE2S", "keyed-blake2s", "blake2s":
		return KeyedBLAKE2s, nil
	}
	names := make([]string, 0, 3)
	for _, a := range Algorithms() {
		names = append(names, a.String())
	}
	sort.Strings(names)
	return 0, fmt.Errorf("mac: unknown algorithm %q (supported: %v)", name, names)
}

// New returns a keyed MAC instance for the algorithm. The key is the
// device-unique secret K shared between prover and verifier; per the paper
// it never leaves the protected region of the security architecture.
func New(a Algorithm, key []byte) hash.Hash {
	switch a {
	case HMACSHA1:
		return hmac.New(sha1.New, key)
	case HMACSHA256:
		return hmac.New(sha256.New, key)
	case KeyedBLAKE2s:
		k := key
		if len(k) > blake2s.MaxKeySize {
			// BLAKE2s keys are capped at 32 bytes; fold longer keys the
			// way HMAC folds long keys, by hashing them first.
			sum := blake2s.Sum256(key)
			k = sum[:]
		}
		return blake2s.New256(k)
	default:
		panic(fmt.Sprintf("mac: unknown algorithm %d", int(a)))
	}
}

// Sum computes the one-shot MAC of msg under key.
func Sum(a Algorithm, key, msg []byte) []byte {
	h := New(a, key)
	h.Write(msg)
	return h.Sum(nil)
}

// Verify reports whether tag is the correct MAC of msg under key, in
// constant time with respect to the tag comparison.
func Verify(a Algorithm, key, msg, tag []byte) bool {
	want := Sum(a, key, msg)
	return ConstantTimeEqual(want, tag)
}

// ConstantTimeEqual reports whether a and b are equal in time that
// depends on their lengths but not their contents. It is the comparison
// every check of prover-supplied bytes against stored MAC material or
// verifier chain state must use: a variable-time bytes.Equal leaks the
// position of the first mismatching byte, which is exactly the oracle an
// attacker forging a tag one byte at a time needs. Lengths are public
// (they are fixed by the algorithm), so the early length exit leaks
// nothing.
func ConstantTimeEqual(a, b []byte) bool {
	return len(a) == len(b) && subtle.ConstantTimeCompare(a, b) == 1
}

// Hash returns the un-keyed hash function H used to digest prover memory
// before MACing: M_t = <t, H(mem_t), MAC_K(t, H(mem_t))>. For the HMAC
// variants H is the underlying SHA; for keyed BLAKE2s H is unkeyed BLAKE2s.
func Hash(a Algorithm) hash.Hash {
	switch a {
	case HMACSHA1:
		return sha1.New()
	case HMACSHA256:
		return sha256.New()
	case KeyedBLAKE2s:
		return blake2s.New256(nil)
	default:
		panic(fmt.Sprintf("mac: unknown algorithm %d", int(a)))
	}
}

// HashSize returns the byte length of Hash(a) digests.
func (a Algorithm) HashSize() int {
	switch a {
	case HMACSHA1:
		return sha1.Size
	case HMACSHA256, KeyedBLAKE2s:
		return 32
	default:
		panic(fmt.Sprintf("mac: unknown algorithm %d", int(a)))
	}
}

// HashSum computes the one-shot memory digest H(data).
func HashSum(a Algorithm, data []byte) []byte {
	h := Hash(a)
	h.Write(data)
	return h.Sum(nil)
}
