package blake2s

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"testing"
	"testing/quick"
)

func fromHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// RFC 7693 Appendix B: BLAKE2s-256("abc").
func TestRFC7693ABC(t *testing.T) {
	got := Sum256([]byte("abc"))
	want := fromHex(t, "508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982")
	if !bytes.Equal(got[:], want) {
		t.Fatalf("Sum256(abc) = %x, want %x", got, want)
	}
}

func TestEmptyUnkeyed(t *testing.T) {
	got := Sum256(nil)
	want := fromHex(t, "69217a3079908094e11121d042354a7c1f55b6482ca1a51e1b250dfd1ed0eef9")
	if !bytes.Equal(got[:], want) {
		t.Fatalf("Sum256() = %x, want %x", got, want)
	}
}

// Known-answer tests from the official BLAKE2 reference (blake2s KAT):
// key = 000102...1f (32 bytes), input = 00 01 02 ... (length-prefixed).
func TestKeyedKAT(t *testing.T) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	kats := []string{
		"48a8997da407876b3d79c0d92325ad3b89cbb754d86ab71aee047ad345fd2c49", // len 0
		"40d15fee7c328830166ac3f918650f807e7e01e177258cdc0a39b11f598066f1", // len 1
		"6bb71300644cd3991b26ccd4d274acd1adeab8b1d7914546c1198bbe9fc9d803", // len 2
	}
	for n, want := range kats {
		in := make([]byte, n)
		for i := range in {
			in[i] = byte(i)
		}
		h := New256(key)
		h.Write(in)
		got := h.Sum(nil)
		if hex.EncodeToString(got) != want {
			t.Errorf("keyed KAT len=%d: got %x, want %s", n, got, want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil); err != ErrBadDigestSize {
		t.Errorf("New(0) err = %v, want ErrBadDigestSize", err)
	}
	if _, err := New(33, nil); err != ErrBadDigestSize {
		t.Errorf("New(33) err = %v, want ErrBadDigestSize", err)
	}
	if _, err := New(32, make([]byte, 33)); err != ErrKeyTooLong {
		t.Errorf("New(key=33B) err = %v, want ErrKeyTooLong", err)
	}
	for size := 1; size <= 32; size++ {
		h, err := New(size, nil)
		if err != nil {
			t.Fatalf("New(%d) err = %v", size, err)
		}
		if h.Size() != size {
			t.Errorf("Size() = %d, want %d", h.Size(), size)
		}
		if got := len(h.Sum(nil)); got != size {
			t.Errorf("len(Sum) = %d, want %d", got, size)
		}
	}
}

func TestNew256PanicsOnLongKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New256 with 33-byte key did not panic")
		}
	}()
	New256(make([]byte, 33))
}

func TestBlockSize(t *testing.T) {
	if got := New256(nil).BlockSize(); got != 64 {
		t.Fatalf("BlockSize() = %d, want 64", got)
	}
}

// Sum must not finalize the running state.
func TestSumDoesNotFinalize(t *testing.T) {
	h := New256([]byte("k"))
	h.Write([]byte("hello "))
	first := h.Sum(nil)
	h.Write([]byte("world"))
	second := h.Sum(nil)

	oneShot := New256([]byte("k"))
	oneShot.Write([]byte("hello world"))
	if !bytes.Equal(second, oneShot.Sum(nil)) {
		t.Fatal("Sum finalized the state: continued hash differs from one-shot")
	}
	if bytes.Equal(first, second) {
		t.Fatal("digest did not change after more input")
	}
}

func TestReset(t *testing.T) {
	h := New256([]byte("key material"))
	h.Write([]byte("some data"))
	a := h.Sum(nil)
	h.Reset()
	h.Write([]byte("some data"))
	b := h.Sum(nil)
	if !bytes.Equal(a, b) {
		t.Fatal("Reset did not restore keyed initial state")
	}
}

// TestResetReuseMatchesFresh drives one keyed instance through Reset the
// way a pooled MAC verifier does, across message lengths straddling every
// block-boundary case including the empty message (where the key block
// itself is the final block — the one case the pre-compressed key-block
// snapshot in New must rewind).
func TestResetReuseMatchesFresh(t *testing.T) {
	key := []byte("pooled-mac-regression-key")
	pooled := New256(key)
	msg := make([]byte, 130)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 129, 130} {
		fresh := New256(key)
		fresh.Write(msg[:n])
		want := fresh.Sum(nil)

		pooled.Reset()
		pooled.Write(msg[:n])
		if got := pooled.Sum(nil); !bytes.Equal(got, want) {
			t.Errorf("len=%d: pooled Reset digest %x, fresh %x", n, got, want)
		}
	}
}

func TestSumAppends(t *testing.T) {
	h := New256(nil)
	h.Write([]byte("x"))
	prefix := []byte{0xde, 0xad}
	out := h.Sum(prefix)
	if !bytes.Equal(out[:2], prefix) {
		t.Fatal("Sum did not append to prefix")
	}
	if len(out) != 2+32 {
		t.Fatalf("len(Sum(prefix)) = %d, want 34", len(out))
	}
}

// Multi-block inputs exercise the compression loop across block boundaries.
func TestExactBlockBoundaries(t *testing.T) {
	for _, n := range []int{63, 64, 65, 127, 128, 129, 1000} {
		in := bytes.Repeat([]byte{0xa5}, n)
		one := Sum256(in)
		h := New256(nil)
		h.Write(in[:n/2])
		h.Write(in[n/2:])
		if !bytes.Equal(one[:], h.Sum(nil)) {
			t.Fatalf("chunked != one-shot at n=%d", n)
		}
	}
}

// Property: arbitrary chunking never changes the digest.
func TestPropertyChunkingInvariance(t *testing.T) {
	f := func(data []byte, cuts []uint8) bool {
		want := Sum256(data)
		h := New256(nil)
		rest := data
		for _, c := range cuts {
			if len(rest) == 0 {
				break
			}
			n := int(c) % (len(rest) + 1)
			h.Write(rest[:n])
			rest = rest[n:]
		}
		h.Write(rest)
		return bytes.Equal(want[:], h.Sum(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct keys give distinct MACs (overwhelmingly), and the same
// key gives identical MACs.
func TestPropertyKeySeparation(t *testing.T) {
	f := func(msg, k1, k2 []byte) bool {
		if len(k1) > 32 {
			k1 = k1[:32]
		}
		if len(k2) > 32 {
			k2 = k2[:32]
		}
		h1 := New256(k1)
		h1.Write(msg)
		h1b := New256(k1)
		h1b.Write(msg)
		if !bytes.Equal(h1.Sum(nil), h1b.Sum(nil)) {
			return false
		}
		if bytes.Equal(k1, k2) {
			return true
		}
		h2 := New256(k2)
		h2.Write(msg)
		return !bytes.Equal(h1.Sum(nil), h2.Sum(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single input bit changes the digest.
func TestPropertyBitFlipAvalanche(t *testing.T) {
	f := func(data []byte, pos uint16) bool {
		if len(data) == 0 {
			return true
		}
		i := int(pos) % (len(data) * 8)
		orig := Sum256(data)
		mut := append([]byte(nil), data...)
		mut[i/8] ^= 1 << (i % 8)
		flipped := Sum256(mut)
		return !bytes.Equal(orig[:], flipped[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Large input crossing the 32-bit counter's low-word... not feasible at 4GiB
// in a unit test, but verify the counter increments across many blocks by
// hashing ~1MiB and checking determinism and inequality with truncations.
func TestLargeInput(t *testing.T) {
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i * 2654435761)
	}
	a := Sum256(data)
	b := Sum256(data)
	if a != b {
		t.Fatal("non-deterministic digest")
	}
	c := Sum256(data[:len(data)-1])
	if a == c {
		t.Fatal("truncated input produced identical digest")
	}
}

func TestDigestSizesDiffer(t *testing.T) {
	// The digest size is bound into the parameter block, so a 16-byte
	// digest is not a prefix of the 32-byte digest.
	h16, _ := New(16, nil)
	h16.Write([]byte("abc"))
	full := Sum256([]byte("abc"))
	if bytes.Equal(h16.Sum(nil), full[:16]) {
		t.Fatal("16-byte digest is a prefix of 32-byte digest; parameter block ignored")
	}
}

func BenchmarkSum256_1K(b *testing.B) { benchSize(b, 1024) }
func BenchmarkSum256_8K(b *testing.B) { benchSize(b, 8192) }

func benchSize(b *testing.B, n int) {
	data := make([]byte, n)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}

func Example() {
	h := New256([]byte("shared-key"))
	h.Write([]byte("device memory image"))
	fmt.Printf("%x\n", h.Sum(nil)[:8])
	// Output: 2deaa3d670aeb78c
}
