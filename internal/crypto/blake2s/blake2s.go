// Package blake2s implements the BLAKE2s cryptographic hash and MAC as
// specified in RFC 7693, in pure Go using only the standard library.
//
// BLAKE2s is one of the three MAC choices evaluated in the ERASMUS paper
// (keyed BLAKE2s, alongside HMAC-SHA1 and HMAC-SHA256). The Go standard
// library does not ship BLAKE2s, so this package provides it from scratch.
// It supports arbitrary digest sizes from 1 to 32 bytes and keyed operation
// (keys up to 32 bytes), matching the reference implementation's known
// answer tests.
package blake2s

import (
	"encoding/binary"
	"errors"
	"hash"
)

const (
	// BlockSize is the BLAKE2s block size in bytes.
	BlockSize = 64
	// Size is the default (and maximum) digest size in bytes.
	Size = 32
	// MaxKeySize is the maximum key length in bytes for keyed hashing.
	MaxKeySize = 32
)

// iv is the BLAKE2s initialization vector (identical to SHA-256's H(0)).
var iv = [8]uint32{
	0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
	0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
}

// sigma is the BLAKE2s message schedule: 10 permutations of 0..15.
var sigma = [10][16]byte{
	{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
	{14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3},
	{11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4},
	{7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8},
	{9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13},
	{2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9},
	{12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11},
	{13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10},
	{6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5},
	{10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0},
}

// ErrKeyTooLong is returned when the key exceeds MaxKeySize bytes.
var ErrKeyTooLong = errors.New("blake2s: key longer than 32 bytes")

// ErrBadDigestSize is returned for digest sizes outside [1, 32].
var ErrBadDigestSize = errors.New("blake2s: digest size must be in [1, 32]")

type digest struct {
	h      [8]uint32
	t      [2]uint32 // 64-bit byte counter, low then high word
	buf    [BlockSize]byte
	buflen int

	size   int
	keyLen int
	key    [BlockSize]byte // zero-padded key block, retained for Reset
	hKeyed [8]uint32       // chaining state after compressing the key block
}

// New returns a new hash.Hash computing a BLAKE2s digest of the given size.
// If key is non-empty the hash acts as a MAC (keyed BLAKE2s). The key may be
// at most MaxKeySize bytes and the size must be in [1, Size].
func New(size int, key []byte) (hash.Hash, error) {
	if size < 1 || size > Size {
		return nil, ErrBadDigestSize
	}
	if len(key) > MaxKeySize {
		return nil, ErrKeyTooLong
	}
	d := &digest{size: size, keyLen: len(key)}
	copy(d.key[:], key)
	if len(key) > 0 {
		// Compress the key block once, here: every Reset then resumes
		// from this snapshot instead of re-compressing it, which makes a
		// pooled keyed instance (MAC verify hot paths) one compression
		// cheaper per message. The key block is only the *final* block
		// for an empty message — that rare case is detected and
		// recomputed from d.key in Sum.
		kd := digest{size: size, keyLen: len(key)}
		kd.h = iv
		kd.h[0] ^= uint32(size) | uint32(len(key))<<8 | 1<<16 | 1<<24
		kd.increment(BlockSize)
		kd.compress(d.key[:], false)
		d.hKeyed = kd.h
	}
	d.Reset()
	return d, nil
}

// New256 returns a 32-byte-digest BLAKE2s hash. A non-empty key (≤32 bytes)
// turns it into the keyed MAC used by ERASMUS. New256 panics on an oversized
// key; use New for error returns.
func New256(key []byte) hash.Hash {
	d, err := New(Size, key)
	if err != nil {
		panic(err)
	}
	return d
}

// Sum256 returns the unkeyed BLAKE2s-256 digest of data.
func Sum256(data []byte) [Size]byte {
	d := New256(nil)
	d.Write(data)
	var out [Size]byte
	copy(out[:], d.Sum(nil))
	return out
}

func (d *digest) Reset() {
	d.h = iv
	// Parameter block word 0: digest length, key length, fanout=1, depth=1.
	d.h[0] ^= uint32(d.size) | uint32(d.keyLen)<<8 | 1<<16 | 1<<24
	d.t[0], d.t[1] = 0, 0
	d.buflen = 0
	if d.keyLen > 0 {
		// A keyed hash starts with the zero-padded key as the first
		// block; resume from its pre-compressed chaining state (see New).
		d.h = d.hKeyed
		d.t[0] = BlockSize
	}
}

func (d *digest) Size() int      { return d.size }
func (d *digest) BlockSize() int { return BlockSize }

func (d *digest) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if d.buflen == BlockSize {
			// The buffer only holds a full block when more input follows,
			// so this is never the final block.
			d.increment(BlockSize)
			d.compress(d.buf[:], false)
			d.buflen = 0
		}
		c := copy(d.buf[d.buflen:], p)
		d.buflen += c
		p = p[c:]
	}
	return n, nil
}

func (d *digest) Sum(b []byte) []byte {
	// Finalize a copy so the digest remains usable for further writes.
	c := *d
	if c.keyLen > 0 && c.buflen == 0 && c.t[0] == BlockSize && c.t[1] == 0 {
		// No message bytes were written, so the key block — already
		// compressed non-final by the New/Reset snapshot — is in fact
		// the final block. Rewind and let the normal finalization below
		// compress it with the final flag set.
		c.h = iv
		c.h[0] ^= uint32(c.size) | uint32(c.keyLen)<<8 | 1<<16 | 1<<24
		c.t[0], c.t[1] = 0, 0
		copy(c.buf[:], c.key[:])
		c.buflen = BlockSize
	}
	c.increment(uint32(c.buflen))
	for i := c.buflen; i < BlockSize; i++ {
		c.buf[i] = 0
	}
	c.compress(c.buf[:], true)
	var out [Size]byte
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint32(out[4*i:], c.h[i])
	}
	return append(b, out[:c.size]...)
}

// increment adds n to the 64-bit byte counter.
func (d *digest) increment(n uint32) {
	d.t[0] += n
	if d.t[0] < n {
		d.t[1]++
	}
}

func rotr(x uint32, n uint) uint32 { return x>>n | x<<(32-n) }

// compress applies the BLAKE2s compression function F to one block.
func (d *digest) compress(block []byte, final bool) {
	var m [16]uint32
	for i := range m {
		m[i] = binary.LittleEndian.Uint32(block[4*i:])
	}

	var v [16]uint32
	copy(v[:8], d.h[:])
	copy(v[8:], iv[:])
	v[12] ^= d.t[0]
	v[13] ^= d.t[1]
	if final {
		v[14] ^= 0xffffffff
	}

	g := func(a, b, c, dd int, x, y uint32) {
		v[a] += v[b] + x
		v[dd] = rotr(v[dd]^v[a], 16)
		v[c] += v[dd]
		v[b] = rotr(v[b]^v[c], 12)
		v[a] += v[b] + y
		v[dd] = rotr(v[dd]^v[a], 8)
		v[c] += v[dd]
		v[b] = rotr(v[b]^v[c], 7)
	}

	for r := 0; r < 10; r++ {
		s := &sigma[r]
		g(0, 4, 8, 12, m[s[0]], m[s[1]])
		g(1, 5, 9, 13, m[s[2]], m[s[3]])
		g(2, 6, 10, 14, m[s[4]], m[s[5]])
		g(3, 7, 11, 15, m[s[6]], m[s[7]])
		g(0, 5, 10, 15, m[s[8]], m[s[9]])
		g(1, 6, 11, 12, m[s[10]], m[s[11]])
		g(2, 7, 8, 13, m[s[12]], m[s[13]])
		g(3, 4, 9, 14, m[s[14]], m[s[15]])
	}

	for i := 0; i < 8; i++ {
		d.h[i] ^= v[i] ^ v[i+8]
	}
}
