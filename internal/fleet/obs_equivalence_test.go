package fleet

import (
	"reflect"
	"strings"
	"testing"

	"erasmus/internal/obs"
)

// Instrumentation must be a pure observer: the same seeded lossy scenario
// (infection, store wipe, dark device, 20% datagram loss) run with a full
// observability stack — registry, tracer, event log — must produce alert
// streams, applied reports and final statuses field-identical to the
// uninstrumented run. Metrics change what you can see, never what the
// verifier decides — ISSUE 6's equivalence acceptance criterion.
func TestObservabilityEquivalencePipeline(t *testing.T) {
	plainAlerts, plainReports, plainStatus := runPipelineScenario(t, false)

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(1024)
	events := obs.NewEventLog(256)
	obsAlerts, obsReports, obsStatus := runPipelineScenario(t, false, func(c *ManagerConfig) {
		c.Obs, c.Tracer, c.Events = reg, tracer, events
	})

	if len(plainAlerts) == 0 {
		t.Fatal("scenario produced no alerts; it exercises nothing")
	}
	if !reflect.DeepEqual(plainAlerts, obsAlerts) {
		t.Errorf("alert streams diverge:\nplain: %+v\nobs:   %+v", plainAlerts, obsAlerts)
	}
	if len(plainReports) != len(obsReports) {
		t.Fatalf("report counts diverge: plain %d, obs %d", len(plainReports), len(obsReports))
	}
	for i := range plainReports {
		if !reflect.DeepEqual(plainReports[i], obsReports[i]) {
			t.Fatalf("report %d diverges:\nplain: %+v\nobs:   %+v", i, plainReports[i], obsReports[i])
		}
	}
	if !reflect.DeepEqual(plainStatus, obsStatus) {
		t.Errorf("statuses diverge:\nplain: %+v\nobs:   %+v", plainStatus, obsStatus)
	}

	// The instrumented run must also have *observed* the scenario: every
	// applied report traced, outcomes tallied, alerts mirrored.
	if got := int(tracer.Total()); got < len(obsReports) {
		t.Errorf("tracer recorded %d spans, want at least the %d applied reports", got, len(obsReports))
	}
	applied := reg.Counter("erasmus_fleet_collections_total", "",
		obs.Label{Name: "outcome", Value: "ok"}).Value()
	if applied == 0 {
		t.Error("erasmus_fleet_collections_total{outcome=ok} never incremented")
	}
	alertTotal := uint64(0)
	for _, k := range []AlertKind{AlertInfection, AlertTamper, AlertUnreachable, AlertRecovered} {
		alertTotal += reg.Counter("erasmus_fleet_alerts_total", "",
			obs.Label{Name: "kind", Value: string(k)}).Value()
	}
	if alertTotal != uint64(len(obsAlerts)) {
		t.Errorf("alert counters total %d, want %d (one per alert)", alertTotal, len(obsAlerts))
	}
	if events.Total() != uint64(len(obsAlerts)) {
		t.Errorf("event log holds %d events, want %d (one per alert)", events.Total(), len(obsAlerts))
	}

	// And the exposition must carry the per-shard verify latency series.
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "erasmus_verify_latency_seconds_bucket") {
		t.Error("exposition missing erasmus_verify_latency_seconds buckets")
	}
}
