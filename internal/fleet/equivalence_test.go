package fleet

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/hw/imx6"
	"erasmus/internal/hw/mcu"
	"erasmus/internal/netsim"
	"erasmus/internal/session"
	"erasmus/internal/sim"
	"erasmus/internal/udptransport"
)

// ---- async pipeline vs inline verification -------------------------------

// runPipelineScenario drives one seeded lossy fleet scenario (infection,
// store wipe, dark device, 20% datagram loss) and returns the alert
// stream, every applied report in application order, and final statuses.
func runPipelineScenario(t *testing.T, synchronous bool, mutate ...func(*ManagerConfig)) ([]Alert, []core.Report, map[string]DeviceStatus) {
	t.Helper()
	e := sim.NewEngine()
	nw, err := netsim.New(e, netsim.Config{Latency: 2 * sim.Millisecond, LossRate: 0.2, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	clock := func() uint64 { return mcu.DefaultEpoch + uint64(e.Now()) }
	col, err := NewSimCollector(nw, e, "hq", clock)
	if err != nil {
		t.Fatal(err)
	}
	var reports []core.Report
	cfg := ManagerConfig{
		Engine: e, Collector: col, Clock: clock,
		Synchronous:   synchronous,
		VerifyWorkers: 4,
		BatchLimit:    8,
		OnReport:      func(addr string, rep core.Report) { reports = append(reports, rep) },
	}
	for _, f := range mutate {
		f(&cfg)
	}
	mgr, err := NewManagerWith(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var devs []*mcu.Device
	var provers []*core.Prover
	for i := 0; i < 6; i++ {
		key := []byte(fmt.Sprintf("pipe-device-key-%02d", i))
		dev, err := mcu.New(mcu.Config{
			Engine: e, MemorySize: 1024,
			StoreSize: 16 * core.RecordSize(alg),
			Key:       key,
		})
		if err != nil {
			t.Fatal(err)
		}
		sched, _ := core.NewRegular(sim.Hour)
		p, err := core.NewProver(dev, core.ProverConfig{Alg: alg, Schedule: sched, Slots: 16})
		if err != nil {
			t.Fatal(err)
		}
		addr := fmt.Sprintf("pipe-%02d", i)
		if _, err := session.AttachProver(nw, e, addr, p, alg); err != nil {
			t.Fatal(err)
		}
		err = mgr.Register(DeviceConfig{
			Addr: addr, Key: key, Alg: alg,
			QoA:          core.QoA{TM: sim.Hour, TC: 4 * sim.Hour},
			GoldenHashes: [][]byte{mac.HashSum(alg, dev.Memory())},
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		devs = append(devs, dev)
		provers = append(provers, p)
	}

	e.At(6*sim.Hour, func() { devs[1].WriteMemory(0, []byte("persistent implant")) })
	e.At(9*sim.Hour, func() {
		store := devs[2].Store()
		for i := range store {
			store[i] = 0xFF
		}
	})
	e.At(5*sim.Hour, func() { nw.Attach("pipe-03", nil) })
	e.At(14*sim.Hour, func() {
		if _, err := session.AttachProver(nw, e, "pipe-03", provers[3], alg); err != nil {
			t.Error(err)
		}
	})

	mgr.Start()
	e.RunUntil(30 * sim.Hour)
	mgr.Stop()
	defer mgr.Close()

	statuses := make(map[string]DeviceStatus)
	for _, addr := range mgr.Addresses() {
		st, err := mgr.Status(addr)
		if err != nil {
			t.Fatal(err)
		}
		statuses[addr] = st
	}
	return mgr.Alerts(), reports, statuses
}

// The asynchronous batch-verified pipeline must be verdict-for-verdict and
// alert-for-alert identical to inline verification in the collection
// callback (the pre-pipeline code path): batching changes throughput,
// never outcomes — ISSUE 2's acceptance criterion.
func TestPipelineMatchesInlineVerification(t *testing.T) {
	inlineAlerts, inlineReports, inlineStatus := runPipelineScenario(t, true)
	asyncAlerts, asyncReports, asyncStatus := runPipelineScenario(t, false)

	if len(inlineAlerts) == 0 {
		t.Fatal("scenario produced no alerts; it exercises nothing")
	}
	if !reflect.DeepEqual(inlineAlerts, asyncAlerts) {
		t.Errorf("alert streams diverge:\ninline: %+v\nasync:  %+v", inlineAlerts, asyncAlerts)
	}
	if len(inlineReports) != len(asyncReports) {
		t.Fatalf("report counts diverge: inline %d, async %d", len(inlineReports), len(asyncReports))
	}
	for i := range inlineReports {
		if !reflect.DeepEqual(inlineReports[i], asyncReports[i]) {
			t.Fatalf("report %d diverges:\ninline: %+v\nasync:  %+v", i, inlineReports[i], asyncReports[i])
		}
	}
	if !reflect.DeepEqual(inlineStatus, asyncStatus) {
		t.Errorf("statuses diverge:\ninline: %+v\nasync:  %+v", inlineStatus, asyncStatus)
	}
}

// ---- netsim vs real UDP transport ----------------------------------------

// The transport-equivalence scenario: TM = 60 ms with a 30 ms measurement
// phase keeps every collection tick 30 ms away from every measurement
// tick, so wall-clock jitter on the UDP side can never change which
// records a collection observes. Virtual time is identical on both
// transports, so launch-stamped alerts match field for field.
const (
	eqTM      = 60 * sim.Millisecond
	eqPhase   = 30 * sim.Millisecond
	eqTC      = 240 * sim.Millisecond
	eqHorizon = 1100 * sim.Millisecond
	eqMemory  = 256
	eqSlots   = 8
)

type eqDevice struct {
	addr     string
	key      []byte
	regKey   []byte // key the manager is provisioned with (≠ key ⇒ tamper)
	infected bool   // implant written before the first measurement
}

func eqFleet() []eqDevice {
	mk := func(i int) []byte { return []byte(fmt.Sprintf("eq-device-key-%02d", i)) }
	return []eqDevice{
		{addr: "eq-00", key: mk(0), regKey: mk(0)},
		{addr: "eq-01", key: mk(1), regKey: mk(1), infected: true},
		{addr: "eq-02", key: mk(2), regKey: []byte("provisioning-mismatch")},
		{addr: "eq-03", key: mk(3), regKey: mk(3)},
	}
}

// buildEqProvers constructs the scenario's provers on the given engine and
// returns them with each device's golden (pre-infection) hash. The devices
// are i.MX6-class: at 1 GHz a measurement takes microseconds, so the
// millisecond-scale QoA (needed to wall-pace the UDP run in ~1 s) is
// comfortably feasible.
func buildEqProvers(t *testing.T, e *sim.Engine) (map[string]*core.Prover, map[string][]byte) {
	t.Helper()
	provers := make(map[string]*core.Prover)
	goldens := make(map[string][]byte)
	for _, d := range eqFleet() {
		dev, err := imx6.New(imx6.Config{
			Engine: e, MemorySize: eqMemory,
			StoreSize: eqSlots * core.RecordSize(alg),
			Key:       d.key,
		})
		if err != nil {
			t.Fatal(err)
		}
		goldens[d.addr] = mac.HashSum(alg, dev.Memory())
		if d.infected {
			if err := dev.WriteMemory(0, []byte("wave implant")); err != nil {
				t.Fatal(err)
			}
		}
		sched, err := core.NewRegularWithPhase(eqTM, eqPhase)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.NewProver(dev, core.ProverConfig{Alg: alg, Schedule: sched, Slots: eqSlots})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		provers[d.addr] = p
	}
	return provers, goldens
}

func registerEqFleet(t *testing.T, mgr *Manager, goldens map[string][]byte) {
	t.Helper()
	for _, d := range eqFleet() {
		err := mgr.Register(DeviceConfig{
			Addr: d.addr, Key: d.regKey, Alg: alg,
			QoA:          core.QoA{TM: eqTM, TC: eqTC},
			GoldenHashes: [][]byte{goldens[d.addr]},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func runEqOverSim(t *testing.T) []Alert {
	t.Helper()
	e := sim.NewEngine()
	nw, err := netsim.New(e, netsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	provers, goldens := buildEqProvers(t, e)
	for addr, p := range provers {
		if _, err := session.AttachProver(nw, e, addr, p, alg); err != nil {
			t.Fatal(err)
		}
	}
	clock := func() uint64 { return imx6.DefaultEpoch + uint64(e.Now()) }
	mgr, err := NewManager(e, nw, "hq", clock)
	if err != nil {
		t.Fatal(err)
	}
	registerEqFleet(t, mgr, goldens)
	mgr.Start()
	e.RunUntil(eqHorizon)
	mgr.Stop()
	mgr.Flush()
	defer mgr.Close()
	return mgr.Alerts()
}

func runEqOverUDP(t *testing.T) []Alert {
	t.Helper()
	proverEngine := sim.NewEngine()
	provers, goldens := buildEqProvers(t, proverEngine)
	srv, err := udptransport.ServeFleet("127.0.0.1:0", proverEngine, alg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for addr, p := range provers {
		if err := srv.Host(addr, p); err != nil {
			t.Fatal(err)
		}
	}

	col, err := NewUDPCollector(srv.Addr().String(), len(provers))
	if err != nil {
		t.Fatal(err)
	}
	mgrEngine := sim.NewEngine()
	clock := func() uint64 { return imx6.DefaultEpoch + uint64(mgrEngine.Now()) }
	mgr, err := NewManagerWith(ManagerConfig{Engine: mgrEngine, Collector: col, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	registerEqFleet(t, mgr, goldens)
	mgr.Start()
	PumpRealTime(mgrEngine, eqHorizon, 2*time.Millisecond)
	mgr.Stop()
	mgr.Flush()
	defer mgr.Close()
	return mgr.Alerts()
}

// canonicalAlerts orders a stream for comparison: on the UDP transport the
// interleaving across devices follows socket completion order, but every
// alert's content — launch time, device, kind, detail — is deterministic.
func canonicalAlerts(alerts []Alert) []Alert {
	out := append([]Alert(nil), alerts...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Detail < b.Detail
	})
	return out
}

// The same seeded scenario must produce the identical alert stream over
// the in-process simulated network and over real UDP sockets — ISSUE 2's
// transport-equivalence acceptance criterion. The UDP run takes ~1.1 s of
// wall time (virtual time is wall-paced there).
func TestTransportEquivalence(t *testing.T) {
	simAlerts := canonicalAlerts(runEqOverSim(t))
	udpAlerts := canonicalAlerts(runEqOverUDP(t))

	// Sanity: the scenario must actually exercise both failure classes.
	kinds := map[string]int{}
	for _, a := range simAlerts {
		kinds[a.Device+"/"+string(a.Kind)]++
	}
	if kinds["eq-01/infection"] != 4 {
		t.Errorf("eq-01 infection alerts = %d, want 4 (one per collection)", kinds["eq-01/infection"])
	}
	if kinds["eq-02/tamper"] != 4 {
		t.Errorf("eq-02 tamper alerts = %d, want 4 (one per collection)", kinds["eq-02/tamper"])
	}
	if kinds["eq-00/infection"]+kinds["eq-00/tamper"]+kinds["eq-03/infection"]+kinds["eq-03/tamper"] != 0 {
		t.Errorf("clean devices alerted: %v", kinds)
	}

	if !reflect.DeepEqual(simAlerts, udpAlerts) {
		t.Errorf("alert streams diverge across transports:\nsim: %+v\nudp: %+v", simAlerts, udpAlerts)
	}
}
