package fleet

import (
	"time"

	"erasmus/internal/sim"
)

// PumpRealTime advances an engine against the wall clock — one virtual
// nanosecond per elapsed wall nanosecond — until the engine reaches
// horizon, then returns. This is how a Manager runs over a real-time
// transport (UDPCollector): its collection tickers fire at their exact
// virtual times while the responses arrive on real sockets. step bounds
// the pacing granularity (default 2 ms).
//
// The caller should follow with Manager.Stop and Manager.Flush so
// in-flight round trips resolve before the alert stream is read.
//
// Pacing is relative to the engine's time at entry, so a manager resumed
// from a durable store can pre-position its fresh engine (RunUntil to the
// crash point — instant, nothing is queued) and pump on to the original
// horizon: virtual time continues where the predecessor stopped. horizon
// stays absolute; a horizon at or before e.Now() returns immediately.
//
//erasmus:wallpaced wall-pacing is this function's purpose: it maps one wall nanosecond to one virtual tick
func PumpRealTime(e *sim.Engine, horizon sim.Ticks, step time.Duration) {
	if step <= 0 {
		step = 2 * time.Millisecond
	}
	base := e.Now()
	if horizon <= base {
		return
	}
	start := time.Now()
	for {
		now := base + sim.Ticks(time.Since(start))
		if now >= horizon {
			break
		}
		e.RunUntil(now)
		if remaining := time.Duration(horizon - now); remaining < step {
			time.Sleep(remaining)
		} else {
			time.Sleep(step)
		}
	}
	e.RunUntil(horizon)
}
