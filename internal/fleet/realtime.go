package fleet

import (
	"time"

	"erasmus/internal/sim"
)

// PumpRealTime advances an engine against the wall clock — one virtual
// nanosecond per elapsed wall nanosecond — until the engine reaches
// horizon, then returns. This is how a Manager runs over a real-time
// transport (UDPCollector): its collection tickers fire at their exact
// virtual times while the responses arrive on real sockets. step bounds
// the pacing granularity (default 2 ms).
//
// The caller should follow with Manager.Stop and Manager.Flush so
// in-flight round trips resolve before the alert stream is read.
func PumpRealTime(e *sim.Engine, horizon sim.Ticks, step time.Duration) {
	if step <= 0 {
		step = 2 * time.Millisecond
	}
	start := time.Now()
	for {
		elapsed := sim.Ticks(time.Since(start))
		if elapsed >= horizon {
			break
		}
		e.RunUntil(elapsed)
		if remaining := time.Duration(horizon - elapsed); remaining < step {
			time.Sleep(remaining)
		} else {
			time.Sleep(step)
		}
	}
	e.RunUntil(horizon)
}
