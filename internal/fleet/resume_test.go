package fleet

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"erasmus/internal/core"
	"erasmus/internal/hw/imx6"
	"erasmus/internal/netsim"
	"erasmus/internal/session"
	"erasmus/internal/sim"
	"erasmus/internal/store"
	"erasmus/internal/udptransport"
)

// ---- kill-and-resume equivalence ------------------------------------------
//
// ISSUE 5's acceptance criterion: a fleet run interrupted mid-stream and
// recovered from internal/store must produce an alert stream (and verdict
// sequences) field-identical to an uninterrupted run, with zero spurious
// re-alerts and zero forced full-collection fallbacks after recovery. The
// manager process "dies" between rounds — tickers stopped, in-flight
// verdicts applied and synced, store closed without a snapshot so
// recovery replays the write-ahead log — while the prover devices keep
// running, exactly the deployment reality the store exists for.

// resumeAt is mid-stream: after eq-01's third-round collection (launched
// at 540 ms) and before eq-02's (600 ms), so the crash lands between two
// devices' rounds of the same sweep.
const resumeAt = 550 * sim.Millisecond

// killAndResumeSim runs the delta-equivalence scenario over the simulated
// network, killing the manager at resumeAt and recovering a fresh one from
// the store. Returns the recovered manager's full alert stream (prefix +
// resumed run), the concatenated per-device verdict sequences, and the
// count of post-recovery rounds that fell back to a stateless full
// collection on devices that held a watermark at the crash.
func killAndResumeSim(t *testing.T) ([]Alert, map[string][]verdictSummary, int) {
	t.Helper()
	dir := t.TempDir()
	e := sim.NewEngine()
	nw, err := netsim.New(e, netsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	provers, goldens := buildEqProvers(t, e)
	for addr, p := range provers {
		if _, err := session.AttachProver(nw, e, addr, p, alg); err != nil {
			t.Fatal(err)
		}
	}
	clock := func() uint64 { return imx6.DefaultEpoch + uint64(e.Now()) }
	verdicts := make(map[string][]verdictSummary)
	onReport := func(addr string, rep core.Report) {
		verdicts[addr] = append(verdicts[addr], summarize(rep))
	}

	// Run A: the manager that will die.
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewSimCollector(nw, e, "hq", clock)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManagerWith(ManagerConfig{
		Engine: e, Collector: col, Clock: clock,
		Delta: true, Synchronous: true, Store: st,
		OnReport: onReport,
	})
	if err != nil {
		t.Fatal(err)
	}
	registerEqFleet(t, mgr, goldens)
	mgr.Start()
	e.RunUntil(resumeAt)
	mgr.Stop()
	mgr.Flush()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: a brand-new manager over the reopened store — no snapshot
	// was ever taken, so this is a pure WAL replay.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if ri := st2.Recovery(); ri.RecordsReplayed == 0 {
		t.Fatalf("recovery replayed no WAL records: %+v", ri)
	}
	col2, err := NewSimCollector(nw, e, "hq", clock)
	if err != nil {
		t.Fatal(err)
	}
	fallbacks := 0
	mgr2, err := NewManagerWith(ManagerConfig{
		Engine: e, Collector: col2, Clock: clock,
		Delta: true, Synchronous: true, Store: st2,
		OnReport: func(addr string, rep core.Report) {
			onReport(addr, rep)
			// eq-02's wrong key makes every round tamper + watermark reset,
			// so it is legitimately stateless forever; everything else must
			// resume incrementally from the recovered watermark.
			if addr != "eq-02" && !rep.DeltaApplied {
				fallbacks++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	registerEqFleet(t, mgr2, goldens)
	mgr2.Start()
	e.RunUntil(eqHorizon)
	mgr2.Stop()
	mgr2.Flush()
	defer mgr2.Close()
	return mgr2.Alerts(), verdicts, fallbacks
}

// TestKillAndResumeSim: the recovered run's alert stream and verdict
// sequences are field-identical to an uninterrupted run over the
// simulated network, with zero post-recovery full-collection fallbacks.
func TestKillAndResumeSim(t *testing.T) {
	wantAlerts, wantVerdicts, _ := runDeltaEqSim(t, true)
	gotAlerts, gotVerdicts, fallbacks := killAndResumeSim(t)

	if len(wantAlerts) == 0 {
		t.Fatal("scenario produced no alerts; it exercises nothing")
	}
	if !reflect.DeepEqual(wantAlerts, gotAlerts) {
		t.Errorf("alert streams diverge:\nuninterrupted: %+v\nresumed:       %+v", wantAlerts, gotAlerts)
	}
	if !reflect.DeepEqual(wantVerdicts, gotVerdicts) {
		t.Errorf("verdict sequences diverge:\nuninterrupted: %+v\nresumed:       %+v", wantVerdicts, gotVerdicts)
	}
	if fallbacks != 0 {
		t.Errorf("%d post-recovery rounds fell back to full collection; recovered watermarks are not being used", fallbacks)
	}
}

// TestKillAndResumeUDP: the same interruption over real UDP sockets —
// the prover-side fleet server stays up while the manager dies and a
// recovered one re-dials it — matches the uninterrupted simulated-network
// stream (the deterministic reference, as in TestDeltaEquivalenceUDP).
func TestKillAndResumeUDP(t *testing.T) {
	refAlerts, refVerdicts, _ := runDeltaEqSim(t, true)

	dir := t.TempDir()
	proverEngine := sim.NewEngine()
	provers, goldens := buildEqProvers(t, proverEngine)
	srv, err := udptransport.ServeFleet("127.0.0.1:0", proverEngine, alg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for addr, p := range provers {
		if err := srv.Host(addr, p); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	verdicts := make(map[string][]verdictSummary)
	onReport := func(addr string, rep core.Report) {
		mu.Lock()
		verdicts[addr] = append(verdicts[addr], summarize(rep))
		mu.Unlock()
	}

	// Run A.
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewUDPCollector(srv.Addr().String(), len(provers))
	if err != nil {
		t.Fatal(err)
	}
	mgrEngine := sim.NewEngine()
	clock := func() uint64 { return imx6.DefaultEpoch + uint64(mgrEngine.Now()) }
	mgr, err := NewManagerWith(ManagerConfig{
		Engine: mgrEngine, Collector: col, Clock: clock,
		Delta: true, Store: st, OnReport: onReport,
	})
	if err != nil {
		t.Fatal(err)
	}
	registerEqFleet(t, mgr, goldens)
	mgr.Start()
	PumpRealTime(mgrEngine, resumeAt, 2*time.Millisecond)
	mgr.Stop()
	mgr.Flush()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: fresh engine pre-positioned at the crash point, fresh
	// sockets to the same server, watermarks and anchors from the store.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	col2, err := NewUDPCollector(srv.Addr().String(), len(provers))
	if err != nil {
		t.Fatal(err)
	}
	mgrEngine2 := sim.NewEngine()
	mgrEngine2.RunUntil(resumeAt)
	clock2 := func() uint64 { return imx6.DefaultEpoch + uint64(mgrEngine2.Now()) }
	mgr2, err := NewManagerWith(ManagerConfig{
		Engine: mgrEngine2, Collector: col2, Clock: clock2,
		Delta: true, Store: st2, OnReport: onReport,
	})
	if err != nil {
		t.Fatal(err)
	}
	registerEqFleet(t, mgr2, goldens)
	mgr2.Start()
	PumpRealTime(mgrEngine2, eqHorizon, 2*time.Millisecond)
	mgr2.Stop()
	mgr2.Flush()
	defer mgr2.Close()

	if !reflect.DeepEqual(canonicalAlerts(refAlerts), canonicalAlerts(mgr2.Alerts())) {
		t.Errorf("alert streams diverge:\nuninterrupted sim: %+v\nresumed udp:       %+v",
			canonicalAlerts(refAlerts), canonicalAlerts(mgr2.Alerts()))
	}
	if !reflect.DeepEqual(refVerdicts, verdicts) {
		t.Errorf("verdict sequences diverge:\nuninterrupted sim: %+v\nresumed udp:       %+v",
			refVerdicts, verdicts)
	}
}
