package fleet

import (
	"fmt"
	"sync"
	"time"

	"erasmus/internal/crypto/mac"
	"erasmus/internal/session"
	"erasmus/internal/udptransport"
)

// UDPCollector drives collections over real UDP sockets against a
// udptransport fleet server (many provers on one socket, demuxed by
// device id). Each Collect runs on its own goroutine over a pooled
// socket, so up to the pool size of devices are polled concurrently; the
// callback is invoked from that goroutine.
type UDPCollector struct {
	fc *udptransport.FleetClient

	mu       sync.Mutex
	algs     map[string]mac.Algorithm
	inflight map[string]bool
}

// NewUDPCollector dials a fleet server with a socket pool of the given
// size (the collection concurrency bound; minimum 1).
func NewUDPCollector(server string, poolSize int) (*UDPCollector, error) {
	fc, err := udptransport.DialFleet(server, poolSize)
	if err != nil {
		return nil, err
	}
	return &UDPCollector{
		fc:       fc,
		algs:     make(map[string]mac.Algorithm),
		inflight: make(map[string]bool),
	}, nil
}

// SetRetryBudget overrides the per-attempt timeout and attempt count
// (defaults 500 ms × 3). Call before the first Collect.
func (u *UDPCollector) SetRetryBudget(timeout time.Duration, attempts int) {
	if timeout > 0 {
		u.fc.Timeout = timeout
	}
	if attempts > 0 {
		u.fc.Attempts = attempts
	}
}

// Register records the device's wire algorithm for response decoding.
func (u *UDPCollector) Register(cfg DeviceConfig) error {
	if !cfg.Alg.Valid() {
		return fmt.Errorf("fleet: device %q has invalid algorithm %d", cfg.Addr, int(cfg.Alg))
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, dup := u.algs[cfg.Addr]; dup {
		return fmt.Errorf("fleet: device %q already registered with collector", cfg.Addr)
	}
	u.algs[cfg.Addr] = cfg.Alg
	return nil
}

// Collect fetches the k latest records from the device, asynchronously.
// One collection per device may be outstanding at a time (the Collector
// contract, matching the session transport), which also bounds the
// goroutine count by the fleet size rather than the tick rate.
func (u *UDPCollector) Collect(addr string, k int, cb func(session.CollectResult, error)) error {
	return u.run(addr, cb, func(alg mac.Algorithm) (session.CollectResult, error) {
		recs, err := u.fc.Collect(addr, alg, k)
		return session.CollectResult{Records: recs}, err
	})
}

// CollectDelta fetches the records measured at or after since from the
// device, asynchronously — same contract as Collect.
func (u *UDPCollector) CollectDelta(addr string, since uint64, k int, cb func(session.CollectResult, error)) error {
	return u.run(addr, cb, func(alg mac.Algorithm) (session.CollectResult, error) {
		recs, err := u.fc.CollectDelta(addr, alg, since, k)
		return session.CollectResult{Records: recs}, err
	})
}

// CollectDeltaAggregate fetches the records measured at or after since
// plus the prover's aggregate evidence — same contract as Collect.
func (u *UDPCollector) CollectDeltaAggregate(addr string, since, nonce uint64, anchorHash []byte, k int, cb func(session.CollectResult, error)) error {
	return u.run(addr, cb, func(alg mac.Algorithm) (session.CollectResult, error) {
		recs, state, aggMAC, err := u.fc.CollectDeltaAggregate(addr, alg, since, nonce, anchorHash, k)
		return session.CollectResult{Records: recs, AggState: state, AggMAC: aggMAC}, err
	})
}

// run executes one collection exchange on its own goroutine, enforcing
// the one-outstanding-per-device contract.
func (u *UDPCollector) run(addr string, cb func(session.CollectResult, error), fetch func(mac.Algorithm) (session.CollectResult, error)) error {
	u.mu.Lock()
	alg, ok := u.algs[addr]
	if !ok {
		u.mu.Unlock()
		return fmt.Errorf("fleet: device %q not registered with collector", addr)
	}
	if u.inflight[addr] {
		u.mu.Unlock()
		return fmt.Errorf("fleet: collection to %q already outstanding", addr)
	}
	u.inflight[addr] = true
	u.mu.Unlock()
	go func() {
		res, err := fetch(alg)
		u.mu.Lock()
		delete(u.inflight, addr)
		u.mu.Unlock()
		if err != nil {
			cb(session.CollectResult{Attempts: u.fc.Attempts}, err)
			return
		}
		res.Attempts = 1
		cb(res, nil)
	}()
	return nil
}

// Close releases the socket pool.
func (u *UDPCollector) Close() error { return u.fc.Close() }
