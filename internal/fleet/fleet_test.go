package fleet

import (
	"fmt"
	"testing"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/hw/mcu"
	"erasmus/internal/netsim"
	"erasmus/internal/qoa"
	"erasmus/internal/session"
	"erasmus/internal/sim"
)

const alg = mac.KeyedBLAKE2s

type testbed struct {
	engine  *sim.Engine
	net     *netsim.Network
	manager *Manager
	devs    []*mcu.Device
	provers []*core.Prover
	keys    [][]byte
}

// newTestbed provisions n devices with hourly self-measurement and a
// manager collecting every 4 h.
func newTestbed(t *testing.T, n int, netCfg netsim.Config) *testbed {
	t.Helper()
	e := sim.NewEngine()
	nw, err := netsim.New(e, netCfg)
	if err != nil {
		t.Fatal(err)
	}
	clock := func() uint64 { return mcu.DefaultEpoch + uint64(e.Now()) }
	mgr, err := NewManager(e, nw, "vrf", clock)
	if err != nil {
		t.Fatal(err)
	}
	tb := &testbed{engine: e, net: nw, manager: mgr}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("fleet-device-key-%02d", i))
		dev, err := mcu.New(mcu.Config{
			Engine: e, MemorySize: 1024,
			StoreSize: 16 * core.RecordSize(alg),
			Key:       key,
		})
		if err != nil {
			t.Fatal(err)
		}
		sched, _ := core.NewRegular(sim.Hour)
		p, err := core.NewProver(dev, core.ProverConfig{Alg: alg, Schedule: sched, Slots: 16})
		if err != nil {
			t.Fatal(err)
		}
		addr := fmt.Sprintf("prv-%02d", i)
		if _, err := session.AttachProver(nw, e, addr, p, alg); err != nil {
			t.Fatal(err)
		}
		golden := mac.HashSum(alg, dev.Memory())
		err = mgr.Register(DeviceConfig{
			Addr: addr, Key: key, Alg: alg,
			QoA:          core.QoA{TM: sim.Hour, TC: 4 * sim.Hour},
			GoldenHashes: [][]byte{golden},
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		tb.devs = append(tb.devs, dev)
		tb.provers = append(tb.provers, p)
		tb.keys = append(tb.keys, key)
	}
	return tb
}

func TestRegisterValidation(t *testing.T) {
	e := sim.NewEngine()
	nw, _ := netsim.New(e, netsim.Config{})
	mgr, err := NewManager(e, nw, "vrf", func() uint64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	good := DeviceConfig{
		Addr: "d1", Key: []byte("k"), Alg: alg,
		QoA: core.QoA{TM: sim.Hour, TC: 2 * sim.Hour},
	}
	if err := mgr.Register(good); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register(good); err == nil {
		t.Error("duplicate registration accepted")
	}
	bad := good
	bad.Addr = ""
	if err := mgr.Register(bad); err == nil {
		t.Error("empty address accepted")
	}
	bad = good
	bad.Addr = "d2"
	bad.QoA = core.QoA{}
	if err := mgr.Register(bad); err == nil {
		t.Error("invalid QoA accepted")
	}
	mgr.Start()
	// Fleet churn: registration while running is allowed and schedules
	// the newcomer's collections.
	if err := mgr.Register(DeviceConfig{Addr: "late", Key: []byte("k"), Alg: alg,
		QoA: core.QoA{TM: 1, TC: 1}}); err != nil {
		t.Errorf("Register after Start rejected: %v", err)
	}
	mgr.Stop()
}

func TestManagerConstructorValidation(t *testing.T) {
	e := sim.NewEngine()
	nw, _ := netsim.New(e, netsim.Config{})
	if _, err := NewManager(nil, nw, "v", func() uint64 { return 0 }); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewManager(e, nw, "v", nil); err == nil {
		t.Error("nil clock accepted")
	}
}

func TestHealthyFleet(t *testing.T) {
	tb := newTestbed(t, 5, netsim.Config{Latency: 2 * sim.Millisecond})
	tb.manager.Start()
	tb.engine.RunUntil(25 * sim.Hour)
	tb.manager.Stop()

	if got := tb.manager.HealthyCount(); got != 5 {
		t.Fatalf("healthy = %d/5", got)
	}
	for _, addr := range tb.manager.Addresses() {
		st, err := tb.manager.Status(addr)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Healthy || st.Collections < 5 {
			t.Errorf("%s: %+v", addr, st)
		}
		// Freshness is judged at collection launch; a record measured on
		// the same tick legitimately reads as 0.
		if st.Freshness < 0 || st.Freshness > sim.Hour {
			t.Errorf("%s: freshness %v outside [0, TM]", addr, st.Freshness)
		}
	}
	for _, a := range tb.manager.Alerts() {
		t.Errorf("unexpected alert: %+v", a)
	}
}

func TestInfectionAlert(t *testing.T) {
	tb := newTestbed(t, 3, netsim.Config{})
	// Persist malware on device 1 at t = 6h.
	tb.engine.At(6*sim.Hour, func() {
		tb.devs[1].WriteMemory(0, []byte("persistent implant"))
	})
	tb.manager.Start()
	tb.engine.RunUntil(25 * sim.Hour)
	tb.manager.Stop()

	infected := tb.manager.AlertsFor("prv-01")
	found := false
	for _, a := range infected {
		if a.Kind == AlertInfection {
			found = true
			// Detection within TM + TC of the infection.
			if a.Time < 6*sim.Hour || a.Time > 6*sim.Hour+5*sim.Hour {
				t.Errorf("detection at %v outside the QoA bound", a.Time)
			}
			break
		}
	}
	if !found {
		t.Fatalf("no infection alert for prv-01; alerts: %+v", tb.manager.Alerts())
	}
	// Other devices stay clean.
	for _, addr := range []string{"prv-00", "prv-02"} {
		for _, a := range tb.manager.AlertsFor(addr) {
			if a.Kind == AlertInfection {
				t.Errorf("%s falsely flagged", addr)
			}
		}
	}
	if tb.manager.HealthyCount() != 2 {
		t.Fatalf("healthy = %d, want 2", tb.manager.HealthyCount())
	}
}

func TestTamperAlert(t *testing.T) {
	tb := newTestbed(t, 2, netsim.Config{})
	// Malware zeroes part of device 0's store at 6h (after some records
	// exist), deleting history.
	tb.engine.At(6*sim.Hour, func() {
		store := tb.devs[0].Store()
		for i := range store {
			store[i] = 0
		}
	})
	tb.manager.Start()
	tb.engine.RunUntil(13 * sim.Hour)
	tb.manager.Stop()

	found := false
	for _, a := range tb.manager.AlertsFor("prv-00") {
		if a.Kind == AlertTamper {
			found = true
		}
	}
	if !found {
		t.Fatalf("store wipe not alerted; alerts: %+v", tb.manager.Alerts())
	}
}

func TestUnreachableAndRecovery(t *testing.T) {
	tb := newTestbed(t, 2, netsim.Config{})
	// Device 1 goes dark between 5h and 14h (e.g. radio failure).
	var ep *session.ProverEndpoint
	tb.engine.At(5*sim.Hour, func() {
		tb.net.Attach("prv-01", nil)
	})
	tb.engine.At(14*sim.Hour, func() {
		var err error
		ep, err = session.AttachProver(tb.net, tb.engine, "prv-01", tb.provers[1], alg)
		if err != nil {
			t.Error(err)
		}
	})
	tb.manager.Start()
	tb.engine.RunUntil(25 * sim.Hour)
	tb.manager.Stop()
	_ = ep

	var sawUnreachable bool
	for _, a := range tb.manager.AlertsFor("prv-01") {
		if a.Kind == AlertUnreachable {
			sawUnreachable = true
		}
	}
	if !sawUnreachable {
		t.Fatal("dark period produced no unreachable alert")
	}
	st, _ := tb.manager.Status("prv-01")
	if st.Failures != 0 {
		t.Fatalf("failures not reset after recovery: %+v", st)
	}
	// ERASMUS's point: the dark period's measurements are recovered at
	// the next successful collection — the device ends healthy with a
	// full history.
	if !st.Healthy {
		t.Fatal("device not healthy after recovery")
	}
}

func TestStatusUnknownDevice(t *testing.T) {
	tb := newTestbed(t, 1, netsim.Config{})
	if _, err := tb.manager.Status("nope"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestStartIdempotentStopRestarts(t *testing.T) {
	tb := newTestbed(t, 1, netsim.Config{})
	tb.manager.Start()
	tb.manager.Start() // no-op
	tb.engine.RunUntil(9 * sim.Hour)
	tb.manager.Stop()
	st, _ := tb.manager.Status("prv-00")
	after := st.Collections
	tb.engine.RunUntil(20 * sim.Hour)
	st, _ = tb.manager.Status("prv-00")
	if st.Collections != after {
		t.Fatal("collections continued after Stop")
	}
}

// The qoa package's mobile-malware math holds through the full network
// stack: a dwell shorter than the measurement gap goes unseen.
func TestFleetMissesMobileMalwareAtCoarseTM(t *testing.T) {
	tb := newTestbed(t, 1, netsim.Config{})
	inf := qoa.Infection{Enter: 3*sim.Hour + 35*sim.Minute, Dwell: 20 * sim.Minute}
	tb.engine.At(inf.Enter, func() { tb.devs[0].WriteMemory(0, []byte("ghost")) })
	tb.engine.At(inf.Enter+inf.Dwell, func() {
		tb.devs[0].WriteMemory(0, make([]byte, 5))
	})
	tb.manager.Start()
	tb.engine.RunUntil(25 * sim.Hour)
	tb.manager.Stop()
	for _, a := range tb.manager.Alerts() {
		if a.Kind == AlertInfection {
			t.Fatalf("mobile malware between measurements was flagged: %+v", a)
		}
	}
}

// addDevice provisions one extra prover mid-run and registers it with the
// manager under the given QoA.
func (tb *testbed) addDevice(t *testing.T, addr string, q core.QoA) *mcu.Device {
	t.Helper()
	key := []byte("late-joiner-key-" + addr)
	dev, err := mcu.New(mcu.Config{
		Engine: tb.engine, MemorySize: 1024,
		StoreSize: 16 * core.RecordSize(alg),
		Key:       key,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, _ := core.NewRegular(q.TM)
	p, err := core.NewProver(dev, core.ProverConfig{Alg: alg, Schedule: sched, Slots: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := session.AttachProver(tb.net, tb.engine, addr, p, alg); err != nil {
		t.Fatal(err)
	}
	err = tb.manager.Register(DeviceConfig{
		Addr: addr, Key: key, Alg: alg, QoA: q,
		GoldenHashes: [][]byte{mac.HashSum(alg, dev.Memory())},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	return dev
}

// Regression for the false-tamper warm-up bug: leniency used to be
// measured from the engine epoch, so a device joining mid-run was held to
// the full-history requirement while its buffer was still filling and got
// flagged as tampered. Warm-up must be measured from registration.
func TestLateJoinerWarmupNoFalseTamper(t *testing.T) {
	tb := newTestbed(t, 2, netsim.Config{})
	tb.manager.Start()
	tb.engine.RunUntil(10 * sim.Hour)

	// TC = 3.5 h with TM = 1 h gives k = 4: the first collection happens
	// at device age 3.5 h < k×TM, when only 3 records can exist.
	tb.addDevice(t, "prv-late", core.QoA{TM: sim.Hour, TC: 3*sim.Hour + 30*sim.Minute})
	tb.engine.RunUntil(25 * sim.Hour)
	tb.manager.Stop()

	for _, a := range tb.manager.AlertsFor("prv-late") {
		t.Errorf("late joiner falsely alerted: %+v", a)
	}
	st, err := tb.manager.Status("prv-late")
	if err != nil {
		t.Fatal(err)
	}
	if st.RegisteredAt != 10*sim.Hour {
		t.Errorf("RegisteredAt = %v, want 10h", st.RegisteredAt)
	}
	if !st.Healthy || st.Collections < 3 {
		t.Errorf("late joiner not healthy after warm-up: %+v", st)
	}
}

// One lost collection must not raise an unreachable alert; the threshold
// must, exactly once, flipping the device unhealthy; the next successful
// contact must raise a recovery alert.
func TestUnreachableThresholdAndRecovery(t *testing.T) {
	tb := newTestbed(t, 1, netsim.Config{})
	// prv-00 collects at 4h, 8h, ... Dark only across the 8h collection:
	// a single miss.
	tb.engine.At(7*sim.Hour, func() { tb.net.Attach("prv-00", nil) })
	tb.engine.At(9*sim.Hour, func() {
		if _, err := session.AttachProver(tb.net, tb.engine, "prv-00", tb.provers[0], alg); err != nil {
			t.Error(err)
		}
	})
	// Dark again across 16h and 20h: two consecutive misses.
	tb.engine.At(15*sim.Hour, func() { tb.net.Attach("prv-00", nil) })
	tb.engine.At(21*sim.Hour, func() {
		if _, err := session.AttachProver(tb.net, tb.engine, "prv-00", tb.provers[0], alg); err != nil {
			t.Error(err)
		}
	})
	tb.manager.Start()
	tb.engine.RunUntil(25 * sim.Hour)
	tb.manager.Stop()

	var unreachable, recovered []Alert
	for _, a := range tb.manager.AlertsFor("prv-00") {
		switch a.Kind {
		case AlertUnreachable:
			unreachable = append(unreachable, a)
		case AlertRecovered:
			recovered = append(recovered, a)
		}
	}
	if len(unreachable) != 1 {
		t.Fatalf("unreachable alerts = %+v, want exactly one (at the 20h threshold)", unreachable)
	}
	if unreachable[0].Time != 20*sim.Hour {
		t.Errorf("unreachable at %v, want 20h (the second consecutive miss)", unreachable[0].Time)
	}
	if len(recovered) != 1 || recovered[0].Time != 24*sim.Hour {
		t.Errorf("recovered alerts = %+v, want exactly one at 24h", recovered)
	}
	if tb.manager.HealthyCount() != 1 {
		t.Errorf("device not healthy after recovery")
	}
}

func TestNewManagerWithValidation(t *testing.T) {
	e := sim.NewEngine()
	nw, _ := netsim.New(e, netsim.Config{})
	clock := func() uint64 { return 0 }
	col, err := NewSimCollector(nw, e, "v", clock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewManagerWith(ManagerConfig{Collector: col, Clock: clock}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewManagerWith(ManagerConfig{Engine: e, Clock: clock}); err == nil {
		t.Error("nil collector accepted")
	}
	if _, err := NewManagerWith(ManagerConfig{Engine: e, Collector: col}); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewSimCollector(nil, e, "v", clock); err == nil {
		t.Error("nil network accepted")
	}
	if err := col.Collect("ghost", 1, func(session.CollectResult, error) {}); err == nil {
		t.Error("collect from unregistered device accepted")
	}
}
