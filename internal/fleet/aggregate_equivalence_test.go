package fleet

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"erasmus/internal/core"
	"erasmus/internal/hw/imx6"
	"erasmus/internal/netsim"
	"erasmus/internal/session"
	"erasmus/internal/sim"
	"erasmus/internal/store"
	"erasmus/internal/udptransport"
)

// ---- aggregate tier vs per-record delta verification -----------------------
//
// ISSUE 8's acceptance criterion: with the aggregate tier enabled, the
// fleet alert stream and per-collection verdicts must be field-identical
// to per-record delta verification, over both transports, including after
// a mid-stream crash and store recovery — and mismatching evidence must
// drop to the audit tier without producing any extra alert.

// runAggEqSim drives the delta-equivalence scenario over the simulated
// network with the aggregate tier on, returning the alert stream, verdict
// sequences, the number of rounds closed by the aggregate fast path, and
// the number that fell back to the audit tier.
func runAggEqSim(t *testing.T) ([]Alert, map[string][]verdictSummary, int, int) {
	t.Helper()
	e := sim.NewEngine()
	nw, err := netsim.New(e, netsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	provers, goldens := buildEqProvers(t, e)
	for addr, p := range provers {
		if _, err := session.AttachProver(nw, e, addr, p, alg); err != nil {
			t.Fatal(err)
		}
	}
	clock := func() uint64 { return imx6.DefaultEpoch + uint64(e.Now()) }
	col, err := NewSimCollector(nw, e, "hq", clock)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := make(map[string][]verdictSummary)
	aggRounds, fallbacks := 0, 0
	mgr, err := NewManagerWith(ManagerConfig{
		Engine: e, Collector: col, Clock: clock, Aggregate: true, Synchronous: true,
		OnReport: func(addr string, rep core.Report) {
			verdicts[addr] = append(verdicts[addr], summarize(rep))
			if rep.AggregateApplied {
				aggRounds++
			}
			if rep.AggregateFallback {
				fallbacks++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	registerEqFleet(t, mgr, goldens)
	mgr.Start()
	e.RunUntil(eqHorizon)
	mgr.Stop()
	mgr.Flush()
	defer mgr.Close()
	return mgr.Alerts(), verdicts, aggRounds, fallbacks
}

// The aggregate tier must be invisible in outcomes: alert streams and
// verdict sequences field-identical to per-record delta verification,
// with the fast path doing the bulk of the work and the wrong-key device
// (whose evidence can never authenticate) falling back every round
// without raising anything beyond its usual tamper alerts.
func TestAggregateEquivalenceSim(t *testing.T) {
	deltaAlerts, deltaVerdicts, _ := runDeltaEqSim(t, true)
	aggAlerts, aggVerdicts, aggRounds, fallbacks := runAggEqSim(t)

	if len(deltaAlerts) == 0 {
		t.Fatal("scenario produced no alerts; it exercises nothing")
	}
	if !reflect.DeepEqual(deltaAlerts, aggAlerts) {
		t.Errorf("alert streams diverge:\ndelta:     %+v\naggregate: %+v", deltaAlerts, aggAlerts)
	}
	if !reflect.DeepEqual(deltaVerdicts, aggVerdicts) {
		t.Errorf("verdict sequences diverge:\ndelta:     %+v\naggregate: %+v", deltaVerdicts, aggVerdicts)
	}
	// Sanity: the run genuinely verified through the aggregate tier. Three
	// healthy-key devices × ~4 rounds each inside the horizon.
	if aggRounds < 6 {
		t.Errorf("only %d rounds closed on the aggregate fast path; the tier is not being exercised", aggRounds)
	}
	// eq-02's wrong registration key makes its evidence MAC unverifiable,
	// so each of its rounds is an audit-tier fallback — and nothing else
	// should be falling back in a loss-free scenario.
	if fallbacks == 0 {
		t.Error("wrong-key device produced no audit-tier fallbacks; the fallback path is not being exercised")
	}
	for _, d := range eqFleet() {
		if len(aggVerdicts[d.addr]) == 0 {
			t.Errorf("device %s never verified", d.addr)
		}
	}
}

// runAggEqUDP drives the same scenario over real UDP sockets with the
// aggregate tier on.
func runAggEqUDP(t *testing.T) ([]Alert, map[string][]verdictSummary) {
	t.Helper()
	proverEngine := sim.NewEngine()
	provers, goldens := buildEqProvers(t, proverEngine)
	srv, err := udptransport.ServeFleet("127.0.0.1:0", proverEngine, alg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for addr, p := range provers {
		if err := srv.Host(addr, p); err != nil {
			t.Fatal(err)
		}
	}

	col, err := NewUDPCollector(srv.Addr().String(), len(provers))
	if err != nil {
		t.Fatal(err)
	}
	mgrEngine := sim.NewEngine()
	clock := func() uint64 { return imx6.DefaultEpoch + uint64(mgrEngine.Now()) }
	var mu sync.Mutex
	verdicts := make(map[string][]verdictSummary)
	mgr, err := NewManagerWith(ManagerConfig{
		Engine: mgrEngine, Collector: col, Clock: clock, Aggregate: true,
		OnReport: func(addr string, rep core.Report) {
			mu.Lock()
			verdicts[addr] = append(verdicts[addr], summarize(rep))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	registerEqFleet(t, mgr, goldens)
	mgr.Start()
	PumpRealTime(mgrEngine, eqHorizon, 2*time.Millisecond)
	mgr.Stop()
	mgr.Flush()
	defer mgr.Close()
	return mgr.Alerts(), verdicts
}

// The same holds across transports: the aggregate tier over real UDP
// sockets is field-identical to the aggregate tier over the simulated
// network (and hence, transitively, to per-record delta verification).
func TestAggregateEquivalenceUDP(t *testing.T) {
	simAlerts, simVerdicts, _, _ := runAggEqSim(t)
	udpAlerts, udpVerdicts := runAggEqUDP(t)

	if !reflect.DeepEqual(canonicalAlerts(simAlerts), canonicalAlerts(udpAlerts)) {
		t.Errorf("alert streams diverge across transports:\nsim: %+v\nudp: %+v",
			canonicalAlerts(simAlerts), canonicalAlerts(udpAlerts))
	}
	if !reflect.DeepEqual(simVerdicts, udpVerdicts) {
		t.Errorf("verdict sequences diverge across transports:\nsim: %+v\nudp: %+v",
			simVerdicts, udpVerdicts)
	}
}

// TestKillAndResumeAggregateSim: a mid-stream crash and store recovery
// under the aggregate tier. The recovered watermarks carry the persisted
// chain state, so post-recovery rounds resume on the fast path — no
// re-alerts, no forced stateless collections, and no audit-tier rounds
// beyond the wrong-key device's permanent ones.
func TestKillAndResumeAggregateSim(t *testing.T) {
	wantAlerts, wantVerdicts, _, _ := runAggEqSim(t)

	dir := t.TempDir()
	e := sim.NewEngine()
	nw, err := netsim.New(e, netsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	provers, goldens := buildEqProvers(t, e)
	for addr, p := range provers {
		if _, err := session.AttachProver(nw, e, addr, p, alg); err != nil {
			t.Fatal(err)
		}
	}
	clock := func() uint64 { return imx6.DefaultEpoch + uint64(e.Now()) }
	verdicts := make(map[string][]verdictSummary)
	onReport := func(addr string, rep core.Report) {
		verdicts[addr] = append(verdicts[addr], summarize(rep))
	}

	// Run A: the manager that will die.
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewSimCollector(nw, e, "hq", clock)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManagerWith(ManagerConfig{
		Engine: e, Collector: col, Clock: clock,
		Aggregate: true, Synchronous: true, Store: st,
		OnReport: onReport,
	})
	if err != nil {
		t.Fatal(err)
	}
	registerEqFleet(t, mgr, goldens)
	mgr.Start()
	e.RunUntil(resumeAt)
	mgr.Stop()
	mgr.Flush()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: WAL replay must hand back watermarks WITH chain state.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if ri := st2.Recovery(); ri.RecordsReplayed == 0 {
		t.Fatalf("recovery replayed no WAL records: %+v", ri)
	}
	chained := 0
	for _, d := range eqFleet() {
		if wm, ok := st2.LoadWatermark(d.addr); ok && len(wm.Chain) > 0 {
			chained++
		}
	}
	if chained == 0 {
		t.Fatal("no recovered watermark carries chain state; the aggregate tier cannot resume")
	}
	col2, err := NewSimCollector(nw, e, "hq", clock)
	if err != nil {
		t.Fatal(err)
	}
	auditRounds := 0
	mgr2, err := NewManagerWith(ManagerConfig{
		Engine: e, Collector: col2, Clock: clock,
		Aggregate: true, Synchronous: true, Store: st2,
		OnReport: func(addr string, rep core.Report) {
			onReport(addr, rep)
			// Post-recovery, every healthy-key device must stay on the
			// fast path from its very first round: the recovered chain
			// state is what makes that possible.
			if addr != "eq-02" && !rep.AggregateApplied {
				auditRounds++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	registerEqFleet(t, mgr2, goldens)
	mgr2.Start()
	e.RunUntil(eqHorizon)
	mgr2.Stop()
	mgr2.Flush()
	defer mgr2.Close()

	if !reflect.DeepEqual(wantAlerts, mgr2.Alerts()) {
		t.Errorf("alert streams diverge:\nuninterrupted: %+v\nresumed:       %+v", wantAlerts, mgr2.Alerts())
	}
	if !reflect.DeepEqual(wantVerdicts, verdicts) {
		t.Errorf("verdict sequences diverge:\nuninterrupted: %+v\nresumed:       %+v", wantVerdicts, verdicts)
	}
	if auditRounds != 0 {
		t.Errorf("%d post-recovery rounds left the aggregate fast path; recovered chain state is not being used", auditRounds)
	}
}
