package fleet

import (
	"sync"
	"time"

	"erasmus/internal/core"
	"erasmus/internal/session"
	"erasmus/internal/sim"
)

// pipeJob is one resolved collection travelling from the transport
// callback to per-device state: either a collected history awaiting a
// verdict or a collection failure.
type pipeJob struct {
	dev       *device
	res       session.CollectResult
	err       error
	now       uint64 // verifier clock at launch
	expectedK int
	at        sim.Ticks // launch time, stamped onto alerts
	delta     bool      // incremental verification against wm
	wm        core.Watermark
	agg       bool   // aggregate tier: wm is the challenge anchor
	aggNonce  uint64 // challenge nonce the aggregate MAC must bind
	// unsettledFallback marks a round that fell back to a stateless full
	// collection because a previous verdict was unapplied — the adaptive
	// scheduler's signal that the device is being collected faster than
	// its verdicts settle.
	unsettledFallback bool
	rep               core.Report

	// Observability-only fields, zero when the manager is uninstrumented:
	// submitWall is the wall clock at submission (verdict-lag measurement,
	// span bracket), verifyNanos this job's share of its verification
	// batch's wall time.
	submitWall  int64
	verifyNanos int64
}

// pipeline decouples verification from collection: transport callbacks
// submit into a bounded queue, a dispatcher goroutine drains it in batches
// through a core.BatchVerifier worker pool, and verdicts are re-joined to
// the owning device via VerifyJob.Tag — all in submission order, so the
// alert stream is identical to inline verification while the scheduling
// goroutine never blocks on MAC recomputation.
type pipeline struct {
	m          *Manager
	bv         *core.BatchVerifier
	jobs       chan pipeJob
	batchLimit int
	inline     bool

	mu       sync.Mutex
	cond     *sync.Cond
	inflight int // collections launched, verdict not yet applied
	queued   int // jobs submitted to the queue, not yet applied

	// closeMu fences channel sends against close(): submitters hold the
	// read side across the send, so the channel can never be closed
	// between the closed-check and the send. The dispatcher takes neither
	// side, so a full queue drains normally.
	closeMu sync.RWMutex
	closed  bool
}

func newPipeline(m *Manager, cfg ManagerConfig) *pipeline {
	p := &pipeline{
		m:          m,
		bv:         core.NewBatchVerifier(cfg.VerifyWorkers),
		batchLimit: cfg.BatchLimit,
		inline:     cfg.Synchronous,
	}
	p.bv.Metrics = m.vm
	p.cond = sync.NewCond(&p.mu)
	if !p.inline {
		p.jobs = make(chan pipeJob, cfg.QueueDepth)
		go p.dispatch()
	}
	return p
}

// launched accounts one collection leaving the scheduler.
func (p *pipeline) launched() {
	p.mu.Lock()
	p.inflight++
	p.m.metrics.setInflight(p.inflight)
	p.mu.Unlock()
}

// depths snapshots the queue and in-flight counters (the /healthz signal).
func (p *pipeline) depths() (queued, inflight int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued, p.inflight
}

// submit hands one resolved collection to verification. Safe for
// concurrent use; blocks when the queue is full (backpressure on the
// transport callbacks, never on the scheduler).
//
//erasmus:wallpaced submitWall stamps real queue-entry time for verdict-lag tracing; verdict application order never reads it
func (p *pipeline) submit(j pipeJob) {
	if p.m.metrics != nil || p.m.tracer != nil {
		j.submitWall = time.Now().UnixNano()
	}
	if p.inline {
		p.process([]pipeJob{j})
		p.settle(1, 0)
		return
	}
	p.closeMu.RLock()
	if p.closed {
		p.closeMu.RUnlock()
		p.settle(1, 0) // the launch resolves; the job is dropped
		return
	}
	p.mu.Lock()
	p.queued++
	p.m.metrics.setQueue(p.queued)
	p.mu.Unlock()
	//erasmus:allow(lockflow) closeMu is read-held across the send precisely to exclude Close's write lock: prevents send-on-closed-channel at Stop
	p.jobs <- j
	p.closeMu.RUnlock()
}

func (p *pipeline) dispatch() {
	for j := range p.jobs {
		batch := []pipeJob{j}
	gather:
		for len(batch) < p.batchLimit {
			select {
			case j2, ok := <-p.jobs:
				if !ok {
					break gather
				}
				batch = append(batch, j2)
			default:
				break gather
			}
		}
		p.process(batch)
		p.settle(len(batch), len(batch))
	}
}

// process verifies a batch's successful collections in parallel and
// applies every outcome in submission order.
//
//erasmus:wallpaced per-span verify wall share feeds the tracer; verdicts and their order are clock-free
func (p *pipeline) process(batch []pipeJob) {
	var vjobs []core.VerifyJob
	for i := range batch {
		if batch[i].err == nil {
			vj := core.VerifyJob{
				Verifier:  batch[i].dev.verifier,
				Records:   batch[i].res.Records,
				Now:       batch[i].now,
				ExpectedK: batch[i].expectedK,
				Delta:     batch[i].delta,
				Watermark: batch[i].wm,
				Device:    batch[i].dev.cfg.Addr,
				Tag:       &batch[i],
			}
			if batch[i].agg {
				vj.Aggregate = true
				vj.AggEvidence = core.AggregateEvidence{
					Since:      batch[i].wm.T,
					Nonce:      batch[i].aggNonce,
					AnchorHash: batch[i].wm.Hash,
					State:      batch[i].res.AggState,
					MAC:        batch[i].res.AggMAC,
				}
			}
			vjobs = append(vjobs, vj)
		}
	}
	if len(vjobs) > 0 {
		timed := p.m.metrics != nil || p.m.tracer != nil
		var start time.Time
		if timed {
			start = time.Now()
		}
		reports := p.bv.Verify(vjobs)
		var share int64
		if timed {
			share = time.Since(start).Nanoseconds() / int64(len(vjobs))
		}
		for i := range vjobs {
			pj := vjobs[i].Tag.(*pipeJob)
			pj.rep = reports[i]
			pj.verifyNanos = share
		}
	}
	for i := range batch {
		p.m.applyResult(&batch[i])
	}
}

// settle retires applied jobs from the counters.
func (p *pipeline) settle(inflight, queued int) {
	p.mu.Lock()
	p.inflight -= inflight
	p.queued -= queued
	p.m.metrics.setInflight(p.inflight)
	p.m.metrics.setQueue(p.queued)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// waitQueued blocks until the queue is drained and applied.
func (p *pipeline) waitQueued() {
	p.mu.Lock()
	for p.queued > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// waitInflight blocks until every launched collection has been applied.
func (p *pipeline) waitInflight() {
	p.mu.Lock()
	for p.inflight > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// close shuts the dispatcher down; later submissions are dropped.
func (p *pipeline) close() {
	if p.inline {
		return
	}
	p.closeMu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.closeMu.Unlock()
}
