package fleet

import "erasmus/internal/obs"

// Collection outcomes, as exposed on the
// erasmus_fleet_collections_total{outcome=...} family and on trace spans.
const (
	outcomeOK        = "ok"
	outcomeInfection = "infection"
	outcomeTamper    = "tamper"
	outcomeFailed    = "failed" // transport error, no history collected
)

// fleetMetrics instruments the manager: scheduling pressure (queue depth,
// in-flight collections, wall-clock verdict lag), fleet health gauges and
// per-outcome collection/alert counters. A nil *fleetMetrics is fully
// inert — every method is one nil-check — so an uninstrumented manager is
// behaviorally identical (enforced by the equivalence tests).
type fleetMetrics struct {
	queueDepth    *obs.Gauge
	queueCapacity *obs.Gauge
	inflight      *obs.Gauge

	devices     *obs.Gauge
	unhealthy   *obs.Gauge
	unreachable *obs.Gauge

	// verdictLag is submit→applied wall time: how long a collected history
	// waited in the asynchronous pipeline (including verification) before
	// its verdict reached device state.
	verdictLag *obs.Histogram

	collections map[string]*obs.Counter // by outcome
	alerts      map[AlertKind]*obs.Counter

	// Delta-mode rounds forced to launch as full collections: the device
	// had no current watermark (first contact, or reset after tamper/gap)
	// or a previous verdict was still unapplied (stale watermark).
	fallbackNoWatermark *obs.Counter
	fallbackUnsettled   *obs.Counter

	// sinkError mirrors the attestation service's sticky StateSink
	// failure: 0 healthy, 1 once a watermark write has failed (the store
	// has its own erasmus_store_sticky_error).
	sinkError *obs.Gauge
}

func newFleetMetrics(r *obs.Registry) *fleetMetrics {
	if r == nil {
		return nil
	}
	fm := &fleetMetrics{
		queueDepth: r.Gauge("erasmus_fleet_queue_depth",
			"Histories waiting in the asynchronous verification queue."),
		queueCapacity: r.Gauge("erasmus_fleet_queue_capacity",
			"Bound of the asynchronous verification queue."),
		inflight: r.Gauge("erasmus_fleet_inflight_collections",
			"Collections launched whose verdicts are not yet applied."),
		devices: r.Gauge("erasmus_fleet_devices",
			"Devices registered with the manager."),
		unhealthy: r.Gauge("erasmus_fleet_unhealthy_devices",
			"Devices whose latest verdict or reachability is unhealthy."),
		unreachable: r.Gauge("erasmus_fleet_unreachable_devices",
			"Devices past the consecutive-failure threshold."),
		verdictLag: r.Histogram("erasmus_fleet_verdict_lag_seconds",
			"Wall time from collection callback to verdict applied.", obs.LatencyBuckets),
		collections: make(map[string]*obs.Counter),
		alerts:      make(map[AlertKind]*obs.Counter),
		fallbackNoWatermark: r.Counter("erasmus_fleet_watermark_fallbacks_total",
			"Delta rounds launched as full collections (no current watermark).",
			obs.Label{Name: "reason", Value: "no_watermark"}),
		fallbackUnsettled: r.Counter("erasmus_fleet_watermark_fallbacks_total",
			"Delta rounds launched as full collections (previous verdict unapplied).",
			obs.Label{Name: "reason", Value: "verdict_pending"}),
		sinkError: r.Gauge("erasmus_fleet_sink_error",
			"1 once a watermark StateSink write has failed (sticky)."),
	}
	for _, o := range []string{outcomeOK, outcomeInfection, outcomeTamper, outcomeFailed} {
		fm.collections[o] = r.Counter("erasmus_fleet_collections_total",
			"Applied collection verdicts by outcome.",
			obs.Label{Name: "outcome", Value: o})
	}
	for _, k := range []AlertKind{AlertInfection, AlertTamper, AlertUnreachable, AlertRecovered} {
		fm.alerts[k] = r.Counter("erasmus_fleet_alerts_total",
			"Fleet alerts raised by kind.",
			obs.Label{Name: "kind", Value: string(k)})
	}
	return fm
}

func (fm *fleetMetrics) setQueue(depth int) {
	if fm != nil {
		fm.queueDepth.Set(int64(depth))
	}
}

func (fm *fleetMetrics) setInflight(n int) {
	if fm != nil {
		fm.inflight.Set(int64(n))
	}
}

func (fm *fleetMetrics) deviceAdded(healthy, unreach bool) {
	if fm == nil {
		return
	}
	fm.devices.Add(1)
	if !healthy {
		fm.unhealthy.Add(1)
	}
	if unreach {
		fm.unreachable.Add(1)
	}
}

// transitions folds one verdict's health changes into the fleet gauges.
func (fm *fleetMetrics) transitions(wasHealthy, wasUnreachable, healthy, unreach bool) {
	if fm == nil {
		return
	}
	switch {
	case wasHealthy && !healthy:
		fm.unhealthy.Add(1)
	case !wasHealthy && healthy:
		fm.unhealthy.Add(-1)
	}
	switch {
	case !wasUnreachable && unreach:
		fm.unreachable.Add(1)
	case wasUnreachable && !unreach:
		fm.unreachable.Add(-1)
	}
}

func (fm *fleetMetrics) observeCollection(outcome string, lagSeconds float64) {
	if fm == nil {
		return
	}
	fm.collections[outcome].Inc()
	if lagSeconds >= 0 {
		fm.verdictLag.Observe(lagSeconds)
	}
}

func (fm *fleetMetrics) observeAlert(kind AlertKind) {
	if fm != nil {
		fm.alerts[kind].Inc()
	}
}

func (fm *fleetMetrics) sinkFailed() {
	if fm != nil {
		fm.sinkError.Set(1)
	}
}

func (fm *fleetMetrics) fallback(settled bool) {
	if fm == nil {
		return
	}
	if settled {
		fm.fallbackNoWatermark.Inc()
	} else {
		fm.fallbackUnsettled.Inc()
	}
}
