package fleet

import (
	"errors"
	"fmt"

	"erasmus/internal/netsim"
	"erasmus/internal/session"
	"erasmus/internal/sim"
)

// SimCollector drives collections over the in-process simulated datagram
// network: one session.VerifierClient per registered device, listening on
// "<addr>/<device>", with the session layer's timeout-and-retry budget.
// It is single-threaded by construction — everything happens on the
// simulation engine's goroutine — and is the deterministic reference
// transport the UDP backend is tested against.
type SimCollector struct {
	net    *netsim.Network
	engine *sim.Engine
	addr   string
	clock  func() uint64

	// Timeout and Attempts, when set before Register, override the
	// session defaults (500 ms × 3) for subsequently registered devices.
	Timeout  sim.Ticks
	Attempts int

	clients map[string]*session.VerifierClient
}

// NewSimCollector builds a collector sending from addr.
func NewSimCollector(n *netsim.Network, e *sim.Engine, addr string, clock func() uint64) (*SimCollector, error) {
	if n == nil || e == nil {
		return nil, errors.New("fleet: nil network or engine")
	}
	if clock == nil {
		return nil, errors.New("fleet: clock required")
	}
	return &SimCollector{
		net: n, engine: e, addr: addr, clock: clock,
		clients: make(map[string]*session.VerifierClient),
	}, nil
}

// Register provisions one verifier client for the device.
func (s *SimCollector) Register(cfg DeviceConfig) error {
	if _, dup := s.clients[cfg.Addr]; dup {
		return fmt.Errorf("fleet: device %q already registered with collector", cfg.Addr)
	}
	client, err := session.NewVerifierClient(s.net, s.engine,
		s.addr+"/"+cfg.Addr, cfg.Alg, cfg.Key, s.clock)
	if err != nil {
		return err
	}
	if s.Timeout > 0 {
		client.Timeout = s.Timeout
	}
	if s.Attempts > 0 {
		client.Attempts = s.Attempts
	}
	s.clients[cfg.Addr] = client
	return nil
}

// Collect requests the k latest records from the device.
func (s *SimCollector) Collect(addr string, k int, cb func(session.CollectResult, error)) error {
	client, ok := s.clients[addr]
	if !ok {
		return fmt.Errorf("fleet: device %q not registered with collector", addr)
	}
	return client.Collect(addr, k, cb)
}

// CollectDelta requests the records measured at or after since.
func (s *SimCollector) CollectDelta(addr string, since uint64, k int, cb func(session.CollectResult, error)) error {
	client, ok := s.clients[addr]
	if !ok {
		return fmt.Errorf("fleet: device %q not registered with collector", addr)
	}
	return client.CollectDelta(addr, since, k, cb)
}

// CollectDeltaAggregate requests the records measured at or after since
// plus the prover's aggregate evidence (chain head + one MAC bound to
// since/nonce/anchorHash).
func (s *SimCollector) CollectDeltaAggregate(addr string, since, nonce uint64, anchorHash []byte, k int, cb func(session.CollectResult, error)) error {
	client, ok := s.clients[addr]
	if !ok {
		return fmt.Errorf("fleet: device %q not registered with collector", addr)
	}
	return client.CollectDeltaAggregate(addr, since, nonce, anchorHash, k, cb)
}
