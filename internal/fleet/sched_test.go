package fleet

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/hw/imx6"
	"erasmus/internal/netsim"
	"erasmus/internal/obs"
	"erasmus/internal/session"
	"erasmus/internal/sim"
	"erasmus/internal/store"
)

// ---- adaptive TC controller ----------------------------------------------

// The aging scenario: the device's prover actually measures every 140 ms
// while the manager registered it with TM = 100 ms. Every record pair is
// still inside the verifier's MaxGap (TM + TM/2 = 150 ms), so verdicts
// stay healthy and alert-free — but at every collection the newest record
// sits in the temporal-QoA aging band (110 ms, 160 ms]: evidence is going
// stale faster than the registered schedule assumed. The adaptive
// controller sees aging verdicts round after round and tightens toward
// the TC/2 clamp floor; the fixed schedule keeps collecting every 560 ms.
// An implant written at 2.9 s then measures how much sooner the tightened
// schedule surfaces the infection.
const (
	agTM      = 100 * sim.Millisecond // registered measurement period
	agPeriod  = 140 * sim.Millisecond // the prover's real period
	agPhase   = 20 * sim.Millisecond
	agTC      = 560 * sim.Millisecond // base collection period (4·agPeriod)
	agInfect  = 2900 * sim.Millisecond
	agHorizon = 3600 * sim.Millisecond
)

func runAgingScenario(t *testing.T, adaptive bool, reg *obs.Registry, events *obs.EventLog) ([]Alert, []DeviceSchedule) {
	t.Helper()
	e := sim.NewEngine()
	nw, err := netsim.New(e, netsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("aging-device-key")
	dev, err := imx6.New(imx6.Config{
		Engine: e, MemorySize: 256,
		StoreSize: 8 * core.RecordSize(alg),
		Key:       key,
	})
	if err != nil {
		t.Fatal(err)
	}
	golden := mac.HashSum(alg, dev.Memory())
	// Regular schedules fire at RROC times ≡ phase (mod period), and the
	// RROC runs at DefaultEpoch + sim time — cancel the epoch so records
	// land at sim times ≡ agPhase (mod agPeriod), which puts the newest
	// record 120 ms behind every base-grid collection (the aging band).
	phase := sim.Ticks((imx6.DefaultEpoch + uint64(agPhase)) % uint64(agPeriod))
	sched, err := core.NewRegularWithPhase(agPeriod, phase)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProver(dev, core.ProverConfig{Alg: alg, Schedule: sched, Slots: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := session.AttachProver(nw, e, "age-00", p, alg); err != nil {
		t.Fatal(err)
	}
	clock := func() uint64 { return imx6.DefaultEpoch + uint64(e.Now()) }
	col, err := NewSimCollector(nw, e, "hq", clock)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManagerWith(ManagerConfig{
		Engine: e, Collector: col, Clock: clock,
		Synchronous:      true,
		AdaptiveSchedule: adaptive,
		Obs:              reg,
		Events:           events,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = mgr.Register(DeviceConfig{
		Addr: "age-00", Key: key, Alg: alg,
		QoA:          core.QoA{TM: agTM, TC: agTC},
		GoldenHashes: [][]byte{golden},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	e.At(agInfect, func() {
		if err := dev.WriteMemory(0, []byte("slow-burn implant")); err != nil {
			t.Error(err)
		}
	})
	mgr.Start()
	e.RunUntil(agHorizon)
	mgr.Stop()
	mgr.Flush()
	defer mgr.Close()
	return mgr.Alerts(), mgr.Schedule()
}

func firstAlert(alerts []Alert, kind AlertKind) (sim.Ticks, bool) {
	for _, a := range alerts {
		if a.Kind == kind {
			return a.Time, true
		}
	}
	return 0, false
}

// The tentpole acceptance criterion: with the controller on, a device
// whose evidence ages toward withheld is collected on a tightened
// schedule and its infection is detected measurably earlier than under
// the fixed TC — and every adjustment is visible in Schedule(), the
// sched_adjust event stream, and erasmus_sched_* metrics.
func TestAdaptiveDetectionLatency(t *testing.T) {
	fixedAlerts, fixedSched := runAgingScenario(t, false, nil, nil)
	reg := obs.NewRegistry()
	events := obs.NewEventLog(128)
	adAlerts, adSched := runAgingScenario(t, true, reg, events)

	fixedAt, ok := firstAlert(fixedAlerts, AlertInfection)
	if !ok {
		t.Fatal("fixed-schedule run never detected the implant")
	}
	adAt, ok := firstAlert(adAlerts, AlertInfection)
	if !ok {
		t.Fatal("adaptive run never detected the implant")
	}
	if fixedAt <= agInfect || adAt <= agInfect {
		t.Fatalf("detection before infection? fixed %v, adaptive %v, infected at %v", fixedAt, adAt, agInfect)
	}
	if adAt >= fixedAt {
		t.Fatalf("adaptive detection at %v not earlier than fixed %v", adAt, fixedAt)
	}
	if improvement := fixedAt - adAt; improvement < agTM {
		t.Errorf("improvement %v below one TM (%v); tightening had no real effect", improvement, agTM)
	}
	t.Logf("detection latency from infection: fixed %v, adaptive %v (improvement %v of base TC %v)",
		fixedAt-agInfect, adAt-agInfect, fixedAt-adAt, agTC)

	// Controller off: the schedule is untouched.
	if len(fixedSched) != 1 {
		t.Fatalf("fixed Schedule() = %+v, want 1 device", fixedSched)
	}
	if f := fixedSched[0]; f.EffectiveTC != f.BaseTC || f.Adjustments != 0 || f.LastReason != "" {
		t.Errorf("controller off but schedule moved: %+v", f)
	}

	// Controller on: net-tightened below the base period, driven by aging
	// evidence. (The exact endpoint is the controller's business — once
	// the tightened grid happens to land right after measurements, a
	// fresh streak may hand part of the leniency back.)
	if len(adSched) != 1 || adSched[0].Addr != "age-00" {
		t.Fatalf("adaptive Schedule() = %+v, want age-00 only", adSched)
	}
	s := adSched[0]
	if s.EffectiveTC >= s.BaseTC {
		t.Errorf("effective TC = %d, want below base %d (aging evidence must net-tighten)", s.EffectiveTC, s.BaseTC)
	}
	if s.EffectiveTC < int64(agTC/2) || s.EffectiveTC > 2*int64(agTC) {
		t.Errorf("effective TC = %d escaped the clamp [%d, %d]", s.EffectiveTC, int64(agTC/2), 2*int64(agTC))
	}
	if s.Adjustments < 3 {
		t.Errorf("adjustments = %d, want at least 3 (560→420→315→280 ms)", s.Adjustments)
	}
	if s.LastReason == "" {
		t.Error("last adjustment left no reason")
	}

	// Every adjustment must be visible as a sched_adjust event...
	emitted, agingEvents := 0, 0
	for _, ev := range events.Events() {
		if ev.Kind != "sched_adjust" {
			continue
		}
		emitted++
		if ev.Device != "age-00" || ev.Subsystem != "fleet" {
			t.Errorf("sched_adjust event mis-attributed: %+v", ev)
		}
		if strings.Contains(ev.Detail, schedAging) {
			agingEvents++
		}
	}
	if emitted != s.Adjustments {
		t.Errorf("sched_adjust events = %d, adjustments = %d; decisions are escaping the event feed", emitted, s.Adjustments)
	}
	if agingEvents < 3 {
		t.Errorf("aging-reason events = %d, want at least 3", agingEvents)
	}

	// ...and on the metrics, cell for cell.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	tightened := -1
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, `erasmus_sched_adjustments_total{direction="tighten",reason="aging"}`) {
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &tightened); err != nil {
				t.Fatalf("unparseable counter line %q: %v", line, err)
			}
		}
	}
	if tightened != agingEvents {
		t.Errorf("tighten/aging counter = %d, aging events = %d", tightened, agingEvents)
	}
	if !strings.Contains(b.String(), "erasmus_sched_tc_seconds_count") {
		t.Error("erasmus_sched_tc_seconds histogram missing from exposition")
	}
}

// The controller is a pure integer function of applied verdicts: the same
// seeded scenario must adjust — and alert — identically run over run.
func TestAdaptiveScheduleDeterministic(t *testing.T) {
	alerts1, sched1 := runAgingScenario(t, true, nil, nil)
	alerts2, sched2 := runAgingScenario(t, true, nil, nil)
	if !reflect.DeepEqual(alerts1, alerts2) {
		t.Errorf("adaptive alert streams diverge across identical runs:\n1: %+v\n2: %+v", alerts1, alerts2)
	}
	if !reflect.DeepEqual(sched1, sched2) {
		t.Errorf("adaptive schedules diverge across identical runs:\n1: %+v\n2: %+v", sched1, sched2)
	}
}

// With the controller off — the default — the alert stream is bit
// -identical to the pre-controller fixed-ticker path (which the transport
// , delta and resume equivalence suites pin down); an explicit false must
// mean exactly the same thing as leaving the field zero.
func TestAdaptiveOffLeavesStreamUntouched(t *testing.T) {
	defAlerts, defReports, defStatus := runPipelineScenario(t, true)
	offAlerts, offReports, offStatus := runPipelineScenario(t, true, func(c *ManagerConfig) { c.AdaptiveSchedule = false })
	if len(defAlerts) == 0 {
		t.Fatal("scenario produced no alerts; it exercises nothing")
	}
	if !reflect.DeepEqual(defAlerts, offAlerts) {
		t.Errorf("alert streams diverge:\ndefault:  %+v\nexplicit: %+v", defAlerts, offAlerts)
	}
	if !reflect.DeepEqual(defReports, offReports) {
		t.Error("report sequences diverge between default and explicit-off")
	}
	if !reflect.DeepEqual(defStatus, offStatus) {
		t.Error("statuses diverge between default and explicit-off")
	}
}

// ---- alert streaming fan-out ---------------------------------------------

// A live subscriber sees exactly the alerts Alerts() records, with seqs
// 1..N in order; a slow subscriber keeps the freshest tail and is told
// about the loss; AlertsSince serves every resume cursor without gaps
// inside retained history. Readiness flips only once the first verdict of
// the run has been applied.
func TestAlertStreamFanOut(t *testing.T) {
	e := sim.NewEngine()
	nw, err := netsim.New(e, netsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	provers, goldens := buildEqProvers(t, e)
	for addr, p := range provers {
		if _, err := session.AttachProver(nw, e, addr, p, alg); err != nil {
			t.Fatal(err)
		}
	}
	clock := func() uint64 { return imx6.DefaultEpoch + uint64(e.Now()) }
	col, err := NewSimCollector(nw, e, "hq", clock)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManagerWith(ManagerConfig{
		Engine: e, Collector: col, Clock: clock, Synchronous: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	registerEqFleet(t, mgr, goldens)

	if mgr.Ready() {
		t.Fatal("manager ready before Start")
	}
	live := mgr.WatchAlerts(64)
	slow := mgr.WatchAlerts(1)
	mgr.Start()
	if mgr.Ready() {
		t.Fatal("manager ready before the first verdict applied")
	}
	e.RunUntil(eqHorizon)
	if !mgr.Ready() {
		t.Fatal("manager not ready after a full collection round")
	}
	mgr.Stop()
	mgr.Flush()

	want := mgr.Alerts()
	if len(want) == 0 {
		t.Fatal("scenario produced no alerts; it exercises nothing")
	}
	head := uint64(len(want))

	var got []StreamedAlert
drain:
	for {
		select {
		case sa := <-live.Ch():
			got = append(got, sa)
		default:
			break drain
		}
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d alerts, Alerts() has %d", len(got), len(want))
	}
	for i, sa := range got {
		if sa.Seq != uint64(i)+1 {
			t.Fatalf("streamed seq %d at position %d, want %d", sa.Seq, i, i+1)
		}
		if !reflect.DeepEqual(sa.Alert, want[i]) {
			t.Fatalf("streamed alert %d = %+v, Alerts()[%d] = %+v", i, sa.Alert, i, want[i])
		}
	}
	if live.TakeGap() {
		t.Error("in-budget subscriber latched a gap")
	}

	// The slow subscriber (buffer 1) keeps only the newest alert, with the
	// loss made explicit.
	tail := <-slow.Ch()
	if tail.Seq != head {
		t.Errorf("slow subscriber kept seq %d, want newest %d (drop-oldest violated)", tail.Seq, head)
	}
	if !slow.TakeGap() {
		t.Error("slow subscriber overflow did not latch the gap flag")
	}
	if slow.Drops() != head-1 {
		t.Errorf("slow subscriber drops = %d, want %d", slow.Drops(), head-1)
	}

	// Resume reads: full history, mid-cursor, at-head, and beyond-head.
	all, gap := mgr.AlertsSince(0)
	if gap || len(all) != len(want) {
		t.Fatalf("AlertsSince(0) = %d alerts gap=%v, want %d without gap", len(all), gap, len(want))
	}
	for i, sa := range all {
		if sa.Seq != uint64(i)+1 || !reflect.DeepEqual(sa.Alert, want[i]) {
			t.Fatalf("AlertsSince(0)[%d] = %+v, want seq %d of %+v", i, sa, i+1, want[i])
		}
	}
	mid, gap := mgr.AlertsSince(head - 2)
	if gap || len(mid) != 2 || mid[0].Seq != head-1 || mid[1].Seq != head {
		t.Fatalf("AlertsSince(head-2) = %+v gap=%v, want the last two seqs", mid, gap)
	}
	if alerts, gap := mgr.AlertsSince(head); gap || alerts != nil {
		t.Fatalf("AlertsSince(head) = %+v gap=%v, want empty without gap", alerts, gap)
	}
	if alerts, gap := mgr.AlertsSince(head + 100); gap || alerts != nil {
		t.Fatalf("AlertsSince(beyond head) = %+v gap=%v, want empty without gap", alerts, gap)
	}

	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-live.Ch(); ok {
		t.Fatal("subscription channel still open after manager Close")
	}
	if mgr.WatchAlerts(4) != nil {
		t.Fatal("WatchAlerts on a closed manager returned a live subscription")
	}
}

// A manager recovered over a MaxAlerts-trimmed store continues the
// store's seq numbering: cursors from before the trim get an explicit
// gap, cursors inside retained history resume exactly.
func TestRecoveredManagerAlertCursor(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{MaxAlerts: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 1; i <= 5; i++ {
		ev := store.AlertEvent{Time: int64(i), Device: "d", Kind: "infection", Detail: fmt.Sprintf("a%d", i)}
		if err := st.AppendAlert(ev); err != nil {
			t.Fatal(err)
		}
	}

	e := sim.NewEngine()
	nw, err := netsim.New(e, netsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	clock := func() uint64 { return uint64(e.Now()) }
	col, err := NewSimCollector(nw, e, "hq", clock)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManagerWith(ManagerConfig{
		Engine: e, Collector: col, Clock: clock, Synchronous: true, Store: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	// Seqs 1..2 were trimmed; 3..5 are the retained tail.
	if got := mgr.Alerts(); len(got) != 3 || got[0].Time != 3 || got[2].Time != 5 {
		t.Fatalf("preloaded alerts = %+v, want times 3..5", got)
	}
	evs, gap := mgr.AlertsSince(0)
	if !gap || len(evs) != 3 || evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("AlertsSince(0) = %+v gap=%v, want explicit gap + seqs 3..5", evs, gap)
	}
	// The cursor exactly at the trim boundary resumes without a gap.
	evs, gap = mgr.AlertsSince(2)
	if gap || len(evs) != 3 || evs[0].Seq != 3 {
		t.Fatalf("AlertsSince(2) = %+v gap=%v, want seqs 3..5 without gap", evs, gap)
	}
	evs, gap = mgr.AlertsSince(4)
	if gap || len(evs) != 1 || evs[0].Seq != 5 || evs[0].Detail != "a5" {
		t.Fatalf("AlertsSince(4) = %+v gap=%v, want seq 5 only", evs, gap)
	}
	if evs, gap := mgr.AlertsSince(7); gap || evs != nil {
		t.Fatalf("AlertsSince(beyond head) = %+v gap=%v, want empty without gap", evs, gap)
	}
}
