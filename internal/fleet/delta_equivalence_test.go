package fleet

import (
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/hw/imx6"
	"erasmus/internal/netsim"
	"erasmus/internal/session"
	"erasmus/internal/sim"
	"erasmus/internal/udptransport"
)

// ---- delta collection vs full re-verification ----------------------------
//
// ISSUE 3's acceptance criterion: with delta collection + incremental
// verification enabled, the fleet alert stream and per-collection verdicts
// must be field-identical to full re-verification, over both transports.
// (The record *lists* inside reports differ by design — a delta round
// verifies only the records newer than the watermark — so "verdicts" are
// the per-collection verdict fields, captured as verdictSummary.)

// verdictSummary is the per-collection verdict: every Report field that
// feeds device state and the alert stream.
type verdictSummary struct {
	Tamper, Infection bool
	Missing, Gaps     int
	Freshness         sim.Ticks
	Healthy           bool
	FirstIssue        string
}

func summarize(rep core.Report) verdictSummary {
	return verdictSummary{
		Tamper: rep.TamperDetected, Infection: rep.InfectionDetected,
		Missing: rep.MissingRecords, Gaps: rep.ScheduleGaps,
		Freshness: rep.Freshness, Healthy: rep.Healthy(),
		FirstIssue: firstIssue(rep),
	}
}

// runDeltaEqSim drives the transport-equivalence scenario over the
// simulated network with or without delta collection, returning the alert
// stream, each device's verdict sequence in collection order, and the
// number of rounds that genuinely verified incrementally. Verification
// runs inline (Synchronous): on a virtual-time engine the async
// pipeline's verdicts would lag the instantly-advancing clock, and every
// round would fall back to a full collection — equivalent in outcome, but
// then the incremental path would be exercised by nothing.
func runDeltaEqSim(t *testing.T, delta bool) ([]Alert, map[string][]verdictSummary, int) {
	t.Helper()
	e := sim.NewEngine()
	nw, err := netsim.New(e, netsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	provers, goldens := buildEqProvers(t, e)
	for addr, p := range provers {
		if _, err := session.AttachProver(nw, e, addr, p, alg); err != nil {
			t.Fatal(err)
		}
	}
	clock := func() uint64 { return imx6.DefaultEpoch + uint64(e.Now()) }
	col, err := NewSimCollector(nw, e, "hq", clock)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := make(map[string][]verdictSummary)
	deltaRounds := 0
	mgr, err := NewManagerWith(ManagerConfig{
		Engine: e, Collector: col, Clock: clock, Delta: delta, Synchronous: true,
		OnReport: func(addr string, rep core.Report) {
			verdicts[addr] = append(verdicts[addr], summarize(rep))
			if rep.DeltaApplied {
				deltaRounds++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	registerEqFleet(t, mgr, goldens)
	mgr.Start()
	e.RunUntil(eqHorizon)
	mgr.Stop()
	mgr.Flush()
	defer mgr.Close()
	return mgr.Alerts(), verdicts, deltaRounds
}

// runDeltaEqUDP drives the same scenario over real UDP sockets with delta
// collection enabled.
func runDeltaEqUDP(t *testing.T) ([]Alert, map[string][]verdictSummary) {
	t.Helper()
	proverEngine := sim.NewEngine()
	provers, goldens := buildEqProvers(t, proverEngine)
	srv, err := udptransport.ServeFleet("127.0.0.1:0", proverEngine, alg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for addr, p := range provers {
		if err := srv.Host(addr, p); err != nil {
			t.Fatal(err)
		}
	}

	col, err := NewUDPCollector(srv.Addr().String(), len(provers))
	if err != nil {
		t.Fatal(err)
	}
	mgrEngine := sim.NewEngine()
	clock := func() uint64 { return imx6.DefaultEpoch + uint64(mgrEngine.Now()) }
	var mu sync.Mutex
	verdicts := make(map[string][]verdictSummary)
	mgr, err := NewManagerWith(ManagerConfig{
		Engine: mgrEngine, Collector: col, Clock: clock, Delta: true,
		OnReport: func(addr string, rep core.Report) {
			mu.Lock()
			verdicts[addr] = append(verdicts[addr], summarize(rep))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	registerEqFleet(t, mgr, goldens)
	mgr.Start()
	PumpRealTime(mgrEngine, eqHorizon, 2*time.Millisecond)
	mgr.Stop()
	mgr.Flush()
	defer mgr.Close()
	return mgr.Alerts(), verdicts
}

// Delta collection must be invisible in outcomes on the simulated
// network: alert streams and per-device verdict sequences field-identical
// to stateless full re-verification.
func TestDeltaEquivalenceSim(t *testing.T) {
	fullAlerts, fullVerdicts, fullRounds := runDeltaEqSim(t, false)
	deltaAlerts, deltaVerdicts, deltaRounds := runDeltaEqSim(t, true)

	if len(fullAlerts) == 0 {
		t.Fatal("scenario produced no alerts; it exercises nothing")
	}
	if !reflect.DeepEqual(fullAlerts, deltaAlerts) {
		t.Errorf("alert streams diverge:\nfull:  %+v\ndelta: %+v", fullAlerts, deltaAlerts)
	}
	if !reflect.DeepEqual(fullVerdicts, deltaVerdicts) {
		t.Errorf("verdict sequences diverge:\nfull:  %+v\ndelta: %+v", fullVerdicts, deltaVerdicts)
	}
	// Sanity: the delta run genuinely verified incrementally. The clean
	// and infected devices advance watermarks after their first clean (or
	// authentic-infected) round; only the wrong-key device — whose every
	// round is tampered — stays on stateless full collection. 4 devices ×
	// ~4 rounds in the horizon, minus each device's first (stateless)
	// round and eq-02's permanent fallback ⇒ well over half the rounds.
	if fullRounds != 0 {
		t.Errorf("stateless run reported %d delta rounds", fullRounds)
	}
	if deltaRounds < 6 {
		t.Errorf("delta run verified incrementally only %d rounds; the incremental path is not being exercised", deltaRounds)
	}
	for _, d := range eqFleet() {
		if len(deltaVerdicts[d.addr]) == 0 {
			t.Errorf("device %s never verified", d.addr)
		}
	}
}

// The same holds across transports: delta over real UDP sockets is
// field-identical to delta over the simulated network.
func TestDeltaEquivalenceUDP(t *testing.T) {
	simAlerts, simVerdicts, _ := runDeltaEqSim(t, true)
	udpAlerts, udpVerdicts := runDeltaEqUDP(t)

	if !reflect.DeepEqual(canonicalAlerts(simAlerts), canonicalAlerts(udpAlerts)) {
		t.Errorf("alert streams diverge across transports:\nsim: %+v\nudp: %+v",
			canonicalAlerts(simAlerts), canonicalAlerts(udpAlerts))
	}
	if !reflect.DeepEqual(simVerdicts, udpVerdicts) {
		t.Errorf("verdict sequences diverge across transports:\nsim: %+v\nudp: %+v",
			simVerdicts, udpVerdicts)
	}
}

// Tamper inserted into the already-verified overlap region — the record
// the verifier's watermark points at, modified in the device's store
// after it was verified — must still raise a tamper alert in delta mode,
// through the O(1) anchor equality check.
func TestDeltaFleetOverlapTamperDetected(t *testing.T) {
	e := sim.NewEngine()
	nw, err := netsim.New(e, netsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("overlap-device-key")
	dev, err := imx6.New(imx6.Config{
		Engine: e, MemorySize: eqMemory,
		StoreSize: eqSlots * core.RecordSize(alg),
		Key:       key,
	})
	if err != nil {
		t.Fatal(err)
	}
	golden := mac.HashSum(alg, dev.Memory())
	sched, err := core.NewRegularWithPhase(eqTM, eqPhase)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProver(dev, core.ProverConfig{Alg: alg, Schedule: sched, Slots: eqSlots})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	if _, err := session.AttachProver(nw, e, "ov-00", p, alg); err != nil {
		t.Fatal(err)
	}
	clock := func() uint64 { return imx6.DefaultEpoch + uint64(e.Now()) }
	col, err := NewSimCollector(nw, e, "hq", clock)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManagerWith(ManagerConfig{
		Engine: e, Collector: col, Clock: clock, Delta: true, Synchronous: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = mgr.Register(DeviceConfig{
		Addr: "ov-00", Key: key, Alg: alg,
		QoA:          core.QoA{TM: eqTM, TC: eqTC},
		GoldenHashes: [][]byte{golden},
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr.Start()

	// The first collection (launched at TC) verifies cleanly and leaves
	// the watermark at the then-newest record. Between rounds, malware
	// flips one byte of exactly that record in the insecure store.
	e.At(eqTC+eqTM, func() {
		anchorT := p.LastMeasurementTime() - uint64(eqTM) // newest at round 1
		slot := p.Buffer().SlotForTime(anchorT, eqTM)
		store := dev.Store()
		off := slot*core.RecordSize(alg) + 8 + alg.HashSize() // first MAC byte
		store[off] ^= 0x40
	})

	e.RunUntil(3*eqTC + eqTM)
	mgr.Stop()
	mgr.Flush()
	defer mgr.Close()

	// Note the contrast with a stateless verifier: by the second
	// collection the tampered record has rotated out of the k newest, so
	// full re-verification would never re-ship it and the manipulation
	// would go entirely unnoticed. The watermark equality check is what
	// detects it.
	alerts := mgr.Alerts()
	sort.Slice(alerts, func(i, j int) bool { return alerts[i].Time < alerts[j].Time })
	var tamper *Alert
	for i := range alerts {
		if alerts[i].Kind == AlertTamper {
			tamper = &alerts[i]
			break
		}
	}
	if tamper == nil {
		t.Fatalf("overlap tamper raised no alert: %+v", alerts)
	}
	if tamper.Time != 2*eqTC {
		t.Errorf("tamper alert at %v, want the second collection (%v)", tamper.Time, 2*eqTC)
	}
	if !strings.Contains(tamper.Detail, "modified since last verification") {
		t.Errorf("alert detail %q does not name the watermark equality check", tamper.Detail)
	}

	// The fallback then re-establishes state: the tamper reset the
	// watermark, the third round is a stateless full collection of four
	// younger (clean) records, and the device recovers.
	want := []AlertKind{AlertTamper, AlertRecovered}
	got := make([]AlertKind, len(alerts))
	for i, a := range alerts {
		got[i] = a.Kind
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("alert kinds %v, want %v", got, want)
	}
}
