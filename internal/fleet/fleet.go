// Package fleet is the verifier-side operations layer for a population of
// unattended ERASMUS provers: per-device keys and QoA policies, staggered
// collection scheduling over the lossy network, report history, and an
// alert stream (infection, tampering, unreachable device).
//
// The paper's verifier is deliberately thin — ERASMUS moves all the state
// to the prover — but any real deployment needs exactly this bookkeeping:
// who to poll, when, with which key, and what to do with the verdicts.
package fleet

import (
	"errors"
	"fmt"
	"sort"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/netsim"
	"erasmus/internal/session"
	"erasmus/internal/sim"
)

// AlertKind classifies fleet events.
type AlertKind string

// Alert kinds raised by the manager.
const (
	AlertInfection   AlertKind = "infection"
	AlertTamper      AlertKind = "tamper"
	AlertUnreachable AlertKind = "unreachable"
	AlertRecovered   AlertKind = "recovered"
)

// Alert is one fleet event.
type Alert struct {
	Time   sim.Ticks
	Device string
	Kind   AlertKind
	Detail string
}

// DeviceConfig registers one prover with the manager.
type DeviceConfig struct {
	// Addr is the device's network address.
	Addr string
	// Key is the device-unique secret shared at provisioning.
	Key []byte
	// Alg is the device's measurement MAC.
	Alg mac.Algorithm
	// QoA sets TM (the device's measurement period, needed to judge
	// schedule gaps and freshness) and TC (how often to collect).
	QoA core.QoA
	// GoldenHashes whitelists the device's sanctioned memory states.
	GoldenHashes [][]byte
}

// DeviceStatus summarizes one device for dashboards.
type DeviceStatus struct {
	Addr        string
	LastContact sim.Ticks
	Healthy     bool
	Freshness   sim.Ticks
	Collections int
	Failures    int // consecutive unanswered collections
}

type device struct {
	cfg      DeviceConfig
	verifier *core.Verifier
	client   *session.VerifierClient
	stop     func()

	lastContact sim.Ticks
	healthy     bool
	freshness   sim.Ticks
	collections int
	failures    int
}

// Manager runs the fleet.
type Manager struct {
	engine *sim.Engine
	net    *netsim.Network
	addr   string
	clock  func() uint64

	devices map[string]*device
	alerts  []Alert
	started bool
}

// NewManager builds a fleet manager communicating from addr. clock is the
// verifier's time base (loosely synchronized with device RROCs), used for
// freshness judgments and on-demand requests.
func NewManager(e *sim.Engine, n *netsim.Network, addr string, clock func() uint64) (*Manager, error) {
	if e == nil || n == nil {
		return nil, errors.New("fleet: nil engine or network")
	}
	if clock == nil {
		return nil, errors.New("fleet: clock required")
	}
	return &Manager{
		engine: e, net: n, addr: addr, clock: clock,
		devices: make(map[string]*device),
	}, nil
}

// Register adds a device. Must be called before Start.
func (m *Manager) Register(cfg DeviceConfig) error {
	if m.started {
		return errors.New("fleet: Register after Start")
	}
	if cfg.Addr == "" {
		return errors.New("fleet: device address required")
	}
	if _, dup := m.devices[cfg.Addr]; dup {
		return fmt.Errorf("fleet: device %q already registered", cfg.Addr)
	}
	if err := cfg.QoA.Validate(); err != nil {
		return err
	}
	vrf, err := core.NewVerifier(core.VerifierConfig{
		Alg: cfg.Alg, Key: cfg.Key,
		GoldenHashes: cfg.GoldenHashes,
		MinGap:       cfg.QoA.TM - cfg.QoA.TM/10,
		MaxGap:       cfg.QoA.TM + cfg.QoA.TM/2,
	})
	if err != nil {
		return err
	}
	client, err := session.NewVerifierClient(m.net, m.engine,
		m.addr+"/"+cfg.Addr, cfg.Alg, cfg.Key, m.clock)
	if err != nil {
		return err
	}
	m.devices[cfg.Addr] = &device{cfg: cfg, verifier: vrf, client: client, healthy: true}
	return nil
}

// Start schedules collections: device i of n is polled every TC with phase
// i×TC/n, spreading verifier traffic (and prover buffer pressure) evenly.
func (m *Manager) Start() {
	if m.started {
		return
	}
	m.started = true
	addrs := m.Addresses()
	for i, addr := range addrs {
		dev := m.devices[addr]
		phase := sim.Ticks(int64(dev.cfg.QoA.TC) * int64(i) / int64(len(addrs)))
		dev.stop = m.engine.Ticker(m.engine.Now()+phase+dev.cfg.QoA.TC, dev.cfg.QoA.TC, func() {
			m.collect(dev)
		})
	}
}

// Stop cancels all scheduled collections.
func (m *Manager) Stop() {
	for _, d := range m.devices {
		if d.stop != nil {
			d.stop()
			d.stop = nil
		}
	}
	m.started = false
}

func (m *Manager) collect(d *device) {
	k := d.cfg.QoA.RecordsPerCollection()
	err := d.client.Collect(d.cfg.Addr, k, func(res session.CollectResult, err error) {
		if err != nil {
			d.failures++
			m.alert(d, AlertUnreachable, fmt.Sprintf("%d attempts failed", res.Attempts))
			return
		}
		d.failures = 0
		d.lastContact = m.engine.Now()
		d.collections++
		// Skip the length check during warm-up: a device younger than
		// k×TM cannot have a full history yet.
		expected := k
		if m.engine.Now() < sim.Ticks(k)*d.cfg.QoA.TM {
			expected = 0
		}
		rep := d.verifier.VerifyHistory(res.Records, m.clock(), expected)
		d.freshness = rep.Freshness
		wasHealthy := d.healthy
		d.healthy = rep.Healthy()
		switch {
		case rep.InfectionDetected:
			m.alert(d, AlertInfection, firstIssue(rep))
		case rep.TamperDetected:
			m.alert(d, AlertTamper, firstIssue(rep))
		case !wasHealthy && d.healthy:
			m.alert(d, AlertRecovered, "history healthy again")
		}
	})
	if err != nil {
		// A previous collection is still outstanding (device very slow or
		// TC shorter than the timeout budget); count it as a failure.
		d.failures++
	}
}

func firstIssue(rep core.Report) string {
	if len(rep.Issues) == 0 {
		return ""
	}
	return rep.Issues[0]
}

func (m *Manager) alert(d *device, kind AlertKind, detail string) {
	m.alerts = append(m.alerts, Alert{
		Time: m.engine.Now(), Device: d.cfg.Addr, Kind: kind, Detail: detail,
	})
}

// Alerts returns all recorded alerts in order.
func (m *Manager) Alerts() []Alert { return append([]Alert(nil), m.alerts...) }

// AlertsFor filters alerts by device address.
func (m *Manager) AlertsFor(addr string) []Alert {
	var out []Alert
	for _, a := range m.alerts {
		if a.Device == addr {
			out = append(out, a)
		}
	}
	return out
}

// Addresses lists registered devices, sorted.
func (m *Manager) Addresses() []string {
	out := make([]string, 0, len(m.devices))
	for addr := range m.devices {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// Status reports one device's dashboard line.
func (m *Manager) Status(addr string) (DeviceStatus, error) {
	d, ok := m.devices[addr]
	if !ok {
		return DeviceStatus{}, fmt.Errorf("fleet: unknown device %q", addr)
	}
	return DeviceStatus{
		Addr:        addr,
		LastContact: d.lastContact,
		Healthy:     d.healthy,
		Freshness:   d.freshness,
		Collections: d.collections,
		Failures:    d.failures,
	}, nil
}

// HealthyCount returns how many devices currently have healthy histories.
func (m *Manager) HealthyCount() int {
	n := 0
	for _, d := range m.devices {
		if d.healthy {
			n++
		}
	}
	return n
}
