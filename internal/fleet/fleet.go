// Package fleet is the verifier-side operations layer for a population of
// unattended ERASMUS provers: per-device keys and QoA policies, staggered
// collection scheduling, report history, and an alert stream (infection,
// tampering, unreachable device).
//
// The paper's verifier is deliberately thin — ERASMUS moves all the state
// to the prover — but any real deployment needs exactly this bookkeeping:
// who to poll, when, with which key, and what to do with the verdicts.
//
// Collection is transport-pluggable: the Manager drives any Collector
// (the in-process simulated network via SimCollector, real UDP sockets
// via UDPCollector) and never blocks its scheduling goroutine on MAC
// recomputation — collected histories flow through a bounded asynchronous
// queue into a core.BatchVerifier worker pool, and verdicts are re-joined
// to per-device state in submission order. The alert stream is therefore
// identical for any transport driving the same scenario, and identical
// whether verification runs inline or batched (both enforced by tests).
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/netsim"
	"erasmus/internal/obs"
	"erasmus/internal/session"
	"erasmus/internal/sim"
	"erasmus/internal/store"
)

// AlertKind classifies fleet events.
type AlertKind string

// Alert kinds raised by the manager.
const (
	AlertInfection   AlertKind = "infection"
	AlertTamper      AlertKind = "tamper"
	AlertUnreachable AlertKind = "unreachable"
	AlertRecovered   AlertKind = "recovered"
)

// Alert is one fleet event. Time is the virtual time the triggering
// collection was launched — not when the verdict was computed — so the
// stream is deterministic regardless of transport latency or verification
// batching.
type Alert struct {
	Time   sim.Ticks `json:"time"`
	Device string    `json:"device"`
	Kind   AlertKind `json:"kind"`
	Detail string    `json:"detail"`
}

// StreamedAlert is one alert paired with its monotone sequence number —
// the streaming API's resumable cursor. Seq matches the durable store's
// numbering when the manager journals (the manager is the store's only
// alert writer), so a consumer's cursor survives verifier restarts. The
// Alert itself is unchanged from the in-memory stream: a streamed run and
// a polled run observe field-identical alerts.
type StreamedAlert struct {
	Seq uint64 `json:"seq"`
	Alert
}

// DeviceConfig registers one prover with the manager.
type DeviceConfig struct {
	// Addr is the device's network address (its device id on a fleet
	// transport).
	Addr string
	// Key is the device-unique secret shared at provisioning.
	Key []byte
	// Alg is the device's measurement MAC.
	Alg mac.Algorithm
	// QoA sets TM (the device's measurement period, needed to judge
	// schedule gaps and freshness) and TC (how often to collect).
	QoA core.QoA
	// GoldenHashes whitelists the device's sanctioned memory states.
	GoldenHashes [][]byte
}

// DeviceStatus summarizes one device for dashboards.
type DeviceStatus struct {
	Addr         string
	RegisteredAt sim.Ticks
	LastContact  sim.Ticks
	Healthy      bool
	Freshness    sim.Ticks
	Collections  int
	Failures     int // consecutive unanswered collections
}

type device struct {
	cfg          DeviceConfig
	verifier     *core.Verifier
	registeredAt sim.Ticks
	stop         func()
	// anchor is the virtual time of the device's first scheduled
	// collection; a manager recovering from a durable store resumes the
	// ticker at the next anchor + n×TC instead of re-staggering, so the
	// resumed collection times (and the launch-stamped alert times they
	// produce) are identical to an uninterrupted run's.
	anchor    sim.Ticks
	hasAnchor bool

	// Mutable state below is guarded by Manager.mu: verdicts are applied
	// by the pipeline goroutine while the scheduler keeps running.
	lastContact sim.Ticks
	healthy     bool
	unreachable bool
	freshness   sim.Ticks
	collections int
	failures    int
	// Adaptive scheduling state (ManagerConfig.AdaptiveSchedule): effTC is
	// the controller's current effective collection period (base TC when
	// the controller is off or has not adjusted), freshStreak counts
	// consecutive fresh verdicts toward a relax, adjustments/lastReason
	// audit the controller for /schedz. Ephemeral: not journaled, a
	// recovered manager resumes on the base-TC anchor grid.
	effTC       sim.Ticks
	freshStreak int
	adjustments int
	lastReason  string
	// verdictsPending counts launched collections whose verdicts have not
	// yet been applied. Delta mode must not launch against a watermark
	// that an in-flight verdict is about to supersede — a stale watermark
	// would re-ship records that were already verified and re-raise their
	// alerts. Such rounds fall back to a full collection instead, which
	// is outcome-identical to stateless mode by construction. A counter,
	// not a bool: a tick that fails immediately ("collection outstanding")
	// resolves before the slow round it collided with.
	verdictsPending int
}

// Collector is the transport a Manager drives. Implementations:
// SimCollector (the in-process simulated datagram network) and
// UDPCollector (real sockets against a udptransport fleet server).
type Collector interface {
	// Register provisions the transport for one device (address, key,
	// algorithm) before its first collection.
	Register(cfg DeviceConfig) error
	// Collect requests the k latest records from the device at addr. On a
	// nil return, cb is invoked exactly once — possibly on another
	// goroutine — with the outcome; on a non-nil return cb is never
	// invoked (e.g. a previous collection is still outstanding).
	Collect(addr string, k int, cb func(session.CollectResult, error)) error
	// CollectDelta requests the records measured at or after since (the
	// verifier's watermark for the device), capped at k (k ≤ 0 means
	// everything since, clamped to the prover's buffer). Same callback
	// contract as Collect.
	CollectDelta(addr string, since uint64, k int, cb func(session.CollectResult, error)) error
	// CollectDeltaAggregate is CollectDelta plus the aggregate tier's
	// evidence: the prover returns its chain head and one MAC binding it
	// to (since, nonce, anchorHash), delivered in CollectResult.AggState
	// and AggMAC. Same callback contract as Collect.
	CollectDeltaAggregate(addr string, since, nonce uint64, anchorHash []byte, k int, cb func(session.CollectResult, error)) error
}

// ManagerConfig parameterizes a Manager.
type ManagerConfig struct {
	// Engine schedules collections (virtual time). Required.
	Engine *sim.Engine
	// Collector is the collection transport. Required.
	Collector Collector
	// Clock is the verifier's time base (loosely synchronized with device
	// RROCs), used for freshness judgments. Required.
	Clock func() uint64
	// UnreachableAfter is the consecutive-failure threshold at which a
	// device is flagged unreachable and marked unhealthy (default 2).
	UnreachableAfter int
	// VerifyWorkers sizes the batch-verification pool (default GOMAXPROCS).
	VerifyWorkers int
	// QueueDepth bounds the asynchronous verification queue; submissions
	// beyond it exert backpressure on the collection callbacks
	// (default 256).
	QueueDepth int
	// BatchLimit caps how many queued histories one batch-verifier call
	// takes (default 64).
	BatchLimit int
	// Synchronous verifies each history inline in the collection callback
	// instead of through the asynchronous pipeline — the pre-pipeline
	// code path, kept for debugging and for the equivalence tests that
	// prove batching never changes verdicts.
	Synchronous bool
	// Delta enables incremental collection and verification: the manager
	// keeps a per-device watermark in a core.AttestationService, requests
	// only the records since it ("everything since t_last", healing missed
	// rounds automatically), and verifies O(new records) per round instead
	// of O(k). Tamper, a lost anchor, or any fallback condition resets the
	// device to a stateless full collection — correctness never depends on
	// the cached state (see core.VerifyDelta).
	//
	// A round launched while any previous verdict for the device is still
	// unapplied falls back to a full collection (a stale watermark would
	// re-verify, and re-alert on, records the queued verdict already
	// covers) — outcomes are identical either way, only the cost differs.
	// On wall-paced transports verdicts apply long before the next round;
	// on a virtual-time engine driven synchronously, combine with
	// Synchronous so watermark updates land before the next tick.
	Delta bool
	// Aggregate selects the O(1) aggregate tier on top of Delta (which it
	// implies): incremental collections additionally carry the prover's
	// hash-chain head under a single MAC, so the verifier re-walks the
	// chain from its watermark — hash-only, no per-record MAC — and checks
	// one MAC per collection regardless of record count. Any mismatch
	// (forged evidence, tampered records, lost anchor) falls back to the
	// per-record VerifyDelta audit tier on the same records, so verdicts
	// and alerts are identical to Delta mode; only the cost differs (see
	// core.VerifyDeltaAggregate). The verdictsPending discipline is
	// unchanged: an unsettled round still falls back to a stateless full
	// collection.
	Aggregate bool
	// WatermarkShards / WatermarkCapacity size the attestation service's
	// sharded per-device watermark store (defaults 16 shards, 1M devices
	// ≈ 150 MB); ignored unless Delta is set.
	WatermarkShards, WatermarkCapacity int
	// Store, when set, makes the manager's verifier state durable: every
	// watermark update (Delta mode), per-device status change and alert is
	// journaled to the store's write-ahead log in verdict-application
	// order. A manager built over a recovered store resumes where its
	// predecessor stopped — Register restores each device's status and
	// collection anchor, Start resumes tickers on the original stagger,
	// delta collection continues from the journaled watermarks (zero
	// re-alerts, zero forced full-collection fallbacks), and Alerts
	// returns the predecessor's stream followed by this run's. The caller
	// owns the store (Close does not close it; Stop and Close sync it).
	// Nil keeps today's purely in-memory behavior.
	Store *store.Store
	// OnReport, if set, observes every applied verification report in
	// application order. It runs with the manager's lock held and must
	// not call back into the Manager.
	OnReport func(addr string, rep core.Report)
	// Obs, when set, registers the fleet and verification metric families
	// on the registry (queue depth, verdict lag, per-shard verify latency,
	// watermark fallbacks, alert counters, …). Nil — the default — makes
	// instrumentation one nil-check per operation; metrics never change
	// verdicts or alerts (enforced by the equivalence tests).
	Obs *obs.Registry
	// Tracer, when set, records one Span per applied collection (launch
	// tick, pipeline wall-clock lag, verify time, outcome) into its
	// bounded ring — the /tracez post-mortem feed.
	Tracer *obs.Tracer
	// Events, when set, receives structured operational events (alerts,
	// fallback decisions) — the /eventz feed.
	Events *obs.EventLog
	// AdaptiveSchedule enables the per-device TC controller: each applied
	// verdict may tighten or relax the device's effective collection
	// period within [TC/2, 2·TC], driven by temporal-QoA age (aging toward
	// withheld tightens, a fresh streak relaxes), watermark-fallback
	// pressure, transport failures, and queue depth as the global
	// backpressure brake. Off — the default — keeps the fixed-TC ticker
	// and bit-identical pre-controller behavior (enforced by the
	// equivalence tests). Decisions are pure integer functions of verdict
	// state, so a seeded scenario adjusts identically run over run; every
	// decision is observable via erasmus_sched_* metrics, sched_adjust
	// events, and Manager.Schedule (/schedz).
	AdaptiveSchedule bool
}

// Manager runs the fleet.
type Manager struct {
	engine           *sim.Engine
	collector        Collector
	clock            func() uint64
	unreachableAfter int
	onReport         func(string, core.Report)

	// delta mode: svc holds per-device watermarks; nil when disabled.
	svc *core.AttestationService
	// aggregate mode: incremental rounds request chain-head evidence and
	// verify through the O(1) aggregate tier.
	aggregate bool
	// st is the durable state store; nil when the manager is in-memory.
	st *store.Store

	// Observability (all nil when disabled): metrics is the fleet's gauge
	// and counter set, vm routes verify latency/outcome observations from
	// the batch pool and MAC caches, tracer and events are bounded rings.
	metrics *fleetMetrics
	vm      *core.VerifyMetrics
	tracer  *obs.Tracer
	events  *obs.EventLog

	// Streaming fan-out: every alert appended to m.alerts is also
	// published (with its seq) to alertBrk's subscribers. Always present —
	// with no subscribers a publish is one mutex round trip — so WatchAlerts
	// needs no enable flag and cannot change verdict behavior.
	alertBrk *obs.Broker[StreamedAlert]
	// alertBase is the seq of the alert preceding m.alerts[0]: 0 for a
	// fresh manager, the store's trimmed-history count for one recovered
	// over a MaxAlerts-bounded store. m.alerts[i] has seq alertBase+i+1.
	alertBase uint64

	// adaptive enables the TC controller; queueCap is the verification
	// queue bound it brakes against; sched is its metric set (nil without
	// a registry).
	adaptive bool
	queueCap int
	sched    *schedMetrics

	pipe *pipeline

	mu      sync.Mutex
	devices map[string]*device
	alerts  []Alert
	// applied counts verdicts folded into device state — the readiness
	// signal: a manager with applied == 0 has not completed a collection
	// round yet, so gauges still read as empty, not as "healthy zero".
	applied uint64
	started bool
	// nonce numbers aggregate challenges (monotonic per manager): the
	// prover's aggregate MAC binds it, so a recorded response cannot
	// answer a later challenge.
	nonce uint64
	// stickySeen latches the first sink/store I/O failure so it is
	// surfaced (gauge + event) exactly once, as it happens — not only
	// when Close or a /healthz scrape finally looks.
	stickySeen bool
}

// NewManagerWith builds a fleet manager over an explicit transport.
func NewManagerWith(cfg ManagerConfig) (*Manager, error) {
	if cfg.Engine == nil {
		return nil, errors.New("fleet: engine required")
	}
	if cfg.Collector == nil {
		return nil, errors.New("fleet: collector required")
	}
	if cfg.Clock == nil {
		return nil, errors.New("fleet: clock required")
	}
	if cfg.UnreachableAfter <= 0 {
		cfg.UnreachableAfter = 2
	}
	if cfg.VerifyWorkers <= 0 {
		cfg.VerifyWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.BatchLimit <= 0 {
		cfg.BatchLimit = 64
	}
	if cfg.Aggregate {
		cfg.Delta = true
	}
	m := &Manager{
		engine:           cfg.Engine,
		collector:        cfg.Collector,
		clock:            cfg.Clock,
		unreachableAfter: cfg.UnreachableAfter,
		onReport:         cfg.OnReport,
		devices:          make(map[string]*device),
	}
	m.st = cfg.Store
	m.aggregate = cfg.Aggregate
	m.tracer, m.events = cfg.Tracer, cfg.Events
	m.alertBrk = obs.NewBroker[StreamedAlert]()
	m.adaptive = cfg.AdaptiveSchedule
	m.queueCap = cfg.QueueDepth
	if cfg.Obs != nil {
		m.metrics = newFleetMetrics(cfg.Obs)
		m.vm = core.NewVerifyMetrics(cfg.Obs, cfg.WatermarkShards)
		m.metrics.queueCapacity.Set(int64(cfg.QueueDepth))
		if m.adaptive {
			m.sched = newSchedMetrics(cfg.Obs)
		}
	}
	if cfg.Delta {
		sc := core.ServiceConfig{
			Shards: cfg.WatermarkShards, MaxDevices: cfg.WatermarkCapacity,
		}
		if m.st != nil {
			// Watermark updates journal through the service's sink in
			// verdict-application order; lookup misses (memory eviction)
			// re-hydrate from the store.
			sc.Sink, sc.Source = m.st, m.st
		}
		m.svc = core.NewAttestationService(sc)
	}
	if m.st != nil {
		// The predecessor's alert stream is this manager's prefix: a
		// recovered fleet's Alerts() reads as one uninterrupted history.
		// The store's retained alerts are the contiguous tail of its
		// numbering, so the seq preceding the prefix — the base this run's
		// alerts continue from — is head minus retained count.
		prefix := m.st.Alerts()
		m.alertBase = m.st.AlertHead() - uint64(len(prefix))
		for _, ev := range prefix {
			m.alerts = append(m.alerts, Alert{
				Time: sim.Ticks(ev.Time), Device: ev.Device,
				Kind: AlertKind(ev.Kind), Detail: ev.Detail,
			})
		}
	}
	m.pipe = newPipeline(m, cfg)
	return m, nil
}

// NewManager builds a fleet manager collecting over the simulated network
// from addr (one SimCollector per manager) — the transport the in-process
// experiments use. clock is the verifier's time base.
func NewManager(e *sim.Engine, n *netsim.Network, addr string, clock func() uint64) (*Manager, error) {
	if e == nil || n == nil {
		return nil, errors.New("fleet: nil engine or network")
	}
	if clock == nil {
		return nil, errors.New("fleet: clock required")
	}
	col, err := NewSimCollector(n, e, addr, clock)
	if err != nil {
		return nil, err
	}
	return NewManagerWith(ManagerConfig{Engine: e, Collector: col, Clock: clock})
}

// Register adds a device. Registration is allowed while the manager is
// running (fleet churn): a late-joining device starts collecting one TC
// from now, and its warm-up leniency is measured from this moment — not
// from the engine epoch — so a young device is never falsely flagged for
// the full history it cannot have yet.
func (m *Manager) Register(cfg DeviceConfig) error {
	if cfg.Addr == "" {
		return errors.New("fleet: device address required")
	}
	if err := cfg.QoA.Validate(); err != nil {
		return err
	}
	vrf, err := core.NewVerifier(core.VerifierConfig{
		Alg: cfg.Alg, Key: cfg.Key,
		GoldenHashes: cfg.GoldenHashes,
		MinGap:       cfg.QoA.TM - cfg.QoA.TM/10,
		MaxGap:       cfg.QoA.TM + cfg.QoA.TM/2,
		// Loose synchronization (§2): tolerate the prover's RROC leading
		// the verifier clock by a sliver of TM before crying tamper.
		ClockSkew: cfg.QoA.TM / 10,
		Metrics:   m.vm,
	})
	if err != nil {
		return err
	}
	m.mu.Lock()
	if _, dup := m.devices[cfg.Addr]; dup {
		m.mu.Unlock()
		return fmt.Errorf("fleet: device %q already registered", cfg.Addr)
	}
	m.mu.Unlock()
	if err := m.collector.Register(cfg); err != nil {
		return err
	}
	d := &device{
		cfg: cfg, verifier: vrf, healthy: true,
		registeredAt: m.engine.Now(),
		effTC:        cfg.QoA.TC,
	}
	restored := false
	if m.st != nil {
		if st, ok := m.st.State(cfg.Addr); ok && st.HasStatus {
			// The device is coming back from a durable store: resume its
			// predecessor's status — registration epoch (warm-up leniency),
			// health, failure streak, collection anchor — instead of
			// starting over, so no alert the predecessor already raised is
			// raised again and no already-earned leniency is re-granted.
			d.registeredAt = sim.Ticks(st.RegisteredAt)
			d.lastContact = sim.Ticks(st.LastContact)
			d.healthy = st.Healthy
			d.unreachable = st.Unreachable
			d.freshness = sim.Ticks(st.Freshness)
			d.failures = st.Failures
			d.collections = st.Collections
			if st.HasAnchor {
				d.anchor = sim.Ticks(st.ScheduleAnchor)
				d.hasAnchor = true
			}
			restored = true
		}
	}
	m.mu.Lock()
	// Recheck under the same critical section as the insert: a concurrent
	// Register of the same address must not silently replace a live
	// device (the Collector extension point need not dup-detect).
	if _, dup := m.devices[cfg.Addr]; dup {
		m.mu.Unlock()
		return fmt.Errorf("fleet: device %q already registered", cfg.Addr)
	}
	m.devices[cfg.Addr] = d
	m.metrics.deviceAdded(d.healthy, d.unreachable)
	started := m.started
	if !restored {
		// Journal the registration now: a crash before the first verdict
		// must not forget when the device joined (warm-up leniency).
		//erasmus:allow(lockflow) registration journals under m.mu so journal order matches membership order (crash before first verdict must not forget the join)
		m.journalStatus(d)
	}
	m.mu.Unlock()
	if started {
		m.mu.Lock()
		var first sim.Ticks
		if d.hasAnchor {
			first = nextFire(d.anchor, m.engine.Now(), d.cfg.QoA.TC)
		} else {
			d.anchor = m.engine.Now() + cfg.QoA.TC
			d.hasAnchor = true
			first = d.anchor
			//erasmus:allow(lockflow) restored-device anchors journal under m.mu; journal order must equal memory order for crash-resume equivalence
			m.journalStatus(d)
		}
		m.mu.Unlock()
		m.scheduleAt(d, first)
	}
	return nil
}

// scheduleAt starts a device's periodic collection, first firing at the
// absolute virtual time first. With the adaptive controller off this is a
// fixed-TC ticker (the pre-controller behavior, bit-for-bit); with it on,
// each collection re-arms the next one at the then-current effective TC.
func (m *Manager) scheduleAt(d *device, first sim.Ticks) {
	if !m.adaptive {
		d.stop = m.engine.Ticker(first, d.cfg.QoA.TC, func() {
			m.collect(d)
		})
		return
	}
	m.scheduleAdaptive(d, first)
}

// scheduleAdaptive arms one collection at when and, after it launches,
// re-arms at when + the device's effective TC as adjusted by whatever
// verdicts have applied since. The chain stops re-arming once the manager
// is stopped (Stop also cancels the pending event via d.stop).
func (m *Manager) scheduleAdaptive(d *device, when sim.Ticks) {
	ev := m.engine.At(when, func() {
		m.collect(d)
		m.mu.Lock()
		interval := d.effTC
		if interval <= 0 {
			interval = d.cfg.QoA.TC
		}
		stopped := !m.started
		m.mu.Unlock()
		if stopped {
			return
		}
		m.scheduleAdaptive(d, when+interval)
	})
	m.mu.Lock()
	d.stop = ev.Cancel
	m.mu.Unlock()
}

// nextFire returns the first tick of the series anchor + n×tc that is
// strictly after now (or anchor itself when it is still ahead). Fires at
// or before now are assumed to have happened already — a recovering
// manager resumes its predecessor's ticker, it does not replay it.
func nextFire(anchor, now, tc sim.Ticks) sim.Ticks {
	if anchor >= now {
		return anchor
	}
	n := (now-anchor)/tc + 1
	return anchor + n*tc
}

// Start schedules collections: device i of n is polled every TC with phase
// i×TC/n, spreading verifier traffic (and prover buffer pressure) evenly.
// Devices registered after Start are not restaggered. Devices restored
// from a durable store keep their original anchors — their collections
// resume on the predecessor's stagger, at the next anchor + n×TC.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	devs := make([]*device, 0, len(m.devices))
	for _, d := range m.devices {
		devs = append(devs, d)
	}
	m.mu.Unlock()
	sort.Slice(devs, func(i, j int) bool { return devs[i].cfg.Addr < devs[j].cfg.Addr })
	now := m.engine.Now()
	firsts := make([]sim.Ticks, len(devs))
	m.mu.Lock()
	for i, dev := range devs {
		if dev.hasAnchor {
			firsts[i] = nextFire(dev.anchor, now, dev.cfg.QoA.TC)
			continue
		}
		phase := sim.Ticks(int64(dev.cfg.QoA.TC) * int64(i) / int64(len(devs)))
		dev.anchor = now + phase + dev.cfg.QoA.TC
		dev.hasAnchor = true
		firsts[i] = dev.anchor
		//erasmus:allow(lockflow) start-time anchors journal under m.mu; journal order must equal memory order for crash-resume equivalence
		m.journalStatus(dev)
	}
	m.mu.Unlock()
	for i, dev := range devs {
		m.scheduleAt(dev, firsts[i])
	}
}

// Stop cancels all scheduled collections, then waits for every history
// already handed to the verification pipeline to be applied. Collections
// still in flight on the transport are not waited for (their verdicts are
// applied whenever they complete); use Flush for full quiescence.
func (m *Manager) Stop() {
	m.mu.Lock()
	//erasmus:allow(maporder) per-device ticker teardown is order-free: stops are independent and emit nothing
	for _, d := range m.devices {
		if d.stop != nil {
			d.stop()
			d.stop = nil
		}
	}
	m.started = false
	m.mu.Unlock()
	m.pipe.waitQueued()
	if m.st != nil {
		// Everything applied so far becomes durable; the store latches the
		// error and Close returns it, but surface it immediately too.
		if err := m.st.Sync(); err != nil {
			m.mu.Lock()
			//erasmus:allow(lockflow) the sticky-error latch updates under m.mu so health-state order matches verdict order
			m.noteSticky(0) // tick 0: Stop runs outside engine time
			m.mu.Unlock()
		}
	}
}

// Flush blocks until every launched collection has fully resolved —
// response or timeout received, verdict computed and applied. On a
// real-time transport this may wait out the client's retry budget; on the
// simulated transport the engine must have run past the outstanding
// timeouts or Flush will wait forever.
func (m *Manager) Flush() { m.pipe.waitInflight() }

// Close stops the manager and shuts down the verification pipeline. The
// collector is closed too when it implements io.Closer. A configured
// state store is synced — not closed; the caller owns it — and the first
// durability failure, if any, is returned.
func (m *Manager) Close() error {
	m.Stop()
	m.pipe.close()
	// Terminate every streaming subscriber: their channels close, so a
	// /watch handler's receive loop ends instead of blocking forever.
	m.alertBrk.Close()
	var err error
	if m.st != nil {
		err = m.st.Sync()
	}
	if c, ok := m.collector.(interface{ Close() error }); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func (m *Manager) collect(d *device) {
	k := d.cfg.QoA.RecordsPerCollection()
	launched := m.engine.Now()
	now := m.clock()
	// Warm-up leniency, measured from registration (not the engine
	// epoch): a device younger than k×TM cannot have a full history yet,
	// no matter when in the fleet's life it joined.
	expected := k
	if launched-d.registeredAt < sim.Ticks(k)*d.cfg.QoA.TM {
		expected = 0
	}
	// Delta mode: ask only for records since the device's watermark —
	// the prover ships (and the pipeline verifies) O(new records). A
	// device without a *current* watermark gets a stateless full
	// collection instead: first contact, reset after tamper or a
	// continuity gap, or — the async-pipeline case — the previous round's
	// verdict not yet applied, when the stored watermark is stale and
	// collecting against it would re-verify (and re-alert) records the
	// queued verdict already covers.
	var wm core.Watermark
	delta := false
	agg := false
	var nonce uint64
	m.mu.Lock()
	settled := d.verdictsPending == 0
	d.verdictsPending++
	if m.aggregate && settled {
		// Aggregate rounds run whenever the watermark is current — even a
		// zero one (bootstrap: since=0, k records, exactly the full
		// collection's record set, plus the chain head so the next round
		// can anchor). Unsettled rounds keep the delta-mode discipline and
		// fall back to a stateless full collection below.
		agg = true
		m.nonce++
		nonce = m.nonce
	}
	m.mu.Unlock()
	if m.svc != nil && settled {
		if w, ok := m.svc.Watermark(d.cfg.Addr); ok && !w.IsZero() {
			wm = w
			delta = !agg // the aggregate request carries the anchor itself
		}
	}
	unsettled := m.svc != nil && !settled
	if m.svc != nil && !delta && !agg {
		m.metrics.fallback(settled)
	}
	m.pipe.launched()
	cb := func(res session.CollectResult, err error) {
		m.pipe.submit(pipeJob{
			dev: d, res: res, err: err, now: now, expectedK: expected, at: launched,
			delta: delta, wm: wm, agg: agg, aggNonce: nonce,
			unsettledFallback: unsettled,
		})
	}
	var err error
	switch {
	case agg && !wm.IsZero():
		// Anchored aggregate: everything since the watermark (k ≤ 0 =
		// "everything since", healing lost rounds like the delta path)
		// plus the chain head MAC-bound to this challenge.
		err = m.collector.CollectDeltaAggregate(d.cfg.Addr, wm.T, nonce, wm.Hash, 0, cb)
	case agg:
		err = m.collector.CollectDeltaAggregate(d.cfg.Addr, 0, nonce, nil, k, cb)
	case delta:
		// k ≤ 0 = "everything since": after a lost round the next delta
		// ships the backlog too, so no record is ever silently dropped by
		// a fixed request size.
		err = m.collector.CollectDelta(d.cfg.Addr, wm.T, 0, cb)
	default:
		err = m.collector.Collect(d.cfg.Addr, k, cb)
	}
	if err != nil {
		// A previous collection is still outstanding (device very slow or
		// TC shorter than the timeout budget); count it as a failure.
		m.pipe.submit(pipeJob{dev: d, err: err, at: launched})
	}
}

// applyResult folds one resolved collection into per-device state and the
// alert stream. Called by the pipeline in submission order.
func (m *Manager) applyResult(j *pipeJob) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := j.dev
	d.verdictsPending--
	m.applied++
	if j.err != nil {
		wasHealthy, wasUnreach := d.healthy, d.unreachable
		d.failures++
		if d.failures == m.unreachableAfter {
			d.healthy = false
			d.unreachable = true
			//erasmus:allow(lockflow) alert journal order must match verdict application order under m.mu (bit-identical alert stream invariant)
			m.alertAt(j.at, d, AlertUnreachable,
				fmt.Sprintf("%d consecutive collections failed", d.failures))
		}
		m.metrics.transitions(wasHealthy, wasUnreach, d.healthy, d.unreachable)
		m.observeApply(j, outcomeFailed)
		m.adjustSchedule(d, j)
		//erasmus:allow(lockflow) status journals under m.mu so journal order equals memory order (single-writer discipline)
		m.journalStatus(d)
		//erasmus:allow(lockflow) the sticky-error latch updates under m.mu so health-state order matches verdict order
		m.noteSticky(j.at)
		return
	}
	rep := j.rep
	if m.svc != nil {
		// Watermark updates are applied here — in submission order, under
		// the same lock as device state — so the watermark a later launch
		// reads is always the last applied verdict's successor.
		//erasmus:allow(lockflow) the watermark journal shares m.mu so a later launch always reads the last applied verdict's successor
		m.svc.Set(d.cfg.Addr, core.NextWatermark(j.wm, rep))
	}
	wasUnreachable := d.unreachable
	d.unreachable = false
	d.failures = 0
	d.lastContact = j.at
	d.collections++
	d.freshness = rep.Freshness
	wasHealthy := d.healthy
	d.healthy = rep.Healthy()
	switch {
	case rep.InfectionDetected:
		//erasmus:allow(lockflow) alert journal order must match verdict application order under m.mu (bit-identical alert stream invariant)
		m.alertAt(j.at, d, AlertInfection, firstIssue(rep))
	case rep.TamperDetected:
		//erasmus:allow(lockflow) alert journal order must match verdict application order under m.mu (bit-identical alert stream invariant)
		m.alertAt(j.at, d, AlertTamper, firstIssue(rep))
	case wasUnreachable && d.healthy:
		//erasmus:allow(lockflow) alert journal order must match verdict application order under m.mu (bit-identical alert stream invariant)
		m.alertAt(j.at, d, AlertRecovered, "device reachable, history healthy")
	case !wasHealthy && d.healthy:
		//erasmus:allow(lockflow) alert journal order must match verdict application order under m.mu (bit-identical alert stream invariant)
		m.alertAt(j.at, d, AlertRecovered, "history healthy again")
	}
	m.metrics.transitions(wasHealthy, wasUnreachable, d.healthy, d.unreachable)
	switch {
	case rep.InfectionDetected:
		m.observeApply(j, outcomeInfection)
	case rep.TamperDetected:
		m.observeApply(j, outcomeTamper)
	default:
		m.observeApply(j, outcomeOK)
	}
	if m.onReport != nil {
		m.onReport(d.cfg.Addr, rep)
	}
	m.adjustSchedule(d, j)
	//erasmus:allow(lockflow) status journals under m.mu so journal order equals memory order (single-writer discipline)
	m.journalStatus(d)
	//erasmus:allow(lockflow) the sticky-error latch updates under m.mu so health-state order matches verdict order
	m.noteSticky(j.at)
}

// noteSticky surfaces the first durability failure (attestation-service
// sink or state store) the moment a verdict application trips it: a gauge
// flip plus a structured event, so operators are not left to discover the
// error at Close. Callers hold m.mu.
func (m *Manager) noteSticky(at sim.Ticks) {
	if m.stickySeen {
		return
	}
	var err error
	switch {
	case m.svc != nil && m.svc.SinkErr() != nil:
		err = m.svc.SinkErr()
	case m.st != nil && m.st.Err() != nil:
		err = m.st.Err()
	default:
		return
	}
	m.stickySeen = true
	if m.svc != nil && m.svc.SinkErr() != nil {
		// The store mirrors its own failure on erasmus_store_sticky_error.
		m.metrics.sinkFailed()
	}
	m.events.Emit(obs.Event{
		Tick:      int64(at),
		Subsystem: "fleet",
		Kind:      "durability_error",
		Detail:    err.Error(),
	})
}

// observeApply feeds one applied verdict into the metrics and the
// collection tracer. Callers hold m.mu; a manager without observability
// pays two nil-checks.
//
//erasmus:wallpaced verdict-lag metrics measure real pipeline wall time; the alert stream is stamped with virtual launch time
func (m *Manager) observeApply(j *pipeJob, outcome string) {
	if m.metrics == nil && m.tracer == nil {
		return
	}
	applyWall := time.Now().UnixNano()
	lag := -1.0
	if j.submitWall != 0 {
		lag = float64(applyWall-j.submitWall) / 1e9
	}
	m.metrics.observeCollection(outcome, lag)
	if m.tracer != nil {
		sp := obs.Span{
			Device:      j.dev.cfg.Addr,
			LaunchTick:  int64(j.at),
			SubmitWall:  j.submitWall,
			ApplyWall:   applyWall,
			VerifyNanos: j.verifyNanos,
			Delta:       j.delta,
			Records:     len(j.res.Records),
			Outcome:     outcome,
		}
		if j.err != nil {
			sp.Err = j.err.Error()
		}
		m.tracer.Record(sp)
	}
}

// journalStatus appends the device's current status to the durable store,
// if one is configured. Callers hold m.mu; errors are sticky in the store
// (verification continues) and are surfaced immediately through
// noteSticky rather than waiting for Close.
func (m *Manager) journalStatus(d *device) {
	if m.st == nil {
		return
	}
	err := m.st.PutStatus(store.DeviceState{
		Addr:           d.cfg.Addr,
		HasStatus:      true,
		Healthy:        d.healthy,
		Unreachable:    d.unreachable,
		HasAnchor:      d.hasAnchor,
		RegisteredAt:   int64(d.registeredAt),
		ScheduleAnchor: int64(d.anchor),
		LastContact:    int64(d.lastContact),
		Freshness:      int64(d.freshness),
		Failures:       d.failures,
		Collections:    d.collections,
	})
	if err != nil {
		m.noteSticky(d.lastContact)
	}
}

func firstIssue(rep core.Report) string {
	if len(rep.Issues) == 0 {
		return ""
	}
	return rep.Issues[0]
}

// alertAt records an alert (journaling it when a store is configured) and
// fans it out to streaming subscribers with its seq. Callers hold m.mu —
// publish order therefore equals memory and journal order, which is what
// makes the streamed sequence field-identical to a polled Alerts() read.
func (m *Manager) alertAt(at sim.Ticks, d *device, kind AlertKind, detail string) {
	a := Alert{Time: at, Device: d.cfg.Addr, Kind: kind, Detail: detail}
	m.alerts = append(m.alerts, a)
	m.metrics.observeAlert(kind)
	m.events.Emit(obs.Event{
		Tick: int64(at), Subsystem: "fleet", Device: d.cfg.Addr,
		Kind: string(kind), Detail: detail,
	})
	if m.st != nil {
		err := m.st.AppendAlert(store.AlertEvent{
			Time: int64(at), Device: d.cfg.Addr, Kind: string(kind), Detail: detail,
		})
		if err != nil {
			m.noteSticky(at)
		}
	}
	m.alertBrk.Publish(StreamedAlert{Seq: m.alertBase + uint64(len(m.alerts)), Alert: a})
}

// Alerts returns all recorded alerts in order.
func (m *Manager) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}

// AlertsSince returns the alerts with Seq > since, oldest first — the
// streaming API's resume read. gap reports whether alerts in (since,
// first-available) were trimmed from the durable store before this
// manager loaded (MaxAlerts): the consumer missed events it can never
// read back and must be told explicitly, not silently skipped. A since
// at or beyond the newest seq returns (nil, false).
func (m *Manager) AlertsSince(since uint64) (alerts []StreamedAlert, gap bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if since < m.alertBase {
		gap = true
		since = m.alertBase
	}
	head := m.alertBase + uint64(len(m.alerts))
	if since >= head {
		return nil, gap
	}
	out := make([]StreamedAlert, 0, head-since)
	for i := int(since - m.alertBase); i < len(m.alerts); i++ {
		out = append(out, StreamedAlert{Seq: m.alertBase + uint64(i) + 1, Alert: m.alerts[i]})
	}
	return out, gap
}

// WatchAlerts subscribes to the live alert stream with a bounded buffer
// of buf items (minimum 1). A subscriber that falls behind loses its
// oldest buffered alerts and has its gap flag latched — heal by
// re-reading AlertsSince from the last seq seen and deduplicating by
// seq. Cancel the subscription when done.
func (m *Manager) WatchAlerts(buf int) *obs.Subscription[StreamedAlert] {
	return m.alertBrk.Subscribe(buf)
}

// Ready reports whether the manager has completed its first collection
// round: scheduling has started and at least one verdict has applied.
// Before that, every fleet gauge legitimately reads zero — a scraper
// must not mistake "not yet collected" for "healthy and idle". This is
// the /readyz signal; Health covers liveness and durability.
func (m *Manager) Ready() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.started && m.applied > 0
}

// AlertsFor filters alerts by device address.
func (m *Manager) AlertsFor(addr string) []Alert {
	var out []Alert
	for _, a := range m.Alerts() {
		if a.Device == addr {
			out = append(out, a)
		}
	}
	return out
}

// Addresses lists registered devices, sorted.
func (m *Manager) Addresses() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.devices))
	for addr := range m.devices {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// Status reports one device's dashboard line.
func (m *Manager) Status(addr string) (DeviceStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.devices[addr]
	if !ok {
		return DeviceStatus{}, fmt.Errorf("fleet: unknown device %q", addr)
	}
	return DeviceStatus{
		Addr:         addr,
		RegisteredAt: d.registeredAt,
		LastContact:  d.lastContact,
		Healthy:      d.healthy,
		Freshness:    d.freshness,
		Collections:  d.collections,
		Failures:     d.failures,
	}, nil
}

// HealthyCount returns how many devices currently have healthy histories
// and are reachable.
func (m *Manager) HealthyCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, d := range m.devices {
		if d.healthy {
			n++
		}
	}
	return n
}

// Statuses returns every device's dashboard line, sorted by address — the
// /statusz payload.
func (m *Manager) Statuses() []DeviceStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]DeviceStatus, 0, len(m.devices))
	for addr, d := range m.devices {
		out = append(out, DeviceStatus{
			Addr:         addr,
			RegisteredAt: d.registeredAt,
			LastContact:  d.lastContact,
			Healthy:      d.healthy,
			Freshness:    d.freshness,
			Collections:  d.collections,
			Failures:     d.failures,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Health summarizes the manager's liveness for a /healthz endpoint. OK is
// false exactly when durability is compromised: the watermark sink or the
// state store holds a sticky I/O error. Scheduling pressure (queue depth,
// in-flight collections) is reported but never fails the check — a full
// queue is backpressure working, not an outage.
type Health struct {
	OK          bool   `json:"ok"`
	Started     bool   `json:"started"`
	Devices     int    `json:"devices"`
	Healthy     int    `json:"healthy"`
	Unreachable int    `json:"unreachable"`
	QueueDepth  int    `json:"queue_depth"`
	Inflight    int    `json:"inflight"`
	SinkError   string `json:"sink_error,omitempty"`
	StoreError  string `json:"store_error,omitempty"`
}

// Health reports the manager's current health snapshot.
func (m *Manager) Health() Health {
	m.mu.Lock()
	h := Health{OK: true, Started: m.started, Devices: len(m.devices)}
	for _, d := range m.devices {
		if d.healthy {
			h.Healthy++
		}
		if d.unreachable {
			h.Unreachable++
		}
	}
	m.mu.Unlock()
	h.QueueDepth, h.Inflight = m.pipe.depths()
	if m.svc != nil {
		if err := m.svc.SinkErr(); err != nil {
			h.OK = false
			h.SinkError = err.Error()
		}
	}
	if m.st != nil {
		if err := m.st.Err(); err != nil {
			h.OK = false
			h.StoreError = err.Error()
		}
	}
	return h
}
