package fleet

import (
	"fmt"
	"sort"
	"time"

	"erasmus/internal/obs"
	"erasmus/internal/qoa"
)

// The adaptive TC controller (ManagerConfig.AdaptiveSchedule): the QoA
// framing of the paper makes collection period a quality knob — TC decides
// how stale a verified-healthy verdict may be — so the verifier closes the
// loop on its own signals: a device aging toward withheld is collected
// more often (evidence is going stale faster than the schedule assumed),
// a long-fresh device less often (budget flows to where it buys QoA), and
// the verification queue acts as the global brake (a saturated verifier
// relaxes rather than melting down). Every decision is a pure integer
// function of the applied verdict and the clamp keeps the period inside
// [TC/2, 2·TC], so a seeded scenario adjusts identically run over run and
// the controller can never starve or flood a device.

// Adjustment reasons, as exposed on
// erasmus_sched_adjustments_total{direction,reason} and sched_adjust
// events.
const (
	schedBackpressure = "backpressure" // queue above ¾ capacity: relax
	schedFailure      = "failure"      // transport failure: tighten to regain evidence
	schedFallback     = "fallback"     // unsettled-verdict fallback: relax
	schedWithheld     = "withheld"     // evidence older than MaxGap: strong tighten
	schedAging        = "aging"        // evidence past TM but inside MaxGap: tighten
	schedFreshStreak  = "fresh_streak" // consecutive fresh verdicts: relax
)

// freshStreakRelax is how many consecutive fresh verdicts earn one relax
// step: long enough that a single on-time round after an incident does
// not immediately give the leniency back.
const freshStreakRelax = 4

// schedMetrics instruments the controller; nil-inert like fleetMetrics.
type schedMetrics struct {
	r *obs.Registry
	// tc observes every effective collection period the controller sets,
	// in seconds — the distribution shows how far the fleet sits from its
	// base schedule.
	tc *obs.Histogram
}

func newSchedMetrics(r *obs.Registry) *schedMetrics {
	if r == nil {
		return nil
	}
	sm := &schedMetrics{
		r: r,
		tc: r.Histogram("erasmus_sched_tc_seconds",
			"Effective per-device collection period set by the adaptive scheduler.",
			obs.LatencyBuckets),
	}
	// Pre-register every (direction, reason) cell the controller can emit
	// so a scrape shows the full decision catalog at zero from the start.
	for _, cell := range [][2]string{
		{"relax", schedBackpressure}, {"relax", schedFallback}, {"relax", schedFreshStreak},
		{"tighten", schedFailure}, {"tighten", schedWithheld}, {"tighten", schedAging},
	} {
		sm.counter(cell[0], cell[1])
	}
	return sm
}

func (sm *schedMetrics) counter(direction, reason string) *obs.Counter {
	return sm.r.Counter("erasmus_sched_adjustments_total",
		"Adaptive TC adjustments by direction and reason.",
		obs.Label{Name: "direction", Value: direction},
		obs.Label{Name: "reason", Value: reason})
}

// observe records one applied adjustment.
func (sm *schedMetrics) observe(direction, reason string, tcSeconds float64) {
	if sm == nil {
		return
	}
	sm.tc.Observe(tcSeconds)
	sm.counter(direction, reason).Inc()
}

// adjustSchedule runs the controller on one applied verdict. Callers hold
// m.mu (decisions land in verdict-application order, the same order the
// alert stream and journal use). No-op when the controller is off.
//
// Signal priority: the global queue brake first (verifier saturation
// trumps any per-device wish), then transport failures, then the
// unsettled-fallback signal, then the temporal-QoA grade of the applied
// evidence — graded with the same MaxGap = TM+TM/2 and skew = TM/10 the
// per-device verifier uses.
func (m *Manager) adjustSchedule(d *device, j *pipeJob) {
	if !m.adaptive {
		return
	}
	base := d.cfg.QoA.TC
	cur := d.effTC
	if cur <= 0 {
		cur = base
	}
	tm := d.cfg.QoA.TM
	next, reason := cur, ""
	queued, _ := m.pipe.depths()
	switch {
	case m.queueCap > 0 && queued*4 > m.queueCap*3:
		next, reason = cur+cur/4, schedBackpressure
	case j.err != nil:
		// The device is dark: its last-known evidence ages while nothing
		// new arrives. Tighten so the first successful round lands sooner;
		// the clamp bounds what a permanently dead device can cost.
		d.freshStreak = 0
		next, reason = cur-cur/4, schedFailure
	case j.unsettledFallback:
		d.freshStreak = 0
		next, reason = cur+cur/4, schedFallback
	default:
		switch qoa.GradeTemporal(d.freshness, tm, tm+tm/2, tm/10) {
		case qoa.TemporalWithheld:
			d.freshStreak = 0
			next, reason = cur/2, schedWithheld
		case qoa.TemporalAging:
			d.freshStreak = 0
			next, reason = cur-cur/4, schedAging
		default:
			d.freshStreak++
			if d.freshStreak >= freshStreakRelax {
				d.freshStreak = 0
				next, reason = cur+cur/4, schedFreshStreak
			}
		}
	}
	if next < base/2 {
		next = base / 2
	}
	if next > 2*base {
		next = 2 * base
	}
	if next == cur {
		return
	}
	direction := "tighten"
	if next > cur {
		direction = "relax"
	}
	d.effTC = next
	d.adjustments++
	d.lastReason = reason
	m.sched.observe(direction, reason, float64(next)/1e9)
	m.events.Emit(obs.Event{
		Tick: int64(j.at), Subsystem: "fleet", Device: d.cfg.Addr,
		Kind: "sched_adjust",
		Detail: fmt.Sprintf("%s (%s): TC %v -> %v",
			direction, reason, time.Duration(cur), time.Duration(next)),
	})
}

// DeviceSchedule is one device's effective collection schedule — the
// /schedz payload line.
type DeviceSchedule struct {
	Addr        string `json:"addr"`
	BaseTC      int64  `json:"base_tc_ns"`
	EffectiveTC int64  `json:"effective_tc_ns"`
	Adjustments int    `json:"adjustments"`
	LastReason  string `json:"last_reason,omitempty"`
	FreshStreak int    `json:"fresh_streak"`
}

// Schedule snapshots every device's effective collection period, sorted
// by address. With the controller off, EffectiveTC always equals BaseTC.
func (m *Manager) Schedule() []DeviceSchedule {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]DeviceSchedule, 0, len(m.devices))
	for addr, d := range m.devices {
		eff := d.effTC
		if eff <= 0 {
			eff = d.cfg.QoA.TC
		}
		out = append(out, DeviceSchedule{
			Addr:        addr,
			BaseTC:      int64(d.cfg.QoA.TC),
			EffectiveTC: int64(eff),
			Adjustments: d.adjustments,
			LastReason:  d.lastReason,
			FreshStreak: d.freshStreak,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// AdaptiveEnabled reports whether the TC controller is on.
func (m *Manager) AdaptiveEnabled() bool { return m.adaptive }
