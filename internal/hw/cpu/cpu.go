// Package cpu provides the single-core occupancy tracker and the
// access-violation log shared by both device models (MSP430/SMART+ and
// i.MX6/HYDRA).
//
// Both platforms have a single CPU: a running self-measurement occupies it
// for the full modeled duration (the availability concern of §5), and
// application tasks contend with measurements for the core. The tracker
// records every occupation interval so experiments can compute busy
// fractions, deadline misses and measurement/abort statistics.
package cpu

import (
	"fmt"

	"erasmus/internal/sim"
)

// Kind classifies an occupation interval.
type Kind string

// Occupation kinds used across the repository.
const (
	KindMeasurement Kind = "measurement"
	KindTask        Kind = "task"
	KindCollection  Kind = "collection"
	KindAuth        Kind = "auth"
)

// Occupation is one contiguous interval of CPU use.
type Occupation struct {
	Kind    Kind
	Start   sim.Ticks
	End     sim.Ticks // scheduled end; equals AbortedAt if aborted
	Aborted bool
}

// Duration returns the interval's length.
func (o Occupation) Duration() sim.Ticks { return o.End - o.Start }

// Tracker serializes occupations on a single core.
type Tracker struct {
	engine *sim.Engine
	freeAt sim.Ticks
	log    []*Occupation
	active *Occupation // last occupation if still running
}

// NewTracker creates a tracker bound to the simulation engine.
func NewTracker(e *sim.Engine) *Tracker {
	if e == nil {
		panic("cpu: nil engine")
	}
	return &Tracker{engine: e}
}

// Busy reports whether the CPU is occupied right now.
func (t *Tracker) Busy() bool { return t.engine.Now() < t.freeAt }

// FreeAt returns the earliest time the CPU becomes idle (never earlier
// than now).
func (t *Tracker) FreeAt() sim.Ticks {
	if ft := t.freeAt; ft > t.engine.Now() {
		return ft
	}
	return t.engine.Now()
}

// Occupy reserves the CPU for dur, starting as soon as the core is free
// (possibly immediately). It returns the scheduled interval; the returned
// pointer stays live, so callers can observe Aborted after an Abort. dur
// must be non-negative.
func (t *Tracker) Occupy(kind Kind, dur sim.Ticks) *Occupation {
	if dur < 0 {
		panic(fmt.Sprintf("cpu: negative occupation %v", dur))
	}
	start := t.FreeAt()
	occ := &Occupation{Kind: kind, Start: start, End: start + dur}
	t.freeAt = occ.End
	t.log = append(t.log, occ)
	t.active = occ
	return occ
}

// Abort truncates the currently-running occupation at the present time,
// freeing the CPU. It reports whether anything was aborted (false when the
// core is idle, or when the active occupation already finished).
func (t *Tracker) Abort() bool {
	now := t.engine.Now()
	if t.active == nil || t.active.End <= now || t.active.Start > now {
		return false
	}
	t.active.End = now
	t.active.Aborted = true
	t.freeAt = now
	t.active = nil
	return true
}

// ActiveKind returns the kind of the occupation running now, or "" if idle.
func (t *Tracker) ActiveKind() Kind {
	now := t.engine.Now()
	if t.active != nil && t.active.Start <= now && now < t.active.End {
		return t.active.Kind
	}
	return ""
}

// Log returns a copy of all recorded occupations.
func (t *Tracker) Log() []Occupation {
	out := make([]Occupation, len(t.log))
	for i, o := range t.log {
		out[i] = *o
	}
	return out
}

// BusyTime sums occupied time of the given kind within [from, to),
// clipping intervals at the window edges. An empty kind sums everything.
func (t *Tracker) BusyTime(kind Kind, from, to sim.Ticks) sim.Ticks {
	var total sim.Ticks
	for _, o := range t.log {
		if kind != "" && o.Kind != kind {
			continue
		}
		s, e := o.Start, o.End
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		if e > s {
			total += e - s
		}
	}
	return total
}

// BusyFraction returns BusyTime / window length.
func (t *Tracker) BusyFraction(kind Kind, from, to sim.Ticks) float64 {
	if to <= from {
		return 0
	}
	return float64(t.BusyTime(kind, from, to)) / float64(to-from)
}

// ViolationKind classifies an access-control violation.
type ViolationKind string

// Violation kinds raised by device models.
const (
	ViolationKeyAccess    ViolationKind = "key-access"     // key read outside attestation code
	ViolationClockWrite   ViolationKind = "clock-write"    // write attempt on the RROC
	ViolationROMWrite     ViolationKind = "rom-write"      // write attempt on ROM
	ViolationAtomicity    ViolationKind = "atomicity"      // jump into the middle of attestation code
	ViolationCapability   ViolationKind = "capability"     // seL4 capability check failed
	ViolationBootIntegrty ViolationKind = "boot-integrity" // secure-boot hash mismatch
)

// Violation is one logged access-control event. On real SMART+ hardware a
// violation resets the MCU; device models log it and return an error so
// experiments can count attack attempts.
type Violation struct {
	Time   sim.Ticks
	Kind   ViolationKind
	Detail string
}

func (v Violation) Error() string {
	return fmt.Sprintf("hw violation at %v: %s (%s)", v.Time, v.Kind, v.Detail)
}

// ViolationLog accumulates violations.
type ViolationLog struct {
	engine *sim.Engine
	events []Violation
}

// NewViolationLog creates a log bound to the engine clock.
func NewViolationLog(e *sim.Engine) *ViolationLog {
	if e == nil {
		panic("cpu: nil engine")
	}
	return &ViolationLog{engine: e}
}

// Record logs and returns a violation error.
func (l *ViolationLog) Record(kind ViolationKind, detail string) error {
	v := Violation{Time: l.engine.Now(), Kind: kind, Detail: detail}
	l.events = append(l.events, v)
	return v
}

// Events returns a copy of all recorded violations.
func (l *ViolationLog) Events() []Violation {
	return append([]Violation(nil), l.events...)
}

// Count returns the number of violations of the given kind ("" = all).
func (l *ViolationLog) Count(kind ViolationKind) int {
	if kind == "" {
		return len(l.events)
	}
	n := 0
	for _, v := range l.events {
		if v.Kind == kind {
			n++
		}
	}
	return n
}
