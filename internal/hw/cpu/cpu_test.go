package cpu

import (
	"testing"
	"testing/quick"

	"erasmus/internal/sim"
)

func TestOccupyIdleCPU(t *testing.T) {
	e := sim.NewEngine()
	tr := NewTracker(e)
	if tr.Busy() {
		t.Fatal("new tracker busy")
	}
	occ := tr.Occupy(KindMeasurement, 100)
	if occ.Start != 0 || occ.End != 100 {
		t.Fatalf("occ = %+v, want [0,100)", occ)
	}
	if !tr.Busy() {
		t.Fatal("not busy after Occupy")
	}
	if tr.FreeAt() != 100 {
		t.Fatalf("FreeAt = %v", tr.FreeAt())
	}
}

func TestOccupySerializes(t *testing.T) {
	e := sim.NewEngine()
	tr := NewTracker(e)
	tr.Occupy(KindTask, 50)
	second := tr.Occupy(KindMeasurement, 30)
	if second.Start != 50 || second.End != 80 {
		t.Fatalf("second = %+v, want [50,80)", second)
	}
}

func TestBusyClearsAfterInterval(t *testing.T) {
	e := sim.NewEngine()
	tr := NewTracker(e)
	tr.Occupy(KindTask, 50)
	e.RunUntil(49)
	if !tr.Busy() {
		t.Fatal("should be busy at t=49")
	}
	e.RunUntil(50)
	if tr.Busy() {
		t.Fatal("should be idle at t=50")
	}
}

func TestNegativeOccupationPanics(t *testing.T) {
	tr := NewTracker(sim.NewEngine())
	defer func() {
		if recover() == nil {
			t.Error("negative occupation did not panic")
		}
	}()
	tr.Occupy(KindTask, -1)
}

func TestNilEnginePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTracker(nil) },
		func() { NewViolationLog(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("nil engine did not panic")
				}
			}()
			f()
		}()
	}
}

func TestAbort(t *testing.T) {
	e := sim.NewEngine()
	tr := NewTracker(e)
	tr.Occupy(KindMeasurement, 100)
	e.RunUntil(40)
	if !tr.Abort() {
		t.Fatal("Abort returned false for running occupation")
	}
	if tr.Busy() {
		t.Fatal("busy after abort")
	}
	log := tr.Log()
	if len(log) != 1 || !log[0].Aborted || log[0].End != 40 {
		t.Fatalf("log = %+v", log)
	}
	// Second abort is a no-op.
	if tr.Abort() {
		t.Fatal("Abort on idle CPU returned true")
	}
}

func TestAbortAfterCompletionNoOp(t *testing.T) {
	e := sim.NewEngine()
	tr := NewTracker(e)
	tr.Occupy(KindMeasurement, 10)
	e.RunUntil(20)
	if tr.Abort() {
		t.Fatal("aborted a finished occupation")
	}
}

func TestActiveKind(t *testing.T) {
	e := sim.NewEngine()
	tr := NewTracker(e)
	if tr.ActiveKind() != "" {
		t.Fatal("idle CPU has active kind")
	}
	tr.Occupy(KindMeasurement, 10)
	if tr.ActiveKind() != KindMeasurement {
		t.Fatalf("ActiveKind = %q", tr.ActiveKind())
	}
	e.RunUntil(15)
	if tr.ActiveKind() != "" {
		t.Fatal("finished occupation still active")
	}
}

func TestBusyTimeWindowClipping(t *testing.T) {
	e := sim.NewEngine()
	tr := NewTracker(e)
	tr.Occupy(KindMeasurement, 100) // [0,100)
	e.RunUntil(100)
	tr.Occupy(KindTask, 50) // [100,150)
	if got := tr.BusyTime(KindMeasurement, 50, 120); got != 50 {
		t.Errorf("BusyTime(measurement,50,120) = %v, want 50", got)
	}
	if got := tr.BusyTime("", 50, 120); got != 70 {
		t.Errorf("BusyTime(all,50,120) = %v, want 70", got)
	}
	if got := tr.BusyFraction(KindTask, 100, 200); got != 0.5 {
		t.Errorf("BusyFraction = %v, want 0.5", got)
	}
	if got := tr.BusyFraction(KindTask, 100, 100); got != 0 {
		t.Errorf("empty window fraction = %v, want 0", got)
	}
}

func TestLogIsACopy(t *testing.T) {
	e := sim.NewEngine()
	tr := NewTracker(e)
	tr.Occupy(KindTask, 10)
	log := tr.Log()
	log[0].Kind = "tampered"
	if tr.Log()[0].Kind != KindTask {
		t.Fatal("Log exposed internal slice")
	}
}

func TestViolationLog(t *testing.T) {
	e := sim.NewEngine()
	l := NewViolationLog(e)
	e.RunUntil(42)
	err := l.Record(ViolationKeyAccess, "malware read K")
	if err == nil {
		t.Fatal("Record returned nil error")
	}
	v, ok := err.(Violation)
	if !ok {
		t.Fatalf("Record returned %T", err)
	}
	if v.Time != 42 || v.Kind != ViolationKeyAccess {
		t.Fatalf("violation = %+v", v)
	}
	if l.Count("") != 1 || l.Count(ViolationKeyAccess) != 1 || l.Count(ViolationClockWrite) != 0 {
		t.Fatal("Count mismatch")
	}
	events := l.Events()
	events[0].Kind = "tampered"
	if l.Events()[0].Kind != ViolationKeyAccess {
		t.Fatal("Events exposed internal slice")
	}
}

func TestViolationErrorString(t *testing.T) {
	v := Violation{Time: 5, Kind: ViolationROMWrite, Detail: "x"}
	if v.Error() == "" {
		t.Fatal("empty error string")
	}
}

// Property: occupations never overlap, regardless of request pattern.
func TestPropertyNoOverlap(t *testing.T) {
	f := func(durs []uint8, advances []uint8) bool {
		e := sim.NewEngine()
		tr := NewTracker(e)
		for i, d := range durs {
			tr.Occupy(KindTask, sim.Ticks(d))
			if i < len(advances) {
				e.RunUntil(e.Now() + sim.Ticks(advances[i]))
			}
		}
		log := tr.Log()
		for i := 1; i < len(log); i++ {
			if log[i].Start < log[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: total busy time over an all-covering window equals the sum of
// interval durations.
func TestPropertyBusyTimeConservation(t *testing.T) {
	f := func(durs []uint8) bool {
		e := sim.NewEngine()
		tr := NewTracker(e)
		var want sim.Ticks
		for _, d := range durs {
			occ := tr.Occupy(KindTask, sim.Ticks(d))
			want += occ.Duration()
		}
		return tr.BusyTime("", 0, sim.MaxTicks) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
