package mcu

import (
	"bytes"
	"testing"

	"erasmus/internal/costmodel"
	"erasmus/internal/hw/cpu"
	"erasmus/internal/sim"
)

func newDevice(t *testing.T, e *sim.Engine) *Device {
	t.Helper()
	d, err := New(Config{
		Engine:     e,
		MemorySize: 1024,
		StoreSize:  512,
		Key:        []byte("device-secret-K"),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine()
	cases := []Config{
		{Engine: nil, MemorySize: 1, StoreSize: 1, Key: []byte("k")},
		{Engine: e, MemorySize: 0, StoreSize: 1, Key: []byte("k")},
		{Engine: e, MemorySize: 1, StoreSize: 0, Key: []byte("k")},
		{Engine: e, MemorySize: 1, StoreSize: 1, Key: nil},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestArch(t *testing.T) {
	d := newDevice(t, sim.NewEngine())
	if d.Arch() != costmodel.MSP430 {
		t.Fatalf("Arch = %v", d.Arch())
	}
}

func TestMemoryReadWrite(t *testing.T) {
	d := newDevice(t, sim.NewEngine())
	if err := d.WriteMemory(10, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.Memory()[10:13], []byte{1, 2, 3}) {
		t.Fatal("write not visible")
	}
	if err := d.WriteMemory(-1, []byte{1}); err == nil {
		t.Error("negative offset accepted")
	}
	if err := d.WriteMemory(1023, []byte{1, 2}); err == nil {
		t.Error("out-of-bounds write accepted")
	}
}

func TestMemoryIsLive(t *testing.T) {
	d := newDevice(t, sim.NewEngine())
	d.Memory()[0] = 0xAA
	if d.Memory()[0] != 0xAA {
		t.Fatal("Memory() is not the live image")
	}
}

func TestStoreIsInsecure(t *testing.T) {
	d := newDevice(t, sim.NewEngine())
	d.Store()[0] = 0xFF // malware tampering must be possible
	if d.Store()[0] != 0xFF {
		t.Fatal("store not writable")
	}
	if len(d.Store()) != 512 {
		t.Fatalf("store size = %d", len(d.Store()))
	}
}

func TestRROCAdvancesWithTime(t *testing.T) {
	e := sim.NewEngine()
	d := newDevice(t, e)
	t0 := d.RROC()
	if t0 != DefaultEpoch {
		t.Fatalf("RROC at boot = %d, want epoch %d", t0, DefaultEpoch)
	}
	e.RunUntil(5 * sim.Second)
	if got := d.RROC(); got != DefaultEpoch+uint64(5*sim.Second) {
		t.Fatalf("RROC after 5s = %d", got)
	}
}

func TestRROCCustomEpoch(t *testing.T) {
	e := sim.NewEngine()
	d, err := New(Config{Engine: e, MemorySize: 1, StoreSize: 1, Key: []byte("k"), Epoch: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if d.RROC() != 1000 {
		t.Fatalf("RROC = %d, want 1000", d.RROC())
	}
}

func TestRROCWriteBlocked(t *testing.T) {
	d := newDevice(t, sim.NewEngine())
	before := d.RROC()
	if err := d.WriteRROC(42); err == nil {
		t.Fatal("RROC write succeeded on read-only clock")
	}
	if d.RROC() != before {
		t.Fatal("blocked write changed the clock")
	}
	if d.Violations().Count(cpu.ViolationClockWrite) != 1 {
		t.Fatal("clock-write violation not logged")
	}
}

func TestWritableClockAblation(t *testing.T) {
	e := sim.NewEngine()
	d, err := New(Config{
		Engine: e, MemorySize: 1, StoreSize: 1, Key: []byte("k"),
		WritableClock: true, Epoch: 1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRROC(500); err != nil {
		t.Fatalf("writable clock rejected write: %v", err)
	}
	if d.RROC() != 500 {
		t.Fatalf("RROC = %d after reset to 500", d.RROC())
	}
	e.RunUntil(100)
	if d.RROC() != 600 {
		t.Fatalf("RROC = %d, want 600 (reset + elapsed)", d.RROC())
	}
}

func TestAttestProvidesKey(t *testing.T) {
	d := newDevice(t, sim.NewEngine())
	var seen []byte
	err := d.Attest(func(k []byte) {
		seen = append([]byte(nil), k...)
		if !d.InAttestation() {
			t.Error("InAttestation false inside Attest")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seen, []byte("device-secret-K")) {
		t.Fatal("key not provided to attestation code")
	}
	if d.InAttestation() {
		t.Fatal("still in attestation after exit")
	}
}

func TestAttestKeyCopyZeroedAfterExit(t *testing.T) {
	d := newDevice(t, sim.NewEngine())
	var held []byte
	d.Attest(func(k []byte) { held = k })
	for _, b := range held {
		if b != 0 {
			t.Fatal("key copy not cleaned up after attestation exit")
		}
	}
}

func TestAttestNotReentrant(t *testing.T) {
	d := newDevice(t, sim.NewEngine())
	var inner error
	d.Attest(func([]byte) {
		inner = d.Attest(func([]byte) { t.Error("nested attestation executed") })
	})
	if inner == nil {
		t.Fatal("re-entrant Attest succeeded")
	}
	if d.Violations().Count(cpu.ViolationAtomicity) != 1 {
		t.Fatal("atomicity violation not logged")
	}
}

func TestKeyUnprivilegedAlwaysFailsAndLogs(t *testing.T) {
	d := newDevice(t, sim.NewEngine())
	if _, err := d.KeyUnprivileged(); err == nil {
		t.Fatal("unprivileged key read succeeded")
	}
	d.Attest(func([]byte) {
		if _, err := d.KeyUnprivileged(); err == nil {
			t.Error("unprivileged key read succeeded during attestation")
		}
	})
	if d.Violations().Count(cpu.ViolationKeyAccess) != 2 {
		t.Fatalf("key violations = %d, want 2", d.Violations().Count(cpu.ViolationKeyAccess))
	}
}

func TestPeriodicTimer(t *testing.T) {
	e := sim.NewEngine()
	d := newDevice(t, e)
	var fires []sim.Ticks
	stop := d.SetPeriodicTimer(10*sim.Second, func() { fires = append(fires, e.Now()) })
	e.RunUntil(35 * sim.Second)
	stop()
	e.RunUntil(60 * sim.Second)
	if len(fires) != 3 {
		t.Fatalf("timer fired %d times, want 3: %v", len(fires), fires)
	}
	if fires[0] != 10*sim.Second || fires[2] != 30*sim.Second {
		t.Fatalf("fires = %v", fires)
	}
}

func TestOneShotTimer(t *testing.T) {
	e := sim.NewEngine()
	d := newDevice(t, e)
	fired := false
	d.SetOneShotTimer(5*sim.Second, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("one-shot timer never fired")
	}
}

func TestDeviceKeyIsIsolatedCopy(t *testing.T) {
	e := sim.NewEngine()
	key := []byte("mutable")
	d, err := New(Config{Engine: e, MemorySize: 1, StoreSize: 1, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	key[0] = 'X' // caller mutates its slice after provisioning
	var seen []byte
	d.Attest(func(k []byte) { seen = append([]byte(nil), k...) })
	if !bytes.Equal(seen, []byte("mutable")) {
		t.Fatal("device key aliased caller's slice")
	}
}
