package mcu

import (
	"testing"

	"erasmus/internal/hw/cpu"
	"erasmus/internal/sim"
)

func TestBusReadReconstructsRROC(t *testing.T) {
	e := sim.NewEngine()
	d, err := New(Config{Engine: e, MemorySize: 1, StoreSize: 1, Key: []byte("k"), Epoch: 0x0123_4567_89AB_CDEF})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.ReadRROCViaBus(); got != 0x0123_4567_89AB_CDEF {
		t.Fatalf("bus read = %#x, want epoch", got)
	}
}

// The latch makes multi-word reads torn-read safe: time advancing between
// the word reads must not mix two counter values.
func TestBusReadLatchedAcrossTime(t *testing.T) {
	e := sim.NewEngine()
	// Epoch just below a 2^16 ns carry boundary: the low word is about to
	// overflow into word 1.
	d, err := New(Config{Engine: e, MemorySize: 1, StoreSize: 1, Key: []byte("k"), Epoch: 0xFFF0})
	if err != nil {
		t.Fatal(err)
	}
	w0, _ := d.PeripheralRead(RROCWord0) // latches at 0xFFF0
	// The counter rolls past 0x10000 before the upper words are read.
	e.RunUntil(0x100)
	w1, _ := d.PeripheralRead(RROCWord1)
	w2, _ := d.PeripheralRead(RROCWord2)
	w3, _ := d.PeripheralRead(RROCWord3)
	got := uint64(w0) | uint64(w1)<<16 | uint64(w2)<<32 | uint64(w3)<<48
	if got != 0xFFF0 {
		t.Fatalf("torn read: got %#x, want the latched %#x", got, 0xFFF0)
	}
	// A naive (unlatched) read at this point would have produced
	// 0x1_00F0 & high words of the *new* value — i.e. w0 from the old
	// value with w1 from the new one: verify the hazard actually exists
	// in this scenario so the latch is doing real work.
	if d.RROC()>>16 == uint64(w0)>>16 {
		t.Fatal("test scenario did not cross a carry boundary")
	}
}

func TestBusReadRelatches(t *testing.T) {
	e := sim.NewEngine()
	d, err := New(Config{Engine: e, MemorySize: 1, StoreSize: 1, Key: []byte("k"), Epoch: 1000})
	if err != nil {
		t.Fatal(err)
	}
	first := d.ReadRROCViaBus()
	e.RunUntil(5 * sim.Second)
	second := d.ReadRROCViaBus()
	if second <= first {
		t.Fatal("second bus read did not observe the advanced counter")
	}
	if second != d.RROC() {
		t.Fatalf("bus read %d != RROC %d", second, d.RROC())
	}
}

func TestBusWriteToRROCBlocked(t *testing.T) {
	e := sim.NewEngine()
	d, err := New(Config{Engine: e, MemorySize: 1, StoreSize: 1, Key: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range []uint16{RROCWord0, RROCWord1, RROCWord2, RROCWord3} {
		if err := d.PeripheralWrite(addr, 0xDEAD); err == nil {
			t.Fatalf("write to RROC word %#x succeeded", addr)
		}
	}
	if d.Violations().Count(cpu.ViolationClockWrite) != 4 {
		t.Fatalf("violations = %d, want 4", d.Violations().Count(cpu.ViolationClockWrite))
	}
}

func TestUnmappedPeripheralAccess(t *testing.T) {
	e := sim.NewEngine()
	d, err := New(Config{Engine: e, MemorySize: 1, StoreSize: 1, Key: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.PeripheralRead(0x0000); err == nil {
		t.Fatal("unmapped read succeeded")
	}
	if err := d.PeripheralWrite(0x0000, 1); err == nil {
		t.Fatal("unmapped write succeeded")
	}
}
