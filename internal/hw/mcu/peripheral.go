package mcu

import (
	"erasmus/internal/hw/cpu"
)

// Peripheral bus model. The MSP430 peripheral space is 16-bit-word
// addressed; the RROC is exposed as four read-only words. Because software
// reads a 64-bit counter over a 16-bit bus, the hardware must latch the
// upper words when the lowest word is read — otherwise a carry rippling
// between two bus reads yields a torn (inconsistent) timestamp, which
// would let malware dispute measurement times. The latch is part of the
// RROC netlist (the sync_stage registers in internal/hw/rtl).

// Peripheral word addresses of the RROC (word offsets in the peripheral
// space, mirroring an omsp peripheral at 0x0190).
const (
	RROCWord0 uint16 = 0x0190 + 2*iota // bits 15..0; reading latches 63..16
	RROCWord1                          // bits 31..16 (latched)
	RROCWord2                          // bits 47..32 (latched)
	RROCWord3                          // bits 63..48 (latched)
)

// PeripheralRead performs a 16-bit bus read. Reading RROCWord0 samples the
// full counter and latches the upper words; reading words 1–3 returns the
// latched snapshot, so a multi-word read sequence started at word 0 always
// observes one consistent counter value regardless of elapsed cycles.
func (d *Device) PeripheralRead(addr uint16) (uint16, error) {
	switch addr {
	case RROCWord0:
		v := d.RROC()
		d.rrocLatch = v
		return uint16(v), nil
	case RROCWord1:
		return uint16(d.rrocLatch >> 16), nil
	case RROCWord2:
		return uint16(d.rrocLatch >> 32), nil
	case RROCWord3:
		return uint16(d.rrocLatch >> 48), nil
	default:
		return 0, d.viol.Record(cpu.ViolationKind("bus-decode"),
			"read of unmapped peripheral address")
	}
}

// PeripheralWrite performs a 16-bit bus write. The RROC words have no
// write decode at all — the write-enable wire was removed (§4.1) — so any
// write in their range is a violation.
func (d *Device) PeripheralWrite(addr uint16, v uint16) error {
	switch addr {
	case RROCWord0, RROCWord1, RROCWord2, RROCWord3:
		return d.viol.Record(cpu.ViolationClockWrite, "bus write to RROC word")
	default:
		return d.viol.Record(cpu.ViolationKind("bus-decode"),
			"write to unmapped peripheral address")
	}
}

// ReadRROCViaBus performs the 4-word read sequence the ROM clock driver
// uses, returning the reconstructed 64-bit value. It is torn-read safe by
// construction of the latch.
func (d *Device) ReadRROCViaBus() uint64 {
	w0, _ := d.PeripheralRead(RROCWord0)
	w1, _ := d.PeripheralRead(RROCWord1)
	w2, _ := d.PeripheralRead(RROCWord2)
	w3, _ := d.PeripheralRead(RROCWord3)
	return uint64(w0) | uint64(w1)<<16 | uint64(w2)<<32 | uint64(w3)<<48
}
