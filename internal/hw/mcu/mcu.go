// Package mcu models a low-end MSP430-class microcontroller with the
// SMART+ security architecture, the low-end prover platform of the paper.
//
// The model captures the properties ERASMUS depends on (§2, §3.4, Fig. 5):
//
//   - Attestation code and the secret K live in ROM; K is readable only
//     from within the attestation code (hard-wired MCU access rules).
//   - Attestation executes atomically: non-reentrant, entered at its first
//     instruction, interrupts disabled for its duration.
//   - A Reliable Read-Only Clock (RROC): a 64-bit counter incremented every
//     cycle whose write-enable wire does not exist. Software cannot change
//     it (unless the WritableClock ablation is enabled, which exists only
//     to demonstrate the §3.4 clock-reset attack).
//   - Hardware timers (omsp_timerA) that invoke the measurement routine on
//     schedule without verifier interaction.
//   - Everything else — including the measurement store — is ordinary
//     writable memory that resident malware may read and modify at will.
//
// Instruction-level execution is not simulated; computation is accounted in
// virtual time via the calibrated cost model, while all cryptography runs
// for real over the device's live memory image.
package mcu

import (
	"errors"
	"fmt"

	"erasmus/internal/costmodel"
	"erasmus/internal/hw/cpu"
	"erasmus/internal/sim"
)

// DefaultEpoch mirrors the timestamp in the paper's Figure 3 example
// (t = 1492453673), expressed in nanoseconds.
const DefaultEpoch = 1492453673 * uint64(sim.Second)

// Config parameterizes a device.
type Config struct {
	// Engine is the simulation the device lives in. Required.
	Engine *sim.Engine
	// MemorySize is the attested memory size in bytes (Fig. 6 sweeps
	// this from 0 to 10 KB). Required, positive.
	MemorySize int
	// StoreSize is the size in bytes of the insecure measurement store
	// (the windowed buffer region of Fig. 3). Required, positive.
	StoreSize int
	// Key is the device-unique secret K provisioned in ROM. Required.
	Key []byte
	// Epoch is the RROC value at simulation time zero, in nanoseconds.
	// Defaults to DefaultEpoch.
	Epoch uint64
	// WritableClock enables the hypothetical flawed-RROC ablation used to
	// demonstrate the §3.4 attack. Production SMART+ hardware cannot do
	// this; leave false except in that experiment.
	WritableClock bool
}

// Device is one simulated prover MCU.
type Device struct {
	engine *sim.Engine
	cpu    *cpu.Tracker
	viol   *cpu.ViolationLog

	mem   []byte // attested image (program + data), writable by anyone
	store []byte // measurement store, writable by anyone
	key   []byte // in ROM, guarded by access rules

	epoch         uint64
	clockOffset   int64 // nonzero only via the WritableClock ablation
	writableClock bool
	rrocLatch     uint64 // upper-word latch for 16-bit bus reads

	inAttestation bool
}

// New builds a device. All memory starts zeroed; callers install a program
// image via Memory / WriteMemory before taking baseline measurements.
func New(cfg Config) (*Device, error) {
	if cfg.Engine == nil {
		return nil, errors.New("mcu: Config.Engine is required")
	}
	if cfg.MemorySize <= 0 {
		return nil, fmt.Errorf("mcu: MemorySize must be positive, got %d", cfg.MemorySize)
	}
	if cfg.StoreSize <= 0 {
		return nil, fmt.Errorf("mcu: StoreSize must be positive, got %d", cfg.StoreSize)
	}
	if len(cfg.Key) == 0 {
		return nil, errors.New("mcu: Key is required")
	}
	epoch := cfg.Epoch
	if epoch == 0 {
		epoch = DefaultEpoch
	}
	return &Device{
		engine:        cfg.Engine,
		cpu:           cpu.NewTracker(cfg.Engine),
		viol:          cpu.NewViolationLog(cfg.Engine),
		mem:           make([]byte, cfg.MemorySize),
		store:         make([]byte, cfg.StoreSize),
		key:           append([]byte(nil), cfg.Key...),
		epoch:         epoch,
		writableClock: cfg.WritableClock,
	}, nil
}

// Arch identifies the platform for the cost model.
func (d *Device) Arch() costmodel.Arch { return costmodel.MSP430 }

// Engine returns the simulation engine the device is bound to.
func (d *Device) Engine() *sim.Engine { return d.engine }

// CPU returns the single-core occupancy tracker.
func (d *Device) CPU() *cpu.Tracker { return d.cpu }

// Violations returns the device's access-violation log.
func (d *Device) Violations() *cpu.ViolationLog { return d.viol }

// Memory returns the live attested memory image. Writes through the
// returned slice model software (including malware) modifying prover state.
func (d *Device) Memory() []byte { return d.mem }

// WriteMemory writes into the attested image, as any running software may.
func (d *Device) WriteMemory(off int, b []byte) error {
	if off < 0 || off+len(b) > len(d.mem) {
		return fmt.Errorf("mcu: write [%d,%d) outside memory of %d bytes", off, off+len(b), len(d.mem))
	}
	copy(d.mem[off:], b)
	return nil
}

// Store returns the insecure measurement-store region (Fig. 3). It is
// deliberately unprotected: malware may modify, reorder or delete records,
// and §3.4 argues any such tampering is detected at the next collection.
func (d *Device) Store() []byte { return d.store }

// RROC returns the Reliable Read-Only Clock in nanoseconds since the
// device epoch. On hardware this is a 64-bit register incremented every
// cycle; the model derives it from virtual time. Readable by anyone.
func (d *Device) RROC() uint64 {
	base := d.epoch + uint64(d.engine.Now())
	return uint64(int64(base) + d.clockOffset)
}

// WriteRROC attempts to set the clock, as the §3.4 attack requires. On a
// correct SMART+ device the write-enable wire is absent, so this logs a
// violation and fails; with the WritableClock ablation it succeeds.
func (d *Device) WriteRROC(v uint64) error {
	if !d.writableClock {
		return d.viol.Record(cpu.ViolationClockWrite, "RROC has no write enable")
	}
	d.clockOffset = int64(v) - int64(d.epoch+uint64(d.engine.Now()))
	return nil
}

// InAttestation reports whether the ROM attestation code is executing.
func (d *Device) InAttestation() bool { return d.inAttestation }

// ErrAtomicity is returned when attestation code is re-entered while
// already running, which the hardware monitor forbids.
var ErrAtomicity = errors.New("mcu: attestation code is not re-entrant")

// Attest executes fn as the ROM-resident attestation code: atomically,
// with interrupts disabled and with access to K. The key slice passed to
// fn is a copy that is zeroed on exit, modeling SMART's post-execution
// memory cleanup.
func (d *Device) Attest(fn func(key []byte)) error {
	if d.inAttestation {
		return d.viol.Record(cpu.ViolationAtomicity, ErrAtomicity.Error())
	}
	d.inAttestation = true
	k := append([]byte(nil), d.key...)
	defer func() {
		for i := range k {
			k[i] = 0
		}
		d.inAttestation = false
	}()
	fn(k)
	return nil
}

// KeyUnprivileged models malware attempting to read K from normal-world
// code. The MCU access rules block it and the attempt is logged.
func (d *Device) KeyUnprivileged() ([]byte, error) {
	if d.inAttestation {
		// Even during attestation, only the ROM code path (Attest's fn)
		// holds the key; an unprivileged read is still a violation.
		return nil, d.viol.Record(cpu.ViolationKeyAccess, "unprivileged key read during attestation")
	}
	return nil, d.viol.Record(cpu.ViolationKeyAccess, "unprivileged key read")
}

// SetPeriodicTimer programs a hardware timer (omsp_timerA) to invoke fn
// every interval, starting one interval from now. It returns a stop
// function. Timers fire regardless of CPU occupancy — the handler decides
// whether to queue work behind the busy core.
func (d *Device) SetPeriodicTimer(interval sim.Ticks, fn func()) (stop func()) {
	return d.engine.Ticker(d.engine.Now()+interval, interval, fn)
}

// SetOneShotTimer programs a single timer expiry after delay.
func (d *Device) SetOneShotTimer(delay sim.Ticks, fn func()) *sim.Event {
	return d.engine.After(delay, fn)
}
