// Package imx6 models the i.MX6 Sabre Lite development board running the
// HYDRA security architecture on seL4, the medium-end prover platform of
// the paper (§4.2).
//
// The pieces the paper describes are all present:
//
//   - RROC built in software (after Brasser et al.): the General Purpose
//     Timer (GPT) supplies a 32-bit up-counter; when it wraps, an interrupt
//     is handled by clock code in PrAtt, which updates the high-order bits.
//     The full clock value combines those bits with the live GPT counter.
//     Read-only-ness is enforced by seL4: PrAtt holds the only write
//     capability to the RROC components.
//   - The Enhanced Periodic Interrupt Timer (EPIT) schedules execution of
//     the ERASMUS measurement code.
//   - K and the attestation code live in ordinary RAM but are isolated by
//     capabilities that only PrAtt holds; PrAtt runs at the highest
//     priority (atomicity); secure boot covers the kernel and PrAtt.
//
// As with the MCU model, computation is charged to virtual time via the
// calibrated cost model while the cryptography itself is real.
package imx6

import (
	"errors"
	"fmt"
	"math/bits"

	"erasmus/internal/costmodel"
	"erasmus/internal/hw/cpu"
	"erasmus/internal/kernel/sel4"
	"erasmus/internal/sim"
)

// GPT configuration: the i.MX6 GPT runs from the 66 MHz peripheral clock
// and wraps a 32-bit counter every ~65 seconds.
const (
	GPTFrequencyHz = 66_000_000
	gptWrapCycles  = 1 << 32
)

// regionKey and regionRROCHigh are the kernel regions whose capabilities
// PrAtt holds exclusively.
const (
	regionKey      = "key"
	regionRROCHigh = "rroc-high-bits"
	regionTCB      = "pratt-tcb"
)

// Config parameterizes a board.
type Config struct {
	// Engine is the simulation the device lives in. Required.
	Engine *sim.Engine
	// MemorySize is the attested memory size in bytes (Fig. 8 sweeps this
	// from 0 to 10 MB). Required, positive.
	MemorySize int
	// StoreSize is the size of the insecure measurement store. Required.
	StoreSize int
	// Key is the device secret K. Required.
	Key []byte
	// Epoch is the RROC value at boot, in nanoseconds. Defaults to the
	// same epoch as the MCU model.
	Epoch uint64
	// WritableClock enables the flawed-clock ablation (§3.4 attack demo).
	WritableClock bool
	// PrAttPriority is PrAtt's scheduling priority (default 255).
	PrAttPriority int
}

// DefaultEpoch mirrors the paper's Figure 3 timestamp, in nanoseconds.
const DefaultEpoch = 1492453673 * uint64(sim.Second)

// Device is one simulated HYDRA prover board.
type Device struct {
	engine *sim.Engine
	kernel *sel4.Kernel
	cpu    *cpu.Tracker

	mem   []byte
	store []byte

	appProc *sel4.Process // represents the untrusted normal world

	epoch         uint64
	clockOffset   int64
	writableClock bool
	wrapCount     uint64 // high-order clock bits, maintained by PrAtt
	stopWrap      func()

	inAttestation bool
}

// New boots a board: secure boot of the kernel + PrAtt, region setup with
// exclusive PrAtt capabilities, GPT wrap-interrupt installation, and an
// untrusted application process for the normal world.
func New(cfg Config) (*Device, error) {
	if cfg.Engine == nil {
		return nil, errors.New("imx6: Config.Engine is required")
	}
	if cfg.MemorySize <= 0 {
		return nil, fmt.Errorf("imx6: MemorySize must be positive, got %d", cfg.MemorySize)
	}
	if cfg.StoreSize <= 0 {
		return nil, fmt.Errorf("imx6: StoreSize must be positive, got %d", cfg.StoreSize)
	}
	if len(cfg.Key) == 0 {
		return nil, errors.New("imx6: Key is required")
	}
	prio := cfg.PrAttPriority
	if prio == 0 {
		prio = 255
	}
	epoch := cfg.Epoch
	if epoch == 0 {
		epoch = DefaultEpoch
	}

	img := sel4.BootImage{Kernel: []byte("seL4"), PrAtt: []byte("PrAtt-ERASMUS")}
	kern, err := sel4.Boot(cfg.Engine, img, img.Digest(), prio)
	if err != nil {
		return nil, err
	}

	d := &Device{
		engine:        cfg.Engine,
		kernel:        kern,
		cpu:           cpu.NewTracker(cfg.Engine),
		mem:           make([]byte, cfg.MemorySize),
		store:         make([]byte, cfg.StoreSize),
		epoch:         epoch,
		writableClock: cfg.WritableClock,
	}

	prAtt := kern.PrAtt()
	keyRegion, err := kern.CreateRegion(regionKey, len(cfg.Key), prAtt)
	if err != nil {
		return nil, err
	}
	copy(keyRegion.Data, cfg.Key)
	if _, err := kern.CreateRegion(regionRROCHigh, 8, prAtt); err != nil {
		return nil, err
	}
	if _, err := kern.CreateRegion(regionTCB, 64, prAtt); err != nil {
		return nil, err
	}
	d.appProc, err = kern.Spawn(prAtt, "app", prio-100)
	if err != nil {
		return nil, err
	}

	// Install the GPT wrap interrupt: PrAtt's clock code updates the
	// high-order bits whenever the 32-bit counter rolls over.
	wrapPeriod := cyclesToTicks(gptWrapCycles)
	d.stopWrap = cfg.Engine.Ticker(cfg.Engine.Now()+wrapPeriod, wrapPeriod, func() {
		d.wrapCount++
	})
	return d, nil
}

// Close stops the device's background wrap-interrupt ticker.
func (d *Device) Close() {
	if d.stopWrap != nil {
		d.stopWrap()
		d.stopWrap = nil
	}
}

// Arch identifies the platform for the cost model.
func (d *Device) Arch() costmodel.Arch { return costmodel.IMX6 }

// Engine returns the simulation engine.
func (d *Device) Engine() *sim.Engine { return d.engine }

// CPU returns the single-core occupancy tracker.
func (d *Device) CPU() *cpu.Tracker { return d.cpu }

// Violations returns the kernel's violation log (capability and boot
// violations land here).
func (d *Device) Violations() *cpu.ViolationLog { return d.kernel.Violations() }

// Kernel exposes the underlying seL4 model for kernel-level tests.
func (d *Device) Kernel() *sel4.Kernel { return d.kernel }

// Memory returns the live attested memory image.
func (d *Device) Memory() []byte { return d.mem }

// WriteMemory writes into the attested image.
func (d *Device) WriteMemory(off int, b []byte) error {
	if off < 0 || off+len(b) > len(d.mem) {
		return fmt.Errorf("imx6: write [%d,%d) outside memory of %d bytes", off, off+len(b), len(d.mem))
	}
	copy(d.mem[off:], b)
	return nil
}

// Store returns the insecure measurement-store region.
func (d *Device) Store() []byte { return d.store }

// gptCycles returns the free-running cycle count since boot.
func (d *Device) gptCycles() uint64 {
	now := uint64(d.engine.Now())
	// cycles = now_ns × 66e6 / 1e9 = now × 33 / 500, computed exactly.
	hi, lo := bits.Mul64(now, 33)
	q, _ := bits.Div64(hi, lo, 500)
	return q
}

func cyclesToTicks(cycles uint64) sim.Ticks {
	hi, lo := bits.Mul64(cycles, 500)
	q, _ := bits.Div64(hi, lo, 33)
	return sim.Ticks(q)
}

// RROC returns the software-constructed clock in nanoseconds since epoch:
// high-order bits maintained by PrAtt's wrap handler, low bits read live
// from the GPT. If a wrap is pending at this exact instant (interrupt not
// yet delivered), the driver compensates using the GPT rollover status
// bit, as the real clock code must.
func (d *Device) RROC() uint64 {
	cyc := d.gptCycles()
	low := cyc % gptWrapCycles
	high := d.wrapCount
	if pending := cyc / gptWrapCycles; pending > high {
		high = pending
	}
	ns := cyclesToTicks(high*gptWrapCycles + low)
	return uint64(int64(d.epoch) + int64(ns) + d.clockOffset)
}

// WriteRROC attempts to set the clock from the normal world. seL4 denies
// it — PrAtt holds the only write capability to the RROC components —
// unless the WritableClock ablation is active.
func (d *Device) WriteRROC(v uint64) error {
	if !d.writableClock {
		_, err := d.kernel.Access(d.appProc, regionRROCHigh, sel4.Write)
		if err == nil {
			err = errors.New("imx6: unexpected write capability on RROC")
		}
		return err
	}
	d.clockOffset = int64(v) - int64(d.RROC()-uint64(d.clockOffset))
	return nil
}

// InAttestation reports whether PrAtt's measurement code is executing.
func (d *Device) InAttestation() bool { return d.inAttestation }

// ErrAtomicity mirrors the MCU model: PrAtt's measurement entry point is
// not re-entrant (and nothing can preempt it at top priority).
var ErrAtomicity = errors.New("imx6: attestation code is not re-entrant")

// Attest executes fn as PrAtt's measurement code with access to K. The
// kernel checks that PrAtt still holds exclusive rights on the key region
// before releasing it.
func (d *Device) Attest(fn func(key []byte)) error {
	if d.inAttestation {
		return d.kernel.Violations().Record(cpu.ViolationAtomicity, ErrAtomicity.Error())
	}
	prAtt := d.kernel.PrAtt()
	region, err := d.kernel.Access(prAtt, regionKey, sel4.Read)
	if err != nil {
		return err
	}
	if !d.kernel.ExclusiveHolder(prAtt, regionKey) {
		return d.kernel.Violations().Record(cpu.ViolationCapability,
			"key region no longer exclusive to PrAtt")
	}
	d.inAttestation = true
	k := append([]byte(nil), region.Data...)
	defer func() {
		for i := range k {
			k[i] = 0
		}
		d.inAttestation = false
	}()
	fn(k)
	return nil
}

// KeyUnprivileged models the normal-world app attempting to read K; seL4
// rejects it for lack of a capability.
func (d *Device) KeyUnprivileged() ([]byte, error) {
	if _, err := d.kernel.Access(d.appProc, regionKey, sel4.Read); err != nil {
		return nil, err
	}
	return nil, errors.New("imx6: unexpected read capability on key region")
}

// SetPeriodicTimer programs the EPIT to invoke fn every interval.
func (d *Device) SetPeriodicTimer(interval sim.Ticks, fn func()) (stop func()) {
	return d.engine.Ticker(d.engine.Now()+interval, interval, fn)
}

// SetOneShotTimer programs a single EPIT expiry after delay.
func (d *Device) SetOneShotTimer(delay sim.Ticks, fn func()) *sim.Event {
	return d.engine.After(delay, fn)
}
