package imx6

import (
	"bytes"
	"testing"

	"erasmus/internal/costmodel"
	"erasmus/internal/hw/cpu"
	"erasmus/internal/kernel/sel4"
	"erasmus/internal/sim"
)

func newDevice(t *testing.T, e *sim.Engine) *Device {
	t.Helper()
	d, err := New(Config{
		Engine:     e,
		MemorySize: 4096,
		StoreSize:  2048,
		Key:        []byte("hydra-secret-K"),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine()
	cases := []Config{
		{Engine: nil, MemorySize: 1, StoreSize: 1, Key: []byte("k")},
		{Engine: e, MemorySize: 0, StoreSize: 1, Key: []byte("k")},
		{Engine: e, MemorySize: 1, StoreSize: 0, Key: []byte("k")},
		{Engine: e, MemorySize: 1, StoreSize: 1, Key: nil},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestArch(t *testing.T) {
	if newDevice(t, sim.NewEngine()).Arch() != costmodel.IMX6 {
		t.Fatal("wrong arch")
	}
}

func TestRROCStartsAtEpoch(t *testing.T) {
	d := newDevice(t, sim.NewEngine())
	if d.RROC() != DefaultEpoch {
		t.Fatalf("RROC at boot = %d, want %d", d.RROC(), DefaultEpoch)
	}
}

func TestRROCAdvances(t *testing.T) {
	e := sim.NewEngine()
	d := newDevice(t, e)
	e.RunUntil(10 * sim.Second)
	got := d.RROC() - DefaultEpoch
	// GPT quantization: 66 MHz granularity ≈ 15 ns.
	if got < uint64(10*sim.Second)-100 || got > uint64(10*sim.Second)+100 {
		t.Fatalf("RROC advanced %d ns over 10 s", got)
	}
}

// The GPT wraps every ~65 s; the software clock must stay monotone and
// accurate across many wraps (this is the Brasser-style RROC construction).
func TestRROCMonotoneAcrossGPTWraps(t *testing.T) {
	e := sim.NewEngine()
	d := newDevice(t, e)
	var prev uint64
	// 10-minute run crosses ~9 wrap boundaries.
	for step := sim.Ticks(0); step <= 10*sim.Minute; step += 7 * sim.Second {
		e.RunUntil(step)
		got := d.RROC()
		if got < prev {
			t.Fatalf("clock went backwards at %v: %d < %d", step, got, prev)
		}
		prev = got
	}
	// Absolute accuracy after 10 minutes: within GPT quantization.
	e.RunUntil(10 * sim.Minute)
	final := d.RROC()
	if final < prev {
		t.Fatalf("clock went backwards at the end: %d < %d", final, prev)
	}
	want := DefaultEpoch + uint64(10*sim.Minute)
	diff := int64(final) - int64(want)
	if diff < -1000 || diff > 1000 {
		t.Fatalf("clock drift after 10 min: %d ns", diff)
	}
}

// Reading the clock exactly at a wrap boundary, before the interrupt
// handler has run, must still return the right value (rollover-pending
// compensation).
func TestRROCAtExactWrapInstant(t *testing.T) {
	e := sim.NewEngine()
	d := newDevice(t, e)
	wrapAt := cyclesToTicks(gptWrapCycles)
	var got uint64
	// Schedule the read at the wrap tick; it was scheduled before the
	// device's ticker rescheduled, but FIFO ordering at equal times means
	// the wrap handler (scheduled at boot) fires first. Schedule a fresh
	// event now, which runs after the handler — then read one tick before
	// the wrap, where the handler has definitely not run.
	e.At(wrapAt-1, func() { got = d.RROC() })
	e.RunUntil(wrapAt - 1)
	want := DefaultEpoch + uint64(cyclesToTicks(d.gptCycles()))
	if got != want {
		t.Fatalf("pre-wrap read = %d, want %d", got, want)
	}
	// And just after the wrap.
	e.RunUntil(wrapAt + sim.Second)
	after := d.RROC()
	if after <= got {
		t.Fatalf("clock did not advance across wrap: %d then %d", got, after)
	}
}

func TestWriteRROCDeniedByCapability(t *testing.T) {
	d := newDevice(t, sim.NewEngine())
	before := d.RROC()
	if err := d.WriteRROC(12345); err == nil {
		t.Fatal("normal-world RROC write succeeded")
	}
	if d.RROC() != before {
		t.Fatal("denied write changed clock")
	}
	if d.Violations().Count(cpu.ViolationCapability) == 0 {
		t.Fatal("capability violation not logged")
	}
}

func TestWritableClockAblation(t *testing.T) {
	e := sim.NewEngine()
	d, err := New(Config{
		Engine: e, MemorySize: 1, StoreSize: 1, Key: []byte("k"),
		WritableClock: true, Epoch: 1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.WriteRROC(777); err != nil {
		t.Fatalf("ablation write failed: %v", err)
	}
	if d.RROC() != 777 {
		t.Fatalf("RROC = %d after reset", d.RROC())
	}
}

func TestAttestProvidesKeyAndCleansUp(t *testing.T) {
	d := newDevice(t, sim.NewEngine())
	var held []byte
	err := d.Attest(func(k []byte) {
		if !bytes.Equal(k, []byte("hydra-secret-K")) {
			t.Error("wrong key in attestation")
		}
		if !d.InAttestation() {
			t.Error("InAttestation false inside Attest")
		}
		held = k
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range held {
		if b != 0 {
			t.Fatal("key copy not zeroed after exit")
		}
	}
	if d.InAttestation() {
		t.Fatal("still in attestation")
	}
}

func TestAttestNotReentrant(t *testing.T) {
	d := newDevice(t, sim.NewEngine())
	var inner error
	d.Attest(func([]byte) {
		inner = d.Attest(func([]byte) { t.Error("nested attestation ran") })
	})
	if inner == nil {
		t.Fatal("re-entrant Attest succeeded")
	}
}

func TestAttestRefusesWhenKeyNotExclusive(t *testing.T) {
	d := newDevice(t, sim.NewEngine())
	k := d.Kernel()
	// Simulate a configuration bug: key capability leaked to the app.
	if err := k.GrantCap(k.PrAtt(), appOf(d), "key", sel4.Read); err != nil {
		t.Fatalf("test setup grant failed: %v", err)
	}
	if err := d.Attest(func([]byte) { t.Error("attestation ran with leaked key cap") }); err == nil {
		t.Fatal("Attest succeeded despite non-exclusive key")
	}
}

// appOf reaches the untrusted app process for tests.
func appOf(d *Device) *sel4.Process { return d.appProc }

func TestKeyUnprivilegedDenied(t *testing.T) {
	d := newDevice(t, sim.NewEngine())
	if _, err := d.KeyUnprivileged(); err == nil {
		t.Fatal("app read K")
	}
	if d.Violations().Count(cpu.ViolationCapability) == 0 {
		t.Fatal("violation not logged")
	}
}

func TestMemoryAndStore(t *testing.T) {
	d := newDevice(t, sim.NewEngine())
	if err := d.WriteMemory(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteMemory(4095, []byte{1, 2}); err == nil {
		t.Fatal("OOB write accepted")
	}
	d.Store()[0] = 0x5A
	if d.Store()[0] != 0x5A {
		t.Fatal("store not writable")
	}
}

func TestEPITTimers(t *testing.T) {
	e := sim.NewEngine()
	d := newDevice(t, e)
	count := 0
	stop := d.SetPeriodicTimer(sim.Second, func() { count++ })
	oneshot := false
	d.SetOneShotTimer(2500*sim.Millisecond, func() { oneshot = true })
	e.RunUntil(3500 * sim.Millisecond)
	stop()
	if count != 3 {
		t.Fatalf("EPIT fired %d times, want 3", count)
	}
	if !oneshot {
		t.Fatal("one-shot timer never fired")
	}
}

func TestPrAttPriorityDefault(t *testing.T) {
	d := newDevice(t, sim.NewEngine())
	if d.Kernel().PrAtt().Priority != 255 {
		t.Fatalf("PrAtt priority = %d", d.Kernel().PrAtt().Priority)
	}
	// The normal world runs strictly below PrAtt.
	if appOf(d).Priority >= 255 {
		t.Fatal("app priority not below PrAtt")
	}
}

func TestCloseStopsWrapTicker(t *testing.T) {
	e := sim.NewEngine()
	d := newDevice(t, e)
	d.Close()
	d.Close() // idempotent
	// After Close the engine should eventually drain (the ticker would
	// otherwise keep scheduling forever).
	e.RunUntil(cyclesToTicks(gptWrapCycles) * 3)
	if e.Pending() > 1 {
		t.Fatalf("pending events after Close: %d", e.Pending())
	}
}

func TestGPTCycleMath(t *testing.T) {
	e := sim.NewEngine()
	d := newDevice(t, e)
	e.RunUntil(sim.Second)
	if got := d.gptCycles(); got != GPTFrequencyHz {
		t.Fatalf("gptCycles(1s) = %d, want %d", got, GPTFrequencyHz)
	}
	if got := cyclesToTicks(GPTFrequencyHz); got != sim.Second {
		t.Fatalf("cyclesToTicks(66e6) = %v, want 1s", got)
	}
}
