package rtl

// Static timing model: each primitive contributes a register-to-register
// propagation delay, and a module's critical path is the slowest of its
// components (the added ERASMUS blocks are architecturally parallel — the
// RROC incrementer, the access-rule comparators and the FSM sit on
// independent paths off the core's existing registers).
//
// The paper does not report timing, but the implicit requirement is that
// the modifications must not break the 8 MHz operating point of the
// OpenMSP430 (a 125 ns cycle). The constants below are generic 4-LUT FPGA
// class numbers; the conclusion (the 64-bit carry chain clears 125 ns by
// more than an order of magnitude) is robust to any reasonable choice.

// FPGA timing constants in nanoseconds.
const (
	ClkToQ      = 0.50 // register clock-to-output
	LUTDelay    = 0.90 // one 4-LUT traversal
	CarryPerBit = 0.05 // dedicated carry-chain propagation per bit
	RouteDelay  = 0.60 // average net routing between levels
	Setup       = 0.40 // register setup time
)

// Delay returns the register-to-register critical path in nanoseconds
// contributed by a component. Unknown components (opaque macros) report
// their stored delay.
func Delay(c Component) float64 {
	switch v := c.(type) {
	case *Module:
		worst := 0.0
		for _, child := range v.Children() {
			if d := Delay(child); d > worst {
				worst = d
			}
		}
		return worst
	case leaf:
		return v.delay
	default:
		return 0
	}
}

// MaxFrequencyMHz converts a critical path to a clock ceiling.
func MaxFrequencyMHz(c Component) float64 {
	d := Delay(c)
	if d <= 0 {
		return 0
	}
	return 1000.0 / d
}

// MeetsTiming reports whether the component closes timing at the given
// clock frequency.
func MeetsTiming(c Component, clockMHz float64) bool {
	return MaxFrequencyMHz(c) >= clockMHz
}

// Primitive delay formulas, used by the constructors in rtl.go.

func registerDelay(int) float64 { return ClkToQ + RouteDelay + Setup }

func incrementerDelay(width int) float64 {
	// One LUT to start the chain, then a dedicated carry cell per bit.
	return ClkToQ + LUTDelay + float64(width-1)*CarryPerBit + RouteDelay + Setup
}

func magnitudeDelay(width int) float64 {
	return ClkToQ + LUTDelay + float64(width-1)*CarryPerBit + RouteDelay + Setup
}

func eqDelay(width int) float64 {
	// XNOR level plus a log4 AND-reduction tree.
	levels := 1
	for n := (width + 1) / 2; n > 1; n = (n + 3) / 4 {
		levels++
	}
	return ClkToQ + float64(levels)*(LUTDelay+RouteDelay) + Setup
}

func muxDelay(ways int) float64 {
	// 2:1 tree depth.
	levels := 0
	for n := ways; n > 1; n = (n + 1) / 2 {
		levels++
	}
	return ClkToQ + float64(levels)*(LUTDelay+RouteDelay) + Setup
}

func fsmDelay(logicLUTs int) float64 {
	// Next-state logic depth grows slowly with the LUT budget; two levels
	// cover the small monitors modeled here.
	levels := 1
	if logicLUTs > 8 {
		levels = 2
	}
	return ClkToQ + float64(levels)*(LUTDelay+RouteDelay) + Setup
}

func logicDelay(luts int) float64 {
	levels := 1
	if luts > 8 {
		levels = 2
	}
	return ClkToQ + float64(levels)*(LUTDelay+RouteDelay) + Setup
}
