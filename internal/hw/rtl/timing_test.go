package rtl

import (
	"testing"
	"testing/quick"
)

func TestPrimitiveDelaysPositive(t *testing.T) {
	for _, c := range []Component{
		Register("r", 8),
		Incrementer("i", 64),
		MagnitudeComparator("m", 16),
		EqComparator("e", 16),
		Mux("x", 16, 4),
		FSM("f", 3, 12),
		Logic("g", 10),
	} {
		if Delay(c) <= 0 {
			t.Errorf("%s: non-positive delay %v", c.Name(), Delay(c))
		}
	}
	if Delay(Macro("m", 1, 1)) != 0 {
		t.Error("untimed macro has a delay")
	}
	if Delay(TimedMacro("m", 1, 1, 42)) != 42 {
		t.Error("timed macro delay lost")
	}
}

func TestCarryChainScalesWithWidth(t *testing.T) {
	if Delay(Incrementer("a", 64)) <= Delay(Incrementer("b", 16)) {
		t.Fatal("wider carry chain not slower")
	}
}

func TestModuleCriticalPathIsMax(t *testing.T) {
	m := NewModule("m").Add(
		TimedMacro("slow", 0, 0, 30),
		TimedMacro("fast", 0, 0, 5),
		NewModule("sub").Add(TimedMacro("mid", 0, 0, 12)),
	)
	if got := Delay(m); got != 30 {
		t.Fatalf("critical path = %v, want 30", got)
	}
}

// The key timing conclusion: the ERASMUS additions are far faster than
// the core's own critical path, so the modified core still closes timing
// at 8 MHz (and at the core's native ~20 MHz).
func TestModificationsDoNotDegradeTiming(t *testing.T) {
	mods := Delay(ErasmusModifications())
	if mods <= 0 {
		t.Fatal("modifications have no modeled delay")
	}
	if mods >= baselineDelayNS {
		t.Fatalf("modifications (%.1f ns) would become the critical path (core %.1f ns)", mods, baselineDelayNS)
	}
	if Delay(ModifiedCore()) != baselineDelayNS {
		t.Fatalf("modified core critical path %v, want the core's own %v", Delay(ModifiedCore()), baselineDelayNS)
	}
	if !MeetsTiming(ModifiedCore(), 8) {
		t.Fatal("modified core fails 8 MHz timing")
	}
	if MeetsTiming(ModifiedCore(), 100) {
		t.Fatal("modified core claims 100 MHz — model broken")
	}
}

func TestRROCIncrementerClears125ns(t *testing.T) {
	// The 64-bit counter must update every cycle at 8 MHz.
	if f := MaxFrequencyMHz(RROC()); f < 8 {
		t.Fatalf("RROC Fmax = %.1f MHz < 8", f)
	}
}

func TestMaxFrequencyZeroDelay(t *testing.T) {
	if MaxFrequencyMHz(Macro("m", 0, 0)) != 0 {
		t.Fatal("zero-delay Fmax should be 0 (unknown)")
	}
}

// Property: a module's delay equals the max over its children for any
// composition.
func TestPropertyModuleDelayMax(t *testing.T) {
	f := func(delays []uint16) bool {
		m := NewModule("m")
		worst := 0.0
		for _, d := range delays {
			v := float64(d) / 100
			m.Add(TimedMacro("x", 0, 0, v))
			if v > worst {
				worst = v
			}
		}
		return Delay(m) == worst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
