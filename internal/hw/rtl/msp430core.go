package rtl

// This file instantiates the concrete netlists whose synthesis the paper
// reports in §4.1: the vanilla OpenMSP430 core and the SMART+/ERASMUS
// modifications (which are resource-identical, as the paper observes —
// both designs need the same RROC, access rules and atomicity monitor;
// ERASMUS differs from on-demand only in ROM software).

// Paper-reported synthesis of the unmodified OpenMSP430 core
// (Xilinx ISE 14.7): 579 registers, 1,731 LUTs. The core's own critical
// path is ~50 ns (a 20 MHz-class soft core), far above the 125 ns budget
// of the 8 MHz operating point.
const (
	baselineRegisters = 579
	baselineLUTs      = 1731
	baselineDelayNS   = 50.0
)

// BaselineCore returns the unmodified OpenMSP430 core as an opaque macro.
func BaselineCore() *Module {
	return NewModule("openmsp430").Add(
		TimedMacro("core (unmodified, ISE 14.7)", baselineRegisters, baselineLUTs, baselineDelayNS),
	)
}

// RROC builds the Reliable Read-Only Clock peripheral: a 64-bit register
// incremented every clock cycle, exposed to software over the 16-bit
// peripheral bus as four read-only words. Write protection is structural:
// the write-enable wire simply does not exist in this netlist, so there is
// no write-decode logic to account for.
func RROC() *Module {
	return NewModule("rroc").Add(
		Register("counter", 64),
		Incrementer("increment", 64),
		Mux("bus_rdata(4 words)", 16, 4),
	)
}

// AccessControl builds the memory-backbone modifications: hard-wired rules
// granting the ROM-resident attestation code exclusive access to the key
// region and fencing execution within ROM bounds.
func AccessControl() *Module {
	return NewModule("mem_backbone_rules").Add(
		MagnitudeComparator("pc_ge_rom_base", 16),
		MagnitudeComparator("pc_le_rom_top", 16),
		MagnitudeComparator("addr_ge_key_base", 16),
		MagnitudeComparator("addr_le_key_top", 16),
		Mux("rdata_gate", 16, 2),
		Logic("exec_entry_check", 12),
		Logic("rule_glue", 10),
		Register("sync_stage", 8),
		Register("violation_latch", 1),
		Logic("violation_logic", 8),
		Register("irq_mask_guard", 1),
		Logic("irq_guard_logic", 4),
	)
}

// AtomicMonitor builds the atomic-execution FSM: attestation code must be
// entered at its first instruction, exited at its last, and is
// uninterruptible in between.
func AtomicMonitor() *Module {
	return NewModule("atomic_exec_monitor").Add(
		FSM("entry_body_exit", 3, 12),
	)
}

// ErasmusModifications groups everything added to the vanilla core. The
// same netlist serves on-demand SMART+ and ERASMUS (§4.1: "ERASMUS utilizes
// the same amount of registers and look-up tables as the on-demand
// attestation").
func ErasmusModifications() *Module {
	return NewModule("erasmus_mods").Add(RROC(), AccessControl(), AtomicMonitor())
}

// ModifiedCore returns the full ERASMUS-capable core netlist.
func ModifiedCore() *Module {
	return NewModule("openmsp430_erasmus").Add(
		TimedMacro("core (unmodified, ISE 14.7)", baselineRegisters, baselineLUTs, baselineDelayNS),
		ErasmusModifications(),
	)
}

// SynthesisComparison summarizes baseline vs modified core utilization.
type SynthesisComparison struct {
	Baseline, Modified Resources
}

// Compare synthesizes both cores.
func Compare() SynthesisComparison {
	return SynthesisComparison{
		Baseline: BaselineCore().Resources(),
		Modified: ModifiedCore().Resources(),
	}
}

// RegisterOverhead returns the fractional register increase (paper: ~13%).
func (c SynthesisComparison) RegisterOverhead() float64 {
	return float64(c.Modified.Registers-c.Baseline.Registers) / float64(c.Baseline.Registers)
}

// LUTOverhead returns the fractional LUT increase (paper: ~14%).
func (c SynthesisComparison) LUTOverhead() float64 {
	return float64(c.Modified.LUTs-c.Baseline.LUTs) / float64(c.Baseline.LUTs)
}
