package rtl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestResourcesAdd(t *testing.T) {
	a := Resources{Registers: 3, LUTs: 5}
	b := Resources{Registers: 7, LUTs: 11}
	got := a.Add(b)
	if got != (Resources{Registers: 10, LUTs: 16}) {
		t.Fatalf("Add = %+v", got)
	}
}

func TestResourcesString(t *testing.T) {
	if got := (Resources{2, 3}).String(); got != "2 regs, 3 LUTs" {
		t.Fatalf("String() = %q", got)
	}
}

func TestPrimitiveCosts(t *testing.T) {
	cases := []struct {
		c    Component
		want Resources
	}{
		{Register("r", 64), Resources{Registers: 64}},
		{Incrementer("i", 64), Resources{LUTs: 64}},
		{MagnitudeComparator("m", 16), Resources{LUTs: 16}},
		{Mux("x", 16, 4), Resources{LUTs: 48}},
		{Mux("x", 16, 2), Resources{LUTs: 16}},
		{FSM("f", 3, 12), Resources{Registers: 2, LUTs: 12}},
		{FSM("f", 4, 0), Resources{Registers: 2}},
		{FSM("f", 5, 0), Resources{Registers: 3}},
		{Logic("g", 9), Resources{LUTs: 9}},
		{Macro("m", 579, 1731), Resources{Registers: 579, LUTs: 1731}},
		{EqComparator("e", 16), Resources{LUTs: 11}},
	}
	for _, c := range cases {
		if got := c.c.Resources(); got != c.want {
			t.Errorf("%s: got %+v, want %+v", c.c.Name(), got, c.want)
		}
	}
}

func TestPrimitiveValidation(t *testing.T) {
	for _, f := range []func(){
		func() { Register("r", 0) },
		func() { Incrementer("i", -1) },
		func() { MagnitudeComparator("m", 0) },
		func() { EqComparator("e", 0) },
		func() { Mux("x", 0, 2) },
		func() { Mux("x", 8, 1) },
		func() { FSM("f", 1, 0) },
		func() { FSM("f", 3, -1) },
		func() { Logic("g", -1) },
		func() { Macro("m", -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid primitive did not panic")
				}
			}()
			f()
		}()
	}
}

func TestModuleAggregation(t *testing.T) {
	m := NewModule("top").Add(
		Register("a", 8),
		NewModule("sub").Add(Logic("l", 5), Register("b", 2)),
	)
	if got := m.Resources(); got != (Resources{Registers: 10, LUTs: 5}) {
		t.Fatalf("Resources = %+v", got)
	}
	if len(m.Children()) != 2 {
		t.Fatalf("Children = %d", len(m.Children()))
	}
}

func TestChildrenIsACopy(t *testing.T) {
	m := NewModule("top").Add(Register("a", 1))
	kids := m.Children()
	kids[0] = Register("tampered", 99)
	if m.Resources().Registers != 1 {
		t.Fatal("Children() exposed internal slice")
	}
}

func TestReportContainsHierarchy(t *testing.T) {
	r := ModifiedCore().Report()
	for _, want := range []string{"openmsp430_erasmus", "rroc", "counter", "atomic_exec_monitor"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

// §4.1 anchors: 579/1731 baseline, 655/1969 modified.
func TestPaperSynthesisNumbers(t *testing.T) {
	c := Compare()
	if c.Baseline != (Resources{Registers: 579, LUTs: 1731}) {
		t.Errorf("baseline = %+v, want 579/1731", c.Baseline)
	}
	if c.Modified != (Resources{Registers: 655, LUTs: 1969}) {
		t.Errorf("modified = %+v, want 655/1969", c.Modified)
	}
}

// §4.1: "roughly 13% and 14% additional registers and look-up tables".
func TestOverheadPercentages(t *testing.T) {
	c := Compare()
	if got := c.RegisterOverhead(); got < 0.125 || got > 0.14 {
		t.Errorf("register overhead = %.3f, want ~0.13", got)
	}
	if got := c.LUTOverhead(); got < 0.13 || got > 0.145 {
		t.Errorf("LUT overhead = %.3f, want ~0.14", got)
	}
}

// The RROC counter dominates the register overhead: a 64-bit free-running
// counter is 64 of the 76 added flip-flops.
func TestRROCStructure(t *testing.T) {
	r := RROC().Resources()
	if r.Registers != 64 {
		t.Errorf("RROC registers = %d, want 64", r.Registers)
	}
	if r.LUTs < 64 {
		t.Errorf("RROC LUTs = %d, want ≥64 (incrementer alone)", r.LUTs)
	}
}

// ERASMUS and on-demand share the identical modification netlist.
func TestModsSharedBetweenDesigns(t *testing.T) {
	a := ErasmusModifications().Resources()
	b := ErasmusModifications().Resources()
	if a != b {
		t.Fatal("modification netlist not deterministic")
	}
	if a != (Resources{Registers: 76, LUTs: 238}) {
		t.Fatalf("modifications = %+v, want 76/238", a)
	}
}

// Property: module resources are additive — a module of any primitives has
// exactly the sum of its parts.
func TestPropertyAdditivity(t *testing.T) {
	f := func(widths []uint8) bool {
		m := NewModule("m")
		var want Resources
		for i, w := range widths {
			width := int(w)%32 + 1
			var c Component
			switch i % 3 {
			case 0:
				c = Register("r", width)
			case 1:
				c = Incrementer("i", width)
			default:
				c = Logic("l", width)
			}
			want = want.Add(c.Resources())
			m.Add(c)
		}
		return m.Resources() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: FSM state register count is ceil(log2(states)).
func TestPropertyFSMStateBits(t *testing.T) {
	f := func(s uint8) bool {
		states := int(s)%100 + 2
		bits := FSM("f", states, 0).Resources().Registers
		return 1<<bits >= states && 1<<(bits-1) < states
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
