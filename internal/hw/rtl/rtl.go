// Package rtl models the hardware cost of the ERASMUS/SMART+ modifications
// to the OpenMSP430 core as a structural netlist with an FPGA resource
// estimator (registers and 4-input look-up tables).
//
// The paper synthesizes its modified core with Xilinx ISE 14.7 and reports
// (§4.1): 655 vs 579 registers (+13%) and 1,969 vs 1,731 LUTs (+14%)
// compared to the unmodified core, with ERASMUS and on-demand attestation
// using identical resources. Here the unmodified core is an opaque macro
// (its size is taken from the paper's synthesis of the vanilla OpenMSP430),
// while the *added* hardware — the RROC peripheral, the memory-backbone
// access-control rules and the atomic-execution monitor — is modeled
// structurally from primitives, so the resource delta is derived from actual
// modeled structures rather than copied.
package rtl

import (
	"fmt"
	"sort"
	"strings"
)

// Resources counts FPGA primitives used by a component.
type Resources struct {
	Registers int // flip-flops
	LUTs      int // 4-input look-up tables
}

// Add returns the element-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.Registers + o.Registers, r.LUTs + o.LUTs}
}

// String renders "R regs, L LUTs".
func (r Resources) String() string {
	return fmt.Sprintf("%d regs, %d LUTs", r.Registers, r.LUTs)
}

// Component is anything that consumes FPGA resources.
type Component interface {
	// Name identifies the component within its parent module.
	Name() string
	// Resources returns the estimated primitive counts.
	Resources() Resources
}

// leaf is a primitive with a fixed resource cost and a register-to-
// register critical-path delay (ns).
type leaf struct {
	name  string
	res   Resources
	delay float64
}

func (l leaf) Name() string         { return l.name }
func (l leaf) Resources() Resources { return l.res }

// Register is a w-bit flip-flop bank.
func Register(name string, width int) Component {
	mustPositive("Register", width)
	return leaf{name, Resources{Registers: width}, registerDelay(width)}
}

// Incrementer is a w-bit +1 adder (one LUT per bit on a carry chain).
func Incrementer(name string, width int) Component {
	mustPositive("Incrementer", width)
	return leaf{name, Resources{LUTs: width}, incrementerDelay(width)}
}

// MagnitudeComparator compares two w-bit values (≥/≤); carry-chain based,
// one LUT per bit.
func MagnitudeComparator(name string, width int) Component {
	mustPositive("MagnitudeComparator", width)
	return leaf{name, Resources{LUTs: width}, magnitudeDelay(width)}
}

// EqComparator tests w-bit equality: pairwise XNOR in ceil(w/2) LUT4s plus
// an AND-reduction tree.
func EqComparator(name string, width int) Component {
	mustPositive("EqComparator", width)
	pairs := (width + 1) / 2
	tree := 0
	for n := pairs; n > 1; n = (n + 3) / 4 {
		tree += (n + 3) / 4
	}
	return leaf{name, Resources{LUTs: pairs + tree}, eqDelay(width)}
}

// Mux is a w-bit wide, ways-to-1 multiplexer built from 2:1 stages
// (ways−1 LUTs per bit).
func Mux(name string, width, ways int) Component {
	mustPositive("Mux width", width)
	if ways < 2 {
		panic(fmt.Sprintf("rtl: Mux %q needs ≥2 ways, got %d", name, ways))
	}
	return leaf{name, Resources{LUTs: width * (ways - 1)}, muxDelay(ways)}
}

// FSM is a finite-state machine: ceil(log2(states)) state registers plus
// next-state/output logic LUTs.
func FSM(name string, states, logicLUTs int) Component {
	if states < 2 {
		panic(fmt.Sprintf("rtl: FSM %q needs ≥2 states, got %d", name, states))
	}
	if logicLUTs < 0 {
		panic(fmt.Sprintf("rtl: FSM %q negative logic", name))
	}
	bits := 0
	for s := states - 1; s > 0; s >>= 1 {
		bits++
	}
	return leaf{name, Resources{Registers: bits, LUTs: logicLUTs}, fsmDelay(logicLUTs)}
}

// Logic is uncommitted glue logic (decoders, enables, small gates).
func Logic(name string, luts int) Component {
	if luts < 0 {
		panic(fmt.Sprintf("rtl: Logic %q negative LUTs", name))
	}
	return leaf{name, Resources{LUTs: luts}, logicDelay(luts)}
}

// Macro is an opaque pre-synthesized block with known resource counts and
// no timing annotation; use TimedMacro when its critical path matters.
func Macro(name string, regs, luts int) Component {
	return TimedMacro(name, regs, luts, 0)
}

// TimedMacro is an opaque pre-synthesized block with known resources and a
// known critical path (e.g., the unmodified OpenMSP430 core as reported by
// Xilinx ISE).
func TimedMacro(name string, regs, luts int, delayNS float64) Component {
	if regs < 0 || luts < 0 || delayNS < 0 {
		panic(fmt.Sprintf("rtl: Macro %q negative resources or delay", name))
	}
	return leaf{name, Resources{Registers: regs, LUTs: luts}, delayNS}
}

func mustPositive(kind string, v int) {
	if v <= 0 {
		panic(fmt.Sprintf("rtl: %s width must be positive, got %d", kind, v))
	}
}

// Module is a named composition of components.
type Module struct {
	name     string
	children []Component
}

// NewModule creates an empty module.
func NewModule(name string) *Module { return &Module{name: name} }

// Add appends children and returns the module for chaining.
func (m *Module) Add(cs ...Component) *Module {
	m.children = append(m.children, cs...)
	return m
}

// Name implements Component.
func (m *Module) Name() string { return m.name }

// Resources implements Component by summing all children.
func (m *Module) Resources() Resources {
	var total Resources
	for _, c := range m.children {
		total = total.Add(c.Resources())
	}
	return total
}

// Children returns the direct sub-components.
func (m *Module) Children() []Component {
	return append([]Component(nil), m.children...)
}

// Report renders a hierarchical utilization report, children sorted by
// name for determinism.
func (m *Module) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", m.name, m.Resources())
	kids := m.Children()
	sort.Slice(kids, func(i, j int) bool { return kids[i].Name() < kids[j].Name() })
	for _, c := range kids {
		if sub, ok := c.(*Module); ok {
			for _, line := range strings.Split(strings.TrimRight(sub.Report(), "\n"), "\n") {
				fmt.Fprintf(&b, "  %s\n", line)
			}
			continue
		}
		fmt.Fprintf(&b, "  %s: %s\n", c.Name(), c.Resources())
	}
	return b.String()
}
