package udptransport

import (
	"testing"
	"time"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/hw/imx6"
	"erasmus/internal/sim"
)

const alg = mac.KeyedBLAKE2s

var key = []byte("udp-test-device-key")

// startServer boots an i.MX6-class prover with a 30 ms measurement period
// (1.8 ms modeled measurements) and serves it on loopback UDP.
func startServer(t *testing.T) (*Server, time.Time) {
	t.Helper()
	e := sim.NewEngine()
	dev, err := imx6.New(imx6.Config{
		Engine:     e,
		MemorySize: 64 * 1024,
		StoreSize:  64 * core.RecordSize(alg),
		Key:        key,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.NewRegular(30 * sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProver(dev, core.ProverConfig{Alg: alg, Schedule: sched, Slots: 64})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	started := time.Now()
	srv, err := Serve("127.0.0.1:0", e, p, alg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, started
}

func dialServer(t *testing.T, srv *Server) *Client {
	t.Helper()
	c, err := Dial(srv.Addr().String(), alg, key)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCollectOverRealUDP(t *testing.T) {
	srv, _ := startServer(t)
	c := dialServer(t, srv)

	// Let the wall clock (and hence the virtual schedule) run.
	time.Sleep(250 * time.Millisecond)

	recs, err := c.Collect(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 3 {
		t.Fatalf("got %d records after 250ms at TM=30ms", len(recs))
	}
	for i, r := range recs {
		if !r.VerifyMAC(alg, key) {
			t.Fatalf("record %d fails authentication", i)
		}
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].T >= recs[i-1].T {
			t.Fatal("records not newest-first")
		}
	}
}

func TestCollectODOverRealUDP(t *testing.T) {
	srv, started := startServer(t)
	c := dialServer(t, srv)
	time.Sleep(120 * time.Millisecond)

	clock := func() uint64 { return imx6.DefaultEpoch + uint64(time.Since(started)) }
	m0, hist, err := c.CollectOD(4, clock)
	if err != nil {
		t.Fatal(err)
	}
	if !m0.VerifyMAC(alg, key) {
		t.Fatal("M0 not authentic")
	}
	if len(hist) == 0 {
		t.Fatal("no history returned")
	}
	if m0.T <= hist[0].T {
		t.Fatal("M0 not fresher than stored history")
	}
}

func TestForgedODRequestIgnored(t *testing.T) {
	srv, started := startServer(t)
	bad, err := Dial(srv.Addr().String(), alg, []byte("wrong-key"))
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	bad.Timeout = 100 * time.Millisecond
	bad.Attempts = 2
	clock := func() uint64 { return imx6.DefaultEpoch + uint64(time.Since(started)) }
	if _, _, err := bad.CollectOD(1, clock); err != ErrTimeout {
		t.Fatalf("forged OD request: err = %v, want ErrTimeout", err)
	}
}

func TestMalformedDatagramsDropped(t *testing.T) {
	srv, _ := startServer(t)
	c := dialServer(t, srv)
	// Raw garbage via the same socket path.
	c.conn.Write([]byte{0x99, 1, 2, 3})
	c.conn.Write([]byte{msgCollectReq, 1}) // truncated request
	time.Sleep(80 * time.Millisecond)
	// Server is still alive.
	if _, err := c.Collect(1); err != nil {
		t.Fatalf("server wedged by malformed datagrams: %v", err)
	}
}

func TestClientTimeoutAgainstDeadServer(t *testing.T) {
	srv, _ := startServer(t)
	addr := srv.Addr().String()
	srv.Close()
	c, err := Dial(addr, alg, key)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 50 * time.Millisecond
	c.Attempts = 2
	if _, err := c.Collect(1); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestServeValidation(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil, nil, alg); err == nil {
		t.Error("nil engine/prover accepted")
	}
	if _, err := Dial("127.0.0.1:1", mac.Algorithm(0), key); err == nil {
		t.Error("invalid algorithm accepted")
	}
}

func TestCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
