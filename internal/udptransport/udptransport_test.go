package udptransport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/hw/imx6"
	"erasmus/internal/sim"
)

const alg = mac.KeyedBLAKE2s

var key = []byte("udp-test-device-key")

// startServer boots an i.MX6-class prover with a 30 ms measurement period
// (1.8 ms modeled measurements) and serves it on loopback UDP.
func startServer(t *testing.T) (*Server, time.Time) {
	t.Helper()
	e := sim.NewEngine()
	dev, err := imx6.New(imx6.Config{
		Engine:     e,
		MemorySize: 64 * 1024,
		StoreSize:  64 * core.RecordSize(alg),
		Key:        key,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.NewRegular(30 * sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProver(dev, core.ProverConfig{Alg: alg, Schedule: sched, Slots: 64})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	started := time.Now()
	srv, err := Serve("127.0.0.1:0", e, p, alg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, started
}

func dialServer(t *testing.T, srv *Server) *Client {
	t.Helper()
	c, err := Dial(srv.Addr().String(), alg, key)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCollectOverRealUDP(t *testing.T) {
	srv, _ := startServer(t)
	c := dialServer(t, srv)

	// Let the wall clock (and hence the virtual schedule) run.
	time.Sleep(250 * time.Millisecond)

	recs, err := c.Collect(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 3 {
		t.Fatalf("got %d records after 250ms at TM=30ms", len(recs))
	}
	for i, r := range recs {
		if !r.VerifyMAC(alg, key) {
			t.Fatalf("record %d fails authentication", i)
		}
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].T >= recs[i-1].T {
			t.Fatal("records not newest-first")
		}
	}
}

func TestCollectODOverRealUDP(t *testing.T) {
	srv, started := startServer(t)
	c := dialServer(t, srv)
	time.Sleep(120 * time.Millisecond)

	clock := func() uint64 { return imx6.DefaultEpoch + uint64(time.Since(started)) }
	m0, hist, err := c.CollectOD(4, clock)
	if err != nil {
		t.Fatal(err)
	}
	if !m0.VerifyMAC(alg, key) {
		t.Fatal("M0 not authentic")
	}
	if len(hist) == 0 {
		t.Fatal("no history returned")
	}
	if m0.T <= hist[0].T {
		t.Fatal("M0 not fresher than stored history")
	}
}

func TestForgedODRequestIgnored(t *testing.T) {
	srv, started := startServer(t)
	bad, err := Dial(srv.Addr().String(), alg, []byte("wrong-key"))
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	bad.Timeout = 100 * time.Millisecond
	bad.Attempts = 2
	clock := func() uint64 { return imx6.DefaultEpoch + uint64(time.Since(started)) }
	if _, _, err := bad.CollectOD(1, clock); err != ErrTimeout {
		t.Fatalf("forged OD request: err = %v, want ErrTimeout", err)
	}
}

func TestMalformedDatagramsDropped(t *testing.T) {
	srv, _ := startServer(t)
	c := dialServer(t, srv)
	// Raw garbage via the same socket path.
	c.conn.Write([]byte{0x99, 1, 2, 3})
	c.conn.Write([]byte{msgCollectReq, 1}) // truncated request
	time.Sleep(80 * time.Millisecond)
	// Server is still alive.
	if _, err := c.Collect(1); err != nil {
		t.Fatalf("server wedged by malformed datagrams: %v", err)
	}
}

func TestClientTimeoutAgainstDeadServer(t *testing.T) {
	srv, _ := startServer(t)
	addr := srv.Addr().String()
	srv.Close()
	c, err := Dial(addr, alg, key)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 50 * time.Millisecond
	c.Attempts = 2
	if _, err := c.Collect(1); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestServeValidation(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil, nil, alg); err == nil {
		t.Error("nil engine/prover accepted")
	}
	if _, err := Dial("127.0.0.1:1", mac.Algorithm(0), key); err == nil {
		t.Error("invalid algorithm accepted")
	}
}

func TestCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// The anti-replay floor regression: treq must track the clock, not
// accumulate an offset. After any number of requests under a frozen clock,
// one clock advance must bring treq back to exactly clock() — the old
// clock()+nonce scheme kept the accumulated nonce in every later
// timestamp, ratcheting the prover's floor ahead of real time. Both
// transports (this client and session.VerifierClient) share the rule via
// core.NextTreq against the client's floor field.
func TestODTreqTracksClock(t *testing.T) {
	c := &Client{}
	now := uint64(1_000_000)
	clock := func() uint64 { return now }
	prev := core.NextTreq(clock, &c.lastTreq)
	for i := 0; i < 100; i++ {
		got := core.NextTreq(clock, &c.lastTreq)
		if got <= prev {
			t.Fatalf("treq not strictly increasing: %d after %d", got, prev)
		}
		prev = got
	}
	now += 5_000_000
	if got := core.NextTreq(clock, &c.lastTreq); got != now {
		t.Fatalf("after clock advance treq = %d, want exactly clock %d (offset %d leaked)",
			got, now, got-now)
	}
}

// A verifier that reconnects with fresh client state (treq floor unknown)
// and an honest clock must be accepted even after a previous client issued
// many on-demand requests.
func TestReconnectingClientNotLockedOut(t *testing.T) {
	srv, started := startServer(t)
	clock := func() uint64 { return imx6.DefaultEpoch + uint64(time.Since(started)) }

	first := dialServer(t, srv)
	time.Sleep(120 * time.Millisecond)
	for i := 0; i < 5; i++ {
		if _, _, err := first.CollectOD(2, clock); err != nil {
			t.Fatalf("first client request %d: %v", i, err)
		}
	}
	first.Close()

	fresh := dialServer(t, srv)
	fresh.Timeout = 200 * time.Millisecond
	m0, _, err := fresh.CollectOD(2, clock)
	if err != nil {
		t.Fatalf("reconnecting client locked out: %v", err)
	}
	if !m0.VerifyMAC(alg, key) {
		t.Fatal("M0 not authentic")
	}
}

// A socket that dies underneath the server (without Close being called)
// must terminate the read loop rather than spin it at 100% CPU forever.
func TestServeExitsOnDeadSocket(t *testing.T) {
	srv, _ := startServer(t)
	srv.conn.Close() // simulate the socket failing out from under serve
	select {
	case <-srv.serveExited:
	case <-time.After(2 * time.Second):
		t.Fatal("serve loop still running on a closed socket")
	}
	srv.Close() // still safe afterwards
}

// startFleetServer hosts n provers (keys fleet-key-<i>) on one socket.
func startFleetServer(t *testing.T, n int) (*Server, [][]byte) {
	t.Helper()
	e := sim.NewEngine()
	srv, err := ServeFleet("127.0.0.1:0", e, alg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	keys := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = []byte(fmt.Sprintf("fleet-key-%02d", i))
		dev, err := imx6.New(imx6.Config{
			Engine:     e,
			MemorySize: 4 * 1024,
			StoreSize:  32 * core.RecordSize(alg),
			Key:        keys[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		sched, _ := core.NewRegularWithPhase(30*sim.Millisecond, sim.Ticks(i)*sim.Millisecond)
		p, err := core.NewProver(dev, core.ProverConfig{Alg: alg, Schedule: sched, Slots: 32})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		if err := srv.Host(fmt.Sprintf("dev-%02d", i), p); err != nil {
			t.Fatal(err)
		}
	}
	return srv, keys
}

// One socket hosts many provers; a pooled client demuxes them by device
// id and every history authenticates under its own device key.
func TestFleetServerDemux(t *testing.T) {
	srv, keys := startFleetServer(t, 4)
	fc, err := DialFleet(srv.Addr().String(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	time.Sleep(200 * time.Millisecond)

	var wg sync.WaitGroup
	errs := make([]error, len(keys))
	for i := range keys {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs, err := fc.Collect(fmt.Sprintf("dev-%02d", i), alg, 4)
			if err != nil {
				errs[i] = err
				return
			}
			if len(recs) < 3 {
				errs[i] = fmt.Errorf("only %d records", len(recs))
				return
			}
			for _, r := range recs {
				if !r.VerifyMAC(alg, keys[i]) {
					errs[i] = fmt.Errorf("record not authentic under device %d's key", i)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("device %d: %v", i, err)
		}
	}

	// Unknown ids are dropped silently, like a dark device.
	fc.Timeout = 50 * time.Millisecond
	fc.Attempts = 1
	if _, err := fc.Collect("no-such-device", alg, 1); err != ErrTimeout {
		t.Fatalf("unknown device: err = %v, want ErrTimeout", err)
	}
	if _, err := fc.Collect("", alg, 1); err == nil {
		t.Fatal("empty device id accepted")
	}
}

// Unhosting removes a device from the demux table.
func TestFleetUnhost(t *testing.T) {
	srv, _ := startFleetServer(t, 1)
	fc, err := DialFleet(srv.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	fc.Timeout = 50 * time.Millisecond
	fc.Attempts = 1
	time.Sleep(80 * time.Millisecond)
	if _, err := fc.Collect("dev-00", alg, 1); err != nil {
		t.Fatalf("hosted device unreachable: %v", err)
	}
	srv.Unhost("dev-00")
	if _, err := fc.Collect("dev-00", alg, 1); err != ErrTimeout {
		t.Fatalf("unhosted device: err = %v, want ErrTimeout", err)
	}
}

func TestCollectDeltaOverRealUDP(t *testing.T) {
	srv, _ := startServer(t)
	c := dialServer(t, srv)

	time.Sleep(250 * time.Millisecond)
	full, err := c.Collect(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 4 {
		t.Fatalf("got %d records", len(full))
	}
	since := full[0].T

	// More measurements land (TM = 30 ms), then the delta request ships
	// only the anchor and what is newer.
	time.Sleep(120 * time.Millisecond)
	recs, err := c.CollectDelta(since, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("delta shipped %d records, want anchor + new", len(recs))
	}
	if recs[len(recs)-1].T != since {
		t.Fatalf("oldest shipped t=%d, want anchor t=%d", recs[len(recs)-1].T, since)
	}
	for i, r := range recs {
		if r.T < since {
			t.Fatalf("record %d older than the watermark", i)
		}
		if !r.VerifyMAC(alg, key) {
			t.Fatalf("record %d fails authentication", i)
		}
	}
}

// The fleet protocol's delta frame: the server demuxes per-device delta
// requests on one socket exactly like full collections.
func TestFleetCollectDeltaDemux(t *testing.T) {
	e := sim.NewEngine()
	build := func(id string, devKey []byte) *core.Prover {
		dev, err := imx6.New(imx6.Config{
			Engine: e, MemorySize: 4096,
			StoreSize: 16 * core.RecordSize(alg),
			Key:       devKey,
		})
		if err != nil {
			t.Fatal(err)
		}
		sched, err := core.NewRegular(30 * sim.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.NewProver(dev, core.ProverConfig{Alg: alg, Schedule: sched, Slots: 16})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		return p
	}
	keyA := []byte("fleet-delta-key-a")
	keyB := []byte("fleet-delta-key-b")
	pa, pb := build("a", keyA), build("b", keyB)
	srv, err := ServeFleet("127.0.0.1:0", e, alg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Host("dev-a", pa); err != nil {
		t.Fatal(err)
	}
	if err := srv.Host("dev-b", pb); err != nil {
		t.Fatal(err)
	}
	fc, err := DialFleet(srv.Addr().String(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	time.Sleep(250 * time.Millisecond)
	fullA, err := fc.Collect("dev-a", alg, 4)
	if err != nil {
		t.Fatal(err)
	}
	since := fullA[0].T
	time.Sleep(120 * time.Millisecond)

	recsA, err := fc.CollectDelta("dev-a", alg, since, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recsA) < 2 || recsA[len(recsA)-1].T != since {
		t.Fatalf("delta for dev-a wrong: %d records", len(recsA))
	}
	for i, r := range recsA {
		if !r.VerifyMAC(alg, keyA) {
			t.Fatalf("dev-a record %d not authentic under dev-a's key (cross-device mixup?)", i)
		}
	}
	// A delta for an unknown device is silently dropped, like any request
	// to a dark device.
	fc.Timeout, fc.Attempts = 50*time.Millisecond, 1
	if _, err := fc.CollectDelta("dev-zz", alg, since, 0); err == nil {
		t.Fatal("unknown device answered a delta request")
	}
}

func TestCollectDeltaAggregateOverRealUDP(t *testing.T) {
	srv, _ := startServer(t)
	c := dialServer(t, srv)

	time.Sleep(250 * time.Millisecond)
	recs, state, aggMAC, err := c.CollectDeltaAggregate(0, 41, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 3 {
		t.Fatalf("got %d records after 250ms at TM=30ms", len(recs))
	}
	if len(state) == 0 || len(aggMAC) == 0 {
		t.Fatalf("aggregate evidence missing: state=%d MAC=%d bytes", len(state), len(aggMAC))
	}
	// The one MAC binds the shipped head to this exact challenge.
	if !mac.Verify(alg, key, core.AggMACInput(0, 41, nil, state), aggMAC) {
		t.Fatal("aggregate MAC does not verify against the challenge")
	}
	if mac.Verify(alg, key, core.AggMACInput(0, 42, nil, state), aggMAC) {
		t.Fatal("aggregate MAC verifies under a different nonce")
	}
	// The shipped state is the chain over exactly the shipped records.
	want, err := core.ChainOf(nil, recs)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(state) {
		t.Fatal("shipped chain state does not match the shipped records")
	}

	// Anchored follow-up: since/anchor from the newest record.
	since := recs[0].T
	time.Sleep(120 * time.Millisecond)
	recs2, state2, aggMAC2, err := c.CollectDeltaAggregate(since, 43, recs[0].Hash, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) < 2 || recs2[len(recs2)-1].T != since {
		t.Fatalf("anchored aggregate shipped %d records, oldest t=%d, want anchor t=%d",
			len(recs2), recs2[len(recs2)-1].T, since)
	}
	if !mac.Verify(alg, key, core.AggMACInput(since, 43, recs[0].Hash, state2), aggMAC2) {
		t.Fatal("anchored aggregate MAC does not verify")
	}
	// Resuming the walk from the previous head over the new records
	// (anchor excluded — it was already absorbed) lands on the new head.
	want2, err := core.ChainOf(state, recs2[:len(recs2)-1])
	if err != nil {
		t.Fatal(err)
	}
	if string(want2) != string(state2) {
		t.Fatal("anchored chain state does not resume from the previous head")
	}
}

// The fleet protocol's aggregate frames: per-device demux on one socket,
// evidence MAC'd under each device's own key.
func TestFleetCollectDeltaAggregateDemux(t *testing.T) {
	e := sim.NewEngine()
	build := func(devKey []byte) *core.Prover {
		dev, err := imx6.New(imx6.Config{
			Engine: e, MemorySize: 4096,
			StoreSize: 16 * core.RecordSize(alg),
			Key:       devKey,
		})
		if err != nil {
			t.Fatal(err)
		}
		sched, err := core.NewRegular(30 * sim.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.NewProver(dev, core.ProverConfig{Alg: alg, Schedule: sched, Slots: 16})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		return p
	}
	keyA := []byte("fleet-agg-key-a")
	keyB := []byte("fleet-agg-key-b")
	pa, pb := build(keyA), build(keyB)
	srv, err := ServeFleet("127.0.0.1:0", e, alg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Host("dev-a", pa); err != nil {
		t.Fatal(err)
	}
	if err := srv.Host("dev-b", pb); err != nil {
		t.Fatal(err)
	}
	fc, err := DialFleet(srv.Addr().String(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	time.Sleep(250 * time.Millisecond)
	recsA, stateA, macA, err := fc.CollectDeltaAggregate("dev-a", alg, 0, 7, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	recsB, stateB, macB, err := fc.CollectDeltaAggregate("dev-b", alg, 0, 8, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recsA) == 0 || len(recsB) == 0 {
		t.Fatalf("no records: a=%d b=%d", len(recsA), len(recsB))
	}
	if !mac.Verify(alg, keyA, core.AggMACInput(0, 7, nil, stateA), macA) {
		t.Fatal("dev-a evidence not MAC'd under dev-a's key")
	}
	if !mac.Verify(alg, keyB, core.AggMACInput(0, 8, nil, stateB), macB) {
		t.Fatal("dev-b evidence not MAC'd under dev-b's key")
	}
	// Cross-checks: evidence must not verify under the other device's key.
	if mac.Verify(alg, keyB, core.AggMACInput(0, 7, nil, stateA), macA) {
		t.Fatal("dev-a evidence verifies under dev-b's key (cross-device mixup?)")
	}
}
