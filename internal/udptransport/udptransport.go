// Package udptransport serves the ERASMUS collection protocols over real
// UDP sockets (standard library net), turning simulated provers into
// daemons a verifier can poll across an actual network.
//
// The prover's runtime is event-driven on virtual time; this package
// bridges the two clocks by pumping the simulation forward to track the
// wall clock: one virtual nanosecond per elapsed wall nanosecond. The
// measurement schedule therefore fires in real time, and collection
// requests observe the same buffer state a hardware deployment would.
//
// A Server hosts any number of provers on one socket. The original
// single-prover datagrams (one type byte followed by the wire encodings
// from internal/core) address the server's default prover; fleet datagrams
// carry an exchange id and a device-id frame in front of the payload, so
// one socket demuxes collections for a whole population and a pooled
// FleetClient can keep many requests in flight concurrently.
package udptransport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/sim"
)

// Message type bytes.
const (
	msgCollectReq  = 0x01
	msgCollectResp = 0x02
	msgODReq       = 0x03
	msgODResp      = 0x04
	// Fleet messages prefix the payload with [xid uint32][idLen uint8][id],
	// echoed verbatim in the response so pooled sockets can match replies
	// to requests.
	msgFleetCollectReq  = 0x05
	msgFleetCollectResp = 0x06
	// Delta (since-watermark) collections: the incremental protocol of a
	// stateful verifier. Responses reuse msgCollectResp/msgFleetCollectResp
	// — a record list is a record list, whichever request produced it.
	msgDeltaCollectReq      = 0x07
	msgFleetDeltaCollectReq = 0x08
	// Aggregate-anchor collections carry evidence (chain head + one MAC)
	// ahead of the record list, so they get their own response types.
	msgAggDeltaCollectReq      = 0x09
	msgAggCollectResp          = 0x0A
	msgFleetAggDeltaCollectReq = 0x0B
	msgFleetAggCollectResp     = 0x0C
)

const maxDatagram = 64 * 1024

// defaultProverID keys the prover addressed by the original un-framed
// single-prover messages.
const defaultProverID = ""

// Limits for the serve loop's persistent-error handling: a socket that
// keeps failing must not spin a goroutine at 100% CPU, and one that can
// never recover must not keep a dead server half-alive.
const (
	maxReadErrors  = 64
	maxReadBackoff = 250 * time.Millisecond
)

// Server exposes one or more provers on a UDP socket.
type Server struct {
	conn *net.UDPConn
	alg  mac.Algorithm

	mu        sync.Mutex // guards engine and provers
	engine    *sim.Engine
	provers   map[string]*core.Prover
	wallStart time.Time
	simStart  sim.Ticks

	done        chan struct{}
	serveExited chan struct{} // closed when the read loop returns
	wg          sync.WaitGroup
}

// Serve binds addr (e.g. "127.0.0.1:0") and starts serving the prover as
// the server's default (un-framed protocol) device. The caller must have
// built prover on engine; after Serve returns, the engine is owned by the
// server's clock pump and must not be driven directly.
func Serve(addr string, engine *sim.Engine, prover *core.Prover, alg mac.Algorithm) (*Server, error) {
	if prover == nil {
		return nil, errors.New("udptransport: nil prover")
	}
	s, err := newServer(addr, engine, alg)
	if err != nil {
		return nil, err
	}
	s.provers[defaultProverID] = prover
	s.start()
	return s, nil
}

// ServeFleet binds addr and starts a multi-prover server. Provers are
// added with Host; every hosted prover must live on the given engine,
// which the server's clock pump owns from here on.
func ServeFleet(addr string, engine *sim.Engine, alg mac.Algorithm) (*Server, error) {
	s, err := newServer(addr, engine, alg)
	if err != nil {
		return nil, err
	}
	s.start()
	return s, nil
}

//erasmus:wallpaced the server anchors its virtual clock to a wall epoch; real sockets are wall-paced by nature
func newServer(addr string, engine *sim.Engine, alg mac.Algorithm) (*Server, error) {
	if engine == nil {
		return nil, errors.New("udptransport: nil engine")
	}
	if !alg.Valid() {
		return nil, fmt.Errorf("udptransport: invalid algorithm %d", int(alg))
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		conn:        conn,
		alg:         alg,
		provers:     make(map[string]*core.Prover),
		engine:      engine,
		wallStart:   time.Now(),
		simStart:    engine.Now(),
		done:        make(chan struct{}),
		serveExited: make(chan struct{}),
	}
	return s, nil
}

func (s *Server) start() {
	s.wg.Add(2)
	go s.pumpClock()
	go s.serve()
}

// Host registers a prover under a device id for the fleet protocol. The
// prover must run on the server's engine. Hosting may happen at any time
// (fleet churn): requests for unknown ids are silently dropped, exactly
// like requests to a dark device.
func (s *Server) Host(id string, prover *core.Prover) error {
	if id == "" || len(id) > 255 {
		return fmt.Errorf("udptransport: device id %q must be 1–255 bytes", id)
	}
	if prover == nil {
		return errors.New("udptransport: nil prover")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.provers[id]; dup {
		return fmt.Errorf("udptransport: device %q already hosted", id)
	}
	s.provers[id] = prover
	return nil
}

// Unhost removes a prover from the fleet protocol (decommissioning);
// subsequent requests for the id are dropped.
func (s *Server) Unhost(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.provers, id)
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Close stops the server and releases the socket.
func (s *Server) Close() error {
	select {
	case <-s.done:
		return nil
	default:
	}
	close(s.done)
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

// advance drives virtual time to the current wall offset. Callers hold mu.
//
//erasmus:wallpaced mapping wall time onto the virtual clock is this function's purpose
func (s *Server) advanceLocked() {
	target := s.simStart + sim.Ticks(time.Since(s.wallStart))
	if target > s.engine.Now() {
		s.engine.RunUntil(target)
	}
}

// pumpClock keeps the schedule firing even when no requests arrive.
func (s *Server) pumpClock() {
	defer s.wg.Done()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			s.mu.Lock()
			s.advanceLocked()
			s.mu.Unlock()
		}
	}
}

func (s *Server) serve() {
	defer s.wg.Done()
	defer close(s.serveExited)
	buf := make([]byte, maxDatagram)
	errStreak := 0
	backoff := time.Millisecond
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return // the socket is gone for good; nothing left to serve
			}
			// Transient errors happen (ICMP-induced, buffer pressure), but
			// a persistent failure must neither spin this goroutine at
			// 100% CPU nor keep a dead server half-alive: back off, and
			// give up after a sustained streak.
			if errStreak++; errStreak >= maxReadErrors {
				return
			}
			select {
			case <-s.done:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > maxReadBackoff {
				backoff = maxReadBackoff
			}
			continue
		}
		errStreak, backoff = 0, time.Millisecond
		if n == 0 {
			continue
		}
		resp := s.handle(buf[:n])
		if resp != nil {
			s.conn.WriteToUDP(resp, peer)
		}
	}
}

// handle parses one datagram and produces the reply (nil = drop silently,
// matching the simulation transport's semantics for malformed or rejected
// requests).
func (s *Server) handle(dgram []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()

	switch dgram[0] {
	case msgCollectReq:
		prover := s.provers[defaultProverID]
		req, err := core.DecodeCollectRequest(dgram[1:])
		if err != nil || prover == nil {
			return nil
		}
		recs, _ := prover.HandleCollect(req.K)
		return append([]byte{msgCollectResp}, core.CollectResponse{Records: recs}.Encode(s.alg)...)
	case msgODReq:
		prover := s.provers[defaultProverID]
		req, err := core.DecodeODRequest(s.alg, dgram[1:])
		if err != nil || prover == nil {
			return nil
		}
		m0, hist, _, err := prover.HandleCollectOD(req.Treq, req.K, req.MAC)
		if err != nil {
			return nil
		}
		return append([]byte{msgODResp}, core.ODResponse{M0: m0, Records: hist}.Encode(s.alg)...)
	case msgDeltaCollectReq:
		prover := s.provers[defaultProverID]
		req, err := core.DecodeDeltaCollectRequest(dgram[1:])
		if err != nil || prover == nil {
			return nil
		}
		recs, _ := prover.HandleCollectDelta(req.Since, req.K)
		return append([]byte{msgCollectResp}, core.CollectResponse{Records: recs}.Encode(s.alg)...)
	case msgAggDeltaCollectReq:
		prover := s.provers[defaultProverID]
		req, err := core.DecodeAggDeltaCollectRequest(dgram[1:])
		if err != nil || prover == nil {
			return nil
		}
		recs, state, aggMAC, _, err := prover.HandleCollectDeltaAggregate(req.Since, req.Nonce, req.K, req.AnchorHash)
		if err != nil {
			return nil
		}
		return append([]byte{msgAggCollectResp},
			core.AggCollectResponse{ChainState: state, AggMAC: aggMAC, Records: recs}.Encode(s.alg)...)
	case msgFleetCollectReq:
		frame, payload, err := decodeFleetFrame(dgram)
		if err != nil {
			return nil
		}
		prover := s.provers[frame.id]
		req, err := core.DecodeCollectRequest(payload)
		if err != nil || prover == nil {
			return nil
		}
		recs, _ := prover.HandleCollect(req.K)
		return encodeFleetFrame(msgFleetCollectResp, frame,
			core.CollectResponse{Records: recs}.Encode(s.alg))
	case msgFleetDeltaCollectReq:
		frame, payload, err := decodeFleetFrame(dgram)
		if err != nil {
			return nil
		}
		prover := s.provers[frame.id]
		req, err := core.DecodeDeltaCollectRequest(payload)
		if err != nil || prover == nil {
			return nil
		}
		recs, _ := prover.HandleCollectDelta(req.Since, req.K)
		return encodeFleetFrame(msgFleetCollectResp, frame,
			core.CollectResponse{Records: recs}.Encode(s.alg))
	case msgFleetAggDeltaCollectReq:
		frame, payload, err := decodeFleetFrame(dgram)
		if err != nil {
			return nil
		}
		prover := s.provers[frame.id]
		req, err := core.DecodeAggDeltaCollectRequest(payload)
		if err != nil || prover == nil {
			return nil
		}
		recs, state, aggMAC, _, err := prover.HandleCollectDeltaAggregate(req.Since, req.Nonce, req.K, req.AnchorHash)
		if err != nil {
			return nil
		}
		return encodeFleetFrame(msgFleetAggCollectResp, frame,
			core.AggCollectResponse{ChainState: state, AggMAC: aggMAC, Records: recs}.Encode(s.alg))
	default:
		return nil
	}
}

// fleetFrame is the demux header of the fleet protocol: an exchange id
// chosen by the client plus the target device id, echoed in the response.
type fleetFrame struct {
	xid uint32
	id  string
}

func encodeFleetFrame(msgType byte, f fleetFrame, payload []byte) []byte {
	out := make([]byte, 0, 6+len(f.id)+len(payload))
	out = append(out, msgType)
	out = binary.BigEndian.AppendUint32(out, f.xid)
	out = append(out, byte(len(f.id)))
	out = append(out, f.id...)
	return append(out, payload...)
}

func decodeFleetFrame(dgram []byte) (fleetFrame, []byte, error) {
	if len(dgram) < 6 {
		return fleetFrame{}, nil, errors.New("udptransport: fleet frame truncated")
	}
	xid := binary.BigEndian.Uint32(dgram[1:5])
	idLen := int(dgram[5])
	if idLen == 0 || len(dgram) < 6+idLen {
		return fleetFrame{}, nil, errors.New("udptransport: fleet frame id truncated")
	}
	return fleetFrame{xid: xid, id: string(dgram[6 : 6+idLen])}, dgram[6+idLen:], nil
}

// Client collects from a remote prover over UDP (the single-prover,
// un-framed protocol).
type Client struct {
	conn *net.UDPConn
	alg  mac.Algorithm
	key  []byte

	// Timeout per attempt and total attempts (defaults 500 ms × 3).
	Timeout  time.Duration
	Attempts int

	lastTreq uint64
}

// Dial connects (in the UDP sense) to a prover server.
func Dial(server string, alg mac.Algorithm, key []byte) (*Client, error) {
	if !alg.Valid() {
		return nil, fmt.Errorf("udptransport: invalid algorithm %d", int(alg))
	}
	addr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn, alg: alg, key: append([]byte(nil), key...),
		Timeout: 500 * time.Millisecond, Attempts: 3,
	}, nil
}

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }

// ErrTimeout is returned when every attempt expires unanswered.
var ErrTimeout = errors.New("udptransport: request timed out")

// roundTrip sends a request datagram over conn and waits for a response
// accepted by ok, retrying per the given budget. fresh, when non-nil,
// rebuilds the request for each retransmission.
//
//erasmus:wallpaced socket read deadlines are wall-clock by definition
func roundTrip(conn *net.UDPConn, req []byte, timeout time.Duration, attempts int,
	ok func([]byte) bool, fresh func() []byte) ([]byte, error) {
	buf := make([]byte, maxDatagram)
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 && fresh != nil {
			req = fresh()
		}
		if _, err := conn.Write(req); err != nil {
			return nil, err
		}
		deadline := time.Now().Add(timeout)
		for {
			if err := conn.SetReadDeadline(deadline); err != nil {
				return nil, err
			}
			n, err := conn.Read(buf)
			if err != nil {
				break // timeout or socket error: next attempt
			}
			if n > 0 && ok(buf[:n]) {
				out := make([]byte, n)
				copy(out, buf[:n])
				return out, nil
			}
			// Unexpected datagram (stale response): keep reading until
			// the attempt deadline.
		}
	}
	return nil, ErrTimeout
}

// Collect fetches the k latest records.
func (c *Client) Collect(k int) ([]core.Record, error) {
	return c.collectRecords(append([]byte{msgCollectReq}, core.CollectRequest{K: k}.Encode()...))
}

// CollectDelta fetches the records measured at or after since (the
// caller's watermark), newest first; k ≤ 0 means everything since,
// clamped to the prover's buffer.
func (c *Client) CollectDelta(since uint64, k int) ([]core.Record, error) {
	return c.collectRecords(append([]byte{msgDeltaCollectReq}, core.DeltaCollectRequest{Since: since, K: k}.Encode()...))
}

// CollectDeltaAggregate fetches the records measured at or after since
// together with the aggregate evidence: the prover's marshaled chain
// head and one MAC binding it to (since, nonce, anchorHash). The caller
// verifies the bundle with core.VerifyDeltaAggregate.
func (c *Client) CollectDeltaAggregate(since, nonce uint64, anchorHash []byte, k int) ([]core.Record, []byte, []byte, error) {
	req := append([]byte{msgAggDeltaCollectReq},
		core.AggDeltaCollectRequest{Since: since, Nonce: nonce, K: k, AnchorHash: anchorHash}.Encode()...)
	raw, err := roundTrip(c.conn, req, c.Timeout, c.Attempts,
		func(b []byte) bool { return b[0] == msgAggCollectResp }, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	resp, err := core.DecodeAggCollectResponse(c.alg, raw[1:])
	if err != nil {
		return nil, nil, nil, err
	}
	return resp.Records, resp.ChainState, resp.AggMAC, nil
}

// collectRecords runs one unauthenticated collection exchange: both the
// full and the delta request are answered by a msgCollectResp record list.
func (c *Client) collectRecords(req []byte) ([]core.Record, error) {
	raw, err := roundTrip(c.conn, req, c.Timeout, c.Attempts,
		func(b []byte) bool { return b[0] == msgCollectResp }, nil)
	if err != nil {
		return nil, err
	}
	resp, err := core.DecodeCollectResponse(c.alg, raw[1:])
	if err != nil {
		return nil, err
	}
	return resp.Records, nil
}

// CollectOD issues an authenticated ERASMUS+OD request. clock supplies the
// verifier's time base (must be loosely synchronized with the prover's
// RROC). Retransmissions carry fresh treq values so the prover's
// anti-replay floor never blocks them; timestamps follow core.NextTreq,
// so the floor never ratchets ahead of honest clocks either.
func (c *Client) CollectOD(k int, clock func() uint64) (core.Record, []core.Record, error) {
	if clock == nil {
		return core.Record{}, nil, errors.New("udptransport: clock required")
	}
	build := func() []byte {
		req := core.NewODRequest(c.alg, c.key, core.NextTreq(clock, &c.lastTreq), k)
		return append([]byte{msgODReq}, req.Encode()...)
	}
	raw, err := roundTrip(c.conn, build(), c.Timeout, c.Attempts,
		func(b []byte) bool { return b[0] == msgODResp }, build)
	if err != nil {
		return core.Record{}, nil, err
	}
	resp, err := core.DecodeODResponse(c.alg, raw[1:])
	if err != nil {
		return core.Record{}, nil, err
	}
	return resp.M0, resp.Records, nil
}

// FleetClient collects from many provers hosted on one fleet server. It
// holds a pool of UDP sockets, so up to poolSize collections proceed
// concurrently; Collect is safe for concurrent use and blocks when the
// pool is exhausted (natural backpressure for a fleet scheduler).
type FleetClient struct {
	// Timeout per attempt and total attempts (defaults 500 ms × 3). Set
	// before the first Collect; not synchronized.
	Timeout  time.Duration
	Attempts int

	conns []*net.UDPConn
	pool  chan *net.UDPConn
	xid   atomic.Uint32
}

// DialFleet opens poolSize sockets (minimum 1) to a fleet server.
func DialFleet(server string, poolSize int) (*FleetClient, error) {
	if poolSize < 1 {
		poolSize = 1
	}
	addr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return nil, err
	}
	c := &FleetClient{
		Timeout: 500 * time.Millisecond, Attempts: 3,
		pool: make(chan *net.UDPConn, poolSize),
	}
	for i := 0; i < poolSize; i++ {
		conn, err := net.DialUDP("udp", nil, addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, conn)
		c.pool <- conn
	}
	return c, nil
}

// Close releases every pooled socket; in-flight Collects fail with the
// socket error.
func (c *FleetClient) Close() error {
	var first error
	for _, conn := range c.conns {
		if err := conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PoolSize returns the number of pooled sockets (the concurrency bound).
func (c *FleetClient) PoolSize() int { return cap(c.pool) }

// Collect fetches the k latest records from the prover hosted under id,
// decoding with the device's provisioned algorithm. Responses are matched
// on both the exchange id and the echoed device id, so a pooled socket
// reused across devices never delivers one device's history as another's.
func (c *FleetClient) Collect(id string, alg mac.Algorithm, k int) ([]core.Record, error) {
	return c.collect(id, alg, msgFleetCollectReq, core.CollectRequest{K: k}.Encode())
}

// CollectDelta fetches the records measured at or after since from the
// prover hosted under id — the incremental collection. k ≤ 0 means
// everything since, clamped to the prover's buffer.
func (c *FleetClient) CollectDelta(id string, alg mac.Algorithm, since uint64, k int) ([]core.Record, error) {
	return c.collect(id, alg, msgFleetDeltaCollectReq, core.DeltaCollectRequest{Since: since, K: k}.Encode())
}

// CollectDeltaAggregate fetches the records measured at or after since
// from the prover hosted under id, plus the aggregate evidence (chain
// head + MAC bound to since/nonce/anchorHash).
func (c *FleetClient) CollectDeltaAggregate(id string, alg mac.Algorithm, since, nonce uint64, anchorHash []byte, k int) ([]core.Record, []byte, []byte, error) {
	payload, err := c.exchange(id, alg, msgFleetAggDeltaCollectReq, msgFleetAggCollectResp,
		core.AggDeltaCollectRequest{Since: since, Nonce: nonce, K: k, AnchorHash: anchorHash}.Encode())
	if err != nil {
		return nil, nil, nil, err
	}
	resp, err := core.DecodeAggCollectResponse(alg, payload)
	if err != nil {
		return nil, nil, nil, err
	}
	return resp.Records, resp.ChainState, resp.AggMAC, nil
}

// collect runs one framed record-list exchange over a pooled socket.
func (c *FleetClient) collect(id string, alg mac.Algorithm, msgType byte, reqPayload []byte) ([]core.Record, error) {
	payload, err := c.exchange(id, alg, msgType, msgFleetCollectResp, reqPayload)
	if err != nil {
		return nil, err
	}
	resp, err := core.DecodeCollectResponse(alg, payload)
	if err != nil {
		return nil, err
	}
	return resp.Records, nil
}

// exchange runs one framed request/response exchange over a pooled
// socket, returning the response payload with the frame stripped.
func (c *FleetClient) exchange(id string, alg mac.Algorithm, msgType, respType byte, reqPayload []byte) ([]byte, error) {
	if id == "" || len(id) > 255 {
		return nil, fmt.Errorf("udptransport: device id %q must be 1–255 bytes", id)
	}
	if !alg.Valid() {
		return nil, fmt.Errorf("udptransport: invalid algorithm %d", int(alg))
	}
	frame := fleetFrame{xid: c.xid.Add(1), id: id}
	req := encodeFleetFrame(msgType, frame, reqPayload)

	conn := <-c.pool
	defer func() { c.pool <- conn }()
	raw, err := roundTrip(conn, req, c.Timeout, c.Attempts, func(b []byte) bool {
		if b[0] != respType {
			return false
		}
		got, _, err := decodeFleetFrame(b)
		return err == nil && got == frame
	}, nil)
	if err != nil {
		return nil, err
	}
	_, payload, err := decodeFleetFrame(raw)
	if err != nil {
		return nil, err
	}
	return payload, nil
}
