// Package udptransport serves the ERASMUS collection protocols over real
// UDP sockets (standard library net), turning a simulated prover into a
// daemon a verifier can poll across an actual network.
//
// The prover's runtime is event-driven on virtual time; this package
// bridges the two clocks by pumping the simulation forward to track the
// wall clock: one virtual nanosecond per elapsed wall nanosecond. The
// measurement schedule therefore fires in real time, and collection
// requests observe the same buffer state a hardware deployment would.
//
// All packets are a single datagram: one type byte followed by the wire
// encodings from internal/core.
package udptransport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/sim"
)

// Message type bytes.
const (
	msgCollectReq  = 0x01
	msgCollectResp = 0x02
	msgODReq       = 0x03
	msgODResp      = 0x04
)

const maxDatagram = 64 * 1024

// Server exposes one prover on a UDP socket.
type Server struct {
	conn   *net.UDPConn
	alg    mac.Algorithm
	prover *core.Prover

	mu        sync.Mutex // guards engine and prover
	engine    *sim.Engine
	wallStart time.Time
	simStart  sim.Ticks

	done chan struct{}
	wg   sync.WaitGroup
}

// Serve binds addr (e.g. "127.0.0.1:0") and starts serving the prover.
// The caller must have built prover on engine; after Serve returns, the
// engine is owned by the server's clock pump and must not be driven
// directly.
func Serve(addr string, engine *sim.Engine, prover *core.Prover, alg mac.Algorithm) (*Server, error) {
	if engine == nil || prover == nil {
		return nil, errors.New("udptransport: nil engine or prover")
	}
	if !alg.Valid() {
		return nil, fmt.Errorf("udptransport: invalid algorithm %d", int(alg))
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		conn:      conn,
		alg:       alg,
		prover:    prover,
		engine:    engine,
		wallStart: time.Now(),
		simStart:  engine.Now(),
		done:      make(chan struct{}),
	}
	s.wg.Add(2)
	go s.pumpClock()
	go s.serve()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Close stops the server and releases the socket.
func (s *Server) Close() error {
	select {
	case <-s.done:
		return nil
	default:
	}
	close(s.done)
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

// advance drives virtual time to the current wall offset. Callers hold mu.
func (s *Server) advanceLocked() {
	target := s.simStart + sim.Ticks(time.Since(s.wallStart))
	if target > s.engine.Now() {
		s.engine.RunUntil(target)
	}
}

// pumpClock keeps the schedule firing even when no requests arrive.
func (s *Server) pumpClock() {
	defer s.wg.Done()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			s.mu.Lock()
			s.advanceLocked()
			s.mu.Unlock()
		}
	}
}

func (s *Server) serve() {
	defer s.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue // transient socket error; keep serving
			}
		}
		if n == 0 {
			continue
		}
		resp := s.handle(buf[:n])
		if resp != nil {
			s.conn.WriteToUDP(resp, peer)
		}
	}
}

// handle parses one datagram and produces the reply (nil = drop silently,
// matching the simulation transport's semantics for malformed or rejected
// requests).
func (s *Server) handle(dgram []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()

	switch dgram[0] {
	case msgCollectReq:
		req, err := core.DecodeCollectRequest(dgram[1:])
		if err != nil {
			return nil
		}
		recs, _ := s.prover.HandleCollect(req.K)
		return append([]byte{msgCollectResp}, core.CollectResponse{Records: recs}.Encode(s.alg)...)
	case msgODReq:
		req, err := core.DecodeODRequest(s.alg, dgram[1:])
		if err != nil {
			return nil
		}
		m0, hist, _, err := s.prover.HandleCollectOD(req.Treq, req.K, req.MAC)
		if err != nil {
			return nil
		}
		return append([]byte{msgODResp}, core.ODResponse{M0: m0, Records: hist}.Encode(s.alg)...)
	default:
		return nil
	}
}

// Client collects from a remote prover over UDP.
type Client struct {
	conn *net.UDPConn
	alg  mac.Algorithm
	key  []byte

	// Timeout per attempt and total attempts (defaults 500 ms × 3).
	Timeout  time.Duration
	Attempts int

	nonce uint64
}

// Dial connects (in the UDP sense) to a prover server.
func Dial(server string, alg mac.Algorithm, key []byte) (*Client, error) {
	if !alg.Valid() {
		return nil, fmt.Errorf("udptransport: invalid algorithm %d", int(alg))
	}
	addr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn, alg: alg, key: append([]byte(nil), key...),
		Timeout: 500 * time.Millisecond, Attempts: 3,
	}, nil
}

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }

// ErrTimeout is returned when every attempt expires unanswered.
var ErrTimeout = errors.New("udptransport: request timed out")

// roundTrip sends a request datagram and waits for the expected response
// type, retrying per the client budget.
func (c *Client) roundTrip(req []byte, wantType byte, fresh func() []byte) ([]byte, error) {
	buf := make([]byte, maxDatagram)
	for attempt := 0; attempt < c.Attempts; attempt++ {
		if attempt > 0 && fresh != nil {
			req = fresh()
		}
		if _, err := c.conn.Write(req); err != nil {
			return nil, err
		}
		deadline := time.Now().Add(c.Timeout)
		for {
			if err := c.conn.SetReadDeadline(deadline); err != nil {
				return nil, err
			}
			n, err := c.conn.Read(buf)
			if err != nil {
				break // timeout or socket error: next attempt
			}
			if n > 0 && buf[0] == wantType {
				out := make([]byte, n-1)
				copy(out, buf[1:n])
				return out, nil
			}
			// Unexpected datagram (stale response): keep reading until
			// the attempt deadline.
		}
	}
	return nil, ErrTimeout
}

// Collect fetches the k latest records.
func (c *Client) Collect(k int) ([]core.Record, error) {
	req := append([]byte{msgCollectReq}, core.CollectRequest{K: k}.Encode()...)
	raw, err := c.roundTrip(req, msgCollectResp, nil)
	if err != nil {
		return nil, err
	}
	resp, err := core.DecodeCollectResponse(c.alg, raw)
	if err != nil {
		return nil, err
	}
	return resp.Records, nil
}

// CollectOD issues an authenticated ERASMUS+OD request. clock supplies the
// verifier's time base (must be loosely synchronized with the prover's
// RROC). Retransmissions carry fresh treq values so the prover's
// anti-replay floor never blocks them.
func (c *Client) CollectOD(k int, clock func() uint64) (core.Record, []core.Record, error) {
	if clock == nil {
		return core.Record{}, nil, errors.New("udptransport: clock required")
	}
	build := func() []byte {
		c.nonce++
		req := core.NewODRequest(c.alg, c.key, clock()+c.nonce, k)
		return append([]byte{msgODReq}, req.Encode()...)
	}
	raw, err := c.roundTrip(build(), msgODResp, build)
	if err != nil {
		return core.Record{}, nil, err
	}
	resp, err := core.DecodeODResponse(c.alg, raw)
	if err != nil {
		return core.Record{}, nil, err
	}
	return resp.M0, resp.Records, nil
}
