package session

import (
	"testing"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/hw/mcu"
	"erasmus/internal/netsim"
	"erasmus/internal/sim"
)

const alg = mac.KeyedBLAKE2s

var key = []byte("session-test-device-key")

type fixture struct {
	engine *sim.Engine
	net    *netsim.Network
	dev    *mcu.Device
	prover *core.Prover
	client *VerifierClient
}

func newFixture(t *testing.T, netCfg netsim.Config) *fixture {
	t.Helper()
	e := sim.NewEngine()
	n, err := netsim.New(e, netCfg)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := mcu.New(mcu.Config{
		Engine: e, MemorySize: 1024,
		StoreSize: 16 * core.RecordSize(alg),
		Key:       key,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, _ := core.NewRegular(sim.Hour)
	p, err := core.NewProver(dev, core.ProverConfig{Alg: alg, Schedule: sched, Slots: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AttachProver(n, e, "prv-1", p, alg); err != nil {
		t.Fatal(err)
	}
	c, err := NewVerifierClient(n, e, "vrf", alg, key, dev.RROC)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{engine: e, net: n, dev: dev, prover: p, client: c}
}

func (f *fixture) warmup(t *testing.T, hours int) {
	t.Helper()
	f.prover.Start()
	f.engine.RunUntil(f.engine.Now() + sim.Ticks(hours)*sim.Hour)
	f.prover.Stop()
}

func TestCollectOverNetwork(t *testing.T) {
	f := newFixture(t, netsim.Config{Latency: 5 * sim.Millisecond})
	f.warmup(t, 5)

	var got CollectResult
	var gotErr error
	done := false
	err := f.client.Collect("prv-1", 4, func(r CollectResult, err error) {
		got, gotErr, done = r, err, true
	})
	if err != nil {
		t.Fatal(err)
	}
	f.engine.RunUntil(f.engine.Now() + sim.Second)
	if !done {
		t.Fatal("callback never invoked")
	}
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if len(got.Records) != 4 {
		t.Fatalf("got %d records", len(got.Records))
	}
	for _, r := range got.Records {
		if !r.VerifyMAC(alg, key) {
			t.Fatal("record corrupted in transit")
		}
	}
	if got.Attempts != 1 {
		t.Fatalf("attempts = %d", got.Attempts)
	}
	// RTT = 2×latency + prover processing (sub-millisecond).
	if got.RTT < 10*sim.Millisecond || got.RTT > 12*sim.Millisecond {
		t.Fatalf("RTT = %v", got.RTT)
	}
}

func TestCollectODOverNetwork(t *testing.T) {
	f := newFixture(t, netsim.Config{Latency: sim.Millisecond})
	f.warmup(t, 3)

	var got CollectResult
	done := false
	err := f.client.CollectOD("prv-1", 2, func(r CollectResult, err error) {
		if err != nil {
			t.Errorf("CollectOD: %v", err)
		}
		got, done = r, true
	})
	if err != nil {
		t.Fatal(err)
	}
	f.engine.RunUntil(f.engine.Now() + 10*sim.Second)
	if !done {
		t.Fatal("callback never invoked")
	}
	if got.M0 == nil || !got.M0.VerifyMAC(alg, key) {
		t.Fatal("missing or invalid M0")
	}
	if len(got.Records) != 2 {
		t.Fatalf("history = %d records", len(got.Records))
	}
	// M0 is fresher than the stored history.
	if got.M0.T <= got.Records[0].T {
		t.Fatal("M0 not fresher than the newest stored record")
	}
	if f.prover.Stats().ODMeasured != 1 {
		t.Fatal("prover did not compute an on-demand measurement")
	}
}

func TestRetriesUnderLoss(t *testing.T) {
	f := newFixture(t, netsim.Config{Latency: sim.Millisecond, LossRate: 0.5, Seed: 5})
	f.warmup(t, 3)
	f.client.Attempts = 10

	succeeded := 0
	attemptsTotal := 0
	for i := 0; i < 10; i++ {
		done := false
		err := f.client.Collect("prv-1", 2, func(r CollectResult, err error) {
			done = true
			if err == nil {
				succeeded++
				attemptsTotal += r.Attempts
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		f.engine.RunUntil(f.engine.Now() + time30s())
		if !done {
			t.Fatal("no callback after all attempts")
		}
	}
	if succeeded < 8 {
		t.Fatalf("only %d/10 collections under 50%% loss with 10 attempts", succeeded)
	}
	if attemptsTotal <= succeeded {
		t.Fatal("no retransmissions recorded under 50% loss")
	}
}

func time30s() sim.Ticks { return 30 * sim.Second }

func TestTimeoutWhenProverUnreachable(t *testing.T) {
	f := newFixture(t, netsim.Config{})
	var gotErr error
	done := false
	err := f.client.Collect("prv-missing", 2, func(r CollectResult, err error) {
		gotErr, done = err, true
		if r.Attempts != 3 {
			t.Errorf("attempts = %d, want 3", r.Attempts)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	f.engine.RunUntil(f.engine.Now() + 10*sim.Second)
	if !done {
		t.Fatal("no timeout callback")
	}
	if gotErr != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
}

func TestOutstandingRequestRejected(t *testing.T) {
	f := newFixture(t, netsim.Config{Latency: sim.Second})
	if err := f.client.Collect("prv-1", 1, func(CollectResult, error) {}); err != nil {
		t.Fatal(err)
	}
	if err := f.client.Collect("prv-1", 1, func(CollectResult, error) {}); err == nil {
		t.Fatal("second outstanding request accepted")
	}
}

func TestODRetransmissionUsesFreshTreq(t *testing.T) {
	// Drop the first two transmissions; the third must still pass the
	// prover's freshness/anti-replay checks.
	f := newFixture(t, netsim.Config{Latency: sim.Millisecond, LossRate: 0.55, Seed: 17})
	f.warmup(t, 3)
	f.client.Attempts = 12

	ok := false
	err := f.client.CollectOD("prv-1", 1, func(r CollectResult, err error) {
		ok = err == nil && r.M0 != nil
	})
	if err != nil {
		t.Fatal(err)
	}
	f.engine.RunUntil(f.engine.Now() + sim.Minute)
	if !ok {
		t.Fatal("OD collection failed under loss")
	}
}

func TestMalformedDatagramsIgnored(t *testing.T) {
	f := newFixture(t, netsim.Config{})
	f.warmup(t, 2)
	// Garbage straight to the prover endpoint: silently dropped.
	f.net.Send(netsim.Packet{From: "vrf", To: "prv-1", Kind: core.KindCollectRequest, Payload: []byte{1}})
	f.net.Send(netsim.Packet{From: "vrf", To: "prv-1", Kind: core.KindODRequest, Payload: []byte{2, 3}})
	f.net.Send(netsim.Packet{From: "vrf", To: "prv-1", Kind: "unknown", Payload: nil})
	f.engine.RunUntil(f.engine.Now() + sim.Second)
	// Prover still fully functional afterward.
	done := false
	f.client.Collect("prv-1", 1, func(r CollectResult, err error) { done = err == nil })
	f.engine.RunUntil(f.engine.Now() + sim.Second)
	if !done {
		t.Fatal("prover broken by malformed datagrams")
	}
}

func TestForgedODRequestGetsNoReply(t *testing.T) {
	f := newFixture(t, netsim.Config{})
	f.warmup(t, 2)
	bad, err := NewVerifierClient(f.net, f.engine, "attacker", alg, []byte("wrong-key"), f.dev.RROC)
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	bad.Collect("prv-1", 1, func(r CollectResult, err error) {
		// Plain collection needs no key — it succeeds even for strangers.
		gotErr = err
	})
	f.engine.RunUntil(f.engine.Now() + sim.Second)
	if gotErr != nil {
		t.Fatalf("plain collection should succeed without the key: %v", gotErr)
	}

	timedOut := false
	bad.CollectOD("prv-1", 1, func(r CollectResult, err error) { timedOut = err == ErrTimeout })
	f.engine.RunUntil(f.engine.Now() + 10*sim.Second)
	if !timedOut {
		t.Fatal("forged OD request was answered")
	}
	if f.prover.Stats().ODRejected == 0 {
		t.Fatal("prover did not log the rejection")
	}
	if f.prover.Stats().ODMeasured != 0 {
		t.Fatal("forged request triggered a measurement (DoS!)")
	}
}

func TestDetach(t *testing.T) {
	f := newFixture(t, netsim.Config{})
	ep, err := AttachProver(f.net, f.engine, "prv-2", f.prover, alg)
	if err != nil {
		t.Fatal(err)
	}
	ep.Detach()
	timedOut := false
	f.client.Collect("prv-2", 1, func(r CollectResult, err error) { timedOut = err == ErrTimeout })
	f.engine.RunUntil(f.engine.Now() + 10*sim.Second)
	if !timedOut {
		t.Fatal("detached endpoint still serving")
	}
}

func TestConstructorValidation(t *testing.T) {
	e := sim.NewEngine()
	n, _ := netsim.New(e, netsim.Config{})
	if _, err := AttachProver(nil, e, "x", nil, alg); err == nil {
		t.Error("nil args accepted")
	}
	if _, err := NewVerifierClient(n, e, "x", alg, key, nil); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewVerifierClient(n, e, "x", mac.Algorithm(0), key, func() uint64 { return 0 }); err == nil {
		t.Error("invalid algorithm accepted")
	}
}

func TestCollectDeltaOverNetwork(t *testing.T) {
	f := newFixture(t, netsim.Config{Latency: 5 * sim.Millisecond})
	f.warmup(t, 5)

	// A full collection establishes the watermark…
	var first CollectResult
	err := f.client.Collect("prv-1", 3, func(r CollectResult, err error) {
		if err != nil {
			t.Error(err)
		}
		first = r
	})
	if err != nil {
		t.Fatal(err)
	}
	f.engine.RunUntil(f.engine.Now() + sim.Second)
	if len(first.Records) != 3 {
		t.Fatalf("got %d records", len(first.Records))
	}
	since := first.Records[0].T

	// …then two more measurement windows pass, and a delta request ships
	// exactly the two new records plus the anchor.
	f.warmup(t, 2)
	var got CollectResult
	done := false
	err = f.client.CollectDelta("prv-1", since, 0, func(r CollectResult, err error) {
		if err != nil {
			t.Error(err)
		}
		got, done = r, true
	})
	if err != nil {
		t.Fatal(err)
	}
	f.engine.RunUntil(f.engine.Now() + sim.Second)
	if !done {
		t.Fatal("callback never invoked")
	}
	if len(got.Records) != 3 { // 2 new + anchor
		t.Fatalf("delta shipped %d records, want 3", len(got.Records))
	}
	if got.Records[len(got.Records)-1].T != since {
		t.Fatalf("oldest shipped record t=%d, want the anchor t=%d",
			got.Records[len(got.Records)-1].T, since)
	}
	for _, r := range got.Records {
		if r.T < since {
			t.Fatalf("record older than the watermark shipped: %d < %d", r.T, since)
		}
		if !r.VerifyMAC(alg, key) {
			t.Fatal("record corrupted in transit")
		}
	}
}

func TestCollectDeltaAggregateOverNetwork(t *testing.T) {
	f := newFixture(t, netsim.Config{Latency: 5 * sim.Millisecond})
	f.warmup(t, 5)

	golden := mac.HashSum(alg, f.dev.Memory())
	v, err := core.NewVerifier(core.VerifierConfig{
		Alg: alg, Key: key, GoldenHashes: [][]byte{golden},
		MinGap: sim.Hour - sim.Minute, MaxGap: sim.Hour + sim.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Bootstrap round: zero watermark, nonce 1.
	var got CollectResult
	done := false
	err = f.client.CollectDeltaAggregate("prv-1", 0, 1, nil, 5, func(r CollectResult, err error) {
		if err != nil {
			t.Error(err)
		}
		got, done = r, true
	})
	if err != nil {
		t.Fatal(err)
	}
	f.engine.RunUntil(f.engine.Now() + sim.Second)
	if !done {
		t.Fatal("callback never invoked")
	}
	if len(got.AggState) == 0 || len(got.AggMAC) == 0 {
		t.Fatalf("aggregate evidence missing: state=%d MAC=%d bytes", len(got.AggState), len(got.AggMAC))
	}
	agg := core.AggregateEvidence{Since: 0, Nonce: 1, State: got.AggState, MAC: got.AggMAC}
	rep, wm := v.VerifyDeltaAggregate(got.Records, f.dev.RROC(), 5, core.Watermark{}, agg)
	if !rep.AggregateApplied || !rep.Healthy() {
		t.Fatalf("bootstrap round over the network failed: %+v", rep)
	}
	if len(wm.Chain) == 0 {
		t.Fatalf("watermark missing chain state: %+v", wm)
	}

	// Two more windows, then an anchored aggregate round: the two new
	// records plus the anchor, one MAC for the lot.
	f.warmup(t, 2)
	done = false
	err = f.client.CollectDeltaAggregate("prv-1", wm.T, 2, wm.Hash, 0, func(r CollectResult, err error) {
		if err != nil {
			t.Error(err)
		}
		got, done = r, true
	})
	if err != nil {
		t.Fatal(err)
	}
	f.engine.RunUntil(f.engine.Now() + sim.Second)
	if !done {
		t.Fatal("callback never invoked")
	}
	agg2 := core.AggregateEvidence{Since: wm.T, Nonce: 2, AnchorHash: wm.Hash, State: got.AggState, MAC: got.AggMAC}
	rep2, wm2 := v.VerifyDeltaAggregate(got.Records, f.dev.RROC(), 0, wm, agg2)
	if !rep2.AggregateApplied || rep2.AggregateFallback || !rep2.Healthy() {
		t.Fatalf("anchored round over the network fell back: %+v", rep2)
	}
	if len(rep2.Records) != 2 || rep2.OverlapTrusted != 1 {
		t.Fatalf("anchored round graded wrong set: %+v", rep2)
	}
	if wm2.T <= wm.T || len(wm2.Chain) == 0 {
		t.Fatalf("watermark did not advance with the chain: %+v", wm2)
	}

	// Evidence corrupted in transit (or forged) drops to the audit tier
	// with identical verdicts, not an error.
	badAgg := agg2
	badAgg.MAC = append([]byte(nil), agg2.MAC...)
	badAgg.MAC[0] ^= 1
	rep3, _ := v.VerifyDeltaAggregate(got.Records, f.dev.RROC(), 0, wm, badAgg)
	if rep3.AggregateApplied || !rep3.AggregateFallback {
		t.Fatalf("forged evidence did not fall back: %+v", rep3)
	}
	if !rep3.Healthy() {
		t.Fatalf("audit tier rejected honest records: %+v", rep3)
	}
}
