// Package session runs the ERASMUS collection protocols over the
// simulated datagram network: a prover endpoint that serves collection and
// on-demand requests with the modeled prover-side delays, and a verifier
// client with timeouts and retries (the transport is UDP-like and lossy,
// exactly as in the paper's deployment).
package session

import (
	"errors"
	"fmt"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/netsim"
	"erasmus/internal/sim"
)

// ProverEndpoint serves a prover's collection phase on a network address.
type ProverEndpoint struct {
	net    *netsim.Network
	engine *sim.Engine
	addr   string
	prover *core.Prover
	alg    mac.Algorithm
}

// AttachProver binds the prover to addr. Incoming collect requests are
// served with no cryptography; on-demand requests go through the full
// authenticate-then-measure path. Responses are sent after the modeled
// prover-side processing time.
func AttachProver(n *netsim.Network, e *sim.Engine, addr string, p *core.Prover, alg mac.Algorithm) (*ProverEndpoint, error) {
	if n == nil || e == nil || p == nil {
		return nil, errors.New("session: nil network, engine or prover")
	}
	if !alg.Valid() {
		return nil, fmt.Errorf("session: invalid algorithm %d", int(alg))
	}
	ep := &ProverEndpoint{net: n, engine: e, addr: addr, prover: p, alg: alg}
	n.Attach(addr, ep.handle)
	return ep, nil
}

// Detach removes the endpoint from the network.
func (ep *ProverEndpoint) Detach() { ep.net.Attach(ep.addr, nil) }

func (ep *ProverEndpoint) handle(pkt netsim.Packet) {
	switch pkt.Kind {
	case core.KindCollectRequest:
		req, err := core.DecodeCollectRequest(pkt.Payload)
		if err != nil {
			return // malformed datagrams are dropped, as UDP services do
		}
		recs, timing := ep.prover.HandleCollect(req.K)
		resp := core.CollectResponse{Records: recs}.Encode(ep.alg)
		ep.engine.After(timing.Total(), func() {
			ep.net.Send(netsim.Packet{
				From: ep.addr, To: pkt.From,
				Kind: core.KindCollectResponse, Payload: resp,
			})
		})
	case core.KindDeltaCollectRequest:
		req, err := core.DecodeDeltaCollectRequest(pkt.Payload)
		if err != nil {
			return
		}
		recs, timing := ep.prover.HandleCollectDelta(req.Since, req.K)
		resp := core.CollectResponse{Records: recs}.Encode(ep.alg)
		ep.engine.After(timing.Total(), func() {
			ep.net.Send(netsim.Packet{
				From: ep.addr, To: pkt.From,
				Kind: core.KindCollectResponse, Payload: resp,
			})
		})
	case core.KindAggDeltaCollectRequest:
		req, err := core.DecodeAggDeltaCollectRequest(pkt.Payload)
		if err != nil {
			return
		}
		recs, state, aggMAC, timing, err := ep.prover.HandleCollectDeltaAggregate(req.Since, req.Nonce, req.K, req.AnchorHash)
		if err != nil {
			return // attestation fault; silence, like a rejected OD request
		}
		resp := core.AggCollectResponse{ChainState: state, AggMAC: aggMAC, Records: recs}.Encode(ep.alg)
		ep.engine.After(timing.Total(), func() {
			ep.net.Send(netsim.Packet{
				From: ep.addr, To: pkt.From,
				Kind: core.KindAggCollectResponse, Payload: resp,
			})
		})
	case core.KindODRequest:
		req, err := core.DecodeODRequest(ep.alg, pkt.Payload)
		if err != nil {
			return
		}
		m0, hist, timing, err := ep.prover.HandleCollectOD(req.Treq, req.K, req.MAC)
		if err != nil {
			// Rejected requests get no reply (anti-DoS: silence is cheaper
			// than an authenticated error).
			return
		}
		resp := core.ODResponse{M0: m0, Records: hist}.Encode(ep.alg)
		ep.engine.After(timing.Total(), func() {
			ep.net.Send(netsim.Packet{
				From: ep.addr, To: pkt.From,
				Kind: core.KindODResponse, Payload: resp,
			})
		})
	}
}

// CollectResult is delivered to the verifier's callback.
type CollectResult struct {
	// Records is the returned history (newest first). For ERASMUS+OD the
	// fresh M0 is prepended by the caller-visible OD flag below.
	Records []core.Record
	// M0 is the on-demand record (ERASMUS+OD only).
	M0 *core.Record
	// Attempts counts transmissions used (1 = no retransmission).
	Attempts int
	// RTT is request-to-response latency of the successful attempt.
	RTT sim.Ticks
	// AggState and AggMAC carry the aggregate tier's evidence — the
	// prover's marshaled chain head and the MAC binding it to the
	// request — on responses to CollectDeltaAggregate; nil otherwise.
	AggState, AggMAC []byte
}

// ErrTimeout is reported when all attempts expire unanswered.
var ErrTimeout = errors.New("session: request timed out")

// VerifierClient issues collections over the network. One outstanding
// request per prover address at a time.
type VerifierClient struct {
	net    *netsim.Network
	engine *sim.Engine
	addr   string
	alg    mac.Algorithm
	key    []byte
	// Clock returns the verifier's time base for on-demand request
	// freshness; it must be loosely synchronized with the prover's RROC.
	Clock func() uint64

	// Timeout per attempt and maximum attempts.
	Timeout  sim.Ticks
	Attempts int

	pending  map[string]*pendingReq
	lastTreq uint64
}

type pendingReq struct {
	od       bool
	k        int
	attempt  int
	sentAt   sim.Ticks
	timer    *sim.Event
	callback func(CollectResult, error)
	payload  []byte
	kind     string
}

// NewVerifierClient builds a client listening on addr.
func NewVerifierClient(n *netsim.Network, e *sim.Engine, addr string, alg mac.Algorithm, key []byte, clock func() uint64) (*VerifierClient, error) {
	if n == nil || e == nil {
		return nil, errors.New("session: nil network or engine")
	}
	if !alg.Valid() {
		return nil, fmt.Errorf("session: invalid algorithm %d", int(alg))
	}
	if clock == nil {
		return nil, errors.New("session: clock required")
	}
	c := &VerifierClient{
		net: n, engine: e, addr: addr, alg: alg,
		key:      append([]byte(nil), key...),
		Clock:    clock,
		Timeout:  500 * sim.Millisecond,
		Attempts: 3,
		pending:  make(map[string]*pendingReq),
	}
	n.Attach(addr, c.handle)
	return c, nil
}

// Collect requests the k latest records from the prover at proverAddr and
// invokes cb when the response arrives or every attempt times out.
func (c *VerifierClient) Collect(proverAddr string, k int, cb func(CollectResult, error)) error {
	payload := core.CollectRequest{K: k}.Encode()
	return c.start(proverAddr, &pendingReq{
		k: k, callback: cb, payload: payload, kind: core.KindCollectRequest,
	})
}

// CollectDelta requests the records measured at or after since — the
// incremental collection of a stateful verifier (core.DeltaCollectRequest).
// k ≤ 0 means "everything since", clamped to the prover's buffer size.
// The response arrives through the same callback contract as Collect.
func (c *VerifierClient) CollectDelta(proverAddr string, since uint64, k int, cb func(CollectResult, error)) error {
	payload := core.DeltaCollectRequest{Since: since, K: k}.Encode()
	return c.start(proverAddr, &pendingReq{
		k: k, callback: cb, payload: payload, kind: core.KindDeltaCollectRequest,
	})
}

// CollectDeltaAggregate requests an aggregate-anchor incremental
// collection (core.AggDeltaCollectRequest): the delta records plus the
// prover's chain head under one MAC bound to (since, nonce, anchorHash).
// The evidence arrives in CollectResult.AggState/AggMAC; the caller
// verifies it with core.VerifyDeltaAggregate.
func (c *VerifierClient) CollectDeltaAggregate(proverAddr string, since, nonce uint64, anchorHash []byte, k int, cb func(CollectResult, error)) error {
	payload := core.AggDeltaCollectRequest{Since: since, Nonce: nonce, K: k, AnchorHash: anchorHash}.Encode()
	return c.start(proverAddr, &pendingReq{
		k: k, callback: cb, payload: payload, kind: core.KindAggDeltaCollectRequest,
	})
}

// CollectOD issues an authenticated ERASMUS+OD request: the prover will
// compute a fresh measurement M0 and return it with the history. Request
// timestamps follow core.NextTreq, so the prover's anti-replay floor
// never ratchets ahead of honest clocks.
func (c *VerifierClient) CollectOD(proverAddr string, k int, cb func(CollectResult, error)) error {
	req := core.NewODRequest(c.alg, c.key, core.NextTreq(c.Clock, &c.lastTreq), k)
	return c.start(proverAddr, &pendingReq{
		od: true, k: k, callback: cb, payload: req.Encode(), kind: core.KindODRequest,
	})
}

func (c *VerifierClient) start(proverAddr string, p *pendingReq) error {
	if _, busy := c.pending[proverAddr]; busy {
		return fmt.Errorf("session: request to %s already outstanding", proverAddr)
	}
	c.pending[proverAddr] = p
	c.transmit(proverAddr, p)
	return nil
}

func (c *VerifierClient) transmit(proverAddr string, p *pendingReq) {
	p.attempt++
	p.sentAt = c.engine.Now()
	if p.od && p.attempt > 1 {
		// Retransmissions need a fresh treq: the prover's anti-replay
		// floor already consumed the previous one if the response (not
		// the request) was lost.
		req := core.NewODRequest(c.alg, c.key, core.NextTreq(c.Clock, &c.lastTreq), p.k)
		p.payload = req.Encode()
	}
	c.net.Send(netsim.Packet{From: c.addr, To: proverAddr, Kind: p.kind, Payload: p.payload})
	p.timer = c.engine.After(c.Timeout, func() {
		if p.attempt >= c.Attempts {
			delete(c.pending, proverAddr)
			p.callback(CollectResult{Attempts: p.attempt}, ErrTimeout)
			return
		}
		c.transmit(proverAddr, p)
	})
}

func (c *VerifierClient) handle(pkt netsim.Packet) {
	p, ok := c.pending[pkt.From]
	if !ok {
		return // stale or duplicate response
	}
	switch pkt.Kind {
	case core.KindCollectResponse:
		if p.od || p.kind == core.KindAggDeltaCollectRequest {
			return
		}
		resp, err := core.DecodeCollectResponse(c.alg, pkt.Payload)
		if err != nil {
			return // corrupted datagram; let the timeout retry
		}
		c.finish(pkt.From, p, CollectResult{Records: resp.Records})
	case core.KindAggCollectResponse:
		if p.kind != core.KindAggDeltaCollectRequest {
			return // cross-talk from an earlier request shape
		}
		resp, err := core.DecodeAggCollectResponse(c.alg, pkt.Payload)
		if err != nil {
			return
		}
		c.finish(pkt.From, p, CollectResult{Records: resp.Records, AggState: resp.ChainState, AggMAC: resp.AggMAC})
	case core.KindODResponse:
		if !p.od {
			return
		}
		resp, err := core.DecodeODResponse(c.alg, pkt.Payload)
		if err != nil {
			return
		}
		m0 := resp.M0
		c.finish(pkt.From, p, CollectResult{Records: resp.Records, M0: &m0})
	}
}

func (c *VerifierClient) finish(proverAddr string, p *pendingReq, res CollectResult) {
	p.timer.Cancel()
	delete(c.pending, proverAddr)
	res.Attempts = p.attempt
	res.RTT = c.engine.Now() - p.sentAt
	p.callback(res, nil)
}
