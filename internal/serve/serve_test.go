package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/fleet"
	"erasmus/internal/hw/imx6"
	"erasmus/internal/netsim"
	"erasmus/internal/obs"
	"erasmus/internal/serve"
	"erasmus/internal/session"
	"erasmus/internal/sim"
	"erasmus/internal/store"
)

const alg = mac.KeyedBLAKE2s

const (
	svTM      = 60 * sim.Millisecond
	svTC      = 240 * sim.Millisecond
	svHorizon = 1100 * sim.Millisecond
	svMidRun  = 600 * sim.Millisecond // two collection rounds in
)

// newTestFleet builds a two-device scenario that alerts on every
// collection round: svc-00 is infected before its first measurement,
// svc-01 is provisioned with a mismatched key (tamper). Four rounds by
// svHorizon make eight alerts. The engine is driven by the caller.
func newTestFleet(t *testing.T, mutate ...func(*fleet.ManagerConfig)) (*sim.Engine, *fleet.Manager) {
	t.Helper()
	e := sim.NewEngine()
	nw, err := netsim.New(e, netsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	clock := func() uint64 { return imx6.DefaultEpoch + uint64(e.Now()) }
	col, err := fleet.NewSimCollector(nw, e, "hq", clock)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fleet.ManagerConfig{
		Engine: e, Collector: col, Clock: clock, Synchronous: true,
	}
	for _, f := range mutate {
		f(&cfg)
	}
	mgr, err := fleet.NewManagerWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, infected := range []bool{true, false} {
		key := []byte(fmt.Sprintf("serve-device-key-%02d", i))
		regKey := key
		if !infected {
			regKey = []byte("provisioning-mismatch")
		}
		dev, err := imx6.New(imx6.Config{
			Engine: e, MemorySize: 256,
			StoreSize: 8 * core.RecordSize(alg),
			Key:       key,
		})
		if err != nil {
			t.Fatal(err)
		}
		golden := mac.HashSum(alg, dev.Memory())
		if infected {
			if err := dev.WriteMemory(0, []byte("resident implant")); err != nil {
				t.Fatal(err)
			}
		}
		sched, err := core.NewRegularWithPhase(svTM, svTM/2)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.NewProver(dev, core.ProverConfig{Alg: alg, Schedule: sched, Slots: 8})
		if err != nil {
			t.Fatal(err)
		}
		addr := fmt.Sprintf("svc-%02d", i)
		if _, err := session.AttachProver(nw, e, addr, p, alg); err != nil {
			t.Fatal(err)
		}
		err = mgr.Register(fleet.DeviceConfig{
			Addr: addr, Key: regKey, Alg: alg,
			QoA:          core.QoA{TM: svTM, TC: svTC},
			GoldenHashes: [][]byte{golden},
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
	}
	return e, mgr
}

// watchLine decodes any line of a watch stream: a gap marker or an
// alert/event payload.
type watchLine struct {
	Gap    bool   `json:"gap"`
	Since  uint64 `json:"since"`
	Next   uint64 `json:"next"`
	Seq    uint64 `json:"seq"`
	Time   int64  `json:"time"`
	Device string `json:"device"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// streamConn is one watch-stream client: a background reader feeds
// complete lines into a channel so tests can read with timeouts instead
// of hanging on protocol bugs.
type streamConn struct {
	resp  *http.Response
	lines chan string
}

func openStream(t *testing.T, url string) *streamConn {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	c := &streamConn{resp: resp, lines: make(chan string, 256)}
	go func() {
		rd := bufio.NewReader(resp.Body)
		for {
			line, err := rd.ReadString('\n')
			if line != "" {
				c.lines <- strings.TrimRight(line, "\n")
			}
			if err != nil {
				close(c.lines)
				return
			}
		}
	}()
	return c
}

func (c *streamConn) readLines(t *testing.T, n int) []watchLine {
	t.Helper()
	out := make([]watchLine, 0, n)
	for len(out) < n {
		select {
		case raw, ok := <-c.lines:
			if !ok {
				t.Fatalf("stream closed after %d of %d lines", len(out), n)
			}
			var l watchLine
			if err := json.Unmarshal([]byte(raw), &l); err != nil {
				t.Fatalf("unparseable stream line %q: %v", raw, err)
			}
			out = append(out, l)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d of %d lines", len(out), n)
		}
	}
	return out
}

func (c *streamConn) assertNoLine(t *testing.T) {
	t.Helper()
	select {
	case raw, ok := <-c.lines:
		if ok {
			t.Fatalf("unexpected stream line %q", raw)
		}
	case <-time.After(150 * time.Millisecond):
	}
}

func (c *streamConn) close() { c.resp.Body.Close() }

// assertAlertLines checks that lines carry exactly alerts[0..] with
// consecutive seqs starting at firstSeq.
func assertAlertLines(t *testing.T, lines []watchLine, alerts []fleet.Alert, firstSeq uint64) {
	t.Helper()
	if len(lines) != len(alerts) {
		t.Fatalf("stream delivered %d alerts, want %d", len(lines), len(alerts))
	}
	for i, l := range lines {
		if l.Gap {
			t.Fatalf("unexpected gap marker at position %d: %+v", i, l)
		}
		want := alerts[i]
		if l.Seq != firstSeq+uint64(i) || l.Time != int64(want.Time) ||
			l.Device != want.Device || l.Kind != string(want.Kind) || l.Detail != want.Detail {
			t.Fatalf("line %d = %+v, want seq %d of %+v", i, l, firstSeq+uint64(i), want)
		}
	}
}

// The tentpole acceptance criterion, consumer side: a consumer killed
// mid-stream reconnects with ?since=<last processed seq> and the
// concatenation of both connections is line-for-line identical to an
// uninterrupted consumer — and to Manager.Alerts() — with no losses and
// no duplicates.
func TestWatchAlertsKillAndReconnect(t *testing.T) {
	e, mgr := newTestFleet(t)
	defer mgr.Close()
	ts := httptest.NewServer(serve.NewMux(serve.Config{Manager: mgr}))
	defer ts.Close()

	full := openStream(t, ts.URL+"/watch/alerts")
	defer full.close()
	victim := openStream(t, ts.URL+"/watch/alerts")

	mgr.Start()
	e.RunUntil(svMidRun)

	// The victim processes three alerts, then dies mid-run.
	head := victim.readLines(t, 3)
	victim.close()
	cursor := head[len(head)-1].Seq

	e.RunUntil(svHorizon)
	mgr.Stop()
	mgr.Flush()
	want := mgr.Alerts()
	if len(want) < 6 {
		t.Fatalf("scenario produced only %d alerts; it exercises nothing", len(want))
	}

	// Reconnect exactly where the victim left off.
	resumed := openStream(t, fmt.Sprintf("%s/watch/alerts?since=%d", ts.URL, cursor))
	defer resumed.close()
	tail := resumed.readLines(t, len(want)-len(head))

	uninterrupted := full.readLines(t, len(want))
	assertAlertLines(t, uninterrupted, want, 1)

	combined := append(append([]watchLine(nil), head...), tail...)
	if !reflect.DeepEqual(combined, uninterrupted) {
		t.Errorf("kill+reconnect stream diverges from uninterrupted:\ncombined:      %+v\nuninterrupted: %+v",
			combined, uninterrupted)
	}
}

// A consumer whose subscription buffer overflows (WatchBuffer 1, the
// worst case) is healed from retained history: every alert still arrives
// exactly once, in order, with no gap marker — nothing was trimmed, so
// nothing was lost.
func TestWatchAlertsSlowConsumerHealed(t *testing.T) {
	e, mgr := newTestFleet(t)
	defer mgr.Close()
	ts := httptest.NewServer(serve.NewMux(serve.Config{Manager: mgr, WatchBuffer: 1}))
	defer ts.Close()

	c := openStream(t, ts.URL+"/watch/alerts")
	defer c.close()

	mgr.Start()
	e.RunUntil(svHorizon)
	mgr.Stop()
	mgr.Flush()
	want := mgr.Alerts()

	lines := c.readLines(t, len(want))
	assertAlertLines(t, lines, want, 1)
}

// A cursor pointing below the oldest retained alert (MaxAlerts trimmed
// the history before this manager loaded) gets an explicit gap marker,
// then the retained tail; a cursor inside retained history resumes
// without one; a cursor beyond the head streams nothing.
func TestWatchAlertsTrimmedHistoryGap(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{MaxAlerts: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 1; i <= 5; i++ {
		ev := store.AlertEvent{Time: int64(i), Device: "d", Kind: "infection", Detail: fmt.Sprintf("a%d", i)}
		if err := st.AppendAlert(ev); err != nil {
			t.Fatal(err)
		}
	}
	_, mgr := newTestFleetOverStore(t, st)
	defer mgr.Close()
	ts := httptest.NewServer(serve.NewMux(serve.Config{Manager: mgr}))
	defer ts.Close()

	c := openStream(t, ts.URL+"/watch/alerts")
	lines := c.readLines(t, 4)
	c.close()
	if !lines[0].Gap || lines[0].Since != 0 || lines[0].Next != 3 {
		t.Fatalf("first line = %+v, want gap marker since=0 next=3", lines[0])
	}
	for i, l := range lines[1:] {
		if l.Gap || l.Seq != uint64(3+i) {
			t.Fatalf("post-gap line %d = %+v, want seq %d", i, l, 3+i)
		}
	}

	c = openStream(t, ts.URL+"/watch/alerts?since=4")
	inRange := c.readLines(t, 1)
	c.close()
	if inRange[0].Gap || inRange[0].Seq != 5 || inRange[0].Detail != "a5" {
		t.Fatalf("since=4 line = %+v, want seq 5 without gap", inRange[0])
	}

	beyond := openStream(t, ts.URL+"/watch/alerts?since=99")
	beyond.assertNoLine(t)
	beyond.close()
}

// newTestFleetOverStore builds a deviceless manager recovered over st.
func newTestFleetOverStore(t *testing.T, st *store.Store) (*sim.Engine, *fleet.Manager) {
	t.Helper()
	e := sim.NewEngine()
	nw, err := netsim.New(e, netsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	clock := func() uint64 { return uint64(e.Now()) }
	col, err := fleet.NewSimCollector(nw, e, "hq", clock)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := fleet.NewManagerWith(fleet.ManagerConfig{
		Engine: e, Collector: col, Clock: clock, Synchronous: true, Store: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, mgr
}

// The event stream speaks the same cursor protocol: ring overwrites
// surface as gap markers, in-ring cursors resume exactly, and live
// events follow the backlog.
func TestWatchEventsResume(t *testing.T) {
	events := obs.NewEventLog(4)
	_, mgr := newTestFleet(t)
	defer mgr.Close()
	ts := httptest.NewServer(serve.NewMux(serve.Config{Manager: mgr, Events: events}))
	defer ts.Close()

	for i := 0; i < 6; i++ {
		events.Emit(obs.Event{Subsystem: "test", Kind: "k", Detail: fmt.Sprintf("e%d", i+1)})
	}

	// Ring of 4 after 6 emits: seqs 1..2 overwritten.
	c := openStream(t, ts.URL+"/watch/events")
	lines := c.readLines(t, 5)
	c.close()
	if !lines[0].Gap || lines[0].Next != 3 {
		t.Fatalf("first line = %+v, want gap marker next=3", lines[0])
	}
	for i, l := range lines[1:] {
		if l.Gap || l.Seq != uint64(3+i) || l.Kind != "k" {
			t.Fatalf("post-gap line %d = %+v, want seq %d", i, l, 3+i)
		}
	}

	c = openStream(t, ts.URL+"/watch/events?since=4")
	mid := c.readLines(t, 2)
	c.close()
	if mid[0].Seq != 5 || mid[1].Seq != 6 || mid[0].Gap {
		t.Fatalf("since=4 lines = %+v, want seqs 5,6", mid)
	}

	// A caught-up consumer receives live emissions as they happen.
	live := openStream(t, ts.URL+"/watch/events?since=6")
	events.Emit(obs.Event{Subsystem: "test", Kind: "k", Detail: "e7"})
	got := live.readLines(t, 1)
	live.close()
	if got[0].Seq != 7 || got[0].Detail != "e7" {
		t.Fatalf("live line = %+v, want seq 7 detail e7", got[0])
	}
}

// /livez answers for the process, /readyz for the verifier: ready only
// once recovery is clean AND the first collection round has applied.
// /schedz exposes the adaptive controller's per-device state.
func TestReadinessAndSchedz(t *testing.T) {
	e, mgr := newTestFleet(t, func(c *fleet.ManagerConfig) { c.AdaptiveSchedule = true })
	defer mgr.Close()
	ts := httptest.NewServer(serve.NewMux(serve.Config{Manager: mgr, Registry: obs.NewRegistry()}))
	defer ts.Close()

	if code := getStatus(t, ts.URL+"/livez"); code != http.StatusOK {
		t.Errorf("/livez = %d before Start, want 200", code)
	}
	if code := getStatus(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d before the first round, want 503", code)
	}

	mgr.Start()
	if code := getStatus(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d after Start but before any verdict, want 503", code)
	}
	e.RunUntil(svMidRun)
	if code := getStatus(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz = %d after a collection round, want 200", code)
	}
	if code := getStatus(t, ts.URL+"/livez"); code != http.StatusOK {
		t.Errorf("/livez = %d mid-run, want 200", code)
	}
	if code := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", code)
	}

	var sched struct {
		Adaptive bool                   `json:"adaptive"`
		Devices  []fleet.DeviceSchedule `json:"devices"`
	}
	getJSON(t, ts.URL+"/schedz", &sched)
	if !sched.Adaptive || len(sched.Devices) != 2 {
		t.Fatalf("/schedz = %+v, want adaptive with 2 devices", sched)
	}
	for _, d := range sched.Devices {
		if d.BaseTC != int64(svTC) {
			t.Errorf("device %s base TC = %d, want %d", d.Addr, d.BaseTC, int64(svTC))
		}
	}

	e.RunUntil(svHorizon)
	mgr.Stop()
	mgr.Flush()
}

// A stream outlives request plumbing but not the manager: Close ends
// every open watch cleanly.
func TestWatchEndsOnManagerClose(t *testing.T) {
	e, mgr := newTestFleet(t)
	ts := httptest.NewServer(serve.NewMux(serve.Config{Manager: mgr}))
	defer ts.Close()

	c := openStream(t, ts.URL+"/watch/alerts")
	defer c.close()
	mgr.Start()
	e.RunUntil(svHorizon)
	mgr.Stop()
	mgr.Flush()
	n := len(mgr.Alerts())
	c.readLines(t, n)

	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-c.lines:
		if ok {
			t.Fatal("stream delivered a line after manager Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after manager Close")
	}

	// New watches are refused once the manager is gone.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/watch/alerts", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("watch on closed manager = %d, want 503", resp.StatusCode)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}
