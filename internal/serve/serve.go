// Package serve assembles the verifier's HTTP surface: the poll-style
// observability endpoints (/metrics, /statusz, /tracez, /eventz,
// /schedz), the liveness/readiness split (/livez, /readyz), and the
// resumable streaming API (/watch/alerts, /watch/events).
//
// The streaming endpoints speak line-delimited JSON. Every alert and
// event carries a monotone per-stream sequence number; a consumer
// remembers the last seq it processed and reconnects with ?since=<seq>
// to resume exactly where it left off — the backlog is replayed from
// retained history and the live feed continues from there, with
// duplicates suppressed at the seam. When history the consumer still
// needs has been irrecoverably trimmed (a MaxAlerts-bounded store, the
// event ring overwriting), the stream says so with an explicit gap
// marker line {"gap":true,"since":S,"next":N} rather than silently
// skipping: S is the cursor that can no longer be served, N the first
// sequence number still available (0 when nothing is retained yet). A
// slow consumer whose per-subscription buffer overflows is healed
// transparently from retained history and only sees a gap marker if the
// history is gone too.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"erasmus/internal/fleet"
	"erasmus/internal/obs"
)

// Config assembles one verifier's HTTP surface. Manager is required;
// everything else degrades gracefully when absent (an endpoint over a
// nil feed serves the empty document).
type Config struct {
	// Manager is the fleet whose alerts, schedule and health are served.
	Manager *fleet.Manager
	// Registry backs /metrics.
	Registry *obs.Registry
	// Tracer backs /tracez.
	Tracer *obs.Tracer
	// Events backs /eventz and /watch/events.
	Events *obs.EventLog
	// Status, when set, contributes the "config" section of /statusz
	// (typically the run configuration), re-evaluated per request.
	Status func() any
	// WatchBuffer sizes each watch subscription's channel (default 256).
	// Overflow never loses data — the handler heals from retained
	// history — it only costs the heal round trip.
	WatchBuffer int
}

// NewMux builds the full HTTP surface over cfg.
func NewMux(cfg Config) *http.ServeMux {
	mgr := cfg.Manager
	buf := cfg.WatchBuffer
	if buf <= 0 {
		buf = 256
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.MetricsHandler(cfg.Registry))

	// Liveness and readiness are different questions: /livez answers "is
	// the process serving HTTP" (always yes, by construction), /readyz
	// answers "is the verifier a trustworthy source of verdicts" — no
	// until durable state finished recovery (a sticky store/sink error
	// fails it) AND the first collection round of this run has applied,
	// so a scraper never reads a dashboard of all-healthy devices that
	// simply have not been collected yet. /healthz keeps its historical
	// durability-only meaning.
	mux.Handle("/livez", obs.JSONHandler(func() any {
		return map[string]any{"alive": true}
	}))
	mux.Handle("/readyz", obs.HealthHandler(func() (bool, any) {
		h := mgr.Health()
		ready := h.OK && mgr.Ready()
		return ready, map[string]any{"ready": ready, "health": h}
	}))
	mux.Handle("/healthz", obs.HealthHandler(func() (bool, any) {
		h := mgr.Health()
		return h.OK, h
	}))

	mux.Handle("/statusz", obs.JSONHandler(func() any {
		doc := map[string]any{
			"health":  mgr.Health(),
			"devices": mgr.Statuses(),
		}
		if cfg.Status != nil {
			doc["config"] = cfg.Status()
		}
		return doc
	}))
	mux.Handle("/schedz", obs.JSONHandler(func() any {
		return map[string]any{
			"adaptive": mgr.AdaptiveEnabled(),
			"devices":  mgr.Schedule(),
		}
	}))
	mux.Handle("/tracez", obs.TraceHandler(cfg.Tracer))
	mux.Handle("/eventz", obs.EventsHandler(cfg.Events))

	mux.Handle("/watch/alerts", watchHandler(cursorSource[fleet.StreamedAlert]{
		since: mgr.AlertsSince,
		watch: func(n int) *obs.Subscription[fleet.StreamedAlert] { return mgr.WatchAlerts(n) },
		seq:   func(sa fleet.StreamedAlert) uint64 { return sa.Seq },
	}, buf))
	mux.Handle("/watch/events", watchHandler(cursorSource[obs.Event]{
		since: cfg.Events.EventsSince,
		watch: func(n int) *obs.Subscription[obs.Event] { return cfg.Events.Watch(n) },
		seq:   func(ev obs.Event) uint64 { return ev.Seq },
	}, buf))

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// gapMarker is the explicit-discontinuity line of a watch stream.
type gapMarker struct {
	Gap bool `json:"gap"`
	// Since is the consumer's cursor that can no longer be served.
	Since uint64 `json:"since"`
	// Next is the first sequence number still retained (0: none yet).
	Next uint64 `json:"next,omitempty"`
}

// cursorSource abstracts a resumable feed: a backlog read keyed by
// sequence cursor and a live subscription, with seq extraction.
type cursorSource[T any] struct {
	since func(uint64) ([]T, bool)
	watch func(int) *obs.Subscription[T]
	seq   func(T) uint64
}

// watchHandler streams a cursorSource as line-delimited JSON. The
// protocol: replay the backlog after ?since (gap marker first if part of
// it is gone), then follow the live feed; any slow-consumer drop is
// healed by re-reading the backlog, with the seq cursor suppressing
// duplicates at every seam. The stream ends when the client disconnects
// or the feed closes.
func watchHandler[T any](src cursorSource[T], buf int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur, err := parseSince(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sub := src.watch(buf)
		if sub == nil {
			http.Error(w, "stream unavailable", http.StatusServiceUnavailable)
			return
		}
		defer sub.Cancel()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Cache-Control", "no-cache")
		fl, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)

		emit := func(v T) bool {
			if src.seq(v) <= cur {
				return true // already delivered (backlog/live seam)
			}
			if err := enc.Encode(v); err != nil {
				return false
			}
			cur = src.seq(v)
			return true
		}
		// markedAt dedupes gap markers: one per cursor position, so a
		// cursor stuck below a fully-trimmed history is not spammed.
		markedAt, marked := uint64(0), false
		backfill := func() bool {
			items, gap := src.since(cur)
			if gap && (!marked || markedAt != cur) {
				m := gapMarker{Gap: true, Since: cur}
				if len(items) > 0 {
					m.Next = src.seq(items[0])
				}
				if err := enc.Encode(m); err != nil {
					return false
				}
				marked, markedAt = true, cur
			}
			for _, v := range items {
				if !emit(v) {
					return false
				}
			}
			return true
		}

		if !backfill() {
			return
		}
		if fl != nil {
			fl.Flush()
		}
		ctx := r.Context()
		for {
			select {
			case <-ctx.Done():
				return
			case v, ok := <-sub.Ch():
				if !ok {
					return // feed closed (manager shutting down)
				}
				// A latched drop or a seq jump means the channel lost
				// items: heal from retained history before continuing.
				if sub.TakeGap() || src.seq(v) > cur+1 {
					if !backfill() {
						return
					}
				}
				if !emit(v) {
					return
				}
				if fl != nil {
					fl.Flush()
				}
			}
		}
	})
}

func parseSince(r *http.Request) (uint64, error) {
	raw := r.URL.Query().Get("since")
	if raw == "" {
		return 0, nil
	}
	since, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad since cursor %q: %v", raw, err)
	}
	return since, nil
}
