package popsim

import (
	"reflect"
	"strings"
	"testing"

	"erasmus/internal/core"
	"erasmus/internal/obs"
	"erasmus/internal/sim"
)

// obsEqConfig is the shared scenario: churn, loss, an infection wave and a
// durable state store, over the sim transport with delta collection — the
// full instrumented surface (fleet, verify, store, popsim gauges).
func obsEqConfig(stateDir string) ManagedConfig {
	return ManagedConfig{
		Population:       60,
		Seed:             7,
		QoA:              core.QoA{TM: 10 * sim.Minute, TC: 40 * sim.Minute},
		Duration:         3 * sim.Hour,
		IMX6Fraction:     0.25,
		Loss:             0.05,
		Latency:          10 * sim.Millisecond,
		LateJoinFraction: 0.2,
		Wave:             WaveConfig{Coverage: 0.3, Start: sim.Hour, Spread: 30 * sim.Minute},
		Delta:            true,
		StateDir:         stateDir,
	}
}

// Enabling the full observability stack on a managed population run — the
// registry families across fleet/verify/store/popsim, the collection
// tracer and the event log — must not change a single alert, verdict or
// delta round. This is the whole-stack version of the fleet-level
// equivalence test, and what makes `-metrics-addr` safe to turn on in
// production: instrumentation is a read-only tap.
func TestObservabilityEquivalence(t *testing.T) {
	plain, err := RunManaged(obsEqConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}

	cfg := obsEqConfig(t.TempDir())
	reg := obs.NewRegistry()
	cfg.Obs = reg
	cfg.Tracer = obs.NewTracer(4096)
	cfg.Events = obs.NewEventLog(1024)
	instrumented, err := RunManaged(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(plain.Alerts) == 0 || plain.InfectionsSeeded == 0 {
		t.Fatal("scenario degenerate: no alerts or no seeded infections")
	}
	if !reflect.DeepEqual(plain.Alerts, instrumented.Alerts) {
		t.Errorf("alert streams diverge:\nplain: %+v\nobs:   %+v", plain.Alerts, instrumented.Alerts)
	}
	if !reflect.DeepEqual(plain.AlertCounts, instrumented.AlertCounts) {
		t.Errorf("alert counts diverge: plain %v, obs %v", plain.AlertCounts, instrumented.AlertCounts)
	}
	if plain.DeltaRounds != instrumented.DeltaRounds {
		t.Errorf("delta rounds diverge: plain %d, obs %d", plain.DeltaRounds, instrumented.DeltaRounds)
	}
	if plain.HealthyCount != instrumented.HealthyCount ||
		plain.InfectionsDetected != instrumented.InfectionsDetected ||
		plain.FalseInfections != instrumented.FalseInfections {
		t.Errorf("outcomes diverge: plain %d/%d/%d, obs %d/%d/%d (healthy/detected/false)",
			plain.HealthyCount, plain.InfectionsDetected, plain.FalseInfections,
			instrumented.HealthyCount, instrumented.InfectionsDetected, instrumented.FalseInfections)
	}

	// The instrumented run must expose the key series with real samples —
	// the same assertions the CI smoke step makes against erasmus-serve.
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, series := range []string{
		"erasmus_verify_latency_seconds_bucket",
		"erasmus_fleet_queue_depth",
		"erasmus_fleet_collections_total",
		"erasmus_fleet_watermark_fallbacks_total",
		"erasmus_wal_appends_total",
		"erasmus_wal_fsync_seconds_bucket",
		"erasmus_popsim_devices",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing %s", series)
		}
	}
	if n := reg.Counter("erasmus_wal_appends_total", "").Value(); n == 0 {
		t.Error("erasmus_wal_appends_total is zero with a state store configured")
	}
	if cfg.Tracer.Total() == 0 {
		t.Error("tracer recorded no spans")
	}
	if cfg.Events.Total() == 0 {
		t.Error("event log recorded no events")
	}

	// A managed run over the sim transport with delta must have tallied
	// genuinely incremental rounds on the mode="delta" latency shards.
	if instrumented.DeltaRounds == 0 {
		t.Error("no delta rounds; the incremental path was never observed")
	}
}
