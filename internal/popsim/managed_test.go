package popsim

import (
	"testing"

	"erasmus/internal/core"
	"erasmus/internal/fleet"
	"erasmus/internal/sim"
)

// A fleet-managed population with churn, loss and an infection wave: every
// seeded infection is detected, and — the warm-up regression at population
// scale — devices joining mid-run never produce false tamper alerts while
// their buffers fill.
func TestManagedPopulationSim(t *testing.T) {
	res, err := RunManaged(ManagedConfig{
		Population:       150,
		Seed:             11,
		QoA:              core.QoA{TM: 10 * sim.Minute, TC: 40 * sim.Minute},
		Duration:         4 * sim.Hour,
		IMX6Fraction:     0.25,
		Loss:             0.05,
		Latency:          10 * sim.Millisecond,
		LateJoinFraction: 0.2,
		Wave:             WaveConfig{Coverage: 0.3, Start: sim.Hour, Spread: 30 * sim.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LateJoiners == 0 || res.InfectionsSeeded == 0 {
		t.Fatalf("scenario degenerate: %d late joiners, %d infections", res.LateJoiners, res.InfectionsSeeded)
	}
	if res.InfectionsDetected != res.InfectionsSeeded {
		t.Errorf("detected %d of %d persistent infections", res.InfectionsDetected, res.InfectionsSeeded)
	}
	if res.FalseInfections != 0 {
		t.Errorf("%d clean devices flagged infected", res.FalseInfections)
	}
	if n := res.AlertCounts[fleet.AlertTamper]; n != 0 {
		t.Errorf("%d false tamper alerts (warm-up / loss handling regression)", n)
	}
	if res.HealthyCount < res.Devices-res.InfectionsSeeded {
		t.Errorf("healthy %d/%d with only %d infected", res.HealthyCount, res.Devices, res.InfectionsSeeded)
	}
}

// The same scenario shape over real loopback UDP (wall-paced, so small):
// collections demux over one socket, verdicts flow through the async
// pipeline, and no clock-drift false tampers appear.
func TestManagedPopulationUDP(t *testing.T) {
	res, err := RunManaged(ManagedConfig{
		Population:       8,
		Transport:        "udp",
		Seed:             5,
		QoA:              core.QoA{TM: 100 * sim.Millisecond, TC: 400 * sim.Millisecond},
		Duration:         1500 * sim.Millisecond,
		IMX6Fraction:     1, // µs-scale measurements keep ms-scale TM feasible
		LateJoinFraction: 0.25,
		Wave:             WaveConfig{Coverage: 0.5, Start: 300 * sim.Millisecond, Spread: 200 * sim.Millisecond},
		UDPPool:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InfectionsSeeded == 0 {
		t.Fatal("scenario degenerate: no infections seeded")
	}
	if res.InfectionsDetected != res.InfectionsSeeded {
		t.Errorf("detected %d of %d persistent infections", res.InfectionsDetected, res.InfectionsSeeded)
	}
	if res.FalseInfections != 0 {
		t.Errorf("%d clean devices flagged infected", res.FalseInfections)
	}
	if n := res.AlertCounts[fleet.AlertTamper]; n != 0 {
		t.Errorf("%d false tamper alerts over UDP (clock drift regression): %+v", n, res.Alerts)
	}
	if n := res.AlertCounts[fleet.AlertUnreachable]; n != 0 {
		t.Errorf("%d unreachable alerts on loopback", n)
	}
}

// PR 3 documented a caveat instead of a fix: Delta with the async
// pipeline on the virtual-time sim transport silently fell back to a full
// collection every round (the engine outruns verdict application), so
// nothing was ever verified incrementally. The managed runner now forces
// synchronous verification for virtual-time engines; this is the
// regression test that the incremental path genuinely engages without the
// caller opting into Synchronous themselves.
func TestDeltaAutoSynchronousSim(t *testing.T) {
	res, err := RunManaged(ManagedConfig{
		Population: 40,
		Seed:       7,
		QoA:        core.QoA{TM: 10 * sim.Minute, TC: 40 * sim.Minute},
		Duration:   4 * sim.Hour,
		Delta:      true,
		// Synchronous deliberately left false: the runner must force it.
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Config.Synchronous {
		t.Error("sim transport with Delta did not force synchronous verification")
	}
	if res.DeltaRounds == 0 {
		t.Error("no round verified incrementally; the virtual-time delta fallback bug is back")
	}
	// The wall-paced udp transport must NOT be forced synchronous: real
	// time gives the async pipeline room, and delta rounds still engage.
	udp, err := RunManaged(ManagedConfig{
		Population:   6,
		Transport:    "udp",
		Seed:         7,
		QoA:          core.QoA{TM: 100 * sim.Millisecond, TC: 400 * sim.Millisecond},
		Duration:     1500 * sim.Millisecond,
		IMX6Fraction: 1,
		Delta:        true,
		UDPPool:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if udp.Config.Synchronous {
		t.Error("udp transport was forced synchronous; the fix should only cover virtual-time engines")
	}
	if udp.DeltaRounds == 0 {
		t.Error("udp delta run never verified incrementally")
	}
}

// A managed run with StateDir journals verifier state and compacts it
// into a snapshot; a second run over the same directory recovers it.
func TestManagedStateDir(t *testing.T) {
	dir := t.TempDir()
	run := func() *ManagedResult {
		res, err := RunManaged(ManagedConfig{
			Population: 30,
			Seed:       3,
			QoA:        core.QoA{TM: 10 * sim.Minute, TC: 40 * sim.Minute},
			Duration:   3 * sim.Hour,
			Delta:      true,
			StateDir:   dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	if first.Recovery == nil || first.StoreStats == nil {
		t.Fatalf("StateDir run reported no store info: %+v", first)
	}
	if first.Recovery.SnapshotSeq != 0 || first.Recovery.RecordsReplayed != 0 {
		t.Errorf("fresh directory recovered state: %+v", *first.Recovery)
	}
	if first.StoreStats.Devices != 30 {
		t.Errorf("snapshot tracks %d devices, want 30", first.StoreStats.Devices)
	}
	if first.StoreStats.Watermarked == 0 {
		t.Error("no watermarks persisted from a delta run")
	}
	second := run()
	if second.Recovery.SnapshotSeq == 0 || second.Recovery.SnapshotDevices != 30 {
		t.Errorf("second run did not recover the first run's snapshot: %+v", *second.Recovery)
	}
}

func TestManagedConfigValidation(t *testing.T) {
	if _, err := RunManaged(ManagedConfig{}); err == nil {
		t.Error("zero population accepted")
	}
	if _, err := RunManaged(ManagedConfig{Population: 1, Transport: "carrier-pigeon"}); err == nil {
		t.Error("unknown transport accepted")
	}
	if _, err := RunManaged(ManagedConfig{Population: 1, Transport: "udp", Loss: 0.5}); err == nil {
		t.Error("udp transport with loss accepted")
	}
}

// Delta collection at population scale: the same seeded lossy scenario —
// churn, wave, 5% datagram loss — must produce the identical alert stream
// with incremental verification as with stateless full re-verification.
// Inline verification keeps the virtual-time run deterministic (the async
// pipeline's watermarks would lag the instantly-advancing clock and every
// round would fall back to full collection — equivalent, but vacuous).
func TestManagedPopulationDeltaEquivalence(t *testing.T) {
	run := func(delta bool) *ManagedResult {
		res, err := RunManaged(ManagedConfig{
			Population:       80,
			Seed:             23,
			QoA:              core.QoA{TM: 10 * sim.Minute, TC: 40 * sim.Minute},
			Duration:         4 * sim.Hour,
			IMX6Fraction:     0.25,
			Loss:             0.05,
			Latency:          10 * sim.Millisecond,
			LateJoinFraction: 0.2,
			Wave:             WaveConfig{Coverage: 0.3, Start: sim.Hour, Spread: 30 * sim.Minute},
			Synchronous:      true,
			Delta:            delta,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(false)
	incr := run(true)
	if full.InfectionsSeeded == 0 {
		t.Fatal("scenario degenerate: no infections seeded")
	}
	if len(full.Alerts) != len(incr.Alerts) {
		t.Fatalf("alert counts diverge: full %d, delta %d", len(full.Alerts), len(incr.Alerts))
	}
	for i := range full.Alerts {
		if full.Alerts[i] != incr.Alerts[i] {
			t.Fatalf("alert %d diverges:\nfull:  %+v\ndelta: %+v", i, full.Alerts[i], incr.Alerts[i])
		}
	}
	if full.HealthyCount != incr.HealthyCount ||
		full.InfectionsDetected != incr.InfectionsDetected ||
		full.FalseInfections != incr.FalseInfections {
		t.Fatalf("end states diverge:\nfull:  %+v\ndelta: %+v", full, incr)
	}
}
