package popsim

import (
	"testing"

	"erasmus/internal/core"
	"erasmus/internal/sim"
)

// testConfig is a small but fully-featured scenario: mixed architectures,
// churn in both directions, a lossy network and a persistent wave.
func testConfig(population, shards int) Config {
	return Config{
		Population:   population,
		Shards:       shards,
		Seed:         7,
		QoA:          core.QoA{TM: sim.Minute, TC: 4 * sim.Minute},
		Duration:     24 * sim.Minute,
		IMX6Fraction: 0.3,
		Loss:         0.05,
		Churn: ChurnConfig{
			LateJoinFraction: 0.2,
			RetireFraction:   0.15,
		},
		Wave: WaveConfig{
			Coverage: 0.3,
			Start:    6 * sim.Minute,
			Spread:   5 * sim.Minute,
		},
		VerifyWorkers: 2,
	}
}

// TestShardCountInvariance is the subsystem's core guarantee: the same
// seed yields bit-identical aggregate statistics no matter how the
// population is sharded.
func TestShardCountInvariance(t *testing.T) {
	base, err := Run(testConfig(240, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 4, 7} {
		res, err := Run(testConfig(240, shards))
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats != base.Stats {
			t.Errorf("shards=%d: aggregate stats diverge from shards=1\n got: %+v\nwant: %+v",
				shards, res.Stats, base.Stats)
		}
		if len(res.Shards) != shards {
			t.Errorf("shards=%d: got %d shard reports", shards, len(res.Shards))
		}
	}
}

// TestDeterminism: same config, same seed, repeated runs agree; a
// different seed produces a different population timeline.
func TestDeterminism(t *testing.T) {
	a, err := Run(testConfig(120, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(120, 3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Fatal("repeated runs with identical config diverge")
	}
	cfg := testConfig(120, 3)
	cfg.Seed = 8
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats == a.Stats {
		t.Fatal("different seeds produced identical statistics (suspicious)")
	}
}

// TestPersistentWaveDetection: with a lossless network, every persistent
// infection is caught, and never faster than physics allows nor later than
// the §3.1 bound (TM to next measurement + TC to next collection) plus the
// warm-up/churn slack of one extra collection period.
func TestPersistentWaveDetection(t *testing.T) {
	cfg := testConfig(150, 4)
	cfg.Loss = 0
	cfg.Churn = ChurnConfig{} // every device online for the whole run
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.InfectionsSeeded == 0 {
		t.Fatal("wave seeded no infections")
	}
	if st.InfectionsDetected != st.InfectionsSeeded {
		t.Fatalf("detected %d of %d persistent infections", st.InfectionsDetected, st.InfectionsSeeded)
	}
	bound := cfg.QoA.MaxDetectionDelay() + cfg.QoA.TC
	if st.DetectionLatencyMax > bound {
		t.Errorf("max detection latency %v exceeds bound %v", st.DetectionLatencyMax, bound)
	}
	if st.FirstDetectionAt < cfg.Wave.Start {
		t.Errorf("first detection %v precedes the wave start %v", st.FirstDetectionAt, cfg.Wave.Start)
	}
}

// TestTransientWaveLeavesEvidence: malware that dwells longer than TM is
// always measured, and the record it leaves behind is collected and
// detected even though the malware has covered its tracks by then.
func TestTransientWaveLeavesEvidence(t *testing.T) {
	cfg := testConfig(120, 3)
	cfg.Loss = 0
	cfg.Churn = ChurnConfig{}
	cfg.Wave.Dwell = cfg.QoA.TM + cfg.QoA.TM/2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.InfectionsSeeded == 0 {
		t.Fatal("wave seeded no infections")
	}
	if st.InfectionsDetected != st.InfectionsSeeded {
		t.Fatalf("transient malware with dwell > TM must always be caught: %d of %d",
			st.InfectionsDetected, st.InfectionsSeeded)
	}
}

// TestAccounting sanity-checks the aggregate bookkeeping on a churny run.
func TestAccounting(t *testing.T) {
	cfg := testConfig(200, 3)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Devices != cfg.Population {
		t.Errorf("Devices = %d, want %d", st.Devices, cfg.Population)
	}
	if st.MSP430Devices+st.IMX6Devices != cfg.Population {
		t.Errorf("arch mix %d+%d does not cover the population", st.MSP430Devices, st.IMX6Devices)
	}
	if st.MSP430Devices == 0 || st.IMX6Devices == 0 {
		t.Errorf("expected a heterogeneous mix, got %d MSP430 / %d i.MX6",
			st.MSP430Devices, st.IMX6Devices)
	}
	if st.LateJoiners == 0 || st.Retirements == 0 {
		t.Errorf("churn produced no membership change: %d joiners, %d retirements",
			st.LateJoiners, st.Retirements)
	}
	if st.Measurements == 0 || st.Collections == 0 || st.HistoriesVerified == 0 {
		t.Errorf("population did not run: %+v", st)
	}
	if st.LostCollections == 0 {
		t.Error("5% loss produced no lost collections")
	}
	if got := st.HistoriesVerified + st.LostCollections + st.EmptyCollections; got != st.Collections {
		t.Errorf("collections %d != verified %d + lost %d + empty %d",
			st.Collections, st.HistoriesVerified, st.LostCollections, st.EmptyCollections)
	}
	// Mean freshness should sit near the §3.1 prediction of TM/2.
	mean := st.MeanFreshness()
	if mean < cfg.QoA.TM/4 || mean > 3*cfg.QoA.TM/4 {
		t.Errorf("mean freshness %v far from TM/2 = %v", mean, cfg.QoA.TM/2)
	}
	if res.Batches == 0 {
		t.Error("no batches went through the batch verifier")
	}
	sumDev := 0
	for _, sr := range res.Shards {
		sumDev += sr.Devices
	}
	if sumDev != cfg.Population {
		t.Errorf("shard device counts sum to %d, want %d", sumDev, cfg.Population)
	}
}

// TestConfigValidation exercises the error paths.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                                 // no population
		{Population: 10, Loss: 1.5},        // loss out of range
		{Population: 10, IMX6Fraction: -1}, // fraction out of range
		{Population: 10, Wave: WaveConfig{Coverage: 2}},
		{Population: 10, Churn: ChurnConfig{LateJoinFraction: 2}},
		{Population: 10, MSP430Memory: 8}, // too small for the implant
		{Population: 10, Duration: 10 * sim.Minute, // churn windows beyond the horizon
			Churn: ChurnConfig{LateJoinFraction: 0.1, JoinWindow: 11 * sim.Minute}},
		{Population: 10, Duration: 10 * sim.Minute,
			Churn: ChurnConfig{RetireFraction: 0.1, RetireAfter: 10 * sim.Minute}},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d: expected an error", i)
		}
	}
}
