package popsim

import "erasmus/internal/sim"

// rng is a splitmix64 generator. Population runs hold one per device (plan
// draws) plus one per device for the loss stream; at 10⁵–10⁶ devices the
// 8-byte state matters — math/rand's default source is ~5 KB per instance.
//
// Every stream is derived from (seed, device id, stream tag), never from
// the shard, so a device's entire random timeline is identical no matter
// how the population is partitioned. That is what makes aggregate results
// shard-count invariant (and testable as such).
type rng struct{ state uint64 }

// Stream tags keep a device's independent randomness sources (scenario
// plan, per-collection loss draws, key material) from aliasing.
const (
	streamPlan uint64 = iota + 1
	streamLoss
	streamKey
)

// deviceRNG derives the generator for one device and stream tag.
func deviceRNG(seed int64, id int, stream uint64) rng {
	r := rng{state: uint64(seed) ^ (uint64(id)+1)*0x9e3779b97f4a7c15 ^ stream*0xbf58476d1ce4e5b9}
	r.next() // decorrelate nearby ids
	return r
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// ticksn returns a uniform duration in [0, n); n ≤ 0 yields 0. The modulo
// bias is immaterial for scenario placement.
func (r *rng) ticksn(n sim.Ticks) sim.Ticks {
	if n <= 0 {
		return 0
	}
	return sim.Ticks(r.next() % uint64(n))
}

// deviceKey derives the device-unique 16-byte secret K provisioned at
// manufacture (simulation stand-in for a provisioning PKI).
func deviceKey(seed int64, id int) []byte {
	r := deviceRNG(seed, id, streamKey)
	key := make([]byte, 16)
	for i := 0; i < len(key); i += 8 {
		v := r.next()
		for j := 0; j < 8; j++ {
			key[i+j] = byte(v >> (8 * j))
		}
	}
	return key
}
