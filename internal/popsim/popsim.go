// Package popsim scales ERASMUS to verifier-side population sizes the
// single-engine harnesses cannot touch: 10⁵–10⁶ unattended provers under
// one logical verifier (the §6 swarm setting taken to fleet scale).
//
// The design exploits the property the paper engineers for — provers are
// temporally decoupled from the verifier and from each other — so the
// population is partitioned across N independent sim.Engine shards, each
// advanced in its own goroutine. A coordinator drives all shards through
// the same sequence of virtual-time epochs with a barrier at every epoch
// boundary; at each barrier the histories collected during the epoch are
// validated through a core.BatchVerifier worker pool. Wall-clock therefore
// scales with cores while virtual time stays globally coherent.
//
// Scenarios are generated per device from (seed, device id) alone — never
// from the shard — so the same seed yields bit-identical aggregate Stats
// for any shard count: sharding is a performance knob, not a semantic one.
package popsim

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/sim"
)

// implant is the byte pattern wave malware writes into attested memory.
var implant = []byte("\xde\xad\xbe\xef popsim wave implant \xde\xad\xbe\xef")

// ChurnConfig models fleet membership change: a fraction of the
// population comes online only part-way through the run, and another
// fraction is decommissioned before the horizon.
type ChurnConfig struct {
	// LateJoinFraction of devices join at a uniform time in (0, JoinWindow].
	LateJoinFraction float64
	// JoinWindow bounds late-join times; default Duration/2.
	JoinWindow sim.Ticks
	// RetireFraction of devices retire at a uniform time in
	// [RetireAfter, Duration).
	RetireFraction float64
	// RetireAfter is the earliest retirement; default Duration/2.
	RetireAfter sim.Ticks
}

// WaveConfig models an infection wave sweeping the population: each
// covered device is compromised at a uniform time in [Start, Start+Spread).
type WaveConfig struct {
	// Coverage is the fraction of devices the wave reaches; 0 disables it.
	Coverage float64
	// Start is when the wave begins; default Duration/4.
	Start sim.Ticks
	// Spread is the window over which infections land; default TM.
	Spread sim.Ticks
	// Dwell is how long the malware stays before covering its tracks;
	// 0 means persistent until remediated on detection. ERASMUS's pitch is
	// that even Dwell > 0 visits leave collectible evidence behind.
	Dwell sim.Ticks
}

// Config parameterizes a population run.
type Config struct {
	// Population is the number of prover devices. Required.
	Population int
	// Shards partitions the population across independent engines;
	// default GOMAXPROCS, capped at Population.
	Shards int
	// Seed drives every per-device random draw.
	Seed int64
	// Alg is the measurement MAC (default keyed BLAKE2s).
	Alg mac.Algorithm
	// QoA sets TM/TC for every device (default TM=10m, TC=4×TM).
	QoA core.QoA
	// Slots is the per-device buffer size (default minimum + 2).
	Slots int
	// Duration is the simulated horizon (default 6×TC).
	Duration sim.Ticks
	// Step is the barrier epoch length; queued histories are batch-
	// verified at each boundary (default TC, clamped to Duration).
	Step sim.Ticks
	// IMX6Fraction of devices are i.MX6-class (HYDRA); the rest are
	// MSP430-class (SMART+).
	IMX6Fraction float64
	// MSP430Memory / IMX6Memory are the attested image sizes in bytes
	// (defaults 256 and 1024 — small enough that a million devices fit in
	// host memory while all cryptography stays real).
	MSP430Memory, IMX6Memory int
	// Loss is the probability a collection response is lost in [0, 1).
	Loss float64
	// Churn and Wave configure the scenario generators.
	Churn ChurnConfig
	Wave  WaveConfig
	// VerifyWorkers sizes the batch-verification pool (default GOMAXPROCS).
	VerifyWorkers int
	// MACCacheSize enables each device verifier's MAC cache (0 disables;
	// useful when k exceeds the records produced per TC).
	MACCacheSize int
}

func (c *Config) fillDefaults() error {
	if c.Population <= 0 {
		return errors.New("popsim: Population must be positive")
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards > c.Population {
		c.Shards = c.Population
	}
	if !c.Alg.Valid() {
		c.Alg = mac.KeyedBLAKE2s
	}
	if c.QoA.TM <= 0 {
		c.QoA.TM = 10 * sim.Minute
	}
	if c.QoA.TC <= 0 {
		c.QoA.TC = 4 * c.QoA.TM
	}
	if err := c.QoA.Validate(); err != nil {
		return err
	}
	if c.Slots <= 0 {
		c.Slots = c.QoA.MinBufferSlots() + 2
	}
	if c.Duration <= 0 {
		c.Duration = 6 * c.QoA.TC
	}
	if c.Duration < c.QoA.TC {
		return fmt.Errorf("popsim: duration %v shorter than one collection period %v", c.Duration, c.QoA.TC)
	}
	if c.Step <= 0 {
		c.Step = c.QoA.TC
	}
	if c.Step > c.Duration {
		c.Step = c.Duration
	}
	if c.MSP430Memory <= 0 {
		c.MSP430Memory = 256
	}
	if c.IMX6Memory <= 0 {
		c.IMX6Memory = 1024
	}
	if min := len(implant); c.MSP430Memory < min || c.IMX6Memory < min {
		return fmt.Errorf("popsim: attested memory must hold at least %d bytes", min)
	}
	if c.IMX6Fraction < 0 || c.IMX6Fraction > 1 {
		return fmt.Errorf("popsim: IMX6Fraction %v outside [0,1]", c.IMX6Fraction)
	}
	if c.Loss < 0 || c.Loss >= 1 {
		return fmt.Errorf("popsim: Loss %v outside [0,1)", c.Loss)
	}
	if f := c.Churn.LateJoinFraction; f < 0 || f > 1 {
		return fmt.Errorf("popsim: LateJoinFraction %v outside [0,1]", f)
	}
	if f := c.Churn.RetireFraction; f < 0 || f > 1 {
		return fmt.Errorf("popsim: RetireFraction %v outside [0,1]", f)
	}
	if c.Churn.JoinWindow <= 0 {
		c.Churn.JoinWindow = c.Duration / 2
	}
	if c.Churn.JoinWindow > c.Duration {
		return fmt.Errorf("popsim: JoinWindow %v beyond the horizon %v", c.Churn.JoinWindow, c.Duration)
	}
	if c.Churn.RetireAfter <= 0 {
		c.Churn.RetireAfter = c.Duration / 2
	}
	if c.Churn.RetireFraction > 0 && c.Churn.RetireAfter >= c.Duration {
		return fmt.Errorf("popsim: RetireAfter %v not before the horizon %v", c.Churn.RetireAfter, c.Duration)
	}
	if f := c.Wave.Coverage; f < 0 || f > 1 {
		return fmt.Errorf("popsim: wave Coverage %v outside [0,1]", f)
	}
	if c.Wave.Coverage > 0 {
		if c.Wave.Start <= 0 {
			c.Wave.Start = c.Duration / 4
		}
		if c.Wave.Spread <= 0 {
			c.Wave.Spread = c.QoA.TM
		}
	}
	if c.VerifyWorkers <= 0 {
		c.VerifyWorkers = runtime.GOMAXPROCS(0)
	}
	return nil
}

// devicePlan is one device's pre-drawn timeline: everything random about
// the device, derived from (seed, id) only.
type devicePlan struct {
	id     int
	imx6   bool
	mphase sim.Ticks // measurement phase in [0, TM)
	cphase sim.Ticks // collection phase in [0, TC)
	join   sim.Ticks // 0 for the initial population
	retire sim.Ticks // sim.MaxTicks when the device never retires
	infect sim.Ticks // -1 when the wave misses this device
	dwell  sim.Ticks
}

// planDevice draws one device's plan. The draw sequence is fixed, so a
// given (seed, id, config) always yields the same plan.
func planDevice(cfg *Config, id int) devicePlan {
	r := deviceRNG(cfg.Seed, id, streamPlan)
	p := devicePlan{id: id, retire: sim.MaxTicks, infect: -1}
	p.imx6 = r.float64() < cfg.IMX6Fraction
	p.mphase = r.ticksn(cfg.QoA.TM)
	p.cphase = r.ticksn(cfg.QoA.TC)
	if r.float64() < cfg.Churn.LateJoinFraction {
		p.join = 1 + r.ticksn(cfg.Churn.JoinWindow)
	}
	if r.float64() < cfg.Churn.RetireFraction {
		window := cfg.Duration - cfg.Churn.RetireAfter
		p.retire = cfg.Churn.RetireAfter + r.ticksn(window)
		if p.retire <= p.join {
			// Joined inside its own retirement window: keep it alive.
			p.retire = sim.MaxTicks
		}
	}
	if cfg.Wave.Coverage > 0 && r.float64() < cfg.Wave.Coverage {
		at := cfg.Wave.Start + r.ticksn(cfg.Wave.Spread)
		// The wave only compromises devices that are online when it hits.
		if at >= p.join && at < p.retire && at < cfg.Duration {
			p.infect = at
			p.dwell = cfg.Wave.Dwell
		}
	}
	return p
}

// ShardReport is one shard's contribution to a run, for throughput
// accounting.
type ShardReport struct {
	Shard       int
	Devices     int
	EventsFired uint64
	// Wall is time spent advancing this shard's engine (excludes the
	// barrier waits and batch verification).
	Wall time.Duration
}

// Result aggregates one population run.
type Result struct {
	Config Config
	Stats  Stats
	Shards []ShardReport
	// Batches is how many barrier flushes went through the batch verifier.
	Batches int
	// BuildWall, RunWall and VerifyWall split the real time spent
	// constructing the population, advancing engines, and batch-verifying.
	BuildWall, RunWall, VerifyWall time.Duration
}

// DeviceSecondsPerSecond is the headline throughput metric: simulated
// device-seconds advanced per wall-clock second of engine time.
func (r Result) DeviceSecondsPerSecond() float64 {
	wall := r.RunWall.Seconds()
	if wall <= 0 {
		return 0
	}
	return float64(r.Stats.Devices) * r.Config.Duration.Seconds() / wall
}

// Run executes the population scenario.
//
//erasmus:wallpaced Build/Run/VerifyWall result fields time real work; the scenario itself runs on virtual time
func Run(cfg Config) (*Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	res := &Result{Config: cfg}

	// Partition devices round-robin: shard assignment is presentation
	// only — every per-device draw keys off the device id.
	shards := make([]*shard, cfg.Shards)
	for i := range shards {
		shards[i] = newShard(i, &cfg)
	}
	for id := 0; id < cfg.Population; id++ {
		sh := shards[id%cfg.Shards]
		sh.plans = append(sh.plans, planDevice(&cfg, id))
	}

	// Build each shard's devices in parallel.
	start := time.Now()
	errc := make(chan error, len(shards))
	for _, sh := range shards {
		go func(sh *shard) { errc <- sh.build() }(sh)
	}
	for range shards {
		if err := <-errc; err != nil {
			return nil, err
		}
	}
	res.BuildWall = time.Since(start)

	// Advance all shards epoch by epoch with a barrier at each boundary,
	// batch-verifying the histories queued during the epoch.
	for _, sh := range shards {
		go sh.run()
	}
	bv := core.NewBatchVerifier(cfg.VerifyWorkers)
	runStart := time.Now()
	for t := cfg.Step; ; t += cfg.Step {
		if t > cfg.Duration {
			t = cfg.Duration
		}
		for _, sh := range shards {
			sh.cmd <- t
		}
		for _, sh := range shards {
			<-sh.done
		}
		vStart := time.Now()
		flushVerify(shards, bv, res)
		res.VerifyWall += time.Since(vStart)
		if t == cfg.Duration {
			break
		}
	}
	for _, sh := range shards {
		close(sh.cmd)
	}
	res.RunWall = time.Since(runStart)

	// Fold prover runtime counters and merge shard aggregates in shard
	// order (the order is cosmetic: every fold commutes).
	res.Stats = newStats()
	for _, sh := range shards {
		sh.finish()
		res.Stats.merge(&sh.stats)
		res.Shards = append(res.Shards, ShardReport{
			Shard:       sh.id,
			Devices:     len(sh.devices),
			EventsFired: sh.engine.Fired(),
			Wall:        sh.wall,
		})
	}
	return res, nil
}

// flushVerify drains every shard's pending histories through the batch
// verifier and folds the reports back into the owning shard's aggregates.
func flushVerify(shards []*shard, bv *core.BatchVerifier, res *Result) {
	var jobs []core.VerifyJob
	for _, sh := range shards {
		for i := range sh.queue {
			q := &sh.queue[i]
			jobs = append(jobs, core.VerifyJob{
				Verifier: q.dev.vrf, Records: q.recs,
				Now: q.rroc, ExpectedK: q.expectedK,
			})
		}
	}
	if len(jobs) == 0 {
		return
	}
	reports := bv.Verify(jobs)
	res.Batches++
	idx := 0
	for _, sh := range shards {
		for i := range sh.queue {
			sh.fold(&sh.queue[i], &reports[idx])
			idx++
		}
		sh.queue = sh.queue[:0]
	}
}
