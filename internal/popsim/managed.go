package popsim

import (
	"errors"
	"fmt"
	"time"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/fleet"
	"erasmus/internal/hw/imx6"
	"erasmus/internal/hw/mcu"
	"erasmus/internal/netsim"
	"erasmus/internal/obs"
	"erasmus/internal/session"
	"erasmus/internal/sim"
	"erasmus/internal/store"
	"erasmus/internal/udptransport"
)

// verifierEpoch anchors the manager's clock to the device RROC epoch
// (identical for both device models).
const verifierEpoch = mcu.DefaultEpoch

// ManagedConfig parameterizes a fleet-managed population run: the same
// seeded per-device scenario generation as the sharded runtime, but driven
// end-to-end through fleet.Manager — staggered collection scheduling over
// a pluggable transport, the bounded asynchronous verification pipeline,
// and the alert stream.
type ManagedConfig struct {
	// Population is the number of prover devices. Required.
	Population int
	// Transport selects the collection path: "sim" (default, the
	// in-process simulated network — virtual time, instant) or "udp"
	// (real loopback sockets — wall-paced, so keep QoA and Duration in
	// the milliseconds-to-seconds range).
	Transport string
	// Seed drives every per-device random draw.
	Seed int64
	// Alg is the measurement MAC (default keyed BLAKE2s).
	Alg mac.Algorithm
	// QoA sets TM/TC for every device (default TM=10m, TC=4×TM).
	QoA core.QoA
	// Slots is the per-device buffer size (default minimum + 2).
	Slots int
	// Duration is the simulated horizon (default 6×TC).
	Duration sim.Ticks
	// IMX6Fraction of devices are i.MX6-class; the rest are MSP430-class.
	IMX6Fraction float64
	// MSP430Memory / IMX6Memory are attested image sizes in bytes.
	MSP430Memory, IMX6Memory int
	// Loss is the datagram loss probability of the simulated network
	// ("sim" transport only; real loopback sockets do not lose packets).
	Loss float64
	// Latency is the one-way delivery delay of the simulated network.
	Latency sim.Ticks
	// LateJoinFraction of devices register with the manager (and boot)
	// only part-way through the run, exercising warm-up leniency.
	LateJoinFraction float64
	// JoinWindow bounds late-join times; default Duration/2.
	JoinWindow sim.Ticks
	// Wave configures the infection wave.
	Wave WaveConfig
	// VerifyWorkers / QueueDepth size the manager's verification pipeline.
	VerifyWorkers, QueueDepth int
	// UnreachableAfter is the manager's consecutive-failure threshold.
	UnreachableAfter int
	// Synchronous verifies inline instead of through the pipeline.
	Synchronous bool
	// AdaptiveSchedule turns on the manager's per-device TC controller:
	// collection periods tighten on aging/withheld evidence and transport
	// failures, relax on sustained freshness and verifier backpressure,
	// clamped to [TC/2, 2·TC] (see fleet.ManagerConfig.AdaptiveSchedule).
	// Off by default: the base schedule stays bit-identical to prior runs.
	AdaptiveSchedule bool
	// Delta enables incremental collection: the manager keeps per-device
	// watermarks and fetches + verifies only the records measured since
	// the previous round (see fleet.ManagerConfig.Delta).
	//
	// On the virtual-time "sim" transport, Delta forces Synchronous: an
	// async delta round needs the previous verdict applied before the
	// next launch, and a virtual-time engine outruns the pipeline, so
	// every round would silently fall back to a full collection —
	// verdict-identical but never incremental. Wall-paced transports
	// ("udp") keep the async pipeline: real time gives verdicts room to
	// land between rounds.
	Delta bool
	// Aggregate enables the O(1) aggregate tier on top of Delta (which it
	// implies): incremental rounds carry the prover's chain head under one
	// MAC and the verifier re-walks the chain hash-only instead of
	// recomputing per-record MACs (see fleet.ManagerConfig.Aggregate).
	// Verdicts and alerts are identical to Delta mode by construction. On
	// the "sim" transport it forces Synchronous for the same reason Delta
	// does.
	Aggregate bool
	// UDPPool is the socket-pool size of the UDP collector (default 8).
	UDPPool int
	// StateDir, when non-empty, makes the manager's verifier state
	// durable: watermarks, per-device status and alerts are journaled to
	// a store.Store write-ahead log in that directory, compacted into a
	// snapshot when the run completes. A run over a directory holding
	// previous state recovers it first (ManagedResult.Recovery).
	StateDir string
	// Obs, when set, registers every metric family the run touches —
	// fleet scheduling, per-shard verification latency, the durable store
	// (StateDir runs) and population gauges — on the registry. Tracer
	// records one span per applied collection; Events receives structured
	// operational events (alerts, configuration decisions). All three are
	// optional and inert when nil, and enabling them never changes alerts
	// or verdicts (enforced by TestObservabilityEquivalence).
	Obs    *obs.Registry
	Tracer *obs.Tracer
	Events *obs.EventLog
}

// ManagedResult aggregates one fleet-managed run.
type ManagedResult struct {
	Config ManagedConfig
	// Alerts is the manager's full alert stream.
	Alerts []fleet.Alert
	// AlertCounts tallies the stream by kind.
	AlertCounts map[fleet.AlertKind]int
	// Devices, LateJoiners and InfectionsSeeded describe the scenario;
	// InfectionsDetected counts seeded devices with at least one
	// infection alert, FalseInfections counts clean devices alerted.
	Devices, LateJoiners int
	InfectionsSeeded     int
	InfectionsDetected   int
	FalseInfections      int
	HealthyCount         int
	// DeltaRounds counts collections that genuinely verified
	// incrementally (Report.DeltaApplied); always 0 without Delta.
	DeltaRounds int
	// AggregateRounds counts collections the aggregate tier accepted
	// (Report.AggregateApplied); AggregateFallbacks counts rounds whose
	// evidence was present but whose verdict came from the per-record
	// audit tier. Both are 0 without Aggregate.
	AggregateRounds, AggregateFallbacks int
	// Recovery and StoreStats describe the durable state store when
	// StateDir is set: what opening the directory recovered, and the
	// store's footprint after the end-of-run snapshot.
	Recovery           *store.RecoveryInfo
	StoreStats         *store.Stats
	BuildWall, RunWall time.Duration
}

func (c *ManagedConfig) fill() (*Config, error) {
	switch c.Transport {
	case "":
		c.Transport = "sim"
	case "sim", "udp":
	default:
		return nil, fmt.Errorf("popsim: unknown transport %q (want sim or udp)", c.Transport)
	}
	if c.Transport == "udp" && c.Loss > 0 {
		return nil, errors.New("popsim: the udp transport cannot simulate datagram loss")
	}
	if c.Latency < 0 {
		return nil, fmt.Errorf("popsim: negative latency %v", c.Latency)
	}
	if c.UDPPool <= 0 {
		c.UDPPool = 8
	}
	if c.Aggregate {
		c.Delta = true
	}
	if c.Transport == "sim" && c.Delta {
		// Delta on a virtual-time engine requires synchronous verification
		// to ever engage (see the Delta field comment): force it rather
		// than silently running a vacuous configuration. Wall-paced
		// transports are untouched.
		if !c.Synchronous {
			c.Events.Emit(obs.Event{
				Subsystem: "popsim", Kind: "force_synchronous",
				Detail: "delta on the sim transport forces synchronous verification (virtual time outruns the async pipeline)",
			})
		}
		c.Synchronous = true
	}
	// Reuse the sharded runtime's validation and per-device planning.
	pc := &Config{
		Population: c.Population, Shards: 1, Seed: c.Seed, Alg: c.Alg,
		QoA: c.QoA, Slots: c.Slots, Duration: c.Duration,
		IMX6Fraction: c.IMX6Fraction,
		MSP430Memory: c.MSP430Memory, IMX6Memory: c.IMX6Memory,
		Loss:  c.Loss,
		Churn: ChurnConfig{LateJoinFraction: c.LateJoinFraction, JoinWindow: c.JoinWindow},
		Wave:  c.Wave,
	}
	if err := pc.fillDefaults(); err != nil {
		return nil, err
	}
	c.Alg, c.QoA, c.Slots, c.Duration = pc.Alg, pc.QoA, pc.Slots, pc.Duration
	c.MSP430Memory, c.IMX6Memory = pc.MSP430Memory, pc.IMX6Memory
	c.JoinWindow, c.Wave = pc.Churn.JoinWindow, pc.Wave
	return pc, nil
}

// managedDevice is one prover plus its provisioning, shared by both
// transports.
type managedDevice struct {
	plan   devicePlan
	addr   string
	key    []byte
	dev    attDevice
	prv    *core.Prover
	golden []byte
}

// buildManagedDevice constructs one device on the engine and schedules its
// infection timeline (the clean golden hash is captured first).
func buildManagedDevice(e *sim.Engine, cfg *ManagedConfig, p devicePlan) (*managedDevice, error) {
	key := deviceKey(cfg.Seed, p.id)
	storeSize := cfg.Slots * core.RecordSize(cfg.Alg)
	var dev attDevice
	if p.imx6 {
		d, err := imx6.New(imx6.Config{
			Engine: e, MemorySize: cfg.IMX6Memory, StoreSize: storeSize, Key: key,
		})
		if err != nil {
			return nil, err
		}
		dev = d
	} else {
		d, err := mcu.New(mcu.Config{
			Engine: e, MemorySize: cfg.MSP430Memory, StoreSize: storeSize, Key: key,
		})
		if err != nil {
			return nil, err
		}
		dev = d
	}
	sched, err := core.NewRegularWithPhase(cfg.QoA.TM, p.mphase)
	if err != nil {
		return nil, err
	}
	prv, err := core.NewProver(dev, core.ProverConfig{Alg: cfg.Alg, Schedule: sched, Slots: cfg.Slots})
	if err != nil {
		return nil, err
	}
	md := &managedDevice{
		plan: p, addr: fmt.Sprintf("dev-%06d", p.id), key: key,
		dev: dev, prv: prv,
		golden: mac.HashSum(cfg.Alg, dev.Memory()),
	}
	if p.infect >= 0 {
		clean := make([]byte, len(implant))
		e.At(p.infect, func() {
			if err := dev.WriteMemory(0, implant); err != nil {
				panic(err)
			}
		})
		if p.dwell > 0 {
			e.At(p.infect+p.dwell, func() {
				if err := dev.WriteMemory(0, clean); err != nil {
					panic(err)
				}
			})
		}
	}
	return md, nil
}

func (md *managedDevice) deviceConfig(cfg *ManagedConfig) fleet.DeviceConfig {
	return fleet.DeviceConfig{
		Addr: md.addr, Key: md.key, Alg: cfg.Alg, QoA: cfg.QoA,
		GoldenHashes: [][]byte{md.golden},
	}
}

func (cfg *ManagedConfig) managerConfig(e *sim.Engine, col fleet.Collector, clock func() uint64, st *store.Store, r *ManagedRun) fleet.ManagerConfig {
	mc := fleet.ManagerConfig{
		Engine: e, Collector: col, Clock: clock,
		VerifyWorkers: cfg.VerifyWorkers, QueueDepth: cfg.QueueDepth,
		UnreachableAfter: cfg.UnreachableAfter,
		Synchronous:      cfg.Synchronous,
		AdaptiveSchedule: cfg.AdaptiveSchedule,
		Delta:            cfg.Delta,
		Aggregate:        cfg.Aggregate,
		Store:            st,
		Obs:              cfg.Obs,
		Tracer:           cfg.Tracer,
		Events:           cfg.Events,
	}
	if cfg.Delta {
		// Count the rounds that genuinely verified incrementally (the
		// regression signal for the virtual-time fallback bug this field
		// was added to expose) and, in aggregate mode, how they verified:
		// accepted by the O(1) tier or audited record-by-record. OnReport
		// runs serialized under the manager's lock, in verdict-application
		// order.
		mc.OnReport = func(addr string, rep core.Report) {
			if rep.DeltaApplied {
				r.deltaRounds++
			}
			if rep.AggregateApplied {
				r.aggRounds++
			}
			if rep.AggregateFallback {
				r.aggFallbacks++
			}
		}
	}
	return mc
}

// openState opens the durable state store when StateDir is configured.
func (cfg *ManagedConfig) openState() (*store.Store, error) {
	if cfg.StateDir == "" {
		return nil, nil
	}
	return store.Open(cfg.StateDir, store.Options{Metrics: store.NewMetrics(cfg.Obs)})
}

// closeState compacts and closes the store, folding what Open recovered
// and the post-snapshot footprint into the result.
func closeState(res *ManagedResult, st *store.Store) error {
	if st == nil {
		return nil
	}
	ri := st.Recovery()
	res.Recovery = &ri
	if err := st.Snapshot(); err != nil {
		st.Close() //erasmus:allow(droppederr) best-effort release; the snapshot error it would echo is already being returned
		return err
	}
	stats := st.Stats()
	res.StoreStats = &stats
	return st.Close()
}

// RunManaged executes a fleet-managed population scenario to its horizon
// and returns the aggregated result: StartManaged → RunToHorizon → Finish.
func RunManaged(cfg ManagedConfig) (*ManagedResult, error) {
	run, err := StartManaged(cfg)
	if err != nil {
		return nil, err
	}
	run.RunToHorizon()
	return run.Finish()
}

// ManagedRun is a live fleet-managed scenario: devices built and booted,
// manager started, collections ticking — but the engine not yet driven to
// the horizon. RunManaged drives it to completion in one call; a
// long-running process (erasmus-serve) instead pumps the engine
// incrementally with Pump while reading Manager state between steps.
//
// The driving methods (RunToHorizon, Pump, Finish) must be called from one
// goroutine — they advance the engine, which is single-threaded. Manager
// accessors (Alerts, Statuses, Health) and the observability surfaces are
// safe from any goroutine.
type ManagedRun struct {
	cfg     *ManagedConfig
	engine  *sim.Engine // the manager's engine (shared with devices on "sim")
	mgr     *fleet.Manager
	st      *store.Store
	srv     *udptransport.Server // "udp" only
	devices []*managedDevice

	res          *ManagedResult
	runStart     time.Time
	deltaRounds  int
	aggRounds    int
	aggFallbacks int
	vt           *obs.Gauge // virtual time of the engine, ns
}

// StartManaged builds a managed scenario and starts its collection
// schedule. The caller must finish with Finish (or drive with RunManaged's
// sequence) to release sockets and the state store.
//
//erasmus:wallpaced BuildWall and the run-wall anchor time real setup; device plans derive from seeded streams only
func StartManaged(cfg ManagedConfig) (*ManagedRun, error) {
	pc, err := cfg.fill()
	if err != nil {
		return nil, err
	}
	plans := make([]devicePlan, cfg.Population)
	for id := range plans {
		plans[id] = planDevice(pc, id)
	}
	buildStart := time.Now()
	r := &ManagedRun{cfg: &cfg}
	if cfg.Transport == "udp" {
		err = r.startUDP(plans)
	} else {
		err = r.startSim(plans)
	}
	if err != nil {
		r.cleanup()
		return nil, err
	}
	if cfg.Obs != nil {
		cfg.Obs.Gauge("erasmus_popsim_devices",
			"Prover devices simulated by the population run.").Set(int64(cfg.Population))
		r.vt = cfg.Obs.Gauge("erasmus_popsim_virtual_time_ns",
			"Virtual time of the population engine.")
	}
	if cfg.Events != nil && r.st != nil {
		// Whatever opening the state directory had to say — replay
		// summary, torn tails, quarantined segments — goes to the event
		// log, where /eventz can show it for the life of the process.
		ri := r.st.Recovery()
		if ri.SnapshotSeq > 0 || ri.SegmentsReplayed > 0 {
			cfg.Events.Emit(obs.Event{
				Subsystem: "store", Kind: "recovery",
				Detail: fmt.Sprintf("snapshot seq %d (%d devices), %d segments / %d records replayed, torn tail %v",
					ri.SnapshotSeq, ri.SnapshotDevices, ri.SegmentsReplayed, ri.RecordsReplayed, ri.TornTail),
			})
		}
		for _, name := range ri.Quarantined {
			cfg.Events.Emit(obs.Event{
				Subsystem: "store", Kind: "quarantine", Detail: name,
			})
		}
		for _, note := range ri.Notes {
			cfg.Events.Emit(obs.Event{
				Subsystem: "store", Kind: "recovery_note", Detail: note,
			})
		}
	}
	r.res = &ManagedResult{Config: cfg, BuildWall: time.Since(buildStart)}
	r.runStart = time.Now()
	r.mgr.Start()
	return r, nil
}

// Manager exposes the live fleet manager (alerts, statuses, health).
func (r *ManagedRun) Manager() *fleet.Manager { return r.mgr }

// Engine exposes the manager-side engine. Read it only from the driving
// goroutine; use Pump to advance it.
func (r *ManagedRun) Engine() *sim.Engine { return r.engine }

// RunToHorizon drives the engine to the configured Duration: instantly in
// virtual time on the sim transport, wall-paced on udp.
func (r *ManagedRun) RunToHorizon() {
	if r.cfg.Transport == "udp" {
		fleet.PumpRealTime(r.engine, r.cfg.Duration, 2*time.Millisecond)
	} else if r.engine.Now() < r.cfg.Duration {
		r.engine.RunUntil(r.cfg.Duration)
	}
	r.vt.Set(int64(r.engine.Now()))
}

// Pump advances the engine against the wall clock until the absolute
// virtual time until — one virtual nanosecond per wall nanosecond, so a
// sim-transport fleet behaves like a live deployment while HTTP handlers
// read the manager between steps. Returns when the engine reaches until.
func (r *ManagedRun) Pump(until sim.Ticks, step time.Duration) {
	fleet.PumpRealTime(r.engine, until, step)
	r.vt.Set(int64(r.engine.Now()))
}

// Finish stops collection, drains in-flight verdicts, folds the end state
// into the result, and releases the manager, transport and state store.
//
//erasmus:wallpaced RunWall is a result timing field; alerts and verdicts were already fixed by virtual time
func (r *ManagedRun) Finish() (*ManagedResult, error) {
	r.mgr.Stop()
	if r.cfg.Transport != "udp" {
		// Drain collections still in flight at the horizon so the sim
		// transport applies the same tail verdicts the UDP transport waits
		// out in Flush: with the tickers stopped, run the engine through
		// the session client's full retry budget plus round-trip latency,
		// then wait for the last verdicts to be applied.
		r.engine.RunUntil(r.engine.Now() + 2*sim.Second + 2*r.cfg.Latency)
	}
	r.mgr.Flush()
	r.res.RunWall = time.Since(r.runStart)
	r.res.finish(r.mgr, r.devices)
	r.res.DeltaRounds = r.deltaRounds
	r.res.AggregateRounds = r.aggRounds
	r.res.AggregateFallbacks = r.aggFallbacks
	if r.srv != nil {
		defer r.srv.Close()
	}
	if err := r.mgr.Close(); err != nil {
		if r.st != nil {
			r.st.Close() //erasmus:allow(droppederr) best-effort release; the manager's durability error is already being returned
		}
		return nil, err
	}
	return r.res, closeState(r.res, r.st)
}

// cleanup releases partially-constructed run resources on a start error.
func (r *ManagedRun) cleanup() {
	if r.srv != nil {
		r.srv.Close()
	}
	if r.st != nil {
		r.st.Close() //erasmus:allow(droppederr) best-effort release on a start that already failed; that error wins
	}
}

// startSim builds the scenario over the simulated network in virtual time:
// devices, network and manager share one engine.
func (r *ManagedRun) startSim(plans []devicePlan) error {
	cfg := r.cfg
	engine := sim.NewEngine()
	r.engine = engine
	nw, err := netsim.New(engine, netsim.Config{
		Latency: cfg.Latency, LossRate: cfg.Loss, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return err
	}
	clock := func() uint64 { return verifierEpoch + uint64(engine.Now()) }
	col, err := fleet.NewSimCollector(nw, engine, "fleet-hq", clock)
	if err != nil {
		return err
	}
	if r.st, err = cfg.openState(); err != nil {
		return err
	}
	mgr, err := fleet.NewManagerWith(cfg.managerConfig(engine, col, clock, r.st, r))
	if err != nil {
		return err
	}
	r.mgr = mgr

	for _, p := range plans {
		md, err := buildManagedDevice(engine, cfg, p)
		if err != nil {
			return err
		}
		r.devices = append(r.devices, md)
		enroll := func() error {
			if _, err := session.AttachProver(nw, engine, md.addr, md.prv, cfg.Alg); err != nil {
				return err
			}
			md.prv.Start()
			return mgr.Register(md.deviceConfig(cfg))
		}
		if p.join == 0 {
			if err := enroll(); err != nil {
				return err
			}
		} else {
			engine.At(p.join, func() {
				if err := enroll(); err != nil {
					panic(err)
				}
			})
		}
	}
	return nil
}

// startUDP builds the scenario over real loopback sockets: provers live on
// one wall-paced engine behind a multi-prover UDP server, the manager on a
// second wall-paced engine, and the two meet only on the wire.
//
//erasmus:wallpaced the udp transport is wall-paced by design; the verifier clock is anchored to the server's wall epoch
func (r *ManagedRun) startUDP(plans []devicePlan) error {
	cfg := r.cfg
	proverEngine := sim.NewEngine()
	for _, p := range plans {
		md, err := buildManagedDevice(proverEngine, cfg, p)
		if err != nil {
			return err
		}
		r.devices = append(r.devices, md)
		// Late joiners boot at their join time; everything is scheduled
		// before the server takes ownership of the engine.
		if p.join == 0 {
			md.prv.Start()
		} else {
			start := md.prv.Start
			proverEngine.At(p.join, func() { start() })
		}
	}

	// The manager's clock is anchored to the server's wall epoch, so
	// collected records can never lead it by more than a round trip.
	serveStart := time.Now()
	srv, err := udptransport.ServeFleet("127.0.0.1:0", proverEngine, cfg.Alg)
	if err != nil {
		return err
	}
	r.srv = srv
	for _, md := range r.devices {
		if err := srv.Host(md.addr, md.prv); err != nil {
			return err
		}
	}

	col, err := fleet.NewUDPCollector(srv.Addr().String(), cfg.UDPPool)
	if err != nil {
		return err
	}
	mgrEngine := sim.NewEngine()
	r.engine = mgrEngine
	clock := func() uint64 { return verifierEpoch + uint64(time.Since(serveStart)) }
	if r.st, err = cfg.openState(); err != nil {
		return err
	}
	mgr, err := fleet.NewManagerWith(cfg.managerConfig(mgrEngine, col, clock, r.st, r))
	if err != nil {
		return err
	}
	r.mgr = mgr
	for _, md := range r.devices {
		md := md
		if md.plan.join == 0 {
			if err := mgr.Register(md.deviceConfig(cfg)); err != nil {
				return err
			}
		} else {
			mgrEngine.At(md.plan.join, func() {
				if err := mgr.Register(md.deviceConfig(cfg)); err != nil {
					panic(err)
				}
			})
		}
	}
	return nil
}

// finish folds the manager's end state into the result.
func (r *ManagedResult) finish(mgr *fleet.Manager, devices []*managedDevice) {
	r.Alerts = mgr.Alerts()
	r.AlertCounts = make(map[fleet.AlertKind]int)
	infectionAlerted := make(map[string]bool)
	for _, a := range r.Alerts {
		r.AlertCounts[a.Kind]++
		if a.Kind == fleet.AlertInfection {
			infectionAlerted[a.Device] = true
		}
	}
	r.Devices = len(devices)
	r.HealthyCount = mgr.HealthyCount()
	for _, md := range devices {
		if md.plan.join > 0 {
			r.LateJoiners++
		}
		seeded := md.plan.infect >= 0
		if seeded {
			r.InfectionsSeeded++
		}
		switch {
		case seeded && infectionAlerted[md.addr]:
			r.InfectionsDetected++
		case !seeded && infectionAlerted[md.addr]:
			r.FalseInfections++
		}
	}
}
