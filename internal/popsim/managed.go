package popsim

import (
	"errors"
	"fmt"
	"time"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/fleet"
	"erasmus/internal/hw/imx6"
	"erasmus/internal/hw/mcu"
	"erasmus/internal/netsim"
	"erasmus/internal/session"
	"erasmus/internal/sim"
	"erasmus/internal/store"
	"erasmus/internal/udptransport"
)

// verifierEpoch anchors the manager's clock to the device RROC epoch
// (identical for both device models).
const verifierEpoch = mcu.DefaultEpoch

// ManagedConfig parameterizes a fleet-managed population run: the same
// seeded per-device scenario generation as the sharded runtime, but driven
// end-to-end through fleet.Manager — staggered collection scheduling over
// a pluggable transport, the bounded asynchronous verification pipeline,
// and the alert stream.
type ManagedConfig struct {
	// Population is the number of prover devices. Required.
	Population int
	// Transport selects the collection path: "sim" (default, the
	// in-process simulated network — virtual time, instant) or "udp"
	// (real loopback sockets — wall-paced, so keep QoA and Duration in
	// the milliseconds-to-seconds range).
	Transport string
	// Seed drives every per-device random draw.
	Seed int64
	// Alg is the measurement MAC (default keyed BLAKE2s).
	Alg mac.Algorithm
	// QoA sets TM/TC for every device (default TM=10m, TC=4×TM).
	QoA core.QoA
	// Slots is the per-device buffer size (default minimum + 2).
	Slots int
	// Duration is the simulated horizon (default 6×TC).
	Duration sim.Ticks
	// IMX6Fraction of devices are i.MX6-class; the rest are MSP430-class.
	IMX6Fraction float64
	// MSP430Memory / IMX6Memory are attested image sizes in bytes.
	MSP430Memory, IMX6Memory int
	// Loss is the datagram loss probability of the simulated network
	// ("sim" transport only; real loopback sockets do not lose packets).
	Loss float64
	// Latency is the one-way delivery delay of the simulated network.
	Latency sim.Ticks
	// LateJoinFraction of devices register with the manager (and boot)
	// only part-way through the run, exercising warm-up leniency.
	LateJoinFraction float64
	// JoinWindow bounds late-join times; default Duration/2.
	JoinWindow sim.Ticks
	// Wave configures the infection wave.
	Wave WaveConfig
	// VerifyWorkers / QueueDepth size the manager's verification pipeline.
	VerifyWorkers, QueueDepth int
	// UnreachableAfter is the manager's consecutive-failure threshold.
	UnreachableAfter int
	// Synchronous verifies inline instead of through the pipeline.
	Synchronous bool
	// Delta enables incremental collection: the manager keeps per-device
	// watermarks and fetches + verifies only the records measured since
	// the previous round (see fleet.ManagerConfig.Delta).
	//
	// On the virtual-time "sim" transport, Delta forces Synchronous: an
	// async delta round needs the previous verdict applied before the
	// next launch, and a virtual-time engine outruns the pipeline, so
	// every round would silently fall back to a full collection —
	// verdict-identical but never incremental. Wall-paced transports
	// ("udp") keep the async pipeline: real time gives verdicts room to
	// land between rounds.
	Delta bool
	// UDPPool is the socket-pool size of the UDP collector (default 8).
	UDPPool int
	// StateDir, when non-empty, makes the manager's verifier state
	// durable: watermarks, per-device status and alerts are journaled to
	// a store.Store write-ahead log in that directory, compacted into a
	// snapshot when the run completes. A run over a directory holding
	// previous state recovers it first (ManagedResult.Recovery).
	StateDir string
}

// ManagedResult aggregates one fleet-managed run.
type ManagedResult struct {
	Config ManagedConfig
	// Alerts is the manager's full alert stream.
	Alerts []fleet.Alert
	// AlertCounts tallies the stream by kind.
	AlertCounts map[fleet.AlertKind]int
	// Devices, LateJoiners and InfectionsSeeded describe the scenario;
	// InfectionsDetected counts seeded devices with at least one
	// infection alert, FalseInfections counts clean devices alerted.
	Devices, LateJoiners int
	InfectionsSeeded     int
	InfectionsDetected   int
	FalseInfections      int
	HealthyCount         int
	// DeltaRounds counts collections that genuinely verified
	// incrementally (Report.DeltaApplied); always 0 without Delta.
	DeltaRounds int
	// Recovery and StoreStats describe the durable state store when
	// StateDir is set: what opening the directory recovered, and the
	// store's footprint after the end-of-run snapshot.
	Recovery           *store.RecoveryInfo
	StoreStats         *store.Stats
	BuildWall, RunWall time.Duration
}

func (c *ManagedConfig) fill() (*Config, error) {
	switch c.Transport {
	case "":
		c.Transport = "sim"
	case "sim", "udp":
	default:
		return nil, fmt.Errorf("popsim: unknown transport %q (want sim or udp)", c.Transport)
	}
	if c.Transport == "udp" && c.Loss > 0 {
		return nil, errors.New("popsim: the udp transport cannot simulate datagram loss")
	}
	if c.Latency < 0 {
		return nil, fmt.Errorf("popsim: negative latency %v", c.Latency)
	}
	if c.UDPPool <= 0 {
		c.UDPPool = 8
	}
	if c.Transport == "sim" && c.Delta {
		// Delta on a virtual-time engine requires synchronous verification
		// to ever engage (see the Delta field comment): force it rather
		// than silently running a vacuous configuration. Wall-paced
		// transports are untouched.
		c.Synchronous = true
	}
	// Reuse the sharded runtime's validation and per-device planning.
	pc := &Config{
		Population: c.Population, Shards: 1, Seed: c.Seed, Alg: c.Alg,
		QoA: c.QoA, Slots: c.Slots, Duration: c.Duration,
		IMX6Fraction: c.IMX6Fraction,
		MSP430Memory: c.MSP430Memory, IMX6Memory: c.IMX6Memory,
		Loss:  c.Loss,
		Churn: ChurnConfig{LateJoinFraction: c.LateJoinFraction, JoinWindow: c.JoinWindow},
		Wave:  c.Wave,
	}
	if err := pc.fillDefaults(); err != nil {
		return nil, err
	}
	c.Alg, c.QoA, c.Slots, c.Duration = pc.Alg, pc.QoA, pc.Slots, pc.Duration
	c.MSP430Memory, c.IMX6Memory = pc.MSP430Memory, pc.IMX6Memory
	c.JoinWindow, c.Wave = pc.Churn.JoinWindow, pc.Wave
	return pc, nil
}

// managedDevice is one prover plus its provisioning, shared by both
// transports.
type managedDevice struct {
	plan   devicePlan
	addr   string
	key    []byte
	dev    attDevice
	prv    *core.Prover
	golden []byte
}

// buildManagedDevice constructs one device on the engine and schedules its
// infection timeline (the clean golden hash is captured first).
func buildManagedDevice(e *sim.Engine, cfg *ManagedConfig, p devicePlan) (*managedDevice, error) {
	key := deviceKey(cfg.Seed, p.id)
	storeSize := cfg.Slots * core.RecordSize(cfg.Alg)
	var dev attDevice
	if p.imx6 {
		d, err := imx6.New(imx6.Config{
			Engine: e, MemorySize: cfg.IMX6Memory, StoreSize: storeSize, Key: key,
		})
		if err != nil {
			return nil, err
		}
		dev = d
	} else {
		d, err := mcu.New(mcu.Config{
			Engine: e, MemorySize: cfg.MSP430Memory, StoreSize: storeSize, Key: key,
		})
		if err != nil {
			return nil, err
		}
		dev = d
	}
	sched, err := core.NewRegularWithPhase(cfg.QoA.TM, p.mphase)
	if err != nil {
		return nil, err
	}
	prv, err := core.NewProver(dev, core.ProverConfig{Alg: cfg.Alg, Schedule: sched, Slots: cfg.Slots})
	if err != nil {
		return nil, err
	}
	md := &managedDevice{
		plan: p, addr: fmt.Sprintf("dev-%06d", p.id), key: key,
		dev: dev, prv: prv,
		golden: mac.HashSum(cfg.Alg, dev.Memory()),
	}
	if p.infect >= 0 {
		clean := make([]byte, len(implant))
		e.At(p.infect, func() {
			if err := dev.WriteMemory(0, implant); err != nil {
				panic(err)
			}
		})
		if p.dwell > 0 {
			e.At(p.infect+p.dwell, func() {
				if err := dev.WriteMemory(0, clean); err != nil {
					panic(err)
				}
			})
		}
	}
	return md, nil
}

func (md *managedDevice) deviceConfig(cfg *ManagedConfig) fleet.DeviceConfig {
	return fleet.DeviceConfig{
		Addr: md.addr, Key: md.key, Alg: cfg.Alg, QoA: cfg.QoA,
		GoldenHashes: [][]byte{md.golden},
	}
}

func (cfg *ManagedConfig) managerConfig(e *sim.Engine, col fleet.Collector, clock func() uint64, st *store.Store, deltaRounds *int) fleet.ManagerConfig {
	mc := fleet.ManagerConfig{
		Engine: e, Collector: col, Clock: clock,
		VerifyWorkers: cfg.VerifyWorkers, QueueDepth: cfg.QueueDepth,
		UnreachableAfter: cfg.UnreachableAfter,
		Synchronous:      cfg.Synchronous,
		Delta:            cfg.Delta,
		Store:            st,
	}
	if cfg.Delta {
		// Count the rounds that genuinely verified incrementally: the
		// regression signal for the virtual-time fallback bug this field
		// was added to expose. OnReport runs serialized under the
		// manager's lock, in verdict-application order.
		mc.OnReport = func(addr string, rep core.Report) {
			if rep.DeltaApplied {
				*deltaRounds++
			}
		}
	}
	return mc
}

// openState opens the durable state store when StateDir is configured.
func (cfg *ManagedConfig) openState() (*store.Store, error) {
	if cfg.StateDir == "" {
		return nil, nil
	}
	return store.Open(cfg.StateDir, store.Options{})
}

// closeState compacts and closes the store, folding what Open recovered
// and the post-snapshot footprint into the result.
func closeState(res *ManagedResult, st *store.Store) error {
	if st == nil {
		return nil
	}
	ri := st.Recovery()
	res.Recovery = &ri
	if err := st.Snapshot(); err != nil {
		st.Close()
		return err
	}
	stats := st.Stats()
	res.StoreStats = &stats
	return st.Close()
}

// RunManaged executes a fleet-managed population scenario.
func RunManaged(cfg ManagedConfig) (*ManagedResult, error) {
	pc, err := cfg.fill()
	if err != nil {
		return nil, err
	}
	plans := make([]devicePlan, cfg.Population)
	for id := range plans {
		plans[id] = planDevice(pc, id)
	}
	if cfg.Transport == "udp" {
		return runManagedUDP(&cfg, plans)
	}
	return runManagedSim(&cfg, plans)
}

// runManagedSim drives the scenario over the simulated network in virtual
// time.
func runManagedSim(cfg *ManagedConfig, plans []devicePlan) (*ManagedResult, error) {
	buildStart := time.Now()
	engine := sim.NewEngine()
	nw, err := netsim.New(engine, netsim.Config{
		Latency: cfg.Latency, LossRate: cfg.Loss, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	clock := func() uint64 { return verifierEpoch + uint64(engine.Now()) }
	col, err := fleet.NewSimCollector(nw, engine, "fleet-hq", clock)
	if err != nil {
		return nil, err
	}
	st, err := cfg.openState()
	if err != nil {
		return nil, err
	}
	deltaRounds := 0
	mgr, err := fleet.NewManagerWith(cfg.managerConfig(engine, col, clock, st, &deltaRounds))
	if err != nil {
		if st != nil {
			st.Close()
		}
		return nil, err
	}

	devices := make([]*managedDevice, 0, len(plans))
	for _, p := range plans {
		md, err := buildManagedDevice(engine, cfg, p)
		if err != nil {
			return nil, err
		}
		devices = append(devices, md)
		enroll := func() error {
			if _, err := session.AttachProver(nw, engine, md.addr, md.prv, cfg.Alg); err != nil {
				return err
			}
			md.prv.Start()
			return mgr.Register(md.deviceConfig(cfg))
		}
		if p.join == 0 {
			if err := enroll(); err != nil {
				return nil, err
			}
		} else {
			engine.At(p.join, func() {
				if err := enroll(); err != nil {
					panic(err)
				}
			})
		}
	}
	res := &ManagedResult{Config: *cfg, BuildWall: time.Since(buildStart)}

	runStart := time.Now()
	mgr.Start()
	engine.RunUntil(cfg.Duration)
	mgr.Stop()
	// Drain collections still in flight at the horizon so the sim
	// transport applies the same tail verdicts the UDP transport waits
	// out in Flush: with the tickers stopped, run the engine through the
	// session client's full retry budget plus round-trip latency, then
	// wait for the last verdicts to be applied.
	engine.RunUntil(cfg.Duration + 2*sim.Second + 2*cfg.Latency)
	mgr.Flush()
	res.RunWall = time.Since(runStart)
	res.finish(mgr, devices)
	res.DeltaRounds = deltaRounds
	if err := mgr.Close(); err != nil {
		if st != nil {
			st.Close()
		}
		return nil, err
	}
	return res, closeState(res, st)
}

// runManagedUDP drives the scenario over real loopback sockets: provers
// live on one wall-paced engine behind a multi-prover UDP server, the
// manager on a second wall-paced engine, and the two meet only on the
// wire.
func runManagedUDP(cfg *ManagedConfig, plans []devicePlan) (*ManagedResult, error) {
	buildStart := time.Now()
	proverEngine := sim.NewEngine()
	devices := make([]*managedDevice, 0, len(plans))
	for _, p := range plans {
		md, err := buildManagedDevice(proverEngine, cfg, p)
		if err != nil {
			return nil, err
		}
		devices = append(devices, md)
		// Late joiners boot at their join time; everything is scheduled
		// before the server takes ownership of the engine.
		if p.join == 0 {
			md.prv.Start()
		} else {
			start := md.prv.Start
			proverEngine.At(p.join, func() { start() })
		}
	}

	// The manager's clock is anchored to the server's wall epoch, so
	// collected records can never lead it by more than a round trip.
	serveStart := time.Now()
	srv, err := udptransport.ServeFleet("127.0.0.1:0", proverEngine, cfg.Alg)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	for _, md := range devices {
		if err := srv.Host(md.addr, md.prv); err != nil {
			return nil, err
		}
	}

	col, err := fleet.NewUDPCollector(srv.Addr().String(), cfg.UDPPool)
	if err != nil {
		return nil, err
	}
	mgrEngine := sim.NewEngine()
	clock := func() uint64 { return verifierEpoch + uint64(time.Since(serveStart)) }
	st, err := cfg.openState()
	if err != nil {
		return nil, err
	}
	deltaRounds := 0
	mgr, err := fleet.NewManagerWith(cfg.managerConfig(mgrEngine, col, clock, st, &deltaRounds))
	if err != nil {
		if st != nil {
			st.Close()
		}
		return nil, err
	}
	for _, md := range devices {
		md := md
		if md.plan.join == 0 {
			if err := mgr.Register(md.deviceConfig(cfg)); err != nil {
				return nil, err
			}
		} else {
			mgrEngine.At(md.plan.join, func() {
				if err := mgr.Register(md.deviceConfig(cfg)); err != nil {
					panic(err)
				}
			})
		}
	}
	res := &ManagedResult{Config: *cfg, BuildWall: time.Since(buildStart)}

	runStart := time.Now()
	mgr.Start()
	fleet.PumpRealTime(mgrEngine, cfg.Duration, 2*time.Millisecond)
	mgr.Stop()
	mgr.Flush()
	res.RunWall = time.Since(runStart)
	res.finish(mgr, devices)
	res.DeltaRounds = deltaRounds
	if err := mgr.Close(); err != nil {
		if st != nil {
			st.Close()
		}
		return nil, err
	}
	return res, closeState(res, st)
}

// finish folds the manager's end state into the result.
func (r *ManagedResult) finish(mgr *fleet.Manager, devices []*managedDevice) {
	r.Alerts = mgr.Alerts()
	r.AlertCounts = make(map[fleet.AlertKind]int)
	infectionAlerted := make(map[string]bool)
	for _, a := range r.Alerts {
		r.AlertCounts[a.Kind]++
		if a.Kind == fleet.AlertInfection {
			infectionAlerted[a.Device] = true
		}
	}
	r.Devices = len(devices)
	r.HealthyCount = mgr.HealthyCount()
	for _, md := range devices {
		if md.plan.join > 0 {
			r.LateJoiners++
		}
		seeded := md.plan.infect >= 0
		if seeded {
			r.InfectionsSeeded++
		}
		switch {
		case seeded && infectionAlerted[md.addr]:
			r.InfectionsDetected++
		case !seeded && infectionAlerted[md.addr]:
			r.FalseInfections++
		}
	}
}
