package popsim

import (
	"fmt"
	"time"

	"erasmus/internal/core"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/hw/imx6"
	"erasmus/internal/hw/mcu"
	"erasmus/internal/sim"
)

// attDevice is the hardware surface a population device needs: the prover
// runtime plus the normal-world write access malware (and remediation)
// has. Both device models satisfy it.
type attDevice interface {
	core.Device
	WriteMemory(off int, b []byte) error
}

// popDevice is one prover in the population.
type popDevice struct {
	plan devicePlan
	dev  attDevice
	prv  *core.Prover
	vrf  *core.Verifier
	loss rng

	clean       []byte // zeroed implant-sized region, for track-covering/remediation
	stopCollect func()
	retired     bool
	detected    bool
}

// pendingVerify is one collected history awaiting the barrier flush. The
// collection's virtual time travels with it so detection latency is
// measured in simulation time, not in verification order.
type pendingVerify struct {
	dev       *popDevice
	recs      []core.Record
	rroc      uint64
	expectedK int
	at        sim.Ticks
}

// shard owns one engine and its slice of the population.
type shard struct {
	id      int
	cfg     *Config
	engine  *sim.Engine
	plans   []devicePlan
	devices []*popDevice
	stats   Stats
	queue   []pendingVerify

	cmd  chan sim.Ticks
	done chan struct{}
	wall time.Duration
}

func newShard(id int, cfg *Config) *shard {
	return &shard{
		id: id, cfg: cfg, engine: sim.NewEngine(), stats: newStats(),
		cmd: make(chan sim.Ticks), done: make(chan struct{}),
	}
}

// build constructs every device of the shard and schedules its lifecycle
// (join, collections, retirement, infection) on the shard engine.
func (sh *shard) build() error {
	for _, p := range sh.plans {
		if err := sh.addDevice(p); err != nil {
			return fmt.Errorf("popsim: shard %d device %d: %w", sh.id, p.id, err)
		}
	}
	sh.plans = nil
	return nil
}

func (sh *shard) addDevice(p devicePlan) error {
	cfg := sh.cfg
	key := deviceKey(cfg.Seed, p.id)
	storeSize := cfg.Slots * core.RecordSize(cfg.Alg)

	var dev attDevice
	if p.imx6 {
		d, err := imx6.New(imx6.Config{
			Engine: sh.engine, MemorySize: cfg.IMX6Memory,
			StoreSize: storeSize, Key: key,
		})
		if err != nil {
			return err
		}
		dev = d
		sh.stats.IMX6Devices++
	} else {
		d, err := mcu.New(mcu.Config{
			Engine: sh.engine, MemorySize: cfg.MSP430Memory,
			StoreSize: storeSize, Key: key,
		})
		if err != nil {
			return err
		}
		dev = d
		sh.stats.MSP430Devices++
	}

	sched, err := core.NewRegularWithPhase(cfg.QoA.TM, p.mphase)
	if err != nil {
		return err
	}
	prv, err := core.NewProver(dev, core.ProverConfig{
		Alg: cfg.Alg, Schedule: sched, Slots: cfg.Slots,
	})
	if err != nil {
		return err
	}
	cleanHash := mac.HashSum(cfg.Alg, dev.Memory())
	vrf, err := core.NewVerifier(core.VerifierConfig{
		Alg: cfg.Alg, Key: key,
		GoldenHashes: [][]byte{cleanHash},
		MinGap:       cfg.QoA.TM - cfg.QoA.TM/10,
		MaxGap:       cfg.QoA.TM + cfg.QoA.TM/2,
		MACCacheSize: cfg.MACCacheSize,
	})
	if err != nil {
		return err
	}

	pd := &popDevice{
		plan: p, dev: dev, prv: prv, vrf: vrf,
		loss:  deviceRNG(cfg.Seed, p.id, streamLoss),
		clean: make([]byte, len(implant)),
	}
	sh.devices = append(sh.devices, pd)
	sh.stats.Devices++
	if p.join > 0 {
		sh.stats.LateJoiners++
	}
	if p.retire < sim.MaxTicks {
		sh.stats.Retirements++
	}
	if p.infect >= 0 {
		sh.stats.InfectionsSeeded++
	}

	e := sh.engine
	e.At(p.join, func() {
		prv.Start()
		pd.stopCollect = e.Ticker(p.join+p.cphase+cfg.QoA.TC, cfg.QoA.TC, func() {
			sh.collect(pd)
		})
	})
	if p.retire < sim.MaxTicks && p.retire <= cfg.Duration {
		e.At(p.retire, func() {
			prv.Stop()
			if pd.stopCollect != nil {
				pd.stopCollect()
			}
			pd.retired = true
		})
	}
	if p.infect >= 0 {
		e.At(p.infect, func() {
			if err := dev.WriteMemory(0, implant); err != nil {
				panic(err)
			}
		})
		if p.dwell > 0 {
			e.At(p.infect+p.dwell, func() {
				// Mobile malware leaves and covers its tracks — but the
				// infected records it was measured into remain collectible.
				if err := dev.WriteMemory(0, pd.clean); err != nil {
					panic(err)
				}
			})
		}
	}
	return nil
}

// collect performs one scheduled collection against a live device and
// queues the history for the next barrier's batch verification.
func (sh *shard) collect(pd *popDevice) {
	if pd.retired {
		return
	}
	cfg := sh.cfg
	sh.stats.Collections++
	k := cfg.QoA.RecordsPerCollection()
	recs, _ := pd.prv.HandleCollect(k)
	if cfg.Loss > 0 && pd.loss.float64() < cfg.Loss {
		// The prover served the request but the response never arrived.
		sh.stats.LostCollections++
		return
	}
	if len(recs) == 0 {
		sh.stats.EmptyCollections++
		return
	}
	now := sh.engine.Now()
	// Warm-up: a device younger than (k+1)×TM cannot be expected to hold a
	// full history yet (the +1 absorbs a measurement still in flight).
	expected := k
	if now-pd.plan.join < sim.Ticks(k+1)*cfg.QoA.TM {
		expected = 0
	}
	sh.queue = append(sh.queue, pendingVerify{
		dev: pd, recs: recs, rroc: pd.dev.RROC(), expectedK: expected, at: now,
	})
}

// fold merges one verification report into the shard aggregates. Called by
// the coordinator between epochs, when no shard goroutine is running.
func (sh *shard) fold(q *pendingVerify, rep *core.Report) {
	sh.stats.HistoriesVerified++
	sh.stats.RecordsVerified += int64(len(rep.Records))
	sh.stats.FreshnessSum += rep.Freshness
	sh.stats.FreshnessSamples++
	sh.stats.GapReports += int64(rep.ScheduleGaps)
	if rep.TamperDetected {
		sh.stats.TamperReports++
	}
	if !rep.InfectionDetected {
		return
	}
	sh.stats.InfectedReports++
	pd := q.dev
	if pd.detected || pd.plan.infect < 0 || q.at < pd.plan.infect {
		return
	}
	pd.detected = true
	sh.stats.InfectionsDetected++
	latency := q.at - pd.plan.infect
	sh.stats.DetectionLatencySum += latency
	if latency > sh.stats.DetectionLatencyMax {
		sh.stats.DetectionLatencyMax = latency
	}
	if q.at < sh.stats.FirstDetectionAt {
		sh.stats.FirstDetectionAt = q.at
	}
	if pd.plan.dwell == 0 {
		// Persistent malware: detection triggers remediation (reflash to
		// the golden image), so subsequent measurements are clean again.
		if err := pd.dev.WriteMemory(0, pd.clean); err != nil {
			panic(err)
		}
	}
}

// run advances the engine to each commanded barrier time, signalling the
// coordinator after every step, until the command channel closes.
//
//erasmus:wallpaced per-shard wall accounting feeds Result timing; scenario behavior runs on the virtual clock
func (sh *shard) run() {
	for t := range sh.cmd {
		start := time.Now()
		sh.engine.RunUntil(t)
		sh.wall += time.Since(start)
		sh.done <- struct{}{}
	}
}

// finish folds end-of-run prover counters into the shard aggregates.
func (sh *shard) finish() {
	for _, pd := range sh.devices {
		st := pd.prv.Stats()
		sh.stats.Measurements += int64(st.Measurements)
		sh.stats.Aborted += int64(st.Aborted)
		sh.stats.Missed += int64(st.Missed)
	}
}
