package popsim

import "erasmus/internal/sim"

// Stats is the streaming aggregate over the whole population. Every field
// is an integer count or a Ticks sum/extremum, folded in as collections
// are verified, so memory stays O(shards) rather than O(devices) and —
// because every fold is commutative and associative — the merged totals
// are bit-identical regardless of shard count or goroutine interleaving.
type Stats struct {
	// Population composition.
	Devices          int
	MSP430Devices    int
	IMX6Devices      int
	LateJoiners      int // devices joining after t=0 (churn)
	Retirements      int // devices retiring before the horizon (churn)
	InfectionsSeeded int // devices visited by the infection wave

	// Prover-side activity (from per-device runtime counters).
	Measurements int64
	Aborted      int64
	Missed       int64

	// Collection pipeline.
	Collections      int64 // collection attempts against live devices
	LostCollections  int64 // responses dropped by the lossy network
	EmptyCollections int64 // device had no history yet (just joined)

	// Verifier-side outcomes.
	HistoriesVerified int64
	RecordsVerified   int64
	InfectedReports   int64 // reports with at least one infected record
	TamperReports     int64
	GapReports        int64 // schedule-gap findings across all reports

	// Quality of Attestation (§3.1): freshness of the newest record at
	// each collection; the paper predicts a TM/2 mean.
	FreshnessSum     sim.Ticks
	FreshnessSamples int64

	// End-to-end detection: from a device's infection instant to the
	// first collection whose report flags it.
	InfectionsDetected  int
	DetectionLatencySum sim.Ticks
	DetectionLatencyMax sim.Ticks
	FirstDetectionAt    sim.Ticks // sim.MaxTicks when nothing was detected
}

func newStats() Stats { return Stats{FirstDetectionAt: sim.MaxTicks} }

// merge folds o into s. All operations are commutative, so merge order
// never changes the result.
func (s *Stats) merge(o *Stats) {
	s.Devices += o.Devices
	s.MSP430Devices += o.MSP430Devices
	s.IMX6Devices += o.IMX6Devices
	s.LateJoiners += o.LateJoiners
	s.Retirements += o.Retirements
	s.InfectionsSeeded += o.InfectionsSeeded
	s.Measurements += o.Measurements
	s.Aborted += o.Aborted
	s.Missed += o.Missed
	s.Collections += o.Collections
	s.LostCollections += o.LostCollections
	s.EmptyCollections += o.EmptyCollections
	s.HistoriesVerified += o.HistoriesVerified
	s.RecordsVerified += o.RecordsVerified
	s.InfectedReports += o.InfectedReports
	s.TamperReports += o.TamperReports
	s.GapReports += o.GapReports
	s.FreshnessSum += o.FreshnessSum
	s.FreshnessSamples += o.FreshnessSamples
	s.InfectionsDetected += o.InfectionsDetected
	s.DetectionLatencySum += o.DetectionLatencySum
	if o.DetectionLatencyMax > s.DetectionLatencyMax {
		s.DetectionLatencyMax = o.DetectionLatencyMax
	}
	if o.FirstDetectionAt < s.FirstDetectionAt {
		s.FirstDetectionAt = o.FirstDetectionAt
	}
}

// MeanFreshness averages the per-collection freshness samples.
func (s Stats) MeanFreshness() sim.Ticks {
	if s.FreshnessSamples == 0 {
		return 0
	}
	return s.FreshnessSum / sim.Ticks(s.FreshnessSamples)
}

// MeanDetectionLatency averages infection-to-detection delays.
func (s Stats) MeanDetectionLatency() sim.Ticks {
	if s.InfectionsDetected == 0 {
		return 0
	}
	return s.DetectionLatencySum / sim.Ticks(s.InfectionsDetected)
}

// DetectionRate is the fraction of seeded infections that were detected.
func (s Stats) DetectionRate() float64 {
	if s.InfectionsSeeded == 0 {
		return 0
	}
	return float64(s.InfectionsDetected) / float64(s.InfectionsSeeded)
}

// LossRate is the fraction of collection attempts lost in the network.
func (s Stats) LossRate() float64 {
	if s.Collections == 0 {
		return 0
	}
	return float64(s.LostCollections) / float64(s.Collections)
}
