// Package sel4 models the seL4-based software security architecture that
// HYDRA builds on (§2, §4.2 of the paper).
//
// HYDRA's guarantees come from seL4's formally verified isolation rather
// than hard-wired MCU rules:
//
//   - memory isolation and access control are capability-based and
//     enforced in software by the kernel;
//   - the attestation process PrAtt is the initial user-space process and
//     has the highest scheduling priority, which makes its measurement
//     effectively atomic (no other user process can preempt it);
//   - PrAtt holds the *only* capabilities to the key region, to its own
//     thread control block, and to the RROC components (exclusive write
//     access to the software clock);
//   - all other processes are spawned by PrAtt with strictly lower
//     priorities;
//   - hardware-enforced secure boot establishes integrity of the kernel
//     and PrAtt at initialization.
//
// The model implements exactly these mechanisms: a region registry, a
// capability table with grant-delegation, a priority rule, and a
// secure-boot hash check. It deliberately does not model seL4's IPC or
// virtual memory beyond what the paper's argument needs.
package sel4

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"

	"erasmus/internal/hw/cpu"
	"erasmus/internal/sim"
)

// Rights is a capability rights mask.
type Rights uint8

// Capability rights bits.
const (
	Read Rights = 1 << iota
	Write
	Grant // permission to delegate this capability
)

// Has reports whether r includes all bits of want.
func (r Rights) Has(want Rights) bool { return r&want == want }

func (r Rights) String() string {
	s := ""
	if r.Has(Read) {
		s += "r"
	}
	if r.Has(Write) {
		s += "w"
	}
	if r.Has(Grant) {
		s += "g"
	}
	if s == "" {
		s = "-"
	}
	return s
}

// Region is a named kernel-managed memory object.
type Region struct {
	Name string
	Data []byte
}

// Process is a schedulable protection domain with a capability space.
type Process struct {
	Name     string
	Priority int // higher runs first; PrAtt must be the maximum
	Parent   *Process
	caps     map[string]Rights
}

// Caps returns a copy of the process's capability table.
func (p *Process) Caps() map[string]Rights {
	out := make(map[string]Rights, len(p.caps))
	for k, v := range p.caps {
		out[k] = v
	}
	return out
}

// BootImage is what secure boot measures: the kernel and PrAtt binaries.
type BootImage struct {
	Kernel []byte
	PrAtt  []byte
}

// Digest returns the secure-boot measurement of the image.
func (b BootImage) Digest() [sha256.Size]byte {
	h := sha256.New()
	h.Write(b.Kernel)
	h.Write([]byte{0}) // domain separation between the two binaries
	h.Write(b.PrAtt)
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Kernel is a booted seL4 model instance.
type Kernel struct {
	viol    *cpu.ViolationLog
	regions map[string]*Region
	procs   map[string]*Process
	prAtt   *Process
}

// ErrBootIntegrity is returned when secure boot rejects the image.
var ErrBootIntegrity = errors.New("sel4: secure boot hash mismatch")

// Boot verifies the image against the golden hash (hardware-enforced
// secure boot) and, on success, starts the kernel with PrAtt as the
// initial process at the given priority.
func Boot(e *sim.Engine, img BootImage, golden [sha256.Size]byte, prAttPriority int) (*Kernel, error) {
	viol := cpu.NewViolationLog(e)
	if img.Digest() != golden {
		viol.Record(cpu.ViolationBootIntegrty, "kernel/PrAtt image rejected")
		return nil, ErrBootIntegrity
	}
	k := &Kernel{
		viol:    viol,
		regions: make(map[string]*Region),
		procs:   make(map[string]*Process),
	}
	k.prAtt = &Process{Name: "PrAtt", Priority: prAttPriority, caps: make(map[string]Rights)}
	k.procs[k.prAtt.Name] = k.prAtt
	return k, nil
}

// Violations exposes the kernel's access-violation log.
func (k *Kernel) Violations() *cpu.ViolationLog { return k.viol }

// PrAtt returns the attestation process.
func (k *Kernel) PrAtt() *Process { return k.prAtt }

// CreateRegion registers a memory object of the given size and hands the
// full capability (rwg) to owner. Region names must be unique.
func (k *Kernel) CreateRegion(name string, size int, owner *Process) (*Region, error) {
	if _, dup := k.regions[name]; dup {
		return nil, fmt.Errorf("sel4: region %q already exists", name)
	}
	if size < 0 {
		return nil, fmt.Errorf("sel4: negative region size %d", size)
	}
	if err := k.known(owner); err != nil {
		return nil, err
	}
	r := &Region{Name: name, Data: make([]byte, size)}
	k.regions[name] = r
	owner.caps[name] = Read | Write | Grant
	return r, nil
}

// Spawn creates a child process. Per HYDRA's design, only processes may be
// created by an ancestor chain rooted at PrAtt, and every child must have
// strictly lower priority than PrAtt (this is what makes the measurement
// effectively atomic).
func (k *Kernel) Spawn(parent *Process, name string, priority int) (*Process, error) {
	if err := k.known(parent); err != nil {
		return nil, err
	}
	if _, dup := k.procs[name]; dup {
		return nil, fmt.Errorf("sel4: process %q already exists", name)
	}
	if priority >= k.prAtt.Priority {
		k.viol.Record(cpu.ViolationCapability,
			fmt.Sprintf("spawn %q at priority %d ≥ PrAtt %d", name, priority, k.prAtt.Priority))
		return nil, fmt.Errorf("sel4: child priority %d must be below PrAtt's %d", priority, k.prAtt.Priority)
	}
	p := &Process{Name: name, Priority: priority, Parent: parent, caps: make(map[string]Rights)}
	k.procs[name] = p
	return p, nil
}

// GrantCap delegates rights on region from one process to another. The
// granter must hold Grant plus every delegated right.
func (k *Kernel) GrantCap(from, to *Process, region string, rights Rights) error {
	if err := k.known(from); err != nil {
		return err
	}
	if err := k.known(to); err != nil {
		return err
	}
	if _, ok := k.regions[region]; !ok {
		return fmt.Errorf("sel4: unknown region %q", region)
	}
	held := from.caps[region]
	if !held.Has(Grant) || !held.Has(rights&^Grant) {
		return k.viol.Record(cpu.ViolationCapability,
			fmt.Sprintf("%s cannot grant %v on %q (holds %v)", from.Name, rights, region, held))
	}
	to.caps[region] |= rights
	return nil
}

// RevokeCap removes all rights on region from a process. Only the region's
// grant-holder (or the process itself) may revoke; PrAtt uses this to keep
// exclusive access to K.
func (k *Kernel) RevokeCap(by, from *Process, region string) error {
	if err := k.known(by); err != nil {
		return err
	}
	if by != from && !by.caps[region].Has(Grant) {
		return k.viol.Record(cpu.ViolationCapability,
			fmt.Sprintf("%s cannot revoke %q from %s", by.Name, region, from.Name))
	}
	delete(from.caps, region)
	return nil
}

// Access checks a read or write by p on region and returns the region on
// success. Failed checks are logged as capability violations.
func (k *Kernel) Access(p *Process, region string, want Rights) (*Region, error) {
	if err := k.known(p); err != nil {
		return nil, err
	}
	r, ok := k.regions[region]
	if !ok {
		return nil, fmt.Errorf("sel4: unknown region %q", region)
	}
	if !p.caps[region].Has(want) {
		return nil, k.viol.Record(cpu.ViolationCapability,
			fmt.Sprintf("%s lacks %v on %q", p.Name, want, region))
	}
	return r, nil
}

// ExclusiveHolder reports whether p is the only process holding any rights
// on region — the property HYDRA requires for the key region, PrAtt's TCB
// and the RROC components.
func (k *Kernel) ExclusiveHolder(p *Process, region string) bool {
	if _, ok := p.caps[region]; !ok {
		return false
	}
	for _, other := range k.procs {
		if other == p {
			continue
		}
		if _, ok := other.caps[region]; ok {
			return false
		}
	}
	return true
}

// HighestPriority returns the process that the seL4 scheduler would run
// among the given candidates (nil candidates = all processes). Ties break
// by name for determinism.
func (k *Kernel) HighestPriority(candidates []*Process) *Process {
	if candidates == nil {
		for _, p := range k.procs {
			candidates = append(candidates, p)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Priority != candidates[j].Priority {
			return candidates[i].Priority > candidates[j].Priority
		}
		return candidates[i].Name < candidates[j].Name
	})
	if len(candidates) == 0 {
		return nil
	}
	return candidates[0]
}

// Processes returns all processes sorted by name.
func (k *Kernel) Processes() []*Process {
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (k *Kernel) known(p *Process) error {
	if p == nil {
		return errors.New("sel4: nil process")
	}
	if k.procs[p.Name] != p {
		return fmt.Errorf("sel4: process %q not registered with this kernel", p.Name)
	}
	return nil
}
