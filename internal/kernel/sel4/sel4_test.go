package sel4

import (
	"testing"

	"erasmus/internal/hw/cpu"
	"erasmus/internal/sim"
)

func bootKernel(t *testing.T) *Kernel {
	t.Helper()
	img := BootImage{Kernel: []byte("sel4-kernel"), PrAtt: []byte("pratt-binary")}
	k, err := Boot(sim.NewEngine(), img, img.Digest(), 255)
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	return k
}

func TestSecureBootAcceptsGoldenImage(t *testing.T) {
	k := bootKernel(t)
	if k.PrAtt() == nil || k.PrAtt().Name != "PrAtt" {
		t.Fatal("PrAtt not created at boot")
	}
	if k.PrAtt().Priority != 255 {
		t.Fatalf("PrAtt priority = %d", k.PrAtt().Priority)
	}
}

func TestSecureBootRejectsTamperedImage(t *testing.T) {
	img := BootImage{Kernel: []byte("sel4-kernel"), PrAtt: []byte("pratt-binary")}
	golden := img.Digest()
	img.PrAtt = []byte("pratt-binary-with-rootkit")
	if _, err := Boot(sim.NewEngine(), img, golden, 255); err != ErrBootIntegrity {
		t.Fatalf("Boot with tampered image: err = %v, want ErrBootIntegrity", err)
	}
}

func TestBootDigestDomainSeparation(t *testing.T) {
	a := BootImage{Kernel: []byte("ab"), PrAtt: []byte("c")}
	b := BootImage{Kernel: []byte("a"), PrAtt: []byte("bc")}
	if a.Digest() == b.Digest() {
		t.Fatal("boundary-shifted images share a digest")
	}
}

func TestCreateRegionGivesOwnerFullCap(t *testing.T) {
	k := bootKernel(t)
	r, err := k.CreateRegion("key", 32, k.PrAtt())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Data) != 32 {
		t.Fatalf("region size = %d", len(r.Data))
	}
	if !k.PrAtt().Caps()["key"].Has(Read | Write | Grant) {
		t.Fatal("owner lacks full rights")
	}
	if _, err := k.CreateRegion("key", 1, k.PrAtt()); err == nil {
		t.Fatal("duplicate region accepted")
	}
	if _, err := k.CreateRegion("neg", -1, k.PrAtt()); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestSpawnPriorityRule(t *testing.T) {
	k := bootKernel(t)
	if _, err := k.Spawn(k.PrAtt(), "app", 100); err != nil {
		t.Fatalf("legitimate spawn failed: %v", err)
	}
	if _, err := k.Spawn(k.PrAtt(), "evil", 255); err == nil {
		t.Fatal("spawn at PrAtt priority accepted")
	}
	if _, err := k.Spawn(k.PrAtt(), "evil2", 300); err == nil {
		t.Fatal("spawn above PrAtt priority accepted")
	}
	if k.Violations().Count(cpu.ViolationCapability) == 0 {
		t.Fatal("priority violation not logged")
	}
	if _, err := k.Spawn(k.PrAtt(), "app", 10); err == nil {
		t.Fatal("duplicate process name accepted")
	}
}

func TestAccessControl(t *testing.T) {
	k := bootKernel(t)
	k.CreateRegion("key", 32, k.PrAtt())
	app, _ := k.Spawn(k.PrAtt(), "app", 10)

	if _, err := k.Access(k.PrAtt(), "key", Read|Write); err != nil {
		t.Fatalf("owner access denied: %v", err)
	}
	if _, err := k.Access(app, "key", Read); err == nil {
		t.Fatal("capability-less read allowed")
	}
	if _, err := k.Access(app, "nosuch", Read); err == nil {
		t.Fatal("unknown region access allowed")
	}
	if k.Violations().Count(cpu.ViolationCapability) != 1 {
		t.Fatalf("violations = %d, want 1", k.Violations().Count(cpu.ViolationCapability))
	}
}

func TestGrantDelegation(t *testing.T) {
	k := bootKernel(t)
	k.CreateRegion("buf", 64, k.PrAtt())
	app, _ := k.Spawn(k.PrAtt(), "app", 10)

	if err := k.GrantCap(k.PrAtt(), app, "buf", Read); err != nil {
		t.Fatalf("grant failed: %v", err)
	}
	if _, err := k.Access(app, "buf", Read); err != nil {
		t.Fatalf("granted read denied: %v", err)
	}
	if _, err := k.Access(app, "buf", Write); err == nil {
		t.Fatal("ungranted write allowed")
	}
	// app holds no Grant right, so it cannot re-delegate.
	app2, _ := k.Spawn(k.PrAtt(), "app2", 10)
	if err := k.GrantCap(app, app2, "buf", Read); err == nil {
		t.Fatal("delegation without Grant right succeeded")
	}
	// Granting rights you don't hold fails.
	if err := k.GrantCap(app, app2, "nosuch", Read); err == nil {
		t.Fatal("grant on unknown region succeeded")
	}
}

func TestRevoke(t *testing.T) {
	k := bootKernel(t)
	k.CreateRegion("buf", 64, k.PrAtt())
	app, _ := k.Spawn(k.PrAtt(), "app", 10)
	k.GrantCap(k.PrAtt(), app, "buf", Read)

	other, _ := k.Spawn(k.PrAtt(), "other", 10)
	if err := k.RevokeCap(other, app, "buf"); err == nil {
		t.Fatal("non-holder revoked a capability")
	}
	if err := k.RevokeCap(k.PrAtt(), app, "buf"); err != nil {
		t.Fatalf("grant-holder revoke failed: %v", err)
	}
	if _, err := k.Access(app, "buf", Read); err == nil {
		t.Fatal("access allowed after revoke")
	}
}

func TestExclusiveHolder(t *testing.T) {
	k := bootKernel(t)
	k.CreateRegion("key", 32, k.PrAtt())
	app, _ := k.Spawn(k.PrAtt(), "app", 10)

	if !k.ExclusiveHolder(k.PrAtt(), "key") {
		t.Fatal("PrAtt should be exclusive holder of key")
	}
	k.GrantCap(k.PrAtt(), app, "key", Read)
	if k.ExclusiveHolder(k.PrAtt(), "key") {
		t.Fatal("exclusivity claimed after delegation")
	}
	k.RevokeCap(k.PrAtt(), app, "key")
	if !k.ExclusiveHolder(k.PrAtt(), "key") {
		t.Fatal("exclusivity not restored after revoke")
	}
	if k.ExclusiveHolder(app, "key") {
		t.Fatal("non-holder reported exclusive")
	}
}

func TestSchedulerPicksPrAtt(t *testing.T) {
	k := bootKernel(t)
	k.Spawn(k.PrAtt(), "app-a", 100)
	k.Spawn(k.PrAtt(), "app-b", 100)
	if got := k.HighestPriority(nil); got != k.PrAtt() {
		t.Fatalf("scheduler chose %q, want PrAtt", got.Name)
	}
}

func TestSchedulerTieBreaksByName(t *testing.T) {
	k := bootKernel(t)
	a, _ := k.Spawn(k.PrAtt(), "aaa", 100)
	k.Spawn(k.PrAtt(), "bbb", 100)
	got := k.HighestPriority([]*Process{k.procsLookup("bbb"), a})
	if got != a {
		t.Fatalf("tie-break chose %q, want aaa", got.Name)
	}
}

// procsLookup is a test helper reaching into the kernel's registry.
func (k *Kernel) procsLookup(name string) *Process { return k.procs[name] }

func TestForeignProcessRejected(t *testing.T) {
	k1 := bootKernel(t)
	k2 := bootKernel(t)
	stranger, _ := k2.Spawn(k2.PrAtt(), "stranger", 1)
	if _, err := k1.CreateRegion("r", 1, stranger); err == nil {
		t.Fatal("foreign process accepted as region owner")
	}
	if _, err := k1.Access(stranger, "r", Read); err == nil {
		t.Fatal("foreign process access allowed")
	}
	if _, err := k1.Spawn(nil, "x", 1); err == nil {
		t.Fatal("nil parent accepted")
	}
}

func TestProcessesSorted(t *testing.T) {
	k := bootKernel(t)
	k.Spawn(k.PrAtt(), "zeta", 1)
	k.Spawn(k.PrAtt(), "alpha", 2)
	ps := k.Processes()
	if len(ps) != 3 || ps[0].Name != "PrAtt" || ps[1].Name != "alpha" || ps[2].Name != "zeta" {
		names := []string{}
		for _, p := range ps {
			names = append(names, p.Name)
		}
		t.Fatalf("Processes() = %v", names)
	}
}

func TestRightsString(t *testing.T) {
	if (Read | Write | Grant).String() != "rwg" {
		t.Error("rwg string wrong")
	}
	if Rights(0).String() != "-" {
		t.Error("empty rights string wrong")
	}
}

func TestHighestPriorityEmpty(t *testing.T) {
	k := bootKernel(t)
	if k.HighestPriority([]*Process{}) != nil {
		t.Fatal("empty candidate set returned a process")
	}
}
