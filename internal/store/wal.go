package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// WAL segment files: wal-<seq>.log, an 16-byte header (magic + segment
// sequence number) followed by framed records
//
//	| len uint32 | crc32c(payload) uint32 | payload |
//
// Appends are buffered; Sync flushes and fsyncs. A crash can therefore
// lose a buffered tail or tear the final frame — recovery tolerates both
// (the tail is dropped, everything before it is applied). A frame that
// fails its checksum anywhere *before* the tail means the segment itself
// is damaged: replay quarantines it (renames to *.quarantined) and keeps
// going, because every surviving record is self-contained and per-device
// state is last-writer-wins.

const (
	walMagic     = "ERASWAL1"
	walHeaderLen = 16 // magic + big-endian segment seq
	frameHeader  = 8  // len + crc
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func walName(seq uint64) string { return fmt.Sprintf("wal-%08d.log", seq) }

// segmentWriter appends frames to one open WAL segment.
type segmentWriter struct {
	f     *os.File
	w     *bufio.Writer
	seq   uint64
	bytes int64 // written through the bufio layer, header included
}

func createSegment(dir string, seq uint64) (*segmentWriter, error) {
	f, err := os.OpenFile(filepath.Join(dir, walName(seq)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	s := &segmentWriter{f: f, w: bufio.NewWriterSize(f, 1<<16), seq: seq}
	var hdr [walHeaderLen]byte
	copy(hdr[:], walMagic)
	binary.BigEndian.PutUint64(hdr[8:], seq)
	if _, err := s.w.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	s.bytes = walHeaderLen
	return s, nil
}

// append frames one payload.
func (s *segmentWriter) append(payload []byte) error {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := s.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := s.w.Write(payload); err != nil {
		return err
	}
	s.bytes += int64(frameHeader + len(payload))
	return nil
}

// sync flushes the buffer and fsyncs the file.
func (s *segmentWriter) sync() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// close flushes and closes without fsync (callers that need durability
// call sync first).
func (s *segmentWriter) close() error {
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// segmentResult is the outcome of replaying one segment.
type segmentResult struct {
	records  []walRecord
	bytes    int64 // valid bytes consumed (header + intact frames)
	torn     bool  // a truncated final frame was dropped
	corrupt  bool  // a checksum/format failure before the tail
	complain error // what went wrong, for diagnostics
}

// readSegment parses one WAL segment from disk. A truncated final frame
// sets torn; a mid-segment checksum or format failure sets corrupt and
// parsing stops there (the records decoded before the failure are still
// returned — they passed their own checksums).
func readSegment(path string, wantSeq uint64) (segmentResult, error) {
	var res segmentResult
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	if len(data) < walHeaderLen {
		// A segment shorter than its own header is the residue of a crash
		// between segment creation and the first sync (the header lived in
		// the write buffer, never the disk): torn, not damaged.
		res.torn = true
		return res, nil
	}
	if string(data[:8]) != walMagic {
		res.corrupt = true
		res.complain = fmt.Errorf("store: %s: bad segment header", filepath.Base(path))
		return res, nil
	}
	if seq := binary.BigEndian.Uint64(data[8:16]); seq != wantSeq {
		res.corrupt = true
		res.complain = fmt.Errorf("store: %s: header seq %d does not match filename", filepath.Base(path), seq)
		return res, nil
	}
	res.bytes = walHeaderLen
	off := walHeaderLen
	for off < len(data) {
		if off+frameHeader > len(data) {
			res.torn = true // partial frame header at the tail
			return res, nil
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		if n > maxRecord {
			// An insane length is indistinguishable from a torn length
			// field when it is the last thing in the file; treat it as
			// corruption only if intact bytes follow it (they cannot,
			// since we cannot find the next frame) — so: torn at tail.
			res.torn = true
			res.complain = fmt.Errorf("store: %s: frame length %d exceeds limit", filepath.Base(path), n)
			return res, nil
		}
		if off+frameHeader+n > len(data) {
			res.torn = true // partial payload at the tail
			return res, nil
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, crcTable) != sum {
			if off+frameHeader+n == len(data) {
				res.torn = true // torn inside the final frame's payload
				return res, nil
			}
			res.corrupt = true
			res.complain = fmt.Errorf("store: %s: checksum mismatch at offset %d", filepath.Base(path), off)
			return res, nil
		}
		rec, err := decodeWALPayload(payload)
		if err != nil {
			if off+frameHeader+n == len(data) {
				res.torn = true
				return res, nil
			}
			res.corrupt = true
			res.complain = fmt.Errorf("store: %s: %v", filepath.Base(path), err)
			return res, nil
		}
		res.records = append(res.records, rec)
		off += frameHeader + n
		res.bytes = int64(off)
	}
	return res, nil
}
