package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot files: snap-<seq>.snap, the compacted image of the whole store
// at one instant —
//
//	magic | body | crc32c(body)
//	body = seq u64 | walSeq u64 | alertHead u64 | nDevices u32 | entries | nAlerts u32 | alerts
//
// walSeq is the sequence number of the first WAL segment *not* covered by
// the snapshot: recovery loads the snapshot and replays segments ≥ walSeq.
// alertHead is the sequence number of the newest alert ever appended; the
// retained alerts are the contiguous tail head-n+1 … head (MaxAlerts only
// ever trims the front), so per-alert seqs are derived positionally on
// decode rather than stored. Snapshots are written to a temp file,
// fsynced, and renamed into place, so a crash mid-write leaves no half
// snapshot under the final name; a trailing whole-body checksum rejects
// anything the filesystem still managed to mangle, falling back to the
// previous snapshot.

const snapMagic = "ERASNAP2"

func snapName(seq uint64) string { return fmt.Sprintf("snap-%08d.snap", seq) }

// snapshotImage is a decoded snapshot.
type snapshotImage struct {
	seq       uint64
	walSeq    uint64
	alertHead uint64
	devices   []DeviceState
	alerts    []AlertEvent
	bytes     int64
}

// encodeSnapshot serializes the store's state. Devices are written in
// sorted address order so identical state always produces identical bytes.
func encodeSnapshot(seq, walSeq, alertHead uint64, devices []DeviceState, alerts []AlertEvent) []byte {
	sorted := append([]DeviceState(nil), devices...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })
	w := writer{b: make([]byte, 0, len(snapMagic)+32+len(sorted)*160)}
	w.b = append(w.b, snapMagic...)
	w.u64(seq)
	w.u64(walSeq)
	w.u64(alertHead)
	w.u32(uint32(len(sorted)))
	for _, st := range sorted {
		w.b = append(w.b, encodeSnapshotEntry(st)...)
	}
	w.u32(uint32(len(alerts)))
	for _, ev := range alerts {
		aw := writer{}
		aw.i64(ev.Time)
		aw.str(ev.Device)
		aw.str(ev.Kind)
		aw.str(ev.Detail)
		w.b = append(w.b, aw.b...)
	}
	body := w.b[len(snapMagic):]
	w.u32(crc32.Checksum(body, crcTable))
	return w.b
}

// decodeSnapshot parses and checksum-validates a snapshot image.
func decodeSnapshot(data []byte) (snapshotImage, error) {
	var img snapshotImage
	if len(data) < len(snapMagic)+32+4 || string(data[:len(snapMagic)]) != snapMagic {
		return img, fmt.Errorf("store: not a snapshot (%d bytes)", len(data))
	}
	body := data[len(snapMagic) : len(data)-4]
	sum := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return img, fmt.Errorf("store: snapshot checksum mismatch")
	}
	r := reader{b: body}
	img.seq = r.u64()
	img.walSeq = r.u64()
	img.alertHead = r.u64()
	nDev := int(r.u32())
	if r.err != nil || nDev < 0 || nDev > len(body)/3 {
		return img, errCorrupt
	}
	img.devices = make([]DeviceState, 0, nDev)
	for i := 0; i < nDev; i++ {
		st, err := decodeSnapshotEntry(&r)
		if err != nil {
			return snapshotImage{}, err
		}
		// The writer emits entries in strictly ascending address order; a
		// violation means the image was not produced by encodeSnapshot.
		if i > 0 && st.Addr <= img.devices[i-1].Addr {
			return snapshotImage{}, fmt.Errorf("store: snapshot entries out of order at %q", st.Addr)
		}
		img.devices = append(img.devices, st)
	}
	nAl := int(r.u32())
	if r.err != nil || nAl < 0 || nAl > len(body)/8 {
		return img, errCorrupt
	}
	// Retained alerts are the contiguous tail of the stream: derive their
	// seqs from the head positionally. A head smaller than the retained
	// count cannot have been produced by encodeSnapshot.
	if uint64(nAl) > img.alertHead {
		return snapshotImage{}, fmt.Errorf("store: snapshot alert head %d < retained count %d", img.alertHead, nAl)
	}
	img.alerts = make([]AlertEvent, 0, nAl)
	for i := 0; i < nAl; i++ {
		var ev AlertEvent
		ev.Seq = img.alertHead - uint64(nAl) + uint64(i) + 1
		ev.Time = r.i64()
		ev.Device = r.str()
		ev.Kind = r.str()
		ev.Detail = r.str()
		if r.err != nil {
			return snapshotImage{}, r.err
		}
		img.alerts = append(img.alerts, ev)
	}
	if err := r.done(); err != nil {
		return snapshotImage{}, err
	}
	img.bytes = int64(len(data))
	return img, nil
}

// writeSnapshotFile atomically persists an encoded snapshot under
// snap-<seq>.snap: temp file, fsync, rename, directory fsync.
func writeSnapshotFile(dir string, seq uint64, data []byte) error {
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, snapName(seq))); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and removals are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
