package store

import (
	"testing"

	"erasmus/internal/core"
)

// Fuzz targets for everything the store parses back off the disk: WAL
// record payloads and snapshot images. Disk bytes owe the reader nothing
// — crash truncation, bit rot, or a hostile operator may have produced
// any byte string — so corrupt or truncated input must yield an error,
// never a panic or a multi-gigabyte allocation. Run with
// `go test -fuzz FuzzDecodeWALPayload ./internal/store`; the seeds below
// also execute as ordinary unit tests.

func fuzzWM() core.Watermark {
	return core.Watermark{
		T:    0x1122334455667788,
		Hash: []byte{1, 2, 3, 4, 5, 6, 7, 8},
		MAC:  []byte{9, 10, 11, 12, 13, 14, 15, 16},
	}
}

func FuzzDecodeWALPayload(f *testing.F) {
	f.Add(encodeWatermark("dev-000001", fuzzWM()))
	f.Add(encodeWatermark("d", core.Watermark{}))
	chained := fuzzWM()
	chained.Chain = []byte{0xC0, 0xC1, 0xC2, 0xC3, 0xC4, 0xC5, 0xC6, 0xC7}
	f.Add(encodeWatermark("dev-000009", chained))
	f.Add(encodeStatus(DeviceState{
		Addr: "dev-000002", HasStatus: true, Healthy: true, HasAnchor: true,
		RegisteredAt: 1, ScheduleAnchor: 2, LastContact: 3, Freshness: 4,
		Failures: 5, Collections: 6,
	}))
	f.Add(encodeAlert(AlertEvent{Time: 42, Device: "dev-000003", Kind: "tamper", Detail: "x"}))
	f.Add([]byte{})
	f.Add([]byte{recWatermark})
	f.Add([]byte{recStatus, 0xFF, 0xFF})
	f.Add([]byte{0xEE, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeWALPayload(data)
		if err != nil {
			return
		}
		// A decodable payload must re-encode to the identical bytes —
		// the codec admits no ambiguous representations.
		var again []byte
		switch rec.kind {
		case recWatermark:
			again = encodeWatermark(rec.device, rec.wm)
		case recStatus:
			again = encodeStatus(rec.status)
		case recAlert:
			again = encodeAlert(rec.alert)
		default:
			t.Fatalf("decoder accepted unknown kind %d", rec.kind)
		}
		if string(again) != string(data) {
			t.Fatalf("decode/encode not idempotent:\nin:  %x\nout: %x", data, again)
		}
	})
}

func FuzzDecodeSnapshot(f *testing.F) {
	devices := []DeviceState{
		{Addr: "dev-000001", HasWatermark: true, Watermark: fuzzWM()},
		{
			Addr: "dev-000002", HasStatus: true, Healthy: true,
			RegisteredAt: 10, LastContact: 20, Collections: 2,
		},
		{Addr: "dev-000003", HasWatermark: true, Watermark: fuzzWM(), HasStatus: true},
	}
	devices[2].Watermark.Chain = []byte{0xD0, 0xD1, 0xD2, 0xD3, 0xD4, 0xD5}
	alerts := []AlertEvent{{Time: 7, Device: "dev-000002", Kind: "infection", Detail: "wave"}}
	f.Add(encodeSnapshot(3, 9, 5, devices, alerts))
	f.Add(encodeSnapshot(1, 1, 0, nil, nil))
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	f.Add(append([]byte(snapMagic), make([]byte, 36)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		// Whatever survives the checksum must re-encode bit-identically
		// (encodeSnapshot sorts by address; a valid image is sorted, and
		// per-alert seqs are positional so re-encoding drops them cleanly).
		again := encodeSnapshot(img.seq, img.walSeq, img.alertHead, img.devices, img.alerts)
		if string(again) != string(data) {
			t.Fatalf("snapshot decode/encode not idempotent:\nin:  %x\nout: %x", data, again)
		}
	})
}
