package store

import (
	"encoding/binary"
	"errors"
	"fmt"

	"erasmus/internal/core"
)

// Binary codec for WAL record payloads and snapshot device entries. All
// integers are big-endian and fixed-width; strings and byte fields carry a
// uint16 length prefix. Every decoder is defensive: the bytes come from
// disk, which crash truncation, bit rot, or a hostile operator may have
// mangled — a bad input must produce an error, never a panic or an
// over-allocation (fuzzed in fuzz_test.go).

// WAL record payload kinds.
const (
	recWatermark byte = 1 // device watermark set / clear
	recStatus    byte = 2 // fleet per-device status update
	recAlert     byte = 3 // alert event
)

// maxField bounds any single length-prefixed field; maxRecord bounds one
// framed WAL record. Both exist so a corrupt length prefix cannot ask the
// reader to allocate gigabytes.
const (
	maxField  = 1 << 12
	maxRecord = 1 << 16
)

var errCorrupt = errors.New("store: corrupt record")

// walRecord is one decoded WAL payload.
type walRecord struct {
	kind   byte
	device string
	wm     core.Watermark // recWatermark (zero = clear)
	status DeviceState    // recStatus (status fields only)
	alert  AlertEvent     // recAlert
}

// reader walks a byte slice with sticky error handling: after the first
// short read every accessor returns zeros and the error survives.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = errCorrupt
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i64() int64 { return int64(r.u64()) }

// bytes reads a uint16-length-prefixed field, copying out of the backing
// buffer (decoded state outlives the segment read buffer).
func (r *reader) bytes() []byte {
	n := int(r.u16())
	if r.err != nil {
		return nil
	}
	if n > maxField || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	v := append([]byte(nil), r.b[r.off:r.off+n]...)
	r.off += n
	return v
}

func (r *reader) str() string { return string(r.bytes()) }

// done reports decoding success: no error and no trailing garbage.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("store: %d trailing bytes after record", len(r.b)-r.off)
	}
	return nil
}

// writer builds a payload. Appends never fail.
type writer struct{ b []byte }

func (w *writer) u8(v byte)    { w.b = append(w.b, v) }
func (w *writer) u16(v uint16) { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) bytes(v []byte) {
	if len(v) > maxField {
		v = v[:maxField] // cannot happen for real state; never write an undecodable record
	}
	w.u16(uint16(len(v)))
	w.b = append(w.b, v...)
}
func (w *writer) str(v string) { w.bytes([]byte(v)) }

// status flag bits (shared by WAL status records and snapshot entries).
const (
	flagHealthy     = 1 << 0
	flagUnreachable = 1 << 1
	flagHasAnchor   = 1 << 2
	flagHasWM       = 1 << 3 // snapshot entries only
	flagHasStatus   = 1 << 4 // snapshot entries only
	flagHasChain    = 1 << 5 // snapshot entries only: watermark carries chain state
)

func encodeWatermark(device string, wm core.Watermark) []byte {
	w := writer{b: make([]byte, 0, 16+len(device)+len(wm.Hash)+len(wm.MAC)+len(wm.Chain))}
	w.u8(recWatermark)
	w.str(device)
	w.u64(wm.T)
	w.bytes(wm.Hash)
	w.bytes(wm.MAC)
	// Chain state (aggregate tier) rides as a trailing optional field:
	// absent entirely when empty, so pre-aggregate WAL records decode
	// unchanged and a chain-less watermark round-trips to the old layout.
	if len(wm.Chain) > 0 {
		w.bytes(wm.Chain)
	}
	return w.b
}

func encodeStatus(st DeviceState) []byte {
	w := writer{b: make([]byte, 0, 48+len(st.Addr))}
	w.u8(recStatus)
	w.str(st.Addr)
	w.u8(statusFlags(st))
	w.i64(st.RegisteredAt)
	w.i64(st.ScheduleAnchor)
	w.i64(st.LastContact)
	w.i64(st.Freshness)
	w.u32(uint32(st.Failures))
	w.u32(uint32(st.Collections))
	return w.b
}

func statusFlags(st DeviceState) byte {
	var f byte
	if st.Healthy {
		f |= flagHealthy
	}
	if st.Unreachable {
		f |= flagUnreachable
	}
	if st.HasAnchor {
		f |= flagHasAnchor
	}
	return f
}

func encodeAlert(ev AlertEvent) []byte {
	w := writer{b: make([]byte, 0, 16+len(ev.Device)+len(ev.Kind)+len(ev.Detail))}
	w.u8(recAlert)
	w.i64(ev.Time)
	w.str(ev.Device)
	w.str(ev.Kind)
	w.str(ev.Detail)
	return w.b
}

// decodeWALPayload parses one framed WAL payload (the bytes the CRC
// covers). Corrupt or truncated input returns an error.
func decodeWALPayload(b []byte) (walRecord, error) {
	r := reader{b: b}
	var out walRecord
	out.kind = r.u8()
	switch out.kind {
	case recWatermark:
		out.device = r.str()
		out.wm.T = r.u64()
		out.wm.Hash = r.bytes()
		out.wm.MAC = r.bytes()
		if r.err == nil && r.off < len(r.b) {
			out.wm.Chain = r.bytes()
			if r.err == nil && len(out.wm.Chain) == 0 {
				// An explicitly empty chain field has no encoder image
				// (empty chains are simply omitted); reject it so
				// decode→encode stays byte-idempotent.
				return walRecord{}, errors.New("store: watermark record with empty chain field")
			}
		}
	case recStatus:
		out.status.Addr = r.str()
		flags := r.u8()
		if flags&^(flagHealthy|flagUnreachable|flagHasAnchor) != 0 {
			// The CRC passed, so this is not line noise: it is a flag this
			// version does not define. Refusing beats silently dropping
			// state a newer writer thought worth recording.
			return walRecord{}, fmt.Errorf("store: status record with undefined flags %#x", flags)
		}
		out.status.Healthy = flags&flagHealthy != 0
		out.status.Unreachable = flags&flagUnreachable != 0
		out.status.HasAnchor = flags&flagHasAnchor != 0
		out.status.HasStatus = true
		out.status.RegisteredAt = r.i64()
		out.status.ScheduleAnchor = r.i64()
		out.status.LastContact = r.i64()
		out.status.Freshness = r.i64()
		out.status.Failures = int(r.u32())
		out.status.Collections = int(r.u32())
		out.device = out.status.Addr
	case recAlert:
		out.alert.Time = r.i64()
		out.alert.Device = r.str()
		out.alert.Kind = r.str()
		out.alert.Detail = r.str()
	default:
		return walRecord{}, fmt.Errorf("store: unknown WAL record kind %d", out.kind)
	}
	if err := r.done(); err != nil {
		return walRecord{}, err
	}
	if out.kind != recAlert && out.device == "" {
		return walRecord{}, errors.New("store: record with empty device address")
	}
	return out, nil
}

// encodeSnapshotEntry serializes one device's merged durable state —
// watermark plus fleet status — as one compact (~150 B under keyed
// BLAKE2s) snapshot entry.
func encodeSnapshotEntry(st DeviceState) []byte {
	w := writer{}
	w.str(st.Addr)
	flags := statusFlags(st)
	if st.HasWatermark {
		flags |= flagHasWM
		if len(st.Watermark.Chain) > 0 {
			flags |= flagHasChain
		}
	}
	if st.HasStatus {
		flags |= flagHasStatus
	}
	w.u8(flags)
	if st.HasWatermark {
		w.u64(st.Watermark.T)
		w.bytes(st.Watermark.Hash)
		w.bytes(st.Watermark.MAC)
		if len(st.Watermark.Chain) > 0 {
			w.bytes(st.Watermark.Chain)
		}
	}
	if st.HasStatus {
		w.i64(st.RegisteredAt)
		w.i64(st.ScheduleAnchor)
		w.i64(st.LastContact)
		w.i64(st.Freshness)
		w.u32(uint32(st.Failures))
		w.u32(uint32(st.Collections))
	}
	return w.b
}

// decodeSnapshotEntry parses one device entry from r (entries are
// concatenated inside the snapshot body, so this reads a prefix rather
// than requiring r to be consumed).
func decodeSnapshotEntry(r *reader) (DeviceState, error) {
	var st DeviceState
	st.Addr = r.str()
	flags := r.u8()
	if r.err == nil && flags&^(flagHealthy|flagUnreachable|flagHasAnchor|flagHasWM|flagHasStatus|flagHasChain) != 0 {
		return DeviceState{}, fmt.Errorf("store: snapshot entry with undefined flags %#x", flags)
	}
	if r.err == nil && flags&flagHasChain != 0 && flags&flagHasWM == 0 {
		return DeviceState{}, errors.New("store: snapshot entry with chain state but no watermark")
	}
	st.Healthy = flags&flagHealthy != 0
	st.Unreachable = flags&flagUnreachable != 0
	st.HasAnchor = flags&flagHasAnchor != 0
	st.HasWatermark = flags&flagHasWM != 0
	st.HasStatus = flags&flagHasStatus != 0
	if st.HasWatermark {
		st.Watermark.T = r.u64()
		st.Watermark.Hash = r.bytes()
		st.Watermark.MAC = r.bytes()
		if flags&flagHasChain != 0 {
			st.Watermark.Chain = r.bytes()
			if r.err == nil && len(st.Watermark.Chain) == 0 {
				return DeviceState{}, errors.New("store: snapshot entry with empty chain field")
			}
		}
	}
	if st.HasStatus {
		st.RegisteredAt = r.i64()
		st.ScheduleAnchor = r.i64()
		st.LastContact = r.i64()
		st.Freshness = r.i64()
		st.Failures = int(r.u32())
		st.Collections = int(r.u32())
	}
	if r.err != nil {
		return DeviceState{}, r.err
	}
	if st.Addr == "" {
		return DeviceState{}, errors.New("store: snapshot entry with empty device address")
	}
	return st, nil
}
