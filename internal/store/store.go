// Package store is the verifier's durable state layer: an append-only,
// segmented, checksummed write-ahead log of watermark updates, per-device
// fleet status and alert events, compacted periodically into snapshots
// (one ~150 B entry per device), with crash-consistent recovery.
//
// The paper's verifier is long-lived state — per-device RROC watermarks
// and tamper verdicts only pay off if they survive the verifier process.
// Without this layer a restart silently degrades the whole fleet to
// stateless full re-verification and re-raises already-seen alerts; with
// it, recovery is: load the newest intact snapshot, replay the WAL
// segments it does not cover (tolerating a torn tail — the normal residue
// of a crash mid-append), and resume delta collection exactly where the
// dead process stopped.
//
// Durability model: appends are buffered and become durable at Sync (or
// Close, or a snapshot). A crash loses at most the un-synced tail, never
// corrupts what came before, and every record is self-contained with
// last-writer-wins per-device semantics — so replay order only matters
// within one device, which segment ordering preserves.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"erasmus/internal/core"
)

// DeviceState is one device's durable verifier-side state: the incremental
// verification watermark plus the fleet manager's per-device bookkeeping.
// Either half may be absent (HasWatermark / HasStatus); time fields are
// virtual-time ticks (int64 nanoseconds, matching sim.Ticks).
type DeviceState struct {
	Addr string

	// Watermark state (core incremental verification).
	HasWatermark bool
	Watermark    core.Watermark

	// Fleet status state.
	HasStatus    bool
	Healthy      bool
	Unreachable  bool
	HasAnchor    bool  // ScheduleAnchor is meaningful
	RegisteredAt int64 // virtual time the device joined the fleet
	// ScheduleAnchor is the virtual time of the device's first scheduled
	// collection: a restarted manager resumes the ticker at the next
	// anchor + n×TC instead of re-staggering, so the resumed collection
	// times are identical to an uninterrupted run's.
	ScheduleAnchor int64
	LastContact    int64
	Freshness      int64
	Failures       int
	Collections    int
}

// AlertEvent is one persisted fleet alert. Seq is the store-assigned
// monotone sequence number (1, 2, 3, … in append order): the resumable
// cursor of the streaming API. Seq is positional, not persisted per
// record — WAL replay re-derives identical numbers because alerts replay
// in append order, and a snapshot carries the head so trimmed history
// keeps its numbering. Callers never set it; AppendAlert assigns.
type AlertEvent struct {
	Seq    uint64
	Time   int64
	Device string
	Kind   string
	Detail string
}

// Options tunes a Store. The zero value is usable.
type Options struct {
	// SegmentBytes rotates the WAL to a fresh segment once the current one
	// exceeds this size (default 4 MiB). Rotation bounds the cost of
	// quarantining one damaged segment; space is reclaimed by snapshots.
	SegmentBytes int64
	// SnapshotEvery, when positive, compacts automatically after that many
	// appended records. Zero means snapshots are taken only by explicit
	// Snapshot calls.
	SnapshotEvery int
	// MaxAlerts, when positive, bounds the retained alert history: once
	// exceeded, the oldest events are dropped from memory and from future
	// snapshots (the WAL still journals every event until compaction).
	// Zero retains everything — right for bounded experiments and for the
	// crash-equivalence guarantee that a recovered manager's Alerts()
	// reproduces the predecessor's full stream; long-lived deployments
	// should set a bound, since alert history otherwise grows without
	// limit across snapshots, recoveries and resident memory.
	MaxAlerts int
	// Metrics, when set, observes the store (WAL append/fsync latency,
	// rotations, snapshots, recovery, sticky errors). Nil disables
	// instrumentation at the cost of one nil-check per operation.
	Metrics *Metrics
}

// Stats summarizes a store's footprint.
type Stats struct {
	Devices       int   // devices tracked
	Watermarked   int   // devices with a watermark
	Alerts        int   // alert events retained
	Segments      int   // live WAL segments (including the open one)
	WALBytes      int64 // bytes across live WAL segments
	SnapshotBytes int64 // size of the newest snapshot (0 = none yet)
}

// RecoveryInfo reports what Open found and did.
type RecoveryInfo struct {
	SnapshotSeq      uint64 // snapshot loaded (0 = none)
	SnapshotDevices  int    // devices in that snapshot
	SegmentsReplayed int    // WAL segments replayed after the snapshot
	RecordsReplayed  int    // records applied from those segments
	TornTail         bool   // a truncated final record was dropped (normal after a crash)
	Quarantined      []string
	Notes            []string
}

// Store plugs into core.AttestationService as both the journal for
// watermark updates and the re-hydration source for evicted devices.
var (
	_ core.StateSink   = (*Store)(nil)
	_ core.StateSource = (*Store)(nil)
)

// Store is the durable verifier state store. Safe for concurrent use; all
// I/O errors are sticky (once a write fails, every later mutation returns
// the same error rather than diverging memory from disk).
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options

	devices map[string]DeviceState
	alerts  []AlertEvent
	// alertHead is the sequence number of the newest alert ever appended
	// (retained or not); alerts[i].Seq == alertHead - len(alerts) + 1 + i.
	alertHead uint64

	seg         *segmentWriter
	closedBytes int64 // bytes in closed-but-live segments
	closedSegs  int
	snapSeq     uint64
	snapBytes   int64
	sinceSnap   int // records appended since the last snapshot

	recovery RecoveryInfo
	err      error // sticky I/O failure
	closed   bool
}

// Open opens (creating if necessary) a store rooted at dir and recovers
// its state: newest intact snapshot, then WAL replay of every segment the
// snapshot does not cover. Damaged snapshots and mid-segment-corrupt WAL
// segments are renamed *.quarantined and recovery continues; a torn final
// record is silently dropped (crash residue, not damage). Open never
// appends to a recovered segment — it always starts a fresh one — so a
// torn tail can never be extended into ambiguity.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, devices: make(map[string]DeviceState)}

	snaps, segs, err := scanDir(dir)
	if err != nil {
		return nil, err
	}

	// Newest intact snapshot wins; anything newer that fails its checksum
	// is quarantined and the previous snapshot is the fallback.
	walStart := uint64(1)
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, snapName(snaps[i])))
		if err != nil {
			return nil, err
		}
		img, derr := decodeSnapshot(data)
		if derr != nil {
			if qerr := s.quarantine(snapName(snaps[i]), derr); qerr != nil {
				return nil, qerr
			}
			continue
		}
		for _, st := range img.devices {
			s.devices[st.Addr] = st
		}
		s.alerts = append(s.alerts, img.alerts...)
		s.alertHead = img.alertHead
		s.snapSeq = img.seq
		s.snapBytes = img.bytes
		walStart = img.walSeq
		s.recovery.SnapshotSeq = img.seq
		s.recovery.SnapshotDevices = len(img.devices)
		break
	}

	// Segments the snapshot covers are dead weight (a crash between
	// snapshot rename and truncation leaves them behind): delete now.
	maxSeq := walStart - 1
	for i, seq := range segs {
		if seq < walStart {
			if err := os.Remove(filepath.Join(dir, walName(seq))); err != nil {
				return nil, err
			}
			continue
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		res, err := readSegment(filepath.Join(dir, walName(seq)), seq)
		if err != nil {
			return nil, err
		}
		for _, rec := range res.records {
			s.apply(rec)
		}
		s.recovery.SegmentsReplayed++
		s.recovery.RecordsReplayed += len(res.records)
		switch {
		case res.corrupt:
			if err := s.quarantine(walName(seq), res.complain); err != nil {
				return nil, err
			}
		case res.torn:
			if i == len(segs)-1 {
				s.recovery.TornTail = true
			} else {
				// A torn non-final segment should be impossible (rotation
				// happens after a successful sync) but bytes on disk owe us
				// nothing; its intact prefix was applied, note it and go on.
				s.note("segment %s torn before the newest segment", walName(seq))
			}
			if res.complain != nil {
				s.note("%v", res.complain)
			}
		default:
			s.closedBytes += res.bytes
			s.closedSegs++
		}
	}

	seg, err := createSegment(dir, maxSeq+1)
	if err != nil {
		return nil, err
	}
	s.seg = seg
	if err := syncDir(dir); err != nil {
		seg.close() //erasmus:allow(droppederr) best-effort release; the directory-fsync error below supersedes it
		return nil, err
	}
	if m := opts.Metrics; m != nil {
		m.RecoveryRecordsReplayed.Set(int64(s.recovery.RecordsReplayed))
		m.RecoverySegmentsReplayed.Set(int64(s.recovery.SegmentsReplayed))
		m.SnapshotBytes.Set(s.snapBytes)
		m.footprint(s)
	}
	return s, nil
}

// scanDir lists snapshot and WAL segment sequence numbers, each ascending.
func scanDir(dir string) (snaps, segs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		var seq uint64
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if _, err := fmt.Sscanf(name, "snap-%d.snap", &seq); err == nil {
				snaps = append(snaps, seq)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if _, err := fmt.Sscanf(name, "wal-%d.log", &seq); err == nil {
				segs = append(segs, seq)
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return snaps, segs, nil
}

// quarantine renames a damaged file out of the store's working set.
func (s *Store) quarantine(name string, why error) error {
	if err := os.Rename(filepath.Join(s.dir, name), filepath.Join(s.dir, name+".quarantined")); err != nil {
		return err
	}
	s.recovery.Quarantined = append(s.recovery.Quarantined, name)
	if why != nil {
		s.note("%s quarantined: %v", name, why)
	}
	return nil
}

func (s *Store) note(format string, args ...any) {
	s.recovery.Notes = append(s.recovery.Notes, fmt.Sprintf(format, args...))
}

// apply folds one WAL record into the in-memory image (last-writer-wins
// per device; alerts append in order).
func (s *Store) apply(rec walRecord) {
	switch rec.kind {
	case recWatermark:
		st := s.devices[rec.device]
		st.Addr = rec.device
		if rec.wm.IsZero() {
			st.HasWatermark = false
			st.Watermark = core.Watermark{}
			if !st.HasStatus {
				delete(s.devices, rec.device)
				return
			}
		} else {
			st.HasWatermark = true
			st.Watermark = rec.wm
		}
		s.devices[rec.device] = st
	case recStatus:
		st := s.devices[rec.device]
		wm, hasWM := st.Watermark, st.HasWatermark
		st = rec.status
		st.Watermark, st.HasWatermark = wm, hasWM
		s.devices[rec.device] = st
	case recAlert:
		// Sequence numbers are positional: the Nth alert ever applied is
		// seq N, whether it arrives from AppendAlert or WAL replay (replay
		// preserves append order, so a recovered store re-derives the
		// exact numbering of the run that crashed).
		s.alertHead++
		rec.alert.Seq = s.alertHead
		s.alerts = append(s.alerts, rec.alert)
		if s.opts.MaxAlerts > 0 && len(s.alerts) > s.opts.MaxAlerts {
			// Re-slicing keeps memory bounded at ~2× the window: append
			// reuses the backing array's tail until capacity runs out,
			// then reallocates just the retained suffix.
			s.alerts = s.alerts[len(s.alerts)-s.opts.MaxAlerts:]
		}
	}
}

// Recovery returns what Open found.
func (s *Store) Recovery() RecoveryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Err returns the sticky I/O error, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// fail latches err as the sticky I/O failure (first writer wins) and
// mirrors it to the sticky-error gauge. Callers hold s.mu.
func (s *Store) fail(err error) error {
	if s.err == nil {
		s.err = err
	}
	s.opts.Metrics.sticky()
	return err
}

// append journals one encoded payload, rotating and auto-snapshotting per
// policy. Callers hold s.mu and have already updated the memory image.
//
//erasmus:wallpaced append-latency metrics time real disk writes; no virtual-time path reads them
func (s *Store) append(payload []byte) error {
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return s.fail(fmt.Errorf("store: %s: append after Close", s.dir))
	}
	m := s.opts.Metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	if err := s.seg.append(payload); err != nil {
		return s.fail(err)
	}
	if m != nil {
		m.observeAppend(len(payload), time.Since(start).Seconds())
		m.footprint(s)
	}
	s.sinceSnap++
	if s.opts.SnapshotEvery > 0 && s.sinceSnap >= s.opts.SnapshotEvery {
		return s.snapshotLocked()
	}
	if s.seg.bytes >= s.opts.SegmentBytes {
		return s.rotateLocked()
	}
	return nil
}

// rotateLocked seals the current segment (durable) and opens the next.
func (s *Store) rotateLocked() error {
	if err := s.syncTimed(); err != nil {
		return s.fail(err)
	}
	s.closedBytes += s.seg.bytes
	s.closedSegs++
	seq := s.seg.seq
	if err := s.seg.close(); err != nil {
		return s.fail(err)
	}
	seg, err := createSegment(s.dir, seq+1)
	if err != nil {
		return s.fail(err)
	}
	s.seg = seg
	if m := s.opts.Metrics; m != nil {
		m.RotationsTotal.Inc()
		m.footprint(s)
	}
	return nil
}

// syncTimed flushes+fsyncs the open segment, feeding the fsync-latency
// histogram. Callers hold s.mu.
//
//erasmus:wallpaced fsync-latency metrics time a real fsync; no virtual-time path reads them
func (s *Store) syncTimed() error {
	m := s.opts.Metrics
	if m == nil {
		return s.seg.sync()
	}
	start := time.Now()
	err := s.seg.sync()
	m.observeFsync(time.Since(start).Seconds())
	return err
}

// SetWatermark journals a watermark update for the device; a zero
// watermark journals a clear (the device fell back to stateless
// verification). Calls arrive in verdict-application order and replay in
// that order. Implements core.StateSink.
func (s *Store) SetWatermark(device string, wm core.Watermark) error {
	if device == "" {
		return errCorrupt
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.apply(walRecord{kind: recWatermark, device: device, wm: wm})
	return s.append(encodeWatermark(device, wm))
}

// LoadWatermark returns the device's stored watermark, if any. Implements
// core.StateSource: a memory-evicted device re-hydrates from here instead
// of paying a stateless full re-verification round.
func (s *Store) LoadWatermark(device string) (core.Watermark, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.devices[device]
	if !ok || !st.HasWatermark {
		return core.Watermark{}, false
	}
	return st.Watermark, true
}

// PutStatus journals the device's fleet status (the watermark half of the
// entry, if any, is untouched).
func (s *Store) PutStatus(st DeviceState) error {
	if st.Addr == "" {
		return errCorrupt
	}
	st.HasStatus = true
	st.HasWatermark, st.Watermark = false, core.Watermark{} // status records carry no watermark
	s.mu.Lock()
	defer s.mu.Unlock()
	s.apply(walRecord{kind: recStatus, device: st.Addr, status: st})
	return s.append(encodeStatus(st))
}

// AppendAlert journals one alert event. Any caller-set Seq is ignored:
// the store assigns the next monotone sequence number (readable back via
// Alerts/AlertsSince).
func (s *Store) AppendAlert(ev AlertEvent) error {
	ev.Seq = 0
	s.mu.Lock()
	defer s.mu.Unlock()
	s.apply(walRecord{kind: recAlert, alert: ev})
	return s.append(encodeAlert(ev))
}

// State returns one device's durable state.
func (s *Store) State(device string) (DeviceState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.devices[device]
	return st, ok
}

// Devices returns every tracked device, sorted by address.
func (s *Store) Devices() []DeviceState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DeviceState, 0, len(s.devices))
	for _, st := range s.devices {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Alerts returns the persisted alert stream in append order.
func (s *Store) Alerts() []AlertEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]AlertEvent(nil), s.alerts...)
}

// AlertHead returns the sequence number of the newest alert ever
// appended (0 = none yet). It counts trimmed history too: with
// MaxAlerts set, AlertHead may exceed the Seq range returned by Alerts.
func (s *Store) AlertHead() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alertHead
}

// AlertsSince returns the retained alerts with Seq > since, in append
// order. gap reports whether alerts in (since, first-retained) have been
// trimmed away (MaxAlerts): the caller missed events it can never read
// back and should surface an explicit gap marker rather than silently
// skipping. A since at or beyond the head returns (nil, false).
func (s *Store) AlertsSince(since uint64) (alerts []AlertEvent, gap bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	oldest := s.alertHead - uint64(len(s.alerts)) // seq of last trimmed alert
	if since < oldest {
		gap = true
		since = oldest
	}
	if since >= s.alertHead {
		return nil, gap
	}
	start := int(since - oldest)
	return append([]AlertEvent(nil), s.alerts[start:]...), gap
}

// Stats reports the store's footprint.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Devices:       len(s.devices),
		Alerts:        len(s.alerts),
		Segments:      s.closedSegs,
		WALBytes:      s.closedBytes,
		SnapshotBytes: s.snapBytes,
	}
	if s.seg != nil {
		st.Segments++
		st.WALBytes += s.seg.bytes
	}
	for _, d := range s.devices {
		if d.HasWatermark {
			st.Watermarked++
		}
	}
	return st
}

// Sync makes every appended record durable (flush + fsync).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return nil
	}
	if err := s.syncTimed(); err != nil {
		s.fail(err) //erasmus:allow(droppederr) fail IS the sticky latch; Sync returns s.err just below
	}
	return s.err
}

// Snapshot compacts the store: the full in-memory image is written as a
// new snapshot (atomically: temp file, fsync, rename, directory fsync)
// and every WAL segment it covers is deleted. After a snapshot, recovery
// cost is one snapshot read plus the records appended since.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return s.fail(fmt.Errorf("store: %s: snapshot after Close", s.dir))
	}
	return s.snapshotLocked()
}

// snapshotLocked writes the compacting snapshot. Callers hold s.mu.
//
//erasmus:wallpaced snapshot-latency metrics time a real disk write; no virtual-time path reads them
func (s *Store) snapshotLocked() error {
	m := s.opts.Metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	// Seal the open segment first: the snapshot claims to cover it, so its
	// contents must not outlive it in an un-synced buffer.
	if err := s.syncTimed(); err != nil {
		return s.fail(err)
	}
	covered := s.seg.seq
	if err := s.seg.close(); err != nil {
		return s.fail(err)
	}
	s.seg = nil

	devices := make([]DeviceState, 0, len(s.devices))
	//erasmus:allow(maporder) encodeSnapshot sorts entries by Addr; decode enforces sorted order
	for _, st := range s.devices {
		devices = append(devices, st)
	}
	newSeq := s.snapSeq + 1
	data := encodeSnapshot(newSeq, covered+1, s.alertHead, devices, s.alerts)
	if err := writeSnapshotFile(s.dir, newSeq, data); err != nil {
		return s.fail(err)
	}
	oldSnap := s.snapSeq
	s.snapSeq = newSeq
	s.snapBytes = int64(len(data))
	s.sinceSnap = 0

	// Truncate: the covered segments and all but the immediately previous
	// snapshot (kept as the fallback should the new one rot on disk — its
	// WAL suffix is gone, so falling back loses the delta, but that beats
	// losing everything). A crash anywhere in here only leaves extra
	// files Open will delete or ignore.
	snaps, segs, err := scanDir(s.dir)
	if err != nil {
		return s.fail(err)
	}
	for _, seq := range segs {
		if seq <= covered {
			if err := os.Remove(filepath.Join(s.dir, walName(seq))); err != nil {
				return s.fail(err)
			}
		}
	}
	for _, seq := range snaps {
		if seq < oldSnap {
			if err := os.Remove(filepath.Join(s.dir, snapName(seq))); err != nil {
				return s.fail(err)
			}
		}
	}
	s.closedBytes, s.closedSegs = 0, 0
	seg, err := createSegment(s.dir, covered+1)
	if err != nil {
		return s.fail(err)
	}
	s.seg = seg
	if err := syncDir(s.dir); err != nil {
		return s.fail(err)
	}
	if m != nil {
		m.SnapshotSeconds.Observe(time.Since(start).Seconds())
		m.SnapshotsTotal.Inc()
		m.SnapshotBytes.Set(s.snapBytes)
		m.footprint(s)
	}
	return nil
}

// Close syncs and closes the store. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.seg != nil {
		if err := s.syncTimed(); err != nil && s.err == nil {
			s.fail(err) //erasmus:allow(droppederr) fail IS the sticky latch; Close returns s.err just below
		}
		if err := s.seg.close(); err != nil && s.err == nil {
			s.fail(err) //erasmus:allow(droppederr) fail IS the sticky latch; Close returns s.err just below
		}
		s.seg = nil
	}
	return s.err
}
