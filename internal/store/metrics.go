package store

import "erasmus/internal/obs"

// Metrics instruments the durable state layer: WAL append and fsync
// latency, segment rotations, snapshot cost, recovery footprint and the
// sticky-error flag. A nil *Metrics is fully inert (one nil-check per
// observation), so an uninstrumented store behaves byte-identically.
type Metrics struct {
	// AppendSeconds observes the buffered WAL append (frame + memcpy, no
	// I/O syscall on the common path); AppendsTotal / AppendBytesTotal
	// count records and payload bytes journaled.
	AppendSeconds    *obs.Histogram
	AppendsTotal     *obs.Counter
	AppendBytesTotal *obs.Counter

	// FsyncSeconds observes every flush+fsync (Sync, rotation, snapshot
	// seal): the WAL fsync lag a live verifier must watch.
	FsyncSeconds *obs.Histogram

	// RotationsTotal counts sealed WAL segments.
	RotationsTotal *obs.Counter

	// SnapshotSeconds / SnapshotsTotal observe compactions;
	// SnapshotBytes is the newest snapshot's size.
	SnapshotSeconds *obs.Histogram
	SnapshotsTotal  *obs.Counter
	SnapshotBytes   *obs.Gauge

	// WALBytes tracks the live WAL footprint (closed segments + open one).
	WALBytes *obs.Gauge

	// DevicesTracked is the number of devices in the in-memory image.
	DevicesTracked *obs.Gauge

	// StickyError is 1 once any I/O failure made the store read-only-ish
	// (mutations keep returning the first error). The /healthz signal.
	StickyError *obs.Gauge

	// RecoveryRecordsReplayed / RecoverySegmentsReplayed report what the
	// last Open replayed (gauges: set once at open).
	RecoveryRecordsReplayed  *obs.Gauge
	RecoverySegmentsReplayed *obs.Gauge
}

// NewMetrics registers the store metric set on r. A nil registry yields a
// nil *Metrics, valid and inert wherever Options.Metrics accepts one.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		AppendSeconds: r.Histogram("erasmus_wal_append_seconds",
			"Buffered WAL append latency.", obs.LatencyBuckets),
		AppendsTotal: r.Counter("erasmus_wal_appends_total",
			"WAL records journaled."),
		AppendBytesTotal: r.Counter("erasmus_wal_append_bytes_total",
			"WAL payload bytes journaled."),
		FsyncSeconds: r.Histogram("erasmus_wal_fsync_seconds",
			"WAL flush+fsync latency (Sync, rotation, snapshot seal).", obs.LatencyBuckets),
		RotationsTotal: r.Counter("erasmus_wal_segment_rotations_total",
			"WAL segments sealed and rotated."),
		SnapshotSeconds: r.Histogram("erasmus_store_snapshot_seconds",
			"Snapshot compaction wall time.", obs.LatencyBuckets),
		SnapshotsTotal: r.Counter("erasmus_store_snapshots_total",
			"Snapshot compactions taken."),
		SnapshotBytes: r.Gauge("erasmus_store_snapshot_bytes",
			"Size of the newest snapshot."),
		WALBytes: r.Gauge("erasmus_store_wal_bytes",
			"Bytes across live WAL segments."),
		DevicesTracked: r.Gauge("erasmus_store_devices",
			"Devices tracked by the durable store."),
		StickyError: r.Gauge("erasmus_store_sticky_error",
			"1 once a store I/O failure became sticky (durability is gone)."),
		RecoveryRecordsReplayed: r.Gauge("erasmus_store_recovery_records_replayed",
			"WAL records replayed by the last Open."),
		RecoverySegmentsReplayed: r.Gauge("erasmus_store_recovery_segments_replayed",
			"WAL segments replayed by the last Open."),
	}
}

// observeAppend records one journaled payload.
func (m *Metrics) observeAppend(bytes int, secs float64) {
	if m == nil {
		return
	}
	m.AppendSeconds.Observe(secs)
	m.AppendsTotal.Inc()
	m.AppendBytesTotal.Add(uint64(bytes))
}

// observeFsync records one flush+fsync.
func (m *Metrics) observeFsync(secs float64) {
	if m == nil {
		return
	}
	m.FsyncSeconds.Observe(secs)
}

// sticky latches the sticky-error flag.
func (m *Metrics) sticky() {
	if m != nil {
		m.StickyError.Set(1)
	}
}

// footprint refreshes the size gauges. Callers hold s.mu.
func (m *Metrics) footprint(s *Store) {
	if m == nil {
		return
	}
	wal := s.closedBytes
	if s.seg != nil {
		wal += s.seg.bytes
	}
	m.WALBytes.Set(wal)
	m.DevicesTracked.Set(int64(len(s.devices)))
}
