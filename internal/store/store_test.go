package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"erasmus/internal/core"
)

func wm(t uint64, tag byte) core.Watermark {
	return core.Watermark{
		T:    t,
		Hash: []byte{tag, 0x01, 0x02, 0x03},
		MAC:  []byte{tag, 0xA0, 0xB0, 0xC0, 0xD0},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func wantWM(t *testing.T, s *Store, device string, want core.Watermark) {
	t.Helper()
	got, ok := s.LoadWatermark(device)
	if !ok {
		t.Fatalf("%s: no watermark", device)
	}
	if !got.Matches(core.Record{T: want.T, Hash: want.Hash, MAC: want.MAC}) {
		t.Fatalf("%s: watermark %+v, want %+v", device, got, want)
	}
}

// ---- basic durability ------------------------------------------------------

// The aggregate tier's chain state must survive both durability paths —
// WAL replay and snapshot — and a chain-less watermark must round-trip
// to the pre-aggregate layout (no trailing field, no phantom chain).
func TestWatermarkChainRoundTrip(t *testing.T) {
	dir := t.TempDir()
	chain := append([]byte("sha256-state:"), make([]byte, 95)...)
	withChain := wm(100, 1)
	withChain.Chain = chain

	s := mustOpen(t, dir, Options{})
	if err := s.SetWatermark("dev-chain", withChain); err != nil {
		t.Fatal(err)
	}
	if err := s.SetWatermark("dev-plain", wm(200, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// WAL replay.
	r := mustOpen(t, dir, Options{})
	got, ok := r.LoadWatermark("dev-chain")
	//erasmus:allow(ctcompare) persisted-chain round-trip assertion on test-known values; no prover-supplied operand, no timing oracle
	if !ok || string(got.Chain) != string(chain) {
		t.Fatalf("chain lost through WAL replay: %+v", got)
	}
	wantWM(t, r, "dev-chain", withChain)
	plain, ok := r.LoadWatermark("dev-plain")
	if !ok || plain.Chain != nil {
		t.Fatalf("chain-less watermark grew a chain: %+v", plain)
	}

	// Snapshot compaction.
	if err := r.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := mustOpen(t, dir, Options{})
	defer r2.Close()
	if r2.Recovery().SnapshotSeq == 0 {
		t.Fatal("snapshot not used")
	}
	got, ok = r2.LoadWatermark("dev-chain")
	//erasmus:allow(ctcompare) persisted-chain round-trip assertion on test-known values; no prover-supplied operand, no timing oracle
	if !ok || string(got.Chain) != string(chain) {
		t.Fatalf("chain lost through snapshot: %+v", got)
	}
	plain, ok = r2.LoadWatermark("dev-plain")
	if !ok || plain.Chain != nil {
		t.Fatalf("chain-less watermark grew a chain after snapshot: %+v", plain)
	}
}

func TestRoundTripThroughWAL(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.SetWatermark("dev-a", wm(100, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetWatermark("dev-b", wm(200, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetWatermark("dev-a", wm(150, 3)); err != nil { // supersedes
		t.Fatal(err)
	}
	if err := s.PutStatus(DeviceState{
		Addr: "dev-a", Healthy: true, HasAnchor: true,
		RegisteredAt: 5, ScheduleAnchor: 60, LastContact: 150,
		Freshness: 9, Failures: 0, Collections: 3,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAlert(AlertEvent{Time: 120, Device: "dev-b", Kind: "infection", Detail: "implant"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	ri := r.Recovery()
	if ri.SnapshotSeq != 0 || ri.RecordsReplayed != 5 || ri.TornTail {
		t.Fatalf("recovery %+v, want 5 WAL records and no snapshot", ri)
	}
	wantWM(t, r, "dev-a", wm(150, 3))
	wantWM(t, r, "dev-b", wm(200, 2))
	st, ok := r.State("dev-a")
	if !ok || !st.HasStatus || !st.Healthy || st.ScheduleAnchor != 60 || st.Collections != 3 {
		t.Fatalf("dev-a state %+v", st)
	}
	if !st.HasWatermark {
		t.Fatal("status update clobbered the watermark half of the entry")
	}
	alerts := r.Alerts()
	if len(alerts) != 1 || alerts[0].Device != "dev-b" || alerts[0].Kind != "infection" {
		t.Fatalf("alerts %+v", alerts)
	}
}

func TestSnapshotCompactsAndTruncates(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 50; i++ {
		if err := s.SetWatermark("dev", wm(uint64(i+1), byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Appends after the snapshot land in a fresh segment.
	if err := s.SetWatermark("post", wm(999, 9)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	ri := r.Recovery()
	if ri.SnapshotSeq != 1 || ri.SnapshotDevices != 1 {
		t.Fatalf("recovery %+v, want snapshot 1 with 1 device", ri)
	}
	if ri.RecordsReplayed != 1 {
		t.Fatalf("replayed %d records, want only the post-snapshot append", ri.RecordsReplayed)
	}
	wantWM(t, r, "dev", wm(50, 49))
	wantWM(t, r, "post", wm(999, 9))
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 512})
	for i := 0; i < 64; i++ {
		if err := s.SetWatermark("rot", wm(uint64(i+1), byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Segments < 2 {
		t.Fatalf("no rotation after 64 appends with 512-byte segments: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if ri := r.Recovery(); ri.RecordsReplayed != 64 {
		t.Fatalf("replayed %d of 64 records across rotated segments", ri.RecordsReplayed)
	}
	wantWM(t, r, "rot", wm(64, 63))
}

func TestAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SnapshotEvery: 10})
	for i := 0; i < 25; i++ {
		if err := s.SetWatermark("auto", wm(uint64(i+1), byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.SnapshotBytes == 0 {
		t.Fatal("SnapshotEvery never compacted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	ri := r.Recovery()
	if ri.SnapshotSeq == 0 {
		t.Fatalf("recovery ignored the auto-snapshot: %+v", ri)
	}
	if ri.RecordsReplayed >= 10 {
		t.Fatalf("replayed %d records; compaction should leave < 10", ri.RecordsReplayed)
	}
	wantWM(t, r, "auto", wm(25, 24))
}

// ---- recovery edge cases (ISSUE 5 satellite) ------------------------------

func TestRecoverEmptyDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fresh") // does not exist yet
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	ri := s.Recovery()
	if ri.SnapshotSeq != 0 || ri.SegmentsReplayed != 0 || ri.RecordsReplayed != 0 || ri.TornTail {
		t.Fatalf("empty dir recovered something: %+v", ri)
	}
	if n := len(s.Devices()); n != 0 {
		t.Fatalf("%d devices out of nothing", n)
	}
	// And it is immediately usable.
	if err := s.SetWatermark("d", wm(1, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverSnapshotWithoutWAL(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.SetWatermark("solo", wm(77, 7)); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Delete every WAL file: only the snapshot remains (e.g. the empty
	// post-snapshot segment was lost, or state was copied snapshot-only).
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range segs {
		if err := os.Remove(f); err != nil {
			t.Fatal(err)
		}
	}
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	ri := r.Recovery()
	if ri.SnapshotSeq != 1 || ri.SegmentsReplayed != 0 {
		t.Fatalf("recovery %+v, want snapshot only", ri)
	}
	wantWM(t, r, "solo", wm(77, 7))
}

func TestRecoverTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.SetWatermark("torn", wm(uint64(i+1), byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: the final record's tail never hit the disk.
	seg := filepath.Join(dir, walName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	ri := r.Recovery()
	if !ri.TornTail {
		t.Fatalf("torn tail not reported: %+v", ri)
	}
	if ri.RecordsReplayed != 4 {
		t.Fatalf("replayed %d records, want the 4 intact ones", ri.RecordsReplayed)
	}
	if len(ri.Quarantined) != 0 {
		t.Fatalf("a torn tail is crash residue, not damage; quarantined %v", ri.Quarantined)
	}
	wantWM(t, r, "torn", wm(4, 3))
	// The store keeps working: new appends go to a fresh segment, never
	// extending the torn one, and a further reopen sees everything.
	if err := r.SetWatermark("torn", wm(6, 6)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := mustOpen(t, dir, Options{})
	defer r2.Close()
	wantWM(t, r2, "torn", wm(6, 6))
}

func TestRecoverChecksumMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 256})
	for i := 0; i < 40; i++ {
		if err := s.SetWatermark("q", wm(uint64(i+1), byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Bit-rot one byte in the middle of the FIRST segment — not its tail,
	// so this is damage, not crash residue.
	seg := filepath.Join(dir, walName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	ri := r.Recovery()
	if len(ri.Quarantined) != 1 || ri.Quarantined[0] != walName(1) {
		t.Fatalf("damaged segment not quarantined: %+v", ri)
	}
	if _, err := os.Stat(seg + ".quarantined"); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if ri.TornTail {
		t.Fatalf("mid-segment corruption misread as a torn tail: %+v", ri)
	}
	// Records before the rot and every later segment still applied: the
	// newest watermark survives because per-device state is last-writer-
	// wins and the damage was in an older segment.
	wantWM(t, r, "q", wm(40, 39))
}

func TestRecoverCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.SetWatermark("gen1", wm(10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.SetWatermark("gen2", wm(20, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Rot the newest snapshot; the previous generation is the fallback
	// (its WAL suffix is gone, so gen2 is lost — compaction's price).
	snap2 := filepath.Join(dir, snapName(2))
	data, err := os.ReadFile(snap2)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x80
	if err := os.WriteFile(snap2, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	ri := r.Recovery()
	if ri.SnapshotSeq != 1 {
		t.Fatalf("did not fall back to snapshot 1: %+v", ri)
	}
	if len(ri.Quarantined) != 1 || !strings.HasPrefix(ri.Quarantined[0], "snap-") {
		t.Fatalf("rotten snapshot not quarantined: %+v", ri)
	}
	wantWM(t, r, "gen1", wm(10, 1))
}

// A device whose watermark was cleared in the WAL after the snapshot that
// still contains it must come back without a watermark — and the reverse:
// a device absent from the snapshot but set in the WAL must come back
// with one. Last-writer-wins across the snapshot/WAL boundary.
func TestRecoverEvictionAcrossSnapshotBoundary(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.SetWatermark("cleared-later", wm(10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutStatus(DeviceState{Addr: "cleared-later", Healthy: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil { // snapshot holds cleared-later's watermark
		t.Fatal(err)
	}
	if err := s.SetWatermark("cleared-later", core.Watermark{}); err != nil { // WAL clears it
		t.Fatal(err)
	}
	if err := s.SetWatermark("wal-only", wm(30, 3)); err != nil { // WAL introduces a new device
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if _, ok := r.LoadWatermark("cleared-later"); ok {
		t.Error("watermark cleared in the WAL resurrected from the snapshot")
	}
	if st, ok := r.State("cleared-later"); !ok || !st.HasStatus {
		t.Error("clearing the watermark must not drop the device's status half")
	}
	wantWM(t, r, "wal-only", wm(30, 3))
}

// A watermark clear for a device with no status deletes the whole entry:
// tombstones would defeat the memory bound the service evicts to keep.
func TestClearWithoutStatusDeletesEntry(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	if err := s.SetWatermark("ghost", wm(5, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetWatermark("ghost", core.Watermark{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.State("ghost"); ok {
		t.Error("cleared watermark left a tombstone entry")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.SetWatermark("late", wm(1, 1)); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if s.Err() == nil {
		t.Fatal("post-Close append did not stick as the store error")
	}
}

// Snapshot on a closed store must return the sticky error, not follow a
// nil segment writer into a panic.
func TestSnapshotAfterCloseFails(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.SetWatermark("d", wm(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err == nil {
		t.Fatal("Snapshot after Close succeeded")
	}
	if s.Err() == nil {
		t.Fatal("post-Close snapshot did not stick as the store error")
	}
}

// A crash between segment creation and the first sync leaves a 0-byte (or
// short-header) newest segment: that is crash residue — recovery must
// drop it as a torn tail, not quarantine it as damage.
func TestRecoverEmptyFreshSegment(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.SetWatermark("d", wm(9, 9)); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil { // seals wal-1, opens wal-2
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: the post-snapshot segment's header never made
	// it to disk.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly the post-snapshot segment, got %v (%v)", segs, err)
	}
	if err := os.Truncate(segs[0], 0); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	ri := r.Recovery()
	if len(ri.Quarantined) != 0 {
		t.Fatalf("empty fresh segment quarantined as damage: %+v", ri)
	}
	wantWM(t, r, "d", wm(9, 9))
	// And the store appends into a fresh segment, never the short one.
	if err := r.SetWatermark("d", wm(10, 10)); err != nil {
		t.Fatal(err)
	}
}

// MaxAlerts bounds retained alert history in memory, in snapshots, and
// across recovery.
func TestMaxAlertsBoundsRetention(t *testing.T) {
	dir := t.TempDir()
	opts := Options{MaxAlerts: 3}
	s := mustOpen(t, dir, opts)
	for i := 0; i < 8; i++ {
		if err := s.AppendAlert(AlertEvent{Time: int64(i), Device: "d", Kind: "infection"}); err != nil {
			t.Fatal(err)
		}
	}
	alerts := s.Alerts()
	if len(alerts) != 3 || alerts[0].Time != 5 || alerts[2].Time != 7 {
		t.Fatalf("retained %+v, want the newest 3 (times 5..7)", alerts)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, opts)
	defer r.Close()
	if got := r.Alerts(); len(got) != 3 || got[0].Time != 5 {
		t.Fatalf("recovered %+v, want the newest 3", got)
	}
	// Trimming never renumbers: the retained tail keeps seqs 6..8 through
	// snapshot + recovery, and the head counts the trimmed history too.
	if got := r.Alerts(); got[0].Seq != 6 || got[2].Seq != 8 {
		t.Fatalf("recovered seqs %+v, want 6..8", got)
	}
	if head := r.AlertHead(); head != 8 {
		t.Fatalf("AlertHead = %d, want 8", head)
	}
	// A cursor that predates the retained window reports an explicit gap.
	tail, gap := r.AlertsSince(2)
	if !gap || len(tail) != 3 || tail[0].Seq != 6 {
		t.Fatalf("AlertsSince(2) = %+v gap=%v, want gap + seqs 6..8", tail, gap)
	}
}

// ---- streaming cursor semantics (ISSUE 10) --------------------------------

// Sequence numbers are assigned in append order starting at 1, survive WAL
// replay positionally, and AlertsSince implements the resume contract: no
// gap inside the retained window, explicit gap beyond it, empty result at
// or past the head.
func TestAlertSeqAndAlertsSince(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.AppendAlert(AlertEvent{Time: int64(100 + i), Device: "d", Kind: "tamper"}); err != nil {
			t.Fatal(err)
		}
	}
	alerts := s.Alerts()
	for i, ev := range alerts {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("alert %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}

	tail, gap := s.AlertsSince(0)
	if gap || len(tail) != 5 || tail[0].Seq != 1 {
		t.Fatalf("AlertsSince(0) = %+v gap=%v, want all 5 without gap", tail, gap)
	}
	tail, gap = s.AlertsSince(3)
	if gap || len(tail) != 2 || tail[0].Seq != 4 || tail[1].Seq != 5 {
		t.Fatalf("AlertsSince(3) = %+v gap=%v, want seqs 4,5 without gap", tail, gap)
	}
	// At the head and beyond it: nothing new, and no gap — the caller has
	// simply seen everything (a stale over-large cursor is their bug, not
	// a trimming event).
	if tail, gap = s.AlertsSince(5); gap || len(tail) != 0 {
		t.Fatalf("AlertsSince(head) = %+v gap=%v, want empty", tail, gap)
	}
	if tail, gap = s.AlertsSince(99); gap || len(tail) != 0 {
		t.Fatalf("AlertsSince(beyond head) = %+v gap=%v, want empty", tail, gap)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Pure WAL replay re-derives identical numbering, and appending after
	// recovery continues the sequence rather than restarting it.
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	got := r.Alerts()
	if len(got) != 5 || got[0].Seq != 1 || got[4].Seq != 5 {
		t.Fatalf("recovered seqs %+v, want 1..5", got)
	}
	if err := r.AppendAlert(AlertEvent{Time: 200, Device: "d", Kind: "tamper"}); err != nil {
		t.Fatal(err)
	}
	if head := r.AlertHead(); head != 6 {
		t.Fatalf("post-recovery append got head %d, want 6", head)
	}
	// Caller-set Seq on AppendAlert is ignored, not trusted.
	if err := r.AppendAlert(AlertEvent{Seq: 999, Time: 201, Device: "d", Kind: "tamper"}); err != nil {
		t.Fatal(err)
	}
	if got := r.Alerts(); got[len(got)-1].Seq != 7 {
		t.Fatalf("caller-set seq leaked through: %+v", got[len(got)-1])
	}
}
