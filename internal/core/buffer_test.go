package core

import (
	"testing"
	"testing/quick"

	"erasmus/internal/crypto/mac"
	"erasmus/internal/hw/mcu"
	"erasmus/internal/sim"
)

func newTestBuffer(t *testing.T, n int) *Buffer {
	t.Helper()
	backing := make([]byte, n*RecordSize(mac.HMACSHA256))
	b, err := NewBuffer(mac.HMACSHA256, n, backing)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBufferValidation(t *testing.T) {
	if _, err := NewBuffer(mac.HMACSHA256, 0, nil); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := NewBuffer(mac.HMACSHA256, 2, make([]byte, RecordSize(mac.HMACSHA256))); err == nil {
		t.Error("undersized backing accepted")
	}
	if _, err := NewBuffer(mac.HMACSHA256, 2, make([]byte, 2*RecordSize(mac.HMACSHA256))); err != nil {
		t.Errorf("exact-size backing rejected: %v", err)
	}
}

// Fig. 3's example: n = 12, i = 3 — the paper's slot arithmetic.
func TestSlotForTimePaperExample(t *testing.T) {
	b := newTestBuffer(t, 12)
	tm := sim.Ticks(uint64(sim.Hour))
	// After 15 measurement windows: i = 15 mod 12 = 3.
	tstamp := uint64(15)*uint64(tm) + 12345
	if got := b.SlotForTime(tstamp, tm); got != 3 {
		t.Fatalf("slot = %d, want 3", got)
	}
}

// Non-positive TM is rejected at configuration time (NewProver), and the
// slot arithmetic itself no longer panics on it — a degraded direct call
// addresses slot 0 instead of crashing the prover loop.
func TestNonPositiveTMRejectedAtConfigTime(t *testing.T) {
	b := newTestBuffer(t, 4)
	for _, tm := range []sim.Ticks{0, -sim.Hour} {
		if got := b.SlotForTime(100, tm); got != 0 {
			t.Errorf("SlotForTime(100, %v) = %d, want degraded 0", tm, got)
		}
	}

	e := sim.NewEngine()
	dev, err := mcu.New(mcu.Config{
		Engine: e, MemorySize: 64,
		StoreSize: 4 * RecordSize(mac.HMACSHA256),
		Key:       testKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []sim.Ticks{0, -sim.Hour} {
		_, err := NewProver(dev, ProverConfig{
			Alg: mac.HMACSHA256, Schedule: Regular{TM: tm}, Slots: 4,
		})
		if err == nil {
			t.Errorf("NewProver accepted stateless schedule with TM=%v", tm)
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	b := newTestBuffer(t, 4)
	rec := ComputeRecord(mac.HMACSHA256, testKey, 99, []byte("mem"))
	b.Put(2, rec)
	got, err := b.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if got.T != 99 || !got.VerifyMAC(mac.HMACSHA256, testKey) {
		t.Fatal("round trip lost data")
	}
}

func TestSlotBoundsPanic(t *testing.T) {
	b := newTestBuffer(t, 4)
	for _, f := range []func(){
		func() { b.Put(4, Record{}) },
		func() { b.Get(-1) },
		func() { b.Erase(4) },
		func() { b.Latest(4, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range slot did not panic")
				}
			}()
			f()
		}()
	}
}

func TestLatestNewestFirst(t *testing.T) {
	b := newTestBuffer(t, 5)
	for i := 0; i < 5; i++ {
		b.Put(i, ComputeRecord(mac.HMACSHA256, testKey, uint64(100+i), []byte{byte(i)}))
	}
	got := b.Latest(4, 3)
	if len(got) != 3 {
		t.Fatalf("Latest returned %d records", len(got))
	}
	wantT := []uint64{104, 103, 102}
	for i, r := range got {
		if r.T != wantT[i] {
			t.Fatalf("Latest[%d].T = %d, want %d", i, r.T, wantT[i])
		}
	}
}

func TestLatestWrapsAroundRing(t *testing.T) {
	b := newTestBuffer(t, 4)
	// Write 6 measurements: slots 0,1,2,3,0,1 — slots 0,1 now hold t=104,105.
	for i := 0; i < 6; i++ {
		b.Put(i%4, ComputeRecord(mac.HMACSHA256, testKey, uint64(100+i), nil))
	}
	got := b.Latest(1, 4)
	wantT := []uint64{105, 104, 103, 102}
	if len(got) != 4 {
		t.Fatalf("got %d records", len(got))
	}
	for i, r := range got {
		if r.T != wantT[i] {
			t.Fatalf("Latest[%d].T = %d, want %d", i, r.T, wantT[i])
		}
	}
}

// "if k > n: k = n" from Fig. 2.
func TestLatestClampsKToN(t *testing.T) {
	b := newTestBuffer(t, 3)
	for i := 0; i < 3; i++ {
		b.Put(i, ComputeRecord(mac.HMACSHA256, testKey, uint64(i+1), nil))
	}
	if got := b.Latest(2, 100); len(got) != 3 {
		t.Fatalf("k>n returned %d records, want 3", len(got))
	}
	if got := b.Latest(2, -5); len(got) != 0 {
		t.Fatalf("negative k returned %d records", len(got))
	}
}

func TestLatestSkipsNeverWrittenSlots(t *testing.T) {
	b := newTestBuffer(t, 8)
	b.Put(0, ComputeRecord(mac.HMACSHA256, testKey, 10, nil))
	b.Put(1, ComputeRecord(mac.HMACSHA256, testKey, 20, nil))
	got := b.Latest(1, 8)
	if len(got) != 2 {
		t.Fatalf("fresh buffer returned %d records, want 2", len(got))
	}
}

func TestEraseModelsDeletion(t *testing.T) {
	b := newTestBuffer(t, 3)
	for i := 0; i < 3; i++ {
		b.Put(i, ComputeRecord(mac.HMACSHA256, testKey, uint64(i+1), nil))
	}
	b.Erase(1)
	got := b.Latest(2, 3)
	if len(got) != 2 {
		t.Fatalf("after erase got %d records, want 2", len(got))
	}
	for _, r := range got {
		if r.T == 2 {
			t.Fatal("erased record still returned")
		}
	}
}

func TestBufferSharesBacking(t *testing.T) {
	// Malware tampering through the raw store must be visible via Get.
	backing := make([]byte, 2*RecordSize(mac.HMACSHA256))
	b, _ := NewBuffer(mac.HMACSHA256, 2, backing)
	rec := ComputeRecord(mac.HMACSHA256, testKey, 5, []byte("x"))
	b.Put(0, rec)
	backing[9] ^= 0xFF // flip a hash byte in slot 0
	got, _ := b.Get(0)
	if got.VerifyMAC(mac.HMACSHA256, testKey) {
		t.Fatal("tampered record still verifies")
	}
}

// Property: the stateless slot map assigns distinct consecutive windows to
// distinct slots until wrapping — measurements within the last n windows
// never collide.
func TestPropertySlotNoCollisionWithinWindow(t *testing.T) {
	f := func(start uint32, tmRaw uint16, nRaw uint8) bool {
		n := int(nRaw)%16 + 2
		tm := sim.Ticks(tmRaw) + 1
		backing := make([]byte, n*RecordSize(mac.HMACSHA1))
		b, err := NewBuffer(mac.HMACSHA1, n, backing)
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		base := uint64(start)
		for w := 0; w < n; w++ {
			tstamp := (base/uint64(tm)+uint64(w))*uint64(tm) + uint64(tm)/2
			slot := b.SlotForTime(tstamp, tm)
			if seen[slot] {
				return false
			}
			seen[slot] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Latest(i, k) returns at most k records, in strictly
// decreasing timestamp order, whenever writes used increasing timestamps.
func TestPropertyLatestOrdered(t *testing.T) {
	f := func(count uint8, kRaw uint8) bool {
		n := 8
		b, err := NewBuffer(mac.HMACSHA1, n, make([]byte, n*RecordSize(mac.HMACSHA1)))
		if err != nil {
			return false
		}
		writes := int(count)%20 + 1
		for i := 0; i < writes; i++ {
			b.Put(i%n, ComputeRecord(mac.HMACSHA1, testKey, uint64(i+1), nil))
		}
		k := int(kRaw) % (n + 3)
		got := b.Latest((writes-1)%n, k)
		if len(got) > k && k >= 0 {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].T >= got[i-1].T {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
