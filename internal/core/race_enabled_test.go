//go:build race

package core

// raceEnabled reports whether this test binary runs under the race
// detector, which deliberately randomizes sync.Pool reuse and so makes
// testing.AllocsPerRun gates jitter by a few allocations.
const raceEnabled = true
