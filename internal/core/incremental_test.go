package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"erasmus/internal/crypto/mac"
	"erasmus/internal/sim"
)

// deltaSlice returns the records of recs newer than, plus the one at,
// since — what HandleCollectDelta would ship for a newest-first history.
func deltaSlice(recs []Record, since uint64) []Record {
	out := make([]Record, 0, len(recs))
	for _, r := range recs {
		if r.T >= since {
			out = append(out, r)
		}
	}
	return out
}

// A zero watermark must make VerifyDelta degenerate to VerifyHistory
// exactly, and a clean report must advance the watermark to the newest
// record.
func TestVerifyDeltaZeroWatermarkMatchesFull(t *testing.T) {
	memory := []byte("clean image")
	v := newTestVerifier(t, goldenFor(memory))
	endT := uint64(100 * sim.Hour)
	recs := history(5, endT, sim.Hour, memory)
	now := endT + uint64(30*sim.Minute)

	full := v.VerifyHistory(recs, now, 5)
	rep, wm := v.VerifyDelta(recs, now, 5, Watermark{})
	if !reflect.DeepEqual(full, rep) {
		t.Fatalf("zero-watermark delta diverges from full:\nfull:  %+v\ndelta: %+v", full, rep)
	}
	if wm.IsZero() || wm.T != endT || !wm.Matches(recs[0]) {
		t.Fatalf("watermark did not advance to newest record: %+v", wm)
	}
}

// The incremental path must accept the anchor by equality (no MAC
// recomputation), verify only the new records, and agree with full
// re-verification on every verdict field.
func TestVerifyDeltaIncrementalAgreesWithFull(t *testing.T) {
	memory := []byte("clean image")
	v := newTestVerifier(t, goldenFor(memory))
	tm := sim.Hour
	t1 := uint64(100 * sim.Hour)
	hist1 := history(5, t1, tm, memory)
	_, wm := v.VerifyDelta(hist1, t1+uint64(30*sim.Minute), 5, Watermark{})

	// Four new measurements later…
	t2 := t1 + 4*uint64(tm)
	hist2 := history(9, t2, tm, memory) // full buffer view at collection 2
	now2 := t2 + uint64(30*sim.Minute)

	full := v.VerifyHistory(hist2[:5], now2, 5) // stateless verifier asks k=5
	delta, wm2 := v.VerifyDelta(deltaSlice(hist2, wm.T), now2, 5, wm)

	if !delta.DeltaApplied || delta.OverlapTrusted != 1 {
		t.Fatalf("delta bookkeeping wrong: %+v", delta)
	}
	if delta.WatermarkGap || delta.WatermarkTampered {
		t.Fatalf("clean delta flagged: %+v", delta)
	}
	if full.Healthy() != delta.Healthy() ||
		full.TamperDetected != delta.TamperDetected ||
		full.InfectionDetected != delta.InfectionDetected ||
		full.MissingRecords != delta.MissingRecords ||
		full.ScheduleGaps != delta.ScheduleGaps ||
		full.Freshness != delta.Freshness {
		t.Fatalf("verdicts diverge:\nfull:  %+v\ndelta: %+v", full, delta)
	}
	// The delta report covers exactly the four new records, same verdicts
	// as the full report's leading entries.
	if len(delta.Records) != 4 {
		t.Fatalf("delta verified %d records, want 4", len(delta.Records))
	}
	for i := range delta.Records {
		if !reflect.DeepEqual(delta.Records[i], full.Records[i]) {
			t.Fatalf("record %d verdict diverges", i)
		}
	}
	if wm2.T != t2 {
		t.Fatalf("watermark did not advance: %+v", wm2)
	}
}

// Tamper inserted into the already-verified overlap region — the anchor
// record modified in place — must still be detected, via the O(1)
// equality check, and must reset the watermark so the next collection
// re-verifies fully.
func TestVerifyDeltaOverlapTamperDetected(t *testing.T) {
	memory := []byte("clean image")
	v := newTestVerifier(t, goldenFor(memory))
	tm := sim.Hour
	t1 := uint64(100 * sim.Hour)
	_, wm := v.VerifyDelta(history(5, t1, tm, memory), t1+1, 5, Watermark{})

	t2 := t1 + 4*uint64(tm)
	ship := deltaSlice(history(9, t2, tm, memory), wm.T)
	// Malware flips a bit in the stored (already-verified) anchor record.
	anchor := &ship[len(ship)-1]
	if anchor.T != wm.T {
		t.Fatal("test setup: last shipped record is not the anchor")
	}
	anchor.MAC = append([]byte(nil), anchor.MAC...)
	anchor.MAC[0] ^= 0x80

	rep, wm2 := v.VerifyDelta(ship, t2+1, 5, wm)
	if !rep.WatermarkTampered || !rep.TamperDetected {
		t.Fatalf("overlap tamper not detected: %+v", rep)
	}
	if !strings.Contains(strings.Join(rep.Issues, "\n"), "modified since last verification") {
		t.Fatalf("missing issue: %v", rep.Issues)
	}
	if !wm2.IsZero() {
		t.Fatalf("watermark survived tamper: %+v", wm2)
	}
}

// A missing anchor (buffer rollover past the watermark, reboot with a
// cleared store, or record deletion) is not tamper by itself, but must
// fall back: WatermarkGap set, watermark reset, next round verifies fully.
func TestVerifyDeltaWatermarkGapFallsBack(t *testing.T) {
	memory := []byte("clean image")
	v := newTestVerifier(t, goldenFor(memory))
	tm := sim.Hour
	t1 := uint64(100 * sim.Hour)
	_, wm := v.VerifyDelta(history(5, t1, tm, memory), t1+1, 5, Watermark{})

	// The device's buffer rolled over: everything at or before the
	// watermark was overwritten; only strictly newer records remain.
	t2 := t1 + 10*uint64(tm)
	ship := history(6, t2, tm, memory) // oldest is t1+5TM > wm.T
	rep, wm2 := v.VerifyDelta(ship, t2+1, 5, wm)
	if !rep.WatermarkGap {
		t.Fatalf("gap not reported: %+v", rep)
	}
	if rep.TamperDetected {
		t.Fatalf("legitimate rollover flagged as tamper: %v", rep.Issues)
	}
	if !wm2.IsZero() {
		t.Fatalf("watermark survived gap: %+v", wm2)
	}
	// All shipped records were still fully verified.
	if len(rep.Records) != 6 {
		t.Fatalf("verified %d records, want 6", len(rep.Records))
	}
	for i, vr := range rep.Records {
		if vr.Verdict != VerdictOK {
			t.Fatalf("record %d verdict %v", i, vr.Verdict)
		}
	}
}

// An infected-but-authentic newest record advances the watermark
// (infection is a memory-state finding, not an evidence fault), while any
// tamper resets it.
func TestNextWatermarkRules(t *testing.T) {
	memory := []byte("clean image")
	infected := []byte("implanted500")
	v := newTestVerifier(t, goldenFor(memory))
	tm := sim.Hour
	endT := uint64(100 * sim.Hour)

	rep, wm := v.VerifyDelta(history(5, endT, tm, infected), endT+1, 5, Watermark{})
	if !rep.InfectionDetected || rep.TamperDetected {
		t.Fatalf("setup: %+v", rep)
	}
	if wm.T != endT {
		t.Fatalf("infected-but-authentic newest record did not advance watermark: %+v", wm)
	}

	bad := history(5, endT, tm, memory)
	bad[2].MAC = append([]byte(nil), bad[2].MAC...)
	bad[2].MAC[0] ^= 1
	rep2, wm2 := v.VerifyDelta(bad, endT+1, 5, Watermark{})
	if !rep2.TamperDetected {
		t.Fatal("setup: tamper not flagged")
	}
	if !wm2.IsZero() {
		t.Fatalf("tamper did not reset watermark: %+v", wm2)
	}

	// Nothing new verified: the previous watermark is kept.
	prev := Watermark{T: 42, Hash: []byte{1}, MAC: []byte{2}}
	if got := NextWatermark(prev, Report{}); !reflect.DeepEqual(got, prev) {
		t.Fatalf("empty report did not keep watermark: %+v", got)
	}
}

// Satellite: two consecutive collections whose windows straddle the
// i mod n circular-buffer wrap must produce identical verdicts with and
// without watermarks — driven through a real prover so the slot
// arithmetic, not synthetic records, is what is under test.
func TestSeamWrapDeltaFullEquivalence(t *testing.T) {
	e := sim.NewEngine()
	const slots, k = 6, 4
	dev, p := newMCUPair(t, e, sim.Hour, slots)
	golden := goldenFor(dev.Memory())
	v, err := NewVerifier(VerifierConfig{
		Alg: mac.HMACSHA256, Key: testKey,
		GoldenHashes: [][]byte{golden},
		MinGap:       sim.Hour - sim.Minute,
		MaxGap:       sim.Hour + sim.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()

	// Collection 1 after 5 measurements (slots 1..5 of 6 used), then
	// collection 2 after 4 more: its window spans measurements 6..9,
	// slots {0,1,2,3} — wrapping through the seam.
	e.RunUntil(5*sim.Hour + 30*sim.Minute)
	recs1, _ := p.HandleCollect(k)
	now1 := dev.RROC()
	full1 := v.VerifyHistory(recs1, now1, k)
	delta1, wm := v.VerifyDelta(recs1, now1, k, Watermark{})
	if !reflect.DeepEqual(full1, delta1) {
		t.Fatalf("collection 1 diverges:\nfull:  %+v\ndelta: %+v", full1, delta1)
	}

	e.RunUntil(9*sim.Hour + 30*sim.Minute)
	now2 := dev.RROC()
	fullRecs, _ := p.HandleCollect(k)
	full2 := v.VerifyHistory(fullRecs, now2, k)
	deltaRecs, _ := p.HandleCollectDelta(wm.T, 0)
	delta2, wm2 := v.VerifyDelta(deltaRecs, now2, k, wm)

	if len(deltaRecs) != k+1 { // 4 new + anchor
		t.Fatalf("delta shipped %d records, want %d", len(deltaRecs), k+1)
	}
	if !delta2.DeltaApplied || delta2.OverlapTrusted != 1 || delta2.WatermarkGap {
		t.Fatalf("delta bookkeeping wrong across the wrap: %+v", delta2)
	}
	if full2.Healthy() != delta2.Healthy() ||
		full2.TamperDetected != delta2.TamperDetected ||
		full2.InfectionDetected != delta2.InfectionDetected ||
		full2.MissingRecords != delta2.MissingRecords ||
		full2.ScheduleGaps != delta2.ScheduleGaps ||
		full2.Freshness != delta2.Freshness {
		t.Fatalf("verdicts diverge across the wrap:\nfull:  %+v\ndelta: %+v", full2, delta2)
	}
	if len(delta2.Records) != k {
		t.Fatalf("delta verified %d records, want %d", len(delta2.Records), k)
	}
	for i := range delta2.Records {
		if !reflect.DeepEqual(delta2.Records[i], full2.Records[i]) {
			t.Fatalf("record %d verdict diverges across the wrap", i)
		}
	}
	if wm2.T <= wm.T {
		t.Fatalf("watermark did not advance across the wrap: %v → %v", wm.T, wm2.T)
	}
}

// The sharded store: lookup/update round trip, zero-watermark deletion,
// the memory bound with eviction, and the one-call Verify front door.
func TestAttestationService(t *testing.T) {
	s := NewAttestationService(ServiceConfig{Shards: 4, MaxDevices: 64})
	wm := Watermark{T: 7, Hash: []byte{1}, MAC: []byte{2}}
	s.Set("dev-a", wm)
	if got, ok := s.Watermark("dev-a"); !ok || !reflect.DeepEqual(got, wm) {
		t.Fatalf("round trip lost state: %+v ok=%v", got, ok)
	}
	s.Set("dev-a", Watermark{})
	if _, ok := s.Watermark("dev-a"); ok {
		t.Fatal("zero watermark did not delete the entry")
	}
	s.Set("dev-a", wm)
	s.Reset("dev-a")
	if _, ok := s.Watermark("dev-a"); ok {
		t.Fatal("Reset did not drop the entry")
	}

	// Memory bound: the store never exceeds MaxDevices, and evicted
	// devices just lose their (re-derivable) state.
	for i := 0; i < 1000; i++ {
		s.Set(fmt.Sprintf("dev-%04d", i), Watermark{T: uint64(i + 1), Hash: []byte{1}, MAC: []byte{2}})
	}
	if n := s.Devices(); n > 64 {
		t.Fatalf("store holds %d devices, bound is 64", n)
	}

	memory := []byte("clean image")
	v := newTestVerifier(t, goldenFor(memory))
	endT := uint64(100 * sim.Hour)
	recs := history(5, endT, sim.Hour, memory)
	rep := s.Verify("front-door", v, recs, endT+1, 5)
	if !rep.Healthy() {
		t.Fatalf("front-door verify unhealthy: %v", rep.Issues)
	}
	if got, ok := s.Watermark("front-door"); !ok || got.T != endT {
		t.Fatalf("front-door verify did not persist watermark: %+v ok=%v", got, ok)
	}
	rep2 := s.Verify("front-door", v, deltaSlice(history(9, endT+4*uint64(sim.Hour), sim.Hour, memory), endT), endT+4*uint64(sim.Hour)+1, 5)
	if !rep2.DeltaApplied || !rep2.Healthy() {
		t.Fatalf("front-door incremental round wrong: %+v", rep2)
	}
}

// Missed measurements (CPU contention, §5) must not become false tamper
// in delta mode: an anchored delta-sized response is never counted
// against the full-window expectedK — the hole surfaces as ScheduleGaps,
// exactly as the stateless path reports it.
func TestVerifyDeltaMissedMeasurementsNotTamper(t *testing.T) {
	memory := []byte("clean image")
	v := newTestVerifier(t, goldenFor(memory))
	tm := sim.Hour
	t1 := uint64(100 * sim.Hour)
	_, wm := v.VerifyDelta(history(5, t1, tm, memory), t1+1, 5, Watermark{})

	// Of the five scheduled measurements since the watermark, the middle
	// two were missed: the device ships 3 new records + anchor.
	t2 := t1 + 5*uint64(tm)
	ship := []Record{
		ComputeRecord(alg, testKey, t2, memory),
		ComputeRecord(alg, testKey, t2-uint64(tm), memory),
		ComputeRecord(alg, testKey, t1+uint64(tm), memory),
		{T: wm.T, Hash: wm.Hash, MAC: wm.MAC}, // anchor
	}
	rep, wm2 := v.VerifyDelta(ship, t2+1, 5, wm)
	if rep.TamperDetected || rep.MissingRecords != 0 {
		t.Fatalf("missed measurements flagged as tamper: %+v", rep)
	}
	if rep.ScheduleGaps == 0 {
		t.Fatalf("the measurement hole left no schedule-gap finding: %+v", rep)
	}
	if wm2.T != t2 {
		t.Fatalf("watermark did not advance past a gappy-but-authentic round: %+v", wm2)
	}
}

// A prover that answers a delta request with only the anchor — withholding
// every newer record — must be flagged once the watermark is older than
// the maximum measurement spacing; a promptly-collected anchor-only
// response (nothing new could exist yet) stays acceptable.
func TestVerifyDeltaWithheldRecordsDetected(t *testing.T) {
	memory := []byte("clean image")
	v := newTestVerifier(t, goldenFor(memory))
	tm := sim.Hour
	t1 := uint64(100 * sim.Hour)
	_, wm := v.VerifyDelta(history(5, t1, tm, memory), t1+1, 5, Watermark{})
	anchorOnly := []Record{{T: wm.T, Hash: wm.Hash, MAC: wm.MAC}}

	// Collected again almost immediately: no new measurement is due, so
	// an anchor-only response is fine and the watermark survives.
	fresh, wmFresh := v.VerifyDelta(anchorOnly, t1+uint64(30*sim.Minute), 5, wm)
	if fresh.TamperDetected || !fresh.Healthy() {
		t.Fatalf("prompt anchor-only response flagged: %+v", fresh)
	}
	if wmFresh.T != wm.T {
		t.Fatalf("watermark lost on an acceptable anchor-only round: %+v", wmFresh)
	}

	// Four measurement periods later the schedule demands new records;
	// an anchor-only response means they were withheld, lost or never
	// measured — tamper, and the watermark resets for a full re-check.
	stale, wmStale := v.VerifyDelta(anchorOnly, t1+4*uint64(tm), 5, wm)
	if !stale.TamperDetected {
		t.Fatalf("withheld records not flagged: %+v", stale)
	}
	if !strings.Contains(strings.Join(stale.Issues, "\n"), "withheld") {
		t.Fatalf("missing issue: %v", stale.Issues)
	}
	if !wmStale.IsZero() {
		t.Fatalf("watermark survived withholding: %+v", wmStale)
	}
}
