package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"erasmus/internal/costmodel"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/sim"
)

func TestRegionValidate(t *testing.T) {
	cases := []struct {
		r  MemoryRegion
		ok bool
	}{
		{MemoryRegion{0, 10}, true},
		{MemoryRegion{90, 10}, true},
		{MemoryRegion{-1, 5}, false},
		{MemoryRegion{0, 0}, false},
		{MemoryRegion{95, 10}, false},
		{MemoryRegion{100, 1}, false},
	}
	for _, c := range cases {
		err := c.r.Validate(100)
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) err=%v, want ok=%v", c.r, err, c.ok)
		}
	}
}

func TestRegionRecordRoundTrip(t *testing.T) {
	memory := []byte("0123456789abcdefghij")
	r := MemoryRegion{Offset: 5, Length: 8}
	rec, err := ComputeRegionRecord(mac.HMACSHA256, testKey, 42, memory, r)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.VerifyMAC(mac.HMACSHA256, testKey) {
		t.Fatal("self-verification failed")
	}
	// The hash covers exactly the region.
	want := mac.HashSum(mac.HMACSHA256, memory[5:13])
	if !bytes.Equal(rec.Hash, want) {
		t.Fatal("hash does not cover the region")
	}
}

// The MAC binds the region bounds: a prover cannot present a digest of
// region A as an answer about region B.
func TestRegionBindingInMAC(t *testing.T) {
	memory := bytes.Repeat([]byte{7}, 64) // uniform memory: equal hashes
	a, _ := ComputeRegionRecord(mac.HMACSHA256, testKey, 1, memory, MemoryRegion{0, 16})
	b, _ := ComputeRegionRecord(mac.HMACSHA256, testKey, 1, memory, MemoryRegion{16, 16})
	if !bytes.Equal(a.Hash, b.Hash) {
		t.Fatal("test premise broken: uniform memory should hash equal")
	}
	//erasmus:allow(ctcompare) record-equality helper over test-known values; no prover-supplied operand, no timing oracle
	if bytes.Equal(a.MAC, b.MAC) {
		t.Fatal("MAC does not bind the region bounds")
	}
	// Swapping the claimed region invalidates the record.
	a.Region = MemoryRegion{16, 16}
	if a.VerifyMAC(mac.HMACSHA256, testKey) {
		t.Fatal("region swap not detected")
	}
}

func TestHandleOnDemandRegion(t *testing.T) {
	e := sim.NewEngine()
	dev, p := newMCUPair(t, e, sim.Hour, 8)
	dev.WriteMemory(100, []byte("interesting segment"))

	region := MemoryRegion{Offset: 100, Length: 64}
	treq := dev.RROC() + 1
	rec, timing, err := p.HandleOnDemandRegion(treq, region,
		NewRegionRequestMAC(mac.HMACSHA256, testKey, treq, region))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.VerifyMAC(mac.HMACSHA256, testKey) {
		t.Fatal("region record not authentic")
	}
	if rec.Region != region {
		t.Fatalf("region echoed wrong: %+v", rec.Region)
	}
	want := mac.HashSum(mac.HMACSHA256, dev.Memory()[100:164])
	if !bytes.Equal(rec.Hash, want) {
		t.Fatal("wrong memory measured")
	}
	// Cost proportional to the region, not the image.
	full := costmodel.MeasurementTime(dev.Arch(), mac.HMACSHA256, len(dev.Memory()))
	if timing.ComputeMeasurement*4 > full {
		t.Fatalf("region measurement %v not ≪ full %v", timing.ComputeMeasurement, full)
	}
}

func TestHandleOnDemandRegionRejections(t *testing.T) {
	e := sim.NewEngine()
	dev, p := newMCUPair(t, e, sim.Hour, 8)
	region := MemoryRegion{Offset: 0, Length: 64}

	// Bad MAC.
	treq := dev.RROC() + 1
	if _, _, err := p.HandleOnDemandRegion(treq, region, []byte("nope")); err != ErrBadRequest {
		t.Fatalf("bad MAC: err = %v", err)
	}
	// Invalid region (request even refused before crypto).
	huge := MemoryRegion{Offset: 0, Length: 1 << 20}
	if _, _, err := p.HandleOnDemandRegion(treq, huge,
		NewRegionRequestMAC(mac.HMACSHA256, testKey, treq, huge)); err == nil {
		t.Fatal("oversized region accepted")
	}
	// Replay.
	good := dev.RROC() + 2
	if _, _, err := p.HandleOnDemandRegion(good, region,
		NewRegionRequestMAC(mac.HMACSHA256, testKey, good, region)); err != nil {
		t.Fatalf("fresh request rejected: %v", err)
	}
	if _, _, err := p.HandleOnDemandRegion(good, region,
		NewRegionRequestMAC(mac.HMACSHA256, testKey, good, region)); err != ErrReplay {
		t.Fatalf("replay: err = %v", err)
	}
	// Stale.
	e.RunUntil(e.Now() + sim.Hour)
	old := dev.RROC() - uint64(sim.Minute)
	if _, _, err := p.HandleOnDemandRegion(old, region,
		NewRegionRequestMAC(mac.HMACSHA256, testKey, old, region)); err != ErrStaleRequest {
		t.Fatalf("stale: err = %v", err)
	}
}

func TestRegionRequestMACBindsRegion(t *testing.T) {
	e := sim.NewEngine()
	dev, p := newMCUPair(t, e, sim.Hour, 8)
	// A valid token for region A must not authorize measuring region B.
	a := MemoryRegion{Offset: 0, Length: 64}
	b := MemoryRegion{Offset: 64, Length: 64}
	treq := dev.RROC() + 1
	tokenA := NewRegionRequestMAC(mac.HMACSHA256, testKey, treq, a)
	if _, _, err := p.HandleOnDemandRegion(treq, b, tokenA); err != ErrBadRequest {
		t.Fatalf("cross-region token accepted: err = %v", err)
	}
}

func TestRegionTimeAdvantage(t *testing.T) {
	adv := RegionTimeAdvantage(0, mac.HMACSHA256, 10*1024, MemoryRegion{0, 1024})
	if adv < 5 || adv > 11 {
		t.Fatalf("1KB-of-10KB advantage = %.1f, want ≈10×", adv)
	}
}

// Property: region records verify iff untampered and bind (t, region).
func TestPropertyRegionRecordIntegrity(t *testing.T) {
	memory := make([]byte, 256)
	for i := range memory {
		memory[i] = byte(i * 31)
	}
	f := func(off, ln uint8, tstamp uint64, flip uint8) bool {
		r := MemoryRegion{Offset: int(off) % 200, Length: int(ln)%50 + 1}
		rec, err := ComputeRegionRecord(mac.KeyedBLAKE2s, testKey, tstamp, memory, r)
		if err != nil {
			return true
		}
		if !rec.VerifyMAC(mac.KeyedBLAKE2s, testKey) {
			return false
		}
		mut := rec
		switch flip % 3 {
		case 0:
			mut.T++
		case 1:
			mut.Region.Offset++
		default:
			mut.Hash = append([]byte(nil), rec.Hash...)
			mut.Hash[0] ^= 1
		}
		return !mut.VerifyMAC(mac.KeyedBLAKE2s, testKey)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
