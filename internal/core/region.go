package core

import (
	"encoding/binary"
	"fmt"

	"erasmus/internal/costmodel"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/hw/cpu"
)

// Region-scoped on-demand attestation. §1 notes that on-demand RA "may be
// more flexible, e.g., if the verifier is only interested in measuring a
// fraction of prover's memory" — for instance re-checking just the pages a
// software update touched. This file adds that flexibility to the
// on-demand path: an authenticated request names a byte range, the prover
// measures only that range (cost proportional to the range, not the whole
// image), and the record binds the range so a prover cannot answer with a
// digest of different memory.

// MemoryRegion is a half-open byte range [Offset, Offset+Length) of the
// attested image.
type MemoryRegion struct {
	Offset int
	Length int
}

// Validate checks the region against an image size.
func (r MemoryRegion) Validate(imageSize int) error {
	if r.Offset < 0 || r.Length <= 0 || r.Offset+r.Length > imageSize {
		return fmt.Errorf("core: region [%d,%d) outside image of %d bytes",
			r.Offset, r.Offset+r.Length, imageSize)
	}
	return nil
}

// regionMACInput binds timestamp, region bounds and hash.
func regionMACInput(t uint64, r MemoryRegion, h []byte) []byte {
	buf := make([]byte, 8+8+8+len(h))
	binary.BigEndian.PutUint64(buf, t)
	binary.BigEndian.PutUint64(buf[8:], uint64(r.Offset))
	binary.BigEndian.PutUint64(buf[16:], uint64(r.Length))
	copy(buf[24:], h)
	return buf
}

// RegionRecord is a measurement of a sub-range:
// <t, region, H(mem[region]), MAC_K(t, region, H(mem[region]))>.
type RegionRecord struct {
	T      uint64
	Region MemoryRegion
	Hash   []byte
	MAC    []byte
}

// ComputeRegionRecord measures the given range of memory at time t.
func ComputeRegionRecord(alg mac.Algorithm, key []byte, t uint64, memory []byte, r MemoryRegion) (RegionRecord, error) {
	if err := r.Validate(len(memory)); err != nil {
		return RegionRecord{}, err
	}
	h := mac.HashSum(alg, memory[r.Offset:r.Offset+r.Length])
	return RegionRecord{
		T: t, Region: r, Hash: h,
		MAC: mac.Sum(alg, key, regionMACInput(t, r, h)),
	}, nil
}

// VerifyMAC checks authenticity, including the region binding.
func (rr RegionRecord) VerifyMAC(alg mac.Algorithm, key []byte) bool {
	return mac.Verify(alg, key, regionMACInput(rr.T, rr.Region, rr.Hash), rr.MAC)
}

// regionReqMACInput authenticates a region request.
func regionReqMACInput(treq uint64, r MemoryRegion) []byte {
	var b [24]byte
	binary.BigEndian.PutUint64(b[:8], treq)
	binary.BigEndian.PutUint64(b[8:16], uint64(r.Offset))
	binary.BigEndian.PutUint64(b[16:], uint64(r.Length))
	return b[:]
}

// NewRegionRequestMAC computes the verifier's token for a region request.
func NewRegionRequestMAC(alg mac.Algorithm, key []byte, treq uint64, r MemoryRegion) []byte {
	return mac.Sum(alg, key, regionReqMACInput(treq, r))
}

// HandleOnDemandRegion serves an authenticated region-scoped on-demand
// request: SMART+ freshness/replay/MAC checks first, then a real-time
// measurement of just the named range. The measurement cost scales with
// the region length — the flexibility benefit the paper attributes to
// on-demand RA.
func (p *Prover) HandleOnDemandRegion(treq uint64, region MemoryRegion, reqMAC []byte) (RegionRecord, CollectTiming, error) {
	p.stats.ODRequests++
	timing := CollectTiming{VerifyRequest: costmodel.AuthTime(p.dev.Arch())}
	p.dev.CPU().Occupy(cpu.KindAuth, timing.VerifyRequest)

	if err := region.Validate(len(p.dev.Memory())); err != nil {
		p.stats.ODRejected++
		return RegionRecord{}, timing, err
	}
	now := p.dev.RROC()
	w := uint64(p.cfg.ODFreshnessWindow)
	if treq+w < now || treq > now+w {
		p.stats.ODRejected++
		return RegionRecord{}, timing, ErrStaleRequest
	}
	if treq <= p.lastTreq {
		p.stats.ODRejected++
		return RegionRecord{}, timing, ErrReplay
	}
	authOK := false
	attErr := p.dev.Attest(func(key []byte) {
		authOK = mac.Verify(p.cfg.Alg, key, regionReqMACInput(treq, region), reqMAC)
	})
	if attErr != nil {
		p.stats.ODRejected++
		return RegionRecord{}, timing, attErr
	}
	if !authOK {
		p.stats.ODRejected++
		return RegionRecord{}, timing, ErrBadRequest
	}
	p.lastTreq = treq

	dur := costmodel.MeasurementTime(p.dev.Arch(), p.cfg.Alg, region.Length)
	timing.ComputeMeasurement = dur
	p.dev.CPU().Occupy(cpu.KindMeasurement, dur)
	var rec RegionRecord
	var recErr error
	attErr = p.dev.Attest(func(key []byte) {
		rec, recErr = ComputeRegionRecord(p.cfg.Alg, key, p.dev.RROC(), p.dev.Memory(), region)
	})
	if attErr != nil {
		return RegionRecord{}, timing, attErr
	}
	if recErr != nil {
		return RegionRecord{}, timing, recErr
	}
	p.stats.ODMeasured++
	timing.ConstructPacket = costmodel.ConstructPacketTime(p.dev.Arch())
	timing.SendPacket = costmodel.SendPacketTime(p.dev.Arch())
	p.dev.CPU().Occupy(cpu.KindCollection, timing.ConstructPacket+timing.SendPacket)
	return rec, timing, nil
}

// RegionTimeAdvantage returns the modeled speedup of measuring only a
// region versus the full image — the quantity that motivates the feature.
func RegionTimeAdvantage(a costmodel.Arch, alg mac.Algorithm, imageSize int, region MemoryRegion) float64 {
	full := costmodel.MeasurementTime(a, alg, imageSize)
	part := costmodel.MeasurementTime(a, alg, region.Length)
	if part <= 0 {
		return 0
	}
	return float64(full) / float64(part)
}
