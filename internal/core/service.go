package core

import "sync"

// AttestationService is the verifier-side state store for incremental
// attestation: one Watermark per device, sharded for concurrent access
// (the fleet pipeline verifies batches on a worker pool) and memory-
// bounded so a hostile or misconfigured registration flood cannot grow
// verifier memory without limit.
//
// Losing a watermark is always safe — the next collection for that device
// simply verifies the full history and re-establishes it — so the service
// evicts rather than refuses when the bound is hit.
type ServiceConfig struct {
	// Shards is the number of independently locked buckets (rounded up to
	// a power of two; default 16). Size it near the verification worker
	// count; the store is touched once per collection, so contention is
	// modest even at fleet scale.
	Shards int
	// MaxDevices bounds the number of tracked devices across all shards
	// (default 1<<20). At ~150 B per device (timestamp, hash and MAC
	// bytes, map overhead) a million devices cost on the order of 150 MB.
	MaxDevices int
}

// AttestationService stores per-device watermarks. Safe for concurrent use.
type AttestationService struct {
	shards []wmShard
	mask   uint32
	perCap int // per-shard device cap
}

type wmShard struct {
	mu sync.Mutex
	wm map[string]Watermark
}

// NewAttestationService builds the watermark store.
func NewAttestationService(cfg ServiceConfig) *AttestationService {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	if cfg.MaxDevices <= 0 {
		cfg.MaxDevices = 1 << 20
	}
	perCap := cfg.MaxDevices / n
	if perCap < 1 {
		perCap = 1
	}
	s := &AttestationService{shards: make([]wmShard, n), mask: uint32(n - 1), perCap: perCap}
	for i := range s.shards {
		s.shards[i].wm = make(map[string]Watermark)
	}
	return s
}

func (s *AttestationService) shard(device string) *wmShard {
	// Inline FNV-1a: the store is touched twice per collection (lookup at
	// launch, update at apply), so at fleet scale a hash.Hash allocation
	// here would be millions of garbage objects per round.
	h := uint32(2166136261)
	for i := 0; i < len(device); i++ {
		h ^= uint32(device[i])
		h *= 16777619
	}
	return &s.shards[h&s.mask]
}

// Watermark returns the device's stored watermark, if any.
func (s *AttestationService) Watermark(device string) (Watermark, bool) {
	sh := s.shard(device)
	sh.mu.Lock()
	wm, ok := sh.wm[device]
	sh.mu.Unlock()
	return wm, ok
}

// Set stores the device's watermark. A zero watermark deletes the entry
// (the device fell back to full verification; keeping a tombstone would
// only waste the memory bound). When the shard is at capacity an
// arbitrary entry is evicted — the evicted device's next collection
// re-verifies fully, which is correct, just not incremental.
func (s *AttestationService) Set(device string, wm Watermark) {
	sh := s.shard(device)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if wm.IsZero() {
		delete(sh.wm, device)
		return
	}
	if _, exists := sh.wm[device]; !exists && len(sh.wm) >= s.perCap {
		for k := range sh.wm {
			delete(sh.wm, k)
			break
		}
	}
	sh.wm[device] = wm
}

// Reset drops the device's watermark (decommissioning, key rotation, or
// any out-of-band reason to distrust cached state).
func (s *AttestationService) Reset(device string) { s.Set(device, Watermark{}) }

// Devices returns the number of devices currently tracked.
func (s *AttestationService) Devices() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.Lock()
		n += len(s.shards[i].wm)
		s.shards[i].mu.Unlock()
	}
	return n
}

// Verify validates one device's delta collection against its stored
// watermark and persists the successor state: the one-call front door for
// callers that do not need to separate lookup from update (the fleet
// pipeline does, to keep updates in submission order; see
// Watermark/Set and NextWatermark).
//
// Calls for *different* devices may run concurrently; calls for the same
// device must be serialized by the caller — the read-verify-write here is
// deliberately not atomic (holding a shard lock across MAC verification
// would serialize a fraction of the whole fleet), and concurrent same-
// device calls could interleave lookup and store. Collection naturally
// provides this: one collection per device is outstanding at a time.
func (s *AttestationService) Verify(device string, v *Verifier, recs []Record, now uint64, expectedK int) Report {
	wm, _ := s.Watermark(device)
	rep, next := v.VerifyDelta(recs, now, expectedK, wm)
	s.Set(device, next)
	return rep
}
