package core

import "sync"

// StateSink observes watermark updates for durability. The service calls
// SetWatermark once per applied verdict, in verdict-application order —
// the order a write-ahead log must replay them in — with a zero watermark
// meaning "cleared" (the device fell back to stateless verification).
// Memory-pressure evictions are deliberately NOT sent to the sink: the
// sink's copy is what makes eviction cheap (see StateSource).
type StateSink interface {
	SetWatermark(device string, wm Watermark) error
}

// StateSource re-hydrates watermarks the service no longer holds in
// memory. A lookup miss consults the source before giving up, so a device
// evicted under memory pressure resumes incremental verification from its
// durable watermark instead of paying a stateless full re-verification
// round.
type StateSource interface {
	LoadWatermark(device string) (Watermark, bool)
}

// AttestationService is the verifier-side state store for incremental
// attestation: one Watermark per device, sharded for concurrent access
// (the fleet pipeline verifies batches on a worker pool) and memory-
// bounded so a hostile or misconfigured registration flood cannot grow
// verifier memory without limit.
//
// Losing a watermark is always safe — the next collection for that device
// simply verifies the full history and re-establishes it — so the service
// evicts rather than refuses when the bound is hit.
type ServiceConfig struct {
	// Shards is the number of independently locked buckets (rounded up to
	// a power of two; default 16). Size it near the verification worker
	// count; the store is touched once per collection, so contention is
	// modest even at fleet scale.
	Shards int
	// MaxDevices bounds the number of tracked devices across all shards
	// (default 1<<20). At ~150 B per device (timestamp, hash and MAC
	// bytes, map overhead) a million devices cost on the order of 150 MB.
	MaxDevices int
	// Sink, when set, receives every watermark update in verdict-
	// application order (typically a store.Store write-ahead log). Nil
	// keeps the service purely in-memory, bit-identical to its stateless-
	// process behavior.
	Sink StateSink
	// Source, when set, re-hydrates watermarks on lookup miss, making
	// memory-pressure eviction loss-free. Nil restores the old behavior:
	// an evicted device's next collection re-verifies fully.
	Source StateSource
}

// AttestationService stores per-device watermarks. Safe for concurrent use.
type AttestationService struct {
	shards []wmShard
	mask   uint32
	perCap int // per-shard device cap
	sink   StateSink
	source StateSource

	errMu   sync.Mutex
	sinkErr error // first sink failure, surfaced by SinkErr
}

type wmShard struct {
	mu sync.Mutex
	wm map[string]Watermark
}

// NewAttestationService builds the watermark store.
func NewAttestationService(cfg ServiceConfig) *AttestationService {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	if cfg.MaxDevices <= 0 {
		cfg.MaxDevices = 1 << 20
	}
	perCap := cfg.MaxDevices / n
	if perCap < 1 {
		perCap = 1
	}
	s := &AttestationService{
		shards: make([]wmShard, n), mask: uint32(n - 1), perCap: perCap,
		sink: cfg.Sink, source: cfg.Source,
	}
	for i := range s.shards {
		s.shards[i].wm = make(map[string]Watermark)
	}
	return s
}

func (s *AttestationService) shard(device string) *wmShard {
	// Inline FNV-1a: the store is touched twice per collection (lookup at
	// launch, update at apply), so at fleet scale a hash.Hash allocation
	// here would be millions of garbage objects per round.
	h := uint32(2166136261)
	for i := 0; i < len(device); i++ {
		h ^= uint32(device[i])
		h *= 16777619
	}
	return &s.shards[h&s.mask]
}

// Watermark returns the device's stored watermark, if any. On a memory
// miss a configured StateSource is consulted: an evicted device's
// watermark re-hydrates from the durable store (and is re-installed,
// possibly evicting another entry) instead of forcing the device back to
// a stateless full-verification round.
func (s *AttestationService) Watermark(device string) (Watermark, bool) {
	sh := s.shard(device)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	wm, ok := sh.wm[device]
	if ok || s.source == nil {
		return wm, ok
	}
	// Miss: consult the source while still holding the shard lock — the
	// same lock Set journals under. Any concurrent Set/Reset has either
	// fully committed (so the source reflects it) or is waiting on this
	// lock and will overwrite whatever we install; either way memory and
	// journal agree, and a watermark a concurrent Reset just cleared can
	// never be resurrected from a stale pre-clear read.
	wm, ok = s.source.LoadWatermark(device)
	if !ok || wm.IsZero() {
		return Watermark{}, false
	}
	s.installLocked(sh, device, wm)
	return wm, true
}

// installLocked inserts without journaling (the value came from, or is
// already in, the durable store). Callers hold sh.mu.
func (s *AttestationService) installLocked(sh *wmShard, device string, wm Watermark) {
	if _, exists := sh.wm[device]; !exists && len(sh.wm) >= s.perCap {
		// Evict the lexicographically smallest key, not an arbitrary one:
		// which device loses its watermark decides which device re-verifies
		// fully (or re-hydrates) next round, so eviction must replay
		// identically run to run. The O(shard) scan only runs at capacity,
		// where eviction already costs a stateless round or a source read.
		evict := ""
		for k := range sh.wm {
			if evict == "" || k < evict {
				evict = k
			}
		}
		delete(sh.wm, evict)
	}
	sh.wm[device] = wm
}

// Set stores the device's watermark. A zero watermark deletes the entry
// (the device fell back to full verification; keeping a tombstone would
// only waste the memory bound). When the shard is at capacity an
// arbitrary entry is evicted — with no StateSource the evicted device's
// next collection re-verifies fully; with one it re-hydrates on demand.
// Eviction is a memory decision, so it is not journaled to the sink: the
// sink's copy of the evicted watermark is exactly what re-hydration needs.
//
// A configured sink observes every Set under the shard lock, so the
// journal order always matches the memory order (per-device calls are
// additionally serialized by the collection protocol; see Verify). Sink
// failures are sticky — see SinkErr.
func (s *AttestationService) Set(device string, wm Watermark) {
	sh := s.shard(device)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if wm.IsZero() {
		delete(sh.wm, device)
	} else {
		s.installLocked(sh, device, wm)
	}
	if s.sink != nil {
		//erasmus:allow(lockflow) the watermark journals under the shard lock so journal order equals memory order (single-writer shard discipline)
		if err := s.sink.SetWatermark(device, wm); err != nil {
			s.errMu.Lock()
			if s.sinkErr == nil {
				s.sinkErr = err
			}
			s.errMu.Unlock()
		}
	}
}

// SinkErr returns the first StateSink failure, if any. Verification keeps
// working after a sink failure (in-memory state stays correct); the error
// is surfaced here so operators learn durability is gone.
func (s *AttestationService) SinkErr() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.sinkErr
}

// Reset drops the device's watermark (decommissioning, key rotation, or
// any out-of-band reason to distrust cached state).
func (s *AttestationService) Reset(device string) { s.Set(device, Watermark{}) }

// Devices returns the number of devices currently tracked.
func (s *AttestationService) Devices() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.Lock()
		n += len(s.shards[i].wm)
		s.shards[i].mu.Unlock()
	}
	return n
}

// Verify validates one device's delta collection against its stored
// watermark and persists the successor state: the one-call front door for
// callers that do not need to separate lookup from update (the fleet
// pipeline does, to keep updates in submission order; see
// Watermark/Set and NextWatermark).
//
// Calls for *different* devices may run concurrently; calls for the same
// device must be serialized by the caller — the read-verify-write here is
// deliberately not atomic (holding a shard lock across MAC verification
// would serialize a fraction of the whole fleet), and concurrent same-
// device calls could interleave lookup and store. Collection naturally
// provides this: one collection per device is outstanding at a time.
func (s *AttestationService) Verify(device string, v *Verifier, recs []Record, now uint64, expectedK int) Report {
	wm, _ := s.Watermark(device)
	rep, next := v.VerifyDelta(recs, now, expectedK, wm)
	s.Set(device, next)
	return rep
}
