package core

import (
	"fmt"
	"testing"

	"erasmus/internal/crypto/mac"
	"erasmus/internal/sim"
)

// benchAggSetup builds an anchored aggregate round: k new records on top
// of an anchor the verifier has watermarked (chain state included), plus
// the evidence a prover would ship. Uses keyed BLAKE2s to mirror the
// fleet-facing configuration in the top-level benchmarks.
func benchAggSetup(b *testing.B, k int) (*Verifier, []Record, uint64, Watermark, AggregateEvidence) {
	b.Helper()
	const balg = mac.KeyedBLAKE2s
	// 32 bytes: BLAKE2s's native keyed mode caps keys at 32; one byte
	// more and mac.New silently folds the key through an extra hash,
	// which would skew every per-record MAC this benchmark measures.
	key := []byte("bench-device-key-0123456789abcde")
	memory := []byte("clean image")
	tm := sim.Hour
	endT := uint64(1000 * sim.Hour)
	recs := make([]Record, 0, k+1)
	for i := 0; i <= k; i++ {
		recs = append(recs, ComputeRecord(balg, key, endT-uint64(i)*uint64(tm), memory))
	}
	anchor := recs[k]
	anchorState, err := ChainOf(nil, recs[k:])
	if err != nil {
		b.Fatal(err)
	}
	head, err := ChainOf(anchorState, recs[:k])
	if err != nil {
		b.Fatal(err)
	}
	v, err := NewVerifier(VerifierConfig{
		Alg:          balg,
		Key:          key,
		GoldenHashes: [][]byte{mac.HashSum(balg, memory)},
		MinGap:       tm - sim.Minute,
		MaxGap:       tm + sim.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	wm := Watermark{T: anchor.T, Hash: anchor.Hash, MAC: anchor.MAC, Chain: anchorState}
	agg := AggregateEvidence{
		Since:      anchor.T,
		Nonce:      7,
		AnchorHash: anchor.Hash,
		State:      head,
	}
	agg.MAC = mac.Sum(balg, key, AggMACInput(agg.Since, agg.Nonce, agg.AnchorHash, agg.State))
	now := endT + uint64(30*sim.Minute)
	return v, recs, now, wm, agg
}

// BenchmarkAggComponents decomposes one aggregate verification into its
// three costs — the hash walk, the chain-trusted grading pass, and the
// single MAC — so regressions are attributable.
func BenchmarkAggComponents(b *testing.B) {
	const k = 128
	v, recs, now, wm, agg := benchAggSetup(b, k)

	b.Run("walk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !walkChain(wm.Chain, recs, len(recs)-1, agg.State) {
				b.Fatal("walk diverged")
			}
		}
	})
	b.Run("grade", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]VerifiedRecord, 0, k)
		for i := 0; i < b.N; i++ {
			rep := Report{Records: buf[:0]}
			v.gradeChainTrusted(recs[:k], now, &rep)
			if len(rep.Records) != k {
				b.Fatal("grade dropped records")
			}
		}
	})
	b.Run("mac", func(b *testing.B) {
		b.ReportAllocs()
		input := AggMACInput(agg.Since, agg.Nonce, agg.AnchorHash, agg.State)
		for i := 0; i < b.N; i++ {
			if !mac.Verify(v.cfg.Alg, v.cfg.Key, input, agg.MAC) {
				b.Fatal("MAC rejected")
			}
		}
	})
}

// BenchmarkVerifyDeltaAggregateCore is the in-package end-to-end number
// for one anchored aggregate round (cf. the top-level
// BenchmarkIncrementalVerify, which also exercises the wire shapes).
func BenchmarkVerifyDeltaAggregateCore(b *testing.B) {
	for _, k := range []int{16, 128, 512} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			v, recs, now, wm, agg := benchAggSetup(b, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, _ := v.VerifyDeltaAggregate(recs, now, 0, wm, agg)
				if !rep.AggregateApplied || !rep.Healthy() {
					b.Fatalf("aggregate round not clean: %+v", rep)
				}
			}
		})
	}
}
