package core

import (
	"fmt"

	"erasmus/internal/crypto/mac"
	"erasmus/internal/sim"
)

// Buffer is the prover's rolling measurement store (§3.2, Fig. 3): a fixed
// region of insecure memory organized as a windowed circular buffer of n
// fixed-size record slots. The i-th measurement is stored at L_{i mod n}.
//
// The backing slice is supplied by the device (its Store region), so
// resident malware can tamper with stored records — which, per §3.4, is
// detected at the next collection because malware cannot forge MACs.
type Buffer struct {
	alg     mac.Algorithm
	n       int
	recSize int
	backing []byte
}

// NewBuffer wraps a device store region as an n-slot buffer. The region
// must hold at least n records.
func NewBuffer(alg mac.Algorithm, n int, backing []byte) (*Buffer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: buffer needs ≥1 slot, got %d", n)
	}
	rs := RecordSize(alg)
	if len(backing) < n*rs {
		return nil, fmt.Errorf("core: store of %d bytes cannot hold %d records of %d bytes",
			len(backing), n, rs)
	}
	return &Buffer{alg: alg, n: n, recSize: rs, backing: backing}, nil
}

// Slots returns n, the buffer capacity in records.
func (b *Buffer) Slots() int { return b.n }

// SlotForTime implements the paper's stateless schedule mapping for regular
// intervals: i = ⌊t/TM⌋ mod n. Because it depends only on the RROC value
// and configuration, the prover needs no persistent write cursor — it
// recovers the correct slot even after a reboot.
//
// tm must be positive; NewProver rejects stateless schedules with a
// non-positive nominal TM at construction time, so the runtime never gets
// here with one. A direct caller passing tm ≤ 0 is addressed to slot 0
// rather than crashing the prover loop.
func (b *Buffer) SlotForTime(t uint64, tm sim.Ticks) int {
	if tm <= 0 {
		return 0
	}
	return int((t / uint64(tm)) % uint64(b.n))
}

// Put stores the record in the given slot.
func (b *Buffer) Put(slot int, r Record) {
	b.check(slot)
	copy(b.backing[slot*b.recSize:], r.Encode(b.alg))
}

// Get reads the record in the given slot. The result is unauthenticated.
func (b *Buffer) Get(slot int) (Record, error) {
	b.check(slot)
	return DecodeRecord(b.alg, b.backing[slot*b.recSize:(slot+1)*b.recSize])
}

// Erase zeroes a slot (used by tamper experiments to model record
// deletion by malware).
func (b *Buffer) Erase(slot int) {
	b.check(slot)
	for i := slot * b.recSize; i < (slot+1)*b.recSize; i++ {
		b.backing[i] = 0
	}
}

// Latest returns the k most recent records reading backward from slot i:
// M = {*L_{(i−j) mod n} | 0 ≤ j < k}, the collection set of Fig. 2. k is
// clamped to n, per the protocol ("if k > n: k = n"). Never-written
// (all-zero) slots are skipped, so a freshly booted prover returns fewer
// than k records rather than garbage.
func (b *Buffer) Latest(i, k int) []Record {
	b.check(i)
	if k > b.n {
		k = b.n
	}
	if k < 0 {
		k = 0
	}
	out := make([]Record, 0, k)
	for j := 0; j < k; j++ {
		slot := ((i-j)%b.n + b.n) % b.n
		r, err := b.Get(slot)
		if err != nil {
			continue
		}
		if r.IsZero() {
			continue
		}
		out = append(out, r)
	}
	return out
}

// LatestSince returns the records measured at or after since, reading
// backward from slot i and stopping at the first record older than since
// — the delta-collection read. With an honest buffer (timestamps decrease
// going backward) the scan touches O(returned)+1 slots, which is what
// makes serving an incremental collection proportional to the new history
// rather than to k; tampered orderings merely ship extra records that the
// verifier then flags. k caps the result; k ≤ 0 means the whole buffer.
// The second return value is the number of slots visited, for cost
// accounting.
func (b *Buffer) LatestSince(i, k int, since uint64) ([]Record, int) {
	b.check(i)
	if k <= 0 || k > b.n {
		k = b.n
	}
	out := make([]Record, 0, k)
	visited := 0
	for j := 0; j < b.n && len(out) < k; j++ {
		slot := ((i-j)%b.n + b.n) % b.n
		visited++
		r, err := b.Get(slot)
		if err != nil {
			continue
		}
		if r.IsZero() {
			continue
		}
		if r.T < since {
			break
		}
		out = append(out, r)
	}
	return out, visited
}

func (b *Buffer) check(slot int) {
	if slot < 0 || slot >= b.n {
		panic(fmt.Sprintf("core: slot %d outside buffer of %d", slot, b.n))
	}
}
