package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"erasmus/internal/crypto/mac"
)

func TestCollectRequestRoundTrip(t *testing.T) {
	req := CollectRequest{K: 17}
	got, err := DecodeCollectRequest(req.Encode())
	if err != nil || got.K != 17 {
		t.Fatalf("round trip: %+v, %v", got, err)
	}
	if _, err := DecodeCollectRequest([]byte{1, 2}); err == nil {
		t.Fatal("short request accepted")
	}
}

func TestCollectResponseRoundTrip(t *testing.T) {
	recs := []Record{
		ComputeRecord(alg, testKey, 300, []byte("m3")),
		ComputeRecord(alg, testKey, 200, []byte("m2")),
		ComputeRecord(alg, testKey, 100, []byte("m1")),
	}
	enc := CollectResponse{Records: recs}.Encode(alg)
	got, err := DecodeCollectResponse(alg, enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 3 {
		t.Fatalf("decoded %d records", len(got.Records))
	}
	for i := range recs {
		if got.Records[i].T != recs[i].T ||
			//erasmus:allow(ctcompare) wire round-trip assertion on test-known values; no prover-supplied operand, no timing oracle
			!bytes.Equal(got.Records[i].MAC, recs[i].MAC) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestCollectResponseEmpty(t *testing.T) {
	got, err := DecodeCollectResponse(alg, CollectResponse{}.Encode(alg))
	if err != nil || len(got.Records) != 0 {
		t.Fatalf("empty round trip: %v, %d records", err, len(got.Records))
	}
}

func TestCollectResponseRejectsMalformed(t *testing.T) {
	if _, err := DecodeCollectResponse(alg, []byte{0}); err == nil {
		t.Fatal("truncated count accepted")
	}
	if _, err := DecodeCollectResponse(alg, []byte{0, 3, 1, 2}); err == nil {
		t.Fatal("truncated records accepted")
	}
	good := CollectResponse{Records: history(1, 100, 1, []byte("m"))}.Encode(alg)
	if _, err := DecodeCollectResponse(alg, append(good, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestODRequestRoundTripWire(t *testing.T) {
	req := NewODRequest(alg, testKey, 123456, 7)
	got, err := DecodeODRequest(alg, req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	//erasmus:allow(ctcompare) wire round-trip assertion on test-known values; no prover-supplied operand, no timing oracle
	if got.Treq != 123456 || got.K != 7 || !bytes.Equal(got.MAC, req.MAC) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := DecodeODRequest(alg, req.Encode()[:10]); err == nil {
		t.Fatal("truncated OD request accepted")
	}
}

func TestODRequestMACBindsKAndTreq(t *testing.T) {
	a := NewODRequest(alg, testKey, 100, 5)
	b := NewODRequest(alg, testKey, 100, 6)
	c := NewODRequest(alg, testKey, 101, 5)
	//erasmus:allow(ctcompare) record-equality helper over test-known values; no prover-supplied operand, no timing oracle
	if bytes.Equal(a.MAC, b.MAC) || bytes.Equal(a.MAC, c.MAC) {
		t.Fatal("request MAC does not bind treq and k")
	}
}

func TestODResponseRoundTrip(t *testing.T) {
	m0 := ComputeRecord(alg, testKey, 500, []byte("fresh"))
	hist := history(2, 400, 100, []byte("older"))
	enc := ODResponse{M0: m0, Records: hist}.Encode(alg)
	got, err := DecodeODResponse(alg, enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.M0.T != 500 || len(got.Records) != 2 {
		t.Fatalf("round trip: M0.T=%d, %d records", got.M0.T, len(got.Records))
	}
	if !got.M0.VerifyMAC(alg, testKey) {
		t.Fatal("M0 corrupted in transit encoding")
	}
	if _, err := DecodeODResponse(alg, enc[:5]); err == nil {
		t.Fatal("truncated OD response accepted")
	}
	if _, err := DecodeODResponse(alg, append(enc, 1)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// Property: responses of any size round-trip for every algorithm.
func TestPropertyResponseRoundTrip(t *testing.T) {
	f := func(count uint8, seed uint32) bool {
		for _, a := range mac.Algorithms() {
			n := int(count) % 20
			recs := make([]Record, n)
			for i := range recs {
				recs[i] = ComputeRecord(a, testKey, uint64(seed)+uint64(i), []byte{byte(seed), byte(i)})
			}
			got, err := DecodeCollectResponse(a, CollectResponse{Records: recs}.Encode(a))
			if err != nil || len(got.Records) != n {
				return false
			}
			for i := range recs {
				if !got.Records[i].VerifyMAC(a, testKey) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
