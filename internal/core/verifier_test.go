package core

import (
	"strings"
	"testing"

	"erasmus/internal/crypto/mac"
	"erasmus/internal/sim"
)

const alg = mac.HMACSHA256

// history builds a newest-first record chain of count records ending at
// endT, spaced by tm, over the given memory image.
func history(count int, endT uint64, tm sim.Ticks, memory []byte) []Record {
	recs := make([]Record, 0, count)
	for i := 0; i < count; i++ {
		recs = append(recs, ComputeRecord(alg, testKey, endT-uint64(i)*uint64(tm), memory))
	}
	return recs
}

func newTestVerifier(t *testing.T, golden ...[]byte) *Verifier {
	t.Helper()
	v, err := NewVerifier(VerifierConfig{
		Alg:          alg,
		Key:          testKey,
		GoldenHashes: golden,
		MinGap:       sim.Hour - sim.Minute,
		MaxGap:       sim.Hour + sim.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func goldenFor(memory []byte) []byte { return mac.HashSum(alg, memory) }

func TestNewVerifierValidation(t *testing.T) {
	if _, err := NewVerifier(VerifierConfig{Alg: mac.Algorithm(42), Key: testKey}); err == nil {
		t.Error("bad alg accepted")
	}
	if _, err := NewVerifier(VerifierConfig{Alg: alg}); err == nil {
		t.Error("missing key accepted")
	}
	if _, err := NewVerifier(VerifierConfig{Alg: alg, Key: testKey, MinGap: 10, MaxGap: 5}); err == nil {
		t.Error("MaxGap < MinGap accepted")
	}
}

func TestHealthyHistory(t *testing.T) {
	memory := []byte("clean image")
	v := newTestVerifier(t, goldenFor(memory))
	endT := uint64(100 * sim.Hour)
	recs := history(5, endT, sim.Hour, memory)
	rep := v.VerifyHistory(recs, endT+uint64(30*sim.Minute), 5)
	if !rep.Healthy() {
		t.Fatalf("healthy history flagged: %+v", rep.Issues)
	}
	if rep.Freshness != 30*sim.Minute {
		t.Fatalf("freshness = %v", rep.Freshness)
	}
	for i, r := range rep.Records {
		if r.Verdict != VerdictOK {
			t.Fatalf("record %d verdict %v", i, r.Verdict)
		}
	}
}

func TestDetectsInfectedState(t *testing.T) {
	clean := []byte("clean image")
	infected := []byte("clean image + implant")
	v := newTestVerifier(t, goldenFor(clean))
	endT := uint64(100 * sim.Hour)
	recs := history(4, endT, sim.Hour, clean)
	// The second-newest measurement caught malware resident.
	recs[1] = ComputeRecord(alg, testKey, endT-uint64(sim.Hour), infected)
	rep := v.VerifyHistory(recs, endT, 4)
	if !rep.InfectionDetected {
		t.Fatal("infection not detected")
	}
	if rep.TamperDetected {
		t.Fatal("infection misreported as tampering")
	}
	if rep.Records[1].Verdict != VerdictInfected {
		t.Fatalf("verdict = %v", rep.Records[1].Verdict)
	}
}

func TestDetectsTamperedMAC(t *testing.T) {
	memory := []byte("clean")
	v := newTestVerifier(t, goldenFor(memory))
	endT := uint64(10 * sim.Hour)
	recs := history(3, endT, sim.Hour, memory)
	recs[2].MAC[0] ^= 1
	rep := v.VerifyHistory(recs, endT, 3)
	if !rep.TamperDetected {
		t.Fatal("tampered MAC not detected")
	}
	if rep.Records[2].Verdict != VerdictBadMAC {
		t.Fatalf("verdict = %v", rep.Records[2].Verdict)
	}
}

func TestDetectsReordering(t *testing.T) {
	memory := []byte("clean")
	v := newTestVerifier(t, goldenFor(memory))
	endT := uint64(10 * sim.Hour)
	recs := history(3, endT, sim.Hour, memory)
	recs[0], recs[1] = recs[1], recs[0] // malware reorders records
	rep := v.VerifyHistory(recs, endT, 3)
	if !rep.TamperDetected {
		t.Fatal("reordering not detected")
	}
}

func TestDetectsDeletion(t *testing.T) {
	memory := []byte("clean")
	v := newTestVerifier(t, goldenFor(memory))
	endT := uint64(10 * sim.Hour)
	recs := history(5, endT, sim.Hour, memory)
	// Malware deletes the middle record: count drops and a double gap
	// appears.
	recs = append(recs[:2], recs[3:]...)
	rep := v.VerifyHistory(recs, endT, 5)
	if !rep.TamperDetected {
		t.Fatal("deletion not detected via count")
	}
	if rep.MissingRecords != 1 {
		t.Fatalf("missing = %d", rep.MissingRecords)
	}
	if rep.ScheduleGaps == 0 {
		t.Fatal("deletion did not surface as a schedule gap")
	}
}

func TestDetectsFutureTimestamp(t *testing.T) {
	memory := []byte("clean")
	v := newTestVerifier(t, goldenFor(memory))
	rec := ComputeRecord(alg, testKey, uint64(100*sim.Hour), memory)
	rep := v.VerifyHistory([]Record{rec}, uint64(99*sim.Hour), 0)
	if !rep.TamperDetected {
		t.Fatal("future timestamp accepted")
	}
}

func TestFreshnessBound(t *testing.T) {
	memory := []byte("clean")
	v, err := NewVerifier(VerifierConfig{
		Alg: alg, Key: testKey,
		GoldenHashes:   [][]byte{goldenFor(memory)},
		FreshnessBound: sim.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := ComputeRecord(alg, testKey, uint64(10*sim.Hour), memory)
	rep := v.VerifyHistory([]Record{rec}, uint64(13*sim.Hour), 0)
	if !rep.TamperDetected {
		t.Fatal("stale history accepted under freshness bound")
	}
	found := false
	for _, is := range rep.Issues {
		if strings.Contains(is, "old") {
			found = true
		}
	}
	if !found {
		t.Fatal("staleness issue not reported")
	}
}

func TestExpectedKZeroSkipsLengthCheck(t *testing.T) {
	memory := []byte("clean")
	v := newTestVerifier(t, goldenFor(memory))
	endT := uint64(10 * sim.Hour)
	rep := v.VerifyHistory(history(2, endT, sim.Hour, memory), endT, 0)
	if rep.MissingRecords != 0 || !rep.Healthy() {
		t.Fatalf("short-but-unchecked history flagged: %+v", rep)
	}
}

func TestMultipleGoldenStates(t *testing.T) {
	v1 := []byte("firmware v1")
	v2 := []byte("firmware v2")
	v := newTestVerifier(t, goldenFor(v1), goldenFor(v2))
	endT := uint64(10 * sim.Hour)
	recs := []Record{
		ComputeRecord(alg, testKey, endT, v2),
		ComputeRecord(alg, testKey, endT-uint64(sim.Hour), v1),
	}
	rep := v.VerifyHistory(recs, endT, 2)
	if rep.InfectionDetected {
		t.Fatal("sanctioned firmware upgrade flagged as infection")
	}
}

func TestVerifyODResponse(t *testing.T) {
	memory := []byte("clean")
	v := newTestVerifier(t, goldenFor(memory))
	endT := uint64(10 * sim.Hour)
	hist := history(3, endT, sim.Hour, memory)
	now := endT + uint64(10*sim.Second)
	m0 := ComputeRecord(alg, testKey, now-uint64(sim.Second), memory)

	rep := v.VerifyODResponse(m0, hist, now, 3, 10*sim.Second)
	if !rep.Healthy() {
		t.Fatalf("healthy OD response flagged: %v", rep.Issues)
	}
	// Freshness is now relative to M0, i.e. much better than TM/2.
	if rep.Freshness != sim.Second {
		t.Fatalf("freshness = %v, want 1s", rep.Freshness)
	}
	if len(rep.Records) != 4 || rep.Records[0].Record.T != m0.T {
		t.Fatal("M0 not included first in the report")
	}
}

func TestVerifyODResponseStaleM0(t *testing.T) {
	memory := []byte("clean")
	v := newTestVerifier(t, goldenFor(memory))
	now := uint64(10 * sim.Hour)
	m0 := ComputeRecord(alg, testKey, now-uint64(sim.Minute), memory)
	rep := v.VerifyODResponse(m0, nil, now, 0, 10*sim.Second)
	if !rep.TamperDetected {
		t.Fatal("stale M0 accepted")
	}
}

func TestVerifyODResponseInfectedM0(t *testing.T) {
	clean := []byte("clean")
	v := newTestVerifier(t, goldenFor(clean))
	now := uint64(10 * sim.Hour)
	m0 := ComputeRecord(alg, testKey, now, []byte("evil"))
	rep := v.VerifyODResponse(m0, nil, now, 0, 10*sim.Second)
	if !rep.InfectionDetected {
		t.Fatal("infected M0 not flagged")
	}
}

func TestQoAMath(t *testing.T) {
	q := QoA{TM: sim.Hour, TC: 6 * sim.Hour}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.RecordsPerCollection() != 6 {
		t.Errorf("k = %d, want 6", q.RecordsPerCollection())
	}
	if q.MinBufferSlots() != 6 {
		t.Errorf("n = %d", q.MinBufferSlots())
	}
	if q.ExpectedFreshness() != 30*sim.Minute {
		t.Errorf("E[f] = %v", q.ExpectedFreshness())
	}
	if q.MaxDetectionDelay() != 7*sim.Hour {
		t.Errorf("max delay = %v", q.MaxDetectionDelay())
	}
	// Non-dividing TC: k = ceil.
	q2 := QoA{TM: sim.Hour, TC: 90 * sim.Minute}
	if q2.RecordsPerCollection() != 2 {
		t.Errorf("ceil k = %d, want 2", q2.RecordsPerCollection())
	}
	if (QoA{TM: 0, TC: 1}).Validate() == nil {
		t.Error("TM=0 validated")
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		VerdictOK: "ok", VerdictBadMAC: "bad-mac", VerdictInfected: "infected", Verdict(9): "Verdict(9)",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q", int(v), v.String())
		}
	}
}

// A record measured just after the verifier's clock reading must not be
// flagged as tampered when the configured skew tolerance covers the drift
// — the false-tamper class a real (wall-paced) transport produces.
func TestClockSkewToleratesDrift(t *testing.T) {
	memory := []byte("clean image")
	now := uint64(100 * sim.Hour)
	rec := ComputeRecord(alg, testKey, now+uint64(5*sim.Millisecond), memory)

	strict := newTestVerifier(t, goldenFor(memory))
	if rep := strict.VerifyHistory([]Record{rec}, now, 0); !rep.TamperDetected {
		t.Fatal("zero tolerance must keep the strict future-timestamp check")
	}

	lenient, err := NewVerifier(VerifierConfig{
		Alg: alg, Key: testKey, GoldenHashes: [][]byte{goldenFor(memory)},
		ClockSkew: 10 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep := lenient.VerifyHistory([]Record{rec}, now, 0); rep.TamperDetected {
		t.Fatalf("5ms drift flagged despite 10ms tolerance: %+v", rep.Issues)
	}
	far := ComputeRecord(alg, testKey, now+uint64(sim.Second), memory)
	if rep := lenient.VerifyHistory([]Record{far}, now, 0); !rep.TamperDetected {
		t.Fatal("1s-future record slipped past a 10ms tolerance")
	}
	if _, err := NewVerifier(VerifierConfig{Alg: alg, Key: testKey, ClockSkew: -1}); err == nil {
		t.Error("negative clock skew accepted")
	}
}
