package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"erasmus/internal/costmodel"
	"erasmus/internal/crypto/mac"
	"erasmus/internal/hw/cpu"
	"erasmus/internal/sim"
)

// Device is the security-architecture surface the prover runtime needs.
// Both hardware models (internal/hw/mcu for SMART+, internal/hw/imx6 for
// HYDRA) satisfy it.
type Device interface {
	// Arch selects the calibrated cost model.
	Arch() costmodel.Arch
	// Engine is the simulation the device lives in.
	Engine() *sim.Engine
	// CPU is the single-core occupancy tracker.
	CPU() *cpu.Tracker
	// Violations is the device's access-violation log.
	Violations() *cpu.ViolationLog
	// Memory is the live attested memory image.
	Memory() []byte
	// Store is the insecure region holding the measurement buffer.
	Store() []byte
	// RROC reads the reliable read-only clock (ns since epoch).
	RROC() uint64
	// Attest runs fn atomically inside the protected attestation code
	// with access to the device secret K.
	Attest(fn func(key []byte)) error
	// SetOneShotTimer arms a hardware timer.
	SetOneShotTimer(delay sim.Ticks, fn func()) *sim.Event
}

// ProverConfig parameterizes a prover runtime.
type ProverConfig struct {
	// Alg is the MAC algorithm for measurements.
	Alg mac.Algorithm
	// Schedule drives self-measurement timing. Required.
	Schedule Schedule
	// Slots is n, the rolling buffer capacity. Required, positive; the
	// device store must hold Slots × RecordSize(Alg) bytes.
	Slots int
	// LenientWindow is w ≥ 1 from §5: an aborted measurement may be
	// retried until w×TM after its scheduled time. Values < 1 (including
	// zero) mean strict scheduling: aborted measurements are lost.
	LenientWindow float64
	// ODFreshnessWindow bounds |treq − RROC| for accepted on-demand
	// requests (default 10 s). Stale or replayed requests are rejected
	// before any expensive computation (the SMART+ anti-DoS check).
	ODFreshnessWindow sim.Ticks
	// OnEvent, if set, receives the prover's runtime event stream
	// (see EventKind). Nil disables tracing at zero cost.
	OnEvent func(Event)
}

// ProverStats counts runtime activity.
type ProverStats struct {
	Measurements         int // committed self-measurements
	Aborted              int // measurements aborted mid-flight
	Missed               int // scheduled measurements never completed
	Collections          int // ERASMUS collection requests served
	DeltaCollections     int // incremental (since-watermark) collections served
	AggregateCollections int // aggregate-anchor collections served (one MAC each)
	ODRequests           int // on-demand/+OD requests received
	ODRejected           int // requests failing freshness/authentication
	ODMeasured           int // real-time measurements computed for OD requests
	RetriesQueued        int // lenient-window retries scheduled
}

// Prover is the ERASMUS runtime on one device: a timer-driven
// self-measurement loop plus collection-phase handlers.
type Prover struct {
	dev Device
	cfg ProverConfig
	buf *Buffer

	seq      int // sequence-addressed slot cursor (irregular schedules)
	lastSlot int // slot of the most recent committed record, -1 if none
	lastT    uint64

	// chain is the streaming digest over every committed record's
	// (t, hash) content, oldest first — the hash chain the aggregate
	// collection tier authenticates with a single MAC. It lives in the
	// prover runtime (trusted measurement path), not the insecure store:
	// resident malware can rewrite buffered records but cannot touch the
	// chain, which is exactly the discrepancy the verifier's walk
	// detects. Rolling-buffer overwrites do not rewind it: the chain
	// commits to history, the buffer merely caches the recent window.
	chain chainDigest

	pendingEv *sim.Event
	running   bool

	lastTreq uint64 // anti-replay floor for on-demand requests

	stats ProverStats
}

// NewProver builds a prover over a device. The measurement buffer is laid
// out in the device's insecure store region.
func NewProver(dev Device, cfg ProverConfig) (*Prover, error) {
	if dev == nil {
		return nil, errors.New("core: nil device")
	}
	if cfg.Schedule == nil {
		return nil, errors.New("core: ProverConfig.Schedule is required")
	}
	if !cfg.Alg.Valid() {
		return nil, fmt.Errorf("core: invalid MAC algorithm %d", int(cfg.Alg))
	}
	// Stateless schedules address slots as ⌊t/TM⌋ mod n; a non-positive
	// nominal TM would make that arithmetic meaningless, so reject it here
	// at configuration time instead of panicking in the measurement loop.
	if cfg.Schedule.Stateless() && cfg.Schedule.NominalTM() <= 0 {
		return nil, fmt.Errorf("core: stateless schedule has non-positive nominal TM %v",
			cfg.Schedule.NominalTM())
	}
	if cfg.ODFreshnessWindow <= 0 {
		cfg.ODFreshnessWindow = 10 * sim.Second
	}
	buf, err := NewBuffer(cfg.Alg, cfg.Slots, dev.Store())
	if err != nil {
		return nil, err
	}
	return &Prover{dev: dev, cfg: cfg, buf: buf, lastSlot: -1, chain: newChain()}, nil
}

// Buffer exposes the rolling store (tamper experiments reach records
// through it, as resident malware would).
func (p *Prover) Buffer() *Buffer { return p.buf }

// Stats returns a snapshot of runtime counters.
func (p *Prover) Stats() ProverStats { return p.stats }

// LastMeasurementTime returns the RROC timestamp of the latest committed
// record, or 0 if none.
func (p *Prover) LastMeasurementTime() uint64 { return p.lastT }

// Start arms the measurement schedule. Measurements fire autonomously
// until Stop.
func (p *Prover) Start() {
	if p.running {
		return
	}
	p.running = true
	p.scheduleNext()
}

// Stop disarms the schedule. In-flight measurements still complete.
func (p *Prover) Stop() {
	p.running = false
	if p.pendingEv != nil {
		p.pendingEv.Cancel()
		p.pendingEv = nil
	}
}

func (p *Prover) scheduleNext() {
	if !p.running {
		return
	}
	delay := p.cfg.Schedule.NextInterval(p.dev.RROC())
	p.pendingEv = p.dev.SetOneShotTimer(delay, func() {
		scheduledAt := p.dev.RROC()
		p.beginMeasurement(scheduledAt, p.retryDeadline(scheduledAt))
		p.scheduleNext()
	})
}

// retryDeadline computes the lenient-window end (§5): w × TM after the
// scheduled time, or zero for strict scheduling.
func (p *Prover) retryDeadline(scheduledAt uint64) uint64 {
	if p.cfg.LenientWindow <= 1 {
		return 0
	}
	win := float64(p.cfg.Schedule.NominalTM()) * p.cfg.LenientWindow
	return scheduledAt + uint64(win)
}

// MeasureNow triggers an unscheduled self-measurement immediately (used by
// tests and by setups that warm the buffer before an experiment).
func (p *Prover) MeasureNow() {
	p.beginMeasurement(p.dev.RROC(), 0)
}

// beginMeasurement queues the measurement behind any current CPU work,
// computes the record inside the protected context at its start time, and
// commits it at its end time — unless aborted, in which case the lenient
// policy may schedule a retry before deadline.
func (p *Prover) beginMeasurement(scheduledAt, retryBy uint64) {
	e := p.dev.Engine()
	dur := costmodel.MeasurementTime(p.dev.Arch(), p.cfg.Alg, len(p.dev.Memory()))
	occ := p.dev.CPU().Occupy(cpu.KindMeasurement, dur)

	var rec Record
	var attErr error
	e.At(occ.Start, func() {
		if occ.Aborted {
			return
		}
		attErr = p.dev.Attest(func(key []byte) {
			rec = ComputeRecord(p.cfg.Alg, key, p.dev.RROC(), p.dev.Memory())
		})
	})
	e.At(occ.End, func() {
		if occ.Aborted {
			p.stats.Aborted++
			p.emit(EventMeasurementAbort, 0, "aborted mid-measurement")
			p.maybeRetry(scheduledAt, retryBy, dur)
			return
		}
		if attErr != nil {
			p.stats.Missed++
			p.emit(EventWindowMissed, 0, attErr.Error())
			return
		}
		p.commit(rec)
	})
}

// maybeRetry implements the §5 lenient policy: an aborted measurement is
// rescheduled to the end of the current w×TM window if it can still finish
// by then; otherwise the window is missed.
func (p *Prover) maybeRetry(scheduledAt, retryBy uint64, dur sim.Ticks) {
	now := p.dev.RROC()
	if retryBy == 0 || now+uint64(dur) > retryBy {
		p.stats.Missed++
		p.emit(EventWindowMissed, 0, "no room left in lenient window")
		return
	}
	p.stats.RetriesQueued++
	p.emit(EventRetryScheduled, 0, "retry at end of lenient window")
	startAt := retryBy - uint64(dur)
	delay := sim.Ticks(0)
	if startAt > now {
		delay = sim.Ticks(startAt - now)
	}
	p.dev.SetOneShotTimer(delay, func() {
		p.beginMeasurement(scheduledAt, retryBy)
	})
}

// AbortMeasurement aborts an in-flight self-measurement (a time-critical
// task needs the CPU, §5). It reports whether a measurement was running.
func (p *Prover) AbortMeasurement() bool {
	if p.dev.CPU().ActiveKind() != cpu.KindMeasurement {
		return false
	}
	return p.dev.CPU().Abort()
}

// commit stores the record: time-addressed slot for stateless regular
// schedules, sequence-addressed otherwise.
func (p *Prover) commit(rec Record) {
	var slot int
	if p.cfg.Schedule.Stateless() {
		slot = p.buf.SlotForTime(rec.T, p.cfg.Schedule.NominalTM())
	} else {
		slot = p.seq % p.buf.Slots()
		p.seq++
	}
	p.buf.Put(slot, rec)
	chainAbsorb(p.chain, rec.T, rec.Hash)
	p.lastSlot = slot
	p.lastT = rec.T
	p.stats.Measurements++
	p.emit(EventMeasurement, rec.T, fmt.Sprintf("slot %d", slot))
}

// CollectTiming itemizes the prover-side cost of serving one collection,
// reproducing Table 2's rows.
type CollectTiming struct {
	VerifyRequest        sim.Ticks // on-demand variants only
	ComputeMeasurement   sim.Ticks // on-demand variants only
	ReadBuffer           sim.Ticks
	AuthenticateResponse sim.Ticks // aggregate collections only: the one MAC over the chain head
	ConstructPacket      sim.Ticks
	SendPacket           sim.Ticks
}

// Total sums all phases.
func (t CollectTiming) Total() sim.Ticks {
	return t.VerifyRequest + t.ComputeMeasurement + t.ReadBuffer + t.AuthenticateResponse + t.ConstructPacket + t.SendPacket
}

// HandleCollect serves a plain ERASMUS collection (Fig. 2): read the k
// latest records from the buffer and return them, newest first. No
// cryptographic work, no request authentication — tampering with the
// response is self-incriminating, and there is no computational-DoS
// surface to protect.
func (p *Prover) HandleCollect(k int) ([]Record, CollectTiming) {
	p.stats.Collections++
	timing := CollectTiming{
		ReadBuffer:      costmodel.BufferReadTime(p.dev.Arch(), k),
		ConstructPacket: costmodel.ConstructPacketTime(p.dev.Arch()),
		SendPacket:      costmodel.SendPacketTime(p.dev.Arch()),
	}
	p.dev.CPU().Occupy(cpu.KindCollection, timing.Total())
	if p.lastSlot < 0 {
		p.emit(EventCollection, 0, "empty history")
		return nil, timing
	}
	recs := p.buf.Latest(p.lastSlot, k)
	p.emit(EventCollection, p.lastT, fmt.Sprintf("%d records", len(recs)))
	return recs, timing
}

// HandleCollectDelta serves an incremental collection: the records
// measured at or after since (the verifier's watermark), newest first,
// capped at k (k ≤ 0 means everything since, clamped to the buffer
// size). Like HandleCollect it involves no cryptography and no request
// authentication; unlike it, the buffer read stops at the watermark, so
// the prover-side cost — like the response size and the verifier's MAC
// work — is proportional to the *new* history only.
func (p *Prover) HandleCollectDelta(since uint64, k int) ([]Record, CollectTiming) {
	p.stats.Collections++
	p.stats.DeltaCollections++
	if p.lastSlot < 0 {
		timing := CollectTiming{
			ConstructPacket: costmodel.ConstructPacketTime(p.dev.Arch()),
			SendPacket:      costmodel.SendPacketTime(p.dev.Arch()),
		}
		p.dev.CPU().Occupy(cpu.KindCollection, timing.Total())
		p.emit(EventCollection, 0, "empty history (delta)")
		return nil, timing
	}
	recs, visited := p.buf.LatestSince(p.lastSlot, k, since)
	timing := CollectTiming{
		ReadBuffer:      costmodel.BufferReadTime(p.dev.Arch(), visited),
		ConstructPacket: costmodel.ConstructPacketTime(p.dev.Arch()),
		SendPacket:      costmodel.SendPacketTime(p.dev.Arch()),
	}
	p.dev.CPU().Occupy(cpu.KindCollection, timing.Total())
	p.emit(EventCollection, p.lastT, fmt.Sprintf("%d records since t=%d", len(recs), since))
	return recs, timing
}

// reqMACInput is the authenticated portion of an on-demand request.
func reqMACInput(treq uint64, k int) []byte {
	var b [12]byte
	binary.BigEndian.PutUint64(b[:8], treq)
	binary.BigEndian.PutUint32(b[8:], uint32(k))
	return b[:]
}

// NewODRequestMAC computes the verifier-side authentication token for an
// on-demand request <treq, k, MAC_K(treq, k)>.
func NewODRequestMAC(alg mac.Algorithm, key []byte, treq uint64, k int) []byte {
	return mac.Sum(alg, key, reqMACInput(treq, k))
}

// Errors returned by the on-demand request path.
var (
	ErrStaleRequest = errors.New("core: request timestamp outside freshness window")
	ErrReplay       = errors.New("core: request timestamp not newer than last accepted")
	ErrBadRequest   = errors.New("core: request authentication failed")
)

// authenticateRequest performs the SMART+ checks: freshness against the
// RROC, anti-replay against the last accepted treq, and MAC verification
// inside the protected context. It charges the (small) authentication cost
// and returns the verdict.
func (p *Prover) authenticateRequest(treq uint64, k int, reqMAC []byte) (CollectTiming, error) {
	timing := CollectTiming{VerifyRequest: costmodel.AuthTime(p.dev.Arch())}
	p.dev.CPU().Occupy(cpu.KindAuth, timing.VerifyRequest)

	now := p.dev.RROC()
	w := uint64(p.cfg.ODFreshnessWindow)
	if treq+w < now || treq > now+w {
		return timing, ErrStaleRequest
	}
	if treq <= p.lastTreq {
		return timing, ErrReplay
	}
	ok := false
	attErr := p.dev.Attest(func(key []byte) {
		ok = mac.Verify(p.cfg.Alg, key, reqMACInput(treq, k), reqMAC)
	})
	if attErr != nil {
		return timing, attErr
	}
	if !ok {
		return timing, ErrBadRequest
	}
	p.lastTreq = treq
	return timing, nil
}

// measureOnDemand computes a real-time measurement synchronously in
// virtual time, charging the full measurement cost, and returns it.
func (p *Prover) measureOnDemand() (Record, sim.Ticks, error) {
	dur := costmodel.MeasurementTime(p.dev.Arch(), p.cfg.Alg, len(p.dev.Memory()))
	p.dev.CPU().Occupy(cpu.KindMeasurement, dur)
	var rec Record
	err := p.dev.Attest(func(key []byte) {
		rec = ComputeRecord(p.cfg.Alg, key, p.dev.RROC(), p.dev.Memory())
	})
	if err != nil {
		return Record{}, dur, err
	}
	p.stats.ODMeasured++
	return rec, dur, nil
}

// HandleCollectOD serves an ERASMUS+OD request (Fig. 4): authenticate,
// compute a fresh measurement M0, and return it together with the k latest
// stored records. The fresh record is NOT written to the buffer — it
// answers this request's freshness requirement only.
func (p *Prover) HandleCollectOD(treq uint64, k int, reqMAC []byte) (m0 Record, history []Record, timing CollectTiming, err error) {
	p.stats.ODRequests++
	timing, err = p.authenticateRequest(treq, k, reqMAC)
	if err != nil {
		p.stats.ODRejected++
		p.emit(EventODRejected, treq, err.Error())
		return Record{}, nil, timing, err
	}
	var dur sim.Ticks
	m0, dur, err = p.measureOnDemand()
	timing.ComputeMeasurement = dur
	if err != nil {
		return Record{}, nil, timing, err
	}
	timing.ReadBuffer = costmodel.BufferReadTime(p.dev.Arch(), k)
	timing.ConstructPacket = costmodel.ConstructPacketTime(p.dev.Arch())
	timing.SendPacket = costmodel.SendPacketTime(p.dev.Arch())
	p.dev.CPU().Occupy(cpu.KindCollection, timing.ReadBuffer+timing.ConstructPacket+timing.SendPacket)
	if p.lastSlot >= 0 {
		history = p.buf.Latest(p.lastSlot, k)
	}
	p.emit(EventODServed, m0.T, fmt.Sprintf("M0 + %d records", len(history)))
	return m0, history, timing, nil
}

// HandleOnDemand serves a pure on-demand attestation request (the SMART+
// baseline): authenticate, measure in real time, return the single fresh
// record. This is the design ERASMUS is compared against throughout the
// evaluation. The request MAC binds nonce zero; verifiers that issue many
// instances should use HandleOnDemandNonce with a fresh nonce instead.
func (p *Prover) HandleOnDemand(treq uint64, reqMAC []byte) (Record, CollectTiming, error) {
	return p.HandleOnDemandNonce(treq, 0, reqMAC)
}

// HandleOnDemandNonce serves a pure on-demand request whose MAC binds a
// verifier-chosen nonce in the request's k field (unused by the pure
// on-demand protocol): <treq, nonce, MAC_K(treq, nonce)>. The nonce gives
// each instance's requests a distinct MAC even when treq values repeat
// across verifiers, and the prover's monotonic treq floor (ErrReplay)
// rejects any captured request replayed verbatim.
func (p *Prover) HandleOnDemandNonce(treq uint64, nonce uint32, reqMAC []byte) (Record, CollectTiming, error) {
	p.stats.ODRequests++
	timing, err := p.authenticateRequest(treq, int(nonce), reqMAC)
	if err != nil {
		p.stats.ODRejected++
		p.emit(EventODRejected, treq, err.Error())
		return Record{}, timing, err
	}
	rec, dur, err := p.measureOnDemand()
	timing.ComputeMeasurement = dur
	if err != nil {
		return Record{}, timing, err
	}
	timing.ConstructPacket = costmodel.ConstructPacketTime(p.dev.Arch())
	timing.SendPacket = costmodel.SendPacketTime(p.dev.Arch())
	p.dev.CPU().Occupy(cpu.KindCollection, timing.ConstructPacket+timing.SendPacket)
	p.emit(EventODServed, rec.T, "single on-demand record")
	return rec, timing, nil
}
