package core

import (
	"testing"
	"testing/quick"

	"erasmus/internal/crypto/mac"
	"erasmus/internal/hw/mcu"
	"erasmus/internal/sim"
)

func newStateless(t *testing.T) *StatelessIrregular {
	t.Helper()
	s, err := NewStatelessIrregular(mac.KeyedBLAKE2s, testKey, 10*sim.Minute, 70*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStatelessIrregularValidation(t *testing.T) {
	if _, err := NewStatelessIrregular(mac.Algorithm(0), testKey, 1, 2); err == nil {
		t.Error("invalid alg accepted")
	}
	if _, err := NewStatelessIrregular(mac.HMACSHA256, nil, 1, 2); err == nil {
		t.Error("missing key accepted")
	}
	if _, err := NewStatelessIrregular(mac.HMACSHA256, testKey, 0, 2); err == nil {
		t.Error("L=0 accepted")
	}
	if _, err := NewStatelessIrregular(mac.HMACSHA256, testKey, 5, 5); err == nil {
		t.Error("U=L accepted")
	}
}

func TestStatelessIrregularBoundsAndDeterminism(t *testing.T) {
	s := newStateless(t)
	l, u := s.Bounds()
	for i := 0; i < 300; i++ {
		tv := uint64(i) * 977
		iv := s.IntervalAfter(tv)
		if iv < l || iv >= u {
			t.Fatalf("interval %v outside [%v,%v)", iv, l, u)
		}
		if iv != s.IntervalAfter(tv) {
			t.Fatal("not deterministic")
		}
	}
	if s.NominalTM() != 40*sim.Minute {
		t.Fatalf("NominalTM = %v", s.NominalTM())
	}
	if s.Stateless() {
		t.Fatal("stateless-irregular must use sequence slot addressing")
	}
}

func TestStatelessIrregularKeySeparation(t *testing.T) {
	a := newStateless(t)
	b, _ := NewStatelessIrregular(mac.KeyedBLAKE2s, []byte("other"), 10*sim.Minute, 70*sim.Minute)
	same := 0
	for i := 0; i < 100; i++ {
		if a.IntervalAfter(uint64(i)) == b.IntervalAfter(uint64(i)) {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("%d/100 intervals coincide across keys", same)
	}
}

func TestVerifyIrregularChainAcceptsTrueHistory(t *testing.T) {
	s := newStateless(t)
	// Build the exact chain the prover would produce.
	ts := []uint64{1_000_000_000}
	for i := 0; i < 6; i++ {
		ts = append(ts, ts[len(ts)-1]+uint64(s.IntervalAfter(ts[len(ts)-1])))
	}
	recs := make([]Record, 0, len(ts))
	for i := len(ts) - 1; i >= 0; i-- { // newest first
		recs = append(recs, Record{T: ts[i]})
	}
	if bad := s.VerifyIrregularChain(recs, sim.Second); len(bad) != 0 {
		t.Fatalf("true chain rejected at %v", bad)
	}
}

func TestVerifyIrregularChainCatchesDeletion(t *testing.T) {
	s := newStateless(t)
	ts := []uint64{1_000_000_000}
	for i := 0; i < 6; i++ {
		ts = append(ts, ts[len(ts)-1]+uint64(s.IntervalAfter(ts[len(ts)-1])))
	}
	// Delete the middle timestamp: the surrounding pair's gap no longer
	// equals IntervalAfter(older) (probability ~1).
	cut := append(append([]uint64{}, ts[:3]...), ts[4:]...)
	recs := make([]Record, 0, len(cut))
	for i := len(cut) - 1; i >= 0; i-- {
		recs = append(recs, Record{T: cut[i]})
	}
	if bad := s.VerifyIrregularChain(recs, sim.Second); len(bad) == 0 {
		t.Fatal("deletion not caught by chain verification")
	}
}

func TestVerifyIrregularChainCatchesReorderAndInsert(t *testing.T) {
	s := newStateless(t)
	t0 := uint64(5_000_000_000)
	t1 := t0 + uint64(s.IntervalAfter(t0))
	t2 := t1 + uint64(s.IntervalAfter(t1))
	// Reorder.
	if bad := s.VerifyIrregularChain([]Record{{T: t1}, {T: t2}, {T: t0}}, sim.Second); len(bad) == 0 {
		t.Fatal("reorder not caught")
	}
	// Insert a fabricated timestamp between t1 and t2.
	forged := t1 + uint64(10*sim.Minute)
	if bad := s.VerifyIrregularChain([]Record{{T: t2}, {T: forged}, {T: t1}, {T: t0}}, sim.Second); len(bad) == 0 {
		t.Fatal("insertion not caught")
	}
}

// Property: the chain verifier accepts every honestly generated chain and
// the intervals stay within bounds.
func TestPropertyStatelessChainSound(t *testing.T) {
	s := newStateless(t)
	f := func(start uint32, steps uint8) bool {
		n := int(steps)%8 + 2
		ts := []uint64{uint64(start) + 1}
		for i := 0; i < n; i++ {
			ts = append(ts, ts[len(ts)-1]+uint64(s.IntervalAfter(ts[len(ts)-1])))
		}
		recs := make([]Record, 0, len(ts))
		for i := len(ts) - 1; i >= 0; i-- {
			recs = append(recs, Record{T: ts[i]})
		}
		return len(s.VerifyIrregularChain(recs, 0)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// End to end: a prover driven by the stateless schedule produces a history
// that passes chain verification, and erasing one record breaks it.
func TestStatelessIrregularProverIntegration(t *testing.T) {
	e := sim.NewEngine()
	dev, err := mcu.New(mcu.Config{
		Engine: e, MemorySize: 256,
		StoreSize: 32 * RecordSize(mac.KeyedBLAKE2s),
		Key:       testKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewStatelessIrregular(mac.KeyedBLAKE2s, testKey, 10*sim.Minute, 40*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProver(dev, ProverConfig{Alg: mac.KeyedBLAKE2s, Schedule: sched, Slots: 32})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	e.RunUntil(4 * sim.Hour)
	p.Stop()
	recs, _ := p.HandleCollect(32)
	if len(recs) < 6 {
		t.Fatalf("only %d records", len(recs))
	}
	// Queueing delays the measurement start slightly after the timer, so
	// allow a small tolerance (measurement duration ≈ 0.12 s at 256 B).
	if bad := sched.VerifyIrregularChain(recs, sim.Second); len(bad) != 0 {
		t.Fatalf("live chain rejected at %v", bad)
	}
	// Malware erases a record: the collection shrinks and the chain
	// breaks at the splice.
	p.Buffer().Erase(3)
	recs, _ = p.HandleCollect(32)
	if bad := sched.VerifyIrregularChain(recs, sim.Second); len(bad) == 0 {
		t.Fatal("erasure not caught by chain verification")
	}
}
