package core

import (
	"testing"

	"erasmus/internal/sim"
)

func makeBundle(t *testing.T) Bundle {
	t.Helper()
	endT := uint64(10 * sim.Hour)
	return Bundle{
		DeviceID:    "sensor-17",
		CollectedAt: endT + uint64(10*sim.Minute),
		Records:     history(4, endT, sim.Hour, []byte("clean")),
	}
}

func TestBundleRoundTrip(t *testing.T) {
	b := makeBundle(t)
	got, err := DecodeBundle(alg, b.Encode(alg))
	if err != nil {
		t.Fatal(err)
	}
	if got.DeviceID != "sensor-17" || got.CollectedAt != b.CollectedAt || len(got.Records) != 4 {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range b.Records {
		if got.Records[i].T != b.Records[i].T {
			t.Fatal("record order lost")
		}
	}
}

func TestBundleDecodeRejectsMalformed(t *testing.T) {
	b := makeBundle(t).Encode(alg)
	for _, mut := range [][]byte{
		{},
		{0},
		b[:5],
		append(append([]byte{}, b...), 0xAA),
	} {
		if _, err := DecodeBundle(alg, mut); err == nil {
			t.Fatalf("malformed bundle of %d bytes accepted", len(mut))
		}
	}
	// Oversized claimed ID length.
	bad := append([]byte{0xFF, 0xFF}, b...)
	if _, err := DecodeBundle(alg, bad); err == nil {
		t.Fatal("bundle with bogus id length accepted")
	}
}

func TestHonestCourierVerifies(t *testing.T) {
	b := makeBundle(t)
	v := newTestVerifier(t, goldenFor([]byte("clean")))
	rep := v.VerifyBundle(b, b.CollectedAt, 4)
	if !rep.Healthy() {
		t.Fatalf("honest courier bundle rejected: %v", rep.Issues)
	}
}

// A dishonest courier can cause loss but never false evidence: every
// manipulation is flagged and nothing it does makes an infected device
// look clean (or vice versa) without detection.
func TestDishonestCourierDetected(t *testing.T) {
	v := newTestVerifier(t, goldenFor([]byte("clean")))

	// Courier drops a record.
	b := makeBundle(t)
	b.Records = append(b.Records[:1], b.Records[2:]...)
	if rep := v.VerifyBundle(b, b.CollectedAt, 4); !rep.TamperDetected {
		t.Fatal("record drop not detected")
	}

	// Courier reorders.
	b = makeBundle(t)
	b.Records[0], b.Records[1] = b.Records[1], b.Records[0]
	if rep := v.VerifyBundle(b, b.CollectedAt, 4); !rep.TamperDetected {
		t.Fatal("reorder not detected")
	}

	// Courier corrupts a byte in transit.
	b = makeBundle(t)
	enc := b.Encode(alg)
	enc[len(enc)-3] ^= 0x80
	got, err := DecodeBundle(alg, enc)
	if err == nil {
		if rep := v.VerifyBundle(got, b.CollectedAt, 4); !rep.TamperDetected {
			t.Fatal("corruption not detected")
		}
	}

	// Courier relabels the bundle as another device: nothing verifies
	// under the other device's key.
	b = makeBundle(t)
	otherVrf, err := NewVerifier(VerifierConfig{
		Alg: alg, Key: []byte("a different device key"),
		GoldenHashes: [][]byte{goldenFor([]byte("clean"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := otherVrf.VerifyBundle(b, b.CollectedAt, 4)
	if !rep.TamperDetected {
		t.Fatal("cross-device relabeling not detected")
	}
	for _, vr := range rep.Records {
		if vr.Verdict == VerdictOK {
			t.Fatal("foreign record verified under wrong key")
		}
	}
}

// The courier cannot suppress evidence of infection by re-collecting: it
// can only deliver (detected) gaps.
func TestCourierCannotLaunderInfection(t *testing.T) {
	clean := []byte("clean")
	infected := []byte("infected!")
	endT := uint64(10 * sim.Hour)
	recs := history(4, endT, sim.Hour, clean)
	recs[2] = ComputeRecord(alg, testKey, endT-2*uint64(sim.Hour), infected)

	v := newTestVerifier(t, goldenFor(clean))

	// Deliver as-is: infection visible.
	b := Bundle{DeviceID: "d", CollectedAt: endT, Records: recs}
	if rep := v.VerifyBundle(b, endT, 4); !rep.InfectionDetected {
		t.Fatal("infection lost in bundle")
	}
	// Strip the infected record: the hole is visible instead.
	b.Records = append(append([]Record{}, recs[:2]...), recs[3:]...)
	rep := v.VerifyBundle(b, endT, 4)
	if rep.InfectionDetected {
		t.Fatal("stripped record still reported infected (test broken)")
	}
	if !rep.TamperDetected {
		t.Fatal("stripping the infected record went unnoticed")
	}
}
