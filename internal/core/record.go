// Package core implements the paper's primary contribution: ERASMUS
// self-measurement remote attestation.
//
// A prover measures its own memory on a timer-driven schedule, storing
// records
//
//	M_t = <t, H(mem_t), MAC_K(t, H(mem_t))>
//
// in a rolling (circular) buffer held in *insecure* storage. A verifier
// occasionally collects the k most recent records and validates the
// prover's state history. The package provides:
//
//   - measurement records with binary encoding (record.go);
//   - the windowed buffer with the paper's stateless slot arithmetic
//     i = ⌊t/TM⌋ mod n (buffer.go);
//   - regular, irregular (CSPRNG-driven, §3.5) and lenient-window (§5)
//     measurement schedules (schedule.go);
//   - the Prover runtime: timer-driven self-measurement on a device model,
//     plus the ERASMUS, ERASMUS+OD (§3.3) and pure on-demand (SMART+
//     baseline) collection protocols (prover.go, protocol.go);
//   - the Verifier with history validation and Quality-of-Attestation
//     accounting (verifier.go).
package core

import (
	"encoding/binary"
	"fmt"

	"erasmus/internal/crypto/mac"
)

// Record is one self-measurement M_t = <t, H(mem_t), MAC_K(t, H(mem_t))>.
type Record struct {
	// T is the RROC timestamp of the measurement, in nanoseconds since
	// the device epoch.
	T uint64
	// Hash is H(mem_t), the digest of the prover's attested memory.
	Hash []byte
	// MAC is MAC_K(t, H(mem_t)).
	MAC []byte
}

// macInput serializes the MAC'd message: big-endian t followed by the hash.
func macInput(t uint64, h []byte) []byte {
	buf := make([]byte, 8+len(h))
	binary.BigEndian.PutUint64(buf, t)
	copy(buf[8:], h)
	return buf
}

// ComputeRecord produces the measurement of memory at time t under key.
// This is what the protected attestation code runs; callers must invoke it
// inside the device's Attest context so K never leaves protected execution.
func ComputeRecord(alg mac.Algorithm, key []byte, t uint64, memory []byte) Record {
	h := mac.HashSum(alg, memory)
	return Record{T: t, Hash: h, MAC: mac.Sum(alg, key, macInput(t, h))}
}

// VerifyMAC checks the record's authenticity under key.
func (r Record) VerifyMAC(alg mac.Algorithm, key []byte) bool {
	return mac.Verify(alg, key, macInput(r.T, r.Hash), r.MAC)
}

// RecordSize returns the fixed encoded size of a record for the algorithm:
// 8-byte timestamp, hash, MAC.
func RecordSize(alg mac.Algorithm) int {
	return 8 + alg.HashSize() + alg.Size()
}

// Encode serializes the record into its fixed-size wire/storage form.
// It panics if the hash or MAC lengths do not match the algorithm (records
// built by ComputeRecord always match).
func (r Record) Encode(alg mac.Algorithm) []byte {
	if len(r.Hash) != alg.HashSize() || len(r.MAC) != alg.Size() {
		panic(fmt.Sprintf("core: record field sizes %d/%d do not match %v", len(r.Hash), len(r.MAC), alg))
	}
	out := make([]byte, RecordSize(alg))
	binary.BigEndian.PutUint64(out, r.T)
	copy(out[8:], r.Hash)
	copy(out[8+len(r.Hash):], r.MAC)
	return out
}

// DecodeRecord parses a fixed-size encoded record. It performs no
// authenticity check — the store is untrusted, so callers must VerifyMAC.
func DecodeRecord(alg mac.Algorithm, b []byte) (Record, error) {
	if len(b) != RecordSize(alg) {
		return Record{}, fmt.Errorf("core: record length %d, want %d for %v", len(b), RecordSize(alg), alg)
	}
	hs := alg.HashSize()
	r := Record{
		T:    binary.BigEndian.Uint64(b),
		Hash: append([]byte(nil), b[8:8+hs]...),
		MAC:  append([]byte(nil), b[8+hs:]...),
	}
	return r, nil
}

// IsZero reports whether the record is all-zero, i.e. read from a buffer
// slot that was never written.
func (r Record) IsZero() bool {
	if r.T != 0 {
		return false
	}
	for _, b := range r.Hash {
		if b != 0 {
			return false
		}
	}
	for _, b := range r.MAC {
		if b != 0 {
			return false
		}
	}
	return true
}
