package core

import (
	"errors"
	"fmt"
	"sync"

	"erasmus/internal/crypto/mac"
	"erasmus/internal/sim"
)

// QoA captures the Quality-of-Attestation parameters of §3.1: how often
// the prover measures itself (TM) and how often the verifier collects
// (TC). It is the temporal analogue of QoSA.
type QoA struct {
	TM sim.Ticks
	TC sim.Ticks
}

// Validate checks the parameters.
func (q QoA) Validate() error {
	if q.TM <= 0 || q.TC <= 0 {
		return fmt.Errorf("core: QoA periods must be positive (TM=%v, TC=%v)", q.TM, q.TC)
	}
	return nil
}

// RecordsPerCollection returns k = ⌈TC/TM⌉, the history size at which each
// measurement is collected exactly once.
func (q QoA) RecordsPerCollection() int {
	return int((q.TC + q.TM - 1) / q.TM)
}

// MinBufferSlots returns the smallest n satisfying TC ≤ n·TM, the §3.2
// constraint guaranteeing no record is overwritten before collection.
func (q QoA) MinBufferSlots() int { return q.RecordsPerCollection() }

// ExpectedFreshness returns the mean freshness E[f] = TM/2 (§3.1: f ranges
// over [0, TM], averaging TM/2).
func (q QoA) ExpectedFreshness() sim.Ticks { return q.TM / 2 }

// MaxDetectionDelay bounds the time from a persistent infection to the
// verifier learning about it: at most TM (next measurement) + TC (next
// collection).
func (q QoA) MaxDetectionDelay() sim.Ticks { return q.TM + q.TC }

// Verdict classifies one collected record.
type Verdict int

const (
	// VerdictOK: authentic record of a whitelisted memory state.
	VerdictOK Verdict = iota
	// VerdictBadMAC: the record fails authentication — the store was
	// tampered with (or the slot held garbage).
	VerdictBadMAC
	// VerdictInfected: the record is authentic but digests a memory state
	// outside the whitelist — malware was present at measurement time.
	VerdictInfected
)

func (v Verdict) String() string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictBadMAC:
		return "bad-mac"
	case VerdictInfected:
		return "infected"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// VerifiedRecord pairs a record with its verdict.
type VerifiedRecord struct {
	Record  Record
	Verdict Verdict
}

// Report is the outcome of validating one collected history.
type Report struct {
	// Records holds per-record verdicts in the order received
	// (newest first).
	Records []VerifiedRecord
	// TamperDetected: at least one record failed authentication, was out
	// of order, carried an impossible timestamp, or the history was
	// shorter than the schedule requires. Per §3.4 any of these
	// immediately indicates malware (or loss) on the prover.
	TamperDetected bool
	// InfectionDetected: at least one authentic record shows a
	// non-whitelisted memory state.
	InfectionDetected bool
	// MissingRecords is the shortfall versus the expected history length.
	MissingRecords int
	// ScheduleGaps counts consecutive-record spacings outside the
	// expected bounds.
	ScheduleGaps int
	// Freshness is now − T of the newest record (§3.1's f).
	Freshness sim.Ticks
	// Issues lists human-readable findings.
	Issues []string

	// Incremental-verification fields, zero-valued on the stateless path.
	//
	// DeltaApplied: the history was validated against a watermark; Records
	// covers only the records newer than it.
	DeltaApplied bool
	// OverlapTrusted counts records accepted by the O(1) watermark
	// equality check instead of MAC recomputation (0 or 1: the anchor).
	OverlapTrusted int
	// WatermarkGap: the watermark record was absent from the response
	// (buffer rollover, reboot, or deletion). Not tamper by itself, but
	// the device's watermark resets and the next collection verifies the
	// full history.
	WatermarkGap bool
	// WatermarkTampered: a record claimed the watermark's timestamp with
	// different bytes — the already-verified overlap was modified in
	// place. Always accompanied by TamperDetected.
	WatermarkTampered bool

	// Aggregate-tier fields (see aggregate.go), zero-valued elsewhere.
	//
	// AggregateApplied: the history was accepted by the O(1) aggregate
	// tier — one chain walk plus one MAC, no per-record MAC work.
	AggregateApplied bool
	// AggregateFallback: aggregate evidence was present but did not
	// close (forged/absent aggregate MAC, chain-walk divergence, missing
	// or modified anchor, no saved chain state); the verdicts above came
	// from the per-record audit tier on the same records.
	AggregateFallback bool
	// ChainState is the prover's chain head, set only when the aggregate
	// MAC authenticated it. NextWatermark copies it into the advancing
	// watermark so the next round can resume the hash walk.
	ChainState []byte
}

// Healthy reports a clean history: nothing tampered, no infection, no
// missing records or schedule gaps.
func (r Report) Healthy() bool {
	return !r.TamperDetected && !r.InfectionDetected && r.MissingRecords == 0 && r.ScheduleGaps == 0
}

// VerifierConfig parameterizes a verifier.
type VerifierConfig struct {
	// Alg and Key mirror the prover's provisioning.
	Alg mac.Algorithm
	Key []byte
	// GoldenHashes whitelists known-good memory digests (multiple entries
	// allow sanctioned software versions).
	GoldenHashes [][]byte
	// MinGap/MaxGap bound the expected spacing between consecutive
	// measurements: for a regular schedule TM±tolerance; for an irregular
	// schedule [L, U) widened by tolerance.
	MinGap, MaxGap sim.Ticks
	// FreshnessBound is the largest acceptable age of the newest record
	// at collection time; zero disables the check.
	FreshnessBound sim.Ticks
	// ClockSkew tolerates the prover's RROC running ahead of the
	// verifier's time base by up to this much before a record timestamp is
	// flagged as "in the future". The paper assumes loose synchronization
	// (§2); over a real transport the two clocks drift by pump granularity
	// and network latency, and a zero tolerance turns that drift into
	// false tamper alerts. Zero keeps the strict check.
	ClockSkew sim.Ticks
	// MACCacheSize, when positive, remembers up to that many records whose
	// MACs already verified, so histories that overlap across collections
	// (k > new records per TC, or repeated batch validation) skip the MAC
	// recomputation. Only successful verifications are cached — the cache
	// key is the full record content, so a forged record can never hit.
	MACCacheSize int
	// Metrics, when set, counts MAC-cache hits and misses (the cache-
	// effectiveness ratio on /metrics). Nil adds no work to verifyMAC.
	Metrics *VerifyMetrics
}

// Verifier validates collected measurement histories. Verifiers can be
// untrusted couriers in ERASMUS — records are self-authenticating — but
// this Verifier is the party holding K that performs final validation.
//
// A Verifier is safe for concurrent use: all configuration is immutable
// after NewVerifier and the optional MAC cache is internally synchronized,
// so a BatchVerifier may fan the same instance out across workers.
type Verifier struct {
	cfg    VerifierConfig
	golden map[string]struct{} // whitelist as a set: O(1) per record

	cacheMu  sync.Mutex
	macCache map[macCacheKey]struct{}

	// aggMACPool holds keyed MAC instances (mac.New with this verifier's
	// key) for the aggregate tier's one-MAC-per-collection check. Reset
	// restores the keyed initial state for every supported algorithm, so
	// the key schedule and the instance allocation are paid once per
	// worker, not once per collection.
	aggMACPool sync.Pool
}

// NewVerifier validates the configuration.
func NewVerifier(cfg VerifierConfig) (*Verifier, error) {
	if !cfg.Alg.Valid() {
		return nil, fmt.Errorf("core: invalid MAC algorithm %d", int(cfg.Alg))
	}
	if len(cfg.Key) == 0 {
		return nil, errors.New("core: verifier key required")
	}
	if cfg.MinGap < 0 || cfg.MaxGap < 0 || (cfg.MaxGap > 0 && cfg.MaxGap < cfg.MinGap) {
		return nil, fmt.Errorf("core: gap bounds [%v,%v] invalid", cfg.MinGap, cfg.MaxGap)
	}
	if cfg.MACCacheSize < 0 {
		return nil, fmt.Errorf("core: negative MAC cache size %d", cfg.MACCacheSize)
	}
	if cfg.ClockSkew < 0 {
		return nil, fmt.Errorf("core: negative clock skew tolerance %v", cfg.ClockSkew)
	}
	v := &Verifier{cfg: cfg, golden: make(map[string]struct{}, len(cfg.GoldenHashes))}
	for _, g := range cfg.GoldenHashes {
		v.golden[string(g)] = struct{}{}
	}
	if cfg.MACCacheSize > 0 {
		v.macCache = make(map[macCacheKey]struct{}, cfg.MACCacheSize)
	}
	v.aggMACPool.New = func() any { return mac.New(v.cfg.Alg, v.cfg.Key) }
	return v, nil
}

// isGolden reports whether h digests a whitelisted memory state.
func (v *Verifier) isGolden(h []byte) bool {
	_, ok := v.golden[string(h)]
	return ok
}

// verifyMAC authenticates one record, consulting the cache when enabled.
func (v *Verifier) verifyMAC(rec Record) bool {
	if v.macCache == nil {
		return rec.VerifyMAC(v.cfg.Alg, v.cfg.Key)
	}
	key, ok := cacheKey(rec)
	if !ok {
		// Oversized fields cannot be packed without truncation, and a
		// truncated key could let two distinct records collide — never
		// acceptable in a cache whose hits skip MAC verification.
		return rec.VerifyMAC(v.cfg.Alg, v.cfg.Key)
	}
	v.cacheMu.Lock()
	_, hit := v.macCache[key]
	v.cacheMu.Unlock()
	if hit {
		v.cfg.Metrics.cacheHit()
		return true
	}
	v.cfg.Metrics.cacheMiss()
	if !rec.VerifyMAC(v.cfg.Alg, v.cfg.Key) {
		return false
	}
	v.cacheMu.Lock()
	if len(v.macCache) >= v.cfg.MACCacheSize {
		clear(v.macCache) // cheap bound; the working set refills immediately
	}
	v.macCache[key] = struct{}{}
	v.cacheMu.Unlock()
	return true
}

// macCacheKey packs the complete record into a fixed-size comparable
// key: any bit flip in t, hash or MAC produces a different key, and the
// recorded field lengths disambiguate the boundary. A value key keeps
// the cache lookup allocation-free — the previous string key heap-
// allocated its backing bytes on every record, the dominant allocation
// of the batch verify loop. The 64-byte body fits every supported
// algorithm (hash ≤ 32 B, MAC ≤ 32 B); trailing bytes stay zero.
type macCacheKey struct {
	t      uint64
	nh, nm uint8
	b      [64]byte
}

// cacheKey builds the cache key; ok is false when the record's fields
// exceed the fixed body (never the case for records of a valid
// algorithm) and the cache must be bypassed.
func cacheKey(rec Record) (macCacheKey, bool) {
	k := macCacheKey{t: rec.T, nh: uint8(len(rec.Hash)), nm: uint8(len(rec.MAC))}
	if len(rec.Hash)+len(rec.MAC) > len(k.b) || len(rec.Hash) > 255 || len(rec.MAC) > 255 {
		return macCacheKey{}, false
	}
	n := copy(k.b[:], rec.Hash)
	copy(k.b[n:], rec.MAC)
	return k, true
}

// VerifyHistory validates records collected at RROC time now, expecting
// expectedK records (pass 0 to skip the length check, e.g. right after
// boot). Records must arrive newest-first, as HandleCollect returns them.
func (v *Verifier) VerifyHistory(recs []Record, now uint64, expectedK int) Report {
	var rep Report
	rep.Records = make([]VerifiedRecord, 0, len(recs))

	if expectedK > 0 && len(recs) < expectedK {
		rep.MissingRecords = expectedK - len(recs)
		rep.TamperDetected = true
		rep.Issues = append(rep.Issues,
			fmt.Sprintf("history has %d records, schedule requires %d", len(recs), expectedK))
	}

	v.checkRecords(recs, now, &rep)
	v.checkChain(recs, &rep)
	v.checkFreshness(recs, now, &rep)
	return rep
}

// checkRecords runs the per-record checks — MAC, golden-hash membership,
// future timestamp — over a newest-first record list, appending verdicts
// and findings to rep. Shared by the stateless and incremental paths so
// verdict logic can never drift between them.
func (v *Verifier) checkRecords(recs []Record, now uint64, rep *Report) {
	for idx, rec := range recs {
		vr := VerifiedRecord{Record: rec}
		switch {
		case !v.verifyMAC(rec):
			vr.Verdict = VerdictBadMAC
			rep.TamperDetected = true
			rep.Issues = append(rep.Issues, fmt.Sprintf("record %d: MAC verification failed", idx))
		case !v.isGolden(rec.Hash):
			vr.Verdict = VerdictInfected
			rep.InfectionDetected = true
			rep.Issues = append(rep.Issues,
				fmt.Sprintf("record %d (t=%d): authentic but unknown memory state", idx, rec.T))
		default:
			vr.Verdict = VerdictOK
		}
		if rec.T > now+uint64(v.cfg.ClockSkew) {
			rep.TamperDetected = true
			rep.Issues = append(rep.Issues, fmt.Sprintf("record %d: timestamp %d in the future", idx, rec.T))
		}
		rep.Records = append(rep.Records, vr)
	}
}

// checkFreshness sets rep.Freshness from the newest shipped record (§3.1's
// f) and enforces the optional freshness bound. Shared by the stateless
// and incremental paths.
func (v *Verifier) checkFreshness(recs []Record, now uint64, rep *Report) {
	if len(recs) == 0 {
		return
	}
	newest := recs[0].T
	if now >= newest {
		rep.Freshness = sim.Ticks(now - newest)
	}
	if v.cfg.FreshnessBound > 0 && rep.Freshness > v.cfg.FreshnessBound {
		rep.Issues = append(rep.Issues,
			fmt.Sprintf("newest record is %v old, bound %v", rep.Freshness, v.cfg.FreshnessBound))
		rep.TamperDetected = true
	}
}

// checkChain runs the ordering and spacing checks over a newest-first
// record chain, folding findings into rep. Shared by the stateless and
// the incremental verification paths (the latter appends the watermark
// anchor as the oldest element so the old/new seam is checked too).
func (v *Verifier) checkChain(recs []Record, rep *Report) {
	// Ordering and spacing: newest-first means strictly decreasing T.
	for i := 1; i < len(recs); i++ {
		if recs[i].T >= recs[i-1].T {
			rep.TamperDetected = true
			rep.Issues = append(rep.Issues,
				fmt.Sprintf("records %d/%d out of order (%d ≥ %d)", i-1, i, recs[i].T, recs[i-1].T))
			continue
		}
		gap := sim.Ticks(recs[i-1].T - recs[i].T)
		if v.cfg.MinGap > 0 && gap < v.cfg.MinGap {
			rep.ScheduleGaps++
			rep.Issues = append(rep.Issues,
				fmt.Sprintf("records %d/%d: spacing %v below minimum %v", i-1, i, gap, v.cfg.MinGap))
		}
		if v.cfg.MaxGap > 0 && gap > v.cfg.MaxGap {
			rep.ScheduleGaps++
			rep.Issues = append(rep.Issues,
				fmt.Sprintf("records %d/%d: spacing %v above maximum %v (missing measurements?)", i-1, i, gap, v.cfg.MaxGap))
		}
	}
}

// VerifyODResponse validates an ERASMUS+OD response (Fig. 4): M0 must be
// authentic, whitelisted and essentially fresh; the history is then
// validated as usual.
func (v *Verifier) VerifyODResponse(m0 Record, history []Record, now uint64, expectedK int, m0FreshBound sim.Ticks) Report {
	rep := v.VerifyHistory(history, now, expectedK)
	vr := VerifiedRecord{Record: m0}
	switch {
	case !v.verifyMAC(m0):
		vr.Verdict = VerdictBadMAC
		rep.TamperDetected = true
		rep.Issues = append(rep.Issues, "M0: MAC verification failed")
	case !v.isGolden(m0.Hash):
		vr.Verdict = VerdictInfected
		rep.InfectionDetected = true
		rep.Issues = append(rep.Issues, "M0: authentic but unknown memory state")
	default:
		vr.Verdict = VerdictOK
	}
	if m0FreshBound > 0 && (m0.T > now+uint64(v.cfg.ClockSkew) || (m0.T <= now && sim.Ticks(now-m0.T) > m0FreshBound)) {
		rep.TamperDetected = true
		rep.Issues = append(rep.Issues, "M0: not fresh")
	}
	// M0 is the newest evidence; report freshness relative to it.
	if now >= m0.T {
		rep.Freshness = sim.Ticks(now - m0.T)
	}
	rep.Records = append([]VerifiedRecord{vr}, rep.Records...)
	return rep
}
