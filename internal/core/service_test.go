package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func svcWM(t uint64) Watermark {
	return Watermark{T: t, Hash: []byte{byte(t), 1}, MAC: []byte{byte(t), 2}}
}

// recSink records every journaled update in call order and doubles as a
// StateSource over the journaled state (a one-struct in-memory stand-in
// for the store package's WAL + snapshot pair).
type recSink struct {
	log   []string
	state map[string]Watermark
	fail  error
}

func newRecSink() *recSink { return &recSink{state: make(map[string]Watermark)} }

func (r *recSink) SetWatermark(device string, wm Watermark) error {
	if r.fail != nil {
		return r.fail
	}
	if wm.IsZero() {
		r.log = append(r.log, "clear "+device)
		delete(r.state, device)
	} else {
		r.log = append(r.log, fmt.Sprintf("set %s t=%d", device, wm.T))
		r.state[device] = wm
	}
	return nil
}

func (r *recSink) LoadWatermark(device string) (Watermark, bool) {
	wm, ok := r.state[device]
	return wm, ok
}

// Every Set — including clears — reaches the sink, in call order.
func TestServiceSinkObservesUpdatesInOrder(t *testing.T) {
	sink := newRecSink()
	svc := NewAttestationService(ServiceConfig{Sink: sink})
	svc.Set("a", svcWM(1))
	svc.Set("b", svcWM(2))
	svc.Set("a", svcWM(3))
	svc.Reset("b")
	want := []string{"set a t=1", "set b t=2", "set a t=3", "clear b"}
	if !reflect.DeepEqual(sink.log, want) {
		t.Fatalf("sink saw %v, want %v", sink.log, want)
	}
	if err := svc.SinkErr(); err != nil {
		t.Fatal(err)
	}
}

// Memory-pressure eviction is not a state change, so it must not be
// journaled — and a configured source makes it loss-free: the evicted
// device's next lookup re-hydrates instead of returning a miss (which
// would force a stateless full re-verification round).
func TestServiceEvictionRehydratesFromSource(t *testing.T) {
	sink := newRecSink()
	svc := NewAttestationService(ServiceConfig{
		Shards: 1, MaxDevices: 2, Sink: sink, Source: sink,
	})
	svc.Set("a", svcWM(1))
	svc.Set("b", svcWM(2))
	svc.Set("c", svcWM(3)) // capacity 2: evicts a or b
	if n := svc.Devices(); n != 2 {
		t.Fatalf("%d devices in memory, want the cap of 2", n)
	}
	for _, entry := range sink.log {
		if entry == "clear a" || entry == "clear b" {
			t.Fatalf("eviction was journaled as a clear: %v", sink.log)
		}
	}
	// Whichever device was evicted, all three still resolve — the miss
	// path fetches from the source and re-installs.
	for i, dev := range []string{"a", "b", "c"} {
		wm, ok := svc.Watermark(dev)
		if !ok || wm.T != uint64(i+1) {
			t.Fatalf("device %s: wm=%+v ok=%v after eviction", dev, wm, ok)
		}
	}
}

// Without a source, eviction still costs a stateless round (the pre-store
// behavior, relied on by the nil-store compatibility guarantee).
func TestServiceEvictionWithoutSourceMisses(t *testing.T) {
	svc := NewAttestationService(ServiceConfig{Shards: 1, MaxDevices: 1})
	svc.Set("a", svcWM(1))
	svc.Set("b", svcWM(2)) // evicts a
	hits := 0
	for _, dev := range []string{"a", "b"} {
		if _, ok := svc.Watermark(dev); ok {
			hits++
		}
	}
	if hits != 1 {
		t.Fatalf("%d hits after eviction without a source, want exactly 1", hits)
	}
}

// A service with nil sink and source is operation-for-operation identical
// to one wired to a (well-behaved) store: durability must never change
// verdict-relevant state.
func TestServiceNilStoreIdentical(t *testing.T) {
	sink := newRecSink()
	plain := NewAttestationService(ServiceConfig{Shards: 4, MaxDevices: 64})
	wired := NewAttestationService(ServiceConfig{Shards: 4, MaxDevices: 64, Sink: sink, Source: sink})
	ops := []struct {
		dev string
		wm  Watermark
	}{
		{"d0", svcWM(1)}, {"d1", svcWM(2)}, {"d0", svcWM(5)},
		{"d2", svcWM(7)}, {"d1", Watermark{}}, {"d3", svcWM(9)},
	}
	for _, op := range ops {
		plain.Set(op.dev, op.wm)
		wired.Set(op.dev, op.wm)
	}
	for _, dev := range []string{"d0", "d1", "d2", "d3", "never-seen"} {
		pw, pok := plain.Watermark(dev)
		ww, wok := wired.Watermark(dev)
		if pok != wok || !reflect.DeepEqual(pw, ww) {
			t.Errorf("%s: plain (%+v,%v) vs wired (%+v,%v)", dev, pw, pok, ww, wok)
		}
	}
	if plain.Devices() != wired.Devices() {
		t.Errorf("device counts diverge: %d vs %d", plain.Devices(), wired.Devices())
	}
}

// Sink failures are sticky and surfaced, but never block verification:
// in-memory state keeps advancing.
func TestServiceSinkErrSticky(t *testing.T) {
	sink := newRecSink()
	boom := errors.New("disk full")
	svc := NewAttestationService(ServiceConfig{Sink: sink})
	svc.Set("a", svcWM(1))
	sink.fail = boom
	svc.Set("a", svcWM(2))
	sink.fail = nil
	svc.Set("a", svcWM(3))
	if err := svc.SinkErr(); !errors.Is(err, boom) {
		t.Fatalf("SinkErr = %v, want %v", err, boom)
	}
	if wm, ok := svc.Watermark("a"); !ok || wm.T != 3 {
		t.Fatalf("in-memory state stalled after sink failure: %+v %v", wm, ok)
	}
}
