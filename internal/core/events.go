package core

import (
	"fmt"

	"erasmus/internal/sim"
)

// Prover event stream. Unattended devices are debugged after the fact;
// the runtime therefore exposes a structured event feed (measurement
// lifecycle, collection service, request rejections) that deployments can
// persist or forward. Emission is optional and costs nothing when no
// observer is installed.

// EventKind classifies a prover runtime event.
type EventKind string

// Prover event kinds.
const (
	EventMeasurement      EventKind = "measurement"       // record committed
	EventMeasurementAbort EventKind = "measurement-abort" // in-flight measurement aborted
	EventRetryScheduled   EventKind = "retry-scheduled"   // lenient-window retry queued
	EventWindowMissed     EventKind = "window-missed"     // measurement window lost
	EventCollection       EventKind = "collection"        // ERASMUS collection served
	EventODServed         EventKind = "od-served"         // on-demand request served
	EventODRejected       EventKind = "od-rejected"       // on-demand request rejected
)

// Event is one entry in the prover's event stream.
type Event struct {
	// At is the simulation time of the event.
	At sim.Ticks
	// Kind classifies it.
	Kind EventKind
	// T is the RROC timestamp of the associated record, if any.
	T uint64
	// Detail is a human-readable annotation.
	Detail string
}

func (e Event) String() string {
	if e.T != 0 {
		return fmt.Sprintf("%v %s t=%d %s", e.At, e.Kind, e.T, e.Detail)
	}
	return fmt.Sprintf("%v %s %s", e.At, e.Kind, e.Detail)
}

// emit delivers an event to the configured observer, if any.
func (p *Prover) emit(kind EventKind, t uint64, detail string) {
	if p.cfg.OnEvent == nil {
		return
	}
	p.cfg.OnEvent(Event{At: p.dev.Engine().Now(), Kind: kind, T: t, Detail: detail})
}

// EventRecorder is a ready-made observer that accumulates events.
type EventRecorder struct {
	events []Event
}

// Observe is the callback to install as ProverConfig.OnEvent.
func (r *EventRecorder) Observe(e Event) { r.events = append(r.events, e) }

// Events returns a copy of everything recorded.
func (r *EventRecorder) Events() []Event { return append([]Event(nil), r.events...) }

// OfKind filters recorded events.
func (r *EventRecorder) OfKind(kind EventKind) []Event {
	var out []Event
	for _, e := range r.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many events of the kind were recorded ("" = all).
func (r *EventRecorder) Count(kind EventKind) int {
	if kind == "" {
		return len(r.events)
	}
	return len(r.OfKind(kind))
}
